// Ablation bench for the design choices DESIGN.md calls out (not a paper
// table — supports the choices the paper leaves unspecified) plus the
// library's extensions:
//   1. bi-directional vs uni-directional recurrence,
//   2. consistency term of Eq. 6 on/off,
//   3. trainable (joint) vs detached (two-step) imputation estimates,
//   4. prediction head: concat-over-time vs attention,
//   5. GRU instead of LSTM,
//   6. stacked (2-layer) HGCN,
//   7. circular timeline partition (the paper's future-work idea),
//   8. ERP instead of DTW for temporal-graph distances.
// All at 40% missing on the PeMS-like dataset.
#include <chrono>
#include <cstdio>

#include "harness.hpp"

using namespace rihgcn;
using namespace rihgcn::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const Scale s = Scale::from(opts);
  metrics::ResultTable table("RIHGCN ablations (PeMS-like, 40% missing)",
                             {"prediction", "imputation"});
  Environment env = make_pems_environment(s, 0.4, opts.seed, 4,
                                          /*holdout_fraction=*/0.3);
  const auto t0 = std::chrono::steady_clock::now();

  struct Variant {
    std::string name;
    std::function<void(core::RihgcnConfig&)> tweak;
  };
  const std::vector<Variant> variants{
      {"full", [](core::RihgcnConfig&) {}},
      {"unidirectional",
       [](core::RihgcnConfig& c) { c.bidirectional = false; }},
      {"no-consistency",
       [](core::RihgcnConfig& c) { c.use_consistency = false; }},
      {"detached-imp",
       [](core::RihgcnConfig& c) { c.trainable_imputation = false; }},
      {"attention-head",
       [](core::RihgcnConfig& c) {
         c.head = core::RihgcnConfig::Head::kAttention;
       }},
      {"gru-cell",
       [](core::RihgcnConfig& c) { c.cell = nn::CellKind::kGru; }},
      {"2-layer-hgcn", [](core::RihgcnConfig& c) { c.hgcn_layers = 2; }},
  };
  auto run_variant = [&](const std::string& name, Environment& e,
                         const std::function<void(core::RihgcnConfig&)>& tweak) {
    auto model = make_rihgcn(e, s, opts.seed, tweak);
    core::train_model(*model, *e.sampler, e.split,
                      train_config(s, opts.seed));
    const core::EvalResult pr = core::evaluate_prediction(
        *model, *e.sampler, e.split.test, e.normalizer.get(), 0,
        s.max_eval_windows);
    const core::EvalResult ir = core::evaluate_imputation(
        *model, *e.sampler, e.split.test, e.holdout, e.normalizer.get(),
        s.max_eval_windows, s.lookback);
    table.set(name, 0, pr.mae, pr.rmse);
    table.set(name, 1, ir.mae, ir.rmse);
    std::printf("   %-16s pred MAE %7.4f  imp MAE %7.4f   [t=%.0fs]\n",
                name.c_str(), pr.mae, ir.mae, seconds_since(t0));
    std::fflush(stdout);
  };
  for (const Variant& v : variants) run_variant(v.name, env, v.tweak);

  // Graph-construction variants need their own heterogeneous graph bundles;
  // the dataset, mask, holdout and splits stay identical (same seed).
  {
    Environment circ = make_pems_environment_custom(
        s, 0.4, opts.seed, 0.3, [](core::HeteroGraphsConfig& g) {
          g.circular_partition = true;
        });
    run_variant("circular-part", circ, nullptr);
    Environment erp = make_pems_environment_custom(
        s, 0.4, opts.seed, 0.3, [](core::HeteroGraphsConfig& g) {
          g.distance = ts::SeriesDistance::kErp;
        });
    run_variant("erp-distance", erp, nullptr);
  }
  emit(table, opts);
  return 0;
}
