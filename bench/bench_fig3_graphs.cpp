// Figure 3: three graphs over five road segments built from different
// distance measurements — geographic distance vs temporal (DTW) similarity
// in two different time intervals. The paper's point: nodes far apart
// geographically can be strongly connected temporally, and temporal graph
// structure varies across intervals.
//
// This bench prints the three adjacency matrices for a 5-node slice of the
// PeMS-like dataset plus quantitative structure-difference statistics.
#include <cstdio>

#include "harness.hpp"
#include "timeseries/profile.hpp"

using namespace rihgcn;
using namespace rihgcn::bench;

namespace {

void print_adjacency(const char* title, const Matrix& a) {
  std::printf("%s\n", title);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    std::printf("   ");
    for (std::size_t j = 0; j < a.cols(); ++j) std::printf("%6.3f ", a(i, j));
    std::printf("\n");
  }
}

double structure_difference(const Matrix& a, const Matrix& b) {
  // Mean absolute difference of edge weights (off-diagonal).
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (i == j) continue;
      s += std::abs(a(i, j) - b(i, j));
      ++n;
    }
  }
  return s / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  Scale s = Scale::from(opts);
  s.pems_nodes = 5;  // the figure uses five road segments
  Environment env = make_pems_environment(s, 0.0, opts.seed, 4);

  std::printf(
      "Figure 3: graphs from different distance measurements "
      "(5 road segments)\n\n");
  print_adjacency("(a) geographic graph (road distances, Eq. 8):",
                  env.graphs->geographic().adjacency());
  const auto& part = env.graphs->partition();
  std::printf("\ntimeline partition (hour boundaries):");
  for (const std::size_t b : part.boundaries) std::printf(" %zu", b);
  std::printf("\n\n");
  for (std::size_t m = 0; m < std::min<std::size_t>(2, env.graphs->num_temporal());
       ++m) {
    const auto [c0, c1] = part.slot_range(m);
    char title[128];
    std::snprintf(title, sizeof(title),
                  "(%c) temporal graph for interval [%zuh, %zuh) (DTW "
                  "similarity):",
                  static_cast<char>('b' + m), c0, c1);
    print_adjacency(title, env.graphs->temporal(m).adjacency());
    std::printf("\n");
  }

  // Eq. 8 sparsity, grounded in actual numbers: nnz/density per graph (the
  // sparse backend's win scales with how empty these are — DESIGN.md §9).
  std::printf("graph sparsity (Eq. 8 thresholded adjacency):\n");
  auto print_stats = [](const char* name, const Matrix& a) {
    const graph::SparsityStats st = graph::sparsity_stats(a);
    std::printf("   %-22s nnz=%4zu/%4zu  density=%.3f\n", name, st.nnz,
                st.size, st.density);
  };
  print_stats("geographic:", env.graphs->geographic().adjacency());
  for (std::size_t m = 0; m < env.graphs->num_temporal(); ++m) {
    char name[32];
    std::snprintf(name, sizeof(name), "temporal[%zu]:", m);
    print_stats(name, env.graphs->temporal(m).adjacency());
  }
  std::printf("\n");

  std::printf("structure differences (mean |edge weight delta|):\n");
  std::printf("   geo vs temporal[0]:        %.4f\n",
              structure_difference(env.graphs->geographic().adjacency(),
                                   env.graphs->temporal(0).adjacency()));
  if (env.graphs->num_temporal() > 1) {
    std::printf("   geo vs temporal[1]:        %.4f\n",
                structure_difference(env.graphs->geographic().adjacency(),
                                     env.graphs->temporal(1).adjacency()));
    std::printf("   temporal[0] vs temporal[1]: %.4f\n",
                structure_difference(env.graphs->temporal(0).adjacency(),
                                     env.graphs->temporal(1).adjacency()));
  }
  std::printf(
      "\nShape check vs paper: temporal graphs connect geographically "
      "distant nodes with similar daily patterns, and their structure "
      "changes across intervals (nonzero temporal[0] vs temporal[1] "
      "difference).\n");
  return 0;
}
