// Figure 4: prediction (a) and imputation (b) MAE/RMSE as a function of the
// number of temporal graphs M ∈ {1, 2, 4, 8, 16, 24} on the PeMS-like
// dataset, 40% missing, horizon 12.
//
// Expected shape (paper): U-shaped curves — too few graphs cannot capture
// intraday variability, too many fragment the data and add redundancy; the
// optimum sits at an intermediate M (paper: 8).
#include <chrono>
#include <cstdio>

#include "harness.hpp"

using namespace rihgcn;
using namespace rihgcn::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const Scale s = Scale::from(opts);
  const std::vector<std::size_t> num_graphs{1, 2, 4, 8, 16, 24};
  std::vector<std::string> labels;
  labels.reserve(num_graphs.size());
  for (const std::size_t m : num_graphs) labels.push_back("M=" + std::to_string(m));
  metrics::ResultTable pred_table(
      "Figure 4(a): prediction vs number of temporal graphs (40% missing)",
      labels);
  metrics::ResultTable imp_table(
      "Figure 4(b): imputation vs number of temporal graphs (40% missing)",
      labels);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t g = 0; g < num_graphs.size(); ++g) {
    Environment env = make_pems_environment(s, 0.4, opts.seed, num_graphs[g],
                                            /*holdout_fraction=*/0.3);
    auto model = make_rihgcn(env, s, opts.seed);
    core::train_model(*model, *env.sampler, env.split,
                      train_config(s, opts.seed));
    const core::EvalResult pr = core::evaluate_prediction(
        *model, *env.sampler, env.split.test, env.normalizer.get(), 0,
        s.max_eval_windows);
    const core::EvalResult ir = core::evaluate_imputation(
        *model, *env.sampler, env.split.test, env.holdout,
        env.normalizer.get(), s.max_eval_windows, s.lookback);
    pred_table.set("RIHGCN", g, pr.mae, pr.rmse);
    imp_table.set("RIHGCN", g, ir.mae, ir.rmse);
    std::printf("   M=%-3zu pred MAE %7.4f  imp MAE %7.4f   [t=%.0fs]\n",
                num_graphs[g], pr.mae, ir.mae, seconds_since(t0));
    std::fflush(stdout);
  }
  emit(pred_table, opts);
  BenchOptions imp_opts = opts;
  if (!imp_opts.csv_path.empty()) imp_opts.csv_path += ".imputation.csv";
  emit(imp_table, imp_opts);
  return 0;
}
