// Figure 5: imputation (a) and prediction (b) MAE/RMSE as the imputation-
// loss weight λ sweeps over {1e-4, 1e-3, 1e-2, 0.1, 1, 5, 10} on the
// PeMS-like dataset, 40% missing.
//
// Expected shape (paper): imputation error decreases monotonically with λ
// (more pressure on the imputation objective); prediction error is flat and
// good for λ in (0.001, 5) and worsens at both extremes (tiny λ = bad
// imputations poison prediction; huge λ = imputation overfitting starves
// the prediction objective).
#include <chrono>
#include <cstdio>

#include "harness.hpp"

using namespace rihgcn;
using namespace rihgcn::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const Scale s = Scale::from(opts);
  const std::vector<double> lambdas{1e-4, 1e-3, 1e-2, 0.1, 1.0, 5.0, 10.0};
  std::vector<std::string> labels;
  labels.reserve(lambdas.size());
  for (const double l : lambdas) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", l);
    labels.emplace_back(buf);
  }
  metrics::ResultTable imp_table(
      "Figure 5(a): imputation vs lambda (40% missing)", labels);
  metrics::ResultTable pred_table(
      "Figure 5(b): prediction vs lambda (40% missing)", labels);
  // One environment for the whole sweep: only the loss weight changes.
  Environment env = make_pems_environment(s, 0.4, opts.seed, 4,
                                          /*holdout_fraction=*/0.3);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t g = 0; g < lambdas.size(); ++g) {
    auto model = make_rihgcn(env, s, opts.seed, [&](core::RihgcnConfig& mc) {
      mc.lambda = lambdas[g];
    });
    core::train_model(*model, *env.sampler, env.split,
                      train_config(s, opts.seed));
    const core::EvalResult pr = core::evaluate_prediction(
        *model, *env.sampler, env.split.test, env.normalizer.get(), 0,
        s.max_eval_windows);
    const core::EvalResult ir = core::evaluate_imputation(
        *model, *env.sampler, env.split.test, env.holdout,
        env.normalizer.get(), s.max_eval_windows, s.lookback);
    imp_table.set("RIHGCN", g, ir.mae, ir.rmse);
    pred_table.set("RIHGCN", g, pr.mae, pr.rmse);
    std::printf("   lambda=%-8g imp MAE %7.4f  pred MAE %7.4f   [t=%.0fs]\n",
                lambdas[g], ir.mae, pr.mae, seconds_since(t0));
    std::fflush(stdout);
  }
  emit(imp_table, opts);
  BenchOptions pred_opts = opts;
  if (!pred_opts.csv_path.empty()) pred_opts.csv_path += ".prediction.csv";
  emit(pred_table, pred_opts);
  return 0;
}
