// Micro-benchmarks (google-benchmark) for the substrate hot paths: dense
// matmul, DTW, graph-Laplacian pipeline, Chebyshev GCN forward, LSTM step,
// a full RIHGCN forward/backward, and one optimizer step. Not a paper
// experiment — tracks the cost structure of the training loop.
//
// The custom main() additionally runs the sparse graph backend sweep
// (SpMM vs dense Chebyshev propagation over N ∈ {64, 256, 1024} at the
// densities the PeMS-like generator actually produces, plus a dense/sparse
// RIHGCN train-step comparison) before the registered benchmarks, and
// honors --json=PATH for machine-readable results (tools/run_bench.sh).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "graph/graph.hpp"
#include "harness.hpp"
#include "nn/optim.hpp"
#include "tensor/csr.hpp"
#include "tensor/fmatrix.hpp"
#include "tensor/linalg.hpp"
#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"
#include "timeseries/distance.hpp"

namespace {

using namespace rihgcn;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = rng.normal_matrix(n, n, 1.0);
  const Matrix b = rng.normal_matrix(n, n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(16)->Arg(64)->Arg(128);

// ---- Parallel backend throughput -------------------------------------------
//
// Run with --benchmark_format=json to get machine-readable items_per_second
// (= multiply-accumulates/s). BM_MatmulSeedSerial is the pre-parallel-backend
// i-k-j kernel, kept as detail::matmul_naive; BM_MatmulParallel/256/T is the
// blocked kernel on a T-thread pool (T=0 means RIHGCN_THREADS or the
// hardware concurrency). The acceptance target is parallel/256/4 at >= 2x
// seed-serial items_per_second.

void BM_MatmulSeedSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = rng.normal_matrix(n, n, 1.0);
  const Matrix b = rng.normal_matrix(n, n, 1.0);
  Matrix out(n, n);
  for (auto _ : state) {
    out.fill(0.0);
    detail::matmul_naive(a, b, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatmulSeedSerial)->Arg(256);

void BM_MatmulParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  ThreadPool::set_global_threads(threads);  // 0 = env / hardware default
  Rng rng(1);
  const Matrix a = rng.normal_matrix(n, n, 1.0);
  const Matrix b = rng.normal_matrix(n, n, 1.0);
  Matrix out(n, n);
  for (auto _ : state) {
    out.fill(0.0);
    matmul_accumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
  ThreadPool::set_global_threads(0);
}
BENCHMARK(BM_MatmulParallel)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 0})
    ->UseRealTime();

// Chebyshev GCN forward+backward on a larger graph, across pool sizes — the
// model-level view of the parallel backend (matmuls dominate).
void BM_ChebGcnThreaded(benchmark::State& state) {
  const std::size_t n = 128;
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool::set_global_threads(threads);
  Rng rng(6);
  nn::ChebGcnLayer gcn(32, 32, 3, rng);
  Matrix lap = rng.normal_matrix(n, n, 0.2);
  lap = (lap + lap.transposed()) * 0.5;
  const Matrix x = rng.normal_matrix(n, 32, 1.0);
  for (auto _ : state) {
    for (ad::Parameter* p : gcn.parameters()) p->zero_grad();
    ad::Tape tape;
    ad::Var y = gcn.forward(tape, tape.constant(x), lap);
    tape.backward(tape.mean_all(y));
    benchmark::DoNotOptimize(y);
  }
  ThreadPool::set_global_threads(0);
}
BENCHMARK(BM_ChebGcnThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(0)->UseRealTime();

void BM_Dtw(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> a(len), b(len);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::dtw(a, b));
  }
}
BENCHMARK(BM_Dtw)->Arg(24)->Arg(144)->Arg(288);

void BM_DtwBanded(benchmark::State& state) {
  const std::size_t len = 288;
  Rng rng(3);
  std::vector<double> a(len), b(len);
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::dtw(a, b, state.range(0)));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(8)->Arg(32);

void BM_GraphPipeline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Matrix d = rng.uniform_matrix(n, n, 0.3, 3.0);
  d = (d + d.transposed()) * 0.5;
  for (std::size_t i = 0; i < n; ++i) d(i, i) = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::scaled_laplacian_from_distances(d));
  }
}
BENCHMARK(BM_GraphPipeline)->Arg(20)->Arg(50);

void BM_SolveLinear(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  Matrix a = rng.normal_matrix(n, n, 1.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0 * static_cast<double>(n);
  const Matrix b = rng.normal_matrix(n, 1, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_linear(a, b));
  }
}
BENCHMARK(BM_SolveLinear)->Arg(16)->Arg(91);

void BM_ChebGcnForward(benchmark::State& state) {
  const std::size_t n = 20;
  Rng rng(6);
  nn::ChebGcnLayer gcn(4, 16, 3, rng);
  Matrix lap = rng.normal_matrix(n, n, 0.2);
  lap = (lap + lap.transposed()) * 0.5;
  const Matrix x = rng.normal_matrix(n, 4, 1.0);
  for (auto _ : state) {
    ad::Tape tape;
    benchmark::DoNotOptimize(gcn.forward(tape, tape.constant(x), lap));
  }
}
BENCHMARK(BM_ChebGcnForward);

void BM_LstmStep(benchmark::State& state) {
  const std::size_t n = 20;
  Rng rng(7);
  nn::LstmCell lstm(16, 32, rng);
  const Matrix x = rng.normal_matrix(n, 16, 1.0);
  for (auto _ : state) {
    ad::Tape tape;
    auto s = lstm.initial_state(tape, n);
    benchmark::DoNotOptimize(lstm.step(tape, tape.constant(x), s));
  }
}
BENCHMARK(BM_LstmStep);

struct RihgcnBenchFixture {
  data::TrafficDataset ds;
  std::unique_ptr<data::WindowSampler> sampler;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::unique_ptr<core::RihgcnModel> model;
  data::Window window;

  RihgcnBenchFixture() {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 20;
    cfg.num_days = 4;
    cfg.steps_per_day = 288;
    ds = data::generate_pems_like(cfg);
    Rng rng(8);
    data::inject_mcar(ds, 0.4, rng);
    const std::size_t train_end = ds.num_timesteps() * 7 / 10;
    const data::ZScoreNormalizer nz(ds, train_end);
    nz.normalize(ds);
    sampler = std::make_unique<data::WindowSampler>(ds, 12, 12);
    core::HeteroGraphsConfig gcfg;
    gcfg.num_temporal_graphs = 4;
    graphs =
        std::make_unique<core::HeterogeneousGraphs>(ds, train_end, gcfg, rng);
    core::RihgcnConfig mc;
    mc.gcn_dim = 12;
    mc.lstm_dim = 24;
    model = std::make_unique<core::RihgcnModel>(*graphs, 20, 4, mc);
    window = sampler->make_window(100);
  }
};

void BM_RihgcnForward(benchmark::State& state) {
  static RihgcnBenchFixture fixture;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.model->predict(fixture.window));
  }
}
BENCHMARK(BM_RihgcnForward);

void BM_RihgcnForwardBackward(benchmark::State& state) {
  static RihgcnBenchFixture fixture;
  for (auto _ : state) {
    for (ad::Parameter* p : fixture.model->parameters()) p->zero_grad();
    ad::Tape tape;
    ad::Var loss = fixture.model->training_loss(tape, fixture.window);
    tape.backward(loss);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_RihgcnForwardBackward);

void BM_AdamStep(benchmark::State& state) {
  static RihgcnBenchFixture fixture;
  nn::AdamOptimizer opt(fixture.model->parameters());
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt.step());
  }
}
BENCHMARK(BM_AdamStep);

void BM_GruStep(benchmark::State& state) {
  const std::size_t n = 20;
  Rng rng(9);
  nn::GruCell gru(16, 32, rng);
  const Matrix x = rng.normal_matrix(n, 16, 1.0);
  for (auto _ : state) {
    ad::Tape tape;
    auto s = gru.initial_state(tape, n);
    benchmark::DoNotOptimize(gru.step(tape, tape.constant(x), s));
  }
}
BENCHMARK(BM_GruStep);

// Data-parallel batch gradients: wall-clock for an 8-window batch at 1, 2
// and 4 worker threads, mirroring the trainer's per-worker batch parallelism
// (persistent ThreadPool crew, hoisted arena tapes, grain-1 parallel_for so
// every kernel inside a worker runs inline; speedup tops out at the core
// count and the reduction cost).
void BM_ParallelBatch(benchmark::State& state) {
  static RihgcnBenchFixture fixture;
  const auto threads = static_cast<std::size_t>(state.range(0));
  const data::WindowSampler& sampler = *fixture.sampler;
  std::vector<std::size_t> idx{100, 101, 102, 103, 104, 105, 106, 107};
  ThreadPool crew(threads);
  std::vector<std::unique_ptr<ad::Tape>> tapes;
  for (std::size_t w = 0; w < threads; ++w) {
    tapes.push_back(std::make_unique<ad::Tape>());
  }
  for (auto _ : state) {
    for (ad::Parameter* p : fixture.model->parameters()) p->zero_grad();
    if (threads <= 1) {
      ad::Tape& tape = *tapes[0];
      for (const std::size_t i : idx) {
        tape.reset();
        ad::Var loss =
            fixture.model->training_loss(tape, sampler.make_window(i));
        tape.backward(loss);
      }
    } else {
      std::vector<ad::Tape::GradSink> sinks(threads);
      crew.parallel_for(0, threads, 1, [&](std::size_t w, std::size_t) {
        for (std::size_t b = w; b < idx.size(); b += threads) {
          ad::Tape& tape = *tapes[w];
          tape.reset();
          ad::Var loss = fixture.model->training_loss(
              tape, sampler.make_window(idx[b]));
          tape.backward_into(loss, sinks[w]);
        }
      });
      for (auto& sink : sinks) {
        for (auto& [param, grad] : sink) param->grad() += grad;
      }
    }
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ParallelBatch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// ---- Sparse graph backend sweep (DESIGN.md §9) -----------------------------

struct SweepGraph {
  std::size_t n = 0;
  Matrix lap;     // scaled Laplacian, dense
  CsrMatrix csr;  // same matrix in CSR (tol = 0 — bitwise-equal kernels)
};

SweepGraph make_sweep_graph(std::size_t n) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = n;
  // Scale the network like the generator default (30 nodes / 3 corridors):
  // ~10 sensors per corridor. Growing N this way keeps Eq. 8 densities
  // realistic instead of stretching three corridors across the whole map.
  cfg.num_corridors = std::max<std::size_t>(1, n / 10);
  cfg.num_days = 1;
  cfg.steps_per_day = 24;  // readings are unused; only distances matter
  const data::TrafficDataset ds = data::generate_pems_like(cfg);
  SweepGraph g;
  g.n = n;
  g.lap =
      graph::RoadGraph::from_distances(ds.geo_distances).scaled_laplacian();
  g.csr = graph::to_csr(g.lap);
  return g;
}

// Record one timed row: ns_per_op is the median (the gating statistic for
// tools/check_bench.py); min/stddev ride along for diagnosis.
bench::MicroResult timed_row(const char* name, std::size_t n, double density,
                             std::size_t threads,
                             const bench::TimingStats& stats) {
  return {name,    n,        density,         stats.median_ns,
          threads, stats.min_ns, stats.stddev_ns};
}

// Record one counter row: ns_per_op carries a deterministic program fact
// (tape nodes, pool misses). The "counter" kind makes tools/check_bench.py
// exact-diff it instead of applying the timing threshold.
bench::MicroResult counter_row(const char* name, std::size_t n, double density,
                               double value, std::size_t threads) {
  bench::MicroResult r;
  r.name = name;
  r.n = n;
  r.density = density;
  r.ns_per_op = value;
  r.threads = threads;
  r.kind = "counter";
  return r;
}

// SpMM vs dense Chebyshev propagation: the two L̃·Z products of the K = 3
// three-term recurrence (the GCN hot path both backends share).
void run_sparse_sweep(const bench::BenchOptions& opts,
                      std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kFeat = 16;
  std::printf(
      "Sparse graph backend sweep — K=3 Chebyshev propagation, F=%zu\n",
      kFeat);
  std::printf("%-12s %6s %9s %8s %14s %9s\n", "kernel", "N", "density",
              "threads", "ns/op", "speedup");
  for (const std::size_t n : {64, 256, 1024}) {
    const SweepGraph g = make_sweep_graph(n);
    Rng rng(opts.seed);
    const Matrix x = rng.normal_matrix(n, kFeat, 1.0);
    for (const std::size_t threads : {1, 4}) {
      ThreadPool::set_global_threads(threads);
      const bench::TimingStats dense = bench::measure_ns_per_op([&] {
        Matrix z1 = matmul(g.lap, x);
        Matrix z2 = matmul(g.lap, z1);
        benchmark::DoNotOptimize(z2.data());
      });
      const bench::TimingStats sp = bench::measure_ns_per_op([&] {
        Matrix z1 = spmm(g.csr, x);
        Matrix z2 = spmm(g.csr, z1);
        benchmark::DoNotOptimize(z2.data());
      });
      const double density = g.csr.density();
      results.push_back(timed_row("cheb_dense", n, density, threads, dense));
      results.push_back(timed_row("cheb_spmm", n, density, threads, sp));
      std::printf("%-12s %6zu %9.3f %8zu %14.0f %9s\n", "cheb_dense", n,
                  density, threads, dense.median_ns, "1.00x");
      std::printf("%-12s %6zu %9.3f %8zu %14.0f %8.2fx\n", "cheb_spmm", n,
                  density, threads, sp.median_ns,
                  dense.median_ns / sp.median_ns);
    }
  }
  ThreadPool::set_global_threads(0);
}

// SIMD dispatch layer: the same blocked double GEMM through the scalar and
// active tables (identical bits, different instructions), plus the f32
// serving GEMM (tensor/fmatrix.hpp). Serial on purpose — this isolates the
// per-core kernel, the thread sweeps above cover dispatch.
void run_simd_sweep(const bench::BenchOptions& opts,
                    std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kN = 256;
  ThreadPool::set_global_threads(1);
  Rng rng(opts.seed + 2);
  const Matrix a = rng.normal_matrix(kN, kN, 1.0);
  const Matrix b = rng.normal_matrix(kN, kN, 1.0);
  Matrix out(kN, kN);
  std::printf("\nSIMD kernel layer, %zux%zu GEMM (active ISA: %s)\n", kN, kN,
              simd::isa_name(simd::active_isa()));
  std::printf("%-18s %14s %9s\n", "kernel", "ns/op", "speedup");

  simd::force_isa(simd::Isa::kScalar);
  const bench::TimingStats scalar = bench::measure_ns_per_op([&] {
    out.fill(0.0);
    matmul_accumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  });
  simd::reset_isa();
  const bench::TimingStats active = bench::measure_ns_per_op([&] {
    out.fill(0.0);
    matmul_accumulate(a, b, out);
    benchmark::DoNotOptimize(out.data());
  });
  results.push_back(timed_row("matmul_scalar", kN, 1.0, 1, scalar));
  results.push_back(timed_row("matmul_simd", kN, 1.0, 1, active));
  std::printf("%-18s %14.0f %9s\n", "matmul_scalar", scalar.median_ns,
              "1.00x");
  std::printf("%-18s %14.0f %8.2fx\n", "matmul_simd", active.median_ns,
              scalar.median_ns / active.median_ns);

  const FMatrix fa = FMatrix::from(a);
  const FMatrix fb = FMatrix::from(b);
  FMatrix fout(kN, kN);
  const bench::TimingStats f32 = bench::measure_ns_per_op([&] {
    std::fill(fout.data(), fout.data() + fout.size(), 0.0f);
    fmatmul_accumulate(fa, fb, fout);
    benchmark::DoNotOptimize(fout.data());
  });
  results.push_back(timed_row("fmatmul_f32", kN, 1.0, 1, f32));
  std::printf("%-18s %14.0f %8.2fx\n", "fmatmul_f32", f32.median_ns,
              scalar.median_ns / f32.median_ns);
  ThreadPool::set_global_threads(0);
}

// ---- Pruned DTW graph construction sweep (DESIGN.md §13) -------------------

// Diurnal series in a few phase/amplitude clusters — the structure the
// LB_Kim/LB_Keogh bounds exploit (random walks would prune far less).
Matrix make_dtw_series(std::size_t n, std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  Matrix s(n, len);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 0.8 * static_cast<double>(i % 8);
    const double amp = 1.0 + 0.2 * static_cast<double>(i % 5);
    for (std::size_t t = 0; t < len; ++t) {
      s(i, t) = amp * std::sin(0.26 * static_cast<double>(t) + phase) +
                0.1 * rng.normal();
    }
  }
  return s;
}

// Temporal-graph construction, legacy vs pruned pipeline, end to end
// (distance scan -> k-NN selection -> Gaussian CSR adjacency).
// `dtw_graph_exact` is the old dense pipeline exactly as dense-mode
// hetero_graphs runs it: the full N x N unbanded-DTW matrix, then row
// sparsification. `dtw_graph_pruned` is ts::knn_series_graph at the sparse
// pipeline's recommended city-scale configuration (Sakoe-Chiba band 4,
// LB_Kim/LB_Keogh + early abandon, no N x N matrix). At EQUAL band the
// pruned scan returns bitwise-identical graphs to the exact scan
// (tests/test_knn_graph.cpp); the band itself is a config choice of the new
// pipeline that the legacy path never supported. The dense baseline is only
// run at N=1024 — its cost extrapolates as N² — and the acceptance target is
// pruned@4096 at >= 5x the 16x-extrapolated exact@1024 time.
void run_dtw_graph_sweep(const bench::BenchOptions& opts,
                         std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kLen = 24;
  constexpr std::size_t kK = 8;
  constexpr std::ptrdiff_t kBand = 4;
  std::printf("\nDTW k-NN graph construction, T=%zu, k=%zu (pruned band %td)\n",
              kLen, kK, kBand);
  std::printf("%-18s %6s %8s %14s\n", "path", "N", "threads", "ns/op");
  ThreadPool::set_global_threads(1);
  double exact_1024_ns = 0.0;
  {
    constexpr std::size_t kN = 1024;
    const Matrix s = make_dtw_series(kN, kLen, opts.seed + 3);
    const bench::TimingStats exact = bench::measure_ns_per_op([&] {
      const Matrix d = ts::pairwise_series_distance(s, ts::SeriesDistance::kDtw);
      const CsrMatrix adj =
          graph::gaussian_knn_adjacency(graph::knn_from_distances(d, kK));
      benchmark::DoNotOptimize(adj.nnz());
    });
    exact_1024_ns = exact.median_ns;
    results.push_back(timed_row("dtw_graph_exact", kN, 1.0, 1, exact));
    std::printf("%-18s %6zu %8d %14.0f\n", "dtw_graph_exact", kN, 1,
                exact.median_ns);
  }
  for (const std::size_t n : {std::size_t{1024}, std::size_t{4096}}) {
    const Matrix s = make_dtw_series(n, kLen, opts.seed + 3);
    for (const std::size_t threads : {1, 4}) {
      if (n == 1024 && threads != 1) continue;  // 1T suffices for the ratio
      ThreadPool::set_global_threads(threads);
      ts::KnnOptions kopts;
      kopts.k = kK;
      kopts.band = kBand;
      kopts.prune = true;
      const bench::TimingStats pruned = bench::measure_ns_per_op([&] {
        const CsrMatrix adj =
            graph::gaussian_knn_adjacency(ts::knn_series_graph(s, kopts));
        benchmark::DoNotOptimize(adj.nnz());
      });
      const double density =
          static_cast<double>(n * n) /
          static_cast<double>(1024 * 1024);  // N² work scale vs the baseline
      results.push_back(
          timed_row("dtw_graph_pruned", n, density, threads, pruned));
      std::printf("%-18s %6zu %8zu %14.0f\n", "dtw_graph_pruned", n, threads,
                  pruned.median_ns);
      if (n == 4096 && threads == 1 && exact_1024_ns > 0.0) {
        // Extrapolated dense cost at 4096 = 16x the measured 1024 baseline.
        std::printf("  pruned@4096 vs 16x-extrapolated exact: %.1fx faster\n",
                    16.0 * exact_1024_ns / pruned.median_ns);
      }
    }
  }
  ThreadPool::set_global_threads(0);
}

// End-to-end view: one RIHGCN train step (forward + backward) with the
// sparse backend on vs off and the fused recurrent cells on vs off, same
// parameters and data. The step runs on a hoisted arena tape (reset() per
// step, as the trainer does), so the rows also carry the tape-arena health
// metrics of DESIGN.md §10: graph size in nodes ("tape_nodes_*", node count
// stored in ns_per_op) and steady-state pool misses per step
// ("pool_steady_allocs" — 0 means every buffer of a warm step is recycled).
void run_train_step_compare(const bench::BenchOptions& opts,
                            std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kNodes = 256;
  data::PemsLikeConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.num_corridors = kNodes / 10;
  cfg.num_days = 2;
  cfg.steps_per_day = 48;
  cfg.seed = opts.seed;
  data::TrafficDataset ds = data::generate_pems_like(cfg);
  Rng rng(opts.seed + 1);
  data::inject_mcar(ds, 0.4, rng);
  const std::size_t train_end = ds.num_timesteps() * 7 / 10;
  const data::ZScoreNormalizer nz(ds, train_end);
  nz.normalize(ds);
  data::WindowSampler sampler(ds, 6, 3);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 2;
  gcfg.partition_slots = 24;
  core::HeterogeneousGraphs graphs(ds, train_end, gcfg, rng);
  const data::Window w = sampler.make_window(10);

  std::printf("\nRIHGCN train step, N=%zu (forward+backward, M=2, K=3)\n",
              kNodes);
  std::printf("%-18s %8s %14s %9s\n", "config", "threads", "ns/op", "speedup");
  double density = 0.0;
  {
    const auto stats =
        graph::sparsity_stats(graphs.geographic().scaled_laplacian());
    density = stats.density;
  }
  struct StepConfig {
    const char* name;
    bool sparse;
    bool fused;
    bool guarded;
  };
  constexpr StepConfig kConfigs[] = {
      {"train_step_dense", false, true, false},
      {"train_step_sparse", true, true, false},
      {"train_step_unfused", true, false, false},  // sparse, elementary cells
      // Identical compute to train_step_sparse plus the NumericalGuard's
      // per-step work (loss/grad scan, EMA update, snapshot cadence) — the
      // fault-tolerance overhead budget is <= 5% of train_step_sparse @ 1T.
      {"train_step_guarded", true, true, true},
  };
  for (const std::size_t threads : {1, 4}) {
    ThreadPool::set_global_threads(threads);
    double base_ns = 0.0;
    for (const StepConfig& sc : kConfigs) {
      core::RihgcnConfig mc;
      mc.lookback = 6;
      mc.horizon = 3;
      mc.gcn_dim = 8;
      mc.lstm_dim = 8;
      mc.use_sparse_graphs = sc.sparse;
      mc.use_fused_cells = sc.fused;
      core::RihgcnModel model(graphs, kNodes, ds.num_features(), mc);
      std::vector<ad::Parameter*> params = model.parameters();
      nn::AdamOptimizer opt(params);
      core::NumericalGuard guard(params, opt, core::GuardConfig{});
      ad::Tape tape;  // arena, reused per step like the training loop
      auto step = [&] {
        for (ad::Parameter* p : model.parameters()) p->zero_grad();
        tape.reset();
        ad::Var loss = model.training_loss(tape, w);
        tape.backward(loss);
        if (sc.guarded) {
          benchmark::DoNotOptimize(guard.inspect(tape.value(loss)(0, 0)));
          guard.after_step();
        }
        benchmark::DoNotOptimize(loss);
      };
      const bench::TimingStats stats = bench::measure_ns_per_op(step);
      const double ns = stats.median_ns;
      results.push_back(timed_row(sc.name, kNodes, density, threads, stats));
      if (&sc == &kConfigs[0]) base_ns = ns;
      std::printf("%-18s %8zu %14.0f %8.2fx\n", sc.name, threads, ns,
                  base_ns / ns);
      if (threads == 1 && sc.sparse && !sc.guarded) {
        // Arena health (measure_ns_per_op already warmed the pool): tape size
        // and pool misses of one more steady-state step.
        const std::size_t misses_before = tape.pool().misses();
        step();
        const auto nodes = static_cast<double>(tape.num_nodes());
        const auto allocs =
            static_cast<double>(tape.pool().misses() - misses_before);
        results.push_back(
            counter_row(sc.fused ? "tape_nodes_fused" : "tape_nodes_unfused",
                        kNodes, density, nodes, threads));
        std::printf("  %-16s %24.0f nodes\n",
                    sc.fused ? "tape_nodes_fused" : "tape_nodes_unfused",
                    nodes);
        if (sc.fused) {
          results.push_back(
              counter_row("pool_steady_allocs", kNodes, density, allocs,
                          threads));
          std::printf("  %-16s %24.0f allocs/step\n", "pool_steady_allocs",
                      allocs);
        }
      }
    }
    // Partitioned (Cluster-GCN) step: same window swept as 8 per-cluster
    // sub-graph losses (DESIGN.md §13). More total work than one full-graph
    // step at this small N (halo overlap + per-cluster fixed costs) — the
    // mode pays off when N x N no longer fits, so this row tracks the
    // overhead factor rather than a speedup.
    {
      core::RihgcnConfig mc;
      mc.lookback = 6;
      mc.horizon = 3;
      mc.gcn_dim = 8;
      mc.lstm_dim = 8;
      core::RihgcnModel model(graphs, kNodes, ds.num_features(), mc);
      model.prepare_clusters(8, opts.seed);
      ad::Tape tape;
      const bench::TimingStats stats = bench::measure_ns_per_op([&] {
        for (ad::Parameter* p : model.parameters()) p->zero_grad();
        for (std::size_t c = 0; c < model.num_clusters(); ++c) {
          tape.reset();
          ad::Var loss = model.cluster_training_loss(tape, w, c);
          tape.backward(loss);
          benchmark::DoNotOptimize(loss);
        }
      });
      results.push_back(
          timed_row("train_step_clustered", kNodes, density, threads, stats));
      std::printf("%-18s %8zu %14.0f %8s\n", "train_step_clustered", threads,
                  stats.median_ns, "(8 clusters)");
    }
  }
  ThreadPool::set_global_threads(0);
}

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark consumes its --benchmark* flags first; the harness
  // parser picks up the rest (--json=PATH, --seed=N; it also tolerates any
  // --benchmark* stragglers).
  benchmark::Initialize(&argc, argv);
  const rihgcn::bench::BenchOptions opts =
      rihgcn::bench::BenchOptions::parse(argc, argv);
  std::vector<rihgcn::bench::MicroResult> results;
  run_sparse_sweep(opts, results);
  run_simd_sweep(opts, results);
  run_dtw_graph_sweep(opts, results);
  run_train_step_compare(opts, results);
  if (!opts.json_path.empty()) {
    rihgcn::bench::write_micro_json(opts.json_path, results);
    std::printf("(json written to %s)\n", opts.json_path.c_str());
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
