// Serving-path benchmark (DESIGN.md §14): the compiled f32 InferenceEngine
// against the f64 tape forward, and the ForecastServer's sustained
// throughput / latency under concurrent clients.
//
// Rows written to BENCH_serve.json (tools/run_bench.sh --serve):
//   tape_predict / engine_predict (n = 256, 1024) — one query window through
//     RihgcnModel::predict (tape, f64) vs InferenceEngine::predict (compiled
//     f32 plan). The acceptance target is engine >= 2x faster at N = 256.
//   serve_req_ns_cC (n = 256, C = 1/4/16 clients) — mean wall time per
//     answered request over a fixed-duration closed-loop run: 1e9 / QPS, so
//     a QPS drop gates as a timing regression once the rows graduate.
//   serve_p50_ns_cC / serve_p99_ns_cC — client-observed latency percentiles
//     of the same run.
//   serve_qps_cC — the human-readable rate (permanently informational:
//     redundant with serve_req_ns, kept for the JSON reader's convenience).
//
// All clients query ONE stream with no ingest in between, so the server's
// coalescing answers every concurrent burst with a single engine call —
// that, not core count, is what scales QPS with C (acceptance: >= 4x at
// C = 16 vs C = 1).
//
// Worker-pool rows (DESIGN.md §16):
//   serve_req_ns_wK / serve_p50_ns_wK / serve_p99_ns_wK / serve_qps_wK
//     (n = 256, 1024; K = 1/2/4/8) — closed-loop run with 8 clients on 8
//     DISTINCT streams (no coalescing) against a server with K ExecPool
//     workers; the "workers" JSON field records K. QPS scales with K only
//     when the host has the cores — the sweep prints the core count so a
//     flat single-core result reads as the hardware fact it is.
//   sharded_engine_predict (n = 16384, workers = 8 shards) — one city-scale
//     window through the cluster-sharded engine.
// Latency rows carry real min_ns (fastest client-observed sample) and
// stddev_ns (sample spread); rate rows omit both rather than writing 0.0.
//
// Overload & fault-tolerance rows (DESIGN.md §15):
//   serve_overload_req_ns / serve_overload_p99_ns / serve_overload_qps —
//     goodput and successful-request tail under a sustained ~2x-capacity
//     storm: 4 clients on 4 distinct streams against a slow FaultyEngine
//     behind a 2-slot admission queue with a per-request deadline. Sheds
//     and expiries are the designed behaviour; the rows track what the
//     surviving requests cost.
//   serve_fallback_req_ns / serve_fallback_p99_ns — latency of the
//     degraded path with the circuit breaker held OPEN (last-good serving,
//     zero engine calls). The breaker exists so this number stays tiny.
//   serve_ctr_* (kind = "counter") — exact fault counters from a scripted,
//     single-threaded choreography (forced faults, no rates, no timing
//     races): sheds, deadline expiries, breaker open/probe/close,
//     engine failures, fallback responses, canary quarantines, swaps.
//     check_bench.py exact-diffs counter rows, so any drift in §15
//     semantics fails the perf-smoke comparison once the rows graduate.
//
// Every row is marked informational this PR (no trusted baseline yet); the
// flag drops when the runner noise floor is known.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/sharded_engine.hpp"
#include "harness.hpp"
#include "serve/error.hpp"
#include "serve/faulty_engine.hpp"
#include "serve/server.hpp"

namespace {

using namespace rihgcn;

struct ServeEnv {
  data::TrafficDataset ds;
  std::unique_ptr<data::ZScoreNormalizer> normalizer;
  std::unique_ptr<data::WindowSampler> sampler;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::unique_ptr<core::RihgcnModel> model;
};

// Serving-scale model (train-step bench dimensions). N = 256 uses the dense
// graph pipeline; N = 1024 the city-scale k-NN sparse pipeline — the same
// split the rest of the bench suite draws at these sizes. Weights are the
// seeded init: perf is weight-independent.
ServeEnv make_env(std::size_t n, std::uint64_t seed) {
  ServeEnv env;
  data::PemsLikeConfig cfg;
  cfg.num_nodes = n;
  cfg.num_corridors = n / 10;
  cfg.num_days = 2;
  cfg.steps_per_day = 48;
  cfg.seed = seed;
  env.ds = data::generate_pems_like(cfg);
  Rng rng(seed + 1);
  data::inject_mcar(env.ds, 0.4, rng);
  const std::size_t train_end = env.ds.num_timesteps() * 7 / 10;
  env.normalizer = std::make_unique<data::ZScoreNormalizer>(env.ds, train_end);
  env.normalizer->normalize(env.ds);
  env.sampler = std::make_unique<data::WindowSampler>(env.ds, 6, 3);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 2;
  gcfg.partition_slots = 24;
  if (n > 512) {
    gcfg.knn = 8;
    gcfg.dtw_band = 4;
  }
  env.graphs = std::make_unique<core::HeterogeneousGraphs>(env.ds, train_end,
                                                           gcfg, rng);
  core::RihgcnConfig mc;
  mc.lookback = 6;
  mc.horizon = 3;
  mc.gcn_dim = 8;
  mc.lstm_dim = 8;
  mc.seed = seed;
  mc.use_sparse_graphs = true;
  env.model = std::make_unique<core::RihgcnModel>(
      *env.graphs, env.ds.num_nodes(), env.ds.num_features(), mc);
  return env;
}

bench::MicroResult serve_row(const std::string& name, std::size_t n,
                             std::size_t threads, double ns,
                             double min_ns = 0.0, double stddev_ns = 0.0,
                             std::size_t workers = 0) {
  bench::MicroResult r;
  r.name = name;
  r.n = n;
  r.ns_per_op = ns;
  r.threads = threads;
  r.min_ns = min_ns;
  r.stddev_ns = stddev_ns;
  r.workers = workers;
  r.informational = true;  // fresh rows: one PR without a trusted baseline
  return r;
}

/// Sample stddev of a latency vector (0 for fewer than two samples).
double sample_stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double mean = 0.0;
  for (const double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double ss = 0.0;
  for (const double x : v) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

// Deterministic program fact (shed count, breaker transitions, ...):
// ns_per_op carries the value, kind = "counter" makes check_bench.py
// exact-diff it instead of applying the timing threshold.
bench::MicroResult serve_counter(const char* name, std::size_t n,
                                 double value) {
  bench::MicroResult r = serve_row(name, n, 1, value);
  r.kind = "counter";
  return r;
}

// One denormalized reading seeds stream `id` from dataset timestep `t`.
void seed_stream(serve::ForecastServer& server, const ServeEnv& env,
                 std::size_t id, std::size_t t) {
  const std::size_t n = env.ds.num_nodes();
  const std::size_t f = env.ds.num_features();
  Matrix values(n, f);
  Matrix mask(n, f);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < f; ++c) {
      mask(i, c) = env.ds.mask[t](i, c);
      values(i, c) =
          env.normalizer->denormalize(env.ds.truth[t](i, c), c) * mask(i, c);
    }
  }
  server.ingest(id, values, mask);
}

void run_predict_compare(const bench::BenchOptions& opts,
                         std::vector<bench::MicroResult>& results) {
  std::printf("Single-query forward: f64 tape vs compiled f32 engine\n");
  std::printf("%-16s %6s %14s %9s\n", "path", "N", "ns/op", "speedup");
  for (const std::size_t n : {std::size_t{256}, std::size_t{1024}}) {
    ServeEnv env = make_env(n, opts.seed);
    core::InferenceEngine engine(*env.model);
    const data::Window w = env.sampler->make_window(7);
    const bench::TimingStats tape = bench::measure_ns_per_op([&] {
      const Matrix pred = env.model->predict(w);
      if (pred.has_non_finite()) std::abort();
    });
    const bench::TimingStats eng = bench::measure_ns_per_op([&] {
      const Matrix pred = engine.predict(w);
      if (pred.has_non_finite()) std::abort();
    });
    results.push_back(serve_row("tape_predict", n, 1, tape.median_ns,
                                tape.min_ns, tape.stddev_ns));
    results.push_back(serve_row("engine_predict", n, 1, eng.median_ns,
                                eng.min_ns, eng.stddev_ns));
    std::printf("%-16s %6zu %14.0f %9s\n", "tape_predict", n, tape.median_ns,
                "1.00x");
    std::printf("%-16s %6zu %14.0f %8.2fx\n", "engine_predict", n,
                eng.median_ns, tape.median_ns / eng.median_ns);
  }
}

void run_serve_load(const bench::BenchOptions& opts,
                    std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kNodes = 256;
  // --full doubles the measurement window for a tighter tail estimate.
  const double duration_sec = opts.full ? 2.0 : 0.8;
  ServeEnv env = make_env(kNodes, opts.seed);
  auto engine = std::make_shared<core::InferenceEngine>(*env.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 200;
  serve::ForecastServer server(engine, *env.normalizer, cfg);
  const std::size_t id = server.add_stream();
  // One reading seeds the stream; clients never ingest, so every concurrent
  // burst coalesces onto one window.
  seed_stream(server, env, id, 3);
  for (int i = 0; i < 20; ++i) (void)server.forecast(id);  // warmup

  std::printf("\nForecastServer closed-loop load, N=%zu, %.1fs per point\n",
              kNodes, duration_sec);
  std::printf("%-8s %10s %12s %12s %12s\n", "clients", "QPS", "p50_us",
              "p99_us", "calls/req");
  double qps_c1 = 0.0;
  for (const std::size_t clients : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}}) {
    const serve::ServerStats before = server.stats();
    std::vector<std::vector<double>> lat(clients);
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + std::chrono::duration<double>(duration_sec);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        while (std::chrono::steady_clock::now() < deadline) {
          const auto q0 = std::chrono::steady_clock::now();
          const Matrix pred = server.forecast(id);
          const auto q1 = std::chrono::steady_clock::now();
          if (pred.has_non_finite()) std::abort();
          lat[c].push_back(
              std::chrono::duration<double, std::nano>(q1 - q0).count());
        }
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed = bench::seconds_since(t0);
    std::vector<double> all;
    for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    const std::size_t count = all.size();
    if (count == 0) continue;  // pathological run; leave the rows out
    const double qps = static_cast<double>(count) / elapsed;
    const double p50 = all[count / 2];
    const double p99 = all[std::min(count - 1, count * 99 / 100)];
    const serve::ServerStats after = server.stats();
    const double calls_per_req =
        static_cast<double>(after.engine_calls - before.engine_calls) /
        static_cast<double>(count);
    if (clients == 1) qps_c1 = qps;
    // min/stddev come from the client-observed latency samples; the qps row
    // is a derived rate with no per-sample spread, so it omits them.
    const double lat_min = all.front();
    const double lat_sd = sample_stddev(all);
    const std::string suffix = "_c" + std::to_string(clients);
    results.push_back(serve_row("serve_req_ns" + suffix, kNodes, clients,
                                1e9 / qps, lat_min, lat_sd));
    results.push_back(serve_row("serve_p50_ns" + suffix, kNodes, clients, p50,
                                lat_min, lat_sd));
    results.push_back(serve_row("serve_p99_ns" + suffix, kNodes, clients, p99,
                                lat_min, lat_sd));
    results.push_back(serve_row("serve_qps" + suffix, kNodes, clients, qps));
    std::printf("%-8zu %10.0f %12.0f %12.0f %12.3f\n", clients, qps,
                p50 / 1e3, p99 / 1e3, calls_per_req);
    if (clients == 16 && qps_c1 > 0.0) {
      std::printf("  QPS scaling c16/c1: %.2fx (coalescing)\n", qps / qps_c1);
    }
  }
}

// §16 worker-pool sweep: 8 clients on 8 DISTINCT streams (no coalescing
// relief — every request is its own batch window) against a pooled server
// at K = 1/2/4/8 ExecPool workers. This is the row family the "parallel
// execution layer" PR exists for: on a multi-core host QPS should scale
// with K until cores or max_batch run out; on a single-core host the sweep
// is honest about being flat (the workers field records K either way).
void run_worker_sweep(const bench::BenchOptions& opts,
                      std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kClients = 8;
  const double duration_sec = opts.full ? 2.0 : 0.8;
  for (const std::size_t n : {std::size_t{256}, std::size_t{1024}}) {
    ServeEnv env = make_env(n, opts.seed);
    core::InferenceEngine::Options eopts;
    eopts.max_batch = kClients;
    auto engine = std::make_shared<core::InferenceEngine>(*env.model, eopts);
    std::printf("\nWorker-pool sweep, N=%zu, %zu clients on %zu streams, "
                "%.1fs per point (host cores: %u)\n",
                n, kClients, kClients, duration_sec,
                std::thread::hardware_concurrency());
    std::printf("%-8s %10s %12s %12s\n", "workers", "QPS", "p50_us", "p99_us");
    double qps_w1 = 0.0;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
      serve::ServeConfig cfg;
      cfg.max_batch = kClients;
      cfg.max_delay_us = 200;
      cfg.max_queue = 64;
      cfg.num_workers = workers;
      serve::ForecastServer server(engine, *env.normalizer, cfg);
      std::vector<std::size_t> ids;
      for (std::size_t c = 0; c < kClients; ++c) {
        ids.push_back(server.add_stream(c));
        seed_stream(server, env, ids.back(), 3 + c);
        (void)server.forecast(ids.back());  // warmup: plan + workspace caches
      }
      std::vector<std::vector<double>> lat(kClients);
      const auto t0 = std::chrono::steady_clock::now();
      const auto deadline = t0 + std::chrono::duration<double>(duration_sec);
      std::vector<std::thread> threads;
      for (std::size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
          while (std::chrono::steady_clock::now() < deadline) {
            const auto q0 = std::chrono::steady_clock::now();
            const Matrix pred = server.forecast(ids[c]);
            const auto q1 = std::chrono::steady_clock::now();
            if (pred.has_non_finite()) std::abort();
            lat[c].push_back(
                std::chrono::duration<double, std::nano>(q1 - q0).count());
          }
        });
      }
      for (auto& t : threads) t.join();
      const double elapsed = bench::seconds_since(t0);
      std::vector<double> all;
      for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end());
      const std::size_t count = all.size();
      if (count == 0) continue;  // pathological run; leave the rows out
      const double qps = static_cast<double>(count) / elapsed;
      const double p50 = all[count / 2];
      const double p99 = all[std::min(count - 1, count * 99 / 100)];
      const double lat_min = all.front();
      const double lat_sd = sample_stddev(all);
      if (workers == 1) qps_w1 = qps;
      const std::string suffix = "_w" + std::to_string(workers);
      results.push_back(serve_row("serve_req_ns" + suffix, n, kClients,
                                  1e9 / qps, lat_min, lat_sd, workers));
      results.push_back(serve_row("serve_p50_ns" + suffix, n, kClients, p50,
                                  lat_min, lat_sd, workers));
      results.push_back(serve_row("serve_p99_ns" + suffix, n, kClients, p99,
                                  lat_min, lat_sd, workers));
      results.push_back(serve_row("serve_qps" + suffix, n, kClients, qps, 0.0,
                                  0.0, workers));
      std::printf("%-8zu %10.0f %12.0f %12.0f\n", workers, qps, p50 / 1e3,
                  p99 / 1e3);
      if (workers == 8 && qps_w1 > 0.0) {
        std::printf("  QPS scaling w8/w1: %.2fx\n", qps / qps_w1);
      }
    }
  }
}

// §16 sharded city-scale forward: one N = 16384 window through the
// cluster-sharded engine (8 shards over the pruned k-NN graph pipeline).
// Few reps — the fixture build alone dominates — so min/stddev come from a
// short hand-rolled sample rather than the growing-window harness.
void run_sharded_predict(const bench::BenchOptions& opts,
                         std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kNodes = 16384;
  constexpr std::size_t kShards = 8;
  std::printf("\nShardedEngine city-scale forward, N=%zu, %zu shards\n",
              kNodes, kShards);
  ServeEnv env = make_env(kNodes, opts.seed);
  core::ShardedEngine::Options sopts;
  sopts.num_shards = kShards;
  core::ShardedEngine sharded(*env.model, sopts);
  const data::Window w = env.sampler->make_window(7);
  {
    const Matrix pred = sharded.predict(w);  // warmup
    if (pred.has_non_finite()) std::abort();
  }
  const std::size_t reps = opts.full ? 7 : 3;
  std::vector<double> samples;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const Matrix pred = sharded.predict(w);
    const auto t1 = std::chrono::steady_clock::now();
    if (pred.has_non_finite()) std::abort();
    samples.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  const double median = samples[samples.size() / 2];
  results.push_back(serve_row("sharded_engine_predict", kNodes, 1, median,
                              samples.front(), sample_stddev(samples),
                              kShards));
  std::printf("  %.1f ms/predict (min %.1f ms over %zu reps)\n", median / 1e6,
              samples.front() / 1e6, reps);
}

// Sustained overload at roughly 2x capacity (DESIGN.md §15): a FaultyEngine
// stalling 2 ms per flush behind a 2-slot admission queue, 4 clients on 4
// DISTINCT streams (no coalescing relief) with a 5 ms default deadline.
// Roughly half the offered load must be shed or expired by design; the rows
// track goodput and the successful-request tail, which is what a client of
// an overloaded-but-healthy server actually observes.
void run_overload_bench(const bench::BenchOptions& opts,
                        std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kNodes = 256;
  constexpr std::size_t kClients = 4;
  const double duration_sec = opts.full ? 2.0 : 0.8;
  ServeEnv env = make_env(kNodes, opts.seed);
  core::InferenceEngine::Options eopts;
  eopts.max_batch = kClients;
  serve::FaultyEngine::FaultConfig faults;
  faults.latency_us = 2000;  // the overload knob: every flush stalls 2 ms
  auto engine = std::make_shared<serve::FaultyEngine>(*env.model, eopts,
                                                      faults);
  serve::ServeConfig cfg;
  cfg.max_batch = kClients;
  cfg.max_delay_us = 200;
  cfg.max_queue = 2;  // half the client count: sustained ~2x overcommit
  cfg.default_deadline_us = 5000;
  serve::ForecastServer server(engine, *env.normalizer, cfg);
  std::vector<std::size_t> ids;
  for (std::size_t c = 0; c < kClients; ++c) {
    ids.push_back(server.add_stream());
    seed_stream(server, env, ids.back(), 3 + c);
  }
  const serve::ServerStats before = server.stats();
  std::vector<std::vector<double>> lat(kClients);
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(duration_sec);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      while (std::chrono::steady_clock::now() < deadline) {
        const auto q0 = std::chrono::steady_clock::now();
        try {
          const Matrix pred = server.forecast(ids[c]);
          if (pred.has_non_finite()) std::abort();
        } catch (const serve::ServeError&) {
          continue;  // shed or expired: designed behaviour, not goodput
        }
        const auto q1 = std::chrono::steady_clock::now();
        lat[c].push_back(
            std::chrono::duration<double, std::nano>(q1 - q0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = bench::seconds_since(t0);
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const std::size_t count = all.size();
  if (count == 0) return;  // pathological run; leave the rows out
  const serve::ServerStats after = server.stats();
  const double qps = static_cast<double>(count) / elapsed;
  const double p99 = all[std::min(count - 1, count * 99 / 100)];
  const double lat_min = all.front();
  const double lat_sd = sample_stddev(all);
  const std::size_t shed = after.shed_requests - before.shed_requests;
  const std::size_t expired = after.deadline_expired - before.deadline_expired;
  results.push_back(serve_row("serve_overload_req_ns", kNodes, kClients,
                              1e9 / qps, lat_min, lat_sd));
  results.push_back(serve_row("serve_overload_p99_ns", kNodes, kClients, p99,
                              lat_min, lat_sd));
  results.push_back(serve_row("serve_overload_qps", kNodes, kClients, qps));
  std::printf("\nOverload storm (~2x capacity, 2ms engine, queue=2, "
              "deadline=5ms), N=%zu\n", kNodes);
  std::printf("  goodput %.0f QPS, p99 %.0f us; shed %zu, expired %zu of "
              "%zu offered\n", qps, p99 / 1e3, shed, expired,
              count + shed + expired);
}

// Degraded-path latency (DESIGN.md §15): hold the circuit breaker OPEN (two
// forced throws, 60 s cooldown) and measure what a request costs when the
// loop answers straight from the stream's last-good forecast, no engine
// call. This is the latency clients see while the engine is down.
void run_fallback_bench(const bench::BenchOptions& opts,
                        std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kNodes = 256;
  const double duration_sec = opts.full ? 1.0 : 0.4;
  ServeEnv env = make_env(kNodes, opts.seed);
  auto engine = std::make_shared<serve::FaultyEngine>(
      *env.model, core::InferenceEngine::Options{},
      serve::FaultyEngine::FaultConfig{});
  serve::ServeConfig cfg;
  cfg.max_batch = 1;  // flush per request: deterministic breaker choreography
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown_us = 60'000'000;  // breaker stays open for the run
  serve::ForecastServer server(engine, *env.normalizer, cfg);
  const std::size_t id = server.add_stream();
  seed_stream(server, env, id, 3);
  (void)server.forecast(id);  // healthy call populates last_good
  engine->force_throw_next(cfg.breaker_threshold);
  for (std::size_t k = 0; k < cfg.breaker_threshold; ++k) {
    (void)server.forecast(id);  // fallback responses; breaker opens
  }
  const std::size_t calls_open = engine->calls();
  std::vector<double> lat;
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(duration_sec);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto q0 = std::chrono::steady_clock::now();
    const Matrix pred = server.forecast(id);
    const auto q1 = std::chrono::steady_clock::now();
    if (pred.has_non_finite()) std::abort();
    lat.push_back(std::chrono::duration<double, std::nano>(q1 - q0).count());
  }
  if (engine->calls() != calls_open) std::abort();  // breaker must stay open
  std::sort(lat.begin(), lat.end());
  const std::size_t count = lat.size();
  if (count == 0) return;
  const double mean = static_cast<double>(count) /
                      bench::seconds_since(t0);
  const double p99 = lat[std::min(count - 1, count * 99 / 100)];
  const double lat_min = lat.front();
  const double lat_sd = sample_stddev(lat);
  results.push_back(serve_row("serve_fallback_req_ns", kNodes, 1, 1e9 / mean,
                              lat_min, lat_sd));
  results.push_back(serve_row("serve_fallback_p99_ns", kNodes, 1, p99,
                              lat_min, lat_sd));
  std::printf("\nBreaker-open fallback path (last-good, zero engine calls), "
              "N=%zu\n", kNodes);
  std::printf("  %.0f req/s, p50 %.1f us, p99 %.1f us\n", mean,
              lat[count / 2] / 1e3, p99 / 1e3);
}

// Exact §15 fault counters from a scripted single-threaded choreography —
// forced faults only, no rates, no cross-thread races, generous timing
// margins — so every run of this binary produces bit-identical values and
// check_bench.py can exact-diff them as kind = "counter" rows.
void run_fault_counters(const bench::BenchOptions& opts,
                        std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kNodes = 256;
  ServeEnv env = make_env(kNodes, opts.seed);

  // --- Part 1: bounded admission + deadlines --------------------------------
  // Queue of 2, flush only on drain (60 s delay timer, batch of 8 never
  // reached): four async requests on four distinct streams admit exactly two
  // and shed exactly two; a fifth request with a 1 us deadline expires
  // (on-arrival or via its queue timer — both count once) before any flush.
  std::size_t shed = 0, expired = 0;
  {
    auto engine = std::make_shared<serve::FaultyEngine>(
        *env.model, core::InferenceEngine::Options{},
        serve::FaultyEngine::FaultConfig{});
    serve::ServeConfig cfg;
    cfg.max_batch = 8;
    cfg.max_delay_us = 60'000'000;
    cfg.max_queue = 2;
    cfg.shed_policy = serve::ShedPolicy::kRejectNew;
    serve::ForecastServer server(engine, *env.normalizer, cfg);
    std::vector<std::size_t> ids;
    for (std::size_t c = 0; c < 4; ++c) {
      ids.push_back(server.add_stream());
      seed_stream(server, env, ids.back(), 3 + c);
    }
    std::vector<std::future<Matrix>> futs;
    for (std::size_t c = 0; c < 4; ++c) {
      futs.push_back(server.forecast_async(ids[c]));
    }
    auto doomed = server.forecast_async(ids[0], std::uint64_t{1});
    try {
      (void)doomed.get();
      std::abort();  // a 1 us deadline with a 60 s flush timer cannot win
    } catch (const serve::ServeError&) {
    }
    for (std::size_t c = 2; c < 4; ++c) {
      try {
        (void)futs[c].get();
        std::abort();  // beyond max_queue: must be OVERLOADED
      } catch (const serve::ServeError&) {
      }
    }
    server.drain();  // final flush serves the two admitted windows
    (void)futs[0].get();
    (void)futs[1].get();
    const serve::ServerStats s = server.stats();
    shed = s.shed_requests;
    expired = s.deadline_expired;
  }

  // --- Part 2: breaker lifecycle, fallback, canary quarantine ---------------
  serve::ServerStats fault_stats;
  {
    auto engine = std::make_shared<serve::FaultyEngine>(
        *env.model, core::InferenceEngine::Options{},
        serve::FaultyEngine::FaultConfig{});
    serve::ServeConfig cfg;
    cfg.max_batch = 1;  // every request is its own flush
    cfg.breaker_threshold = 2;
    cfg.breaker_cooldown_us = 200'000;
    serve::ForecastServer server(engine, *env.normalizer, cfg);
    const std::size_t id = server.add_stream();
    seed_stream(server, env, id, 3);
    (void)server.forecast(id);  // healthy: last_good populated
    engine->force_throw_next(2);
    (void)server.forecast(id);  // failure 1: fallback response
    (void)server.forecast(id);  // failure 2: fallback, breaker OPEN
    (void)server.forecast(id);  // open + inside cooldown: fallback, no call
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    (void)server.forecast(id);  // half-open probe succeeds: breaker CLOSED
    // Canary gate: a NaN-poisoning candidate and a throwing candidate are
    // both quarantined; a healthy one swaps.
    serve::FaultyEngine::FaultConfig nan_always;
    nan_always.nan_rate = 1.0;
    if (server.publish(std::make_shared<serve::FaultyEngine>(
            *env.model, core::InferenceEngine::Options{}, nan_always))) {
      std::abort();
    }
    auto thrower = std::make_shared<serve::FaultyEngine>(
        *env.model, core::InferenceEngine::Options{},
        serve::FaultyEngine::FaultConfig{});
    thrower->force_throw_next(1);
    if (server.publish(thrower)) std::abort();
    if (!server.publish(std::make_shared<core::InferenceEngine>(*env.model))) {
      std::abort();
    }
    server.drain();  // join the loop so the posted swap is counted
    fault_stats = server.stats();
  }

  results.push_back(serve_counter("serve_ctr_shed", kNodes,
                                  static_cast<double>(shed)));
  results.push_back(serve_counter("serve_ctr_deadline_expired", kNodes,
                                  static_cast<double>(expired)));
  results.push_back(serve_counter(
      "serve_ctr_engine_failures", kNodes,
      static_cast<double>(fault_stats.engine_failures)));
  results.push_back(serve_counter(
      "serve_ctr_fallback_responses", kNodes,
      static_cast<double>(fault_stats.fallback_responses)));
  results.push_back(serve_counter(
      "serve_ctr_breaker_opens", kNodes,
      static_cast<double>(fault_stats.breaker_opens)));
  results.push_back(serve_counter(
      "serve_ctr_breaker_probes", kNodes,
      static_cast<double>(fault_stats.breaker_probes)));
  results.push_back(serve_counter(
      "serve_ctr_breaker_closes", kNodes,
      static_cast<double>(fault_stats.breaker_closes)));
  results.push_back(serve_counter(
      "serve_ctr_quarantined", kNodes,
      static_cast<double>(fault_stats.quarantined_publishes)));
  results.push_back(serve_counter(
      "serve_ctr_snapshot_swaps", kNodes,
      static_cast<double>(fault_stats.snapshot_swaps)));
  std::printf("\nFault counters (scripted): shed=%zu expired=%zu "
              "failures=%zu fallback=%zu opens=%zu probes=%zu closes=%zu "
              "quarantined=%zu swaps=%zu\n",
              shed, expired, fault_stats.engine_failures,
              fault_stats.fallback_responses, fault_stats.breaker_opens,
              fault_stats.breaker_probes, fault_stats.breaker_closes,
              fault_stats.quarantined_publishes, fault_stats.snapshot_swaps);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  std::vector<bench::MicroResult> results;
  run_predict_compare(opts, results);
  run_serve_load(opts, results);
  run_worker_sweep(opts, results);
  run_sharded_predict(opts, results);
  run_overload_bench(opts, results);
  run_fallback_bench(opts, results);
  run_fault_counters(opts, results);
  if (!opts.json_path.empty()) {
    bench::write_micro_json(opts.json_path, results);
    std::printf("(json written to %s)\n", opts.json_path.c_str());
  }
  return 0;
}
