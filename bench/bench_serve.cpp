// Serving-path benchmark (DESIGN.md §14): the compiled f32 InferenceEngine
// against the f64 tape forward, and the ForecastServer's sustained
// throughput / latency under concurrent clients.
//
// Rows written to BENCH_serve.json (tools/run_bench.sh --serve):
//   tape_predict / engine_predict (n = 256, 1024) — one query window through
//     RihgcnModel::predict (tape, f64) vs InferenceEngine::predict (compiled
//     f32 plan). The acceptance target is engine >= 2x faster at N = 256.
//   serve_req_ns_cC (n = 256, C = 1/4/16 clients) — mean wall time per
//     answered request over a fixed-duration closed-loop run: 1e9 / QPS, so
//     a QPS drop gates as a timing regression once the rows graduate.
//   serve_p50_ns_cC / serve_p99_ns_cC — client-observed latency percentiles
//     of the same run.
//   serve_qps_cC — the human-readable rate (permanently informational:
//     redundant with serve_req_ns, kept for the JSON reader's convenience).
//
// All clients query ONE stream with no ingest in between, so the server's
// coalescing answers every concurrent burst with a single engine call —
// that, not core count, is what scales QPS with C (acceptance: >= 4x at
// C = 16 vs C = 1). Every row is marked informational this PR (no trusted
// baseline yet); the flag drops when the runner noise floor is known.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "harness.hpp"
#include "serve/server.hpp"

namespace {

using namespace rihgcn;

struct ServeEnv {
  data::TrafficDataset ds;
  std::unique_ptr<data::ZScoreNormalizer> normalizer;
  std::unique_ptr<data::WindowSampler> sampler;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::unique_ptr<core::RihgcnModel> model;
};

// Serving-scale model (train-step bench dimensions). N = 256 uses the dense
// graph pipeline; N = 1024 the city-scale k-NN sparse pipeline — the same
// split the rest of the bench suite draws at these sizes. Weights are the
// seeded init: perf is weight-independent.
ServeEnv make_env(std::size_t n, std::uint64_t seed) {
  ServeEnv env;
  data::PemsLikeConfig cfg;
  cfg.num_nodes = n;
  cfg.num_corridors = n / 10;
  cfg.num_days = 2;
  cfg.steps_per_day = 48;
  cfg.seed = seed;
  env.ds = data::generate_pems_like(cfg);
  Rng rng(seed + 1);
  data::inject_mcar(env.ds, 0.4, rng);
  const std::size_t train_end = env.ds.num_timesteps() * 7 / 10;
  env.normalizer = std::make_unique<data::ZScoreNormalizer>(env.ds, train_end);
  env.normalizer->normalize(env.ds);
  env.sampler = std::make_unique<data::WindowSampler>(env.ds, 6, 3);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 2;
  gcfg.partition_slots = 24;
  if (n > 512) {
    gcfg.knn = 8;
    gcfg.dtw_band = 4;
  }
  env.graphs = std::make_unique<core::HeterogeneousGraphs>(env.ds, train_end,
                                                           gcfg, rng);
  core::RihgcnConfig mc;
  mc.lookback = 6;
  mc.horizon = 3;
  mc.gcn_dim = 8;
  mc.lstm_dim = 8;
  mc.seed = seed;
  mc.use_sparse_graphs = true;
  env.model = std::make_unique<core::RihgcnModel>(
      *env.graphs, env.ds.num_nodes(), env.ds.num_features(), mc);
  return env;
}

bench::MicroResult serve_row(const std::string& name, std::size_t n,
                             std::size_t threads, double ns,
                             double min_ns = 0.0, double stddev_ns = 0.0) {
  bench::MicroResult r;
  r.name = name;
  r.n = n;
  r.ns_per_op = ns;
  r.threads = threads;
  r.min_ns = min_ns;
  r.stddev_ns = stddev_ns;
  r.informational = true;  // fresh rows: one PR without a trusted baseline
  return r;
}

void run_predict_compare(const bench::BenchOptions& opts,
                         std::vector<bench::MicroResult>& results) {
  std::printf("Single-query forward: f64 tape vs compiled f32 engine\n");
  std::printf("%-16s %6s %14s %9s\n", "path", "N", "ns/op", "speedup");
  for (const std::size_t n : {std::size_t{256}, std::size_t{1024}}) {
    ServeEnv env = make_env(n, opts.seed);
    core::InferenceEngine engine(*env.model);
    const data::Window w = env.sampler->make_window(7);
    const bench::TimingStats tape = bench::measure_ns_per_op([&] {
      const Matrix pred = env.model->predict(w);
      if (pred.has_non_finite()) std::abort();
    });
    const bench::TimingStats eng = bench::measure_ns_per_op([&] {
      const Matrix pred = engine.predict(w);
      if (pred.has_non_finite()) std::abort();
    });
    results.push_back(serve_row("tape_predict", n, 1, tape.median_ns,
                                tape.min_ns, tape.stddev_ns));
    results.push_back(serve_row("engine_predict", n, 1, eng.median_ns,
                                eng.min_ns, eng.stddev_ns));
    std::printf("%-16s %6zu %14.0f %9s\n", "tape_predict", n, tape.median_ns,
                "1.00x");
    std::printf("%-16s %6zu %14.0f %8.2fx\n", "engine_predict", n,
                eng.median_ns, tape.median_ns / eng.median_ns);
  }
}

void run_serve_load(const bench::BenchOptions& opts,
                    std::vector<bench::MicroResult>& results) {
  constexpr std::size_t kNodes = 256;
  // --full doubles the measurement window for a tighter tail estimate.
  const double duration_sec = opts.full ? 2.0 : 0.8;
  ServeEnv env = make_env(kNodes, opts.seed);
  auto engine = std::make_shared<core::InferenceEngine>(*env.model);
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 200;
  serve::ForecastServer server(engine, *env.normalizer, cfg);
  const std::size_t id = server.add_stream();
  {
    // One denormalized reading seeds the stream; clients never ingest, so
    // every concurrent burst coalesces onto one window.
    Matrix values(kNodes, env.ds.num_features());
    Matrix mask(kNodes, env.ds.num_features());
    for (std::size_t i = 0; i < kNodes; ++i) {
      for (std::size_t f = 0; f < values.cols(); ++f) {
        mask(i, f) = env.ds.mask[3](i, f);
        values(i, f) =
            env.normalizer->denormalize(env.ds.truth[3](i, f), f) * mask(i, f);
      }
    }
    server.ingest(id, values, mask);
  }
  for (int i = 0; i < 20; ++i) (void)server.forecast(id);  // warmup

  std::printf("\nForecastServer closed-loop load, N=%zu, %.1fs per point\n",
              kNodes, duration_sec);
  std::printf("%-8s %10s %12s %12s %12s\n", "clients", "QPS", "p50_us",
              "p99_us", "calls/req");
  double qps_c1 = 0.0;
  for (const std::size_t clients : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}}) {
    const serve::ServerStats before = server.stats();
    std::vector<std::vector<double>> lat(clients);
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + std::chrono::duration<double>(duration_sec);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        while (std::chrono::steady_clock::now() < deadline) {
          const auto q0 = std::chrono::steady_clock::now();
          const Matrix pred = server.forecast(id);
          const auto q1 = std::chrono::steady_clock::now();
          if (pred.has_non_finite()) std::abort();
          lat[c].push_back(
              std::chrono::duration<double, std::nano>(q1 - q0).count());
        }
      });
    }
    for (auto& t : threads) t.join();
    const double elapsed = bench::seconds_since(t0);
    std::vector<double> all;
    for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    const std::size_t count = all.size();
    if (count == 0) continue;  // pathological run; leave the rows out
    const double qps = static_cast<double>(count) / elapsed;
    const double p50 = all[count / 2];
    const double p99 = all[std::min(count - 1, count * 99 / 100)];
    const serve::ServerStats after = server.stats();
    const double calls_per_req =
        static_cast<double>(after.engine_calls - before.engine_calls) /
        static_cast<double>(count);
    if (clients == 1) qps_c1 = qps;
    const std::string suffix = "_c" + std::to_string(clients);
    results.push_back(
        serve_row("serve_req_ns" + suffix, kNodes, clients, 1e9 / qps));
    results.push_back(serve_row("serve_p50_ns" + suffix, kNodes, clients, p50));
    results.push_back(serve_row("serve_p99_ns" + suffix, kNodes, clients, p99));
    results.push_back(serve_row("serve_qps" + suffix, kNodes, clients, qps));
    std::printf("%-8zu %10.0f %12.0f %12.0f %12.3f\n", clients, qps,
                p50 / 1e3, p99 / 1e3, calls_per_req);
    if (clients == 16 && qps_c1 > 0.0) {
      std::printf("  QPS scaling c16/c1: %.2fx (coalescing)\n", qps / qps_c1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  std::vector<bench::MicroResult> results;
  run_predict_compare(opts, results);
  run_serve_load(opts, results);
  if (!opts.json_path.empty()) {
    bench::write_micro_json(opts.json_path, results);
    std::printf("(json written to %s)\n", opts.json_path.c_str());
  }
  return 0;
}
