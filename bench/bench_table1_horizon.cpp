// Table I (lower): prediction MAE/RMSE on the PeMS-like dataset at a fixed
// 80% missing rate, reported at horizons 15 / 30 / 45 / 60 minutes (first
// 3 / 6 / 9 / 12 prediction steps).
//
// Expected shape (paper): errors grow with horizon; RIHGCN leads at every
// horizon; imputation-enhanced variants beat their mean-filled versions.
#include <chrono>
#include <cstdio>

#include "harness.hpp"

using namespace rihgcn;
using namespace rihgcn::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const Scale s = Scale::from(opts);
  const std::vector<std::size_t> prefixes{3, 6, 9, 12};
  metrics::ResultTable table(
      "Table I (lower): PeMS-like prediction vs horizon (80% missing)",
      {"15 min", "30 min", "45 min", "60 min"});
  Environment env = make_pems_environment(s, 0.8, opts.seed);
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& name : table_method_names()) {
    auto model = make_and_train(name, env, s, opts.seed);
    for (std::size_t g = 0; g < prefixes.size(); ++g) {
      const core::EvalResult r = core::evaluate_prediction(
          *model, *env.sampler, env.split.test, env.normalizer.get(),
          prefixes[g], s.max_eval_windows);
      table.set(name, g, r.mae, r.rmse);
    }
    std::printf("   %-14s done [t=%.0fs]\n", name.c_str(), seconds_since(t0));
    std::fflush(stdout);
  }
  emit(table, opts);
  return 0;
}
