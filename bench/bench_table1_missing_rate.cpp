// Table I (upper): prediction MAE/RMSE on the PeMS-like dataset as the MCAR
// missing rate sweeps over {20, 40, 60, 80}%, horizon 60 min (12 steps),
// for every method row of the paper's table.
//
// Expected shape (paper): errors grow with missing rate for every method;
// the -I (recurrent imputation) variants degrade more slowly than their
// mean-filled counterparts; RIHGCN is best overall.
#include <chrono>
#include <cstdio>

#include "harness.hpp"

using namespace rihgcn;
using namespace rihgcn::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const Scale s = Scale::from(opts);
  const std::vector<double> rates{0.2, 0.4, 0.6, 0.8};
  metrics::ResultTable table(
      "Table I (upper): PeMS-like prediction vs missing rate "
      "(horizon 60 min)",
      {"20%", "40%", "60%", "80%"});
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t g = 0; g < rates.size(); ++g) {
    Environment env = make_pems_environment(s, rates[g], opts.seed);
    std::printf("-- missing rate %.0f%% (dataset missing %.1f%%)\n",
                100.0 * rates[g], 100.0 * env.ds.missing_rate());
    for (const std::string& name : table_method_names()) {
      auto model = make_and_train(name, env, s, opts.seed);
      const core::EvalResult r = core::evaluate_prediction(
          *model, *env.sampler, env.split.test, env.normalizer.get(),
          /*horizon_prefix=*/0, s.max_eval_windows);
      table.set(name, g, r.mae, r.rmse);
      std::printf("   %-14s MAE %7.4f  RMSE %7.4f   [t=%.0fs]\n",
                  name.c_str(), r.mae, r.rmse, seconds_since(t0));
      std::fflush(stdout);
    }
  }
  emit(table, opts);
  return 0;
}
