// Table II: prediction MAE/RMSE on the Stampede-like roving-sensor dataset
// (native high structural missingness) at horizons 15 / 30 / 45 / 60 min.
//
// Expected shape (paper): all methods cluster much closer than on PeMS (the
// signal is dominated by quasi-periodic travel times and the missingness is
// severe); GCN-LSTM-I / RIHGCN at the front.
#include <chrono>
#include <cstdio>

#include "harness.hpp"

using namespace rihgcn;
using namespace rihgcn::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const Scale s = Scale::from(opts);
  const std::vector<std::size_t> prefixes{3, 6, 9, 12};
  metrics::ResultTable table(
      "Table II: Stampede-like prediction vs horizon (native missingness, "
      "travel time in seconds)",
      {"15 min", "30 min", "45 min", "60 min"});
  Environment env = make_stampede_environment(s, opts.seed);
  std::printf("dataset: %zu segments, missing rate %.1f%%\n",
              env.ds.num_nodes(), 100.0 * env.ds.missing_rate());
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& name : table_method_names()) {
    auto model = make_and_train(name, env, s, opts.seed);
    for (std::size_t g = 0; g < prefixes.size(); ++g) {
      const core::EvalResult r = core::evaluate_prediction(
          *model, *env.sampler, env.split.test, env.normalizer.get(),
          prefixes[g], s.max_eval_windows);
      table.set(name, g, r.mae, r.rmse);
    }
    std::printf("   %-14s done [t=%.0fs]\n", name.c_str(), seconds_since(t0));
    std::fflush(stdout);
  }
  emit(table, opts);
  return 0;
}
