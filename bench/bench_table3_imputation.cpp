// Imputation study (paper §IV-C2, RQ2): 30% of observed entries are hidden
// as imputation ground truth; methods fill them and are scored with
// MAE/RMSE at 40% and 80% background missing rates.
//
// Rows: the paper's classical imputers (Last / KNN / MF / TD), the
// imputation-capable neural ablations and RIHGCN. Classical imputers see
// the whole observed series at once (their natural protocol); recurrent
// models impute inside sliding windows. Both are scored on held-out entries
// in the test region only.
//
// Expected shape (paper): RIHGCN best, especially at 80% missing where the
// purely temporal (Last) and purely low-rank (MF/TD) methods degrade.
#include <chrono>
#include <cstdio>
#include <memory>

#include "harness.hpp"

using namespace rihgcn;
using namespace rihgcn::bench;

namespace {

/// Score a whole-series imputer on held-out entries inside [t_begin, end).
core::EvalResult score_series_imputer(const baselines::Imputer& imputer,
                                      const Environment& env,
                                      std::size_t t_begin) {
  std::vector<Matrix> obs;
  obs.reserve(env.ds.num_timesteps());
  for (std::size_t t = 0; t < env.ds.num_timesteps(); ++t) {
    obs.push_back(env.ds.observed(t));
  }
  const auto filled = imputer.impute(obs, env.ds.mask);
  metrics::ErrorAccumulator acc;
  for (std::size_t t = t_begin; t < filled.size(); ++t) {
    // Denormalize before scoring so units match the neural rows.
    acc.add(env.normalizer->denormalize(filled[t]),
            env.normalizer->denormalize(env.ds.truth[t]), env.holdout[t]);
  }
  if (acc.empty()) return {-1.0, -1.0};
  return {acc.mae(), acc.rmse()};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const Scale s = Scale::from(opts);
  const std::vector<double> rates{0.4, 0.8};
  metrics::ResultTable table(
      "Imputation on PeMS-like data (30% of observed entries held out)",
      {"40% missing", "80% missing"});
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t g = 0; g < rates.size(); ++g) {
    Environment env = make_pems_environment(s, rates[g], opts.seed, 4,
                                            /*holdout_fraction=*/0.3);
    const std::size_t test_begin =
        env.split.test.empty() ? 0 : env.split.test.front();
    std::printf("-- background missing %.0f%%, holdout carved: total missing "
                "%.1f%%\n",
                100.0 * rates[g], 100.0 * env.ds.missing_rate());

    // Classical imputers.
    const baselines::LastObservedImputer last;
    const baselines::KnnImputer knn(5);
    const baselines::MatrixFactorizationImputer mf(8, 15);
    const baselines::TensorDecompositionImputer td(6, 12, s.steps_per_day);
    for (const baselines::Imputer* imp :
         std::initializer_list<const baselines::Imputer*>{&last, &knn, &mf,
                                                          &td}) {
      const core::EvalResult r = score_series_imputer(*imp, env, test_begin);
      table.set(imp->name(), g, r.mae, r.rmse);
      std::printf("   %-14s MAE %7.4f  RMSE %7.4f   [t=%.0fs]\n",
                  imp->name().c_str(), r.mae, r.rmse, seconds_since(t0));
      std::fflush(stdout);
    }

    // Recurrent-imputation models (trained on the prediction task, scored
    // on their imputation output — the paper's joint protocol). λ = 5 puts
    // the emphasis on the imputation objective, following the Fig. 5
    // finding that imputation quality rises monotonically with λ; the
    // budget is larger than the prediction benches' because imputation
    // converges more slowly than prediction.
    Scale imp_scale = s;
    if (!opts.full) {
      imp_scale.max_epochs += 6;
      imp_scale.max_train_windows += 100;
    }
    for (const std::string& name :
         {std::string("FC-LSTM-I"), std::string("FC-GCN-I"),
          std::string("GCN-LSTM-I"), std::string("RIHGCN")}) {
      auto model = make_and_train(name, env, imp_scale, opts.seed,
                                  /*lambda=*/5.0);
      const core::EvalResult r = core::evaluate_imputation(
          *model, *env.sampler, env.split.test, env.holdout,
          env.normalizer.get(), s.max_eval_windows, /*stride=*/s.lookback);
      table.set(name, g, r.mae, r.rmse);
      std::printf("   %-14s MAE %7.4f  RMSE %7.4f   [t=%.0fs]\n",
                  name.c_str(), r.mae, r.rmse, seconds_since(t0));
      std::fflush(stdout);
    }
  }
  emit(table, opts);
  return 0;
}
