#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <stdexcept>

namespace rihgcn::bench {

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      o.full = true;
    } else if (arg == "--quick") {
      o.full = false;
    } else if (arg.rfind("--seed=", 0) == 0) {
      o.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--csv=", 0) == 0) {
      o.csv_path = arg.substr(6);
    } else if (arg.rfind("--json=", 0) == 0) {
      o.json_path = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "flags: --quick (default) | --full | --seed=N | --csv=PATH | "
          "--json=PATH\n");
      std::exit(0);
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // Tolerate google-benchmark flags when invoked by a runner loop.
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return o;
}

Scale Scale::quick() {
  Scale s;
  s.pems_nodes = 20;
  s.pems_days = 10;
  s.steps_per_day = 288;  // the paper's 5-minute bins
  s.lookback = 12;        // 1 hour
  s.horizon = 12;         // up to 60 min
  s.gcn_dim = 12;
  s.lstm_dim = 24;
  s.hidden = 24;
  s.max_epochs = 14;
  s.max_train_windows = 200;
  s.max_val_windows = 48;
  s.max_eval_windows = 96;
  return s;
}

Scale Scale::full() {
  Scale s;
  s.pems_nodes = 50;
  s.pems_days = 28;
  s.steps_per_day = 288;
  s.lookback = 12;
  s.horizon = 12;
  s.gcn_dim = 64;   // paper: 64 GCN filters
  s.lstm_dim = 128; // paper: LSTM hidden 128
  s.hidden = 64;
  s.max_epochs = 50;
  s.max_train_windows = 0;  // everything
  s.max_val_windows = 0;
  s.max_eval_windows = 0;
  return s;
}

namespace {

void finish_environment_custom(
    Environment& env, const Scale& s, Rng& rng,
    const core::HeteroGraphsConfig& gcfg, double holdout_fraction) {
  if (holdout_fraction > 0.0) {
    env.holdout = data::make_imputation_holdout(env.ds, holdout_fraction, rng);
  }
  env.train_end = env.ds.num_timesteps() * 7 / 10;
  env.normalizer =
      std::make_unique<data::ZScoreNormalizer>(env.ds, env.train_end);
  env.normalizer->normalize(env.ds);
  env.sampler =
      std::make_unique<data::WindowSampler>(env.ds, s.lookback, s.horizon);
  env.split = env.sampler->split();
  env.graphs = std::make_unique<core::HeterogeneousGraphs>(
      env.ds, env.train_end, gcfg, rng);
  core::HeteroGraphsConfig geo_cfg;
  geo_cfg.num_temporal_graphs = 0;
  env.geo_only_graphs = std::make_unique<core::HeterogeneousGraphs>(
      env.ds, env.train_end, geo_cfg, rng);
}

void finish_environment(Environment& env, const Scale& s, Rng& rng,
                        std::size_t num_temporal_graphs,
                        double holdout_fraction) {
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = num_temporal_graphs;
  finish_environment_custom(env, s, rng, gcfg, holdout_fraction);
}

}  // namespace

Environment make_pems_environment_custom(
    const Scale& s, double missing_rate, std::uint64_t seed,
    double holdout_fraction,
    const std::function<void(core::HeteroGraphsConfig&)>& tweak) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = s.pems_nodes;
  cfg.num_days = s.pems_days;
  cfg.steps_per_day = s.steps_per_day;
  cfg.seed = seed;
  Environment env;
  env.ds = data::generate_pems_like(cfg);
  Rng rng(seed * 7919 + 13);
  if (missing_rate > 0.0) {
    data::inject_mcar_readings(env.ds, missing_rate, rng);
  }
  core::HeteroGraphsConfig gcfg;
  if (tweak) tweak(gcfg);
  finish_environment_custom(env, s, rng, gcfg, holdout_fraction);
  return env;
}

Environment make_pems_environment(const Scale& s, double missing_rate,
                                  std::uint64_t seed,
                                  std::size_t num_temporal_graphs,
                                  double holdout_fraction) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = s.pems_nodes;
  cfg.num_days = s.pems_days;
  cfg.steps_per_day = s.steps_per_day;
  cfg.seed = seed;
  Environment env;
  env.ds = data::generate_pems_like(cfg);
  Rng rng(seed * 7919 + 13);
  // Reading-level MCAR: a failed sensor drops all its features at once.
  if (missing_rate > 0.0) {
    data::inject_mcar_readings(env.ds, missing_rate, rng);
  }
  finish_environment(env, s, rng, num_temporal_graphs, holdout_fraction);
  return env;
}

Environment make_stampede_environment(const Scale& s, std::uint64_t seed,
                                      std::size_t num_temporal_graphs) {
  data::StampedeLikeConfig cfg;
  cfg.num_days = s.pems_days;
  cfg.steps_per_day = s.steps_per_day;
  cfg.seed = seed;
  Environment env;
  env.ds = data::generate_stampede_like(cfg);
  Rng rng(seed * 104729 + 7);
  finish_environment(env, s, rng, num_temporal_graphs, 0.0);
  return env;
}

std::vector<std::string> table_method_names() {
  return {"HA",        "VAR",      "ASTGCN",   "GraphWaveNet",
          "FC-LSTM",   "FC-GCN",   "GCN-LSTM", "FC-LSTM-I",
          "FC-GCN-I",  "GCN-LSTM-I", "RIHGCN"};
}

core::TrainConfig train_config(const Scale& s, std::uint64_t seed) {
  core::TrainConfig cfg;
  cfg.max_epochs = s.max_epochs;
  cfg.batch_size = 8;
  cfg.max_train_windows = s.max_train_windows;
  cfg.max_val_windows = s.max_val_windows;
  cfg.seed = seed;
  return cfg;
}

std::unique_ptr<core::RihgcnModel> make_rihgcn(
    const Environment& env, const Scale& s, std::uint64_t seed,
    const std::function<void(core::RihgcnConfig&)>& tweak) {
  core::RihgcnConfig mc;
  mc.lookback = s.lookback;
  mc.horizon = s.horizon;
  mc.gcn_dim = s.gcn_dim;
  mc.lstm_dim = s.lstm_dim;
  mc.seed = seed;
  if (tweak) tweak(mc);
  return std::make_unique<core::RihgcnModel>(
      *env.graphs, env.ds.num_nodes(), env.ds.num_features(), mc);
}

std::unique_ptr<core::ForecastModel> make_and_train(const std::string& name,
                                                    Environment& env,
                                                    const Scale& s,
                                                    std::uint64_t seed,
                                                    double lambda,
                                                    bool verbose) {
  const std::size_t d = env.ds.num_features();
  const Matrix& lap = env.graphs->geographic().scaled_laplacian();
  baselines::NeuralBaselineConfig nb;
  nb.lookback = s.lookback;
  nb.horizon = s.horizon;
  nb.hidden = s.hidden;
  nb.lambda = lambda;
  nb.seed = seed;

  std::unique_ptr<core::ForecastModel> model;
  if (name == "HA") {
    model = std::make_unique<baselines::HistoricalAverageModel>(
        env.ds, env.train_end, s.lookback, s.horizon);
  } else if (name == "VAR") {
    model = std::make_unique<baselines::VarModel>(env.ds, env.train_end,
                                                  s.lookback, s.horizon, 3);
  } else if (name == "ASTGCN") {
    model = std::make_unique<baselines::AstGcnModel>(lap, d, nb);
  } else if (name == "GraphWaveNet") {
    model = std::make_unique<baselines::GraphWaveNetModel>(
        lap, env.ds.num_nodes(), d, nb);
  } else if (name == "FC-LSTM") {
    model = std::make_unique<baselines::FcLstmModel>(d, nb);
  } else if (name == "FC-GCN") {
    model = std::make_unique<baselines::FcGcnModel>(lap, d, nb);
  } else if (name == "GCN-LSTM") {
    model = std::make_unique<baselines::GcnLstmModel>(lap, d, nb);
  } else if (name == "FC-LSTM-I") {
    model = std::make_unique<baselines::FcLstmIModel>(d, nb);
  } else if (name == "FC-GCN-I") {
    model = std::make_unique<baselines::FcGcnIModel>(lap, d, nb);
  } else if (name == "GCN-LSTM-I") {
    // RIHGCN minus the temporal graphs: geographic-only recurrent
    // imputation, via the dedicated M = 0 graph bundle.
    core::RihgcnConfig mc;
    mc.lookback = s.lookback;
    mc.horizon = s.horizon;
    mc.gcn_dim = s.gcn_dim;
    mc.lstm_dim = s.lstm_dim;
    mc.seed = seed;
    mc.lambda = lambda;
    mc.display_name = "GCN-LSTM-I";
    model = std::make_unique<core::RihgcnModel>(
        *env.geo_only_graphs, env.ds.num_nodes(), env.ds.num_features(), mc);
  } else if (name == "RIHGCN") {
    model = make_rihgcn(env, s, seed,
                        [&](core::RihgcnConfig& mc) { mc.lambda = lambda; });
  } else {
    throw std::invalid_argument("unknown method: " + name);
  }
  if (!model->parameters().empty()) {
    core::TrainConfig cfg = train_config(s, seed);
    cfg.verbose = verbose;
    core::train_model(*model, *env.sampler, env.split, cfg);
  }
  return model;
}

void emit(const metrics::ResultTable& table, const BenchOptions& opts) {
  std::printf("%s\n", table.to_string().c_str());
  if (!opts.csv_path.empty()) {
    std::ofstream out(opts.csv_path);
    out << table.to_csv();
    std::printf("(csv written to %s)\n", opts.csv_path.c_str());
  }
}

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void write_micro_json(const std::string& path,
                      const std::vector<MicroResult>& results) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_micro_json: cannot open " + path);
  }
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MicroResult& r = results[i];
    char line[512];
    std::string extra;
    // min/stddev are diagnostic; a 0.0/0.0 pair means "not measured"
    // (counters, single-shot rows) — omit it rather than emit fake zeros.
    if (r.min_ns != 0.0 || r.stddev_ns != 0.0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), ", \"min_ns\": %.1f, \"stddev_ns\": %.1f",
                    r.min_ns, r.stddev_ns);
      extra += buf;
    }
    if (r.workers != 0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), ", \"workers\": %zu", r.workers);
      extra += buf;
    }
    if (!r.kind.empty()) extra += ", \"kind\": \"" + r.kind + "\"";
    if (r.informational) extra += ", \"informational\": true";
    std::snprintf(line, sizeof(line),
                  "  {\"name\": \"%s\", \"n\": %zu, \"density\": %.6f, "
                  "\"ns_per_op\": %.1f, \"threads\": %zu%s}%s\n",
                  r.name.c_str(), r.n, r.density, r.ns_per_op, r.threads,
                  extra.c_str(), i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "]\n";
}

TimingStats measure_ns_per_op(const std::function<void()>& fn,
                              std::size_t windows, double min_window_sec) {
  fn();  // warmup: touch code and data caches before anything is timed
  fn();
  const auto window_sec = [&fn](std::size_t iters) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  // Grow the iteration count until one window is long enough to trust the
  // clock, then keep it fixed so every window measures the same work.
  std::size_t iters = 1;
  double first = window_sec(iters);
  while (first <= min_window_sec && iters < (std::size_t{1} << 22)) {
    iters *= 4;
    first = window_sec(iters);
  }
  std::vector<double> per_op;
  per_op.reserve(windows);
  per_op.push_back(first * 1e9 / static_cast<double>(iters));
  while (per_op.size() < std::max<std::size_t>(1, windows)) {
    per_op.push_back(window_sec(iters) * 1e9 / static_cast<double>(iters));
  }
  std::sort(per_op.begin(), per_op.end());
  TimingStats stats;
  stats.min_ns = per_op.front();
  const std::size_t k = per_op.size();
  stats.median_ns = k % 2 == 1 ? per_op[k / 2]
                               : 0.5 * (per_op[k / 2 - 1] + per_op[k / 2]);
  double sum = 0.0;
  for (const double v : per_op) sum += v;
  stats.mean_ns = sum / static_cast<double>(k);
  double var = 0.0;
  for (const double v : per_op) {
    const double d = v - stats.mean_ns;
    var += d * d;
  }
  stats.stddev_ns = k > 1 ? std::sqrt(var / static_cast<double>(k - 1)) : 0.0;
  return stats;
}

}  // namespace rihgcn::bench
