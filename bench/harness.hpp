// Shared experiment harness for the paper-reproduction benches: dataset
// pipelines, the method zoo (every row of Tables I/II), training budgets and
// result-table plumbing. Each bench binary (one per paper table/figure)
// composes these pieces; see DESIGN.md §4 for the experiment index.
//
// Every bench accepts:
//   --full      paper-scale sizes (slow; default is a minutes-scale run
//               whose trends match the paper)
//   --seed=N    RNG seed (default 17)
//   --csv=PATH  also dump the table as CSV
//   --json=PATH dump micro-benchmark results as JSON (bench_micro; see
//               tools/run_bench.sh which maintains BENCH_micro.json)
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/classical.hpp"
#include "baselines/imputers.hpp"
#include "baselines/neural.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "metrics/metrics.hpp"

namespace rihgcn::bench {

struct BenchOptions {
  bool full = false;
  std::uint64_t seed = 17;
  std::string csv_path;
  std::string json_path;

  static BenchOptions parse(int argc, char** argv);
};

/// One machine-readable micro-benchmark sample (the perf-trajectory record
/// written by bench_micro --json).
struct MicroResult {
  std::string name;     ///< e.g. "cheb_dense" / "cheb_spmm"
  std::size_t n = 0;    ///< graph size (nodes)
  double density = 0.0; ///< Laplacian density the kernel saw
  double ns_per_op = 0.0;   ///< median over timing windows (gating statistic)
  std::size_t threads = 0;
  double min_ns = 0.0;      ///< fastest window (least-interference estimate)
  double stddev_ns = 0.0;   ///< window spread (noise indicator; 0 = counter)
  /// ExecPool workers the serving row ran with (0 = inline flush / not a
  /// serve row). Emitted only when nonzero; check_bench.py keys rows on
  /// (name, n, threads) and ignores this field.
  std::size_t workers = 0;
  /// Row class for tools/check_bench.py: "" = timed (threshold-gated),
  /// "counter" = deterministic program fact (exact-diff gated).
  std::string kind;
  /// True while a freshly-added row rides one PR without a trusted
  /// baseline; check_bench.py reports but never gates it.
  bool informational = false;
};

/// Write micro results as a JSON array of objects. Throws std::runtime_error
/// if the file cannot be opened.
void write_micro_json(const std::string& path,
                      const std::vector<MicroResult>& results);

/// Per-op timing distribution over repeated fixed-iteration windows.
struct TimingStats {
  double min_ns = 0.0;
  double median_ns = 0.0;
  double mean_ns = 0.0;
  double stddev_ns = 0.0;
};

/// Time `fn` with warmup + median-of-K: after warmup calls, the iteration
/// count is grown until one window exceeds `min_window_sec`, then `windows`
/// windows of that fixed count are measured and summarized. The MEDIAN is
/// the statistic to gate on (tools/check_bench.py): unlike best-of-K's min
/// it doesn't reward lucky runs, and unlike the mean it shrugs off one
/// preempted window. min/stddev are reported alongside for diagnosis.
TimingStats measure_ns_per_op(const std::function<void()>& fn,
                              std::size_t windows = 5,
                              double min_window_sec = 0.1);

/// Scale knobs derived from --full.
struct Scale {
  std::size_t pems_nodes;
  std::size_t pems_days;
  std::size_t steps_per_day;
  std::size_t lookback;
  std::size_t horizon;
  std::size_t gcn_dim;
  std::size_t lstm_dim;
  std::size_t hidden;  // baselines
  std::size_t max_epochs;
  std::size_t max_train_windows;
  std::size_t max_val_windows;
  std::size_t max_eval_windows;

  static Scale quick();
  static Scale full();
  static Scale from(const BenchOptions& o) {
    return o.full ? full() : quick();
  }
};

/// A fully prepared experiment environment: normalized dataset with injected
/// missingness, window splits, graphs and the imputation holdout.
struct Environment {
  data::TrafficDataset ds;
  std::size_t train_end = 0;
  std::unique_ptr<data::ZScoreNormalizer> normalizer;
  std::unique_ptr<data::WindowSampler> sampler;
  data::SplitIndices split;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  /// Geographic-only bundle (M = 0) backing the GCN-LSTM-I ablation row.
  std::unique_ptr<core::HeterogeneousGraphs> geo_only_graphs;
  std::vector<Matrix> holdout;  ///< empty unless requested

  Environment() = default;
  Environment(Environment&&) = default;
  Environment& operator=(Environment&&) = default;
};

/// PeMS-like environment with MCAR missingness at `missing_rate` (the Table
/// I protocol). `holdout_fraction` > 0 additionally carves out imputation
/// ground truth (Table III / Fig. 4-5 protocol).
Environment make_pems_environment(const Scale& s, double missing_rate,
                                  std::uint64_t seed,
                                  std::size_t num_temporal_graphs = 4,
                                  double holdout_fraction = 0.0);

/// Stampede-like environment with native structural missingness (Table II).
Environment make_stampede_environment(const Scale& s, std::uint64_t seed,
                                      std::size_t num_temporal_graphs = 4);

/// PeMS-like environment whose heterogeneous-graph config is customized by
/// `tweak` (circular partition, alternative series distance, ...). Dataset,
/// mask and holdout are identical to make_pems_environment for a given seed.
Environment make_pems_environment_custom(
    const Scale& s, double missing_rate, std::uint64_t seed,
    double holdout_fraction,
    const std::function<void(core::HeteroGraphsConfig&)>& tweak);

/// The method zoo. Order matches the paper's table rows.
std::vector<std::string> table_method_names();

/// Instantiate a method by table name; trains it if it has parameters.
/// Returns the ready-to-evaluate model.
std::unique_ptr<core::ForecastModel> make_and_train(
    const std::string& name, Environment& env, const Scale& s,
    std::uint64_t seed, double lambda = 1.0, bool verbose = false);

/// Build an (untrained) RIHGCN with the standard bench dimensions.
std::unique_ptr<core::RihgcnModel> make_rihgcn(
    const Environment& env, const Scale& s, std::uint64_t seed,
    const std::function<void(core::RihgcnConfig&)>& tweak = nullptr);

/// Standard training config for the bench scale.
core::TrainConfig train_config(const Scale& s, std::uint64_t seed);

/// Print the table and optionally write CSV.
void emit(const metrics::ResultTable& table, const BenchOptions& opts);

/// Wall-clock helper for progress lines.
double seconds_since(const std::chrono::steady_clock::time_point& t0);

}  // namespace rihgcn::bench
