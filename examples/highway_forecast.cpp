// Highway speed forecasting — the paper intro's motivating scenario.
//
// A traffic-management deployment: loop detectors along highway corridors
// report speeds every 5 minutes, some reports are lost in transmission, and
// the operator wants a one-hour-ahead speed forecast per sensor to drive
// ramp metering and traveler information.
//
// Demonstrates:
//   * the full production loop: data -> graphs -> train -> checkpoint ->
//     restore -> forecast,
//   * per-sensor forecast readout with rush-hour context,
//   * comparing against the Historical Average dispatcher rule.
#include <cstdio>
#include <fstream>

#include "baselines/classical.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "nn/optim.hpp"

using namespace rihgcn;

int main() {
  // ---- Sensor network -------------------------------------------------------
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 24;
  cfg.num_days = 10;
  cfg.steps_per_day = 288;  // 5-minute bins, as PeMS reports
  cfg.seed = 2024;
  data::TrafficDataset ds = data::generate_pems_like(cfg);
  Rng rng(5);
  data::inject_mcar_readings(ds, 0.4, rng);  // lossy telemetry
  std::printf("highway network: %zu detectors, %.1f%% of reports lost\n",
              ds.num_nodes(), 100.0 * ds.missing_rate());

  const std::size_t train_end = ds.num_timesteps() * 7 / 10;
  const data::ZScoreNormalizer nz(ds, train_end);
  nz.normalize(ds);
  const data::WindowSampler sampler(ds, 12, 12);  // 1 h in -> 1 h out
  const data::SplitIndices split = sampler.split();

  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 4;
  const core::HeterogeneousGraphs graphs(ds, train_end, gcfg, rng);
  const auto& part = graphs.partition();
  std::printf("learned time-of-day intervals:");
  for (std::size_t m = 0; m < part.num_intervals(); ++m) {
    const auto [a, b] = part.interval(m);
    std::printf(" [%zuh,%zuh)", a, b);
  }
  std::printf("\n");

  // ---- Train and checkpoint ------------------------------------------------
  core::RihgcnConfig mc;
  mc.gcn_dim = 12;
  mc.lstm_dim = 24;
  core::RihgcnModel model(graphs, ds.num_nodes(), ds.num_features(), mc);
  core::TrainConfig tc;
  tc.max_epochs = 10;
  tc.max_train_windows = 160;
  tc.max_val_windows = 48;
  tc.verbose = true;
  core::train_model(model, sampler, split, tc);

  const char* ckpt = "/tmp/rihgcn_highway.ckpt";
  {
    std::ofstream out(ckpt);
    nn::save_parameters(out, model.parameters());
  }
  std::printf("checkpoint written to %s\n", ckpt);

  // A fresh process would restore like this:
  core::RihgcnModel restored(graphs, ds.num_nodes(), ds.num_features(), mc);
  {
    std::ifstream in(ckpt);
    nn::load_parameters(in, restored.parameters());
  }

  // ---- Operator readout: next hour for the morning rush ---------------------
  // Pick a test window whose forecast horizon covers the 7:30-8:30 rush.
  std::size_t chosen = split.test.front();
  for (const std::size_t idx : split.test) {
    const std::size_t slot = (idx + 12) % ds.steps_per_day;
    if (slot == 288 * 15 / 48) {  // 7:30 AM
      chosen = idx;
      break;
    }
  }
  const data::Window w = sampler.make_window(chosen);
  const Matrix pred = restored.predict(w);
  baselines::HistoricalAverageModel ha(ds, train_end, 12, 12);
  const Matrix ha_pred = ha.predict(w);

  std::printf("\nforecast issued at slot %zu (%.1f h):\n", w.slot + 12,
              static_cast<double>((w.start + 12) % ds.steps_per_day) * 24.0 /
                  static_cast<double>(ds.steps_per_day));
  std::printf("  %-8s %-28s %-10s %-10s %-10s\n", "sensor",
              "RIHGCN +15/+30/+45/+60 min", "HA +60", "truth +60", "|err|");
  double rihgcn_err = 0.0, ha_err = 0.0;
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ds.num_nodes()); ++i) {
    const double p15 = nz.denormalize(pred(i, 2), 0);
    const double p30 = nz.denormalize(pred(i, 5), 0);
    const double p45 = nz.denormalize(pred(i, 8), 0);
    const double p60 = nz.denormalize(pred(i, 11), 0);
    const double h60 = nz.denormalize(ha_pred(i, 11), 0);
    const double t60 = nz.denormalize(w.y[11](i, 0), 0);
    std::printf("  #%-7zu %5.1f/%5.1f/%5.1f/%5.1f mph   %7.1f    %7.1f   %6.2f\n",
                i, p15, p30, p45, p60, h60, t60, std::abs(p60 - t60));
    rihgcn_err += std::abs(p60 - t60);
    ha_err += std::abs(h60 - t60);
  }
  std::printf("\n60-min MAE over shown sensors: RIHGCN %.2f mph, HA %.2f mph\n",
              rihgcn_err / 8.0, ha_err / 8.0);
  return 0;
}
