// Imputation shoot-out on a corrupted sensor feed.
//
// Scenario: a month of highway data suffers both random reading loss AND
// bursty sensor outages; the operator wants the best filler before feeding
// the data to downstream analytics. This example runs every classical
// imputer in the library plus RIHGCN's learned recurrent imputation over
// the same hold-out protocol the paper uses, and prints a ranked table.
//
// Demonstrates the Imputer interface, make_imputation_holdout, and
// evaluate_imputation on a trained model.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/imputers.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "metrics/metrics.hpp"

using namespace rihgcn;

int main() {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_days = 10;
  cfg.steps_per_day = 288;
  cfg.seed = 99;
  data::TrafficDataset ds = data::generate_pems_like(cfg);
  Rng rng(100);
  data::inject_mcar_readings(ds, 0.3, rng);        // random reading loss
  data::inject_block_missing(ds, 0.2, 24, rng);    // 2-hour outage bursts
  const auto holdout = data::make_imputation_holdout(ds, 0.25, rng);
  std::printf("corrupted feed: %.1f%% of cells missing after outages\n",
              100.0 * ds.missing_rate());

  const std::size_t train_end = ds.num_timesteps() * 7 / 10;
  const data::ZScoreNormalizer nz(ds, train_end);
  nz.normalize(ds);

  struct Row {
    std::string name;
    double mae;
    double rmse;
  };
  std::vector<Row> rows;

  // ---- Classical imputers over the whole series ----------------------------
  std::vector<Matrix> obs;
  obs.reserve(ds.num_timesteps());
  for (std::size_t t = 0; t < ds.num_timesteps(); ++t) {
    obs.push_back(ds.observed(t));
  }
  std::vector<std::unique_ptr<baselines::Imputer>> imputers;
  imputers.push_back(std::make_unique<baselines::MeanImputer>());
  imputers.push_back(std::make_unique<baselines::LastObservedImputer>());
  imputers.push_back(std::make_unique<baselines::KnnImputer>(5));
  imputers.push_back(
      std::make_unique<baselines::MatrixFactorizationImputer>(8, 15));
  imputers.push_back(std::make_unique<baselines::TensorDecompositionImputer>(
      6, 12, ds.steps_per_day));
  for (const auto& imp : imputers) {
    const auto filled = imp->impute(obs, ds.mask);
    metrics::ErrorAccumulator acc;
    for (std::size_t t = 0; t < filled.size(); ++t) {
      acc.add(nz.denormalize(filled[t]), nz.denormalize(ds.truth[t]),
              holdout[t]);
    }
    rows.push_back({imp->name(), acc.mae(), acc.rmse()});
    std::printf("  scored %s\n", imp->name().c_str());
  }

  // ---- Learned imputation ------------------------------------------------------
  const data::WindowSampler sampler(ds, 12, 12);
  const data::SplitIndices split = sampler.split();
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 4;
  const core::HeterogeneousGraphs graphs(ds, train_end, gcfg, rng);
  core::RihgcnConfig mc;
  mc.gcn_dim = 12;
  mc.lstm_dim = 24;
  mc.lambda = 2.0;  // lean toward imputation quality (Fig. 5 trend)
  core::RihgcnModel model(graphs, ds.num_nodes(), ds.num_features(), mc);
  core::TrainConfig tc;
  tc.max_epochs = 10;
  tc.max_train_windows = 160;
  tc.max_val_windows = 48;
  core::train_model(model, sampler, split, tc);
  // Score over the whole timeline (stride by lookback => each cell once).
  std::vector<std::size_t> all_windows;
  for (std::size_t s = 0; s + 24 <= ds.num_timesteps(); s += 12) {
    all_windows.push_back(s);
  }
  const core::EvalResult learned = core::evaluate_imputation(
      model, sampler, all_windows, holdout, &nz, 0, 1);
  rows.push_back({"RIHGCN", learned.mae, learned.rmse});

  // ---- Ranked table ---------------------------------------------------------
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.mae < b.mae; });
  std::printf("\nimputation ranking on held-out entries (mph):\n");
  std::printf("  %-6s %-8s %8s %8s\n", "rank", "method", "MAE", "RMSE");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("  %-6zu %-8s %8.3f %8.3f\n", i + 1, rows[i].name.c_str(),
                rows[i].mae, rows[i].rmse);
  }
  return 0;
}
