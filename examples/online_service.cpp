// Live forecasting service — simulates the deployment loop the paper's
// abstract targets: a trained RIHGCN behind an OnlineForecaster, fed a
// stream of partial readings (including a complete feed outage, a sensor
// emitting NaN, and a sensor stuck on one value), serving next-hour
// forecasts and completed history on demand. A HistoricalAverage fallback
// (set_fallback) covers the degraded path, and the run ends with the
// HealthReport an ops dashboard would scrape.
//
// Also prints the model-summary parameter inventory, the kind of artifact
// an ops team wants in the service logs at startup.
//
// The final act scales the same loop up to production shape (DESIGN.md
// §14): the trained model is compiled into a tape-free f32
// core::InferenceEngine and put behind a serve::ForecastServer —
// micro-batching, request coalescing, and a zero-pause engine swap
// published from a "retrain" thread while clients keep querying.
#include <cstdio>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/classical.hpp"
#include "core/engine.hpp"
#include "core/online.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "serve/server.hpp"

using namespace rihgcn;

int main() {
  // ---- Offline phase: train the model on historical data -------------------
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 12;
  cfg.num_days = 8;
  cfg.steps_per_day = 96;  // 15-minute bins for a snappy demo
  cfg.seed = 321;
  data::TrafficDataset ds = data::generate_pems_like(cfg);
  Rng rng(13);
  data::inject_mcar_readings(ds, 0.3, rng);
  const std::size_t train_end = ds.num_timesteps() * 7 / 10;
  const data::ZScoreNormalizer nz(ds, train_end);

  data::TrafficDataset norm = ds;  // keep `ds` in original units for the feed
  nz.normalize(norm);
  const data::WindowSampler sampler(norm, 8, 4);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 3;
  const core::HeterogeneousGraphs graphs(norm, train_end, gcfg, rng);
  core::RihgcnConfig mc;
  mc.lookback = 8;
  mc.horizon = 4;
  mc.gcn_dim = 8;
  mc.lstm_dim = 16;
  core::RihgcnModel model(graphs, ds.num_nodes(), ds.num_features(), mc);
  core::TrainConfig tc;
  tc.max_epochs = 8;
  tc.max_train_windows = 120;
  tc.max_val_windows = 40;
  tc.num_threads = 2;  // data-parallel gradient workers
  core::train_model(model, sampler, sampler.split(), tc);

  std::printf("%s\n", core::model_summary(model).c_str());

  // ---- Online phase: stream readings, serve forecasts ----------------------
  const std::size_t stream_start = train_end + 100;
  core::OnlineForecaster service(model, nz, ds.num_nodes(),
                                 ds.num_features(), mc.lookback, mc.horizon,
                                 ds.steps_per_day,
                                 stream_start % ds.steps_per_day);
  // Degraded-path insurance: if the primary ever throws or emits a
  // non-finite forecast, serve the historical time-of-day average instead.
  baselines::HistoricalAverageModel ha(norm, train_end, mc.lookback,
                                       mc.horizon);
  service.set_fallback(&ha);
  service.set_stuck_threshold(4);
  std::printf("service started at slot %zu (%.1f h)\n", service.next_slot(),
              static_cast<double>(service.next_slot()) * 24.0 /
                  static_cast<double>(ds.steps_per_day));

  for (std::size_t tick = 0; tick < 16; ++tick) {
    const std::size_t t = stream_start + tick;
    if (tick >= 6 && tick < 9) {
      service.push_gap();  // total feed outage for 3 ticks
    } else {
      // A misbehaving field deployment: sensor #1 emits NaN for a stretch
      // and sensor #2's register freezes — both while the feed still claims
      // the readings are valid. Ingest sanitization + stuck detection demote
      // them to missing; the imputation machinery absorbs the rest.
      Matrix values = ds.truth[t];
      Matrix mask = ds.mask[t];
      if (tick >= 2 && tick < 5) {
        values(1, 0) = std::numeric_limits<double>::quiet_NaN();
        mask(1, 0) = 1.0;
      }
      if (tick >= 2) {
        values(2, 0) = 42.0;  // frozen register
        mask(2, 0) = 1.0;
      }
      service.push_reading(values, mask);
    }
    if (tick < 1) continue;  // need at least one reading for a forecast
    if (tick % 4 == 3) {
      const Matrix f = service.forecast();
      const double truth_next =
          t + 1 < ds.num_timesteps() ? ds.truth[t + 1](0, 0) : -1.0;
      std::printf(
          "tick %2zu  coverage %4.0f%%  sensor#0 forecast +15min %5.1f mph "
          "(truth %5.1f), +60min %5.1f mph\n",
          tick, 100.0 * service.buffer_coverage(), f(0, 0), truth_next,
          f(0, 3));
    }
  }

  // ---- Completed history across the outage --------------------------------
  const auto history = service.completed_history();
  std::printf("\ncompleted history (sensor #0, last %zu ticks, mph):\n  ",
              history.size());
  for (const Matrix& h : history) std::printf("%5.1f ", h(0, 0));
  std::printf("\n(the outage ticks above were imputed by the model)\n");

  // ---- Serving health ------------------------------------------------------
  const core::HealthReport hr = service.health();
  std::printf("\nhealth report:\n");
  std::printf("  readings seen        %zu\n", hr.readings_seen);
  std::printf("  buffer coverage      %.0f%%\n", 100.0 * hr.buffer_coverage);
  std::printf("  sanitized entries    %zu (non-finite readings -> missing)\n",
              hr.sanitized_entries);
  std::printf("  coerced mask entries %zu\n", hr.coerced_mask_entries);
  std::printf("  stuck demotions      %zu\n", hr.stuck_demotions);
  std::printf("  forecasts            %zu model / %zu fallback (%zu scrubbed)\n",
              hr.model_forecasts, hr.fallback_forecasts, hr.scrubbed_outputs);
  std::printf("  suspect sensors      ");
  if (hr.suspect_sensors.empty()) {
    std::printf("none");
  } else {
    for (std::size_t i : hr.suspect_sensors) std::printf("#%zu ", i);
  }
  std::printf("\n");

  // ---- Production shape: compiled engine behind a ForecastServer -----------
  // Compile the trained model into a frozen f32 plan (no tape, no steady-
  // state allocations) and serve many streams / many clients through one
  // micro-batching event loop.
  auto engine = std::make_shared<core::InferenceEngine>(model);
  serve::ServeConfig scfg;
  scfg.max_batch = 4;
  scfg.max_delay_us = 200;
  serve::ForecastServer server(engine, nz, scfg);

  constexpr std::size_t kStreams = 3;
  std::vector<std::size_t> ids;
  for (std::size_t s = 0; s < kStreams; ++s) {
    ids.push_back(server.add_stream((stream_start + 7 * s) %
                                    ds.steps_per_day));
  }
  for (std::size_t tick = 0; tick < mc.lookback; ++tick) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      const std::size_t t = stream_start + 7 * s + tick;
      server.ingest(ids[s], ds.truth[t], ds.mask[t]);
    }
  }

  // Concurrent clients hammer forecasts while a retrain thread publishes a
  // refreshed engine mid-traffic. publish() never pauses serving: the swap
  // is posted to the loop and in-flight batches finish on their snapshot.
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < 25; ++q) {
        (void)server.forecast(ids[(c + q) % kStreams]);
      }
    });
  }
  std::thread retrainer([&] {
    server.publish(std::make_shared<core::InferenceEngine>(model));
  });
  for (auto& t : clients) t.join();
  retrainer.join();
  (void)server.forecast(ids[0]);  // round-trip so the swap is reflected below

  const serve::ServerStats st = server.stats();
  std::printf("forecast server (%zu streams, 4 clients):\n", kStreams);
  std::printf("  requests             %zu\n", st.requests);
  std::printf("  responses            %zu (every future answered)\n",
              st.responses);
  std::printf("  engine calls         %zu (batching: %.1f windows/call)\n",
              st.engine_calls,
              st.engine_calls
                  ? static_cast<double>(st.batched_windows) /
                        static_cast<double>(st.engine_calls)
                  : 0.0);
  std::printf("  coalesced requests   %zu\n", st.coalesced_requests);
  std::printf("  snapshot swaps       %zu (published mid-traffic)\n",
              st.snapshot_swaps);
  return 0;
}
