// Quickstart: the smallest complete RIHGCN workflow.
//
//   1. generate a synthetic PeMS-like highway dataset,
//   2. hide 40% of the values (the paper's MCAR protocol),
//   3. build the heterogeneous graphs from the training prefix,
//   4. train RIHGCN for a few epochs,
//   5. report prediction + imputation error against a mean-fill baseline.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "baselines/neural.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"

using namespace rihgcn;

int main() {
  // ---- 1. Data -------------------------------------------------------------
  data::PemsLikeConfig data_cfg;
  data_cfg.num_nodes = 16;
  data_cfg.num_days = 8;
  data_cfg.steps_per_day = 96;  // 15-minute bins keep the demo fast
  data::TrafficDataset ds = generate_pems_like(data_cfg);
  std::printf("dataset: %zu nodes, %zu timesteps, %zu features\n",
              ds.num_nodes(), ds.num_timesteps(), ds.num_features());

  // ---- 2. Missingness + holdout -------------------------------------------
  Rng rng(1);
  data::inject_mcar(ds, 0.4, rng);
  const std::vector<Matrix> holdout = data::make_imputation_holdout(ds, 0.1, rng);
  std::printf("missing rate after injection: %.1f%%\n",
              100.0 * ds.missing_rate());

  // ---- 3. Normalization, windows, graphs ----------------------------------
  const std::size_t train_end =
      static_cast<std::size_t>(0.7 * static_cast<double>(ds.num_timesteps()));
  const data::ZScoreNormalizer normalizer(ds, train_end);
  normalizer.normalize(ds);
  const data::WindowSampler sampler(ds, /*lookback=*/12, /*horizon=*/6);
  const data::SplitIndices split = sampler.split();

  core::HeteroGraphsConfig graph_cfg;
  graph_cfg.num_temporal_graphs = 4;
  const core::HeterogeneousGraphs graphs(ds, train_end, graph_cfg, rng);
  std::printf("heterogeneous graphs: 1 geographic + %zu temporal\n",
              graphs.num_temporal());

  // ---- 4. Train RIHGCN ------------------------------------------------------
  core::RihgcnConfig model_cfg;
  model_cfg.lookback = 12;
  model_cfg.horizon = 6;
  model_cfg.gcn_dim = 12;
  model_cfg.lstm_dim = 24;
  core::RihgcnModel model(graphs, ds.num_nodes(), ds.num_features(),
                          model_cfg);

  core::TrainConfig train_cfg;
  train_cfg.max_epochs = 6;
  train_cfg.max_train_windows = 160;
  train_cfg.max_val_windows = 60;
  train_cfg.verbose = true;
  const core::TrainReport report =
      core::train_model(model, sampler, split, train_cfg);
  std::printf("trained %zu epochs, best val MAE %.4f (normalized)\n",
              report.epochs_run, report.best_val_mae);

  // ---- 5. Evaluate ------------------------------------------------------------
  const core::EvalResult pred = core::evaluate_prediction(
      model, sampler, split.test, &normalizer, /*horizon_prefix=*/0,
      /*max_windows=*/60);
  std::printf("RIHGCN test prediction:  MAE %.3f mph, RMSE %.3f mph\n",
              pred.mae, pred.rmse);

  const core::EvalResult imp = core::evaluate_imputation(
      model, sampler, split.test, holdout, &normalizer, /*max_windows=*/40);
  std::printf("RIHGCN imputation:       MAE %.3f mph, RMSE %.3f mph\n",
              imp.mae, imp.rmse);

  // Context: an untrained mean-fill GCN-LSTM for comparison.
  baselines::NeuralBaselineConfig base_cfg;
  base_cfg.lookback = 12;
  base_cfg.horizon = 6;
  base_cfg.hidden = 24;
  baselines::GcnLstmModel baseline(graphs.geographic().scaled_laplacian(),
                                   ds.num_features(), base_cfg);
  const core::TrainReport base_report =
      core::train_model(baseline, sampler, split, train_cfg);
  (void)base_report;
  const core::EvalResult base_pred = core::evaluate_prediction(
      baseline, sampler, split.test, &normalizer, 0, 60);
  std::printf("GCN-LSTM (mean-fill):    MAE %.3f mph, RMSE %.3f mph\n",
              base_pred.mae, base_pred.rmse);
  return 0;
}
