// Roving-sensor travel times — the paper's Stampede deployment scenario.
//
// Campus shuttles with GPS phones sample road-segment travel times only
// when they happen to drive a segment, leaving most (segment, time) cells
// empty. This example trains RIHGCN on that structurally-missing data and
// shows its two outputs a transit operator needs:
//   1. a completed travel-time timeline for a segment (imputation), drawn
//      as an ASCII strip alongside the sparse raw observations, and
//   2. travel-time forecasts for the next hour.
#include <cstdio>

#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"

using namespace rihgcn;

namespace {

char level_char(double v, double lo, double hi) {
  static const char* kRamp = " .:-=+*#%@";
  if (hi <= lo) return kRamp[0];
  const double x = std::clamp((v - lo) / (hi - lo), 0.0, 0.999);
  return kRamp[static_cast<int>(x * 10.0)];
}

}  // namespace

int main() {
  data::StampedeLikeConfig cfg;
  cfg.num_days = 10;
  cfg.steps_per_day = 288;
  cfg.seed = 777;
  data::TrafficDataset ds = data::generate_stampede_like(cfg);
  std::printf(
      "shuttle fleet: %zu segments, %zu shuttles, %.1f%% of cells never "
      "observed\n",
      ds.num_nodes(), cfg.num_shuttles, 100.0 * ds.missing_rate());

  const std::size_t train_end = ds.num_timesteps() * 7 / 10;
  const data::ZScoreNormalizer nz(ds, train_end);
  nz.normalize(ds);
  const data::WindowSampler sampler(ds, 12, 12);
  const data::SplitIndices split = sampler.split();
  Rng rng(6);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 4;
  const core::HeterogeneousGraphs graphs(ds, train_end, gcfg, rng);

  core::RihgcnConfig mc;
  mc.gcn_dim = 10;
  mc.lstm_dim = 20;
  core::RihgcnModel model(graphs, ds.num_nodes(), ds.num_features(), mc);
  core::TrainConfig tc;
  tc.max_epochs = 8;
  tc.max_train_windows = 140;
  tc.max_val_windows = 40;
  core::train_model(model, sampler, split, tc);

  // ---- 1. Completed timeline for one segment over a midday stretch ----------
  const std::size_t segment = 3;
  // Pick a late-morning stretch — shuttles are running, so the raw strip
  // shows the characteristic sparse visit pattern.
  std::size_t start = split.test.front();
  for (const std::size_t idx : split.test) {
    if (idx % ds.steps_per_day == 132) {  // 11:00 AM
      start = idx;
      break;
    }
  }
  std::printf("\nsegment %zu, %zu consecutive 5-min bins starting at test "
              "slot %zu:\n",
              segment, sampler.lookback() * 4, start % ds.steps_per_day);
  std::string raw, filled, truth;
  double lo = 1e300, hi = -1e300;
  std::vector<double> truth_vals, filled_vals;
  std::vector<bool> observed;
  for (std::size_t k = 0; k < 4; ++k) {
    const data::Window w = sampler.make_window(start + k * sampler.lookback());
    const auto imputed = model.impute(w);
    for (std::size_t t = 0; t < sampler.lookback(); ++t) {
      const double tv = nz.denormalize(w.x_truth[t](segment, 0), 0);
      const double fv = nz.denormalize(imputed[t](segment, 0), 0);
      truth_vals.push_back(tv);
      filled_vals.push_back(fv);
      observed.push_back(w.x_mask[t](segment, 0) > 0.5);
      lo = std::min({lo, tv, fv});
      hi = std::max({hi, tv, fv});
    }
  }
  for (std::size_t i = 0; i < truth_vals.size(); ++i) {
    raw += observed[i] ? level_char(truth_vals[i], lo, hi) : ' ';
    filled += level_char(filled_vals[i], lo, hi);
    truth += level_char(truth_vals[i], lo, hi);
  }
  std::printf("  raw observations: |%s|\n", raw.c_str());
  std::printf("  RIHGCN completed: |%s|\n", filled.c_str());
  std::printf("  ground truth:     |%s|\n", truth.c_str());

  double imp_err = 0.0, imp_count = 0.0;
  for (std::size_t i = 0; i < truth_vals.size(); ++i) {
    if (!observed[i]) {
      imp_err += std::abs(filled_vals[i] - truth_vals[i]);
      imp_count += 1.0;
    }
  }
  if (imp_count > 0.0) {
    std::printf("  imputation MAE on the gaps above: %.1f s\n",
                imp_err / imp_count);
  }

  // ---- 2. Next-hour forecast for every segment ---------------------------------
  const data::Window w = sampler.make_window(split.test[40 % split.test.size()]);
  const Matrix pred = model.predict(w);
  std::printf("\nnext-hour travel-time forecast (seconds):\n");
  std::printf("  %-9s %8s %8s %8s | %8s\n", "segment", "+15min", "+30min",
              "+60min", "truth+60");
  for (std::size_t i = 0; i < ds.num_nodes(); ++i) {
    std::printf("  #%-8zu %8.0f %8.0f %8.0f | %8.0f\n", i,
                nz.denormalize(pred(i, 2), 0), nz.denormalize(pred(i, 5), 0),
                nz.denormalize(pred(i, 11), 0),
                nz.denormalize(w.y[11](i, 0), 0));
  }
  return 0;
}
