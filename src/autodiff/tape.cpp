#include "autodiff/tape.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/csr.hpp"
#include "tensor/parallel.hpp"

namespace rihgcn::ad {

namespace {

// Parallel dispatch for the tape's hand-rolled elementwise loops (op values
// and backward gradient accumulation). Every element/row is written by
// exactly one chunk and chunk boundaries are fixed by size alone, so the
// sweep stays bit-for-bit deterministic for any thread count. Reduction
// loops (loss sums, softmax row dots within a row) stay serial.
template <typename Body>
void par_elems(std::size_t n, Body&& body) {
  if (n < ParallelTuning::min_elems) {
    body(std::size_t{0}, n);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() <= 1) {
    body(std::size_t{0}, n);
    return;
  }
  pool.parallel_for(0, n, ParallelTuning::elem_grain,
                    ThreadPool::RangeBody(std::forward<Body>(body)));
}

template <typename Body>
void par_rows(std::size_t rows, std::size_t cols, Body&& body) {
  if (rows * cols < ParallelTuning::min_elems) {
    body(std::size_t{0}, rows);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() <= 1) {
    body(std::size_t{0}, rows);
    return;
  }
  const std::size_t grain = std::max<std::size_t>(
      1, ParallelTuning::elem_grain / std::max<std::size_t>(1, cols));
  pool.parallel_for(0, rows, grain,
                    ThreadPool::RangeBody(std::forward<Body>(body)));
}

}  // namespace

const Matrix& Var::value() const {
  if (!tape) throw std::logic_error("Var::value on null tape");
  return tape->value(*this);
}

Var Tape::push(Matrix value, bool requires_grad,
               std::function<void(Tape&)> backward_fn) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  n.backward = std::move(backward_fn);
  nodes_.push_back(std::move(n));
  return Var{this, nodes_.size() - 1};
}

Matrix& Tape::grad_ref(std::size_t i) {
  Node& n = nodes_[i];
  if (n.grad.rows() != n.value.rows() || n.grad.cols() != n.value.cols()) {
    n.grad = Matrix(n.value.rows(), n.value.cols());
  }
  return n.grad;
}

void Tape::check_same_tape(Var v) const {
  if (v.tape != this) {
    throw std::logic_error("Var belongs to a different (or null) tape");
  }
  if (v.index >= nodes_.size()) {
    throw std::logic_error("Var index out of range");
  }
}

Var Tape::constant(Matrix value) {
  return push(std::move(value), /*requires_grad=*/false, nullptr);
}

Var Tape::leaf(Parameter& p) {
  Var v = push(p.value(), /*requires_grad=*/true, nullptr);
  Node& n = nodes_[v.index];
  n.bound_param = &p;
  const std::size_t idx = v.index;
  n.backward = [idx](Tape& t) {
    Node& self = t.node(idx);
    if (t.grad_sink_ != nullptr) {
      Matrix& g = (*t.grad_sink_)[self.bound_param];
      if (g.empty()) {
        g = Matrix(self.value.rows(), self.value.cols());
      }
      g += t.grad_ref(idx);
    } else {
      self.bound_param->grad() += t.grad_ref(idx);
    }
  };
  return v;
}

// Each op builds the value, pushes the node, then installs a backward closure
// that knows the child's own index — closures resolve nodes through the tape
// at call time, so vector reallocation during construction is harmless.
Var Tape::add(Var a, Var b) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var out = push(value(a) + value(b), rg, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    if (t.node(ia).requires_grad) t.grad_ref(ia) += g;
    if (t.node(ib).requires_grad) t.grad_ref(ib) += g;
  };
  return out;
}

Var Tape::sub(Var a, Var b) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var out = push(value(a) - value(b), rg, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    if (t.node(ia).requires_grad) t.grad_ref(ia) += g;
    if (t.node(ib).requires_grad) t.grad_ref(ib) -= g;
  };
  return out;
}

Var Tape::mul(Var a, Var b) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var out = push(hadamard(value(a), value(b)), rg, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    if (t.node(ia).requires_grad) {
      t.grad_ref(ia) += hadamard(g, t.node(ib).value);
    }
    if (t.node(ib).requires_grad) {
      t.grad_ref(ib) += hadamard(g, t.node(ia).value);
    }
  };
  return out;
}

Var Tape::scale(Var a, double s) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Var out = push(value(a) * s, nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io, s](Tape& t) {
    if (t.node(ia).requires_grad) t.grad_ref(ia) += t.grad_ref(io) * s;
  };
  return out;
}

Var Tape::add_scalar(Var a, double s) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix v = value(a);
  v.apply([s](double x) { return x + s; });
  Var out = push(std::move(v), nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (t.node(ia).requires_grad) t.grad_ref(ia) += t.grad_ref(io);
  };
  return out;
}

Var Tape::hadamard_const(Var a, const Matrix& m) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Var out = push(hadamard(value(a), m), nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  Matrix mask = m;  // captured by value: caller's matrix may die
  nodes_[io].backward = [ia, io, mask = std::move(mask)](Tape& t) {
    if (t.node(ia).requires_grad) {
      t.grad_ref(ia) += hadamard(t.grad_ref(io), mask);
    }
  };
  return out;
}

Var Tape::matmul(Var a, Var b) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var out = push(rihgcn::matmul(value(a), value(b)), rg, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    // dL/dA = g * B^T ; dL/dB = A^T * g
    if (t.node(ia).requires_grad) {
      t.grad_ref(ia) += matmul_bt(g, t.node(ib).value);
    }
    if (t.node(ib).requires_grad) {
      t.grad_ref(ib) += matmul_at(t.node(ia).value, g);
    }
  };
  return out;
}

Var Tape::spmm(const CsrMatrix& a, Var b) {
  check_same_tape(b);
  const std::size_t ib = b.index;
  Var out = push(rihgcn::spmm(a, value(b)), nodes_[ib].requires_grad, nullptr);
  const std::size_t io = out.index;
  // The Laplacian is a model-lifetime constant, so the closure stores only a
  // pointer; dL/dB = Aᵀ·g. Allocate-then-add (not accumulate-in-place) keeps
  // the gradient bitwise equal to the dense matmul path's matmul_at update.
  const CsrMatrix* ap = &a;
  nodes_[io].backward = [ib, io, ap](Tape& t) {
    if (!t.node(ib).requires_grad) return;
    t.grad_ref(ib) += rihgcn::spmm_t(*ap, t.grad_ref(io));
  };
  return out;
}

Var Tape::mul_col_broadcast(Var a, Var col) {
  check_same_tape(a);
  check_same_tape(col);
  const Matrix& x = value(a);
  const Matrix& c = value(col);
  if (c.cols() != 1 || c.rows() != x.rows()) {
    throw ShapeError("mul_col_broadcast: col must be rows x 1");
  }
  const std::size_t ia = a.index, ic = col.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ic].requires_grad;
  Matrix v = x;
  par_rows(v.rows(), v.cols(), [&v, &c](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      for (std::size_t cc = 0; cc < v.cols(); ++cc) v(r, cc) *= c(r, 0);
    }
  });
  Var out = push(std::move(v), rg, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ic, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    const Matrix& x2 = t.node(ia).value;
    const Matrix& c2 = t.node(ic).value;
    if (t.node(ia).requires_grad) {
      Matrix& ga = t.grad_ref(ia);
      par_rows(g.rows(), g.cols(), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          for (std::size_t cc = 0; cc < g.cols(); ++cc) {
            ga(r, cc) += g(r, cc) * c2(r, 0);
          }
        }
      });
    }
    if (t.node(ic).requires_grad) {
      Matrix& gc = t.grad_ref(ic);
      // Each output row reduces its own columns serially (ascending cc), so
      // the per-row sum is order-stable regardless of the row partition.
      par_rows(g.rows(), g.cols(), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          double s = 0.0;
          for (std::size_t cc = 0; cc < g.cols(); ++cc) {
            s += g(r, cc) * x2(r, cc);
          }
          gc(r, 0) += s;
        }
      });
    }
  };
  return out;
}

Var Tape::add_row_broadcast(Var a, Var bias_row) {
  check_same_tape(a);
  check_same_tape(bias_row);
  const std::size_t ia = a.index, ib = bias_row.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var out =
      push(rihgcn::add_row_broadcast(value(a), value(bias_row)), rg, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    if (t.node(ia).requires_grad) t.grad_ref(ia) += g;
    if (t.node(ib).requires_grad) {
      Matrix& gb = t.grad_ref(ib);
      for (std::size_t r = 0; r < g.rows(); ++r) {
        for (std::size_t c = 0; c < g.cols(); ++c) gb(0, c) += g(r, c);
      }
    }
  };
  return out;
}

Var Tape::sigmoid(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix v = map(value(a), [](double x) {
    // Numerically stable logistic.
    return x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                    : std::exp(x) / (1.0 + std::exp(x));
  });
  Var out = push(std::move(v), nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& y = t.node(io).value;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    const double* yp = y.data();
    const double* gp = g.data();
    double* gap = ga.data();
    par_elems(y.size(), [yp, gp, gap](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        gap[i] += gp[i] * yp[i] * (1.0 - yp[i]);
      }
    });
  };
  return out;
}

Var Tape::tanh(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Var out = push(map(value(a), [](double x) { return std::tanh(x); }),
                 nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& y = t.node(io).value;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    const double* yp = y.data();
    const double* gp = g.data();
    double* gap = ga.data();
    par_elems(y.size(), [yp, gp, gap](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        gap[i] += gp[i] * (1.0 - yp[i] * yp[i]);
      }
    });
  };
  return out;
}

Var Tape::relu(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Var out = push(map(value(a), [](double x) { return x > 0.0 ? x : 0.0; }),
                 nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& x = t.node(ia).value;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    const double* xp = x.data();
    const double* gp = g.data();
    double* gap = ga.data();
    par_elems(x.size(), [xp, gp, gap](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        if (xp[i] > 0.0) gap[i] += gp[i];
      }
    });
  };
  return out;
}

Var Tape::softmax_rows(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  const Matrix& x = value(a);
  Matrix y(x.rows(), x.cols());
  // Row-parallel: each row's max/denom reduction stays serial within one
  // chunk, so the result is identical for any thread count.
  par_rows(x.rows(), x.cols(), [&x, &y](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      double mx = -1e300;
      for (std::size_t c = 0; c < x.cols(); ++c) mx = std::max(mx, x(r, c));
      double denom = 0.0;
      for (std::size_t c = 0; c < x.cols(); ++c) {
        y(r, c) = std::exp(x(r, c) - mx);
        denom += y(r, c);
      }
      for (std::size_t c = 0; c < x.cols(); ++c) y(r, c) /= denom;
    }
  });
  Var out = push(std::move(y), nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& y2 = t.node(io).value;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    // Per row: dx = y ⊙ (g - <g, y>)
    par_rows(y2.rows(), y2.cols(), [&](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        double dot = 0.0;
        for (std::size_t c = 0; c < y2.cols(); ++c) dot += g(r, c) * y2(r, c);
        for (std::size_t c = 0; c < y2.cols(); ++c) {
          ga(r, c) += y2(r, c) * (g(r, c) - dot);
        }
      }
    });
  };
  return out;
}

Var Tape::concat_cols(Var a, Var b) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var out = push(hcat(value(a), value(b)), rg, nullptr);
  const std::size_t io = out.index;
  const std::size_t ca = value(a).cols();
  nodes_[io].backward = [ia, ib, io, ca](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    if (t.node(ia).requires_grad) {
      t.grad_ref(ia) += g.slice_cols(0, ca);
    }
    if (t.node(ib).requires_grad) {
      t.grad_ref(ib) += g.slice_cols(ca, g.cols());
    }
  };
  return out;
}

Var Tape::concat_cols_many(const std::vector<Var>& vars) {
  if (vars.empty()) throw std::invalid_argument("concat_cols_many: empty");
  Var acc = vars.front();
  for (std::size_t i = 1; i < vars.size(); ++i) {
    acc = concat_cols(acc, vars[i]);
  }
  return acc;
}

Var Tape::slice_cols(Var a, std::size_t c0, std::size_t c1) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Var out = push(value(a).slice_cols(c0, c1), nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io, c0](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    for (std::size_t r = 0; r < g.rows(); ++r) {
      for (std::size_t c = 0; c < g.cols(); ++c) ga(r, c0 + c) += g(r, c);
    }
  };
  return out;
}

Var Tape::transpose(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Var out = push(value(a).transposed(), nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (t.node(ia).requires_grad) {
      t.grad_ref(ia) += t.grad_ref(io).transposed();
    }
  };
  return out;
}

Var Tape::mean_all(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  const double n = static_cast<double>(value(a).size());
  Matrix v(1, 1);
  v(0, 0) = value(a).sum() / n;
  Var out = push(std::move(v), nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io, n](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const double g = t.grad_ref(io)(0, 0) / n;
    Matrix& ga = t.grad_ref(ia);
    double* gap = ga.data();
    par_elems(ga.size(), [gap, g](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) gap[i] += g;
    });
  };
  return out;
}

Var Tape::sum_all(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix v(1, 1);
  v(0, 0) = value(a).sum();
  Var out = push(std::move(v), nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const double g = t.grad_ref(io)(0, 0);
    Matrix& ga = t.grad_ref(ia);
    double* gap = ga.data();
    par_elems(ga.size(), [gap, g](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) gap[i] += g;
    });
  };
  return out;
}

Var Tape::masked_mae(Var a, const Matrix& target, const Matrix& w) {
  check_same_tape(a);
  const Matrix& x = value(a);
  if (!x.same_shape(target) || !x.same_shape(w)) {
    throw ShapeError("masked_mae: shape mismatch");
  }
  const std::size_t ia = a.index;
  const double count = std::max(1.0, w.sum());
  double loss = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    loss += w.data()[i] * std::abs(x.data()[i] - target.data()[i]);
  }
  Matrix v(1, 1);
  v(0, 0) = loss / count;
  Var out = push(std::move(v), nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  Matrix tgt = target, wt = w;
  nodes_[io].backward = [ia, io, count, tgt = std::move(tgt),
                         wt = std::move(wt)](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const double g = t.grad_ref(io)(0, 0) / count;
    const Matrix& x2 = t.node(ia).value;
    Matrix& ga = t.grad_ref(ia);
    const double* xp = x2.data();
    const double* tp = tgt.data();
    const double* wp = wt.data();
    double* gap = ga.data();
    par_elems(x2.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double d = xp[i] - tp[i];
        // Subgradient 0 at d == 0.
        const double sgn = d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0);
        gap[i] += g * wp[i] * sgn;
      }
    });
  };
  return out;
}

Var Tape::masked_mse(Var a, const Matrix& target, const Matrix& w) {
  check_same_tape(a);
  const Matrix& x = value(a);
  if (!x.same_shape(target) || !x.same_shape(w)) {
    throw ShapeError("masked_mse: shape mismatch");
  }
  const std::size_t ia = a.index;
  const double count = std::max(1.0, w.sum());
  double loss = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x.data()[i] - target.data()[i];
    loss += w.data()[i] * d * d;
  }
  Matrix v(1, 1);
  v(0, 0) = loss / count;
  Var out = push(std::move(v), nodes_[ia].requires_grad, nullptr);
  const std::size_t io = out.index;
  Matrix tgt = target, wt = w;
  nodes_[io].backward = [ia, io, count, tgt = std::move(tgt),
                         wt = std::move(wt)](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const double g = t.grad_ref(io)(0, 0) / count;
    const Matrix& x2 = t.node(ia).value;
    Matrix& ga = t.grad_ref(ia);
    const double* xp = x2.data();
    const double* tp = tgt.data();
    const double* wp = wt.data();
    double* gap = ga.data();
    par_elems(x2.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        gap[i] += g * wp[i] * 2.0 * (xp[i] - tp[i]);
      }
    });
  };
  return out;
}

Var Tape::weighted_l1_between(Var a, Var b, const Matrix& w) {
  check_same_tape(a);
  check_same_tape(b);
  const Matrix& xa = value(a);
  const Matrix& xb = value(b);
  if (!xa.same_shape(xb) || !xa.same_shape(w)) {
    throw ShapeError("weighted_l1_between: shape mismatch");
  }
  const std::size_t ia = a.index, ib = b.index;
  const double count = std::max(1.0, w.sum());
  double loss = 0.0;
  for (std::size_t i = 0; i < xa.size(); ++i) {
    loss += w.data()[i] * std::abs(xa.data()[i] - xb.data()[i]);
  }
  Matrix v(1, 1);
  v(0, 0) = loss / count;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var out = push(std::move(v), rg, nullptr);
  const std::size_t io = out.index;
  Matrix wt = w;
  nodes_[io].backward = [ia, ib, io, count, wt = std::move(wt)](Tape& t) {
    const double g = t.grad_ref(io)(0, 0) / count;
    const Matrix& x2 = t.node(ia).value;
    const Matrix& y2 = t.node(ib).value;
    const bool need_a = t.node(ia).requires_grad;
    const bool need_b = t.node(ib).requires_grad;
    if (!need_a && !need_b) return;
    Matrix* ga = need_a ? &t.grad_ref(ia) : nullptr;
    Matrix* gb = need_b ? &t.grad_ref(ib) : nullptr;
    const double* xp = x2.data();
    const double* yp = y2.data();
    const double* wp = wt.data();
    double* gap = ga ? ga->data() : nullptr;
    double* gbp = gb ? gb->data() : nullptr;
    par_elems(x2.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double d = xp[i] - yp[i];
        const double sgn = d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0);
        const double gi = g * wp[i] * sgn;
        if (gap) gap[i] += gi;
        if (gbp) gbp[i] -= gi;
      }
    });
  };
  return out;
}

Var Tape::affine_combine(Var a, double c0, Var b, double c1) {
  check_same_tape(a);
  check_same_tape(b);
  if (value(a).size() != 1 || value(b).size() != 1) {
    throw ShapeError("affine_combine expects scalar (1x1) vars");
  }
  const std::size_t ia = a.index, ib = b.index;
  Matrix v(1, 1);
  v(0, 0) = c0 * value(a)(0, 0) + c1 * value(b)(0, 0);
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Var out = push(std::move(v), rg, nullptr);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io, c0, c1](Tape& t) {
    const double g = t.grad_ref(io)(0, 0);
    if (t.node(ia).requires_grad) t.grad_ref(ia)(0, 0) += c0 * g;
    if (t.node(ib).requires_grad) t.grad_ref(ib)(0, 0) += c1 * g;
  };
  return out;
}

void Tape::run_reverse_sweep(Var output) {
  check_same_tape(output);
  const Matrix& out_val = nodes_[output.index].value;
  if (out_val.size() != 1) {
    throw ShapeError("backward: output must be a 1x1 scalar");
  }
  grad_ref(output.index)(0, 0) = 1.0;
  for (std::size_t i = output.index + 1; i-- > 0;) {
    Node& n = nodes_[i];
    if (!n.requires_grad && !n.bound_param) continue;
    if (n.grad.empty()) continue;  // unreached: nothing flowed here
    if (n.backward) n.backward(*this);
  }
}

void Tape::backward(Var output) { run_reverse_sweep(output); }

void Tape::backward_into(Var output, GradSink& sink) {
  grad_sink_ = &sink;
  try {
    run_reverse_sweep(output);
  } catch (...) {
    grad_sink_ = nullptr;
    throw;
  }
  grad_sink_ = nullptr;
}

const Matrix& Tape::value(Var v) const {
  const_cast<Tape*>(this)->check_same_tape(v);
  return nodes_[v.index].value;
}

const Matrix& Tape::grad(Var v) const {
  const_cast<Tape*>(this)->check_same_tape(v);
  const Node& n = nodes_[v.index];
  if (n.grad.empty()) {
    // Lazily produce a zero matrix of the right shape for callers.
    auto* self = const_cast<Tape*>(this);
    return self->grad_ref(v.index);
  }
  return n.grad;
}

double gradient_check(Parameter& p,
                      const std::function<double()>& loss_value_fn,
                      const Matrix& analytic_grad, double eps) {
  double max_diff = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double orig = p.value().data()[i];
    p.value().data()[i] = orig + eps;
    const double lp = loss_value_fn();
    p.value().data()[i] = orig - eps;
    const double lm = loss_value_fn();
    p.value().data()[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    max_diff = std::max(max_diff,
                        std::abs(numeric - analytic_grad.data()[i]));
  }
  return max_diff;
}

}  // namespace rihgcn::ad
