#include "autodiff/tape.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/csr.hpp"
#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"

namespace rihgcn::ad {

namespace {

// Parallel dispatch for the tape's hand-rolled elementwise loops (op values
// and backward gradient accumulation). Every element/row is written by
// exactly one chunk and chunk boundaries are fixed by size alone, so the
// sweep stays bit-for-bit deterministic for any thread count. Reduction
// loops (loss sums, softmax row dots within a row) stay serial.
template <typename Body>
void par_elems(std::size_t n, Body&& body) {
  if (n < ParallelTuning::min_elems) {
    body(std::size_t{0}, n);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() <= 1) {
    body(std::size_t{0}, n);
    return;
  }
  pool.parallel_for(0, n, ParallelTuning::elem_grain,
                    ThreadPool::RangeBody(std::forward<Body>(body)));
}

template <typename Body>
void par_rows(std::size_t rows, std::size_t cols, Body&& body) {
  if (rows * cols < ParallelTuning::min_elems) {
    body(std::size_t{0}, rows);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() <= 1) {
    body(std::size_t{0}, rows);
    return;
  }
  const std::size_t grain = std::max<std::size_t>(
      1, ParallelTuning::elem_grain / std::max<std::size_t>(1, cols));
  pool.parallel_for(0, rows, grain,
                    ThreadPool::RangeBody(std::forward<Body>(body)));
}

// Numerically stable logistic — the single definition shared by
// Tape::sigmoid and the fused cells, so both paths round identically.
inline double stable_sigmoid(double x) {
  return x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                  : std::exp(x) / (1.0 + std::exp(x));
}

}  // namespace

const Matrix& Var::value() const {
  if (!tape) throw std::logic_error("Var::value on null tape");
  return tape->value(*this);
}

Var Tape::push(Matrix value, bool requires_grad, BackwardFn backward_fn) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  n.backward = std::move(backward_fn);
  nodes_.push_back(std::move(n));
  return Var{this, nodes_.size() - 1};
}

Matrix Tape::pooled_copy(const Matrix& src) {
  Matrix out = pool_.acquire(src.rows(), src.cols());
  if (!src.empty()) {
    std::copy(src.data(), src.data() + src.size(), out.data());
  }
  return out;
}

void Tape::reset() {
  for (Node& n : nodes_) {
    pool_.release(std::move(n.value));
    pool_.release(std::move(n.grad));
  }
  nodes_.clear();  // keeps capacity; closures destroyed in place
  leaf_cache_.clear();
  grad_sink_ = nullptr;
}

Matrix& Tape::grad_ref(std::size_t i) {
  Node& n = nodes_[i];
  if (n.grad.rows() != n.value.rows() || n.grad.cols() != n.value.cols()) {
    pool_.release(std::move(n.grad));
    n.grad = pool_.acquire(n.value.rows(), n.value.cols());
  }
  return n.grad;
}

void Tape::check_same_tape(Var v) const {
  if (v.tape != this) {
    throw std::logic_error("Var belongs to a different (or null) tape");
  }
  if (v.index >= nodes_.size()) {
    throw std::logic_error("Var index out of range");
  }
}

Var Tape::constant(const Matrix& value) {
  return push(pooled_copy(value), /*requires_grad=*/false);
}

Var Tape::leaf(Parameter& p) {
  for (const auto& [param, idx] : leaf_cache_) {
    if (param == &p) return Var{this, idx};
  }
  Var v = push(pooled_copy(p.value()), /*requires_grad=*/true);
  Node& n = nodes_[v.index];
  n.bound_param = &p;
  const std::size_t idx = v.index;
  n.backward = [idx](Tape& t) {
    Node& self = t.node(idx);
    if (t.grad_sink_ != nullptr) {
      Matrix& g = (*t.grad_sink_)[self.bound_param];
      if (g.empty()) {
        g = Matrix(self.value.rows(), self.value.cols());
      }
      g += t.grad_ref(idx);
    } else {
      self.bound_param->grad() += t.grad_ref(idx);
    }
  };
  leaf_cache_.emplace_back(&p, idx);
  return v;
}

// Each op builds the value into a pooled buffer, pushes the node, then
// installs a backward closure that knows the child's own index — closures
// resolve nodes through the tape at call time, so vector reallocation
// during construction is harmless. (References into nodes_ must not be
// held across push() for the same reason.)
Var Tape::add(Var a, Var b) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const Matrix& av = nodes_[ia].value;
    const Matrix& bv = nodes_[ib].value;
    if (!av.same_shape(bv)) throw ShapeError("add: shape mismatch");
    const double* ap = av.data();
    const double* bp = bv.data();
    double* vp = v.data();
    const simd::Kernels& kern = simd::active_kernels();
    par_elems(v.size(), [=, &kern](std::size_t i0, std::size_t i1) {
      kern.add_into(vp + i0, ap + i0, bp + i0, i1 - i0);
    });
  }
  Var out = push(std::move(v), rg);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    if (t.node(ia).requires_grad) t.grad_ref(ia) += g;
    if (t.node(ib).requires_grad) t.grad_ref(ib) += g;
  };
  return out;
}

Var Tape::sub(Var a, Var b) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const Matrix& av = nodes_[ia].value;
    const Matrix& bv = nodes_[ib].value;
    if (!av.same_shape(bv)) throw ShapeError("sub: shape mismatch");
    const double* ap = av.data();
    const double* bp = bv.data();
    double* vp = v.data();
    const simd::Kernels& kern = simd::active_kernels();
    par_elems(v.size(), [=, &kern](std::size_t i0, std::size_t i1) {
      kern.sub_into(vp + i0, ap + i0, bp + i0, i1 - i0);
    });
  }
  Var out = push(std::move(v), rg);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    if (t.node(ia).requires_grad) t.grad_ref(ia) += g;
    if (t.node(ib).requires_grad) t.grad_ref(ib) -= g;
  };
  return out;
}

Var Tape::mul(Var a, Var b) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const Matrix& av = nodes_[ia].value;
    const Matrix& bv = nodes_[ib].value;
    if (!av.same_shape(bv)) throw ShapeError("mul: shape mismatch");
    const double* ap = av.data();
    const double* bp = bv.data();
    double* vp = v.data();
    const simd::Kernels& kern = simd::active_kernels();
    par_elems(v.size(), [=, &kern](std::size_t i0, std::size_t i1) {
      kern.mul_into(vp + i0, ap + i0, bp + i0, i1 - i0);
    });
  }
  Var out = push(std::move(v), rg);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    const double* gp = g.data();
    const simd::Kernels& kern = simd::active_kernels();
    if (t.node(ia).requires_grad) {
      const double* bp = t.node(ib).value.data();
      double* gap = t.grad_ref(ia).data();
      par_elems(g.size(), [=, &kern](std::size_t i0, std::size_t i1) {
        kern.fmadd(gap + i0, gp + i0, bp + i0, i1 - i0);
      });
    }
    if (t.node(ib).requires_grad) {
      const double* ap = t.node(ia).value.data();
      double* gbp = t.grad_ref(ib).data();
      par_elems(g.size(), [=, &kern](std::size_t i0, std::size_t i1) {
        kern.fmadd(gbp + i0, gp + i0, ap + i0, i1 - i0);
      });
    }
  };
  return out;
}

Var Tape::scale(Var a, double s) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const double* ap = nodes_[ia].value.data();
    double* vp = v.data();
    par_elems(v.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) vp[i] = ap[i] * s;
    });
  }
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io, s](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const double* gp = t.grad_ref(io).data();
    Matrix& ga = t.grad_ref(ia);
    double* gap = ga.data();
    const simd::Kernels& kern = simd::active_kernels();
    par_elems(ga.size(), [=, &kern](std::size_t i0, std::size_t i1) {
      kern.axpy(gap + i0, s, gp + i0, i1 - i0);
    });
  };
  return out;
}

Var Tape::add_scalar(Var a, double s) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const double* ap = nodes_[ia].value.data();
    double* vp = v.data();
    par_elems(v.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) vp[i] = ap[i] + s;
    });
  }
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (t.node(ia).requires_grad) t.grad_ref(ia) += t.grad_ref(io);
  };
  return out;
}

Var Tape::hadamard_const(Var a, const Matrix& m) {
  // The mask becomes a constant node: its buffer is pooled and its value is
  // read through the tape in backward, so the closure captures no Matrix.
  return mul(a, constant(m));
}

Var Tape::matmul(Var a, Var b) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Matrix v =
      pool_.acquire(nodes_[ia].value.rows(), nodes_[ib].value.cols());
  matmul_accumulate(nodes_[ia].value, nodes_[ib].value, v);
  Var out = push(std::move(v), rg);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    // dL/dA = g * B^T ; dL/dB = A^T * g. Pooled temp, then add — bitwise
    // equal to the allocate-then-add the op always did.
    if (t.node(ia).requires_grad) {
      const Matrix& av = t.node(ia).value;
      Matrix tmp = t.pool_.acquire(av.rows(), av.cols());
      matmul_bt_into(g, t.node(ib).value, tmp);
      t.grad_ref(ia) += tmp;
      t.pool_.release(std::move(tmp));
    }
    if (t.node(ib).requires_grad) {
      const Matrix& bv = t.node(ib).value;
      Matrix tmp = t.pool_.acquire(bv.rows(), bv.cols());
      matmul_at_accumulate(t.node(ia).value, g, tmp);
      t.grad_ref(ib) += tmp;
      t.pool_.release(std::move(tmp));
    }
  };
  return out;
}

Var Tape::spmm(const CsrMatrix& a, Var b) {
  check_same_tape(b);
  const std::size_t ib = b.index;
  Matrix v = pool_.acquire(a.rows(), nodes_[ib].value.cols());
  spmm_accumulate(a, nodes_[ib].value, v);
  Var out = push(std::move(v), nodes_[ib].requires_grad);
  const std::size_t io = out.index;
  // The Laplacian is a model-lifetime constant, so the closure stores only a
  // pointer; dL/dB = Aᵀ·g. Pooled temp, then add (not accumulate-in-place)
  // keeps the gradient bitwise equal to the dense matmul path's update.
  const CsrMatrix* ap = &a;
  nodes_[io].backward = [ib, io, ap](Tape& t) {
    if (!t.node(ib).requires_grad) return;
    const Matrix& bv = t.node(ib).value;
    Matrix tmp = t.pool_.acquire(bv.rows(), bv.cols());
    spmm_t_accumulate(*ap, t.grad_ref(io), tmp);
    t.grad_ref(ib) += tmp;
    t.pool_.release(std::move(tmp));
  };
  return out;
}

Var Tape::mul_col_broadcast(Var a, Var col) {
  check_same_tape(a);
  check_same_tape(col);
  const std::size_t ia = a.index, ic = col.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ic].requires_grad;
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const Matrix& x = nodes_[ia].value;
    const Matrix& c = nodes_[ic].value;
    if (c.cols() != 1 || c.rows() != x.rows()) {
      throw ShapeError("mul_col_broadcast: col must be rows x 1");
    }
    par_rows(v.rows(), v.cols(), [&v, &x, &c](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t cc = 0; cc < v.cols(); ++cc) {
          v(r, cc) = x(r, cc) * c(r, 0);
        }
      }
    });
  }
  Var out = push(std::move(v), rg);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ic, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    const Matrix& x2 = t.node(ia).value;
    const Matrix& c2 = t.node(ic).value;
    if (t.node(ia).requires_grad) {
      Matrix& ga = t.grad_ref(ia);
      par_rows(g.rows(), g.cols(), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          for (std::size_t cc = 0; cc < g.cols(); ++cc) {
            ga(r, cc) += g(r, cc) * c2(r, 0);
          }
        }
      });
    }
    if (t.node(ic).requires_grad) {
      Matrix& gc = t.grad_ref(ic);
      // Each output row reduces its own columns serially (ascending cc), so
      // the per-row sum is order-stable regardless of the row partition.
      par_rows(g.rows(), g.cols(), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          double s = 0.0;
          for (std::size_t cc = 0; cc < g.cols(); ++cc) {
            s += g(r, cc) * x2(r, cc);
          }
          gc(r, 0) += s;
        }
      });
    }
  };
  return out;
}

Var Tape::add_row_broadcast(Var a, Var bias_row) {
  check_same_tape(a);
  check_same_tape(bias_row);
  const std::size_t ia = a.index, ib = bias_row.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const Matrix& x = nodes_[ia].value;
    const Matrix& row = nodes_[ib].value;
    if (row.rows() != 1 || row.cols() != x.cols()) {
      throw ShapeError("add_row_broadcast: bias must be 1 x cols");
    }
    par_rows(v.rows(), v.cols(), [&v, &x, &row](std::size_t r0,
                                                std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        for (std::size_t c = 0; c < v.cols(); ++c) {
          v(r, c) = x(r, c) + row(0, c);
        }
      }
    });
  }
  Var out = push(std::move(v), rg);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    if (t.node(ia).requires_grad) t.grad_ref(ia) += g;
    if (t.node(ib).requires_grad) {
      Matrix& gb = t.grad_ref(ib);
      for (std::size_t r = 0; r < g.rows(); ++r) {
        for (std::size_t c = 0; c < g.cols(); ++c) gb(0, c) += g(r, c);
      }
    }
  };
  return out;
}

Var Tape::sigmoid(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const double* ap = nodes_[ia].value.data();
    double* vp = v.data();
    par_elems(v.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) vp[i] = stable_sigmoid(ap[i]);
    });
  }
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& y = t.node(io).value;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    const double* yp = y.data();
    const double* gp = g.data();
    double* gap = ga.data();
    par_elems(y.size(), [yp, gp, gap](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        gap[i] += gp[i] * yp[i] * (1.0 - yp[i]);
      }
    });
  };
  return out;
}

Var Tape::tanh(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const double* ap = nodes_[ia].value.data();
    double* vp = v.data();
    par_elems(v.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) vp[i] = std::tanh(ap[i]);
    });
  }
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& y = t.node(io).value;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    const double* yp = y.data();
    const double* gp = g.data();
    double* gap = ga.data();
    par_elems(y.size(), [yp, gp, gap](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        gap[i] += gp[i] * (1.0 - yp[i] * yp[i]);
      }
    });
  };
  return out;
}

Var Tape::relu(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const double* ap = nodes_[ia].value.data();
    double* vp = v.data();
    par_elems(v.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        vp[i] = ap[i] > 0.0 ? ap[i] : 0.0;
      }
    });
  }
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& x = t.node(ia).value;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    const double* xp = x.data();
    const double* gp = g.data();
    double* gap = ga.data();
    par_elems(x.size(), [xp, gp, gap](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        if (xp[i] > 0.0) gap[i] += gp[i];
      }
    });
  };
  return out;
}

Var Tape::softmax_rows(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix y = pool_.acquire(nodes_[ia].value.rows(), nodes_[ia].value.cols());
  {
    const Matrix& x = nodes_[ia].value;
    // Row-parallel: each row's max/denom reduction stays serial within one
    // chunk, so the result is identical for any thread count.
    par_rows(x.rows(), x.cols(), [&x, &y](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        double mx = -1e300;
        for (std::size_t c = 0; c < x.cols(); ++c) mx = std::max(mx, x(r, c));
        double denom = 0.0;
        for (std::size_t c = 0; c < x.cols(); ++c) {
          y(r, c) = std::exp(x(r, c) - mx);
          denom += y(r, c);
        }
        for (std::size_t c = 0; c < x.cols(); ++c) y(r, c) /= denom;
      }
    });
  }
  Var out = push(std::move(y), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& y2 = t.node(io).value;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    // Per row: dx = y ⊙ (g - <g, y>)
    par_rows(y2.rows(), y2.cols(), [&](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        double dot = 0.0;
        for (std::size_t c = 0; c < y2.cols(); ++c) dot += g(r, c) * y2(r, c);
        for (std::size_t c = 0; c < y2.cols(); ++c) {
          ga(r, c) += y2(r, c) * (g(r, c) - dot);
        }
      }
    });
  };
  return out;
}

Var Tape::concat_cols(Var a, Var b) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  const std::size_t ca = nodes_[ia].value.cols();
  Matrix v = pool_.acquire(nodes_[ia].value.rows(),
                           ca + nodes_[ib].value.cols());
  {
    const Matrix& av = nodes_[ia].value;
    const Matrix& bv = nodes_[ib].value;
    if (av.rows() != bv.rows()) throw ShapeError("concat_cols: row mismatch");
    for (std::size_t r = 0; r < av.rows(); ++r) {
      for (std::size_t c = 0; c < ca; ++c) v(r, c) = av(r, c);
      for (std::size_t c = 0; c < bv.cols(); ++c) v(r, ca + c) = bv(r, c);
    }
  }
  Var out = push(std::move(v), rg);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io, ca](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    if (t.node(ia).requires_grad) {
      Matrix& ga = t.grad_ref(ia);
      for (std::size_t r = 0; r < ga.rows(); ++r) {
        for (std::size_t c = 0; c < ga.cols(); ++c) ga(r, c) += g(r, c);
      }
    }
    if (t.node(ib).requires_grad) {
      Matrix& gb = t.grad_ref(ib);
      for (std::size_t r = 0; r < gb.rows(); ++r) {
        for (std::size_t c = 0; c < gb.cols(); ++c) gb(r, c) += g(r, ca + c);
      }
    }
  };
  return out;
}

Var Tape::concat_cols_many(const std::vector<Var>& vars) {
  if (vars.empty()) throw std::invalid_argument("concat_cols_many: empty");
  if (vars.size() == 1) return vars.front();
  std::vector<std::size_t> idx;
  idx.reserve(vars.size());
  std::size_t total_cols = 0;
  bool rg = false;
  for (Var v : vars) {
    check_same_tape(v);
    if (nodes_[v.index].value.rows() != nodes_[vars.front().index].value.rows()) {
      throw ShapeError("concat_cols_many: row mismatch");
    }
    total_cols += nodes_[v.index].value.cols();
    rg = rg || nodes_[v.index].requires_grad;
    idx.push_back(v.index);
  }
  Matrix v = pool_.acquire(nodes_[idx.front()].value.rows(), total_cols);
  {
    std::size_t off = 0;
    for (const std::size_t i : idx) {
      const Matrix& src = nodes_[i].value;
      for (std::size_t r = 0; r < src.rows(); ++r) {
        for (std::size_t c = 0; c < src.cols(); ++c) {
          v(r, off + c) = src(r, c);
        }
      }
      off += src.cols();
    }
  }
  Var out = push(std::move(v), rg);
  const std::size_t io = out.index;
  // One n-ary backward: each input's grad is the exact block copy of the
  // output grad at its column offset, same bits as a binary-concat chain
  // but one node and one pass instead of k-1 of each.
  nodes_[io].backward = [idx = std::move(idx), io](Tape& t) {
    const Matrix& g = t.grad_ref(io);
    std::size_t off = 0;
    for (const std::size_t i : idx) {
      const std::size_t cols = t.node(i).value.cols();
      if (t.node(i).requires_grad) {
        Matrix& gi = t.grad_ref(i);
        for (std::size_t r = 0; r < gi.rows(); ++r) {
          for (std::size_t c = 0; c < cols; ++c) gi(r, c) += g(r, off + c);
        }
      }
      off += cols;
    }
  };
  return out;
}

Var Tape::slice_cols(Var a, std::size_t c0, std::size_t c1) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  if (c1 > nodes_[ia].value.cols() || c0 > c1) {
    throw ShapeError("slice_cols: bad column range");
  }
  Matrix v = pool_.acquire(nodes_[ia].value.rows(), c1 - c0);
  {
    const Matrix& av = nodes_[ia].value;
    for (std::size_t r = 0; r < av.rows(); ++r) {
      for (std::size_t c = c0; c < c1; ++c) v(r, c - c0) = av(r, c);
    }
  }
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io, c0](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    for (std::size_t r = 0; r < g.rows(); ++r) {
      for (std::size_t c = 0; c < g.cols(); ++c) ga(r, c0 + c) += g(r, c);
    }
  };
  return out;
}

Var Tape::transpose(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix v = pool_.acquire(nodes_[ia].value.cols(), nodes_[ia].value.rows());
  {
    const Matrix& av = nodes_[ia].value;
    for (std::size_t r = 0; r < av.rows(); ++r) {
      for (std::size_t c = 0; c < av.cols(); ++c) v(c, r) = av(r, c);
    }
  }
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const Matrix& g = t.grad_ref(io);
    Matrix& ga = t.grad_ref(ia);
    for (std::size_t r = 0; r < ga.rows(); ++r) {
      for (std::size_t c = 0; c < ga.cols(); ++c) ga(r, c) += g(c, r);
    }
  };
  return out;
}

Var Tape::mean_all(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  const double n = static_cast<double>(nodes_[ia].value.size());
  Matrix v = pool_.acquire(1, 1);
  v(0, 0) = nodes_[ia].value.sum() / n;
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io, n](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const double g = t.grad_ref(io)(0, 0) / n;
    Matrix& ga = t.grad_ref(ia);
    double* gap = ga.data();
    par_elems(ga.size(), [gap, g](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) gap[i] += g;
    });
  };
  return out;
}

Var Tape::sum_all(Var a) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  Matrix v = pool_.acquire(1, 1);
  v(0, 0) = nodes_[ia].value.sum();
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const double g = t.grad_ref(io)(0, 0);
    Matrix& ga = t.grad_ref(ia);
    double* gap = ga.data();
    par_elems(ga.size(), [gap, g](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) gap[i] += g;
    });
  };
  return out;
}

Var Tape::masked_mae(Var a, const Matrix& target, const Matrix& w) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  double loss = 0.0;
  double count = 1.0;
  {
    const Matrix& x = nodes_[ia].value;
    if (!x.same_shape(target) || !x.same_shape(w)) {
      throw ShapeError("masked_mae: shape mismatch");
    }
    count = std::max(1.0, w.sum());
    for (std::size_t i = 0; i < x.size(); ++i) {
      loss += w.data()[i] * std::abs(x.data()[i] - target.data()[i]);
    }
  }
  // target/w become constant nodes: pooled buffers read through the tape in
  // backward instead of per-call Matrix copies captured in the closure.
  const std::size_t itgt = constant(target).index;
  const std::size_t iwt = constant(w).index;
  Matrix v = pool_.acquire(1, 1);
  v(0, 0) = loss / count;
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io, itgt, iwt, count](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const double g = t.grad_ref(io)(0, 0) / count;
    const Matrix& x2 = t.node(ia).value;
    Matrix& ga = t.grad_ref(ia);
    const double* xp = x2.data();
    const double* tp = t.node(itgt).value.data();
    const double* wp = t.node(iwt).value.data();
    double* gap = ga.data();
    par_elems(x2.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double d = xp[i] - tp[i];
        // Subgradient 0 at d == 0.
        const double sgn = d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0);
        gap[i] += g * wp[i] * sgn;
      }
    });
  };
  return out;
}

Var Tape::masked_mse(Var a, const Matrix& target, const Matrix& w) {
  check_same_tape(a);
  const std::size_t ia = a.index;
  double loss = 0.0;
  double count = 1.0;
  {
    const Matrix& x = nodes_[ia].value;
    if (!x.same_shape(target) || !x.same_shape(w)) {
      throw ShapeError("masked_mse: shape mismatch");
    }
    count = std::max(1.0, w.sum());
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x.data()[i] - target.data()[i];
      loss += w.data()[i] * d * d;
    }
  }
  const std::size_t itgt = constant(target).index;
  const std::size_t iwt = constant(w).index;
  Matrix v = pool_.acquire(1, 1);
  v(0, 0) = loss / count;
  Var out = push(std::move(v), nodes_[ia].requires_grad);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, io, itgt, iwt, count](Tape& t) {
    if (!t.node(ia).requires_grad) return;
    const double g = t.grad_ref(io)(0, 0) / count;
    const Matrix& x2 = t.node(ia).value;
    Matrix& ga = t.grad_ref(ia);
    const double* xp = x2.data();
    const double* tp = t.node(itgt).value.data();
    const double* wp = t.node(iwt).value.data();
    double* gap = ga.data();
    par_elems(x2.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        gap[i] += g * wp[i] * 2.0 * (xp[i] - tp[i]);
      }
    });
  };
  return out;
}

Var Tape::weighted_l1_between(Var a, Var b, const Matrix& w) {
  check_same_tape(a);
  check_same_tape(b);
  const std::size_t ia = a.index, ib = b.index;
  double loss = 0.0;
  double count = 1.0;
  bool rg = false;
  {
    const Matrix& xa = nodes_[ia].value;
    const Matrix& xb = nodes_[ib].value;
    if (!xa.same_shape(xb) || !xa.same_shape(w)) {
      throw ShapeError("weighted_l1_between: shape mismatch");
    }
    count = std::max(1.0, w.sum());
    for (std::size_t i = 0; i < xa.size(); ++i) {
      loss += w.data()[i] * std::abs(xa.data()[i] - xb.data()[i]);
    }
    rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  }
  const std::size_t iwt = constant(w).index;
  Matrix v = pool_.acquire(1, 1);
  v(0, 0) = loss / count;
  Var out = push(std::move(v), rg);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io, iwt, count](Tape& t) {
    const double g = t.grad_ref(io)(0, 0) / count;
    const Matrix& x2 = t.node(ia).value;
    const Matrix& y2 = t.node(ib).value;
    const bool need_a = t.node(ia).requires_grad;
    const bool need_b = t.node(ib).requires_grad;
    if (!need_a && !need_b) return;
    Matrix* ga = need_a ? &t.grad_ref(ia) : nullptr;
    Matrix* gb = need_b ? &t.grad_ref(ib) : nullptr;
    const double* xp = x2.data();
    const double* yp = y2.data();
    const double* wp = t.node(iwt).value.data();
    double* gap = ga ? ga->data() : nullptr;
    double* gbp = gb ? gb->data() : nullptr;
    par_elems(x2.size(), [=](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double d = xp[i] - yp[i];
        const double sgn = d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0);
        const double gi = g * wp[i] * sgn;
        if (gap) gap[i] += gi;
        if (gbp) gbp[i] -= gi;
      }
    });
  };
  return out;
}

Var Tape::affine_combine(Var a, double c0, Var b, double c1) {
  check_same_tape(a);
  check_same_tape(b);
  if (nodes_[a.index].value.size() != 1 || nodes_[b.index].value.size() != 1) {
    throw ShapeError("affine_combine expects scalar (1x1) vars");
  }
  const std::size_t ia = a.index, ib = b.index;
  const bool rg = nodes_[ia].requires_grad || nodes_[ib].requires_grad;
  Matrix v = pool_.acquire(1, 1);
  v(0, 0) = c0 * nodes_[ia].value(0, 0) + c1 * nodes_[ib].value(0, 0);
  Var out = push(std::move(v), rg);
  const std::size_t io = out.index;
  nodes_[io].backward = [ia, ib, io, c0, c1](Tape& t) {
    const double g = t.grad_ref(io)(0, 0);
    if (t.node(ia).requires_grad) t.grad_ref(ia)(0, 0) += c0 * g;
    if (t.node(ib).requires_grad) t.grad_ref(ib)(0, 0) += c1 * g;
  };
  return out;
}

// ---- Fused recurrent cells --------------------------------------------------
//
// Parity discipline (held at tol = 0 by tests/test_tape_arena.cpp): every
// arithmetic expression below reproduces the unfused op chain's rounding
// points — each intermediate that the unfused chain stores in a node is a
// separate local here — and every gradient accumulator receives its
// contributions in the same order the unfused reverse sweep produces them.
// Contributions to *different* accumulators may interleave freely.

Tape::LstmState Tape::lstm_cell(Var x, Var h_prev, Var c_prev, Var w_ih,
                                Var w_hh, Var bias) {
  check_same_tape(x);
  check_same_tape(h_prev);
  check_same_tape(c_prev);
  check_same_tape(w_ih);
  check_same_tape(w_hh);
  check_same_tape(bias);
  const std::size_t ix = x.index, ihp = h_prev.index, icp = c_prev.index;
  const std::size_t iwih = w_ih.index, iwhh = w_hh.index, ib = bias.index;
  const std::size_t n = nodes_[ix].value.rows();
  const std::size_t hd = nodes_[iwhh].value.rows();
  const std::size_t g4 = 4 * hd;
  {
    const Matrix& xv = nodes_[ix].value;
    const Matrix& hv = nodes_[ihp].value;
    const Matrix& cv = nodes_[icp].value;
    const Matrix& wi = nodes_[iwih].value;
    const Matrix& wh = nodes_[iwhh].value;
    const Matrix& bv = nodes_[ib].value;
    if (wi.rows() != xv.cols() || wi.cols() != g4 || wh.cols() != g4 ||
        hv.rows() != n || hv.cols() != hd || cv.rows() != n ||
        cv.cols() != hd || bv.rows() != 1 || bv.cols() != g4) {
      throw ShapeError("lstm_cell: shape mismatch");
    }
  }
  const bool rg = nodes_[ix].requires_grad || nodes_[ihp].requires_grad ||
                  nodes_[icp].requires_grad || nodes_[iwih].requires_grad ||
                  nodes_[iwhh].requires_grad || nodes_[ib].requires_grad;

  // Gate node: activated [i | f | o | g]. Pre-activations keep the unfused
  // chain's rounding points: (x·W_ih + h·W_hh) rounded, then + bias.
  Matrix gates = pool_.acquire(n, g4);
  {
    Matrix mm1 = pool_.acquire(n, g4);
    matmul_accumulate(nodes_[ix].value, nodes_[iwih].value, mm1);
    Matrix mm2 = pool_.acquire(n, g4);
    matmul_accumulate(nodes_[ihp].value, nodes_[iwhh].value, mm2);
    const double* p1 = mm1.data();
    const double* p2 = mm2.data();
    const double* bp = nodes_[ib].value.data();
    double* gp = gates.data();
    const std::size_t h3 = 3 * hd;
    par_rows(n, g4, [=](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        const std::size_t b4 = r * g4;
        for (std::size_t c = 0; c < g4; ++c) {
          const double s = p1[b4 + c] + p2[b4 + c];
          const double pre = s + bp[c];
          gp[b4 + c] = c < h3 ? stable_sigmoid(pre) : std::tanh(pre);
        }
      }
    });
    pool_.release(std::move(mm1));
    pool_.release(std::move(mm2));
  }
  Var gate_var = push(std::move(gates), rg);
  const std::size_t ig = gate_var.index;

  // c' = f ⊙ c + i ⊙ g, both products rounded separately like the unfused
  // mul/mul/add chain.
  Matrix cnew = pool_.acquire(n, hd);
  {
    const double* gp = nodes_[ig].value.data();
    const double* cp = nodes_[icp].value.data();
    double* op = cnew.data();
    const simd::Kernels& kern = simd::active_kernels();
    par_rows(n, hd, [=, &kern](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        const std::size_t b4 = r * g4;
        const std::size_t bh = r * hd;
        // f ⊙ c_prev + i ⊙ g with both products rounded separately, as the
        // unfused mul/mul/add chain does.
        kern.mul2_add(op + bh, gp + b4 + hd, cp + bh, gp + b4,
                      gp + b4 + 3 * hd, hd);
      }
    });
  }
  Var c_var = push(std::move(cnew), rg);
  const std::size_t ic = c_var.index;

  // h' = o ⊙ tanh(c'). tanh(c') is recomputed in backward instead of being
  // stored — same bits, one fewer n×H buffer per step.
  Matrix hnew = pool_.acquire(n, hd);
  {
    const double* gp = nodes_[ig].value.data();
    const double* cp = nodes_[ic].value.data();
    double* op = hnew.data();
    par_rows(n, hd, [=](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        const std::size_t b4 = r * g4;
        const std::size_t bh = r * hd;
        for (std::size_t c = 0; c < hd; ++c) {
          op[bh + c] = gp[b4 + 2 * hd + c] * std::tanh(cp[bh + c]);
        }
      }
    });
  }
  Var h_var = push(std::move(hnew), rg);
  const std::size_t ih = h_var.index;

  // H backward: dG_o += gh ⊙ tanh(c');  dC += (gh ⊙ o) ⊙ (1 − tanh²(c')).
  nodes_[ih].backward = [ig, ic, ih, hd, g4](Tape& t) {
    const Matrix& gh = t.grad_ref(ih);
    const double* ghp = gh.data();
    const double* gvp = t.node(ig).value.data();
    const double* cvp = t.node(ic).value.data();
    double* dgp = t.grad_ref(ig).data();
    double* dcp = t.grad_ref(ic).data();
    par_rows(gh.rows(), hd, [=](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        const std::size_t b4 = r * g4;
        const std::size_t bh = r * hd;
        for (std::size_t c = 0; c < hd; ++c) {
          const double tc = std::tanh(cvp[bh + c]);
          dgp[b4 + 2 * hd + c] += ghp[bh + c] * tc;
          dcp[bh + c] +=
              ghp[bh + c] * gvp[b4 + 2 * hd + c] * (1.0 - tc * tc);
        }
      }
    });
  };

  // C backward: the add's grad flows into both product rules.
  nodes_[ic].backward = [ig, icp, ic, hd, g4](Tape& t) {
    const Matrix& gc = t.grad_ref(ic);
    const double* gcp = gc.data();
    const double* gvp = t.node(ig).value.data();
    const double* cpp = t.node(icp).value.data();
    double* dgp = t.grad_ref(ig).data();
    const bool need_cp = t.node(icp).requires_grad;
    double* dcp = need_cp ? t.grad_ref(icp).data() : nullptr;
    const simd::Kernels& kern = simd::active_kernels();
    par_rows(gc.rows(), hd, [=, &kern](std::size_t r0, std::size_t r1) {
      // Each target below is a distinct accumulator, so splitting the
      // per-element loop into per-segment fmadd sweeps keeps every
      // accumulator's contribution order unchanged.
      for (std::size_t r = r0; r < r1; ++r) {
        const std::size_t b4 = r * g4;
        const std::size_t bh = r * hd;
        kern.fmadd(dgp + b4, gcp + bh, gvp + b4 + 3 * hd, hd);  // di += g⊙g_gate
        kern.fmadd(dgp + b4 + 3 * hd, gcp + bh, gvp + b4, hd);  // dg += g⊙i
        kern.fmadd(dgp + b4 + hd, gcp + bh, cpp + bh, hd);      // df += g⊙c_prev
        if (dcp != nullptr) {
          kern.fmadd(dcp + bh, gcp + bh, gvp + b4 + hd, hd);    // dc_prev += g⊙f
        }
      }
    });
  };

  // G backward: activation derivatives → bias → the two matmul backwards
  // (h_prev/W_hh first, then x/W_ih — reverse creation order of the chain).
  nodes_[ig].backward = [ix, ihp, iwih, iwhh, ib, ig, hd, g4](Tape& t) {
    const Matrix& gG = t.grad_ref(ig);
    const std::size_t n2 = gG.rows();
    Matrix dpre = t.pool_.acquire(n2, g4);
    {
      const double* gp = gG.data();
      const double* yp = t.node(ig).value.data();
      double* dp = dpre.data();
      const std::size_t h3 = 3 * hd;
      par_rows(n2, g4, [=](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const std::size_t b4 = r * g4;
          for (std::size_t c = 0; c < g4; ++c) {
            const double g = gp[b4 + c];
            const double y = yp[b4 + c];
            dp[b4 + c] = c < h3 ? g * y * (1.0 - y) : g * (1.0 - y * y);
          }
        }
      });
    }
    if (t.node(ib).requires_grad) {
      // The unfused chain broadcasts the (un-sliced) bias leaf, so its grad
      // accumulates directly, rows ascending, across all 4H columns.
      Matrix& gb = t.grad_ref(ib);
      const double* dp = dpre.data();
      double* gbp = gb.data();
      for (std::size_t r = 0; r < n2; ++r) {
        const std::size_t b4 = r * g4;
        for (std::size_t c = 0; c < g4; ++c) gbp[c] += dp[b4 + c];
      }
    }
    if (t.node(ihp).requires_grad) {
      Matrix tmp = t.pool_.acquire(n2, hd);
      matmul_bt_into(dpre, t.node(iwhh).value, tmp);
      t.grad_ref(ihp) += tmp;
      t.pool_.release(std::move(tmp));
    }
    if (t.node(iwhh).requires_grad) {
      const Matrix& wv = t.node(iwhh).value;
      Matrix tmp = t.pool_.acquire(wv.rows(), wv.cols());
      matmul_at_accumulate(t.node(ihp).value, dpre, tmp);
      t.grad_ref(iwhh) += tmp;
      t.pool_.release(std::move(tmp));
    }
    if (t.node(ix).requires_grad) {
      const Matrix& xv = t.node(ix).value;
      Matrix tmp = t.pool_.acquire(xv.rows(), xv.cols());
      matmul_bt_into(dpre, t.node(iwih).value, tmp);
      t.grad_ref(ix) += tmp;
      t.pool_.release(std::move(tmp));
    }
    if (t.node(iwih).requires_grad) {
      const Matrix& wv = t.node(iwih).value;
      Matrix tmp = t.pool_.acquire(wv.rows(), wv.cols());
      matmul_at_accumulate(t.node(ix).value, dpre, tmp);
      t.grad_ref(iwih) += tmp;
      t.pool_.release(std::move(tmp));
    }
    t.pool_.release(std::move(dpre));
  };

  return LstmState{h_var, c_var};
}

Var Tape::gru_cell(Var x, Var h_prev, Var w_ih, Var w_hh, Var bias) {
  check_same_tape(x);
  check_same_tape(h_prev);
  check_same_tape(w_ih);
  check_same_tape(w_hh);
  check_same_tape(bias);
  const std::size_t ix = x.index, ihp = h_prev.index;
  const std::size_t iwih = w_ih.index, iwhh = w_hh.index, ib = bias.index;
  const std::size_t n = nodes_[ix].value.rows();
  const std::size_t hd = nodes_[iwhh].value.rows();
  const std::size_t g3 = 3 * hd;
  // Node layout: [r | z | n | h·U_n] — the candidate's recurrent term is
  // stashed in the fourth block so backward needs no captured Matrix.
  const std::size_t g4 = 4 * hd;
  {
    const Matrix& xv = nodes_[ix].value;
    const Matrix& hv = nodes_[ihp].value;
    const Matrix& wi = nodes_[iwih].value;
    const Matrix& wh = nodes_[iwhh].value;
    const Matrix& bv = nodes_[ib].value;
    if (wi.rows() != xv.cols() || wi.cols() != g3 || wh.cols() != g3 ||
        hv.rows() != n || hv.cols() != hd || bv.rows() != 1 ||
        bv.cols() != g3) {
      throw ShapeError("gru_cell: shape mismatch");
    }
  }
  const bool rg = nodes_[ix].requires_grad || nodes_[ihp].requires_grad ||
                  nodes_[iwih].requires_grad || nodes_[iwhh].requires_grad ||
                  nodes_[ib].requires_grad;

  Matrix gnode = pool_.acquire(n, g4);
  {
    Matrix xi = pool_.acquire(n, g3);
    matmul_accumulate(nodes_[ix].value, nodes_[iwih].value, xi);
    Matrix hh = pool_.acquire(n, g3);
    matmul_accumulate(nodes_[ihp].value, nodes_[iwhh].value, hh);
    const double* xip = xi.data();
    const double* hhp = hh.data();
    const double* bp = nodes_[ib].value.data();
    double* gp = gnode.data();
    par_rows(n, g4, [=](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        const std::size_t b3 = r * g3;
        const std::size_t b4 = r * g4;
        for (std::size_t c = 0; c < hd; ++c) {
          const double sr = xip[b3 + c] + hhp[b3 + c];
          gp[b4 + c] = stable_sigmoid(sr + bp[c]);
          const double sz = xip[b3 + hd + c] + hhp[b3 + hd + c];
          gp[b4 + hd + c] = stable_sigmoid(sz + bp[hd + c]);
        }
        for (std::size_t c = 0; c < hd; ++c) {
          // n = tanh((x·W_n + r ⊙ (h·U_n)) + b_n) with the activated r.
          const double rn = gp[b4 + c] * hhp[b3 + 2 * hd + c];
          const double sn = xip[b3 + 2 * hd + c] + rn;
          gp[b4 + 2 * hd + c] = std::tanh(sn + bp[2 * hd + c]);
          gp[b4 + 3 * hd + c] = hhp[b3 + 2 * hd + c];
        }
      }
    });
    pool_.release(std::move(xi));
    pool_.release(std::move(hh));
  }
  Var gate_var = push(std::move(gnode), rg);
  const std::size_t ig = gate_var.index;

  // h' = (n − z ⊙ n) + z ⊙ h_prev, intermediates rounded like the unfused
  // zn/sub/zh/add chain.
  Matrix hnew = pool_.acquire(n, hd);
  {
    const double* gp = nodes_[ig].value.data();
    const double* hpp = nodes_[ihp].value.data();
    double* op = hnew.data();
    par_rows(n, hd, [=](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        const std::size_t b4 = r * g4;
        const std::size_t bh = r * hd;
        for (std::size_t c = 0; c < hd; ++c) {
          const double zv = gp[b4 + hd + c];
          const double nv = gp[b4 + 2 * hd + c];
          const double zn = zv * nv;
          const double a1 = nv - zn;
          const double zh = zv * hpp[bh + c];
          op[bh + c] = a1 + zh;
        }
      }
    });
  }
  Var h_var = push(std::move(hnew), rg);
  const std::size_t ih = h_var.index;

  // H backward, contribution order per accumulator matching the unfused
  // sweep (h-add → zh-mul → sub → zn-mul):
  //   dz: + gh ⊙ h_prev, then + (−gh) ⊙ n
  //   dn: + gh,          then + (−gh) ⊙ z
  nodes_[ih].backward = [ig, ihp, ih, hd, g4](Tape& t) {
    const Matrix& gh = t.grad_ref(ih);
    const double* ghp = gh.data();
    const double* gvp = t.node(ig).value.data();
    const double* hpp = t.node(ihp).value.data();
    double* dgp = t.grad_ref(ig).data();
    const bool need_hp = t.node(ihp).requires_grad;
    double* dhp = need_hp ? t.grad_ref(ihp).data() : nullptr;
    par_rows(gh.rows(), hd, [=](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        const std::size_t b4 = r * g4;
        const std::size_t bh = r * hd;
        for (std::size_t c = 0; c < hd; ++c) {
          const double g = ghp[bh + c];
          const double zv = gvp[b4 + hd + c];
          const double nv = gvp[b4 + 2 * hd + c];
          dgp[b4 + hd + c] += g * hpp[bh + c];
          if (dhp != nullptr) dhp[bh + c] += g * zv;
          const double gzn = 0.0 - g;
          dgp[b4 + 2 * hd + c] += g;
          dgp[b4 + hd + c] += gzn * nv;
          dgp[b4 + 2 * hd + c] += gzn * zv;
        }
      }
    });
  };

  // G backward: tanh/σ derivatives and the r ⊙ (h·U_n) product rule, then
  // bias (per-block column sums, matching the sliced-bias chain), then the
  // h·W_hh and x·W_ih matmul backwards.
  nodes_[ig].backward = [ix, ihp, iwih, iwhh, ib, ig, hd, g3, g4](Tape& t) {
    const Matrix& gG = t.grad_ref(ig);
    const std::size_t n2 = gG.rows();
    Matrix dxi = t.pool_.acquire(n2, g3);
    Matrix dhh = t.pool_.acquire(n2, g3);
    {
      const double* gp = gG.data();
      const double* yp = t.node(ig).value.data();
      double* xp = dxi.data();
      double* hp = dhh.data();
      par_rows(n2, hd, [=](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          const std::size_t b4 = r * g4;
          const std::size_t b3 = r * g3;
          for (std::size_t c = 0; c < hd; ++c) {
            const double nv = yp[b4 + 2 * hd + c];
            const double dpn = gp[b4 + 2 * hd + c] * (1.0 - nv * nv);
            xp[b3 + 2 * hd + c] = dpn;
            const double hhn = yp[b4 + 3 * hd + c];
            const double rv = yp[b4 + c];
            const double dr = dpn * hhn;      // rn backward: dr = dpre_n ⊙ hU_n
            hp[b3 + 2 * hd + c] = dpn * rv;   // dhh_n = dpre_n ⊙ r
            const double zv = yp[b4 + hd + c];
            const double dpz = gp[b4 + hd + c] * zv * (1.0 - zv);
            xp[b3 + hd + c] = dpz;
            hp[b3 + hd + c] = dpz;
            const double dpr = dr * rv * (1.0 - rv);
            xp[b3 + c] = dpr;
            hp[b3 + c] = dpr;
          }
        }
      });
    }
    if (t.node(ib).requires_grad) {
      // The unfused chain slices the bias leaf, so each block's column sums
      // land in a zeroed row first and are then added to the leaf grad.
      Matrix db = t.pool_.acquire(1, g3);
      double* dbp = db.data();
      const double* xp = dxi.data();
      for (std::size_t r = 0; r < n2; ++r) {
        const std::size_t b3 = r * g3;
        for (std::size_t c = 0; c < g3; ++c) dbp[c] += xp[b3 + c];
      }
      t.grad_ref(ib) += db;
      t.pool_.release(std::move(db));
    }
    if (t.node(ihp).requires_grad) {
      Matrix tmp = t.pool_.acquire(n2, hd);
      matmul_bt_into(dhh, t.node(iwhh).value, tmp);
      t.grad_ref(ihp) += tmp;
      t.pool_.release(std::move(tmp));
    }
    if (t.node(iwhh).requires_grad) {
      const Matrix& wv = t.node(iwhh).value;
      Matrix tmp = t.pool_.acquire(wv.rows(), wv.cols());
      matmul_at_accumulate(t.node(ihp).value, dhh, tmp);
      t.grad_ref(iwhh) += tmp;
      t.pool_.release(std::move(tmp));
    }
    if (t.node(ix).requires_grad) {
      const Matrix& xv = t.node(ix).value;
      Matrix tmp = t.pool_.acquire(xv.rows(), xv.cols());
      matmul_bt_into(dxi, t.node(iwih).value, tmp);
      t.grad_ref(ix) += tmp;
      t.pool_.release(std::move(tmp));
    }
    if (t.node(iwih).requires_grad) {
      const Matrix& wv = t.node(iwih).value;
      Matrix tmp = t.pool_.acquire(wv.rows(), wv.cols());
      matmul_at_accumulate(t.node(ix).value, dxi, tmp);
      t.grad_ref(iwih) += tmp;
      t.pool_.release(std::move(tmp));
    }
    t.pool_.release(std::move(dxi));
    t.pool_.release(std::move(dhh));
  };

  return h_var;
}

void Tape::run_reverse_sweep(Var output) {
  check_same_tape(output);
  const Matrix& out_val = nodes_[output.index].value;
  if (out_val.size() != 1) {
    throw ShapeError("backward: output must be a 1x1 scalar");
  }
  grad_ref(output.index)(0, 0) = 1.0;
  for (std::size_t i = output.index + 1; i-- > 0;) {
    Node& n = nodes_[i];
    if (!n.requires_grad && !n.bound_param) continue;
    if (n.grad.empty()) continue;  // unreached: nothing flowed here
    if (n.backward) n.backward(*this);
  }
}

void Tape::backward(Var output) { run_reverse_sweep(output); }

void Tape::backward_into(Var output, GradSink& sink) {
  grad_sink_ = &sink;
  try {
    run_reverse_sweep(output);
  } catch (...) {
    grad_sink_ = nullptr;
    throw;
  }
  grad_sink_ = nullptr;
}

const Matrix& Tape::value(Var v) const {
  const_cast<Tape*>(this)->check_same_tape(v);
  return nodes_[v.index].value;
}

const Matrix& Tape::grad(Var v) const {
  const_cast<Tape*>(this)->check_same_tape(v);
  const Node& n = nodes_[v.index];
  if (n.grad.empty()) {
    // Lazily produce a zero matrix of the right shape for callers.
    auto* self = const_cast<Tape*>(this);
    return self->grad_ref(v.index);
  }
  return n.grad;
}

double gradient_check(Parameter& p,
                      const std::function<double()>& loss_value_fn,
                      const Matrix& analytic_grad, double eps) {
  double max_diff = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double orig = p.value().data()[i];
    p.value().data()[i] = orig + eps;
    const double lp = loss_value_fn();
    p.value().data()[i] = orig - eps;
    const double lm = loss_value_fn();
    p.value().data()[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    max_diff = std::max(max_diff,
                        std::abs(numeric - analytic_grad.data()[i]));
  }
  return max_diff;
}

}  // namespace rihgcn::ad
