// Reverse-mode automatic differentiation over rihgcn::Matrix.
//
// This is the substitute for the paper's PyTorch training stack (see
// DESIGN.md §1). The design is a classic Wengert tape:
//
//  * A Tape owns a growing vector of Nodes; each op appends one node whose
//    parents all have smaller indices, so creation order IS a topological
//    order and backward() is a single reverse sweep.
//  * Var is a cheap value-type handle (tape pointer + index). Users never
//    touch Nodes directly.
//  * Model parameters live OUTSIDE the tape in Parameter objects so they
//    survive across forward passes; Tape::leaf() snapshots a parameter into
//    the tape and routes gradients back into Parameter::grad on backward().
//
// The one property the paper's training strategy depends on — imputed values
// X̂ₜ being *trainable variables* that receive delayed gradients from later
// timesteps (§III-E) — falls out naturally: the recurrent imputation is
// expressed as tape ops, so gradients flow through every complement step.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.hpp"

namespace rihgcn {
class CsrMatrix;
}

namespace rihgcn::ad {

/// A trainable tensor: value + accumulated gradient, living outside any tape.
class Parameter {
 public:
  Parameter() = default;
  explicit Parameter(Matrix value, std::string name = "")
      : value_(std::move(value)),
        grad_(value_.rows(), value_.cols()),
        name_(std::move(name)) {}

  [[nodiscard]] Matrix& value() noexcept { return value_; }
  [[nodiscard]] const Matrix& value() const noexcept { return value_; }
  [[nodiscard]] Matrix& grad() noexcept { return grad_; }
  [[nodiscard]] const Matrix& grad() const noexcept { return grad_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return value_.size(); }

  void zero_grad() { grad_.fill(0.0); }

 private:
  Matrix value_;
  Matrix grad_;
  std::string name_;
};

class Tape;

/// Lightweight handle to a tape node. Copyable; valid while the tape lives.
struct Var {
  Tape* tape = nullptr;
  std::size_t index = 0;

  [[nodiscard]] bool valid() const noexcept { return tape != nullptr; }
  [[nodiscard]] const Matrix& value() const;
  [[nodiscard]] std::size_t rows() const { return value().rows(); }
  [[nodiscard]] std::size_t cols() const { return value().cols(); }
};

/// Reverse-mode AD tape. One forward pass = one tape (cheap to construct).
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // ---- Leaf creation ------------------------------------------------------
  /// Non-differentiable constant.
  Var constant(Matrix value);
  /// Snapshot of an external parameter; backward() accumulates into p.grad().
  Var leaf(Parameter& p);

  // ---- Elementwise / linear ops -------------------------------------------
  Var add(Var a, Var b);
  Var sub(Var a, Var b);
  /// Elementwise (Hadamard) product of two vars.
  Var mul(Var a, Var b);
  /// a * s for scalar s.
  Var scale(Var a, double s);
  /// a + s elementwise.
  Var add_scalar(Var a, double s);
  /// Elementwise product with a constant matrix (e.g. missingness mask).
  Var hadamard_const(Var a, const Matrix& m);
  /// Matrix product.
  Var matmul(Var a, Var b);
  /// Sparse-dense product a · b where `a` is a constant CSR matrix (a graph
  /// Laplacian — never trained, so only `b` receives a gradient, routed
  /// through spmm_t). `a` must outlive the tape: the backward closure keeps
  /// a pointer to it, the same lifetime rule as Parameter in leaf(). With
  /// `a` built at tol = 0 this is bitwise identical to
  /// matmul(constant(a.to_dense()), b) — see tensor/csr.hpp.
  Var spmm(const CsrMatrix& a, Var b);
  /// Multiply every column of a (rows x C) by col (rows x 1) elementwise —
  /// the attention-weighting primitive.
  Var mul_col_broadcast(Var a, Var col);
  /// Add a 1 x C bias row to every row of a (rows x C).
  Var add_row_broadcast(Var a, Var bias_row);

  // ---- Nonlinearities -------------------------------------------------------
  Var sigmoid(Var a);
  Var tanh(Var a);
  Var relu(Var a);
  /// Row-wise softmax (used by attention baselines).
  Var softmax_rows(Var a);

  // ---- Shape ops -------------------------------------------------------------
  /// Horizontal concatenation [a | b].
  Var concat_cols(Var a, Var b);
  /// Horizontal concatenation of many vars.
  Var concat_cols_many(const std::vector<Var>& vars);
  /// Columns [c0, c1).
  Var slice_cols(Var a, std::size_t c0, std::size_t c1);
  /// Transpose.
  Var transpose(Var a);

  // ---- Reductions / losses -----------------------------------------------
  /// Mean over all elements -> 1x1.
  Var mean_all(Var a);
  /// Sum over all elements -> 1x1.
  Var sum_all(Var a);
  /// Weighted L1: sum(w ⊙ |a - target|) / max(1, sum(w)) -> 1x1.
  /// `target` and weight matrix `w` are constants (observed data and masks).
  Var masked_mae(Var a, const Matrix& target, const Matrix& w);
  /// Weighted L2: sum(w ⊙ (a - target)^2) / max(1, sum(w)) -> 1x1.
  Var masked_mse(Var a, const Matrix& target, const Matrix& w);
  /// Mean |a - b| between two vars (consistency term of Eq. 6), optionally
  /// weighted by a constant matrix of the same shape.
  Var weighted_l1_between(Var a, Var b, const Matrix& w);

  /// c0*a + c1*b for scalar (1x1) vars — used to combine L_c + λ·L_m.
  Var affine_combine(Var a, double c0, Var b, double c1);

  // ---- Execution -----------------------------------------------------------
  /// Run the reverse sweep from scalar node `output` (must be 1x1).
  /// Accumulates into every bound Parameter's grad (does NOT zero them first,
  /// so losses from multiple samples in a batch naturally sum).
  void backward(Var output);

  /// As backward(), but parameter gradients accumulate into `sink` instead
  /// of Parameter::grad — the building block for data-parallel training,
  /// where each worker thread owns a private sink that is reduced into the
  /// parameters afterwards (Parameter values are only read concurrently).
  using GradSink = std::unordered_map<Parameter*, Matrix>;
  void backward_into(Var output, GradSink& sink);

  [[nodiscard]] const Matrix& value(Var v) const;
  /// Gradient of the last backward() wrt node v (zeros if unreached).
  [[nodiscard]] const Matrix& grad(Var v) const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // allocated lazily in backward()
    // Backward step: reads this node's grad, accumulates into parents'.
    std::function<void(Tape&)> backward;
    Parameter* bound_param = nullptr;
    bool requires_grad = false;
  };

  Var push(Matrix value, bool requires_grad,
           std::function<void(Tape&)> backward_fn);
  void run_reverse_sweep(Var output);
  Node& node(std::size_t i) { return nodes_[i]; }
  Matrix& grad_ref(std::size_t i);
  void check_same_tape(Var v) const;

  std::vector<Node> nodes_;
  Matrix empty_grad_;           // returned for unreached nodes
  GradSink* grad_sink_ = nullptr;  // non-null only inside backward_into
};

/// Numerically estimate d(loss)/d(p) via central differences and compare to
/// the analytic gradient. `loss_fn` must rebuild the graph from scratch on a
/// fresh tape each call and return the scalar loss VALUE. Returns the max
/// absolute difference between analytic and numeric gradients.
double gradient_check(Parameter& p,
                      const std::function<double()>& loss_value_fn,
                      const Matrix& analytic_grad, double eps = 1e-6);

}  // namespace rihgcn::ad
