// Reverse-mode automatic differentiation over rihgcn::Matrix.
//
// This is the substitute for the paper's PyTorch training stack (see
// DESIGN.md §1). The design is a classic Wengert tape:
//
//  * A Tape owns a growing vector of Nodes; each op appends one node whose
//    parents all have smaller indices, so creation order IS a topological
//    order and backward() is a single reverse sweep.
//  * Var is a cheap value-type handle (tape pointer + index). Users never
//    touch Nodes directly.
//  * Model parameters live OUTSIDE the tape in Parameter objects so they
//    survive across forward passes; Tape::leaf() snapshots a parameter into
//    the tape and routes gradients back into Parameter::grad on backward().
//
// The one property the paper's training strategy depends on — imputed values
// X̂ₜ being *trainable variables* that receive delayed gradients from later
// timesteps (§III-E) — falls out naturally: the recurrent imputation is
// expressed as tape ops, so gradients flow through every complement step.
//
// Allocation model (DESIGN.md §10): a Tape is an arena. Every node's value
// and grad buffer comes from an internal BufferPool, and reset() retires
// them all back to the pool while keeping the node vector's capacity — so a
// training loop that calls reset() between steps reaches a steady state
// where forward+backward performs near-zero heap allocation. Backward
// closures are stored in BackwardFn, a small-buffer callable that keeps
// typical closures inline in the node instead of behind a std::function
// heap cell.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/pool.hpp"

namespace rihgcn {
class CsrMatrix;
}

namespace rihgcn::ad {

/// A trainable tensor: value + accumulated gradient, living outside any tape.
class Parameter {
 public:
  Parameter() = default;
  explicit Parameter(Matrix value, std::string name = "")
      : value_(std::move(value)),
        grad_(value_.rows(), value_.cols()),
        name_(std::move(name)) {}

  [[nodiscard]] Matrix& value() noexcept { return value_; }
  [[nodiscard]] const Matrix& value() const noexcept { return value_; }
  [[nodiscard]] Matrix& grad() noexcept { return grad_; }
  [[nodiscard]] const Matrix& grad() const noexcept { return grad_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return value_.size(); }

  void zero_grad() { grad_.fill(0.0); }

 private:
  Matrix value_;
  Matrix grad_;
  std::string name_;
};

class Tape;

/// Lightweight handle to a tape node. Copyable; valid while the tape lives
/// and until the next reset().
struct Var {
  Tape* tape = nullptr;
  std::size_t index = 0;

  [[nodiscard]] bool valid() const noexcept { return tape != nullptr; }
  [[nodiscard]] const Matrix& value() const;
  [[nodiscard]] std::size_t rows() const { return value().rows(); }
  [[nodiscard]] std::size_t cols() const { return value().cols(); }
};

/// Move-only type-erased callable `void(Tape&)` with a small-buffer store.
/// libstdc++'s std::function spills anything over two pointers to the heap,
/// which made every third tape node carry a hidden allocation; backward
/// closures capture a handful of indices (and occasionally a small vector),
/// so an inline buffer holds essentially all of them.
class BackwardFn {
 public:
  BackwardFn() noexcept = default;
  BackwardFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BackwardFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  BackwardFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  BackwardFn(BackwardFn&& other) noexcept { move_from(other); }
  BackwardFn& operator=(BackwardFn&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(other);
    }
    return *this;
  }
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BackwardFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  BackwardFn& operator=(F&& f) {
    destroy();
    emplace(std::forward<F>(f));
    return *this;
  }
  BackwardFn& operator=(std::nullptr_t) noexcept {
    destroy();
    return *this;
  }
  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;
  ~BackwardFn() { destroy(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }
  void operator()(Tape& t) { vtable_->invoke(buf_, t); }

 private:
  struct VTable {
    void (*invoke)(void* self, Tape& t);
    // Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  static constexpr std::size_t kInlineBytes = 120;

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      static const VTable vt{
          [](void* self, Tape& t) { (*static_cast<Fn*>(self))(t); },
          [](void* dst, void* src) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
          },
          [](void* self) noexcept { static_cast<Fn*>(self)->~Fn(); }};
      vtable_ = &vt;
    } else {
      // Oversized/overaligned closure: fall back to a heap cell holding F.
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      static const VTable vt{
          [](void* self, Tape& t) { (**static_cast<Fn**>(self))(t); },
          [](void* dst, void* src) noexcept {
            ::new (dst) Fn*(*static_cast<Fn**>(src));
          },
          [](void* self) noexcept { delete *static_cast<Fn**>(self); }};
      vtable_ = &vt;
    }
  }

  void move_from(BackwardFn& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) vtable_->relocate(buf_, other.buf_);
    other.vtable_ = nullptr;
  }
  void destroy() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(buf_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

/// Reverse-mode AD tape / allocation arena. Construct once, reset() between
/// forward passes to recycle every node buffer through the pool.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Retire every node's value/grad buffer into the pool and clear the node
  /// vector (capacity kept). All Vars from previous passes are invalidated;
  /// Parameter gradients are untouched. After one warm-up pass, identical
  /// passes allocate nothing — see BufferPool and pool() counters.
  void reset();

  // ---- Leaf creation ------------------------------------------------------
  /// Non-differentiable constant (copied into a pooled buffer).
  Var constant(const Matrix& value);
  /// Snapshot of an external parameter; backward() accumulates into p.grad().
  /// Calls are deduplicated per reset() cycle: the second leaf(p) for the
  /// same Parameter returns the first node, so each weight matrix is
  /// materialized once per step no matter how many timesteps reference it.
  Var leaf(Parameter& p);

  // ---- Elementwise / linear ops -------------------------------------------
  Var add(Var a, Var b);
  Var sub(Var a, Var b);
  /// Elementwise (Hadamard) product of two vars.
  Var mul(Var a, Var b);
  /// a * s for scalar s.
  Var scale(Var a, double s);
  /// a + s elementwise.
  Var add_scalar(Var a, double s);
  /// Elementwise product with a constant matrix (e.g. missingness mask).
  Var hadamard_const(Var a, const Matrix& m);
  /// Matrix product.
  Var matmul(Var a, Var b);
  /// Sparse-dense product a · b where `a` is a constant CSR matrix (a graph
  /// Laplacian — never trained, so only `b` receives a gradient, routed
  /// through spmm_t). `a` must outlive the tape: the backward closure keeps
  /// a pointer to it, the same lifetime rule as Parameter in leaf(). With
  /// `a` built at tol = 0 this is bitwise identical to
  /// matmul(constant(a.to_dense()), b) — see tensor/csr.hpp.
  Var spmm(const CsrMatrix& a, Var b);
  /// Multiply every column of a (rows x C) by col (rows x 1) elementwise —
  /// the attention-weighting primitive.
  Var mul_col_broadcast(Var a, Var col);
  /// Add a 1 x C bias row to every row of a (rows x C).
  Var add_row_broadcast(Var a, Var bias_row);

  // ---- Nonlinearities -------------------------------------------------------
  Var sigmoid(Var a);
  Var tanh(Var a);
  Var relu(Var a);
  /// Row-wise softmax (used by attention baselines).
  Var softmax_rows(Var a);

  // ---- Fused recurrent cells ----------------------------------------------
  //
  // One node for the activated gate block, one per state output, with a
  // hand-written backward — replacing the ~15-node slice/σ/tanh/mul/add
  // chain per timestep. Gradients and values are bitwise identical to the
  // unfused chains in nn::LstmCell/nn::GruCell at any thread count: every
  // arithmetic expression and accumulation order below replicates the
  // unfused ops' exactly (tests/test_tape_arena.cpp holds this at tol = 0).

  struct LstmState {
    Var h;
    Var c;
  };
  /// Fused LSTM cell step. Gate layout along columns is [i | f | o | g]
  /// (σ, σ, σ, tanh); w_ih is in x 4H, w_hh is H x 4H, bias is 1 x 4H.
  ///   c' = f ⊙ c + i ⊙ g,   h' = o ⊙ tanh(c')
  LstmState lstm_cell(Var x, Var h_prev, Var c_prev, Var w_ih, Var w_hh,
                      Var bias);
  /// Fused GRU cell step. Gate layout along columns is [r | z | n]
  /// (σ, σ, tanh); w_ih is in x 3H, w_hh is H x 3H, bias is 1 x 3H.
  ///   n = tanh(x·W_n + r ⊙ (h·U_n) + b_n),   h' = (1 − z) ⊙ n + z ⊙ h
  Var gru_cell(Var x, Var h_prev, Var w_ih, Var w_hh, Var bias);

  // ---- Shape ops -------------------------------------------------------------
  /// Horizontal concatenation [a | b].
  Var concat_cols(Var a, Var b);
  /// Horizontal concatenation of many vars: a single n-ary node (one copy
  /// per input, one backward closure), not a fold of binary concats.
  Var concat_cols_many(const std::vector<Var>& vars);
  /// Columns [c0, c1).
  Var slice_cols(Var a, std::size_t c0, std::size_t c1);
  /// Transpose.
  Var transpose(Var a);

  // ---- Reductions / losses -----------------------------------------------
  /// Mean over all elements -> 1x1.
  Var mean_all(Var a);
  /// Sum over all elements -> 1x1.
  Var sum_all(Var a);
  /// Weighted L1: sum(w ⊙ |a - target|) / max(1, sum(w)) -> 1x1.
  /// `target` and weight matrix `w` are constants (observed data and masks).
  Var masked_mae(Var a, const Matrix& target, const Matrix& w);
  /// Weighted L2: sum(w ⊙ (a - target)^2) / max(1, sum(w)) -> 1x1.
  Var masked_mse(Var a, const Matrix& target, const Matrix& w);
  /// Mean |a - b| between two vars (consistency term of Eq. 6), optionally
  /// weighted by a constant matrix of the same shape.
  Var weighted_l1_between(Var a, Var b, const Matrix& w);

  /// c0*a + c1*b for scalar (1x1) vars — used to combine L_c + λ·L_m.
  Var affine_combine(Var a, double c0, Var b, double c1);

  // ---- Execution -----------------------------------------------------------
  /// Run the reverse sweep from scalar node `output` (must be 1x1).
  /// Accumulates into every bound Parameter's grad (does NOT zero them first,
  /// so losses from multiple samples in a batch naturally sum).
  void backward(Var output);

  /// As backward(), but parameter gradients accumulate into `sink` instead
  /// of Parameter::grad — the building block for data-parallel training,
  /// where each worker thread owns a private sink that is reduced into the
  /// parameters afterwards (Parameter values are only read concurrently).
  using GradSink = std::unordered_map<Parameter*, Matrix>;
  void backward_into(Var output, GradSink& sink);

  [[nodiscard]] const Matrix& value(Var v) const;
  /// Gradient of the last backward() wrt node v (zeros if unreached).
  [[nodiscard]] const Matrix& grad(Var v) const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  /// The tape's buffer pool — read the hit/miss counters to verify that
  /// steady-state steps allocate (miss) nothing.
  [[nodiscard]] const BufferPool& pool() const noexcept { return pool_; }

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // allocated lazily in backward()
    // Backward step: reads this node's grad, accumulates into parents'.
    BackwardFn backward;
    Parameter* bound_param = nullptr;
    bool requires_grad = false;
  };

  Var push(Matrix value, bool requires_grad, BackwardFn backward_fn = nullptr);
  /// Pool-backed deep copy of `src`.
  Matrix pooled_copy(const Matrix& src);
  void run_reverse_sweep(Var output);
  Node& node(std::size_t i) { return nodes_[i]; }
  Matrix& grad_ref(std::size_t i);
  void check_same_tape(Var v) const;

  std::vector<Node> nodes_;
  std::vector<std::pair<Parameter*, std::size_t>> leaf_cache_;
  BufferPool pool_;
  Matrix empty_grad_;           // returned for unreached nodes
  GradSink* grad_sink_ = nullptr;  // non-null only inside backward_into
};

/// Numerically estimate d(loss)/d(p) via central differences and compare to
/// the analytic gradient. `loss_fn` must rebuild the graph from scratch on a
/// fresh tape each call and return the scalar loss VALUE. Returns the max
/// absolute difference between analytic and numeric gradients.
double gradient_check(Parameter& p,
                      const std::function<double()>& loss_value_fn,
                      const Matrix& analytic_grad, double eps = 1e-6);

}  // namespace rihgcn::ad
