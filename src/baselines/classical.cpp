#include "baselines/classical.hpp"

#include <stdexcept>

#include "tensor/linalg.hpp"

namespace rihgcn::baselines {

namespace {

/// Non-trainable models still satisfy the interface; their "loss" is a
/// constant so calling the trainer on them is a harmless no-op.
ad::Var zero_loss(ad::Tape& tape) { return tape.constant(Matrix(1, 1)); }

}  // namespace

// ---- HistoricalAverageModel ------------------------------------------------

HistoricalAverageModel::HistoricalAverageModel(const data::TrafficDataset& ds,
                                               std::size_t train_end,
                                               std::size_t lookback,
                                               std::size_t horizon,
                                               std::size_t target_feature)
    : profile_(std::vector<Matrix>(ds.truth.begin(),
                                   ds.truth.begin() + static_cast<std::ptrdiff_t>(train_end)),
               std::vector<Matrix>(ds.mask.begin(),
                                   ds.mask.begin() + static_cast<std::ptrdiff_t>(train_end)),
               ds.steps_per_day, target_feature),
      steps_per_day_(ds.steps_per_day),
      lookback_(lookback),
      horizon_(horizon) {}

ad::Var HistoricalAverageModel::training_loss(ad::Tape& tape,
                                              const data::Window&) {
  return zero_loss(tape);
}

Matrix HistoricalAverageModel::predict(const data::Window& w) {
  const std::size_t n = profile_.num_nodes();
  Matrix out(n, horizon_);
  for (std::size_t h = 0; h < horizon_; ++h) {
    const std::size_t slot = (w.start + lookback_ + h) % steps_per_day_;
    for (std::size_t i = 0; i < n; ++i) {
      out(i, h) = profile_.node_profiles()(i, slot);
    }
  }
  return out;
}

// ---- VarModel --------------------------------------------------------------

VarModel::VarModel(const data::TrafficDataset& ds, std::size_t train_end,
                   std::size_t lookback, std::size_t horizon, std::size_t lags,
                   double ridge, std::size_t target_feature)
    : lags_(lags),
      lookback_(lookback),
      horizon_(horizon),
      target_feature_(target_feature) {
  if (lags == 0 || lookback < lags) {
    throw std::invalid_argument("VarModel: need 1 <= lags <= lookback");
  }
  if (train_end <= lags || train_end > ds.num_timesteps()) {
    throw std::invalid_argument("VarModel: bad train_end");
  }
  const std::size_t n = ds.num_nodes();
  // Zero-filled series (z-scored data => zero == feature mean).
  std::vector<Matrix> filled(train_end, Matrix(n, 1));
  for (std::size_t t = 0; t < train_end; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      if (ds.mask[t](i, target_feature) > 0.5) {
        filled[t](i, 0) = ds.truth[t](i, target_feature);
      }
    }
  }
  const std::size_t samples = train_end - lags;
  Matrix design(samples, n * lags + 1);
  Matrix targets(samples, n);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t t = s + lags;
    for (std::size_t l = 0; l < lags; ++l) {
      for (std::size_t i = 0; i < n; ++i) {
        design(s, l * n + i) = filled[t - 1 - l](i, 0);
      }
    }
    design(s, n * lags) = 1.0;  // intercept
    for (std::size_t i = 0; i < n; ++i) targets(s, i) = filled[t](i, 0);
  }
  coef_ = ridge_least_squares(design, targets, ridge);
}

ad::Var VarModel::training_loss(ad::Tape& tape, const data::Window&) {
  return zero_loss(tape);
}

Matrix VarModel::predict(const data::Window& w) {
  const std::size_t n = coef_.cols();
  // Rolling state: most recent `lags` vectors, zero-filled at missing.
  std::vector<Matrix> recent;
  recent.reserve(lags_);
  for (std::size_t l = 0; l < lags_; ++l) {
    const std::size_t t = w.x_obs.size() - lags_ + l;
    Matrix v(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      v(i, 0) = w.x_obs[t](i, target_feature_);  // already truth ⊙ mask
    }
    recent.push_back(std::move(v));
  }
  Matrix out(n, horizon_);
  Matrix row(1, n * lags_ + 1);
  for (std::size_t h = 0; h < horizon_; ++h) {
    for (std::size_t l = 0; l < lags_; ++l) {
      const Matrix& v = recent[recent.size() - 1 - l];
      for (std::size_t i = 0; i < n; ++i) row(0, l * n + i) = v(i, 0);
    }
    row(0, n * lags_) = 1.0;
    const Matrix pred = matmul(row, coef_);  // 1 x N
    Matrix next(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      out(i, h) = pred(0, i);
      next(i, 0) = pred(0, i);
    }
    recent.erase(recent.begin());
    recent.push_back(std::move(next));
  }
  return out;
}

}  // namespace rihgcn::baselines
