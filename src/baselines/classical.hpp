// Classical forecasting baselines from the paper's Table I/II:
// Historical Average (HA) and Vector Autoregression (VAR, 3 lags).
// Both wrap the core::ForecastModel interface so the bench harness treats
// every method uniformly; neither has trainable autodiff parameters.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "data/dataset.hpp"
#include "timeseries/profile.hpp"

namespace rihgcn::baselines {

/// HA: the prediction for a future timestep is the node's historical
/// average at that time-of-day slot, computed from the training prefix.
class HistoricalAverageModel final : public core::ForecastModel {
 public:
  HistoricalAverageModel(const data::TrafficDataset& ds, std::size_t train_end,
                         std::size_t lookback, std::size_t horizon,
                         std::size_t target_feature = 0);

  [[nodiscard]] std::string name() const override { return "HA"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override {
    return {};
  }
  [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                      const data::Window& w) override;
  [[nodiscard]] Matrix predict(const data::Window& w) override;

 private:
  ts::HistoricalProfile profile_;
  std::size_t steps_per_day_;
  std::size_t lookback_;
  std::size_t horizon_;
};

/// VAR(p): each node's next value is a linear function of the last p values
/// of every node (feature 0), fitted with ridge least squares on the
/// zero-filled (== mean-filled after z-scoring) training prefix. Forecasts
/// roll forward recursively over the horizon.
class VarModel final : public core::ForecastModel {
 public:
  VarModel(const data::TrafficDataset& ds, std::size_t train_end,
           std::size_t lookback, std::size_t horizon, std::size_t lags = 3,
           double ridge = 1e-3, std::size_t target_feature = 0);

  [[nodiscard]] std::string name() const override { return "VAR"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override {
    return {};
  }
  [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                      const data::Window& w) override;
  [[nodiscard]] Matrix predict(const data::Window& w) override;

  [[nodiscard]] std::size_t lags() const noexcept { return lags_; }

 private:
  Matrix coef_;  ///< (N*lags + 1) x N
  std::size_t lags_;
  std::size_t lookback_;
  std::size_t horizon_;
  std::size_t target_feature_;
};

}  // namespace rihgcn::baselines
