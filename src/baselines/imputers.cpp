#include "baselines/imputers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/linalg.hpp"

namespace rihgcn::baselines {

namespace {

void check_series(const std::vector<Matrix>& values,
                  const std::vector<Matrix>& mask) {
  if (values.empty() || values.size() != mask.size()) {
    throw std::invalid_argument("Imputer: empty or mismatched series");
  }
  for (std::size_t t = 0; t < values.size(); ++t) {
    if (!values[t].same_shape(mask[t]) ||
        !values[t].same_shape(values[0])) {
      throw ShapeError("Imputer: inconsistent shapes");
    }
  }
}

/// Copy observed entries of `values` over `filled` (keeps fills elsewhere).
std::vector<Matrix> overlay_observed(std::vector<Matrix> filled,
                                     const std::vector<Matrix>& values,
                                     const std::vector<Matrix>& mask) {
  for (std::size_t t = 0; t < filled.size(); ++t) {
    for (std::size_t i = 0; i < filled[t].size(); ++i) {
      if (mask[t].data()[i] > 0.5) {
        filled[t].data()[i] = values[t].data()[i];
      }
    }
  }
  return filled;
}

}  // namespace

// ---- MeanImputer ------------------------------------------------------------

std::vector<Matrix> MeanImputer::impute(const std::vector<Matrix>& values,
                                        const std::vector<Matrix>& mask) const {
  check_series(values, mask);
  const std::size_t n = values[0].rows();
  const std::size_t d = values[0].cols();
  Matrix sum(n, d), count(n, d);
  for (std::size_t t = 0; t < values.size(); ++t) {
    for (std::size_t i = 0; i < sum.size(); ++i) {
      if (mask[t].data()[i] > 0.5) {
        sum.data()[i] += values[t].data()[i];
        count.data()[i] += 1.0;
      }
    }
  }
  Matrix mean(n, d);
  for (std::size_t i = 0; i < mean.size(); ++i) {
    mean.data()[i] = count.data()[i] > 0.0 ? sum.data()[i] / count.data()[i]
                                           : 0.0;
  }
  std::vector<Matrix> out;
  out.reserve(values.size());
  for (std::size_t t = 0; t < values.size(); ++t) out.push_back(mean);
  return overlay_observed(std::move(out), values, mask);
}

// ---- LastObservedImputer ------------------------------------------------------

std::vector<Matrix> LastObservedImputer::impute(
    const std::vector<Matrix>& values, const std::vector<Matrix>& mask) const {
  check_series(values, mask);
  const std::size_t t_total = values.size();
  std::vector<Matrix> out(values);
  const std::size_t cells = values[0].size();
  for (std::size_t i = 0; i < cells; ++i) {
    // Forward fill.
    bool have = false;
    double last = 0.0;
    for (std::size_t t = 0; t < t_total; ++t) {
      if (mask[t].data()[i] > 0.5) {
        last = values[t].data()[i];
        have = true;
      } else if (have) {
        out[t].data()[i] = last;
      }
    }
    // Backward fill the leading gap.
    have = false;
    last = 0.0;
    for (std::size_t t = t_total; t-- > 0;) {
      if (mask[t].data()[i] > 0.5) {
        last = values[t].data()[i];
        have = true;
      } else if (have) {
        // Only entries before the first observation still lack a fill.
        bool seen_before = false;
        for (std::size_t s = 0; s < t; ++s) {
          if (mask[s].data()[i] > 0.5) {
            seen_before = true;
            break;
          }
        }
        if (!seen_before) out[t].data()[i] = last;
      } else {
        out[t].data()[i] = 0.0;  // stream never observed
      }
    }
  }
  return out;
}

// ---- KnnImputer ----------------------------------------------------------------

std::vector<Matrix> KnnImputer::impute(const std::vector<Matrix>& values,
                                       const std::vector<Matrix>& mask) const {
  check_series(values, mask);
  const std::size_t t_total = values.size();
  const std::size_t n = values[0].rows();
  const std::size_t d = values[0].cols();
  // Fallback fills for entries no neighbour can explain.
  const LastObservedImputer fallback;
  std::vector<Matrix> out = fallback.impute(values, mask);

  constexpr std::size_t kMinOverlap = 5;
  for (std::size_t f = 0; f < d; ++f) {
    // Node-node similarity from co-observed entries of this feature.
    Matrix sim(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double sq = 0.0;
        std::size_t overlap = 0;
        for (std::size_t t = 0; t < t_total; ++t) {
          if (mask[t](i, f) > 0.5 && mask[t](j, f) > 0.5) {
            const double diff = values[t](i, f) - values[t](j, f);
            sq += diff * diff;
            ++overlap;
          }
        }
        if (overlap >= kMinOverlap) {
          const double rms = std::sqrt(sq / static_cast<double>(overlap));
          sim(i, j) = sim(j, i) = 1.0 / (rms + 1e-6);
        }
      }
    }
    // Weighted mean of the k most similar observed neighbours.
    std::vector<std::pair<double, std::size_t>> candidates;
    for (std::size_t t = 0; t < t_total; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        if (mask[t](i, f) > 0.5) continue;
        candidates.clear();
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i || mask[t](j, f) < 0.5 || sim(i, j) <= 0.0) continue;
          candidates.emplace_back(sim(i, j), j);
        }
        if (candidates.empty()) continue;  // keep the fallback fill
        const std::size_t k = std::min(k_, candidates.size());
        std::partial_sort(candidates.begin(), candidates.begin() + static_cast<std::ptrdiff_t>(k),
                          candidates.end(), std::greater<>());
        double wsum = 0.0, vsum = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
          wsum += candidates[c].first;
          vsum += candidates[c].first * values[t](candidates[c].second, f);
        }
        out[t](i, f) = vsum / wsum;
      }
    }
  }
  return overlay_observed(std::move(out), values, mask);
}

// ---- MatrixFactorizationImputer ----------------------------------------------

std::vector<Matrix> MatrixFactorizationImputer::impute(
    const std::vector<Matrix>& values, const std::vector<Matrix>& mask) const {
  check_series(values, mask);
  const std::size_t t_total = values.size();
  const std::size_t n = values[0].rows();
  const std::size_t d = values[0].cols();
  std::vector<Matrix> out(values);
  Rng rng(seed_);
  for (std::size_t f = 0; f < d; ++f) {
    Matrix u = rng.normal_matrix(n, rank_, 0.1);
    Matrix v = rng.normal_matrix(t_total, rank_, 0.1);
    for (std::size_t iter = 0; iter < iters_; ++iter) {
      // Update U rows.
      for (std::size_t i = 0; i < n; ++i) {
        Matrix ata(rank_, rank_);
        Matrix atb(rank_, 1);
        for (std::size_t t = 0; t < t_total; ++t) {
          if (mask[t](i, f) < 0.5) continue;
          for (std::size_t a = 0; a < rank_; ++a) {
            for (std::size_t b = 0; b < rank_; ++b) {
              ata(a, b) += v(t, a) * v(t, b);
            }
            atb(a, 0) += v(t, a) * values[t](i, f);
          }
        }
        for (std::size_t a = 0; a < rank_; ++a) ata(a, a) += ridge_;
        const Matrix sol = solve_linear(std::move(ata), std::move(atb));
        for (std::size_t a = 0; a < rank_; ++a) u(i, a) = sol(a, 0);
      }
      // Update V rows.
      for (std::size_t t = 0; t < t_total; ++t) {
        Matrix ata(rank_, rank_);
        Matrix atb(rank_, 1);
        for (std::size_t i = 0; i < n; ++i) {
          if (mask[t](i, f) < 0.5) continue;
          for (std::size_t a = 0; a < rank_; ++a) {
            for (std::size_t b = 0; b < rank_; ++b) {
              ata(a, b) += u(i, a) * u(i, b);
            }
            atb(a, 0) += u(i, a) * values[t](i, f);
          }
        }
        for (std::size_t a = 0; a < rank_; ++a) ata(a, a) += ridge_;
        const Matrix sol = solve_linear(std::move(ata), std::move(atb));
        for (std::size_t a = 0; a < rank_; ++a) v(t, a) = sol(a, 0);
      }
    }
    // Fill missing entries with the reconstruction.
    for (std::size_t t = 0; t < t_total; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        if (mask[t](i, f) > 0.5) continue;
        double s = 0.0;
        for (std::size_t a = 0; a < rank_; ++a) s += u(i, a) * v(t, a);
        out[t](i, f) = s;
      }
    }
  }
  return overlay_observed(std::move(out), values, mask);
}

// ---- TensorDecompositionImputer --------------------------------------------

std::vector<Matrix> TensorDecompositionImputer::impute(
    const std::vector<Matrix>& values, const std::vector<Matrix>& mask) const {
  check_series(values, mask);
  const std::size_t t_total = values.size();
  const std::size_t n = values[0].rows();
  const std::size_t d = values[0].cols();
  const std::size_t spd = std::min(steps_per_day_, t_total);
  const std::size_t days = (t_total + spd - 1) / spd;
  std::vector<Matrix> out(values);
  Rng rng(seed_);
  const std::size_t r = rank_;
  for (std::size_t f = 0; f < d; ++f) {
    Matrix fa = rng.normal_matrix(n, r, 0.1);     // node factors
    Matrix fb = rng.normal_matrix(days, r, 0.1);  // day factors
    Matrix fc = rng.normal_matrix(spd, r, 0.1);   // time-of-day factors
    // One ALS sweep updates each mode given the other two; the design row
    // for entry (i, day, slot) is the Hadamard product of the other two
    // modes' factor rows (Khatri-Rao structure).
    auto update_mode = [&](Matrix& target, int mode) {
      const std::size_t rows = target.rows();
      std::vector<Matrix> ata(rows, Matrix(r, r));
      std::vector<Matrix> atb(rows, Matrix(r, 1));
      for (std::size_t t = 0; t < t_total; ++t) {
        const std::size_t day = t / spd;
        const std::size_t slot = t % spd;
        for (std::size_t i = 0; i < n; ++i) {
          if (mask[t](i, f) < 0.5) continue;
          std::size_t row;
          double w[64];
          for (std::size_t a = 0; a < r; ++a) {
            switch (mode) {
              case 0:
                w[a] = fb(day, a) * fc(slot, a);
                break;
              case 1:
                w[a] = fa(i, a) * fc(slot, a);
                break;
              default:
                w[a] = fa(i, a) * fb(day, a);
                break;
            }
          }
          row = mode == 0 ? i : (mode == 1 ? day : slot);
          Matrix& m1 = ata[row];
          Matrix& m2 = atb[row];
          const double x = values[t](i, f);
          for (std::size_t a = 0; a < r; ++a) {
            for (std::size_t b = 0; b < r; ++b) m1(a, b) += w[a] * w[b];
            m2(a, 0) += w[a] * x;
          }
        }
      }
      for (std::size_t row = 0; row < rows; ++row) {
        for (std::size_t a = 0; a < r; ++a) ata[row](a, a) += ridge_;
        const Matrix sol = solve_linear(std::move(ata[row]), std::move(atb[row]));
        for (std::size_t a = 0; a < r; ++a) target(row, a) = sol(a, 0);
      }
    };
    if (r > 64) throw std::invalid_argument("TD rank too large (max 64)");
    for (std::size_t iter = 0; iter < iters_; ++iter) {
      update_mode(fa, 0);
      update_mode(fb, 1);
      update_mode(fc, 2);
    }
    for (std::size_t t = 0; t < t_total; ++t) {
      const std::size_t day = t / spd;
      const std::size_t slot = t % spd;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask[t](i, f) > 0.5) continue;
        double s = 0.0;
        for (std::size_t a = 0; a < r; ++a) {
          s += fa(i, a) * fb(day, a) * fc(slot, a);
        }
        out[t](i, f) = s;
      }
    }
  }
  return overlay_observed(std::move(out), values, mask);
}

}  // namespace rihgcn::baselines
