// Stand-alone imputation baselines for the paper's RQ2 comparison:
// last-observed carry-forward, k-nearest-neighbour, matrix factorization
// (ALS) and CP tensor decomposition (the "TD" baseline, Zhang et al.), plus
// the mean filler the paper uses to preprocess inputs for prediction-only
// baselines.
//
// All imputers consume the time-major (values, mask) pair and return a
// COMPLETE series: observed entries copied verbatim, missing entries filled.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::baselines {

using rihgcn::Matrix;

class Imputer {
 public:
  virtual ~Imputer() = default;
  Imputer() = default;
  Imputer(const Imputer&) = delete;
  Imputer& operator=(const Imputer&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;
  /// `values[t]` is N x D with arbitrary content at missing entries;
  /// `mask[t]` flags observed entries. Returns the completed series.
  [[nodiscard]] virtual std::vector<Matrix> impute(
      const std::vector<Matrix>& values,
      const std::vector<Matrix>& mask) const = 0;
};

/// Fill each (node, feature) stream with its per-stream observed mean
/// (global mean fallback 0 — harmless on z-scored data). The paper's
/// preprocessing for prediction-only baselines.
class MeanImputer final : public Imputer {
 public:
  [[nodiscard]] std::string name() const override { return "Mean"; }
  [[nodiscard]] std::vector<Matrix> impute(
      const std::vector<Matrix>& values,
      const std::vector<Matrix>& mask) const override;
};

/// Carry the last observation forward; leading gaps are filled backward
/// from the first observation; fully-missing streams fall back to 0.
class LastObservedImputer final : public Imputer {
 public:
  [[nodiscard]] std::string name() const override { return "Last"; }
  [[nodiscard]] std::vector<Matrix> impute(
      const std::vector<Matrix>& values,
      const std::vector<Matrix>& mask) const override;
};

/// K-nearest-neighbour over nodes: node similarity is the inverse RMS gap on
/// co-observed entries; a missing entry is the similarity-weighted mean of
/// the k most similar nodes observed at that timestep. Falls back to
/// last-observed when no neighbour reports.
class KnnImputer final : public Imputer {
 public:
  explicit KnnImputer(std::size_t k = 5) : k_(k) {}
  [[nodiscard]] std::string name() const override { return "KNN"; }
  [[nodiscard]] std::vector<Matrix> impute(
      const std::vector<Matrix>& values,
      const std::vector<Matrix>& mask) const override;

 private:
  std::size_t k_;
};

/// Rank-r matrix factorization per feature: the N x T slice is approximated
/// as U Vᵀ by alternating ridge least squares on observed entries.
class MatrixFactorizationImputer final : public Imputer {
 public:
  MatrixFactorizationImputer(std::size_t rank = 8, std::size_t iters = 15,
                             double ridge = 1e-2, std::uint64_t seed = 11)
      : rank_(rank), iters_(iters), ridge_(ridge), seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "MF"; }
  [[nodiscard]] std::vector<Matrix> impute(
      const std::vector<Matrix>& values,
      const std::vector<Matrix>& mask) const override;

 private:
  std::size_t rank_;
  std::size_t iters_;
  double ridge_;
  std::uint64_t seed_;
};

/// CP (CANDECOMP/PARAFAC) decomposition of the (node x day x slot) tensor
/// per feature by ALS on observed entries — exploits the daily periodicity
/// of traffic the way the paper's TD baseline does.
class TensorDecompositionImputer final : public Imputer {
 public:
  TensorDecompositionImputer(std::size_t rank = 6, std::size_t iters = 12,
                             std::size_t steps_per_day = 288,
                             double ridge = 1e-2, std::uint64_t seed = 12)
      : rank_(rank),
        iters_(iters),
        steps_per_day_(steps_per_day),
        ridge_(ridge),
        seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "TD"; }
  [[nodiscard]] std::vector<Matrix> impute(
      const std::vector<Matrix>& values,
      const std::vector<Matrix>& mask) const override;

 private:
  std::size_t rank_;
  std::size_t iters_;
  std::size_t steps_per_day_;
  double ridge_;
  std::uint64_t seed_;
};

}  // namespace rihgcn::baselines
