#include "baselines/neural.hpp"

#include <cmath>
#include <stdexcept>

namespace rihgcn::baselines {

namespace {

void append(std::vector<ad::Parameter*>& out, std::vector<ad::Parameter*> v) {
  out.insert(out.end(), v.begin(), v.end());
}

Matrix inverted(const Matrix& mask) {
  return map(mask, [](double v) { return 1.0 - v; });
}

}  // namespace

Var build_prediction_loss(Tape& tape, Var prediction, const data::Window& w,
                          std::size_t horizon) {
  const std::size_t n = tape.value(prediction).rows();
  Matrix targets(n, horizon);
  Matrix weights(n, horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    targets.set_cols(t, w.y.at(t));
    weights.set_cols(t, w.y_mask.at(t));
  }
  return tape.masked_mae(prediction, targets, weights);
}

// ---- FcLstmModel -----------------------------------------------------------

FcLstmModel::FcLstmModel(std::size_t num_features,
                         const NeuralBaselineConfig& config)
    : config_(config),
      rng_(config.seed),
      lstm_(num_features, config.hidden, rng_, "fclstm.lstm"),
      head_(config.lookback * config.hidden, config.horizon, rng_,
            "fclstm.head") {}

Var FcLstmModel::forward(Tape& tape, const data::Window& w) {
  const std::size_t n = w.x_obs.front().rows();
  nn::LstmCell::State state = lstm_.initial_state(tape, n);
  std::vector<Var> hs;
  hs.reserve(config_.lookback);
  for (std::size_t t = 0; t < config_.lookback; ++t) {
    state = lstm_.step(tape, tape.constant(w.x_obs[t]), state);
    hs.push_back(state.h);
  }
  return head_.forward(tape, tape.concat_cols_many(hs));
}

std::vector<ad::Parameter*> FcLstmModel::parameters() {
  std::vector<ad::Parameter*> out;
  append(out, lstm_.parameters());
  append(out, head_.parameters());
  return out;
}

Var FcLstmModel::training_loss(Tape& tape, const data::Window& w) {
  return build_prediction_loss(tape, forward(tape, w), w, config_.horizon);
}

Matrix FcLstmModel::predict(const data::Window& w) {
  scratch_tape_.reset();
  return scratch_tape_.value(forward(scratch_tape_, w));
}

// ---- FcGcnModel -------------------------------------------------------------

FcGcnModel::FcGcnModel(Matrix geo_scaled_laplacian, std::size_t num_features,
                       const NeuralBaselineConfig& config)
    : config_(config),
      lap_(std::move(geo_scaled_laplacian)),
      rng_(config.seed),
      gcn_(num_features, config.hidden, config.cheb_order, rng_, "fcgcn.gcn"),
      head_(config.lookback * config.hidden, config.horizon, rng_,
            "fcgcn.head") {}

Var FcGcnModel::forward(Tape& tape, const data::Window& w) {
  std::vector<Var> ss;
  ss.reserve(config_.lookback);
  for (std::size_t t = 0; t < config_.lookback; ++t) {
    ss.push_back(
        tape.relu(gcn_.forward(tape, tape.constant(w.x_obs[t]), lap_)));
  }
  return head_.forward(tape, tape.concat_cols_many(ss));
}

std::vector<ad::Parameter*> FcGcnModel::parameters() {
  std::vector<ad::Parameter*> out;
  append(out, gcn_.parameters());
  append(out, head_.parameters());
  return out;
}

Var FcGcnModel::training_loss(Tape& tape, const data::Window& w) {
  return build_prediction_loss(tape, forward(tape, w), w, config_.horizon);
}

Matrix FcGcnModel::predict(const data::Window& w) {
  scratch_tape_.reset();
  return scratch_tape_.value(forward(scratch_tape_, w));
}

// ---- GcnLstmModel -----------------------------------------------------------

GcnLstmModel::GcnLstmModel(Matrix geo_scaled_laplacian,
                           std::size_t num_features,
                           const NeuralBaselineConfig& config)
    : config_(config),
      lap_(std::move(geo_scaled_laplacian)),
      rng_(config.seed),
      gcn_(num_features, config.hidden, config.cheb_order, rng_,
           "gcnlstm.gcn"),
      lstm_(config.hidden, config.hidden, rng_, "gcnlstm.lstm"),
      head_(config.lookback * config.hidden, config.horizon, rng_,
            "gcnlstm.head") {}

Var GcnLstmModel::forward(Tape& tape, const data::Window& w) {
  const std::size_t n = w.x_obs.front().rows();
  nn::LstmCell::State state = lstm_.initial_state(tape, n);
  std::vector<Var> hs;
  hs.reserve(config_.lookback);
  for (std::size_t t = 0; t < config_.lookback; ++t) {
    Var s = tape.relu(gcn_.forward(tape, tape.constant(w.x_obs[t]), lap_));
    state = lstm_.step(tape, s, state);
    hs.push_back(state.h);
  }
  return head_.forward(tape, tape.concat_cols_many(hs));
}

std::vector<ad::Parameter*> GcnLstmModel::parameters() {
  std::vector<ad::Parameter*> out;
  append(out, gcn_.parameters());
  append(out, lstm_.parameters());
  append(out, head_.parameters());
  return out;
}

Var GcnLstmModel::training_loss(Tape& tape, const data::Window& w) {
  return build_prediction_loss(tape, forward(tape, w), w, config_.horizon);
}

Matrix GcnLstmModel::predict(const data::Window& w) {
  scratch_tape_.reset();
  return scratch_tape_.value(forward(scratch_tape_, w));
}

// ---- FcLstmIModel ----------------------------------------------------------

FcLstmIModel::FcLstmIModel(std::size_t num_features,
                           const NeuralBaselineConfig& config)
    : config_(config),
      num_features_(num_features),
      rng_(config.seed),
      lstm_f_(2 * num_features, config.hidden, rng_, "fclstmi.lstm_f"),
      lstm_b_(2 * num_features, config.hidden, rng_, "fclstmi.lstm_b"),
      est_f_(config.hidden, num_features, rng_, "fclstmi.est_f"),
      est_b_(config.hidden, num_features, rng_, "fclstmi.est_b"),
      head_(config.lookback * config.hidden * (config.bidirectional ? 2 : 1),
            config.horizon, rng_, "fclstmi.head") {}

FcLstmIModel::Pass FcLstmIModel::run(Tape& tape, const data::Window& w,
                                     bool reverse) {
  const std::size_t steps = config_.lookback;
  const std::size_t n = w.x_obs.front().rows();
  nn::LstmCell& lstm = reverse ? lstm_b_ : lstm_f_;
  nn::Linear& estimator = reverse ? est_b_ : est_f_;
  Pass pass;
  pass.h.resize(steps);
  pass.estimates.resize(steps);
  pass.has_estimate.assign(steps, 0);
  Var zero_est = tape.constant(Matrix(n, num_features_));
  Var prev = zero_est;
  bool have = false;
  nn::LstmCell::State state = lstm.initial_state(tape, n);
  for (std::size_t k = 0; k < steps; ++k) {
    const std::size_t t = reverse ? steps - 1 - k : k;
    Var est_used = zero_est;
    if (have) {
      pass.estimates[t] = prev;
      pass.has_estimate[t] = 1;
      est_used = prev;
    }
    Var comp = tape.add(tape.constant(w.x_obs[t]),
                        tape.hadamard_const(est_used, inverted(w.x_mask[t])));
    Var input = tape.concat_cols(comp, tape.constant(w.x_mask[t]));
    state = lstm.step(tape, input, state);
    pass.h[t] = state.h;
    prev = estimator.forward(tape, state.h);
    have = true;
  }
  return pass;
}

FcLstmIModel::Output FcLstmIModel::forward(Tape& tape, const data::Window& w) {
  const std::size_t steps = config_.lookback;
  Pass f = run(tape, w, false);
  Pass b;
  if (config_.bidirectional) b = run(tape, w, true);
  Output out;
  Var acc;
  auto accumulate = [&](Var term) {
    acc = out.has_imp ? tape.add(acc, term) : term;
    out.has_imp = true;
  };
  out.complement.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    const bool hf = f.has_estimate[t] != 0;
    const bool hb = config_.bidirectional && b.has_estimate[t] != 0;
    Var est;
    bool have = false;
    if (hf && hb) {
      est = tape.scale(tape.add(f.estimates[t], b.estimates[t]), 0.5);
      have = true;
    } else if (hf || hb) {
      est = hf ? f.estimates[t] : b.estimates[t];
      have = true;
    }
    if (have) {
      accumulate(tape.masked_mae(est, w.x_obs[t], w.x_mask[t]));
      if (hf && hb) {
        accumulate(tape.weighted_l1_between(f.estimates[t], b.estimates[t],
                                            inverted(w.x_mask[t])));
      }
      const Matrix& est_val = tape.value(est);
      Matrix comp = w.x_obs[t];
      for (std::size_t i = 0; i < comp.size(); ++i) {
        if (w.x_mask[t].data()[i] < 0.5) comp.data()[i] = est_val.data()[i];
      }
      out.complement.push_back(std::move(comp));
    } else {
      out.complement.push_back(w.x_obs[t]);
    }
  }
  if (out.has_imp) {
    out.imp_loss = tape.scale(acc, 1.0 / static_cast<double>(steps));
  }
  std::vector<Var> zs(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    zs[t] = config_.bidirectional ? tape.concat_cols(f.h[t], b.h[t]) : f.h[t];
  }
  out.prediction = head_.forward(tape, tape.concat_cols_many(zs));
  return out;
}

std::vector<ad::Parameter*> FcLstmIModel::parameters() {
  std::vector<ad::Parameter*> out;
  append(out, lstm_f_.parameters());
  append(out, est_f_.parameters());
  if (config_.bidirectional) {
    append(out, lstm_b_.parameters());
    append(out, est_b_.parameters());
  }
  append(out, head_.parameters());
  return out;
}

Var FcLstmIModel::training_loss(Tape& tape, const data::Window& w) {
  Output out = forward(tape, w);
  Var pred_loss =
      build_prediction_loss(tape, out.prediction, w, config_.horizon);
  if (!out.has_imp || config_.lambda == 0.0) return pred_loss;
  return tape.affine_combine(pred_loss, 1.0, out.imp_loss, config_.lambda);
}

Matrix FcLstmIModel::predict(const data::Window& w) {
  scratch_tape_.reset();
  return scratch_tape_.value(forward(scratch_tape_, w).prediction);
}

std::vector<Matrix> FcLstmIModel::impute(const data::Window& w) {
  scratch_tape_.reset();
  return std::move(forward(scratch_tape_, w).complement);
}

// ---- FcGcnIModel -------------------------------------------------------------

FcGcnIModel::FcGcnIModel(Matrix geo_scaled_laplacian, std::size_t num_features,
                         const NeuralBaselineConfig& config)
    : config_(config),
      lap_(std::move(geo_scaled_laplacian)),
      num_features_(num_features),
      rng_(config.seed),
      gcn_(2 * num_features, config.hidden, config.cheb_order, rng_,
           "fcgcni.gcn"),
      est_f_(config.hidden, num_features, rng_, "fcgcni.est_f"),
      est_b_(config.hidden, num_features, rng_, "fcgcni.est_b"),
      head_(config.lookback * config.hidden * (config.bidirectional ? 2 : 1),
            config.horizon, rng_, "fcgcni.head") {}

FcGcnIModel::Pass FcGcnIModel::run(Tape& tape, const data::Window& w,
                                   bool reverse) {
  const std::size_t steps = config_.lookback;
  const std::size_t n = w.x_obs.front().rows();
  nn::Linear& estimator = reverse ? est_b_ : est_f_;
  Pass pass;
  pass.s.resize(steps);
  pass.estimates.resize(steps);
  pass.has_estimate.assign(steps, 0);
  Var zero_est = tape.constant(Matrix(n, num_features_));
  Var prev = zero_est;
  bool have = false;
  for (std::size_t k = 0; k < steps; ++k) {
    const std::size_t t = reverse ? steps - 1 - k : k;
    Var est_used = zero_est;
    if (have) {
      pass.estimates[t] = prev;
      pass.has_estimate[t] = 1;
      est_used = prev;
    }
    Var comp = tape.add(tape.constant(w.x_obs[t]),
                        tape.hadamard_const(est_used, inverted(w.x_mask[t])));
    Var input = tape.concat_cols(comp, tape.constant(w.x_mask[t]));
    Var s = tape.relu(gcn_.forward(tape, input, lap_));
    pass.s[t] = s;
    prev = estimator.forward(tape, s);
    have = true;
  }
  return pass;
}

FcGcnIModel::Output FcGcnIModel::forward(Tape& tape, const data::Window& w) {
  const std::size_t steps = config_.lookback;
  Pass f = run(tape, w, false);
  Pass b;
  if (config_.bidirectional) b = run(tape, w, true);
  Output out;
  Var acc;
  auto accumulate = [&](Var term) {
    acc = out.has_imp ? tape.add(acc, term) : term;
    out.has_imp = true;
  };
  out.complement.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    const bool hf = f.has_estimate[t] != 0;
    const bool hb = config_.bidirectional && b.has_estimate[t] != 0;
    Var est;
    bool have = false;
    if (hf && hb) {
      est = tape.scale(tape.add(f.estimates[t], b.estimates[t]), 0.5);
      have = true;
    } else if (hf || hb) {
      est = hf ? f.estimates[t] : b.estimates[t];
      have = true;
    }
    if (have) {
      accumulate(tape.masked_mae(est, w.x_obs[t], w.x_mask[t]));
      if (hf && hb) {
        accumulate(tape.weighted_l1_between(f.estimates[t], b.estimates[t],
                                            inverted(w.x_mask[t])));
      }
      const Matrix& est_val = tape.value(est);
      Matrix comp = w.x_obs[t];
      for (std::size_t i = 0; i < comp.size(); ++i) {
        if (w.x_mask[t].data()[i] < 0.5) comp.data()[i] = est_val.data()[i];
      }
      out.complement.push_back(std::move(comp));
    } else {
      out.complement.push_back(w.x_obs[t]);
    }
  }
  if (out.has_imp) {
    out.imp_loss = tape.scale(acc, 1.0 / static_cast<double>(steps));
  }
  std::vector<Var> zs(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    zs[t] = config_.bidirectional ? tape.concat_cols(f.s[t], b.s[t]) : f.s[t];
  }
  out.prediction = head_.forward(tape, tape.concat_cols_many(zs));
  return out;
}

std::vector<ad::Parameter*> FcGcnIModel::parameters() {
  std::vector<ad::Parameter*> out;
  append(out, gcn_.parameters());
  append(out, est_f_.parameters());
  if (config_.bidirectional) append(out, est_b_.parameters());
  append(out, head_.parameters());
  return out;
}

Var FcGcnIModel::training_loss(Tape& tape, const data::Window& w) {
  Output out = forward(tape, w);
  Var pred_loss =
      build_prediction_loss(tape, out.prediction, w, config_.horizon);
  if (!out.has_imp || config_.lambda == 0.0) return pred_loss;
  return tape.affine_combine(pred_loss, 1.0, out.imp_loss, config_.lambda);
}

Matrix FcGcnIModel::predict(const data::Window& w) {
  scratch_tape_.reset();
  return scratch_tape_.value(forward(scratch_tape_, w).prediction);
}

std::vector<Matrix> FcGcnIModel::impute(const data::Window& w) {
  scratch_tape_.reset();
  return std::move(forward(scratch_tape_, w).complement);
}

// ---- AstGcnModel ----------------------------------------------------------

AstGcnModel::AstGcnModel(Matrix geo_scaled_laplacian, std::size_t num_features,
                         const NeuralBaselineConfig& config)
    : config_(config),
      lap_(std::move(geo_scaled_laplacian)),
      rng_(config.seed),
      query_(num_features, config.hidden, rng_, "astgcn.q"),
      key_(num_features, config.hidden, rng_, "astgcn.k"),
      value_(num_features, config.hidden, rng_, "astgcn.v"),
      gcn_(num_features, config.hidden, config.cheb_order, rng_,
           "astgcn.gcn"),
      temporal_score_(config.hidden, 1, rng_, "astgcn.tscore"),
      head_(config.hidden, config.horizon, rng_, "astgcn.head") {}

Var AstGcnModel::forward(Tape& tape, const data::Window& w) {
  const std::size_t steps = config_.lookback;
  const double inv_sqrt =
      1.0 / std::sqrt(static_cast<double>(config_.hidden));
  std::vector<Var> ss(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    Var x = tape.constant(w.x_obs[t]);
    // Spatial attention: data-driven node-to-node mixing this timestep.
    Var q = query_.forward(tape, x);
    Var k = key_.forward(tape, x);
    Var att = tape.softmax_rows(
        tape.scale(tape.matmul(q, tape.transpose(k)), inv_sqrt));
    Var attended = tape.matmul(att, value_.forward(tape, x));
    // Chebyshev graph convolution on the static geographic graph.
    Var conv = gcn_.forward(tape, x, lap_);
    ss[t] = tape.relu(tape.add(attended, conv));
  }
  // Temporal attention: per-node softmax over the lookback steps.
  std::vector<Var> scores(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    scores[t] = temporal_score_.forward(tape, ss[t]);
  }
  Var alpha = tape.softmax_rows(tape.concat_cols_many(scores));
  Var mixed;
  for (std::size_t t = 0; t < steps; ++t) {
    Var weighted =
        tape.mul_col_broadcast(ss[t], tape.slice_cols(alpha, t, t + 1));
    mixed = t == 0 ? weighted : tape.add(mixed, weighted);
  }
  return head_.forward(tape, mixed);
}

std::vector<ad::Parameter*> AstGcnModel::parameters() {
  std::vector<ad::Parameter*> out;
  append(out, query_.parameters());
  append(out, key_.parameters());
  append(out, value_.parameters());
  append(out, gcn_.parameters());
  append(out, temporal_score_.parameters());
  append(out, head_.parameters());
  return out;
}

Var AstGcnModel::training_loss(Tape& tape, const data::Window& w) {
  return build_prediction_loss(tape, forward(tape, w), w, config_.horizon);
}

Matrix AstGcnModel::predict(const data::Window& w) {
  scratch_tape_.reset();
  return scratch_tape_.value(forward(scratch_tape_, w));
}

// ---- GraphWaveNetModel ------------------------------------------------------

GraphWaveNetModel::GraphWaveNetModel(Matrix geo_scaled_laplacian,
                                     std::size_t num_nodes,
                                     std::size_t num_features,
                                     const NeuralBaselineConfig& config)
    : config_(config),
      lap_(std::move(geo_scaled_laplacian)),
      rng_(config.seed),
      node_emb1_(rng_.normal_matrix(num_nodes, 8, 0.3), "gwn.emb1"),
      node_emb2_(rng_.normal_matrix(num_nodes, 8, 0.3), "gwn.emb2"),
      input_proj_(num_features, config.hidden, rng_, "gwn.in"),
      tcn1_filter_curr_(config.hidden, config.hidden, rng_, "gwn.t1fc"),
      tcn1_filter_prev_(config.hidden, config.hidden, rng_, "gwn.t1fp"),
      tcn1_gate_curr_(config.hidden, config.hidden, rng_, "gwn.t1gc"),
      tcn1_gate_prev_(config.hidden, config.hidden, rng_, "gwn.t1gp"),
      tcn2_filter_curr_(config.hidden, config.hidden, rng_, "gwn.t2fc"),
      tcn2_filter_prev_(config.hidden, config.hidden, rng_, "gwn.t2fp"),
      tcn2_gate_curr_(config.hidden, config.hidden, rng_, "gwn.t2gc"),
      tcn2_gate_prev_(config.hidden, config.hidden, rng_, "gwn.t2gp"),
      spatial1_(config.hidden, config.hidden, rng_, "gwn.sp1"),
      spatial2_(config.hidden, config.hidden, rng_, "gwn.sp2"),
      head_(config.lookback * config.hidden, config.horizon, rng_,
            "gwn.head") {}

Var GraphWaveNetModel::forward(Tape& tape, const data::Window& w) {
  const std::size_t steps = config_.lookback;
  const std::size_t n = w.x_obs.front().rows();
  // Adaptive adjacency from learned node embeddings (Graph WaveNet's
  // signature mechanism) — built once per forward pass.
  Var adaptive = tape.softmax_rows(tape.relu(
      tape.matmul(tape.leaf(node_emb1_), tape.transpose(tape.leaf(node_emb2_)))));
  Var zeros = tape.constant(Matrix(n, config_.hidden));

  std::vector<Var> v(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    v[t] = input_proj_.forward(tape, tape.constant(w.x_obs[t]));
  }
  // Gated TCN layer 1 (dilation 1) + adaptive-graph spatial mixing.
  std::vector<Var> u(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    Var prev = t >= 1 ? v[t - 1] : zeros;
    Var filt = tape.tanh(tape.add(tcn1_filter_curr_.forward(tape, v[t]),
                                  tcn1_filter_prev_.forward(tape, prev)));
    Var gate = tape.sigmoid(tape.add(tcn1_gate_curr_.forward(tape, v[t]),
                                     tcn1_gate_prev_.forward(tape, prev)));
    Var g = tape.mul(filt, gate);
    u[t] = tape.relu(
        tape.add(g, tape.matmul(adaptive, spatial1_.forward(tape, g))));
  }
  // Gated TCN layer 2 (dilation 2) + spatial mixing, residual from layer 1.
  std::vector<Var> z(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    Var prev = t >= 2 ? u[t - 2] : zeros;
    Var filt = tape.tanh(tape.add(tcn2_filter_curr_.forward(tape, u[t]),
                                  tcn2_filter_prev_.forward(tape, prev)));
    Var gate = tape.sigmoid(tape.add(tcn2_gate_curr_.forward(tape, u[t]),
                                     tcn2_gate_prev_.forward(tape, prev)));
    Var g = tape.mul(filt, gate);
    Var mixed = tape.add(g, tape.matmul(adaptive, spatial2_.forward(tape, g)));
    z[t] = tape.relu(tape.add(mixed, u[t]));
  }
  return head_.forward(tape, tape.concat_cols_many(z));
}

std::vector<ad::Parameter*> GraphWaveNetModel::parameters() {
  std::vector<ad::Parameter*> out{&node_emb1_, &node_emb2_};
  append(out, input_proj_.parameters());
  append(out, tcn1_filter_curr_.parameters());
  append(out, tcn1_filter_prev_.parameters());
  append(out, tcn1_gate_curr_.parameters());
  append(out, tcn1_gate_prev_.parameters());
  append(out, tcn2_filter_curr_.parameters());
  append(out, tcn2_filter_prev_.parameters());
  append(out, tcn2_gate_curr_.parameters());
  append(out, tcn2_gate_prev_.parameters());
  append(out, spatial1_.parameters());
  append(out, spatial2_.parameters());
  append(out, head_.parameters());
  return out;
}

Var GraphWaveNetModel::training_loss(Tape& tape, const data::Window& w) {
  return build_prediction_loss(tape, forward(tape, w), w, config_.horizon);
}

Matrix GraphWaveNetModel::predict(const data::Window& w) {
  scratch_tape_.reset();
  return scratch_tape_.value(forward(scratch_tape_, w));
}

}  // namespace rihgcn::baselines
