// Neural forecasting baselines from the paper's experiments (§IV-B2).
//
// Mean-filled models (the paper preprocesses their inputs by replacing
// missing values with the feature mean — identical to zero-filling after
// z-scoring, which is what Window::x_obs already contains):
//   * FcLstmModel  — per-node LSTM over time, FC head ("FC-LSTM").
//   * FcGcnModel   — GCN per timestep over the geographic graph, FC head
//                    ("FC-GCN").
//   * GcnLstmModel — GCN per step feeding a node-shared LSTM ("GCN-LSTM").
//   * AstGcnModel  — simplified ASTGCN: spatial attention + Chebyshev GCN
//                    and temporal attention (Guo et al. 2019's mechanisms on
//                    this library's substrate).
//   * GraphWaveNetModel — simplified Graph WaveNet: learned adaptive
//                    adjacency from node embeddings + gated dilated temporal
//                    convolutions (Wu et al. 2019's mechanisms).
//
// Recurrent-imputation variants (ablations of RIHGCN; estimates stay in the
// autodiff graph exactly as in the full model):
//   * FcLstmIModel — temporal-only recurrent imputation (BRITS-like).
//   * FcGcnIModel  — spatial-only recurrent imputation.
//   * GCN-LSTM-I   — use core::RihgcnModel with zero temporal graphs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "nn/layers.hpp"

namespace rihgcn::baselines {

using ad::Tape;
using ad::Var;

struct NeuralBaselineConfig {
  std::size_t lookback = 12;
  std::size_t horizon = 12;
  std::size_t hidden = 32;     ///< LSTM hidden / GCN embedding width
  std::size_t cheb_order = 3;  ///< K for GCN-based baselines
  double lambda = 1.0;         ///< imputation-loss weight for -I variants
  bool bidirectional = true;   ///< -I variants impute in both directions
  std::uint64_t seed = 21;
};

/// Shared scaffolding: target/weight assembly + masked-MAE prediction loss.
[[nodiscard]] Var build_prediction_loss(Tape& tape, Var prediction,
                                        const data::Window& w,
                                        std::size_t horizon);

// ---- Mean-filled models ----------------------------------------------------

class FcLstmModel final : public core::ForecastModel {
 public:
  FcLstmModel(std::size_t num_features, const NeuralBaselineConfig& config);
  [[nodiscard]] std::string name() const override { return "FC-LSTM"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override;
  [[nodiscard]] Var training_loss(Tape& tape, const data::Window& w) override;
  [[nodiscard]] Matrix predict(const data::Window& w) override;

 private:
  [[nodiscard]] Var forward(Tape& tape, const data::Window& w);
  NeuralBaselineConfig config_;
  Rng rng_;
  nn::LstmCell lstm_;
  nn::Linear head_;
  Tape scratch_tape_;  ///< reused across predict() calls via Tape::reset()
};

class FcGcnModel final : public core::ForecastModel {
 public:
  /// `geo_scaled_laplacian` is copied; N inferred from it.
  FcGcnModel(Matrix geo_scaled_laplacian, std::size_t num_features,
             const NeuralBaselineConfig& config);
  [[nodiscard]] std::string name() const override { return "FC-GCN"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override;
  [[nodiscard]] Var training_loss(Tape& tape, const data::Window& w) override;
  [[nodiscard]] Matrix predict(const data::Window& w) override;

 private:
  [[nodiscard]] Var forward(Tape& tape, const data::Window& w);
  NeuralBaselineConfig config_;
  Matrix lap_;
  Rng rng_;
  nn::ChebGcnLayer gcn_;
  nn::Linear head_;
  Tape scratch_tape_;  ///< reused across predict() calls via Tape::reset()
};

class GcnLstmModel final : public core::ForecastModel {
 public:
  GcnLstmModel(Matrix geo_scaled_laplacian, std::size_t num_features,
               const NeuralBaselineConfig& config);
  [[nodiscard]] std::string name() const override { return "GCN-LSTM"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override;
  [[nodiscard]] Var training_loss(Tape& tape, const data::Window& w) override;
  [[nodiscard]] Matrix predict(const data::Window& w) override;

 private:
  [[nodiscard]] Var forward(Tape& tape, const data::Window& w);
  NeuralBaselineConfig config_;
  Matrix lap_;
  Rng rng_;
  nn::ChebGcnLayer gcn_;
  nn::LstmCell lstm_;
  nn::Linear head_;
  Tape scratch_tape_;  ///< reused across predict() calls via Tape::reset()
};

// ---- Recurrent-imputation variants -------------------------------------------

class FcLstmIModel final : public core::ForecastModel {
 public:
  FcLstmIModel(std::size_t num_features, const NeuralBaselineConfig& config);
  [[nodiscard]] std::string name() const override { return "FC-LSTM-I"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override;
  [[nodiscard]] Var training_loss(Tape& tape, const data::Window& w) override;
  [[nodiscard]] Matrix predict(const data::Window& w) override;
  [[nodiscard]] std::vector<Matrix> impute(const data::Window& w) override;

 private:
  struct Pass {
    std::vector<Var> h;
    std::vector<Var> estimates;
    std::vector<char> has_estimate;
  };
  struct Output {
    Var prediction;
    Var imp_loss;
    bool has_imp = false;
    std::vector<Matrix> complement;
  };
  [[nodiscard]] Pass run(Tape& tape, const data::Window& w, bool reverse);
  [[nodiscard]] Output forward(Tape& tape, const data::Window& w);
  NeuralBaselineConfig config_;
  std::size_t num_features_;
  Rng rng_;
  nn::LstmCell lstm_f_;
  nn::LstmCell lstm_b_;
  nn::Linear est_f_;
  nn::Linear est_b_;
  nn::Linear head_;
  Tape scratch_tape_;  ///< reused across predict()/impute() via Tape::reset()
};

class FcGcnIModel final : public core::ForecastModel {
 public:
  FcGcnIModel(Matrix geo_scaled_laplacian, std::size_t num_features,
              const NeuralBaselineConfig& config);
  [[nodiscard]] std::string name() const override { return "FC-GCN-I"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override;
  [[nodiscard]] Var training_loss(Tape& tape, const data::Window& w) override;
  [[nodiscard]] Matrix predict(const data::Window& w) override;
  [[nodiscard]] std::vector<Matrix> impute(const data::Window& w) override;

 private:
  struct Pass {
    std::vector<Var> s;
    std::vector<Var> estimates;
    std::vector<char> has_estimate;
  };
  struct Output {
    Var prediction;
    Var imp_loss;
    bool has_imp = false;
    std::vector<Matrix> complement;
  };
  [[nodiscard]] Pass run(Tape& tape, const data::Window& w, bool reverse);
  [[nodiscard]] Output forward(Tape& tape, const data::Window& w);
  NeuralBaselineConfig config_;
  Matrix lap_;
  std::size_t num_features_;
  Rng rng_;
  nn::ChebGcnLayer gcn_;
  nn::Linear est_f_;
  nn::Linear est_b_;
  nn::Linear head_;
  Tape scratch_tape_;  ///< reused across predict()/impute() via Tape::reset()
};

// ---- Attention / TCN baselines -----------------------------------------------

class AstGcnModel final : public core::ForecastModel {
 public:
  AstGcnModel(Matrix geo_scaled_laplacian, std::size_t num_features,
              const NeuralBaselineConfig& config);
  [[nodiscard]] std::string name() const override { return "ASTGCN"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override;
  [[nodiscard]] Var training_loss(Tape& tape, const data::Window& w) override;
  [[nodiscard]] Matrix predict(const data::Window& w) override;

 private:
  [[nodiscard]] Var forward(Tape& tape, const data::Window& w);
  NeuralBaselineConfig config_;
  Matrix lap_;
  Rng rng_;
  nn::Linear query_;
  nn::Linear key_;
  nn::Linear value_;
  nn::ChebGcnLayer gcn_;
  nn::Linear temporal_score_;
  nn::Linear head_;
  Tape scratch_tape_;  ///< reused across predict() calls via Tape::reset()
};

class GraphWaveNetModel final : public core::ForecastModel {
 public:
  GraphWaveNetModel(Matrix geo_scaled_laplacian, std::size_t num_nodes,
                    std::size_t num_features,
                    const NeuralBaselineConfig& config);
  [[nodiscard]] std::string name() const override { return "GraphWaveNet"; }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override;
  [[nodiscard]] Var training_loss(Tape& tape, const data::Window& w) override;
  [[nodiscard]] Matrix predict(const data::Window& w) override;

 private:
  [[nodiscard]] Var forward(Tape& tape, const data::Window& w);
  NeuralBaselineConfig config_;
  Matrix lap_;
  Rng rng_;
  ad::Parameter node_emb1_;  ///< N x e — adaptive-adjacency source factors
  ad::Parameter node_emb2_;  ///< N x e
  nn::Linear input_proj_;
  nn::Linear tcn1_filter_curr_, tcn1_filter_prev_;
  nn::Linear tcn1_gate_curr_, tcn1_gate_prev_;
  nn::Linear tcn2_filter_curr_, tcn2_filter_prev_;
  nn::Linear tcn2_gate_curr_, tcn2_gate_prev_;
  nn::Linear spatial1_;
  nn::Linear spatial2_;
  nn::Linear head_;
  Tape scratch_tape_;  ///< reused across predict() calls via Tape::reset()
};

}  // namespace rihgcn::baselines
