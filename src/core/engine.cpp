#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"

namespace rihgcn::core {

namespace {

/// C += A·B on raw f32 buffers. `threads` is the Options::num_threads
/// scheduling hint: 0 = adaptive (dispatch only past the ParallelTuning
/// flop thresholds, the fixed-chunk fmatmul_accumulate rule), 1 = serial,
/// K > 1 = always dispatch with row grain ceil(rows / K). Thread-count
/// invariant either way: each output row is computed whole inside one
/// kernel call, so results are independent of chunking.
void gemm_acc(const float* a, std::size_t rows, std::size_t k, const float* b,
              std::size_t m, float* c, std::size_t threads) {
  if (rows == 0 || k == 0 || m == 0) return;
  const simd::Kernels& kern = simd::active_kernels();
  bool dispatch = false;
  std::size_t grain = ParallelTuning::matmul_row_grain;
  if (threads != 1 && !ThreadPool::in_parallel_region()) {
    if (threads == 0) {
      const std::size_t flops = rows * k * m;
      dispatch = flops >= ParallelTuning::min_matmul_flops &&
                 flops >= ParallelTuning::serial_cutover_flops;
    } else {
      dispatch = true;
      grain = (rows + threads - 1) / threads;
    }
  }
  if (!dispatch) {
    kern.smatmul_rows(a, b, c, k, m, 0, rows);
    return;
  }
  ThreadPool::global().parallel_for(
      0, rows, grain, [&](std::size_t i0, std::size_t i1) {
        kern.smatmul_rows(a, b, c, k, m, i0, i1);
      });
}

/// c[r, :] += bias[0, :] for every row.
void add_bias_rows(float* c, const float* bias, std::size_t rows,
                   std::size_t m) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = c + r * m;
    for (std::size_t j = 0; j < m; ++j) row[j] += bias[j];
  }
}

FMatrix to_f32(const Matrix& m) { return FMatrix::from(m); }

}  // namespace

// ---- compilation -----------------------------------------------------------

InferenceEngine::InferenceEngine(const RihgcnModel& model, Options options)
    : InferenceEngine(model, options, nullptr, 0) {}

InferenceEngine::InferenceEngine(const RihgcnModel& model, Options options,
                                 const HgcnBlock::SparseLaps* sub_laps,
                                 std::size_t sub_n) {
  // parameters() and the module accessors are logically const (a forward
  // compile never mutates the model); the Module interface just predates a
  // const overload.
  RihgcnModel& m = const_cast<RihgcnModel&>(model);
  const RihgcnConfig& cfg = m.config_;
  n_ = sub_laps != nullptr ? sub_n : m.graphs_.num_nodes();
  f_ = m.num_features_;
  lookback_ = cfg.lookback;
  horizon_ = cfg.horizon;
  gcn_dim_ = cfg.gcn_dim;
  lstm_dim_ = cfg.lstm_dim;
  cheb_order_ = cfg.cheb_order;
  bidirectional_ = cfg.bidirectional;
  attention_head_ = cfg.head == RihgcnConfig::Head::kAttention;
  cell_ = cfg.cell;
  z_width_ = (bidirectional_ ? 2 : 1) * (gcn_dim_ + lstm_dim_);
  steps_per_day_ = m.graphs_.steps_per_day();
  max_batch_ = options.max_batch;
  num_threads_ = options.num_threads;
  if (max_batch_ == 0) {
    throw std::invalid_argument("InferenceEngine: max_batch must be >= 1");
  }

  if (sub_laps != nullptr) {
    if (n_ == 0) {
      throw std::invalid_argument(
          "InferenceEngine: sub-graph node count must be >= 1");
    }
    compile_subgraph_ops(*sub_laps);
  } else {
    compile_graph_ops(m);
  }

  const std::size_t per_gcn = cheb_order_ + 1;  // K thetas + bias
  const std::size_t num_temporal = temporal_ops_.size();
  auto parse_hgcn = [&](HgcnBlock& block, std::size_t in_dim) {
    // HgcnBlock::parameters() ordering: geo layer first, then each temporal
    // layer; within a ChebGcnLayer: theta_0..theta_{K-1}, bias.
    const std::vector<ad::Parameter*> params = block.parameters();
    if (params.size() != per_gcn * (1 + num_temporal)) {
      throw std::logic_error("InferenceEngine: unexpected HGCN parameter count");
    }
    HgcnPlan plan;
    plan.in_dim = in_dim;
    plan.geo = compile_gcn(params, 0, cheb_order_);
    plan.temporal.reserve(num_temporal);
    for (std::size_t t = 0; t < num_temporal; ++t) {
      plan.temporal.push_back(
          compile_gcn(params, (t + 1) * per_gcn, cheb_order_));
    }
    return plan;
  };
  hgcn1_ = parse_hgcn(m.hgcn_, f_);
  if (m.hgcn2_) {
    has_hgcn2_ = true;
    hgcn2_ = parse_hgcn(*m.hgcn2_, gcn_dim_);
  }

  // Cell parameters() ordering: {w_ih, w_hh, bias}; Linear: {weight, bias}.
  auto parse_dir = [&](nn::RecurrentCell& cell, nn::Linear& est) {
    const auto cp = cell.parameters();
    const auto ep = est.parameters();
    DirPlan dir;
    dir.w_ih = to_f32(cp.at(0)->value());
    dir.w_hh = to_f32(cp.at(1)->value());
    dir.bias = to_f32(cp.at(2)->value());
    dir.est_w = to_f32(ep.at(0)->value());
    dir.est_b = to_f32(ep.at(1)->value());
    return dir;
  };
  fwd_ = parse_dir(*m.rnn_fwd_, m.est_fwd_);
  if (bidirectional_) bwd_ = parse_dir(*m.rnn_bwd_, m.est_bwd_);

  head_w_ = to_f32(m.head_.parameters().at(0)->value());
  head_b_ = to_f32(m.head_.parameters().at(1)->value());
  if (attention_head_) {
    attn_w_ = to_f32(m.attn_score_.parameters().at(0)->value());
    attn_b_ = to_f32(m.attn_score_.parameters().at(1)->value());
  }

  const std::size_t num_m = temporal_ops_.size();
  interval_w_.resize(steps_per_day_ * num_m);
  for (std::size_t slot = 0; slot < steps_per_day_; ++slot) {
    const std::vector<double> w = m.graphs_.interval_weights(slot);
    for (std::size_t t = 0; t < num_m; ++t) {
      interval_w_[slot * num_m + t] = w[t];
    }
  }

  scratch_ = make_workspace();
}

void InferenceEngine::compile_graph_ops(const RihgcnModel& model) {
  const HeterogeneousGraphs& g = model.graphs_;
  const HgcnBlock::SparseLaps& cache = model.sparse_laps_;
  const bool use_sparse = model.config_.use_sparse_graphs;
  // Transposed-dense cutover: the CSR apply costs ~nnz·width gather-bound
  // MACs, the transposed GEMM width·N²/8 streaming ones — break-even near
  // 1/8 density. The N cap bounds the materialized L̃ᵀ (≤ 16 MiB f32);
  // city-scale k-NN graphs sit far below the density bar anyway.
  auto prefer_dense_t = [&](std::size_t nnz) {
    return n_ <= 2048 && nnz * 8 > n_ * n_;
  };
  // lapT(j, i) = L̃(i, j), narrowed entry-wise exactly as FCsrMatrix::from
  // would — both paths consume the same f32 values.
  auto transpose_csr = [&](const CsrMatrix& c) {
    FMatrix t(n_, n_);
    const auto& ptr = c.row_ptr();
    const auto& idx = c.col_idx();
    const auto& val = c.values();
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t p = ptr[i]; p < ptr[i + 1]; ++p) {
        t(idx[p], i) = static_cast<float>(val[p]);
      }
    }
    return t;
  };
  auto make_op = [&](const std::optional<CsrMatrix>& cached,
                     auto dense_lap) {
    GraphOp op;
    if (use_sparse && cached.has_value() && !prefer_dense_t(cached->nnz())) {
      op.sparse = true;
      op.csr = FCsrMatrix::from(*cached);
      op.csr_batch = FCsrMatrix::block_diagonal(op.csr, max_batch_);
    } else if (use_sparse && cached.has_value()) {
      op.dense_t = true;
      op.lapT = transpose_csr(*cached);
    } else {
      // No CSR cache: the graph is above the model's sparse_density_limit
      // (or sparse mode is off) — dense enough that transposed GEMM wins.
      op.dense_t = true;
      const Matrix lap = dense_lap();
      FMatrix t(n_, n_);
      for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = 0; j < n_; ++j) {
          t(j, i) = static_cast<float>(lap(i, j));
        }
      }
      op.lapT = std::move(t);
    }
    return op;
  };
  const std::optional<CsrMatrix> none;
  geo_op_ = make_op(use_sparse ? cache.geo : none,
                    [&] { return g.geographic().scaled_laplacian(); });
  const std::size_t num_m = g.num_temporal();
  temporal_ops_.clear();
  temporal_ops_.reserve(num_m);
  for (std::size_t t = 0; t < num_m; ++t) {
    const bool covered = use_sparse && t < cache.temporal.size();
    temporal_ops_.push_back(
        make_op(covered ? cache.temporal[t] : none,
                [&] { return g.temporal(t).scaled_laplacian(); }));
  }
}

void InferenceEngine::compile_subgraph_ops(const HgcnBlock::SparseLaps& laps) {
  // Same path-selection rule as compile_graph_ops, applied to the cluster's
  // sub-CSRs (density is judged on the SUB-graph: a shard of a sparse
  // city-scale graph can be locally dense enough for the transposed GEMM).
  // Both apply forms accumulate each output element in the same ascending-k
  // FMA order, so the choice never moves a bit.
  auto make_sub_op = [&](const std::optional<CsrMatrix>& cached) {
    if (!cached.has_value()) {
      throw std::invalid_argument(
          "InferenceEngine: sub-graph compilation requires every Laplacian "
          "in CSR form");
    }
    GraphOp op;
    if (n_ <= 2048 && cached->nnz() * 8 > n_ * n_) {
      op.dense_t = true;
      FMatrix t(n_, n_);
      const auto& ptr = cached->row_ptr();
      const auto& idx = cached->col_idx();
      const auto& val = cached->values();
      for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t p = ptr[i]; p < ptr[i + 1]; ++p) {
          t(idx[p], i) = static_cast<float>(val[p]);
        }
      }
      op.lapT = std::move(t);
    } else {
      op.sparse = true;
      op.csr = FCsrMatrix::from(*cached);
      op.csr_batch = FCsrMatrix::block_diagonal(op.csr, max_batch_);
    }
    return op;
  };
  geo_op_ = make_sub_op(laps.geo);
  temporal_ops_.clear();
  temporal_ops_.reserve(laps.temporal.size());
  for (const std::optional<CsrMatrix>& t : laps.temporal) {
    temporal_ops_.push_back(make_sub_op(t));
  }
}

InferenceEngine::GcnPlan InferenceEngine::compile_gcn(
    const std::vector<ad::Parameter*>& params, std::size_t offset,
    std::size_t order) {
  GcnPlan plan;
  plan.theta.reserve(order);
  for (std::size_t k = 0; k < order; ++k) {
    plan.theta.push_back(to_f32(params.at(offset + k)->value()));
  }
  plan.bias = to_f32(params.at(offset + order)->value());
  return plan;
}

InferenceEngine::Workspace InferenceEngine::make_workspace() const {
  Workspace ws;
  const std::size_t rows = max_batch_ * n_;
  const std::size_t cheb_width = std::max(f_, gcn_dim_);
  ws.xobs.reserve(lookback_);
  ws.mask.reserve(lookback_);
  ws.zcat.reserve(lookback_);
  for (std::size_t t = 0; t < lookback_; ++t) {
    ws.xobs.emplace_back(rows, f_);
    ws.mask.emplace_back(rows, f_);
    ws.zcat.emplace_back(rows, z_width_);
  }
  ws.est = FMatrix(rows, f_);
  ws.comp = FMatrix(rows, f_);
  ws.cheb_a = FMatrix(rows, cheb_width);
  ws.cheb_b = FMatrix(rows, cheb_width);
  ws.cheb_p = FMatrix(rows, cheb_width);
  ws.lap_xt = FMatrix(cheb_width, n_);
  ws.lap_ot = FMatrix(cheb_width, n_);
  ws.s = FMatrix(rows, gcn_dim_);
  ws.s2 = FMatrix(rows, gcn_dim_);
  ws.gcn_tmp = FMatrix(rows, gcn_dim_);
  ws.rnn_in = FMatrix(rows, gcn_dim_ + f_);
  ws.gates = FMatrix(rows, 4 * lstm_dim_);
  ws.gates_h = FMatrix(rows, 4 * lstm_dim_);
  ws.h = FMatrix(rows, lstm_dim_);
  ws.c = FMatrix(rows, lstm_dim_);
  ws.zdir = FMatrix(rows, gcn_dim_ + lstm_dim_);
  ws.scores = FMatrix(rows, lookback_);
  ws.mixed = FMatrix(rows, z_width_);
  ws.pred = FMatrix(rows, horizon_);
  ws.slots.assign(max_batch_ * lookback_, 0);
  return ws;
}

// ---- forward ---------------------------------------------------------------

void InferenceEngine::apply_lap(const GraphOp& g, const float* x, float* out,
                                std::size_t batch, std::size_t width,
                                Workspace& ws) const {
  const std::size_t rows = batch * n_;
  const simd::Kernels& kern = simd::active_kernels();
  if (g.sparse) {
    std::fill(out, out + rows * width, 0.0f);
    const std::size_t* ptr = g.csr_batch.row_ptr().data();
    const std::size_t* idx = g.csr_batch.col_idx().data();
    const float* val = g.csr_batch.values().data();
    // Same num_threads scheduling contract as gemm_acc: 0 adaptive on the
    // nnz-proportional work estimate, 1 serial, K always-dispatch.
    bool dispatch = false;
    std::size_t grain = ParallelTuning::matmul_row_grain;
    if (num_threads_ != 1 && !ThreadPool::in_parallel_region()) {
      if (num_threads_ == 0) {
        const std::size_t work = g.csr.nnz() * batch * width;
        dispatch = work >= ParallelTuning::min_matmul_flops &&
                   work >= ParallelTuning::serial_cutover_flops;
      } else {
        dispatch = true;
        grain = (rows + num_threads_ - 1) / num_threads_;
      }
    }
    if (!dispatch) {
      kern.sspmm_rows(ptr, idx, val, x, out, width, 0, rows);
      return;
    }
    ThreadPool::global().parallel_for(
        0, rows, grain, [&](std::size_t i0, std::size_t i1) {
          kern.sspmm_rows(ptr, idx, val, x, out, width, i0, i1);
        });
    return;
  }
  // Transposed dense path, one GEMM per diagonal block: outᵀ_b = xᵀ_b·L̃ᵀ
  // keeps the vectorized dimension N wide instead of `width` (typically 4
  // or 8). Each block's rows only see that block's inputs, so this is
  // bitwise-equal to B separate forwards; per element the accumulation is
  // the same ascending-k FMA order as the CSR path (exact-zero terms
  // included, which leave the accumulator bitwise unchanged).
  float* xt = ws.lap_xt.data();
  float* ot = ws.lap_ot.data();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = x + b * n_ * width;
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < width; ++j) xt[j * n_ + i] = xb[i * width + j];
    }
    std::fill(ot, ot + width * n_, 0.0f);
    kern.smatmul_panel(xt, g.lapT.data(), ot, width, n_, n_);
    float* ob = out + b * n_ * width;
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < width; ++j) ob[i * width + j] = ot[j * n_ + i];
    }
  }
}

void InferenceEngine::run_gcn(const GcnPlan& gcn, const GraphOp& graph,
                              const float* x, std::size_t in_dim, FMatrix& out,
                              Workspace& ws, std::size_t batch) const {
  const std::size_t rows = batch * n_;
  // Chebyshev recurrence z_0 = x, z_1 = L̃x, z_k = 2 L̃ z_{k-1} − z_{k-2},
  // accumulating Σ z_k Θ_k into `out` (caller zeroes it) as each term lands.
  gemm_acc(x, rows, in_dim, gcn.theta[0].data(), gcn_dim_, out.data(),
           num_threads_);
  const float* prev2 = x;
  const float* prev = nullptr;
  if (cheb_order_ > 1) {
    apply_lap(graph, x, ws.cheb_a.data(), batch, in_dim, ws);
    gemm_acc(ws.cheb_a.data(), rows, in_dim, gcn.theta[1].data(), gcn_dim_,
             out.data(), num_threads_);
    prev = ws.cheb_a.data();
  }
  for (std::size_t k = 2; k < cheb_order_; ++k) {
    apply_lap(graph, prev, ws.cheb_p.data(), batch, in_dim, ws);
    // Reuse the z_{k-2} buffer for z_k — unless z_{k-2} is the caller's
    // input x, which must stay intact (k == 2 targets cheb_b).
    float* dst =
        prev2 == x ? ws.cheb_b.data() : const_cast<float*>(prev2);
    const float* p = ws.cheb_p.data();
    for (std::size_t i = 0; i < rows * in_dim; ++i) {
      dst[i] = 2.0f * p[i] - prev2[i];
    }
    gemm_acc(dst, rows, in_dim, gcn.theta[k].data(), gcn_dim_, out.data(),
             num_threads_);
    prev2 = prev;
    prev = dst;
  }
  add_bias_rows(out.data(), gcn.bias.data(), rows, gcn_dim_);
}

void InferenceEngine::run_hgcn(const HgcnPlan& plan, const float* x,
                               FMatrix& out, Workspace& ws, std::size_t batch,
                               std::size_t step, bool /*layer2*/) const {
  const std::size_t rows = batch * n_;
  const std::size_t num_m = temporal_ops_.size();
  const simd::Kernels& kern = simd::active_kernels();
  std::fill(out.data(), out.data() + rows * gcn_dim_, 0.0f);
  run_gcn(plan.geo, geo_op_, x, plan.in_dim, out, ws, batch);
  for (std::size_t t = 0; t < num_m; ++t) {
    // Per-window mixture weights: the tape path skips graph m entirely when
    // its weight is negligible, so the batched path must apply the skip per
    // diagonal block (and may skip the whole GCN when no window needs it).
    bool any = false;
    for (std::size_t b = 0; b < batch && !any; ++b) {
      const std::size_t slot = ws.slots[b * lookback_ + step];
      any = interval_w_[slot * num_m + t] > 1e-8;
    }
    if (!any) continue;
    std::fill(ws.gcn_tmp.data(), ws.gcn_tmp.data() + rows * gcn_dim_, 0.0f);
    run_gcn(plan.temporal[t], temporal_ops_[t], x, plan.in_dim, ws.gcn_tmp,
            ws, batch);
    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t slot = ws.slots[b * lookback_ + step];
      const double w = interval_w_[slot * num_m + t];
      if (w <= 1e-8) continue;
      kern.saxpy(out.data() + b * n_ * gcn_dim_, static_cast<float>(w),
                 ws.gcn_tmp.data() + b * n_ * gcn_dim_, n_ * gcn_dim_);
    }
  }
  float* o = out.data();
  for (std::size_t i = 0; i < rows * gcn_dim_; ++i) {
    o[i] = o[i] > 0.0f ? o[i] : 0.0f;
  }
}

void InferenceEngine::run_direction(const DirPlan& dir, Workspace& ws,
                                    std::size_t batch, bool reverse,
                                    std::size_t col0) const {
  const std::size_t rows = batch * n_;
  const std::size_t p = gcn_dim_, hdim = lstm_dim_, f = f_;
  const std::size_t gates_w = (cell_ == nn::CellKind::kLstm ? 4 : 3) * hdim;
  const simd::Kernels& kern = simd::active_kernels();
  std::fill(ws.h.data(), ws.h.data() + rows * hdim, 0.0f);
  std::fill(ws.c.data(), ws.c.data() + rows * hdim, 0.0f);
  bool have_est = false;

  for (std::size_t k = 0; k < lookback_; ++k) {
    const std::size_t t = reverse ? lookback_ - 1 - k : k;
    const float* xo = ws.xobs[t].data();
    const float* mk = ws.mask[t].data();
    float* cp = ws.comp.data();
    if (!have_est) {
      // First visited step: X̂ is zero, so the complement is just x_obs.
      std::memcpy(cp, xo, rows * f * sizeof(float));
    } else {
      const float* e = ws.est.data();
      for (std::size_t i = 0; i < rows * f; ++i) {
        cp[i] = xo[i] + (1.0f - mk[i]) * e[i];
      }
    }
    run_hgcn(hgcn1_, cp, ws.s, ws, batch, t, false);
    const float* sfeat = ws.s.data();
    if (has_hgcn2_) {
      run_hgcn(hgcn2_, ws.s.data(), ws.s2, ws, batch, t, true);
      sfeat = ws.s2.data();
    }
    // rnn input [s_t | m_t]
    float* rin = ws.rnn_in.data();
    for (std::size_t r = 0; r < rows; ++r) {
      std::memcpy(rin + r * (p + f), sfeat + r * p, p * sizeof(float));
      std::memcpy(rin + r * (p + f) + p, mk + r * f, f * sizeof(float));
    }
    std::fill(ws.gates.data(), ws.gates.data() + rows * gates_w, 0.0f);
    gemm_acc(rin, rows, p + f, dir.w_ih.data(), gates_w, ws.gates.data(),
             num_threads_);
    if (cell_ == nn::CellKind::kLstm) {
      gemm_acc(ws.h.data(), rows, hdim, dir.w_hh.data(), gates_w,
               ws.gates.data(), num_threads_);
      add_bias_rows(ws.gates.data(), dir.bias.data(), rows, gates_w);
      kern.slstm_step(ws.gates.data(), ws.c.data(), ws.h.data(), rows, hdim);
    } else {  // GRU: [r | z | n], n = tanh(xn + r ⊙ hn + bn)
      std::fill(ws.gates_h.data(), ws.gates_h.data() + rows * gates_w, 0.0f);
      gemm_acc(ws.h.data(), rows, hdim, dir.w_hh.data(), gates_w,
               ws.gates_h.data(), num_threads_);
      kern.sgru_step(ws.gates.data(), ws.gates_h.data(), dir.bias.data(),
                     ws.h.data(), rows, hdim);
    }
    // z_t = [s_t | h_t]: packed for the estimator GEMM, and copied into the
    // head's per-step buffer at this direction's column offset.
    float* zd = ws.zdir.data();
    const std::size_t zw = p + hdim;
    for (std::size_t r = 0; r < rows; ++r) {
      std::memcpy(zd + r * zw, sfeat + r * p, p * sizeof(float));
      std::memcpy(zd + r * zw + p, ws.h.data() + r * hdim,
                  hdim * sizeof(float));
      std::memcpy(ws.zcat[t].data() + r * z_width_ + col0, zd + r * zw,
                  zw * sizeof(float));
    }
    std::fill(ws.est.data(), ws.est.data() + rows * f, 0.0f);
    gemm_acc(zd, rows, zw, dir.est_w.data(), f, ws.est.data(), num_threads_);
    add_bias_rows(ws.est.data(), dir.est_b.data(), rows, f);
    have_est = true;
  }
}

const FMatrix& InferenceEngine::predict_batch(
    const data::Window* const* windows, std::size_t batch,
    Workspace& ws) const {
  if (batch == 0 || batch > max_batch_) {
    throw std::invalid_argument(
        "InferenceEngine::predict_batch: batch must be in [1, max_batch]");
  }
  if (ws.pred.rows() != max_batch_ * n_ || ws.pred.cols() != horizon_ ||
      ws.xobs.size() != lookback_) {
    throw std::invalid_argument(
        "InferenceEngine::predict_batch: workspace from another engine");
  }
  const std::size_t rows = batch * n_;
  // Load: narrow each window's observations and masks into the row-stacked
  // f32 buffers and tabulate its per-step time-of-day slots.
  for (std::size_t b = 0; b < batch; ++b) {
    const data::Window& w = *windows[b];
    if (w.x_obs.size() != lookback_ || w.x_mask.size() != lookback_) {
      throw std::invalid_argument(
          "InferenceEngine::predict_batch: window lookback mismatch");
    }
    for (std::size_t t = 0; t < lookback_; ++t) {
      const Matrix& xo = w.x_obs[t];
      const Matrix& mk = w.x_mask[t];
      if (xo.rows() != n_ || xo.cols() != f_ || mk.rows() != n_ ||
          mk.cols() != f_) {
        throw std::invalid_argument(
            "InferenceEngine::predict_batch: window shape mismatch");
      }
      float* xdst = ws.xobs[t].data() + b * n_ * f_;
      float* mdst = ws.mask[t].data() + b * n_ * f_;
      const double* xsrc = xo.data();
      const double* msrc = mk.data();
      for (std::size_t i = 0; i < n_ * f_; ++i) {
        xdst[i] = static_cast<float>(xsrc[i]);
        mdst[i] = static_cast<float>(msrc[i]);
      }
      ws.slots[b * lookback_ + t] = (w.slot + t) % steps_per_day_;
    }
  }

  run_direction(fwd_, ws, batch, /*reverse=*/false, 0);
  if (bidirectional_) {
    run_direction(bwd_, ws, batch, /*reverse=*/true, gcn_dim_ + lstm_dim_);
  }

  std::fill(ws.pred.data(), ws.pred.data() + rows * horizon_, 0.0f);
  if (!attention_head_) {
    // pred = concat(z_0..z_{T-1}) · W + b, evaluated as Σ_t z_t · W_t with
    // W_t = rows [t·zw, (t+1)·zw) of the head weight — identical FMA order,
    // no (R x T·zw) concat buffer.
    for (std::size_t t = 0; t < lookback_; ++t) {
      gemm_acc(ws.zcat[t].data(), rows, z_width_,
               head_w_.data() + t * z_width_ * horizon_, horizon_,
               ws.pred.data(), num_threads_);
    }
    add_bias_rows(ws.pred.data(), head_b_.data(), rows, horizon_);
  } else {
    // scores[:, t] = z_t · w_a + b_a, then row-softmax over t, then
    // pred = (Σ_t α_t ⊙ z_t) · W + b.
    float* col = ws.cheb_p.data();  // free at head time; ≥ rows floats
    for (std::size_t t = 0; t < lookback_; ++t) {
      std::fill(col, col + rows, 0.0f);
      gemm_acc(ws.zcat[t].data(), rows, z_width_, attn_w_.data(), 1, col,
               num_threads_);
      const float ab = attn_b_.data()[0];
      for (std::size_t r = 0; r < rows; ++r) {
        ws.scores(r, t) = col[r] + ab;
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      float* srow = ws.scores.data() + r * lookback_;
      float mx = srow[0];
      for (std::size_t t = 1; t < lookback_; ++t) mx = std::max(mx, srow[t]);
      float sum = 0.0f;
      for (std::size_t t = 0; t < lookback_; ++t) {
        srow[t] = std::exp(srow[t] - mx);
        sum += srow[t];
      }
      for (std::size_t t = 0; t < lookback_; ++t) srow[t] /= sum;
    }
    std::fill(ws.mixed.data(), ws.mixed.data() + rows * z_width_, 0.0f);
    const simd::Kernels& kern = simd::active_kernels();
    for (std::size_t t = 0; t < lookback_; ++t) {
      for (std::size_t r = 0; r < rows; ++r) {
        kern.saxpy(ws.mixed.data() + r * z_width_, ws.scores(r, t),
                   ws.zcat[t].data() + r * z_width_, z_width_);
      }
    }
    gemm_acc(ws.mixed.data(), rows, z_width_, head_w_.data(), horizon_,
             ws.pred.data(), num_threads_);
    add_bias_rows(ws.pred.data(), head_b_.data(), rows, horizon_);
  }
  return ws.pred;
}

Matrix InferenceEngine::predict(const data::Window& w) {
  const data::Window* ptr = &w;
  const FMatrix& out = predict_batch(&ptr, 1, scratch_);
  Matrix res(n_, horizon_);
  const float* src = out.data();
  double* dst = res.data();
  for (std::size_t i = 0; i < n_ * horizon_; ++i) {
    dst[i] = static_cast<double>(src[i]);
  }
  return res;
}

}  // namespace rihgcn::core
