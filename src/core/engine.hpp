// Tape-free single-precision inference engine (DESIGN.md §14).
//
// Training runs double-precision reverse-mode autodiff; serving needs none
// of that. InferenceEngine COMPILES a trained RihgcnModel into a frozen f32
// execution plan:
//
//   * every weight matrix is narrowed once to FMatrix, every cached CSR
//     Laplacian once to FCsrMatrix (dense-fallback graphs keep a dense f32
//     Laplacian), and the HGCN interval-weight mixture is tabulated for all
//     time-of-day slots — the engine holds no reference to the model or the
//     graphs after construction, so a snapshot stays valid while the source
//     model retrains;
//   * the forward pass is a fixed schedule of simd::Kernels f32 GEMM / SpMM /
//     elementwise calls into preallocated Workspace buffers — zero tape
//     nodes, zero steady-state heap allocations;
//   * predict_batch() row-stacks B concurrent query windows into (B·N)-row
//     buffers so all weight GEMMs, recurrent-cell steps and elementwise ops
//     batch natively; Laplacian propagation uses a block-diagonal FCsrMatrix
//     prebuilt at max_batch (a row prefix serves any B ≤ max_batch) for
//     genuinely sparse graphs, or a per-block transposed dense GEMM
//     (outᵀ = xᵀ·L̃ᵀ — see GraphOp) for moderately dense ones. Every op is
//     row- or block-local with identical per-element accumulation order, so
//     a batched forward is BITWISE equal to B sequential batch-1 forwards
//     (tests/test_engine.cpp).
//
// Accuracy contract: f32 outputs are ULP-bounded against the f64 tape
// forward, not bitwise. The bound is checked per element as
//   |y32 − y64| ≤ C_model · eps_f32 · (1 + |y64|)
// with C_model = 1024 documented in DESIGN.md §14 (the per-kernel (k+2)·eps·Σ|a||b|
// bounds of §12 compose through the nonlinearities into this empirical
// whole-model form).
#pragma once

#include <cstddef>
#include <vector>

#include "core/rihgcn.hpp"
#include "data/windows.hpp"
#include "tensor/fmatrix.hpp"

namespace rihgcn::core {

class InferenceEngine {
 public:
  struct Options {
    /// Largest batch predict_batch() accepts; sizes the Workspace buffers
    /// and the block-diagonal batched Laplacians.
    std::size_t max_batch = 8;
    /// Intra-batch / intra-graph row-sharding of the f32 GEMM and SpMM
    /// panels (DESIGN.md §16). 0 = adaptive: dispatch to the global
    /// ThreadPool only when an op clears the ParallelTuning flop thresholds
    /// (the pre-§16 behaviour). 1 = always serial. K > 1 = always dispatch,
    /// row grain ceil(rows / K). Pure scheduling: every output row is
    /// computed whole inside one kernel call with a fixed accumulation
    /// order, so results are bitwise identical for every value.
    std::size_t num_threads = 0;
  };

  /// Compiles a frozen snapshot of `model` (which may keep training or be
  /// destroyed afterwards — the engine copies everything it needs).
  InferenceEngine(const RihgcnModel& model, Options options);
  explicit InferenceEngine(const RihgcnModel& model)
      : InferenceEngine(model, Options{}) {}
  virtual ~InferenceEngine() = default;

  /// Preallocated scratch for one in-flight forward. Not thread-safe:
  /// create one per thread via make_workspace(). All buffers are sized for
  /// max_batch at construction; predict_batch never grows them.
  class Workspace {
   public:
    /// Stacked f32 predictions of the last predict_batch call
    /// ((B·N) x horizon, rows of window b at [b·N, (b+1)·N)). Valid until
    /// the next predict_batch call with this workspace.
    [[nodiscard]] const FMatrix& predictions() const noexcept { return pred; }

   private:
    friend class InferenceEngine;
    // Row-stacked buffers, R = max_batch · N rows each.
    std::vector<FMatrix> xobs;   ///< per lookback step, R x F
    std::vector<FMatrix> mask;   ///< per lookback step, R x F
    FMatrix est;                 ///< R x F — current directional estimate
    FMatrix comp;                ///< R x F — complement X̃_t
    FMatrix cheb_a, cheb_b, cheb_p;  ///< R x max(F, gcn_dim) recurrence
    FMatrix lap_xt, lap_ot;      ///< max(F, gcn_dim) x N transposed-lap scratch
    FMatrix s, s2, gcn_tmp;      ///< R x gcn_dim
    FMatrix rnn_in;              ///< R x (gcn_dim + F)
    FMatrix gates, gates_h;      ///< R x 4H (GRU uses the 3H prefix)
    FMatrix h, c;                ///< R x H
    FMatrix zdir;                ///< R x (gcn_dim + H)
    std::vector<FMatrix> zcat;   ///< per step, R x z_width
    FMatrix scores;              ///< R x lookback (attention head)
    FMatrix mixed;               ///< R x z_width (attention head)
    FMatrix pred;                ///< R x horizon
    std::vector<std::size_t> slots;  ///< batch x lookback slot table
  };

  [[nodiscard]] Workspace make_workspace() const;

  /// Batched forward over `batch` windows (1 ≤ batch ≤ max_batch). Each
  /// window must have `lookback` steps of N x F observations/masks. Returns
  /// ws.predictions(); no heap allocation happens on this path. Virtual so
  /// fault-injecting test decorators (serve::FaultyEngine) can wrap the
  /// plan; the serving hot path pays one indirect call per FLUSH, not per
  /// request.
  virtual const FMatrix& predict_batch(const data::Window* const* windows,
                                       std::size_t batch, Workspace& ws) const;

  /// Convenience single-query forward through an internal workspace
  /// (allocates only the returned Matrix). Same numerics as a batch of 1.
  [[nodiscard]] Matrix predict(const data::Window& w);

  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_features() const noexcept { return f_; }
  [[nodiscard]] std::size_t lookback() const noexcept { return lookback_; }
  [[nodiscard]] std::size_t horizon() const noexcept { return horizon_; }
  [[nodiscard]] std::size_t steps_per_day() const noexcept {
    return steps_per_day_;
  }
  [[nodiscard]] std::size_t max_batch() const noexcept { return max_batch_; }

 protected:
  /// Mutable access to a workspace's prediction buffer for derived
  /// fault-injecting decorators (Workspace befriends only this class).
  [[nodiscard]] static FMatrix& workspace_pred(Workspace& ws) noexcept {
    return ws.pred;
  }

 private:
  /// ShardedEngine (core/sharded_engine.hpp) compiles one sub-engine per
  /// graph cluster through the private sub-graph constructor below.
  friend class ShardedEngine;

  /// Sub-graph compilation: same frozen weights as `model`, but the graph
  /// ops come from `sub_laps` (every Laplacian in CSR form, rows and columns
  /// restricted to one cluster's owned ∪ halo nodes) over `sub_n` nodes.
  /// Windows fed to predict_batch must then be sub_n x F — the caller
  /// (ShardedEngine) gathers them with data::take_rows.
  InferenceEngine(const RihgcnModel& model, Options options,
                  const HgcnBlock::SparseLaps* sub_laps, std::size_t sub_n);

  /// One graph's Laplacian, compiled into whichever apply form is cheapest
  /// (chosen once, per graph, at compile time):
  ///   * CSR SpMM (plus the block-diagonal batched form) for genuinely
  ///     sparse graphs — city-scale k-NN Laplacians at ~1% density;
  ///   * transposed dense GEMM (`lapT`, row-major L̃ᵀ) for everything else.
  ///     DTW temporal graphs at moderate N run 15–35% dense, where a CSR
  ///     apply over a width-F panel degenerates into gather-bound work.
  ///     Computing outᵀ = xᵀ·L̃ᵀ instead makes the inner loop N elements
  ///     wide regardless of F. Each output element still accumulates its
  ///     terms in ascending-k FMA order — the CSR sequence plus exact-zero
  ///     terms, which leave an FMA accumulator bitwise unchanged — so the
  ///     path choice stays inside the documented ULP bound and a batched
  ///     forward remains bitwise equal to sequential ones (block-local).
  struct GraphOp {
    bool sparse = false;   ///< CSR SpMM path
    bool dense_t = false;  ///< transposed dense GEMM path
    FCsrMatrix csr;
    FCsrMatrix csr_batch;  ///< block-diagonal, max_batch copies
    FMatrix lapT;          ///< n x n, lapT(j, i) = L̃(i, j)
  };
  /// One Chebyshev GCN's weights.
  struct GcnPlan {
    std::vector<FMatrix> theta;  ///< K matrices, in x out
    FMatrix bias;                ///< 1 x out
  };
  /// One HGCN block: a GCN per graph (geo + M temporal).
  struct HgcnPlan {
    GcnPlan geo;
    std::vector<GcnPlan> temporal;
    std::size_t in_dim = 0;
  };
  /// One direction's recurrent cell + estimator.
  struct DirPlan {
    FMatrix w_ih, w_hh, bias;  ///< gate layout [i|f|o|g] (LSTM) / [r|z|n] (GRU)
    FMatrix est_w, est_b;
  };

  void compile_graph_ops(const RihgcnModel& model);
  /// Graph ops from a cluster's sub-Laplacian cache (every graph must be
  /// CSR-covered; throws std::invalid_argument otherwise).
  void compile_subgraph_ops(const HgcnBlock::SparseLaps& laps);
  [[nodiscard]] static GcnPlan compile_gcn(
      const std::vector<ad::Parameter*>& params, std::size_t offset,
      std::size_t order);

  /// out = L · x per diagonal block (rows = batch · n_); lap_xt/lap_ot
  /// workspace scratch back the transposed-dense path.
  void apply_lap(const GraphOp& g, const float* x, float* out,
                 std::size_t batch, std::size_t width, Workspace& ws) const;
  /// out += cheb(gcn, x) for the whole stack; cheb_* workspace scratch.
  void run_gcn(const GcnPlan& gcn, const GraphOp& graph, const float* x,
               std::size_t in_dim, FMatrix& out, Workspace& ws,
               std::size_t batch) const;
  /// s = HGCN(x) (interval-weighted graph mixture + ReLU), per-window slots.
  void run_hgcn(const HgcnPlan& plan, const float* x, FMatrix& out,
                Workspace& ws, std::size_t batch, std::size_t step,
                bool layer2) const;
  /// One recurrent direction; fills ws.zcat[t] columns [col0, col0+p+q).
  void run_direction(const DirPlan& dir, Workspace& ws, std::size_t batch,
                     bool reverse, std::size_t col0) const;

  // ---- compiled plan -------------------------------------------------------
  std::size_t n_ = 0, f_ = 0;
  std::size_t lookback_ = 0, horizon_ = 0;
  std::size_t gcn_dim_ = 0, lstm_dim_ = 0, cheb_order_ = 0;
  std::size_t z_width_ = 0;
  std::size_t steps_per_day_ = 0;
  std::size_t max_batch_ = 0;
  std::size_t num_threads_ = 0;
  bool bidirectional_ = false;
  bool attention_head_ = false;
  nn::CellKind cell_ = nn::CellKind::kLstm;

  GraphOp geo_op_;
  std::vector<GraphOp> temporal_ops_;
  HgcnPlan hgcn1_;
  HgcnPlan hgcn2_;  ///< empty theta when the model has one HGCN layer
  bool has_hgcn2_ = false;
  DirPlan fwd_;
  DirPlan bwd_;
  FMatrix head_w_, head_b_;
  FMatrix attn_w_, attn_b_;
  /// interval_weights(slot) for every slot, row-major slot x M. Kept in
  /// double so the per-window "skip graph m when w ≤ 1e-8" rule matches the
  /// tape path exactly; narrowed to f32 only at the accumulation site.
  std::vector<double> interval_w_;

  Workspace scratch_;  ///< backs the convenience predict()
};

}  // namespace rihgcn::core
