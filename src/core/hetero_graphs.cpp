#include "core/hetero_graphs.hpp"

#include <cmath>
#include <stdexcept>

#include "timeseries/profile.hpp"

namespace rihgcn::core {

namespace {

/// Circular distance in hours from hour-of-day h to the interval [a, b)
/// (hours); 0 if h lies inside. b <= a denotes an interval wrapping past
/// midnight (circular partitions).
double hours_to_interval(double h, double a, double b) {
  const bool inside = a < b ? (h >= a && h < b) : (h >= a || h < b);
  if (inside) return 0.0;
  auto circ = [](double x, double y) {
    double d = std::abs(x - y);
    return std::min(d, 24.0 - d);
  };
  return std::min(circ(h, a), circ(h, b));
}

}  // namespace

HeterogeneousGraphs::HeterogeneousGraphs(const data::TrafficDataset& ds,
                                         std::size_t train_end,
                                         const HeteroGraphsConfig& config,
                                         Rng& rng)
    : geo_(graph::RoadGraph::from_distances(
          // Sparse mode never touches the dense pipeline; geo_ stays an
          // empty placeholder so no N x N matrix is built behind our back.
          config.knn > 0 ? Matrix() : ds.geo_distances, config.adjacency)),
      partition_slots_(config.partition_slots),
      steps_per_day_(ds.steps_per_day),
      weight_temperature_(config.weight_temperature),
      sparse_mode_(config.knn > 0) {
  if (train_end == 0 || train_end > ds.num_timesteps()) {
    throw std::invalid_argument("HeterogeneousGraphs: bad train_end");
  }
  if (config.partition_slots == 0 ||
      config.partition_slots > ds.steps_per_day) {
    throw std::invalid_argument("HeterogeneousGraphs: bad partition_slots");
  }

  if (sparse_mode_) {
    if (config.distance != ts::SeriesDistance::kDtw) {
      throw std::invalid_argument(
          "HeterogeneousGraphs: sparse mode supports DTW only");
    }
    num_nodes_sparse_ = ds.num_nodes();
    const std::size_t n = num_nodes_sparse_;
    ts::NeighborList nl;
    if (n > 0 && ds.geo_distances.rows() == n) {
      nl = graph::knn_from_distances(ds.geo_distances, config.knn);
    } else if (n > 0 && ds.coords.rows() == n) {
      // City-scale datasets ship coordinates but no N x N road-distance
      // matrix; Euclidean k-NN over coords is the spatial fallback.
      nl = graph::knn_from_coords(ds.coords, config.knn);
    } else {
      throw std::invalid_argument(
          "HeterogeneousGraphs: sparse mode needs geo_distances or coords");
    }
    geo_adj_csr_ = graph::gaussian_knn_adjacency(nl, config.adjacency);
    geo_slap_csr_ = graph::scaled_laplacian_csr(
        graph::normalized_laplacian_csr(geo_adj_csr_));
  }

  if (config.num_temporal_graphs == 0) {
    // Geographic-only degenerate mode (GCN-LSTM-I ablation): one trivial
    // interval so interval_weights() still has a well-defined answer.
    partition_.boundaries = {0, config.partition_slots};
    return;
  }

  // Historical profile of the training prefix only — no test leakage.
  std::vector<Matrix> values(ds.truth.begin(),
                             ds.truth.begin() + static_cast<std::ptrdiff_t>(train_end));
  std::vector<Matrix> masks(ds.mask.begin(),
                            ds.mask.begin() + static_cast<std::ptrdiff_t>(train_end));
  const ts::HistoricalProfile profile(values, masks, ds.steps_per_day,
                                      config.feature);

  // ---- Eq. 2 timeline partition at coarse (hourly) granularity ------------
  const Matrix day_profile = profile.day_profile(config.partition_slots);
  ts::PartitionConstraints constraints;
  // Paper: minimum 1 hour, maximum Q·T/M with Q=2 (12 h for M=4 on a 24 h
  // day), in coarse slot units.
  const double slots_per_hour =
      static_cast<double>(config.partition_slots) / 24.0;
  constraints.min_len =
      std::max<std::size_t>(1, static_cast<std::size_t>(slots_per_hour));
  constraints.max_len = std::max<std::size_t>(
      constraints.min_len,
      2 * config.partition_slots / config.num_temporal_graphs);
  constraints.eta = config.eta;
  constraints.gamma = config.gamma;
  const ts::TimelinePartitioner partitioner(day_profile, constraints);
  partition_ = config.circular_partition
                   ? partitioner.partition_circular(
                         config.num_temporal_graphs, rng)
                   : partitioner.partition(config.num_temporal_graphs, rng);

  // ---- One temporal graph per interval ----------------------------------
  if (!sparse_mode_) temporal_.reserve(partition_.num_intervals());
  const std::size_t fine_per_coarse =
      ds.steps_per_day / config.partition_slots;
  for (std::size_t m = 0; m < partition_.num_intervals(); ++m) {
    // slot_range yields b in (0, slots]; b <= a marks a wrapping interval,
    // which interval_series handles via its s1 <= s0 convention.
    const auto [c0, c1] = partition_.slot_range(m);
    const std::size_t f0 = c0 * fine_per_coarse;
    const std::size_t f1 = c1 * fine_per_coarse;
    const Matrix series = profile.interval_series(f0, f1);
    if (sparse_mode_) {
      // Pruned top-k DTW scan instead of the O(N²) pairwise matrix.
      ts::KnnOptions opts;
      opts.k = config.knn;
      opts.band = config.dtw_band;
      opts.prune = config.prune_dtw;
      ts::KnnStats st;
      const ts::NeighborList nl = ts::knn_series_graph(series, opts, &st);
      temporal_knn_stats_.pairs += st.pairs;
      temporal_knn_stats_.lb_kim_pruned += st.lb_kim_pruned;
      temporal_knn_stats_.lb_keogh_pruned += st.lb_keogh_pruned;
      temporal_knn_stats_.dtw_started += st.dtw_started;
      temporal_knn_stats_.dtw_abandoned += st.dtw_abandoned;
      const CsrMatrix adj =
          graph::gaussian_knn_adjacency(nl, config.adjacency);
      temporal_slap_csr_.push_back(graph::scaled_laplacian_csr(
          graph::normalized_laplacian_csr(adj)));
    } else {
      const Matrix dist =
          ts::pairwise_series_distance(series, config.distance);
      temporal_.push_back(
          graph::RoadGraph::from_distances(dist, config.adjacency));
    }
  }
}

const graph::RoadGraph& HeterogeneousGraphs::geographic() const {
  if (sparse_mode_) {
    throw std::logic_error(
        "HeterogeneousGraphs::geographic: dense accessor in sparse mode; use "
        "geographic_adjacency_csr / geographic_scaled_laplacian_csr");
  }
  return geo_;
}

const graph::RoadGraph& HeterogeneousGraphs::temporal(std::size_t m) const {
  if (sparse_mode_) {
    throw std::logic_error(
        "HeterogeneousGraphs::temporal: dense accessor in sparse mode; use "
        "temporal_scaled_laplacian_csr");
  }
  return temporal_.at(m);
}

const CsrMatrix& HeterogeneousGraphs::geographic_adjacency_csr() const {
  if (!sparse_mode_) {
    throw std::logic_error(
        "HeterogeneousGraphs::geographic_adjacency_csr: dense mode");
  }
  return geo_adj_csr_;
}

const CsrMatrix& HeterogeneousGraphs::geographic_scaled_laplacian_csr() const {
  if (!sparse_mode_) {
    throw std::logic_error(
        "HeterogeneousGraphs::geographic_scaled_laplacian_csr: dense mode");
  }
  return geo_slap_csr_;
}

const CsrMatrix& HeterogeneousGraphs::temporal_scaled_laplacian_csr(
    std::size_t m) const {
  if (!sparse_mode_) {
    throw std::logic_error(
        "HeterogeneousGraphs::temporal_scaled_laplacian_csr: dense mode");
  }
  return temporal_slap_csr_.at(m);
}

std::vector<double> HeterogeneousGraphs::interval_weights(
    std::size_t slot) const {
  const double hour = static_cast<double>(slot % steps_per_day_) * 24.0 /
                      static_cast<double>(steps_per_day_);
  const double hours_per_cslot = 24.0 / static_cast<double>(partition_slots_);
  std::vector<double> w(partition_.num_intervals());
  double denom = 0.0;
  for (std::size_t m = 0; m < w.size(); ++m) {
    const auto [c0, c1] = partition_.slot_range(m);
    const double a = static_cast<double>(c0) * hours_per_cslot;
    const double b = static_cast<double>(c1) * hours_per_cslot;
    const double d = hours_to_interval(hour, a, b);
    w[m] = std::exp(-d / weight_temperature_);
    denom += w[m];
  }
  for (double& x : w) x /= denom;
  return w;
}

}  // namespace rihgcn::core
