// Heterogeneous graph construction (paper §III-D).
//
// From the TRAINING prefix of a dataset this builds:
//   * the static geographic graph (Gaussian kernel over road distances,
//     Eq. 8), and
//   * M temporal graphs — the daily timeline is partitioned into M intervals
//     by maximizing inter-interval DTW distance (Eq. 2, via
//     ts::TimelinePartitioner on an hourly profile), then for each interval
//     the per-node historical-average series are compared pairwise with DTW
//     and turned into an adjacency with the same Eq. 8 kernel.
//
// At model time, a sample taken at time-of-day slot s mixes the M temporal
// GCN outputs with weights w_m(s) — a softmax over negative circular
// time distance between s and interval m (the paper specifies "based on the
// distance between this sample and the corresponding time interval" without
// a formula; this kernel is our documented concretization, ablated in
// bench_ablation).
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "graph/graph.hpp"
#include "tensor/rng.hpp"
#include "timeseries/distance.hpp"
#include "timeseries/partition.hpp"

namespace rihgcn::core {

struct HeteroGraphsConfig {
  /// M — number of temporal graphs (paper default 4; Fig. 4 sweeps it).
  /// 0 degrades HGCN to a plain geographic GCN (the GCN-LSTM-I ablation).
  std::size_t num_temporal_graphs = 4;
  /// Granularity of the Eq. 2 partition search (paper: 1 hour => 24 slots).
  std::size_t partition_slots = 24;
  /// Distance between node series inside an interval.
  ts::SeriesDistance distance = ts::SeriesDistance::kDtw;
  /// Eq. 8 adjacency options (shared by geographic and temporal graphs).
  graph::AdjacencyOptions adjacency{};
  /// Softmax temperature (hours) of the interval weighting kernel.
  double weight_temperature = 2.0;
  /// Which feature the temporal profiles are built from.
  std::size_t feature = 0;
  /// Partition constraints (η, γ per the paper; lengths derived from M).
  double eta = 0.10;
  double gamma = 0.5;
  /// Use the circular timeline partition (the paper's future-work idea: the
  /// first interval need not start at midnight). Slightly slower to build.
  bool circular_partition = false;

  // ---- City-scale k-NN sparse mode (DESIGN.md §13) ------------------------
  /// knn > 0 switches every graph to the k-NN CSR pipeline: no N x N matrix
  /// is ever materialized. The spatial graph comes from ds.geo_distances if
  /// present, else from Euclidean k-NN over ds.coords; temporal graphs come
  /// from ts::knn_series_graph over the interval profiles. The dense
  /// accessors (geographic()/temporal()) throw in this mode — consume
  /// *_csr() instead. knn = 0 (default) is the unchanged dense pipeline.
  std::size_t knn = 0;
  /// Sparse mode only: LB_Kim/LB_Keogh pruning + early-abandon for the
  /// temporal DTW scans. Results are bitwise identical on or off.
  bool prune_dtw = true;
  /// Sparse mode only: Sakoe-Chiba band for the temporal DTW scans
  /// (negative = unconstrained).
  std::ptrdiff_t dtw_band = -1;
};

class HeterogeneousGraphs {
 public:
  /// Build all graphs from timesteps [0, train_end) of `ds`.
  HeterogeneousGraphs(const data::TrafficDataset& ds, std::size_t train_end,
                      const HeteroGraphsConfig& config, Rng& rng);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return sparse_mode_ ? num_nodes_sparse_ : geo_.num_nodes();
  }
  [[nodiscard]] std::size_t num_temporal() const noexcept {
    return sparse_mode_ ? temporal_slap_csr_.size() : temporal_.size();
  }
  /// Dense accessors — throw std::logic_error in sparse mode (there is no
  /// dense graph to return; that is the point of the mode).
  [[nodiscard]] const graph::RoadGraph& geographic() const;
  [[nodiscard]] const graph::RoadGraph& temporal(std::size_t m) const;

  /// True when built with config.knn > 0 (CSR-only graphs).
  [[nodiscard]] bool sparse_mode() const noexcept { return sparse_mode_; }
  /// Sparse mode only: k-NN Gaussian adjacency / Chebyshev-rescaled
  /// Laplacians in CSR form. Throw std::logic_error in dense mode.
  [[nodiscard]] const CsrMatrix& geographic_adjacency_csr() const;
  [[nodiscard]] const CsrMatrix& geographic_scaled_laplacian_csr() const;
  [[nodiscard]] const CsrMatrix& temporal_scaled_laplacian_csr(
      std::size_t m) const;
  /// Sparse mode: DTW work counters summed over every temporal graph build
  /// (zeros in dense mode) — lets tests and benches assert pruning efficacy.
  [[nodiscard]] const ts::KnnStats& temporal_knn_stats() const noexcept {
    return temporal_knn_stats_;
  }
  [[nodiscard]] const ts::Partition& partition() const noexcept {
    return partition_;
  }

  /// w_m(slot) for a sample at fine time-of-day slot `slot`; size M, sums
  /// to 1. Intervals containing the slot get weight ~1 (zero distance).
  [[nodiscard]] std::vector<double> interval_weights(std::size_t slot) const;

  /// Fine slots per day of the source dataset (for slot -> hour conversion).
  [[nodiscard]] std::size_t steps_per_day() const noexcept {
    return steps_per_day_;
  }

 private:
  graph::RoadGraph geo_;
  std::vector<graph::RoadGraph> temporal_;
  ts::Partition partition_;  // over partition_slots
  std::size_t partition_slots_ = 24;
  std::size_t steps_per_day_ = 288;
  double weight_temperature_ = 2.0;
  // Sparse k-NN mode state (empty in dense mode).
  bool sparse_mode_ = false;
  std::size_t num_nodes_sparse_ = 0;
  CsrMatrix geo_adj_csr_;
  CsrMatrix geo_slap_csr_;
  std::vector<CsrMatrix> temporal_slap_csr_;
  ts::KnnStats temporal_knn_stats_;
};

}  // namespace rihgcn::core
