#include "core/model.hpp"

#include <algorithm>

namespace rihgcn::core {

namespace {

/// Denormalize every column of a node x horizon target matrix with the
/// target feature's statistics (feature 0 by library convention).
Matrix denorm_target(const Matrix& m, const data::ZScoreNormalizer* nz) {
  if (nz == nullptr) return m;
  Matrix out = m;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = nz->denormalize(out.data()[i], 0);
  }
  return out;
}

/// Denormalize an N x D matrix column-by-column with per-feature stats.
Matrix denorm_features(const Matrix& m, const data::ZScoreNormalizer* nz) {
  if (nz == nullptr) return m;
  Matrix out = m;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = nz->denormalize(out(r, c), c);
    }
  }
  return out;
}

}  // namespace

EvalResult evaluate_prediction(ForecastModel& model,
                               const data::WindowSampler& sampler,
                               const std::vector<std::size_t>& indices,
                               const data::ZScoreNormalizer* normalizer,
                               std::size_t horizon_prefix,
                               std::size_t max_windows) {
  metrics::ErrorAccumulator acc;
  const std::size_t horizon = sampler.horizon();
  const std::size_t k =
      horizon_prefix == 0 ? horizon : std::min(horizon_prefix, horizon);
  std::size_t used = 0;
  for (const std::size_t idx : indices) {
    if (max_windows != 0 && used >= max_windows) break;
    ++used;
    const data::Window w = sampler.make_window(idx);
    Matrix pred = model.predict(w);  // N x horizon
    // Targets are ground truth (synthetic data gives exact truth).
    Matrix truth(pred.rows(), horizon);
    for (std::size_t t = 0; t < horizon; ++t) truth.set_cols(t, w.y[t]);
    pred = denorm_target(pred, normalizer);
    truth = denorm_target(truth, normalizer);
    acc.add(pred.slice_cols(0, k), truth.slice_cols(0, k));
  }
  if (acc.empty()) return {-1.0, -1.0};
  return {acc.mae(), acc.rmse()};
}

EvalResult evaluate_imputation(ForecastModel& model,
                               const data::WindowSampler& sampler,
                               const std::vector<std::size_t>& indices,
                               const std::vector<Matrix>& holdout,
                               const data::ZScoreNormalizer* normalizer,
                               std::size_t max_windows, std::size_t stride) {
  metrics::ErrorAccumulator acc;
  if (holdout.size() != sampler.dataset().num_timesteps()) {
    throw std::invalid_argument(
        "evaluate_imputation: holdout must cover every timestep");
  }
  if (stride == 0) stride = 1;
  std::size_t used = 0;
  for (std::size_t pos = 0; pos < indices.size(); pos += stride) {
    if (max_windows != 0 && used >= max_windows) break;
    const std::size_t idx = indices[pos];
    const data::Window w = sampler.make_window(idx);
    const std::vector<Matrix> imputed = model.impute(w);
    if (imputed.empty()) return {-1.0, -1.0};
    ++used;
    for (std::size_t t = 0; t < imputed.size(); ++t) {
      const Matrix& weight = holdout.at(w.start + t);
      const Matrix pred = denorm_features(imputed[t], normalizer);
      const Matrix truth = denorm_features(w.x_truth[t], normalizer);
      acc.add(pred, truth, weight);
    }
  }
  if (acc.empty()) return {-1.0, -1.0};
  return {acc.mae(), acc.rmse()};
}

}  // namespace rihgcn::core
