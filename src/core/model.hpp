// The common interface every trainable forecaster implements (RIHGCN and all
// neural baselines), plus evaluation helpers shared by tests, examples and
// the bench harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "autodiff/tape.hpp"
#include "data/dataset.hpp"
#include "data/windows.hpp"
#include "metrics/metrics.hpp"

namespace rihgcn::core {

/// A model that predicts the target feature over the horizon from a
/// lookback window with missing values.
class ForecastModel {
 public:
  virtual ~ForecastModel() = default;
  ForecastModel() = default;
  ForecastModel(const ForecastModel&) = delete;
  ForecastModel& operator=(const ForecastModel&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Trainable parameters (empty for classical baselines wrapped in this
  /// interface).
  [[nodiscard]] virtual std::vector<ad::Parameter*> parameters() = 0;

  /// Build the full training loss for one window on the given tape.
  /// Returns a scalar Var suitable for Tape::backward().
  [[nodiscard]] virtual ad::Var training_loss(ad::Tape& tape,
                                              const data::Window& w) = 0;

  /// Predict the target feature: N x horizon matrix in the dataset's
  /// (normalized) units.
  [[nodiscard]] virtual Matrix predict(const data::Window& w) = 0;

  /// Reconstructed lookback values (complement matrices X̃_t), one N x D
  /// matrix per lookback step — used for imputation evaluation. Models with
  /// no imputation mechanism return an empty vector.
  [[nodiscard]] virtual std::vector<Matrix> impute(const data::Window& w) {
    (void)w;
    return {};
  }
};

/// Optional capability for partitioned (Cluster-GCN-style) training
/// (DESIGN.md §13): the model cuts its graph into C node clusters and
/// exposes a per-(window, cluster) training loss over each cluster's
/// sub-graph. Halo (1-hop boundary) nodes propagate features into the
/// cluster but carry zero loss weight, so every gradient belongs to exactly
/// one cluster. The trainer detects this interface with dynamic_cast when
/// TrainConfig::num_clusters > 1.
class ClusterTrainable {
 public:
  virtual ~ClusterTrainable() = default;

  /// Build the cluster decomposition: `num_clusters` clusters grown by a
  /// deterministic seeded partition. Called once before training; calling
  /// again replaces the decomposition. num_clusters <= 1 clears it.
  virtual void prepare_clusters(std::size_t num_clusters,
                                std::uint64_t seed) = 0;
  /// Clusters currently prepared (0 = full-graph mode).
  [[nodiscard]] virtual std::size_t num_clusters() const = 0;
  /// Training loss of one (window, cluster) mini-batch item: the model's
  /// full loss restricted to the cluster's owned nodes.
  [[nodiscard]] virtual ad::Var cluster_training_loss(ad::Tape& tape,
                                                      const data::Window& w,
                                                      std::size_t cluster) = 0;
};

/// Prediction metrics over a set of windows. If `normalizer` is non-null
/// the errors are computed in original units (the paper reports mph /
/// seconds). `horizon_prefix` restricts to the first k horizon steps
/// (0 = full horizon) — this is how the "15 min / 30 min / ..." columns of
/// Tables I-II are produced. Errors are measured against ground truth.
struct EvalResult {
  double mae = 0.0;
  double rmse = 0.0;
};

[[nodiscard]] EvalResult evaluate_prediction(
    ForecastModel& model, const data::WindowSampler& sampler,
    const std::vector<std::size_t>& indices,
    const data::ZScoreNormalizer* normalizer, std::size_t horizon_prefix = 0,
    std::size_t max_windows = 0);

/// Imputation metrics on held-out entries. `holdout[t]` marks entries that
/// were observed in reality but hidden from the model
/// (data::make_imputation_holdout). Models that cannot impute yield
/// an empty optional-like result: mae/rmse = -1.
[[nodiscard]] EvalResult evaluate_imputation(
    ForecastModel& model, const data::WindowSampler& sampler,
    const std::vector<std::size_t>& indices,
    const std::vector<Matrix>& holdout,
    const data::ZScoreNormalizer* normalizer, std::size_t max_windows = 0,
    std::size_t stride = 1);

}  // namespace rihgcn::core
