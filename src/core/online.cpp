#include "core/online.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rihgcn::core {

OnlineForecaster::OnlineForecaster(ForecastModel& model,
                                   const data::ZScoreNormalizer& normalizer,
                                   std::size_t num_nodes,
                                   std::size_t num_features,
                                   std::size_t lookback, std::size_t horizon,
                                   std::size_t steps_per_day,
                                   std::size_t start_slot)
    : model_(model),
      normalizer_(normalizer),
      num_nodes_(num_nodes),
      num_features_(num_features),
      lookback_(lookback),
      horizon_(horizon),
      steps_per_day_(steps_per_day),
      start_slot_(start_slot % std::max<std::size_t>(1, steps_per_day)) {
  if (num_nodes == 0 || num_features == 0 || lookback == 0 || horizon == 0 ||
      steps_per_day == 0) {
    throw std::invalid_argument("OnlineForecaster: zero dimension");
  }
}

void OnlineForecaster::push_reading(const Matrix& values, const Matrix& mask) {
  if (values.rows() != num_nodes_ || values.cols() != num_features_ ||
      !values.same_shape(mask)) {
    throw ShapeError("OnlineForecaster::push_reading: shape mismatch");
  }
  Matrix normalized(num_nodes_, num_features_);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    for (std::size_t f = 0; f < num_features_; ++f) {
      normalized(i, f) = mask(i, f) > 0.5
                             ? normalizer_.normalize_value(values(i, f), f)
                             : 0.0;
    }
  }
  values_.push_back(std::move(normalized));
  masks_.push_back(mask);
  if (values_.size() > lookback_) {
    values_.pop_front();
    masks_.pop_front();
  }
  ++seen_;
}

void OnlineForecaster::push_gap() {
  push_reading(Matrix(num_nodes_, num_features_),
               Matrix(num_nodes_, num_features_));
}

data::Window OnlineForecaster::make_window() const {
  if (seen_ == 0) {
    throw std::logic_error("OnlineForecaster: no readings pushed yet");
  }
  data::Window w;
  // Warm-up: left-pad with fully-missing steps so the window always has
  // `lookback` entries — the imputation path fills them.
  const std::size_t pad = lookback_ - values_.size();
  // The first buffered reading carries slot (start + seen - size); the
  // padded window starts `pad` steps earlier.
  const std::size_t first_slot =
      (start_slot_ + seen_ - values_.size() + steps_per_day_ * lookback_ -
       pad) %
      steps_per_day_;
  w.slot = first_slot;
  w.start = 0;
  for (std::size_t k = 0; k < pad; ++k) {
    w.x_obs.emplace_back(num_nodes_, num_features_);
    w.x_mask.emplace_back(num_nodes_, num_features_);
    w.x_truth.emplace_back(num_nodes_, num_features_);
  }
  for (std::size_t k = 0; k < values_.size(); ++k) {
    w.x_obs.push_back(values_[k]);
    w.x_mask.push_back(masks_[k]);
    w.x_truth.push_back(values_[k]);  // truth unknown online; mirror obs
  }
  // Targets are unknown online; models only read y/y_mask in training_loss.
  for (std::size_t k = 0; k < horizon_; ++k) {
    w.y.emplace_back(num_nodes_, 1);
    w.y_mask.emplace_back(num_nodes_, 1);
  }
  return w;
}

Matrix OnlineForecaster::forecast() {
  const data::Window w = make_window();
  Matrix pred = model_.predict(w);
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    for (std::size_t h = 0; h < pred.cols(); ++h) {
      pred(i, h) = normalizer_.denormalize(pred(i, h), 0);
    }
  }
  return pred;
}

std::vector<Matrix> OnlineForecaster::completed_history() {
  const data::Window w = make_window();
  std::vector<Matrix> filled = model_.impute(w);
  // Drop the warm-up padding; denormalize the real part.
  const std::size_t pad = lookback_ - values_.size();
  std::vector<Matrix> out;
  for (std::size_t k = pad; k < filled.size(); ++k) {
    Matrix m = filled[k];
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t f = 0; f < m.cols(); ++f) {
        m(i, f) = normalizer_.denormalize(m(i, f), f);
      }
    }
    out.push_back(std::move(m));
  }
  return out;
}

double OnlineForecaster::buffer_coverage() const {
  if (masks_.empty()) return 0.0;
  double observed = 0.0, total = 0.0;
  for (const Matrix& m : masks_) {
    observed += m.sum();
    total += static_cast<double>(m.size());
  }
  return observed / total;
}

std::string model_summary(ForecastModel& model) {
  std::ostringstream os;
  os << "Model: " << model.name() << "\n";
  os << std::left << std::setw(28) << "parameter" << std::setw(12) << "shape"
     << std::right << std::setw(10) << "count" << "\n";
  os << std::string(50, '-') << "\n";
  std::size_t total = 0;
  for (const ad::Parameter* p : model.parameters()) {
    std::ostringstream shape;
    shape << p->value().rows() << "x" << p->value().cols();
    os << std::left << std::setw(28)
       << (p->name().empty() ? "<unnamed>" : p->name()) << std::setw(12)
       << shape.str() << std::right << std::setw(10) << p->size() << "\n";
    total += p->size();
  }
  os << std::string(50, '-') << "\n";
  os << std::left << std::setw(40) << "total" << std::right << std::setw(10)
     << total << "\n";
  return os.str();
}

}  // namespace rihgcn::core
