#include "core/online.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rihgcn::core {

OnlineForecaster::OnlineForecaster(ForecastModel& model,
                                   const data::ZScoreNormalizer& normalizer,
                                   std::size_t num_nodes,
                                   std::size_t num_features,
                                   std::size_t lookback, std::size_t horizon,
                                   std::size_t steps_per_day,
                                   std::size_t start_slot)
    : model_(model),
      normalizer_(normalizer),
      num_nodes_(num_nodes),
      num_features_(num_features),
      lookback_(lookback),
      horizon_(horizon),
      steps_per_day_(steps_per_day),
      start_slot_(start_slot % std::max<std::size_t>(1, steps_per_day)),
      stuck_detector_(num_nodes, /*threshold=*/12) {
  if (num_nodes == 0 || num_features == 0 || lookback == 0 || horizon == 0 ||
      steps_per_day == 0) {
    throw std::invalid_argument("OnlineForecaster: zero dimension");
  }
}

void OnlineForecaster::push_reading(const Matrix& values, const Matrix& mask) {
  if (values.rows() != num_nodes_ || values.cols() != num_features_ ||
      !values.same_shape(mask)) {
    throw ShapeError("OnlineForecaster::push_reading: shape mismatch");
  }
  // Sanitize on ingest: a live feed can carry NaN/Inf where a well-behaved
  // one would report a gap, and mask bits arrive as arbitrary doubles.
  // Corrupt entries are demoted to missing — the imputation machinery then
  // treats them exactly like any other gap — and never stored. Then demote
  // stuck sensors (normalization is affine and injective, so run-length
  // equality on normalized values matches the original-unit semantics).
  // Both steps are the shared core/robust primitives ForecastServer uses.
  Matrix normalized(num_nodes_, num_features_);
  Matrix clean_mask(num_nodes_, num_features_);
  const SanitizeCounts counts =
      sanitize_reading(values, mask, normalizer_, normalized, clean_mask);
  sanitized_entries_ += counts.sanitized_entries;
  coerced_mask_entries_ += counts.coerced_mask_entries;
  stuck_demotions_ += stuck_detector_.observe_and_demote(normalized,
                                                         clean_mask);
  values_.push_back(std::move(normalized));
  masks_.push_back(std::move(clean_mask));
  if (values_.size() > lookback_) {
    values_.pop_front();
    masks_.pop_front();
  }
  ++seen_;
  memo_valid_ = false;  // the window changed; push_gap routes through here too
}

void OnlineForecaster::push_gap() {
  push_reading(Matrix(num_nodes_, num_features_),
               Matrix(num_nodes_, num_features_));
}

data::Window OnlineForecaster::make_window() const {
  if (seen_ == 0) {
    throw std::logic_error("OnlineForecaster: no readings pushed yet");
  }
  data::Window w;
  // Warm-up: left-pad with fully-missing steps so the window always has
  // `lookback` entries — the imputation path fills them.
  const std::size_t pad = lookback_ - values_.size();
  // The first buffered reading carries slot (start + seen - size); the
  // padded window starts `pad` steps earlier.
  const std::size_t first_slot =
      (start_slot_ + seen_ - values_.size() + steps_per_day_ * lookback_ -
       pad) %
      steps_per_day_;
  w.slot = first_slot;
  w.start = 0;
  for (std::size_t k = 0; k < pad; ++k) {
    w.x_obs.emplace_back(num_nodes_, num_features_);
    w.x_mask.emplace_back(num_nodes_, num_features_);
    w.x_truth.emplace_back(num_nodes_, num_features_);
  }
  for (std::size_t k = 0; k < values_.size(); ++k) {
    w.x_obs.push_back(values_[k]);
    w.x_mask.push_back(masks_[k]);
    w.x_truth.push_back(values_[k]);  // truth unknown online; mirror obs
  }
  // Targets are unknown online; models only read y/y_mask in training_loss.
  for (std::size_t k = 0; k < horizon_; ++k) {
    w.y.emplace_back(num_nodes_, 1);
    w.y_mask.emplace_back(num_nodes_, 1);
  }
  return w;
}

Matrix OnlineForecaster::robust_predict(const data::Window& w) {
  Matrix pred;
  bool primary_ok = false;
  try {
    pred = model_.predict(w);
    primary_ok = pred.rows() == num_nodes_ && pred.cols() == horizon_ &&
                 !pred.has_non_finite();
  } catch (const std::exception&) {
    // A throwing primary with no fallback is unrecoverable — surface it.
    if (fallback_ == nullptr) throw;
  }
  if (primary_ok) {
    ++model_forecasts_;
    return pred;
  }
  ++fallback_forecasts_;
  if (fallback_ != nullptr) {
    try {
      Matrix fb = fallback_->predict(w);
      if (fb.rows() == num_nodes_ && fb.cols() == horizon_) {
        pred = std::move(fb);
      }
    } catch (const std::exception&) {
      // Both models failed; fall through to the scrubbed primary output
      // (or zeros if the primary threw too).
    }
  }
  if (pred.rows() != num_nodes_ || pred.cols() != horizon_) {
    pred = Matrix(num_nodes_, horizon_);  // zeros = historical mean
  }
  // Normalized-space historical mean — the shared scrub semantics.
  scrubbed_outputs_ += scrub_non_finite(pred);
  return pred;
}

Matrix OnlineForecaster::forecast() {
  if (memo_valid_) {
    ++memoized_forecasts_;
    return memo_forecast_;
  }
  const data::Window w = make_window();
  // A throw below (no-readings, unrecoverable primary) leaves memo_valid_
  // false — failures are never cached.
  Matrix pred = robust_predict(w);
  for (std::size_t i = 0; i < pred.rows(); ++i) {
    for (std::size_t h = 0; h < pred.cols(); ++h) {
      pred(i, h) = normalizer_.denormalize(pred(i, h), 0);
    }
  }
  memo_forecast_ = pred;
  memo_valid_ = true;
  return pred;
}

std::vector<Matrix> OnlineForecaster::completed_history() {
  const data::Window w = make_window();
  std::vector<Matrix> filled = model_.impute(w);
  // Drop the warm-up padding; scrub and denormalize the real part.
  const std::size_t pad = lookback_ - values_.size();
  std::vector<Matrix> out;
  for (std::size_t k = pad; k < filled.size(); ++k) {
    Matrix m = filled[k];
    scrubbed_outputs_ += scrub_non_finite(m);
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t f = 0; f < m.cols(); ++f) {
        m(i, f) = normalizer_.denormalize(m(i, f), f);
      }
    }
    out.push_back(std::move(m));
  }
  return out;
}

HealthReport OnlineForecaster::health() const {
  HealthReport h;
  h.buffer_coverage = buffer_coverage();
  h.readings_seen = seen_;
  h.sanitized_entries = sanitized_entries_;
  h.coerced_mask_entries = coerced_mask_entries_;
  h.stuck_demotions = stuck_demotions_;
  h.model_forecasts = model_forecasts_;
  h.fallback_forecasts = fallback_forecasts_;
  h.memoized_forecasts = memoized_forecasts_;
  h.scrubbed_outputs = scrubbed_outputs_;
  // Suspects: sensors currently flagged stuck, plus sensors dead (zero
  // observed entries) across a completely full buffer.
  h.suspect_sensors = find_suspect_sensors(
      stuck_detector_.flags(), masks_, num_nodes_,
      /*buffer_full=*/values_.size() == lookback_);
  return h;
}

double OnlineForecaster::buffer_coverage() const {
  if (masks_.empty()) return 0.0;
  double observed = 0.0, total = 0.0;
  for (const Matrix& m : masks_) {
    observed += m.sum();
    total += static_cast<double>(m.size());
  }
  return observed / total;
}

std::string model_summary(ForecastModel& model) {
  std::ostringstream os;
  os << "Model: " << model.name() << "\n";
  os << std::left << std::setw(28) << "parameter" << std::setw(12) << "shape"
     << std::right << std::setw(10) << "count" << "\n";
  os << std::string(50, '-') << "\n";
  std::size_t total = 0;
  for (const ad::Parameter* p : model.parameters()) {
    std::ostringstream shape;
    shape << p->value().rows() << "x" << p->value().cols();
    os << std::left << std::setw(28)
       << (p->name().empty() ? "<unnamed>" : p->name()) << std::setw(12)
       << shape.str() << std::right << std::setw(10) << p->size() << "\n";
    total += p->size();
  }
  os << std::string(50, '-') << "\n";
  os << std::left << std::setw(40) << "total" << std::right << std::setw(10)
     << total << "\n";
  return os.str();
}

}  // namespace rihgcn::core
