// Online forecasting service — the deployment wrapper the paper's abstract
// promises ("the potential to be deployed into real-world traffic
// prediction systems").
//
// A trained ForecastModel consumes fixed-length windows of normalized data;
// a live system instead receives a stream of partial sensor readings in
// ORIGINAL units and wants forecasts on demand. OnlineForecaster bridges
// the two:
//   * maintains a rolling buffer of the last `lookback` readings + masks,
//   * normalizes inputs with the training-time ZScoreNormalizer,
//   * pads the warm-up phase (fewer than `lookback` readings so far) with
//     fully-missing timesteps — exactly what the recurrent imputation
//     machinery was built to handle,
//   * returns forecasts and completed (imputed) recent history in original
//     units.
//
// The wrapper never mutates the model; it is cheap to create per stream.
//
// Graceful degradation (DESIGN.md §11): ingest sanitizes the feed —
// non-finite readings are demoted to missing via the mask (exactly what the
// recurrent imputation machinery was built for) and out-of-{0,1} mask
// entries are coerced; a sliding-window detector flags sensors stuck on one
// value (and demotes their readings) or dead across a full buffer; and
// forecast() falls back to an optional secondary model (typically
// baselines::HistoricalAverageModel) whenever the primary throws or emits
// non-finite output, scrubbing any remaining non-finite entries to the
// historical mean — a forecast is never non-finite. health() reports all of
// it.
#pragma once

#include <cstddef>
#include <deque>

#include "core/model.hpp"
#include "core/robust.hpp"
#include "data/dataset.hpp"

namespace rihgcn::core {

class OnlineForecaster {
 public:
  /// `model` and `normalizer` must outlive the forecaster. `steps_per_day`
  /// and `start_slot` anchor the time-of-day used by HGCN interval weights.
  OnlineForecaster(ForecastModel& model,
                   const data::ZScoreNormalizer& normalizer,
                   std::size_t num_nodes, std::size_t num_features,
                   std::size_t lookback, std::size_t horizon,
                   std::size_t steps_per_day, std::size_t start_slot = 0);

  /// Optional fallback forecaster (e.g. baselines::HistoricalAverageModel
  /// built on the same normalized data) used when the primary model throws
  /// or produces non-finite output. Must outlive the forecaster; nullptr
  /// disables model fallback (non-finite outputs are then scrubbed to the
  /// historical mean entry-wise).
  void set_fallback(ForecastModel* fallback) noexcept {
    fallback_ = fallback;
    memo_valid_ = false;  // the robust path may now resolve differently
  }
  /// A sensor whose target-feature value repeats exactly this many
  /// consecutive observed readings is flagged stuck and its readings are
  /// demoted to missing until the value moves again. 0 disables detection.
  void set_stuck_threshold(std::size_t readings) noexcept {
    stuck_detector_.set_threshold(readings);
    memo_valid_ = false;  // future demotions aside, keep semantics simple
  }

  /// Ingest one reading: values in ORIGINAL units; mask flags which entries
  /// are real (same shapes: num_nodes x num_features). Advances the clock
  /// by one slot. Non-finite values and malformed mask entries are
  /// sanitized, never stored.
  void push_reading(const Matrix& values, const Matrix& mask);
  /// Ingest a timestep with no data at all (sensor outage, gap in feed).
  void push_gap();

  /// Forecast of the target feature for the next `horizon` steps, in
  /// ORIGINAL units (num_nodes x horizon). Valid as soon as at least one
  /// reading has been pushed. Guaranteed finite: falls back / scrubs on a
  /// non-finite primary output (see class comment).
  ///
  /// Memoized: repeated calls with no ingest in between return a cached
  /// copy without touching the model (health().memoized_forecasts counts
  /// them). Any ingest — push_reading or push_gap — invalidates the cache,
  /// as do set_fallback and set_stuck_threshold. A throwing forecast caches
  /// nothing.
  [[nodiscard]] Matrix forecast();

  /// Serving health: coverage, suspect sensors, sanitize/fallback counters.
  [[nodiscard]] HealthReport health() const;

  /// The model's completed view of the buffered lookback (original units),
  /// one num_nodes x num_features matrix per buffered step. Empty if the
  /// model cannot impute.
  [[nodiscard]] std::vector<Matrix> completed_history();

  [[nodiscard]] std::size_t readings_seen() const noexcept { return seen_; }
  /// Fraction of entries in the current buffer that are real observations.
  [[nodiscard]] double buffer_coverage() const;
  /// Time-of-day slot the NEXT reading will be stamped with.
  [[nodiscard]] std::size_t next_slot() const noexcept {
    return (start_slot_ + seen_) % steps_per_day_;
  }

 private:
  [[nodiscard]] data::Window make_window() const;
  /// Run the primary model (fallback on throw / non-finite output), then
  /// scrub: any entry still non-finite becomes 0 in normalized space (the
  /// historical mean after denormalization). Returns the normalized
  /// num_nodes x horizon forecast.
  [[nodiscard]] Matrix robust_predict(const data::Window& w);

  ForecastModel& model_;
  const data::ZScoreNormalizer& normalizer_;
  ForecastModel* fallback_ = nullptr;
  std::size_t num_nodes_;
  std::size_t num_features_;
  std::size_t lookback_;
  std::size_t horizon_;
  std::size_t steps_per_day_;
  std::size_t start_slot_;
  std::size_t seen_ = 0;
  std::deque<Matrix> values_;  // normalized, observed-masked
  std::deque<Matrix> masks_;

  // ---- Robustness state ----------------------------------------------------
  // Sanitization, stuck detection and scrubbing are the SHARED primitives of
  // core/robust.{hpp,cpp} — serve::ForecastServer degrades identically.
  StuckSensorDetector stuck_detector_;
  std::size_t sanitized_entries_ = 0;
  std::size_t coerced_mask_entries_ = 0;
  std::size_t stuck_demotions_ = 0;
  std::size_t model_forecasts_ = 0;
  std::size_t fallback_forecasts_ = 0;
  std::size_t scrubbed_outputs_ = 0;

  // ---- forecast memoization ------------------------------------------------
  bool memo_valid_ = false;
  Matrix memo_forecast_;  ///< original units; valid iff memo_valid_
  std::size_t memoized_forecasts_ = 0;
};

/// Human-readable parameter inventory of a model (name, shape, count),
/// ending with the total — the "model summary" every DL framework grows.
[[nodiscard]] std::string model_summary(ForecastModel& model);

}  // namespace rihgcn::core
