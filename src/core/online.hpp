// Online forecasting service — the deployment wrapper the paper's abstract
// promises ("the potential to be deployed into real-world traffic
// prediction systems").
//
// A trained ForecastModel consumes fixed-length windows of normalized data;
// a live system instead receives a stream of partial sensor readings in
// ORIGINAL units and wants forecasts on demand. OnlineForecaster bridges
// the two:
//   * maintains a rolling buffer of the last `lookback` readings + masks,
//   * normalizes inputs with the training-time ZScoreNormalizer,
//   * pads the warm-up phase (fewer than `lookback` readings so far) with
//     fully-missing timesteps — exactly what the recurrent imputation
//     machinery was built to handle,
//   * returns forecasts and completed (imputed) recent history in original
//     units.
//
// The wrapper never mutates the model; it is cheap to create per stream.
#pragma once

#include <cstddef>
#include <deque>

#include "core/model.hpp"
#include "data/dataset.hpp"

namespace rihgcn::core {

class OnlineForecaster {
 public:
  /// `model` and `normalizer` must outlive the forecaster. `steps_per_day`
  /// and `start_slot` anchor the time-of-day used by HGCN interval weights.
  OnlineForecaster(ForecastModel& model,
                   const data::ZScoreNormalizer& normalizer,
                   std::size_t num_nodes, std::size_t num_features,
                   std::size_t lookback, std::size_t horizon,
                   std::size_t steps_per_day, std::size_t start_slot = 0);

  /// Ingest one reading: values in ORIGINAL units; mask flags which entries
  /// are real (same shapes: num_nodes x num_features). Advances the clock
  /// by one slot.
  void push_reading(const Matrix& values, const Matrix& mask);
  /// Ingest a timestep with no data at all (sensor outage, gap in feed).
  void push_gap();

  /// Forecast of the target feature for the next `horizon` steps, in
  /// ORIGINAL units (num_nodes x horizon). Valid as soon as at least one
  /// reading has been pushed.
  [[nodiscard]] Matrix forecast();

  /// The model's completed view of the buffered lookback (original units),
  /// one num_nodes x num_features matrix per buffered step. Empty if the
  /// model cannot impute.
  [[nodiscard]] std::vector<Matrix> completed_history();

  [[nodiscard]] std::size_t readings_seen() const noexcept { return seen_; }
  /// Fraction of entries in the current buffer that are real observations.
  [[nodiscard]] double buffer_coverage() const;
  /// Time-of-day slot the NEXT reading will be stamped with.
  [[nodiscard]] std::size_t next_slot() const noexcept {
    return (start_slot_ + seen_) % steps_per_day_;
  }

 private:
  [[nodiscard]] data::Window make_window() const;

  ForecastModel& model_;
  const data::ZScoreNormalizer& normalizer_;
  std::size_t num_nodes_;
  std::size_t num_features_;
  std::size_t lookback_;
  std::size_t horizon_;
  std::size_t steps_per_day_;
  std::size_t start_slot_;
  std::size_t seen_ = 0;
  std::deque<Matrix> values_;  // normalized, observed-masked
  std::deque<Matrix> masks_;
};

/// Human-readable parameter inventory of a model (name, shape, count),
/// ending with the total — the "model summary" every DL framework grows.
[[nodiscard]] std::string model_summary(ForecastModel& model);

}  // namespace rihgcn::core
