#include "core/rihgcn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "graph/cluster.hpp"

namespace rihgcn::core {

using ad::Tape;
using ad::Var;

// ---- HgcnBlock -------------------------------------------------------------

HgcnBlock::HgcnBlock(const HeterogeneousGraphs& graphs, std::size_t in_dim,
                     std::size_t out_dim, std::size_t cheb_order, Rng& rng)
    : graphs_(graphs),
      out_dim_(out_dim),
      geo_layer_(in_dim, out_dim, cheb_order, rng, "hgcn.geo") {
  temporal_layers_.reserve(graphs.num_temporal());
  for (std::size_t m = 0; m < graphs.num_temporal(); ++m) {
    temporal_layers_.emplace_back(in_dim, out_dim, cheb_order, rng,
                                  "hgcn.temporal" + std::to_string(m));
  }
}

HgcnBlock::LapVars HgcnBlock::make_lap_vars(Tape& tape) const {
  LapVars laps;
  laps.geo = tape.constant(graphs_.geographic().scaled_laplacian());
  laps.temporal.reserve(graphs_.num_temporal());
  for (std::size_t m = 0; m < graphs_.num_temporal(); ++m) {
    laps.temporal.push_back(
        tape.constant(graphs_.temporal(m).scaled_laplacian()));
  }
  return laps;
}

HgcnBlock::SparseLaps HgcnBlock::make_sparse_laps(double tol,
                                                  double max_density) const {
  if (graphs_.sparse_mode()) {
    // Sparse-mode graphs only exist as CSR; the density fallback has no
    // dense Laplacian to fall back to, so every graph is covered.
    SparseLaps sparse;
    sparse.geo = graphs_.geographic_scaled_laplacian_csr();
    sparse.temporal.reserve(graphs_.num_temporal());
    for (std::size_t m = 0; m < graphs_.num_temporal(); ++m) {
      sparse.temporal.emplace_back(graphs_.temporal_scaled_laplacian_csr(m));
    }
    return sparse;
  }
  auto build = [tol, max_density](const Matrix& lap) -> std::optional<CsrMatrix> {
    CsrMatrix csr = CsrMatrix::from_dense(lap, tol);
    if (csr.density() > max_density) return std::nullopt;  // dense fallback
    return csr;
  };
  SparseLaps sparse;
  sparse.geo = build(graphs_.geographic().scaled_laplacian());
  sparse.temporal.reserve(graphs_.num_temporal());
  for (std::size_t m = 0; m < graphs_.num_temporal(); ++m) {
    sparse.temporal.push_back(build(graphs_.temporal(m).scaled_laplacian()));
  }
  return sparse;
}

HgcnBlock::LapVars HgcnBlock::make_lap_vars(Tape& tape,
                                            const SparseLaps& sparse) const {
  LapVars laps;
  if (!sparse.geo) {
    laps.geo = tape.constant(graphs_.geographic().scaled_laplacian());
  }
  laps.temporal.resize(graphs_.num_temporal());
  for (std::size_t m = 0; m < graphs_.num_temporal(); ++m) {
    if (!sparse.temporal[m]) {
      laps.temporal[m] = tape.constant(graphs_.temporal(m).scaled_laplacian());
    }
  }
  return laps;
}

Var HgcnBlock::forward(Tape& tape, Var x, std::size_t slot) {
  return forward(tape, x, slot, make_lap_vars(tape));
}

Var HgcnBlock::forward(Tape& tape, Var x, std::size_t slot,
                       const LapVars& laps) {
  return forward(tape, x, slot, laps, nullptr);
}

Var HgcnBlock::forward(Tape& tape, Var x, std::size_t slot,
                       const LapVars& laps, const SparseLaps* sparse) {
  Var acc = sparse && sparse->geo
                ? geo_layer_.forward(tape, x, *sparse->geo)
                : geo_layer_.forward(tape, x, laps.geo);
  const std::vector<double> w = graphs_.interval_weights(slot);
  for (std::size_t m = 0; m < temporal_layers_.size(); ++m) {
    if (w[m] <= 1e-8) continue;  // negligible mixture weight: skip the GCN
    Var out = sparse && sparse->temporal[m]
                  ? temporal_layers_[m].forward(tape, x, *sparse->temporal[m])
                  : temporal_layers_[m].forward(tape, x, laps.temporal[m]);
    acc = tape.add(acc, tape.scale(out, w[m]));
  }
  return tape.relu(acc);
}

std::vector<ad::Parameter*> HgcnBlock::parameters() {
  std::vector<ad::Parameter*> out = geo_layer_.parameters();
  for (auto& layer : temporal_layers_) {
    for (ad::Parameter* p : layer.parameters()) out.push_back(p);
  }
  return out;
}

// ---- RihgcnModel ----------------------------------------------------------

namespace {

std::size_t z_width(const RihgcnConfig& c) {
  const std::size_t one = c.gcn_dim + c.lstm_dim;
  return c.bidirectional ? 2 * one : one;
}

std::size_t head_in_width(const RihgcnConfig& c) {
  return c.head == RihgcnConfig::Head::kConcat ? c.lookback * z_width(c)
                                               : z_width(c);
}

}  // namespace

RihgcnModel::RihgcnModel(const HeterogeneousGraphs& graphs,
                         std::size_t num_nodes, std::size_t num_features,
                         const RihgcnConfig& config)
    : graphs_(graphs),
      config_(config),
      num_features_(num_features),
      init_rng_(config.seed),
      hgcn_(graphs, num_features, config.gcn_dim, config.cheb_order, init_rng_),
      hgcn2_(config.hgcn_layers >= 2
                 ? std::make_unique<HgcnBlock>(graphs, config.gcn_dim,
                                               config.gcn_dim,
                                               config.cheb_order, init_rng_)
                 : nullptr),
      rnn_fwd_(nn::make_recurrent_cell(config.cell,
                                       config.gcn_dim + num_features,
                                       config.lstm_dim, init_rng_,
                                       "lstm_fwd")),
      rnn_bwd_(nn::make_recurrent_cell(config.cell,
                                       config.gcn_dim + num_features,
                                       config.lstm_dim, init_rng_,
                                       "lstm_bwd")),
      est_fwd_(config.gcn_dim + config.lstm_dim, num_features, init_rng_,
               "est_fwd"),
      est_bwd_(config.gcn_dim + config.lstm_dim, num_features, init_rng_,
               "est_bwd"),
      head_(head_in_width(config), config.horizon, init_rng_, "head"),
      attn_score_(z_width(config), 1, init_rng_, "attn_score") {
  if (num_nodes != graphs.num_nodes()) {
    throw std::invalid_argument("RihgcnModel: node count mismatch with graphs");
  }
  if (config.lookback == 0 || config.horizon == 0) {
    throw std::invalid_argument("RihgcnModel: zero lookback/horizon");
  }
  if (config.hgcn_layers == 0 || config.hgcn_layers > 2) {
    throw std::invalid_argument("RihgcnModel: hgcn_layers must be 1 or 2");
  }
  if (graphs.sparse_mode() && !config_.use_sparse_graphs) {
    throw std::invalid_argument(
        "RihgcnModel: sparse-mode graphs (knn > 0) require use_sparse_graphs");
  }
  if (config_.use_sparse_graphs) {
    sparse_laps_ =
        hgcn_.make_sparse_laps(/*tol=*/0.0, config_.sparse_density_limit);
  }
  rnn_fwd_->set_fused(config_.use_fused_cells);
  rnn_bwd_->set_fused(config_.use_fused_cells);
}

std::vector<ad::Parameter*> RihgcnModel::parameters() {
  std::vector<ad::Parameter*> out = hgcn_.parameters();
  if (hgcn2_) {
    const auto extra = hgcn2_->parameters();
    out.insert(out.end(), extra.begin(), extra.end());
  }
  auto append = [&out](std::vector<ad::Parameter*> v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  append(rnn_fwd_->parameters());
  append(est_fwd_.parameters());
  if (config_.bidirectional) {
    append(rnn_bwd_->parameters());
    append(est_bwd_.parameters());
  }
  append(head_.parameters());
  if (config_.head == RihgcnConfig::Head::kAttention) {
    append(attn_score_.parameters());
  }
  return out;
}

RihgcnModel::DirectionResult RihgcnModel::run_direction(
    Tape& tape, const data::Window& w, bool reverse,
    const HgcnBlock::LapVars& laps, const HgcnBlock::SparseLaps* sparse) {
  const std::size_t steps = config_.lookback;
  if (w.x_obs.size() != steps) {
    throw std::invalid_argument("RihgcnModel: window lookback mismatch");
  }
  const std::size_t n = w.x_obs.front().rows();
  nn::RecurrentCell& lstm = reverse ? *rnn_bwd_ : *rnn_fwd_;
  nn::Linear& estimator = reverse ? est_bwd_ : est_fwd_;

  DirectionResult result;
  result.z.resize(steps);
  result.estimates.resize(steps);
  result.has_estimate.assign(steps, 0);

  Var zero_est = tape.constant(Matrix(n, num_features_));
  Var prev_estimate = zero_est;  // X̂ at the first visited step is zero
  bool have_estimate = false;
  nn::RecurrentCell::State state = lstm.initial_state(tape, n);

  for (std::size_t k = 0; k < steps; ++k) {
    const std::size_t t = reverse ? steps - 1 - k : k;
    const Matrix& mask = w.x_mask[t];
    Matrix inv_mask = map(mask, [](double v) { return 1.0 - v; });
    Var est_used = zero_est;
    if (have_estimate) {
      result.estimates[t] = prev_estimate;
      result.has_estimate[t] = 1;
      // Ablation: detaching the estimate turns joint training into the
      // classic two-step impute-then-predict pipeline.
      est_used = config_.trainable_imputation
                     ? prev_estimate
                     : tape.constant(tape.value(prev_estimate));
    }
    // Complement (Eq. 3): x_obs is already truth ⊙ mask.
    Var comp = tape.add(tape.constant(w.x_obs[t]),
                        tape.hadamard_const(est_used, inv_mask));
    const std::size_t slot =
        (w.slot + t) % graphs_.steps_per_day();
    Var s = hgcn_.forward(tape, comp, slot, laps, sparse);
    if (hgcn2_) s = hgcn2_->forward(tape, s, slot, laps, sparse);
    Var lstm_in = tape.concat_cols(s, tape.constant(mask));
    state = lstm.step(tape, lstm_in, state);
    Var z = tape.concat_cols(s, state.h);
    result.z[t] = z;
    prev_estimate = estimator.forward(tape, z);
    have_estimate = true;
  }
  return result;
}

RihgcnModel::ForwardOutput RihgcnModel::forward(Tape& tape,
                                                const data::Window& w) {
  return forward_impl(tape, w, nullptr, nullptr);
}

RihgcnModel::ForwardOutput RihgcnModel::forward_impl(
    Tape& tape, const data::Window& w,
    const HgcnBlock::SparseLaps* sparse_override,
    const std::vector<char>* owned_row) {
  const std::size_t steps = config_.lookback;
  // One set of Laplacian constants per tape, shared by both directions and
  // both stacked HGCN blocks (same underlying graphs). With the sparse cache
  // active, CSR-covered graphs skip the tape constant entirely. A cluster
  // override swaps in that cluster's sub-Laplacians (all CSR, so no tape
  // constants at all).
  const HgcnBlock::SparseLaps* sparse =
      sparse_override != nullptr
          ? sparse_override
          : (config_.use_sparse_graphs ? &sparse_laps_ : nullptr);
  const HgcnBlock::LapVars laps = sparse ? hgcn_.make_lap_vars(tape, *sparse)
                                         : hgcn_.make_lap_vars(tape);
  DirectionResult fwd = run_direction(tape, w, /*reverse=*/false, laps, sparse);
  DirectionResult bwd;
  if (config_.bidirectional) {
    bwd = run_direction(tape, w, /*reverse=*/true, laps, sparse);
  }

  // ---- Imputation loss (Eq. 6) -------------------------------------------
  ForwardOutput out;
  Var imp_acc;
  bool have_imp = false;
  auto accumulate = [&](Var term) {
    imp_acc = have_imp ? tape.add(imp_acc, term) : term;
    have_imp = true;
  };
  out.complement.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    const bool hf = fwd.has_estimate[t] != 0;
    const bool hb = config_.bidirectional && bwd.has_estimate[t] != 0;
    Var est_avg;
    bool have_avg = false;
    if (hf && hb) {
      est_avg = tape.scale(tape.add(fwd.estimates[t], bwd.estimates[t]), 0.5);
      have_avg = true;
    } else if (hf) {
      est_avg = fwd.estimates[t];
      have_avg = true;
    } else if (hb) {
      est_avg = bwd.estimates[t];
      have_avg = true;
    }
    if (have_avg) {
      // Halo rows of a cluster sub-window contribute features upstream but
      // never loss; zeroing their weight rows keeps masked_mae (which
      // normalizes by the weight sum) restricted to owned nodes.
      const auto zero_halo_rows = [owned_row](Matrix m) {
        const std::size_t cols = m.cols();
        for (std::size_t i = 0; i < m.rows(); ++i) {
          if (!(*owned_row)[i]) {
            std::fill(m.data() + i * cols, m.data() + (i + 1) * cols, 0.0);
          }
        }
        return m;
      };
      // First term: error of the estimate against observed entries.
      if (owned_row == nullptr) {
        accumulate(tape.masked_mae(est_avg, w.x_obs[t], w.x_mask[t]));
      } else {
        accumulate(tape.masked_mae(est_avg, w.x_obs[t],
                                   zero_halo_rows(w.x_mask[t])));
      }
      if (hf && hb && config_.use_consistency) {
        Matrix inv_mask =
            map(w.x_mask[t], [](double v) { return 1.0 - v; });
        if (owned_row != nullptr) inv_mask = zero_halo_rows(std::move(inv_mask));
        accumulate(tape.weighted_l1_between(fwd.estimates[t],
                                            bwd.estimates[t], inv_mask));
      }
      // Imputation output: observed where observed, estimate elsewhere.
      const Matrix& est_val = tape.value(est_avg);
      Matrix comp = w.x_obs[t];
      for (std::size_t i = 0; i < comp.size(); ++i) {
        if (w.x_mask[t].data()[i] < 0.5) comp.data()[i] = est_val.data()[i];
      }
      out.complement.push_back(std::move(comp));
    } else {
      out.complement.push_back(w.x_obs[t]);
    }
  }
  if (have_imp) {
    out.imputation_loss =
        tape.scale(imp_acc, 1.0 / static_cast<double>(steps));
    out.has_imputation_loss = true;
  }

  // ---- Prediction head ------------------------------------------------------
  std::vector<Var> zs(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    zs[t] = config_.bidirectional ? tape.concat_cols(fwd.z[t], bwd.z[t])
                                  : fwd.z[t];
  }
  if (config_.head == RihgcnConfig::Head::kConcat) {
    out.prediction = head_.forward(tape, tape.concat_cols_many(zs));
  } else {
    std::vector<Var> scores(steps);
    for (std::size_t t = 0; t < steps; ++t) {
      scores[t] = attn_score_.forward(tape, zs[t]);
    }
    Var alpha = tape.softmax_rows(tape.concat_cols_many(scores));  // N x T
    Var mixed;
    for (std::size_t t = 0; t < steps; ++t) {
      Var weighted =
          tape.mul_col_broadcast(zs[t], tape.slice_cols(alpha, t, t + 1));
      mixed = t == 0 ? weighted : tape.add(mixed, weighted);
    }
    out.prediction = head_.forward(tape, mixed);
  }
  return out;
}

Var RihgcnModel::training_loss(Tape& tape, const data::Window& w) {
  ForwardOutput out = forward(tape, w);
  const std::size_t n = tape.value(out.prediction).rows();
  Matrix targets(n, config_.horizon);
  Matrix weights(n, config_.horizon);
  for (std::size_t t = 0; t < config_.horizon; ++t) {
    targets.set_cols(t, w.y.at(t));
    weights.set_cols(t, w.y_mask.at(t));
  }
  Var pred_loss = tape.masked_mae(out.prediction, targets, weights);
  if (!out.has_imputation_loss || config_.lambda == 0.0) return pred_loss;
  return tape.affine_combine(pred_loss, 1.0, out.imputation_loss,
                             config_.lambda);
}

void RihgcnModel::prepare_clusters(std::size_t num_clusters,
                                   std::uint64_t seed) {
  clusters_.clear();
  if (num_clusters <= 1) return;
  // The SPATIAL adjacency drives the partition; the temporal graphs share
  // the node set, and their edges leaving owned ∪ halo are cut — the
  // Cluster-GCN approximation (DESIGN.md §13). The halo is the spatial
  // 1-hop boundary; Chebyshev order K > 1 reaches further, so halo features
  // are themselves approximate at the sub-graph border.
  const CsrMatrix adjacency =
      graphs_.sparse_mode()
          ? graphs_.geographic_adjacency_csr()
          : CsrMatrix::from_dense(graphs_.geographic().adjacency());
  const graph::ClusterPartitioner partitioner(seed);
  const graph::Clustering clustering =
      partitioner.partition(adjacency, num_clusters);

  // Full scaled Laplacians in CSR form, to extract sub-matrices from.
  const std::size_t num_t = graphs_.num_temporal();
  CsrMatrix geo_full;
  std::vector<CsrMatrix> temporal_full;
  temporal_full.reserve(num_t);
  if (graphs_.sparse_mode()) {
    geo_full = graphs_.geographic_scaled_laplacian_csr();
    for (std::size_t m = 0; m < num_t; ++m) {
      temporal_full.push_back(graphs_.temporal_scaled_laplacian_csr(m));
    }
  } else {
    geo_full = sparse_laps_.geo ? *sparse_laps_.geo
                                : CsrMatrix::from_dense(
                                      graphs_.geographic().scaled_laplacian());
    for (std::size_t m = 0; m < num_t; ++m) {
      const bool cached =
          m < sparse_laps_.temporal.size() && sparse_laps_.temporal[m];
      temporal_full.push_back(
          cached ? *sparse_laps_.temporal[m]
                 : CsrMatrix::from_dense(graphs_.temporal(m).scaled_laplacian()));
    }
  }

  clusters_.reserve(clustering.num_clusters());
  for (std::size_t c = 0; c < clustering.num_clusters(); ++c) {
    const std::vector<std::size_t>& owned = clustering.owned[c];
    const std::vector<std::size_t>& halo = clustering.halo[c];
    ClusterSpec spec;
    spec.nodes.resize(owned.size() + halo.size());
    std::merge(owned.begin(), owned.end(), halo.begin(), halo.end(),
               spec.nodes.begin());
    spec.num_owned = owned.size();
    spec.owned_row.assign(spec.nodes.size(), 0);
    std::size_t p = 0;
    for (std::size_t r = 0; r < spec.nodes.size(); ++r) {
      if (p < owned.size() && owned[p] == spec.nodes[r]) {
        spec.owned_row[r] = 1;
        ++p;
      }
    }
    spec.laps.geo = geo_full.submatrix(spec.nodes);
    spec.laps.temporal.reserve(num_t);
    for (std::size_t m = 0; m < num_t; ++m) {
      spec.laps.temporal.emplace_back(temporal_full[m].submatrix(spec.nodes));
    }
    clusters_.push_back(std::move(spec));
  }
}

Var RihgcnModel::cluster_training_loss(Tape& tape, const data::Window& w,
                                       std::size_t cluster) {
  if (cluster >= clusters_.size()) {
    throw std::out_of_range(
        "RihgcnModel::cluster_training_loss: cluster out of range "
        "(prepare_clusters first)");
  }
  const ClusterSpec& spec = clusters_[cluster];
  const data::Window sub = data::take_rows(w, spec.nodes);
  ForwardOutput out = forward_impl(tape, sub, &spec.laps, &spec.owned_row);
  const std::size_t n = spec.nodes.size();
  Matrix targets(n, config_.horizon);
  Matrix weights(n, config_.horizon);
  for (std::size_t t = 0; t < config_.horizon; ++t) {
    targets.set_cols(t, sub.y.at(t));
    weights.set_cols(t, sub.y_mask.at(t));
  }
  // Halo rows contribute features, never loss.
  for (std::size_t i = 0; i < n; ++i) {
    if (!spec.owned_row[i]) {
      for (std::size_t t = 0; t < config_.horizon; ++t) weights(i, t) = 0.0;
    }
  }
  Var pred_loss = tape.masked_mae(out.prediction, targets, weights);
  if (!out.has_imputation_loss || config_.lambda == 0.0) return pred_loss;
  return tape.affine_combine(pred_loss, 1.0, out.imputation_loss,
                             config_.lambda);
}

Matrix RihgcnModel::predict(const data::Window& w) {
  scratch_tape_.reset();
  ForwardOutput out = forward(scratch_tape_, w);
  return scratch_tape_.value(out.prediction);
}

std::vector<Matrix> RihgcnModel::impute(const data::Window& w) {
  scratch_tape_.reset();
  ForwardOutput out = forward(scratch_tape_, w);
  return std::move(out.complement);
}

}  // namespace rihgcn::core
