// RIHGCN — the paper's primary contribution (§III):
//
//  * HgcnBlock: one Chebyshev GCN per graph (geographic + M temporal), whose
//    outputs are mixed with sample-time interval weights and passed through
//    ReLU — the heterogeneous spatial encoder S_t = HGCN(X̃_t) (Eq. 4).
//  * RihgcnModel: the bi-directional recurrent imputation network. At each
//    step the complement X̃_t = M_t ⊙ X_t + (1−M_t) ⊙ X̂_t (Eq. 3) feeds the
//    HGCN, a node-shared LSTM consumes [s_t ; m_t], the concatenated state
//    Z_t = [S_t ; H_t] linearly estimates X̂_{t+1} (Eq. 5), and the
//    estimates stay in the autodiff graph so they receive delayed gradients
//    (the paper's "trainable variable" training strategy). The joint loss is
//    L = L_c + λ·L_m with the bi-directional consistency term (Eq. 6/7).
//
// Ablation switches in RihgcnConfig turn the model into the paper's reduced
// variants: bidirectional=false, use_consistency=false,
// trainable_imputation=false (detached estimates — the classic two-step
// pipeline the paper argues against).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/hetero_graphs.hpp"
#include "core/model.hpp"
#include "nn/layers.hpp"
#include "tensor/csr.hpp"

namespace rihgcn::core {

/// Heterogeneous GCN block: parallel GCNs over the geographic graph and the
/// M temporal graphs, aggregated by sample-time interval weights.
class HgcnBlock : public nn::Module {
 public:
  /// `graphs` must outlive the block.
  HgcnBlock(const HeterogeneousGraphs& graphs, std::size_t in_dim,
            std::size_t out_dim, std::size_t cheb_order, Rng& rng);

  /// Tape-resident Laplacian constants. The graphs are fixed per model, so a
  /// forward pass creates these once per tape and shares them across all
  /// lookback timesteps instead of pushing a fresh N x N constant per GCN
  /// call (lookback x (M+1) copies). Values are unchanged; the constants
  /// carry no gradient.
  struct LapVars {
    ad::Var geo;
    std::vector<ad::Var> temporal;  ///< one per temporal graph
  };
  [[nodiscard]] LapVars make_lap_vars(ad::Tape& tape) const;

  /// Per-MODEL sparse Laplacian cache (DESIGN.md §9): the CSR form of every
  /// scaled Laplacian, built once and reused by every forward pass. A graph
  /// whose density exceeds `max_density` stays dense (nullopt) — SpMM loses
  /// to the blocked dense kernel there — so a cache can mix sparse and dense
  /// graphs freely. With sparse-mode graphs (HeteroGraphsConfig::knn > 0)
  /// the CSR Laplacians are copied straight from the graphs and the density
  /// limit is ignored: CSR is the only form that exists.
  struct SparseLaps {
    std::optional<CsrMatrix> geo;
    std::vector<std::optional<CsrMatrix>> temporal;  ///< one per temporal graph
  };
  [[nodiscard]] SparseLaps make_sparse_laps(double tol = 0.0,
                                            double max_density = 0.5) const;

  /// As make_lap_vars(), but skips the tape constants for graphs the sparse
  /// cache covers (their Vars stay invalid) — CSR-covered graphs never touch
  /// the tape, saving the O(N²) constant per graph per tape.
  [[nodiscard]] LapVars make_lap_vars(ad::Tape& tape,
                                      const SparseLaps& sparse) const;

  /// x: N x in_dim complement matrix; slot: fine time-of-day slot of the
  /// sample (drives the temporal-graph mixture weights).
  [[nodiscard]] ad::Var forward(ad::Tape& tape, ad::Var x, std::size_t slot);

  /// Same, with the Laplacians already on the tape (hot path — the per-tape
  /// LapVars are block-agnostic, any block over the same graphs can share).
  [[nodiscard]] ad::Var forward(ad::Tape& tape, ad::Var x, std::size_t slot,
                                const LapVars& laps);

  /// Hot path with the sparse cache: each graph propagates via SpMM when its
  /// CSR is present, falling back to the dense lap Var otherwise. `sparse`
  /// may be null (all-dense). With tol = 0 CSR the result is bitwise equal
  /// to the dense overloads. `sparse` must outlive the tape.
  [[nodiscard]] ad::Var forward(ad::Tape& tape, ad::Var x, std::size_t slot,
                                const LapVars& laps, const SparseLaps* sparse);

  [[nodiscard]] std::vector<ad::Parameter*> parameters() override;
  [[nodiscard]] std::size_t out_dim() const noexcept { return out_dim_; }

 private:
  const HeterogeneousGraphs& graphs_;
  std::size_t out_dim_;
  nn::ChebGcnLayer geo_layer_;
  std::vector<nn::ChebGcnLayer> temporal_layers_;
};

struct RihgcnConfig {
  std::size_t lookback = 12;
  std::size_t horizon = 12;
  std::size_t gcn_dim = 16;    ///< p — node embedding width (paper: 64)
  std::size_t lstm_dim = 32;   ///< q — LSTM hidden width (paper: 128)
  std::size_t cheb_order = 3;  ///< K (paper: 3)
  /// Stacked HGCN depth (paper uses 1; 2 adds a second heterogeneous
  /// convolution over the first one's embeddings).
  std::size_t hgcn_layers = 1;
  /// Recurrent cell (paper: LSTM; GRU is a lighter alternative).
  nn::CellKind cell = nn::CellKind::kLstm;
  double lambda = 1.0;         ///< weight of the imputation loss (RQ4 sweep)
  bool bidirectional = true;
  bool use_consistency = true;       ///< second term of Eq. 6
  bool trainable_imputation = true;  ///< false = detach X̂ (two-step ablation)
  /// Prediction head: concatenate Z across time (paper default) or
  /// attention-weighted sum (paper's mentioned alternative).
  enum class Head { kConcat, kAttention };
  Head head = Head::kConcat;
  /// Propagate Chebyshev terms through the CSR SpMM backend (DESIGN.md §9).
  /// Bitwise identical to the dense path; off reverts to dense matmul.
  bool use_sparse_graphs = true;
  /// Per-graph dense fallback: graphs denser than this stay on the dense
  /// kernels even when use_sparse_graphs is on.
  double sparse_density_limit = 0.5;
  /// Route the recurrent cells through the fused Tape::lstm_cell/gru_cell
  /// kernels (3 tape nodes per step instead of ~17). Bitwise identical to
  /// the unfused elementary-op chain; off is for differential testing.
  bool use_fused_cells = true;
  std::uint64_t seed = 7;
  /// Reported name — lets ablation variants (e.g. "GCN-LSTM-I" with zero
  /// temporal graphs) appear under the paper's method names.
  std::string display_name = "RIHGCN";
};

class RihgcnModel : public ForecastModel, public ClusterTrainable {
 public:
  /// The serving-side inference engine (core/engine.hpp) compiles a frozen
  /// f32 snapshot of this model — it reads the module tree and the sparse
  /// Laplacian cache directly at compile time, never mutating anything.
  friend class InferenceEngine;
  /// ShardedEngine (core/sharded_engine.hpp) replicates the
  /// prepare_clusters() sub-Laplacian recipe at serve-compile time — it
  /// reads graphs_, sparse_laps_ and config_ the same read-only way.
  friend class ShardedEngine;
  RihgcnModel(const HeterogeneousGraphs& graphs, std::size_t num_nodes,
              std::size_t num_features, const RihgcnConfig& config);

  [[nodiscard]] std::string name() const override {
    return config_.display_name;
  }
  [[nodiscard]] std::vector<ad::Parameter*> parameters() override;
  [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                      const data::Window& w) override;
  [[nodiscard]] Matrix predict(const data::Window& w) override;
  [[nodiscard]] std::vector<Matrix> impute(const data::Window& w) override;

  // ---- ClusterTrainable (partitioned training, DESIGN.md §13) -------------
  /// Partition the spatial graph into `num_clusters` clusters (seeded BFS)
  /// and precompute each cluster's sub-Laplacians (owned ∪ 1-hop halo rows
  /// and columns of every scaled Laplacian, extracted in CSR form).
  void prepare_clusters(std::size_t num_clusters, std::uint64_t seed) override;
  [[nodiscard]] std::size_t num_clusters() const override {
    return clusters_.size();
  }
  /// Full RIHGCN loss on the cluster's sub-window: halo rows propagate
  /// through the HGCN/LSTM but are zero-weighted in the prediction AND
  /// imputation losses, so summing per-cluster gradients over all clusters
  /// covers every owned node exactly once.
  [[nodiscard]] ad::Var cluster_training_loss(ad::Tape& tape,
                                              const data::Window& w,
                                              std::size_t cluster) override;

  [[nodiscard]] const RihgcnConfig& config() const noexcept { return config_; }

  /// Full forward pass products (exposed for tests/ablations).
  struct ForwardOutput {
    ad::Var prediction;       ///< N x horizon
    ad::Var imputation_loss;  ///< scalar L_m
    bool has_imputation_loss = false;
    /// Complement series X̃_t combining observed data with the mean of the
    /// directional estimates — the model's imputation output (VALUES, not
    /// tape nodes).
    std::vector<Matrix> complement;
  };
  [[nodiscard]] ForwardOutput forward(ad::Tape& tape, const data::Window& w);

 private:
  struct DirectionResult {
    std::vector<ad::Var> z;          ///< per step, N x (p+q)
    std::vector<ad::Var> estimates;  ///< estimates[t] = X̂_t; validity below
    std::vector<char> has_estimate;
  };
  [[nodiscard]] DirectionResult run_direction(
      ad::Tape& tape, const data::Window& w, bool reverse,
      const HgcnBlock::LapVars& laps, const HgcnBlock::SparseLaps* sparse);

  /// One cluster's precomputed sub-graph (prepare_clusters).
  struct ClusterSpec {
    std::vector<std::size_t> nodes;  ///< owned ∪ halo, ascending
    std::vector<char> owned_row;     ///< per local row: 1 = owned, 0 = halo
    std::size_t num_owned = 0;
    HgcnBlock::SparseLaps laps;      ///< sub-Laplacians, every graph in CSR
  };

  /// Shared forward body. `sparse_override` non-null swaps in a cluster's
  /// sub-Laplacians; `owned_row` non-null zero-weights halo rows in the
  /// imputation/consistency losses. With both null this IS forward():
  /// the full-graph op sequence is bitwise unchanged.
  [[nodiscard]] ForwardOutput forward_impl(ad::Tape& tape,
                                           const data::Window& w,
                                           const HgcnBlock::SparseLaps*
                                               sparse_override,
                                           const std::vector<char>* owned_row);

  const HeterogeneousGraphs& graphs_;
  RihgcnConfig config_;
  std::size_t num_features_;
  Rng init_rng_;  ///< parameter-init stream; declared before the modules
  HgcnBlock hgcn_;
  /// CSR of every scaled Laplacian, built once at construction (empty when
  /// use_sparse_graphs is off). Shared by hgcn_ and hgcn2_ — same graphs.
  HgcnBlock::SparseLaps sparse_laps_;
  std::unique_ptr<HgcnBlock> hgcn2_;  ///< present iff hgcn_layers == 2
  std::unique_ptr<nn::RecurrentCell> rnn_fwd_;
  std::unique_ptr<nn::RecurrentCell> rnn_bwd_;
  nn::Linear est_fwd_;
  nn::Linear est_bwd_;
  nn::Linear head_;
  nn::Linear attn_score_;
  /// Scratch tape for predict()/impute(): reset() between calls keeps the
  /// node vector and the buffer pool warm, so steady-state inference does
  /// no heap allocation (DESIGN.md §10).
  ad::Tape scratch_tape_;
  /// Partitioned-training state (empty until prepare_clusters).
  std::vector<ClusterSpec> clusters_;
};

}  // namespace rihgcn::core
