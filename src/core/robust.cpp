#include "core/robust.hpp"

#include <cmath>
#include <stdexcept>

namespace rihgcn::core {

NumericalGuard::NumericalGuard(std::vector<ad::Parameter*> params,
                               nn::AdamOptimizer& optimizer,
                               GuardConfig config)
    : params_(std::move(params)), optimizer_(optimizer), config_(config) {
  if (config_.ema_decay < 0.0 || config_.ema_decay >= 1.0) {
    throw std::invalid_argument("NumericalGuard: ema_decay must be in [0,1)");
  }
  if (config_.spike_factor <= 1.0) {
    throw std::invalid_argument("NumericalGuard: spike_factor must be > 1");
  }
  if (config_.max_consecutive_bad == 0 || config_.snapshot_every == 0) {
    throw std::invalid_argument(
        "NumericalGuard: max_consecutive_bad and snapshot_every must be > 0");
  }
  // The pre-training state is the first known-good snapshot: a run whose
  // very first batches are corrupt rolls back to initialization instead of
  // stepping into NaN.
  take_snapshot();
}

NumericalGuard::Verdict NumericalGuard::inspect(double batch_loss) {
  if (!config_.enabled) return Verdict::kOk;

  bool bad = false;
  if (!std::isfinite(batch_loss)) {
    ++counters_.nonfinite_losses;
    bad = true;
  } else {
    for (const ad::Parameter* p : params_) {
      if (p->grad().has_non_finite()) {
        ++counters_.nonfinite_grads;
        bad = true;
        break;
      }
    }
    if (!bad && state_.ema_initialized &&
        state_.good_steps >= config_.warmup_steps) {
      // EMA-relative spike. |EMA| floors at a tiny constant so a loss that
      // has converged to ~0 does not turn ordinary noise into "spikes".
      const double ref = std::max(std::abs(state_.loss_ema), 1e-12);
      if (batch_loss > config_.spike_factor * ref) {
        ++counters_.loss_spikes;
        bad = true;
      }
    }
  }

  if (!bad) {
    state_.loss_ema = state_.ema_initialized
                          ? config_.ema_decay * state_.loss_ema +
                                (1.0 - config_.ema_decay) * batch_loss
                          : batch_loss;
    state_.ema_initialized = true;
    return Verdict::kOk;
  }

  ++counters_.batches_skipped;
  ++state_.consecutive_bad;
  if (state_.backoffs_used < config_.max_lr_backoffs) {
    optimizer_.set_lr(optimizer_.current_lr() * config_.lr_backoff);
    ++state_.backoffs_used;
    ++counters_.lr_backoffs;
  }
  if (state_.consecutive_bad >= config_.max_consecutive_bad) {
    rollback();
  }
  return Verdict::kSkipBatch;
}

void NumericalGuard::after_step() {
  if (!config_.enabled) return;
  state_.consecutive_bad = 0;
  ++state_.good_steps;
  if (state_.good_steps % config_.snapshot_every == 0) take_snapshot();
}

void NumericalGuard::take_snapshot() {
  // Copy in place: with the default snapshot_every == 1 this runs on every
  // accepted step, so reusing the snapshot buffers keeps the steady-state
  // cost to a memcpy instead of a fresh allocation per step.
  good_values_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    good_values_[i] = params_[i]->value();
  }
  optimizer_.state_into(good_opt_);
}

void NumericalGuard::rollback() {
  // Preserve the backed-off learning rate across the restore: the whole
  // point of the rollback+backoff pair is to retry the same region of
  // parameter space with smaller steps.
  const double lr = optimizer_.current_lr();
  nn::restore_values(good_values_, params_);
  optimizer_.set_state(good_opt_);
  optimizer_.set_lr(lr);
  ++counters_.rollbacks;
  state_.consecutive_bad = 0;
}

// ---- shared serving-side robustness primitives -----------------------------

std::size_t scrub_non_finite(Matrix& m, double replacement) {
  std::size_t scrubbed = 0;
  double* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(p[i])) {
      p[i] = replacement;
      ++scrubbed;
    }
  }
  return scrubbed;
}

SanitizeCounts sanitize_reading(const Matrix& values, const Matrix& mask,
                                const data::ZScoreNormalizer& normalizer,
                                Matrix& normalized, Matrix& clean_mask) {
  SanitizeCounts counts;
  for (std::size_t i = 0; i < values.rows(); ++i) {
    for (std::size_t f = 0; f < values.cols(); ++f) {
      const double m = mask(i, f);
      bool observed;
      if (std::isfinite(m) && (m == 0.0 || m == 1.0)) {
        observed = m > 0.5;
      } else {
        ++counts.coerced_mask_entries;
        observed = std::isfinite(m) && m > 0.5;
      }
      if (observed && !std::isfinite(values(i, f))) {
        observed = false;
        ++counts.sanitized_entries;
      }
      double z = 0.0;
      if (observed) {
        z = normalizer.normalize_value(values(i, f), f);
        if (!std::isfinite(z)) {  // degenerate normalizer stats
          observed = false;
          z = 0.0;
          ++counts.sanitized_entries;
        }
      }
      clean_mask(i, f) = observed ? 1.0 : 0.0;
      normalized(i, f) = z;
    }
  }
  return counts;
}

StuckSensorDetector::StuckSensorDetector(std::size_t num_nodes,
                                         std::size_t threshold)
    : threshold_(threshold),
      last_value_(num_nodes, 0.0),
      repeat_runs_(num_nodes, 0),
      stuck_(num_nodes, false) {}

std::size_t StuckSensorDetector::observe_and_demote(Matrix& values,
                                                    Matrix& mask) {
  if (threshold_ == 0 || last_value_.empty()) return 0;
  std::size_t demoted = 0;
  const std::size_t num_features = values.cols();
  for (std::size_t i = 0; i < last_value_.size(); ++i) {
    if (mask(i, 0) <= 0.5) continue;
    const double v = values(i, 0);
    if (repeat_runs_[i] > 0 && v == last_value_[i]) {
      ++repeat_runs_[i];
    } else {
      repeat_runs_[i] = 1;
      last_value_[i] = v;
      stuck_[i] = false;
    }
    if (repeat_runs_[i] >= threshold_) stuck_[i] = true;
    if (stuck_[i]) {
      for (std::size_t f = 0; f < num_features; ++f) {
        mask(i, f) = 0.0;
        values(i, f) = 0.0;
      }
      ++demoted;
    }
  }
  return demoted;
}

std::vector<std::size_t> find_suspect_sensors(
    const std::vector<bool>& stuck_flags, const std::deque<Matrix>& masks,
    std::size_t num_nodes, bool buffer_full) {
  std::vector<std::size_t> suspects;
  for (std::size_t i = 0; i < num_nodes; ++i) {
    bool suspect = i < stuck_flags.size() && stuck_flags[i];
    if (!suspect && buffer_full) {
      bool any_observed = false;
      for (const Matrix& m : masks) {
        for (std::size_t f = 0; f < m.cols() && !any_observed; ++f) {
          if (m(i, f) > 0.5) any_observed = true;
        }
        if (any_observed) break;
      }
      suspect = !any_observed;
    }
    if (suspect) suspects.push_back(i);
  }
  return suspects;
}

}  // namespace rihgcn::core
