#include "core/robust.hpp"

#include <cmath>
#include <stdexcept>

namespace rihgcn::core {

NumericalGuard::NumericalGuard(std::vector<ad::Parameter*> params,
                               nn::AdamOptimizer& optimizer,
                               GuardConfig config)
    : params_(std::move(params)), optimizer_(optimizer), config_(config) {
  if (config_.ema_decay < 0.0 || config_.ema_decay >= 1.0) {
    throw std::invalid_argument("NumericalGuard: ema_decay must be in [0,1)");
  }
  if (config_.spike_factor <= 1.0) {
    throw std::invalid_argument("NumericalGuard: spike_factor must be > 1");
  }
  if (config_.max_consecutive_bad == 0 || config_.snapshot_every == 0) {
    throw std::invalid_argument(
        "NumericalGuard: max_consecutive_bad and snapshot_every must be > 0");
  }
  // The pre-training state is the first known-good snapshot: a run whose
  // very first batches are corrupt rolls back to initialization instead of
  // stepping into NaN.
  take_snapshot();
}

NumericalGuard::Verdict NumericalGuard::inspect(double batch_loss) {
  if (!config_.enabled) return Verdict::kOk;

  bool bad = false;
  if (!std::isfinite(batch_loss)) {
    ++counters_.nonfinite_losses;
    bad = true;
  } else {
    for (const ad::Parameter* p : params_) {
      if (p->grad().has_non_finite()) {
        ++counters_.nonfinite_grads;
        bad = true;
        break;
      }
    }
    if (!bad && state_.ema_initialized &&
        state_.good_steps >= config_.warmup_steps) {
      // EMA-relative spike. |EMA| floors at a tiny constant so a loss that
      // has converged to ~0 does not turn ordinary noise into "spikes".
      const double ref = std::max(std::abs(state_.loss_ema), 1e-12);
      if (batch_loss > config_.spike_factor * ref) {
        ++counters_.loss_spikes;
        bad = true;
      }
    }
  }

  if (!bad) {
    state_.loss_ema = state_.ema_initialized
                          ? config_.ema_decay * state_.loss_ema +
                                (1.0 - config_.ema_decay) * batch_loss
                          : batch_loss;
    state_.ema_initialized = true;
    return Verdict::kOk;
  }

  ++counters_.batches_skipped;
  ++state_.consecutive_bad;
  if (state_.backoffs_used < config_.max_lr_backoffs) {
    optimizer_.set_lr(optimizer_.current_lr() * config_.lr_backoff);
    ++state_.backoffs_used;
    ++counters_.lr_backoffs;
  }
  if (state_.consecutive_bad >= config_.max_consecutive_bad) {
    rollback();
  }
  return Verdict::kSkipBatch;
}

void NumericalGuard::after_step() {
  if (!config_.enabled) return;
  state_.consecutive_bad = 0;
  ++state_.good_steps;
  if (state_.good_steps % config_.snapshot_every == 0) take_snapshot();
}

void NumericalGuard::take_snapshot() {
  // Copy in place: with the default snapshot_every == 1 this runs on every
  // accepted step, so reusing the snapshot buffers keeps the steady-state
  // cost to a memcpy instead of a fresh allocation per step.
  good_values_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    good_values_[i] = params_[i]->value();
  }
  optimizer_.state_into(good_opt_);
}

void NumericalGuard::rollback() {
  // Preserve the backed-off learning rate across the restore: the whole
  // point of the rollback+backoff pair is to retry the same region of
  // parameter space with smaller steps.
  const double lr = optimizer_.current_lr();
  nn::restore_values(good_values_, params_);
  optimizer_.set_state(good_opt_);
  optimizer_.set_lr(lr);
  ++counters_.rollbacks;
  state_.consecutive_bad = 0;
}

}  // namespace rihgcn::core
