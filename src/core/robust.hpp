// Fault tolerance for training and serving (DESIGN.md §11).
//
// A deployed forecaster must survive the pathologies the missing-value
// setting implies: feeds that emit NaN/Inf instead of gaps, sensors that
// stick or spike, and long training runs that diverge. This header holds the
// shared robustness vocabulary:
//
//  * NumericalGuard — wraps the train loop's optimizer step. It vetoes a
//    step when the batch loss or any accumulated gradient is non-finite, or
//    when the loss spikes far above its exponential moving average; vetoed
//    batches are skipped, the learning rate is backed off a bounded number
//    of times, and after K consecutive bad steps the parameters AND the Adam
//    moments roll back to the last known-good snapshot. With healthy data
//    the guard is pure observation: it never perturbs a clean run, and all
//    of its counters stay zero (CI asserts this).
//  * HealthReport — the serving-side health surface of OnlineForecaster:
//    buffer coverage, suspect (stuck/dead) sensors, sanitization and
//    fallback counters.
//  * Shared serving-side scrub/sanitize/stuck-detection primitives
//    (DESIGN.md §15) — ONE implementation behind both serving layers:
//    the single-tenant OnlineForecaster and the multi-client
//    serve::ForecastServer apply identical ingest sanitization, identical
//    stuck-sensor demotion and identical non-finite output scrubbing, so a
//    reading degrades the same way no matter which front end saw it.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "autodiff/tape.hpp"
#include "data/dataset.hpp"
#include "nn/optim.hpp"

namespace rihgcn::core {

/// Thresholds for NumericalGuard. Defaults are deliberately loose: the
/// guard exists to catch divergence and corrupt feeds, not to second-guess
/// ordinary optimization noise.
struct GuardConfig {
  bool enabled = true;
  /// A finite batch loss above `spike_factor * EMA(loss)` counts as a spike.
  double spike_factor = 100.0;
  /// EMA decay for the loss trace (per accepted batch).
  double ema_decay = 0.9;
  /// Accepted batches before spike detection arms (the first steps of a run
  /// legitimately move the loss by large factors).
  std::size_t warmup_steps = 5;
  /// K consecutive vetoed batches trigger a parameter + optimizer rollback.
  std::size_t max_consecutive_bad = 3;
  /// Multiply the learning rate by this on each vetoed batch...
  double lr_backoff = 0.5;
  /// ...at most this many times over the whole run (bounded retries).
  std::size_t max_lr_backoffs = 4;
  /// Accepted steps between known-good snapshots (1 = snapshot every step).
  std::size_t snapshot_every = 1;
};

/// Everything the guard did, surfaced in TrainReport. A clean run has all
/// counters at zero.
struct GuardCounters {
  std::size_t batches_skipped = 0;   ///< vetoed batches (sum of the 3 causes)
  std::size_t nonfinite_losses = 0;  ///< vetoes due to NaN/Inf batch loss
  std::size_t nonfinite_grads = 0;   ///< vetoes due to NaN/Inf gradients
  std::size_t loss_spikes = 0;       ///< vetoes due to EMA-relative spikes
  std::size_t lr_backoffs = 0;       ///< learning-rate reductions applied
  std::size_t rollbacks = 0;         ///< snapshot restores performed

  /// True iff the guard never intervened.
  [[nodiscard]] bool clean() const noexcept {
    return batches_skipped == 0 && lr_backoffs == 0 && rollbacks == 0;
  }
};

/// Serializable guard state (carried by nn::TrainCheckpoint so a resumed
/// run continues the EMA trace and backoff budget instead of resetting).
struct GuardState {
  double loss_ema = 0.0;
  bool ema_initialized = false;
  std::size_t good_steps = 0;       ///< accepted batches so far
  std::size_t consecutive_bad = 0;  ///< current bad streak
  std::size_t backoffs_used = 0;    ///< lifetime LR backoffs
};

/// Numerical health guard around an Adam-driven training loop. Usage per
/// batch (see core::train_model):
///
///   optimizer.zero_grad();  ...accumulate and average gradients...
///   if (guard.inspect(batch_loss) == NumericalGuard::Verdict::kSkipBatch)
///     continue;            // no optimizer step; guard handled backoff etc.
///   optimizer.step();
///   guard.after_step();    // marks the new state known-good
///
/// `params` and `optimizer` must outlive the guard. The constructor takes an
/// initial snapshot, so a rollback is well-defined from the first batch.
class NumericalGuard {
 public:
  enum class Verdict { kOk, kSkipBatch };

  NumericalGuard(std::vector<ad::Parameter*> params,
                 nn::AdamOptimizer& optimizer, GuardConfig config);

  /// Examine the averaged batch loss and the accumulated parameter
  /// gradients. kOk means the step is safe to apply; kSkipBatch means the
  /// guard vetoed it (and may have backed off the LR or rolled back).
  [[nodiscard]] Verdict inspect(double batch_loss);
  /// Record that optimizer.step() was applied after a kOk verdict; refreshes
  /// the known-good snapshot on the configured cadence.
  void after_step();

  [[nodiscard]] const GuardCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const GuardState& state() const noexcept { return state_; }
  /// Restore EMA/backoff state from a checkpoint (counters start at zero —
  /// TrainReport counts per run, not per lifetime).
  void set_state(const GuardState& s) noexcept { state_ = s; }

 private:
  void take_snapshot();
  void rollback();

  std::vector<ad::Parameter*> params_;
  nn::AdamOptimizer& optimizer_;
  GuardConfig config_;
  GuardCounters counters_;
  GuardState state_;
  std::vector<Matrix> good_values_;
  nn::AdamOptimizer::State good_opt_;
};

// ---- shared serving-side robustness primitives -----------------------------

/// Replace every non-finite entry of `m` with `replacement` (0.0 = the
/// historical mean in normalized space). Returns the number of entries
/// scrubbed. Both serving layers route model output through this before a
/// value ever reaches a client — a forecast is never non-finite.
std::size_t scrub_non_finite(Matrix& m, double replacement = 0.0);

/// What one sanitize_reading call demoted (for health counters).
struct SanitizeCounts {
  std::size_t sanitized_entries = 0;    ///< non-finite values demoted
  std::size_t coerced_mask_entries = 0; ///< mask entries outside {0,1}
};

/// Ingest sanitization shared by OnlineForecaster::push_reading and
/// ForecastServer::ingest: demote non-finite values and malformed mask
/// entries to missing, normalize the survivors. `normalized` and
/// `clean_mask` must be preallocated to the shape of `values`; entries are
/// fully overwritten. A pure function of (values, mask, normalizer) — safe
/// to run on any thread against a frozen normalizer.
SanitizeCounts sanitize_reading(const Matrix& values, const Matrix& mask,
                                const data::ZScoreNormalizer& normalizer,
                                Matrix& normalized, Matrix& clean_mask);

/// Sliding-run stuck-sensor detector shared by both serving layers: a node
/// whose target-feature value repeats exactly `threshold` consecutive
/// observed readings is flagged stuck, and its readings are demoted to
/// missing until the value moves again (real traffic always jitters; a
/// frozen register does not). One instance per stream; feed it every
/// sanitized reading in arrival order.
class StuckSensorDetector {
 public:
  StuckSensorDetector() = default;
  /// `threshold` consecutive identical observed readings flag a node;
  /// 0 disables detection (observe_and_demote becomes a no-op).
  StuckSensorDetector(std::size_t num_nodes, std::size_t threshold);

  /// Inspect one sanitized reading (any consistent unit space — equality is
  /// all that matters) and demote stuck nodes: their rows in `values` and
  /// `mask` are zeroed. Returns the number of readings demoted this call.
  std::size_t observe_and_demote(Matrix& values, Matrix& mask);

  /// Re-arm with a new threshold; run-length state is preserved.
  void set_threshold(std::size_t threshold) noexcept {
    threshold_ = threshold;
  }
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }
  /// Per-node "currently flagged stuck" flags.
  [[nodiscard]] const std::vector<bool>& flags() const noexcept {
    return stuck_;
  }

 private:
  std::size_t threshold_ = 0;
  std::vector<double> last_value_;        ///< per node, target feature
  std::vector<std::size_t> repeat_runs_;  ///< consecutive identical readings
  std::vector<bool> stuck_;               ///< currently flagged stuck
};

/// Suspect-sensor roll-up shared by the health surfaces: nodes currently
/// flagged stuck, plus nodes dead (zero observed entries) across a FULL
/// buffer of masks (`buffer_full` false suppresses the dead check — a
/// half-warm buffer says nothing about sensor death).
[[nodiscard]] std::vector<std::size_t> find_suspect_sensors(
    const std::vector<bool>& stuck_flags, const std::deque<Matrix>& masks,
    std::size_t num_nodes, bool buffer_full);

/// Serving-side health surface of core::OnlineForecaster.
struct HealthReport {
  /// Fraction of entries in the current buffer that are real observations
  /// (after sanitization and stuck-sensor demotion).
  double buffer_coverage = 0.0;
  std::size_t readings_seen = 0;
  /// Non-finite reading entries demoted to missing on ingest.
  std::size_t sanitized_entries = 0;
  /// Mask entries outside {0,1} coerced on ingest.
  std::size_t coerced_mask_entries = 0;
  /// Whole readings demoted to missing because the sensor was stuck.
  std::size_t stuck_demotions = 0;
  /// Forecasts served by the primary model.
  std::size_t model_forecasts = 0;
  /// Forecasts served by the fallback model (primary threw or went
  /// non-finite).
  std::size_t fallback_forecasts = 0;
  /// Forecasts answered from the memo cache (no ingest since the last
  /// model run — same window, same answer).
  std::size_t memoized_forecasts = 0;
  /// Individual output entries scrubbed to the historical mean because even
  /// the fallback path left them non-finite.
  std::size_t scrubbed_outputs = 0;
  /// Nodes currently flagged stuck (repeating one value) or dead (no
  /// observation anywhere in a full buffer).
  std::vector<std::size_t> suspect_sensors;
};

}  // namespace rihgcn::core
