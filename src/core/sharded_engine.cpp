#include "core/sharded_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/cluster.hpp"
#include "tensor/csr.hpp"
#include "tensor/parallel.hpp"

namespace rihgcn::core {

ShardedEngine::ShardedEngine(const RihgcnModel& model, Options options) {
  if (options.num_shards == 0) {
    throw std::invalid_argument("ShardedEngine: num_shards must be >= 1");
  }
  RihgcnModel& m = const_cast<RihgcnModel&>(model);
  n_ = m.graphs_.num_nodes();
  horizon_ = m.config_.horizon;
  parallel_ = options.parallel;

  // The prepare_clusters() recipe, replicated at serve-compile time: the
  // SPATIAL adjacency drives the partition, the temporal graphs share the
  // node set and have their out-of-shard edges cut (the Cluster-GCN
  // approximation, DESIGN.md §13).
  const CsrMatrix adjacency =
      m.graphs_.sparse_mode()
          ? m.graphs_.geographic_adjacency_csr()
          : CsrMatrix::from_dense(m.graphs_.geographic().adjacency());
  const graph::ClusterPartitioner partitioner(options.seed);
  const graph::Clustering clustering =
      partitioner.partition(adjacency, options.num_shards);

  // Full scaled Laplacians in CSR form, to extract shard sub-matrices from.
  const std::size_t num_t = m.graphs_.num_temporal();
  CsrMatrix geo_full;
  std::vector<CsrMatrix> temporal_full;
  temporal_full.reserve(num_t);
  if (m.graphs_.sparse_mode()) {
    geo_full = m.graphs_.geographic_scaled_laplacian_csr();
    for (std::size_t t = 0; t < num_t; ++t) {
      temporal_full.push_back(m.graphs_.temporal_scaled_laplacian_csr(t));
    }
  } else {
    geo_full = m.sparse_laps_.geo
                   ? *m.sparse_laps_.geo
                   : CsrMatrix::from_dense(
                         m.graphs_.geographic().scaled_laplacian());
    for (std::size_t t = 0; t < num_t; ++t) {
      const bool cached =
          t < m.sparse_laps_.temporal.size() && m.sparse_laps_.temporal[t];
      temporal_full.push_back(
          cached
              ? *m.sparse_laps_.temporal[t]
              : CsrMatrix::from_dense(m.graphs_.temporal(t).scaled_laplacian()));
    }
  }

  InferenceEngine::Options eo;
  eo.max_batch = 1;  // one window, split by NODES — not by batch
  eo.num_threads = options.num_threads;
  shards_.reserve(clustering.num_clusters());
  for (std::size_t c = 0; c < clustering.num_clusters(); ++c) {
    const std::vector<std::size_t>& owned = clustering.owned[c];
    const std::vector<std::size_t>& halo = clustering.halo[c];
    Shard sh;
    sh.nodes.resize(owned.size() + halo.size());
    std::merge(owned.begin(), owned.end(), halo.begin(), halo.end(),
               sh.nodes.begin());
    sh.owned_local.reserve(owned.size());
    sh.owned_global.reserve(owned.size());
    std::size_t p = 0;
    for (std::size_t r = 0; r < sh.nodes.size(); ++r) {
      if (p < owned.size() && owned[p] == sh.nodes[r]) {
        sh.owned_local.push_back(r);
        sh.owned_global.push_back(sh.nodes[r]);
        ++p;
      }
    }
    HgcnBlock::SparseLaps laps;
    laps.geo = geo_full.submatrix(sh.nodes);
    laps.temporal.reserve(num_t);
    for (std::size_t t = 0; t < num_t; ++t) {
      laps.temporal.emplace_back(temporal_full[t].submatrix(sh.nodes));
    }
    sh.engine = std::unique_ptr<InferenceEngine>(
        new InferenceEngine(m, eo, &laps, sh.nodes.size()));
    sh.ws = sh.engine->make_workspace();
    shards_.push_back(std::move(sh));
  }
}

Matrix ShardedEngine::predict(const data::Window& w) {
  Matrix out(n_, horizon_);
  auto run = [&](std::size_t s0, std::size_t s1) {
    for (std::size_t s = s0; s < s1; ++s) {
      Shard& sh = shards_[s];
      // Gather this shard's rows, forward through its sub-engine, scatter
      // only the OWNED rows — owned sets partition the nodes, so the
      // writes below are disjoint across shards (race-free in parallel).
      const data::Window sub = data::take_rows(w, sh.nodes);
      const data::Window* ptr = &sub;
      const FMatrix& pred = sh.engine->predict_batch(&ptr, 1, sh.ws);
      for (std::size_t k = 0; k < sh.owned_local.size(); ++k) {
        const std::size_t li = sh.owned_local[k];
        const std::size_t gi = sh.owned_global[k];
        for (std::size_t h = 0; h < horizon_; ++h) {
          out(gi, h) = static_cast<double>(pred(li, h));
        }
      }
    }
  };
  if (parallel_ && shards_.size() > 1) {
    // Grain 1: one shard per task. Shard bodies run with
    // in_parallel_region() set, so the sub-engines' kernels stay serial —
    // no nested pool dispatch, and bits identical to the serial path.
    ThreadPool::global().parallel_for(0, shards_.size(), 1, run);
  } else {
    run(0, shards_.size());
  }
  return out;
}

}  // namespace rihgcn::core
