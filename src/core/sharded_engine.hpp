// Cluster-sharded inference engine (DESIGN.md §16).
//
// InferenceEngine parallelizes ACROSS windows (the serve worker pool) and
// WITHIN kernels (Options::num_threads row-sharding); at city scale a single
// window is itself the bottleneck — one N=16384 forecast is one long chain
// of full-graph GEMM/SpMM calls. ShardedEngine carries the PR-6 Cluster-GCN
// decomposition into the compiled f32 path: it partitions the spatial graph
// with graph::ClusterPartitioner (the exact prepare_clusters() recipe — same
// seeded BFS, same owned ∪ halo node sets, same CsrMatrix::submatrix
// sub-Laplacian extraction) and compiles one private InferenceEngine per
// cluster over that cluster's sub-graph. A predict() then
//
//   1. gathers each shard's rows from the query window (data::take_rows),
//   2. runs every shard's sub-engine — in parallel across shards on the
//      global ThreadPool when Options::parallel is set (each shard owns a
//      private Workspace, and the shard bodies run with
//      in_parallel_region() set so nested kernels stay serial),
//   3. scatters each shard's OWNED rows into the full N x horizon output.
//      Owned sets partition the node set, so the scatter writes are
//      disjoint — parallel execution is race-free and bitwise identical to
//      running the shards serially.
//
// Accuracy contract: halo nodes see their 1-hop neighbours but edges beyond
// the halo are cut, so with cheb_order > 1 a shard's border rows are the
// documented Cluster-GCN approximation of the full-graph forward (DESIGN.md
// §13) — the parity baseline for the parallel path is the SERIAL sharded
// forward, not the full engine. With num_shards = 1 the halo is empty, the
// sub-graph is the whole graph, and the output is bitwise equal to the full
// InferenceEngine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/rihgcn.hpp"
#include "data/windows.hpp"

namespace rihgcn::core {

class ShardedEngine {
 public:
  struct Options {
    /// Target cluster count (must be >= 1; the partitioner may return fewer
    /// on tiny graphs). 1 = single shard over the full graph, bitwise equal
    /// to the plain InferenceEngine.
    std::size_t num_shards = 2;
    /// ClusterPartitioner seed — the partition (and therefore every bit of
    /// the output) is a pure function of (seed, adjacency, num_shards).
    std::uint64_t seed = 0;
    /// true: run shards concurrently on the global ThreadPool. false: run
    /// them serially on the caller's thread — same bits, the parity
    /// baseline the tests pin.
    bool parallel = true;
    /// Forwarded to each sub-engine (InferenceEngine::Options::num_threads).
    /// Only reachable in serial mode — parallel shard bodies already run
    /// inside a parallel region, where nested kernels stay serial.
    std::size_t num_threads = 0;
  };

  /// Compiles one frozen sub-engine per cluster; like InferenceEngine, the
  /// model may keep training or be destroyed afterwards.
  ShardedEngine(const RihgcnModel& model, Options options);
  explicit ShardedEngine(const RihgcnModel& model)
      : ShardedEngine(model, Options{}) {}

  /// Full-graph forecast of one window (N x horizon, f32-computed widened
  /// to double like InferenceEngine::predict). Not thread-safe — each shard
  /// workspace backs one in-flight call.
  [[nodiscard]] Matrix predict(const data::Window& w);

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::size_t horizon() const noexcept { return horizon_; }

 private:
  struct Shard {
    std::vector<std::size_t> nodes;         ///< owned ∪ halo, ascending
    std::vector<std::size_t> owned_local;   ///< local row of each owned node
    std::vector<std::size_t> owned_global;  ///< global id of each owned node
    std::unique_ptr<InferenceEngine> engine;
    InferenceEngine::Workspace ws;
  };

  std::size_t n_ = 0;
  std::size_t horizon_ = 0;
  bool parallel_ = true;
  std::vector<Shard> shards_;
};

}  // namespace rihgcn::core
