#include "core/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::core {

namespace {

std::vector<std::size_t> subsample(const std::vector<std::size_t>& all,
                                   std::size_t cap, Rng& rng) {
  if (cap == 0 || all.size() <= cap) return all;
  // Evenly strided subsample with a random phase: keeps temporal coverage
  // (pure random subsets can cluster in one part of the timeline).
  std::vector<std::size_t> out;
  out.reserve(cap);
  const double stride = static_cast<double>(all.size()) / static_cast<double>(cap);
  const double phase = rng.uniform(0.0, stride);
  for (std::size_t k = 0; k < cap; ++k) {
    const auto idx = static_cast<std::size_t>(phase + stride * static_cast<double>(k));
    out.push_back(all[std::min(idx, all.size() - 1)]);
  }
  return out;
}

/// Forward/backward over batch windows [pos, batch_end) with per-worker
/// batch granularity on `pool` (one persistent crew per train_model call —
/// no thread spawn/join per batch). Chunk w of the grain-1 parallel_for IS
/// worker w: it owns a private gradient sink, a private arena tape from
/// `tapes` (reused via reset() across windows and batches), and the strided
/// item slice {w, w+workers, ...}. Because chunk bodies run under
/// the pool's reentrancy guard, every tensor kernel inside executes inline —
/// all parallelism is at batch granularity, none is wasted on intra-kernel
/// splits that BENCH_micro.json showed going flat. Sinks reduce into the
/// parameters in ascending worker order, and kernel results are
/// thread-count-invariant by the DESIGN.md §8 contract, so the result is
/// bitwise identical to any schedule with the same `workers` count (the
/// checkpoint determinism contract keys on num_threads for the slice
/// assignment alone). Returns the summed batch loss.
///
/// Partitioned mode (`ct` non-null, DESIGN.md §13): each batch window
/// expands into `cmult` work items, one per cluster, enumerated as
/// p = (b - pos) * cmult + c so consecutive items interleave clusters of the
/// same window across workers. With ct == nullptr / cmult == 1 the item
/// enumeration degenerates to exactly the original per-window slices.
double parallel_batch_gradients(ForecastModel& model, ClusterTrainable* ct,
                                std::size_t cmult,
                                const data::WindowSampler& sampler,
                                const std::vector<std::size_t>& train_idx,
                                const std::vector<std::size_t>& order,
                                std::size_t pos, std::size_t batch_end,
                                std::size_t workers, ThreadPool& pool,
                                std::vector<std::unique_ptr<ad::Tape>>& tapes) {
  const std::size_t items = (batch_end - pos) * cmult;
  workers = std::min(workers, items);
  while (tapes.size() < workers) {
    tapes.push_back(std::make_unique<ad::Tape>());
  }
  std::vector<ad::Tape::GradSink> sinks(workers);
  std::vector<double> losses(workers, 0.0);
  pool.parallel_for(0, workers, 1, [&](std::size_t w, std::size_t) {
    for (std::size_t p = w; p < items; p += workers) {
      const std::size_t b = pos + p / cmult;
      const data::Window window = sampler.make_window(train_idx[order[b]]);
      ad::Tape& tape = *tapes[w];
      tape.reset();
      ad::Var loss = ct == nullptr
                         ? model.training_loss(tape, window)
                         : ct->cluster_training_loss(tape, window, p % cmult);
      losses[w] += tape.value(loss)(0, 0);
      tape.backward_into(loss, sinks[w]);
    }
  });
  double total_loss = 0.0;
  for (std::size_t w = 0; w < workers; ++w) {
    total_loss += losses[w];
    for (auto& [param, grad] : sinks[w]) param->grad() += grad;
  }
  return total_loss;
}

}  // namespace

TrainReport train_model(ForecastModel& model,
                        const data::WindowSampler& sampler,
                        const data::SplitIndices& split,
                        const TrainConfig& config) {
  if (split.train.empty()) {
    throw std::invalid_argument("train_model: empty training split");
  }
  if (config.batch_size == 0) {
    throw std::invalid_argument("train_model: batch_size must be > 0");
  }
  if (config.num_threads == 0) {
    throw std::invalid_argument(
        "train_model: num_threads must be > 0 (1 = serial)");
  }
  if (config.resume && config.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "train_model: resume requires a checkpoint_path");
  }
  // Partitioned mode (DESIGN.md §13): resolve the capability up front so a
  // misconfigured model fails fast, before any epoch runs.
  ClusterTrainable* ct = nullptr;
  std::size_t cmult = 1;
  if (config.num_clusters > 1) {
    ct = dynamic_cast<ClusterTrainable*>(&model);
    if (ct == nullptr) {
      throw std::invalid_argument(
          "train_model: num_clusters > 1 requires a ClusterTrainable model");
    }
    ct->prepare_clusters(config.num_clusters, config.seed);
    cmult = ct->num_clusters();
    if (cmult <= 1) {  // model declined to partition (e.g. tiny graph)
      ct = nullptr;
      cmult = 1;
    }
  }
  Rng rng(config.seed);
  const std::vector<std::size_t> train_idx =
      subsample(split.train, config.max_train_windows, rng);
  const std::vector<std::size_t> val_idx =
      subsample(split.val, config.max_val_windows, rng);
  // No validation data: degrade to fixed-epoch training (documented in
  // trainer.hpp) — there is no metric to early-stop on or to pick a "best"
  // epoch by, so all epochs run and the final parameters are kept.
  const bool has_val = !val_idx.empty();

  std::vector<ad::Parameter*> params = model.parameters();
  nn::AdamOptimizer::Config opt_cfg;
  opt_cfg.lr = config.learning_rate;
  opt_cfg.max_grad_norm = config.max_grad_norm;
  nn::AdamOptimizer optimizer(params, opt_cfg);
  nn::EarlyStopping stopper(config.patience);
  NumericalGuard guard(params, optimizer, config.guard);

  TrainReport report;
  std::vector<Matrix> best_snapshot = nn::snapshot_values(params);
  std::size_t start_epoch = 0;
  if (config.resume) {
    const nn::TrainCheckpoint ckpt =
        nn::load_training_checkpoint(config.checkpoint_path, params);
    if (ckpt.batch_size != config.batch_size ||
        ckpt.num_threads != config.num_threads || ckpt.seed != config.seed) {
      throw std::runtime_error(
          "train_model: checkpoint determinism contract mismatch "
          "(batch_size/num_threads/seed differ from the saved run)");
    }
    rng.set_state(ckpt.rng);
    optimizer.set_state(ckpt.adam);
    stopper.restore(ckpt.stopper_best, ckpt.stopper_bad_epochs);
    GuardState gs;
    gs.loss_ema = ckpt.guard_loss_ema;
    gs.ema_initialized = ckpt.guard_ema_initialized;
    gs.good_steps = ckpt.guard_good_steps;
    gs.consecutive_bad = ckpt.guard_consecutive_bad;
    gs.backoffs_used = ckpt.guard_backoffs_used;
    guard.set_state(gs);
    if (!ckpt.best_values.empty()) best_snapshot = ckpt.best_values;
    start_epoch = ckpt.epoch;
    report.resumed_epoch = ckpt.epoch;
  }
  const auto write_checkpoint = [&](std::size_t completed_epochs) {
    nn::TrainCheckpoint ckpt;
    ckpt.epoch = completed_epochs;
    ckpt.batch_size = config.batch_size;
    ckpt.num_threads = config.num_threads;
    ckpt.seed = config.seed;
    ckpt.rng = rng.state();
    ckpt.adam = optimizer.state();
    ckpt.stopper_best = stopper.best();
    ckpt.stopper_bad_epochs = stopper.bad_epochs();
    const GuardState& gs = guard.state();
    ckpt.guard_loss_ema = gs.loss_ema;
    ckpt.guard_ema_initialized = gs.ema_initialized;
    ckpt.guard_good_steps = gs.good_steps;
    ckpt.guard_consecutive_bad = gs.consecutive_bad;
    ckpt.guard_backoffs_used = gs.backoffs_used;
    ckpt.best_values = best_snapshot;
    nn::save_training_checkpoint(config.checkpoint_path, ckpt, params);
    ++report.checkpoints_written;
  };
  // Arena tapes, hoisted out of the epoch/batch loops: reset() recycles node
  // slots and Matrix buffers, so steady-state training steps allocate
  // (almost) nothing (DESIGN.md §10). One tape per worker in the parallel
  // path; the serial path uses the first.
  ad::Tape serial_tape;
  std::vector<std::unique_ptr<ad::Tape>> worker_tapes;
  // Dedicated persistent crew for the data-parallel batch workers, sized to
  // the configured count (NOT the global pool: its size is a determinism
  // input recorded in checkpoints, so it must not be clamped or shared).
  // Constructed once per training run; a size-1 pool spawns no threads.
  ThreadPool batch_pool(config.num_threads);
  const std::size_t checkpoint_every =
      std::max<std::size_t>(1, config.checkpoint_every);
  for (std::size_t epoch = start_epoch; epoch < config.max_epochs; ++epoch) {
    if (has_val && stopper.should_stop()) {
      // Resumed from a checkpoint whose patience budget was already spent.
      report.early_stopped = true;
      break;
    }
    // ---- One training epoch ---------------------------------------------
    std::vector<std::size_t> order = rng.permutation(train_idx.size());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t pos = 0; pos < order.size();
         pos += config.batch_size) {
      const std::size_t batch_end =
          std::min(order.size(), pos + config.batch_size);
      optimizer.zero_grad();
      double batch_loss = 0.0;
      if (config.num_threads <= 1) {
        for (std::size_t b = pos; b < batch_end; ++b) {
          const data::Window w = sampler.make_window(train_idx[order[b]]);
          for (std::size_t c = 0; c < cmult; ++c) {
            serial_tape.reset();
            ad::Var loss = ct == nullptr
                               ? model.training_loss(serial_tape, w)
                               : ct->cluster_training_loss(serial_tape, w, c);
            batch_loss += serial_tape.value(loss)(0, 0);
            serial_tape.backward(loss);
          }
        }
      } else {
        batch_loss = parallel_batch_gradients(
            model, ct, cmult, sampler, train_idx, order, pos, batch_end,
            config.num_threads, batch_pool, worker_tapes);
      }
      // Average the accumulated gradient over the batch's work items (one
      // per window, or per (window, cluster) pair in partitioned mode).
      const double inv = 1.0 / static_cast<double>((batch_end - pos) * cmult);
      for (ad::Parameter* p : params) p->grad() *= inv;
      if (guard.inspect(batch_loss * inv) ==
          NumericalGuard::Verdict::kSkipBatch) {
        continue;  // vetoed: no step; guard handled backoff / rollback
      }
      optimizer.step();
      guard.after_step();
      epoch_loss += batch_loss * inv;
      ++batches;
    }
    report.train_losses.push_back(epoch_loss /
                                  static_cast<double>(std::max<std::size_t>(1, batches)));

    // ---- Validation -----------------------------------------------------------
    double val_mae;
    if (!has_val) {
      val_mae = report.train_losses.back();  // degenerate: no val data
    } else {
      val_mae = evaluate_prediction(model, sampler, val_idx,
                                    /*normalizer=*/nullptr)
                    .mae;
    }
    report.val_maes.push_back(val_mae);
    ++report.epochs_run;
    if (config.verbose) {
      std::printf("  [%s] epoch %zu: train %.4f, val MAE %.4f\n",
                  model.name().c_str(), epoch + 1,
                  report.train_losses.back(), val_mae);
    }
    if (has_val) {
      if (stopper.update(val_mae)) {
        best_snapshot = nn::snapshot_values(params);
      }
      if (stopper.should_stop()) {
        report.early_stopped = true;
        if (!config.checkpoint_path.empty()) write_checkpoint(epoch + 1);
        break;
      }
    }
    if (!config.checkpoint_path.empty() &&
        ((epoch + 1 - start_epoch) % checkpoint_every == 0 ||
         epoch + 1 == config.max_epochs)) {
      write_checkpoint(epoch + 1);
    }
  }
  if (has_val && config.restore_best && !params.empty()) {
    nn::restore_values(best_snapshot, params);
  }
  report.best_val_mae =
      has_val ? stopper.best()
              : (report.train_losses.empty() ? 0.0 : report.train_losses.back());
  report.guard = guard.counters();
  return report;
}

}  // namespace rihgcn::core
