// Mini-batch trainer shared by RIHGCN and every neural baseline: Adam with
// gradient clipping (paper §IV-B3: lr 1e-3, batch 64), early stopping on
// validation MAE with patience 6, and best-epoch parameter restoration.
//
// Mini-batching with a per-sample tape: gradients from `batch_size` windows
// accumulate into the parameters (Tape::backward does not zero them), then
// one optimizer step is applied to the averaged gradient.
//
// Fault tolerance (DESIGN.md §11): every step runs behind a NumericalGuard
// (non-finite loss/gradient and loss-spike detection with batch skipping,
// bounded LR backoff, and snapshot rollback), and the loop can write durable
// CRC-verified checkpoints and resume from them bitwise-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/robust.hpp"
#include "data/windows.hpp"
#include "nn/optim.hpp"

namespace rihgcn::core {

struct TrainConfig {
  std::size_t max_epochs = 30;
  std::size_t batch_size = 8;   ///< must be > 0 (validated)
  double learning_rate = 1e-3;
  double max_grad_norm = 5.0;
  std::size_t patience = 6;  ///< early-stopping patience (paper: 6)
  /// Random subsample caps keeping CPU budgets sane; 0 = use everything.
  std::size_t max_train_windows = 0;
  std::size_t max_val_windows = 0;
  bool verbose = false;
  std::uint64_t seed = 1234;
  /// Restore the best-validation parameters at the end.
  bool restore_best = true;
  /// Data-parallel workers per mini-batch; must be > 0 (validated). Each
  /// worker runs forward/backward for a slice of the batch into a private
  /// gradient sink; sinks are reduced in worker order, so results are
  /// deterministic for a fixed thread count (floating-point addition order
  /// changes with it).
  std::size_t num_threads = 1;
  /// Numerical health guard (see core/robust.hpp). Enabled by default; on
  /// healthy data it never intervenes and its counters stay zero.
  GuardConfig guard;
  /// Durable checkpointing: when non-empty, a rihgcn-train-ckpt v2 file is
  /// written here after every `checkpoint_every` completed epochs (and after
  /// the final epoch). Writes are atomic (temp file + rename).
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;
  /// Resume from `checkpoint_path` before training. The checkpoint must
  /// match this config's batch_size / num_threads / seed (determinism
  /// contract — see DESIGN.md §11); training continues at the saved epoch
  /// and, on a clean run, ends with parameters bitwise identical to an
  /// uninterrupted run.
  bool resume = false;
  /// Partitioned (Cluster-GCN-style) training, DESIGN.md §13: when > 1 the
  /// model must implement ClusterTrainable (validated with dynamic_cast,
  /// std::invalid_argument otherwise). prepare_clusters(num_clusters, seed)
  /// runs once before the epoch loop, and each batch window expands into one
  /// work item per (window, cluster) pair; the gradient is averaged over
  /// items, so a full sweep of clusters covers every owned node exactly
  /// once. 0 or 1 = standard full-graph training (bitwise unchanged). The
  /// value is part of the determinism contract but is NOT serialized into
  /// checkpoints — resuming with a different num_clusters is undefined.
  std::size_t num_clusters = 0;
};

struct TrainReport {
  std::size_t epochs_run = 0;  ///< epochs executed THIS run (excl. resumed)
  double best_val_mae = 0.0;
  bool early_stopped = false;
  std::vector<double> train_losses;  ///< mean per epoch (accepted batches)
  std::vector<double> val_maes;      ///< per epoch (normalized units)
  /// Numerical-guard activity (all zero on a clean run).
  GuardCounters guard;
  std::size_t checkpoints_written = 0;
  /// Epoch the run resumed from (0 when starting fresh).
  std::size_t resumed_epoch = 0;
};

/// Train `model` on the train split, early-stop on the validation split.
///
/// Degenerate splits: an empty training split throws std::invalid_argument.
/// An EMPTY VALIDATION split degrades to fixed-epoch training — early
/// stopping and best-epoch restoration are disabled (there is no metric to
/// monitor), all `max_epochs` epochs run, the final parameters are kept, and
/// `val_maes`/`best_val_mae` mirror the training loss for observability.
TrainReport train_model(ForecastModel& model,
                        const data::WindowSampler& sampler,
                        const data::SplitIndices& split,
                        const TrainConfig& config);

}  // namespace rihgcn::core
