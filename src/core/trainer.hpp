// Mini-batch trainer shared by RIHGCN and every neural baseline: Adam with
// gradient clipping (paper §IV-B3: lr 1e-3, batch 64), early stopping on
// validation MAE with patience 6, and best-epoch parameter restoration.
//
// Mini-batching with a per-sample tape: gradients from `batch_size` windows
// accumulate into the parameters (Tape::backward does not zero them), then
// one optimizer step is applied to the averaged gradient.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/model.hpp"
#include "data/windows.hpp"
#include "nn/optim.hpp"

namespace rihgcn::core {

struct TrainConfig {
  std::size_t max_epochs = 30;
  std::size_t batch_size = 8;
  double learning_rate = 1e-3;
  double max_grad_norm = 5.0;
  std::size_t patience = 6;  ///< early-stopping patience (paper: 6)
  /// Random subsample caps keeping CPU budgets sane; 0 = use everything.
  std::size_t max_train_windows = 0;
  std::size_t max_val_windows = 0;
  bool verbose = false;
  std::uint64_t seed = 1234;
  /// Restore the best-validation parameters at the end.
  bool restore_best = true;
  /// Data-parallel workers per mini-batch. Each worker runs forward/backward
  /// for a slice of the batch into a private gradient sink; sinks are
  /// reduced in worker order, so results are deterministic for a fixed
  /// thread count (floating-point addition order changes with it).
  std::size_t num_threads = 1;
};

struct TrainReport {
  std::size_t epochs_run = 0;
  double best_val_mae = 0.0;
  bool early_stopped = false;
  std::vector<double> train_losses;  ///< mean per epoch
  std::vector<double> val_maes;      ///< per epoch (normalized units)
};

/// Train `model` on the train split, early-stop on the validation split.
TrainReport train_model(ForecastModel& model,
                        const data::WindowSampler& sampler,
                        const data::SplitIndices& split,
                        const TrainConfig& config);

}  // namespace rihgcn::core
