#include "data/dataset.hpp"

#include <cmath>
#include <stdexcept>

namespace rihgcn::data {

Matrix TrafficDataset::observed(std::size_t t) const {
  return hadamard(truth.at(t), mask.at(t));
}

double TrafficDataset::missing_rate() const {
  if (truth.empty()) return 0.0;
  double missing = 0.0, total = 0.0;
  for (const Matrix& m : mask) {
    total += static_cast<double>(m.size());
    missing += static_cast<double>(m.size()) - m.sum();
  }
  return total > 0.0 ? missing / total : 0.0;
}

void TrafficDataset::validate() const {
  if (truth.size() != mask.size()) {
    throw std::invalid_argument("TrafficDataset: truth/mask length differ");
  }
  if (truth.empty()) return;
  const std::size_t n = truth.front().rows();
  const std::size_t d = truth.front().cols();
  for (std::size_t t = 0; t < truth.size(); ++t) {
    if (truth[t].rows() != n || truth[t].cols() != d) {
      throw std::invalid_argument("TrafficDataset: ragged truth shapes");
    }
    if (!truth[t].same_shape(mask[t])) {
      throw std::invalid_argument("TrafficDataset: mask shape mismatch");
    }
    if (truth[t].has_non_finite()) {
      throw std::invalid_argument("TrafficDataset: non-finite truth values");
    }
    for (std::size_t i = 0; i < mask[t].size(); ++i) {
      const double v = mask[t].data()[i];
      if (v != 0.0 && v != 1.0) {
        throw std::invalid_argument("TrafficDataset: mask must be 0/1");
      }
    }
  }
  if (coords.rows() != n && coords.rows() != 0) {
    throw std::invalid_argument("TrafficDataset: coords row count mismatch");
  }
  if (geo_distances.rows() != geo_distances.cols() ||
      (geo_distances.rows() != n && geo_distances.rows() != 0)) {
    throw std::invalid_argument("TrafficDataset: geo_distances shape");
  }
  if (steps_per_day == 0) {
    throw std::invalid_argument("TrafficDataset: steps_per_day == 0");
  }
}

ZScoreNormalizer::ZScoreNormalizer(const TrafficDataset& ds,
                                   std::size_t fit_end) {
  if (fit_end == 0 || fit_end > ds.num_timesteps()) {
    throw std::invalid_argument("ZScoreNormalizer: bad fit range");
  }
  const std::size_t d = ds.num_features();
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  std::vector<double> sum(d, 0.0), sum2(d, 0.0), count(d, 0.0);
  for (std::size_t t = 0; t < fit_end; ++t) {
    const Matrix& x = ds.truth[t];
    const Matrix& m = ds.mask[t];
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t f = 0; f < d; ++f) {
        if (m(i, f) > 0.5) {
          sum[f] += x(i, f);
          sum2[f] += x(i, f) * x(i, f);
          count[f] += 1.0;
        }
      }
    }
  }
  for (std::size_t f = 0; f < d; ++f) {
    if (count[f] > 0.0) {
      mean_[f] = sum[f] / count[f];
      const double var = std::max(0.0, sum2[f] / count[f] - mean_[f] * mean_[f]);
      std_[f] = var > 1e-12 ? std::sqrt(var) : 1.0;
    }
  }
}

void ZScoreNormalizer::normalize(TrafficDataset& ds) const {
  for (Matrix& x : ds.truth) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t f = 0; f < x.cols(); ++f) {
        x(i, f) = (x(i, f) - mean_[f]) / std_[f];
      }
    }
  }
}

Matrix ZScoreNormalizer::denormalize(const Matrix& m) const {
  Matrix out = m;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t f = 0; f < out.cols(); ++f) {
      out(i, f) = out(i, f) * std_[f % std_.size()] + mean_[f % mean_.size()];
    }
  }
  return out;
}

double ZScoreNormalizer::denormalize(double v, std::size_t feature) const {
  return v * std_.at(feature) + mean_.at(feature);
}

double ZScoreNormalizer::normalize_value(double v, std::size_t feature) const {
  return (v - mean_.at(feature)) / std_.at(feature);
}

}  // namespace rihgcn::data
