// The canonical in-memory traffic dataset: a complete ground-truth series
// (synthetic generators know the truth), an observation mask describing what
// a deployed system would actually have seen, and the road-network geometry
// needed to build the geographic graph.
//
// Layout convention used across the library: time-major vectors of N x D
// matrices — values[t](i, d) is feature d of node i at timestep t, matching
// the paper's X ∈ R^{N x D x T} tensor (Fig. 1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace rihgcn::data {

using rihgcn::Matrix;

struct TrafficDataset {
  std::string name;
  /// Ground-truth measurements; complete (synthetic generators know truth).
  std::vector<Matrix> truth;  ///< T entries of N x D
  /// Observation mask: 1 = the sensor reported this entry, 0 = missing.
  std::vector<Matrix> mask;  ///< T entries of N x D
  /// Node coordinates (N x 2, km in a local projection).
  Matrix coords;
  /// Road-network distances between nodes (N x N, km). May exceed Euclidean
  /// distance (roads are not straight lines).
  Matrix geo_distances;
  /// Timeline resolution.
  std::size_t steps_per_day = 288;  // 5-minute bins by default

  [[nodiscard]] std::size_t num_timesteps() const noexcept {
    return truth.size();
  }
  [[nodiscard]] std::size_t num_nodes() const {
    return truth.empty() ? 0 : truth.front().rows();
  }
  [[nodiscard]] std::size_t num_features() const {
    return truth.empty() ? 0 : truth.front().cols();
  }

  /// What a model is allowed to see: truth ⊙ mask (zeros where missing).
  [[nodiscard]] Matrix observed(std::size_t t) const;
  /// Fraction of entries with mask == 0 over the whole series.
  [[nodiscard]] double missing_rate() const;
  /// Time-of-day slot of timestep t.
  [[nodiscard]] std::size_t slot_of(std::size_t t) const {
    return t % steps_per_day;
  }

  /// Throws std::invalid_argument if shapes are inconsistent.
  void validate() const;
};

/// Per-feature Z-score normalization fitted on OBSERVED entries of a prefix
/// of the series (the training split), per the paper's preprocessing.
class ZScoreNormalizer {
 public:
  /// Fit on observed entries of timesteps [0, fit_end).
  ZScoreNormalizer(const TrafficDataset& ds, std::size_t fit_end);

  /// Normalize every truth matrix in place (mask untouched).
  void normalize(TrafficDataset& ds) const;
  /// Invert on a single matrix whose columns are dataset features.
  [[nodiscard]] Matrix denormalize(const Matrix& m) const;
  /// Invert a scalar of feature d.
  [[nodiscard]] double denormalize(double v, std::size_t feature) const;
  [[nodiscard]] double normalize_value(double v, std::size_t feature) const;

  [[nodiscard]] const std::vector<double>& means() const noexcept {
    return mean_;
  }
  [[nodiscard]] const std::vector<double>& stds() const noexcept {
    return std_;
  }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace rihgcn::data
