#include "data/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rihgcn::data {

namespace {

void check_rate(double rate, const char* what) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument(std::string("FaultInjector: ") + what +
                                " must be in [0, 1]");
  }
}

}  // namespace

FaultStats FaultInjector::nan_burst(TrafficDataset& ds, double rate,
                                    double mean_len) {
  check_rate(rate, "nan_burst rate");
  if (!(mean_len >= 1.0)) {
    throw std::invalid_argument("FaultInjector: nan_burst mean_len must be >= 1");
  }
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  FaultStats stats;
  const std::size_t T = ds.num_timesteps();
  const std::size_t N = ds.num_nodes();
  const std::size_t D = ds.num_features();
  // remaining[i*D + f] = timesteps left in this stream's active burst.
  std::vector<std::size_t> remaining(N * D, 0);
  const double p_continue = 1.0 - 1.0 / mean_len;  // geometric length
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t f = 0; f < D; ++f) {
        std::size_t& rem = remaining[i * D + f];
        if (rem == 0 && rng_.bernoulli(rate)) {
          rem = 1;
          while (rng_.bernoulli(p_continue)) ++rem;
          ++stats.events;
        }
        if (rem > 0) {
          --rem;
          if (ds.mask[t](i, f) > 0.5) {
            ds.truth[t](i, f) = kNaN;  // mask still claims "observed"
            ++stats.entries_corrupted;
          }
        }
      }
    }
  }
  return stats;
}

FaultStats FaultInjector::stuck_at(TrafficDataset& ds, double fraction,
                                   std::size_t duration) {
  check_rate(fraction, "stuck_at fraction");
  FaultStats stats;
  const std::size_t T = ds.num_timesteps();
  const std::size_t N = ds.num_nodes();
  const std::size_t D = ds.num_features();
  if (T == 0 || duration == 0) return stats;
  const auto victims = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(N)));
  for (std::size_t i : rng_.sample_without_replacement(N, victims)) {
    const std::size_t start = rng_.uniform_index(T);
    const std::size_t end = std::min(T, start + duration);
    ++stats.events;
    for (std::size_t f = 0; f < D; ++f) {
      const double frozen = ds.truth[start](i, f);
      for (std::size_t t = start + 1; t < end; ++t) {
        ds.truth[t](i, f) = frozen;
        ++stats.entries_corrupted;
      }
    }
  }
  return stats;
}

FaultStats FaultInjector::spike(TrafficDataset& ds, double rate,
                                double magnitude) {
  check_rate(rate, "spike rate");
  FaultStats stats;
  double peak = 1.0;
  for (const Matrix& x : ds.truth) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double a = std::abs(x.data()[i]);
      if (std::isfinite(a)) peak = std::max(peak, a);
    }
  }
  const double amp = magnitude * peak;
  for (std::size_t t = 0; t < ds.num_timesteps(); ++t) {
    for (std::size_t i = 0; i < ds.num_nodes(); ++i) {
      for (std::size_t f = 0; f < ds.num_features(); ++f) {
        if (ds.mask[t](i, f) > 0.5 && rng_.bernoulli(rate)) {
          ds.truth[t](i, f) = rng_.bernoulli(0.5) ? amp : -amp;
          ++stats.entries_corrupted;
          ++stats.events;
        }
      }
    }
  }
  return stats;
}

FaultStats FaultInjector::sensor_dropout(TrafficDataset& ds, double fraction,
                                         std::size_t duration) {
  check_rate(fraction, "sensor_dropout fraction");
  FaultStats stats;
  const std::size_t T = ds.num_timesteps();
  const std::size_t N = ds.num_nodes();
  const std::size_t D = ds.num_features();
  if (T == 0 || duration == 0) return stats;
  const auto victims = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(N)));
  for (std::size_t i : rng_.sample_without_replacement(N, victims)) {
    const std::size_t start = rng_.uniform_index(T);
    const std::size_t end = std::min(T, start + duration);
    ++stats.events;
    for (std::size_t t = start; t < end; ++t) {
      for (std::size_t f = 0; f < D; ++f) {
        if (ds.mask[t](i, f) > 0.5) {
          ds.mask[t](i, f) = 0.0;
          ++stats.entries_masked;
        }
      }
    }
  }
  return stats;
}

FaultStats FaultInjector::feed_gap(TrafficDataset& ds, std::size_t len) {
  FaultStats stats;
  const std::size_t T = ds.num_timesteps();
  if (T == 0 || len == 0) return stats;
  const std::size_t start = rng_.uniform_index(T);
  const std::size_t end = std::min(T, start + len);
  ++stats.events;
  for (std::size_t t = start; t < end; ++t) {
    for (std::size_t i = 0; i < ds.mask[t].size(); ++i) {
      if (ds.mask[t].data()[i] > 0.5) {
        ds.mask[t].data()[i] = 0.0;
        ++stats.entries_masked;
      }
    }
  }
  return stats;
}

}  // namespace rihgcn::data
