// Deterministic fault injection for robustness testing (DESIGN.md §11).
//
// Real sensor networks fail in characteristic ways that a Bernoulli missing
// mask does not capture: a flaky unit emits NaN for a stretch, a frozen
// register repeats one value, electrical noise produces absurd spikes, a
// sensor goes offline for hours, and an upstream feed drops whole timesteps.
// FaultInjector corrupts a TrafficDataset in place with each of those modes,
// driven by a seeded Rng so every fault pattern is exactly reproducible —
// the robustness test suite (tests/test_robust.cpp) asserts that training
// survives each class with finite parameters and that the NumericalGuard /
// OnlineForecaster counters register the damage.
//
// Conventions:
//   * Faults corrupt `truth` DIRECTLY and leave `mask` claiming the entry is
//     observed (except sensor_dropout / feed_gap, which clear the mask the
//     way a real outage would). A corrupted-but-"observed" entry is exactly
//     the hard case the guards exist for.
//   * All methods return FaultStats describing what was injected, so tests
//     can assert non-trivial corruption actually happened.
#pragma once

#include <cstddef>
#include <cstdint>

#include "data/dataset.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::data {

/// What one injection call actually did (for test assertions / logging).
struct FaultStats {
  std::size_t entries_corrupted = 0;  ///< truth entries overwritten
  std::size_t entries_masked = 0;     ///< mask entries cleared to 0
  std::size_t events = 0;             ///< bursts / stuck runs / gaps started
};

/// Seeded, repeatable corruption of a TrafficDataset.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// NaN bursts: each (node, feature) stream independently starts a burst
  /// with probability `rate` per timestep; a burst overwrites the next
  /// geometric(mean_len) observed entries with quiet NaN while the mask
  /// still claims them observed.
  FaultStats nan_burst(TrafficDataset& ds, double rate, double mean_len = 3.0);

  /// Stuck-at: a `fraction` of nodes freeze — for `duration` consecutive
  /// timesteps starting at a random offset, every feature repeats the value
  /// it had when the fault began (mask untouched).
  FaultStats stuck_at(TrafficDataset& ds, double fraction,
                      std::size_t duration);

  /// Spikes: each observed entry is independently replaced, with probability
  /// `rate`, by `magnitude` times the largest absolute value in the series
  /// (sign random) — the classic electrical-glitch outlier.
  FaultStats spike(TrafficDataset& ds, double rate, double magnitude = 100.0);

  /// Sensor dropout: a `fraction` of nodes go fully dark (mask cleared on
  /// every feature) for `duration` consecutive timesteps at a random offset.
  FaultStats sensor_dropout(TrafficDataset& ds, double fraction,
                            std::size_t duration);

  /// Feed gap: `len` consecutive whole timesteps lose ALL observations
  /// (mask cleared everywhere), starting at a random offset.
  FaultStats feed_gap(TrafficDataset& ds, std::size_t len);

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  Rng rng_;
};

}  // namespace rihgcn::data
