#include "data/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace rihgcn::data {

namespace {

/// Gaussian bump centred at `center` hours with `width` hours, evaluated at
/// hour-of-day h (handles wrap-around at midnight).
double bump(double h, double center, double width) {
  double d = std::abs(h - center);
  d = std::min(d, 24.0 - d);
  return std::exp(-d * d / (2.0 * width * width));
}

struct Incident {
  std::size_t corridor;
  double position_km;    // along the corridor
  double start_hour;     // absolute hours since dataset start
  double duration_hours;
  double severity;       // fraction of speed removed at epicentre
};

}  // namespace

TrafficDataset generate_pems_like(const PemsLikeConfig& config) {
  Rng rng(config.seed);
  const std::size_t n = config.num_nodes;
  const std::size_t d = config.num_features;
  const std::size_t total_steps = config.num_days * config.steps_per_day;
  const double minutes_per_step = 24.0 * 60.0 / static_cast<double>(config.steps_per_day);

  TrafficDataset ds;
  ds.name = "pems-like";
  ds.steps_per_day = config.steps_per_day;

  // ---- Geometry: corridors radiating from a hub --------------------------
  std::vector<std::size_t> corridor(n);
  std::vector<double> hub_dist(n);  // km along the corridor from the hub
  ds.coords = Matrix(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    corridor[i] = i % std::max<std::size_t>(1, config.num_corridors);
    const std::size_t rank = i / std::max<std::size_t>(1, config.num_corridors);
    hub_dist[i] = 2.0 + 1.5 * static_cast<double>(rank) + rng.uniform(-0.4, 0.4);
    const double angle = 2.0 * std::numbers::pi *
                         static_cast<double>(corridor[i]) /
                         static_cast<double>(std::max<std::size_t>(1, config.num_corridors));
    ds.coords(i, 0) = hub_dist[i] * std::cos(angle);
    ds.coords(i, 1) = hub_dist[i] * std::sin(angle);
  }
  // Road distances: along a corridor it's the position gap; across
  // corridors traffic must pass the hub.
  ds.geo_distances = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dist = corridor[i] == corridor[j]
                              ? std::abs(hub_dist[i] - hub_dist[j])
                              : hub_dist[i] + hub_dist[j];
      ds.geo_distances(i, j) = ds.geo_distances(j, i) = dist;
    }
  }

  // ---- Per-node traffic "personality" --------------------------------------
  std::vector<double> free_flow(n), severity(n), morning_center(n),
      evening_center(n);
  // Spatially smooth severity: a per-corridor base plus a slow gradient with
  // hub distance, so nearby sensors congest together (what GCN exploits).
  std::vector<double> corridor_base(config.num_corridors);
  for (auto& c : corridor_base) c = rng.uniform(0.6, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    free_flow[i] = config.free_flow_mean +
                   rng.uniform(-config.free_flow_spread, config.free_flow_spread);
    const double proximity = std::exp(-hub_dist[i] / 12.0);  // worse near hub
    severity[i] = config.rush_severity * corridor_base[corridor[i]] *
                  (0.55 + 0.45 * proximity) * rng.uniform(0.85, 1.15);
    // Congestion wave: the morning inbound wave reaches hub-side sensors
    // later; the evening outbound wave propagates away from the hub.
    const double delay_h =
        hub_dist[i] * config.wave_delay_minutes / 60.0 / 1.5;
    morning_center[i] = 8.0 - delay_h;   // far sensors congest first inbound
    evening_center[i] = 17.5 + delay_h;  // near sensors congest first outbound
  }

  // ---- Incidents -------------------------------------------------------------
  std::vector<Incident> incidents;
  const double expected = config.incidents_per_day * static_cast<double>(config.num_days);
  const std::size_t n_incidents = static_cast<std::size_t>(expected);
  for (std::size_t k = 0; k < n_incidents; ++k) {
    Incident inc;
    inc.corridor = rng.uniform_index(std::max<std::size_t>(1, config.num_corridors));
    inc.position_km = rng.uniform(2.0, 2.0 + 1.5 * static_cast<double>(n / std::max<std::size_t>(1, config.num_corridors)));
    inc.start_hour = rng.uniform(5.0, 22.0) +
                     24.0 * static_cast<double>(rng.uniform_index(config.num_days));
    inc.duration_hours = rng.uniform(0.3, 1.5);
    inc.severity = rng.uniform(0.25, 0.6);
    incidents.push_back(inc);
  }

  // ---- Time loop ---------------------------------------------------------------
  std::vector<double> ar_noise(n, 0.0);
  ds.truth.reserve(total_steps);
  ds.mask.reserve(total_steps);
  const double innovation =
      config.noise_std * std::sqrt(std::max(0.0, 1.0 - config.noise_ar * config.noise_ar));
  for (std::size_t t = 0; t < total_steps; ++t) {
    const double abs_hour = static_cast<double>(t) * minutes_per_step / 60.0;
    const double hour = std::fmod(abs_hour, 24.0);
    const std::size_t day = t / config.steps_per_day;
    const bool weekend = (day % 7) >= 5;
    Matrix x(n, d);
    for (std::size_t i = 0; i < n; ++i) {
      const double weekday_scale = weekend ? 0.25 : 1.0;
      double congestion =
          severity[i] * weekday_scale *
          (bump(hour, morning_center[i], 1.1) +
           0.9 * bump(hour, evening_center[i], 1.3)) +
          0.06 * severity[i] * bump(hour, 12.5, 2.5);  // mild midday
      for (const Incident& inc : incidents) {
        if (inc.corridor != corridor[i]) continue;
        if (abs_hour < inc.start_hour ||
            abs_hour > inc.start_hour + inc.duration_hours) {
          continue;
        }
        const double road_gap = std::abs(hub_dist[i] - inc.position_km);
        congestion += inc.severity * std::exp(-road_gap / 2.0);
      }
      congestion = std::min(congestion, 0.85);
      ar_noise[i] = config.noise_ar * ar_noise[i] + rng.normal(0.0, innovation);
      const double speed =
          std::clamp(free_flow[i] * (1.0 - congestion) + ar_noise[i], 3.0, 90.0);
      x(i, 0) = speed;
      // Lane speeds: fast lane above average, right lane below, each with
      // its own small noise — correlated features as in PeMS.
      static constexpr double kLaneOffset[3] = {3.5, 0.5, -4.0};
      for (std::size_t f = 1; f < d; ++f) {
        const double off = f - 1 < 3 ? kLaneOffset[f - 1] : 0.0;
        x(i, f) = std::clamp(speed + off + rng.normal(0.0, 0.8), 3.0, 95.0);
      }
    }
    ds.truth.push_back(std::move(x));
    ds.mask.emplace_back(n, d, 1.0);
  }
  ds.validate();
  return ds;
}

TrafficDataset generate_stampede_like(const StampedeLikeConfig& config) {
  Rng rng(config.seed);
  const std::size_t n = config.num_segments;
  const std::size_t total_steps = config.num_days * config.steps_per_day;
  const double minutes_per_step =
      24.0 * 60.0 / static_cast<double>(config.steps_per_day);

  TrafficDataset ds;
  ds.name = "stampede-like";
  ds.steps_per_day = config.steps_per_day;

  // ---- Geometry: segments around a campus loop ------------------------------
  ds.coords = Matrix(n, 2);
  std::vector<double> seg_len_km(n);
  double loop_km = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    seg_len_km[i] = rng.uniform(0.4, 1.1);
    loop_km += seg_len_km[i];
  }
  double arc = 0.0;
  std::vector<double> arc_pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    arc_pos[i] = arc + seg_len_km[i] / 2.0;
    arc += seg_len_km[i];
    const double theta = 2.0 * std::numbers::pi * arc_pos[i] / loop_km;
    const double radius = loop_km / (2.0 * std::numbers::pi);
    ds.coords(i, 0) = radius * std::cos(theta);
    ds.coords(i, 1) = radius * std::sin(theta);
  }
  ds.geo_distances = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double forward = std::abs(arc_pos[i] - arc_pos[j]);
      const double dist = std::min(forward, loop_km - forward);
      ds.geo_distances(i, j) = ds.geo_distances(j, i) = dist;
    }
  }

  // ---- Travel-time ground truth --------------------------------------------
  // Class-change surges on the hour during teaching hours; each segment has
  // its own sensitivity (segments near lecture halls surge harder).
  std::vector<double> base(n), sensitivity(n);
  std::vector<int> lights(n);
  for (std::size_t i = 0; i < n; ++i) {
    base[i] = std::max(45.0, config.base_travel_seconds +
                                 rng.uniform(-config.base_travel_spread,
                                             config.base_travel_spread));
    sensitivity[i] = rng.uniform(0.4, 1.0);
    lights[i] = static_cast<int>(rng.uniform_index(4));  // traffic lights
  }
  static constexpr double kSurgeHours[] = {9.0, 11.0, 13.0, 15.0, 17.0};
  // Day-to-day variability: surge intensity varies (exam weeks, weather) and
  // some days host campus events that congest a stretch of the loop in the
  // evening. Without this the series would be perfectly periodic and the
  // historical-average baseline would be unbeatable — unlike real campuses.
  std::vector<double> day_factor(config.num_days);
  std::vector<int> event_center(config.num_days, -1);
  for (std::size_t day = 0; day < config.num_days; ++day) {
    day_factor[day] = rng.uniform(0.6, 1.4);
    if (rng.bernoulli(0.35)) {
      event_center[day] = static_cast<int>(rng.uniform_index(n));
    }
  }
  std::vector<double> ar_noise(n, 0.0);
  ds.truth.reserve(total_steps);
  for (std::size_t t = 0; t < total_steps; ++t) {
    const double hour =
        std::fmod(static_cast<double>(t) * minutes_per_step / 60.0, 24.0);
    const std::size_t day = t / config.steps_per_day;
    const bool weekend = (day % 7) >= 5;
    Matrix x(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      double surge = 0.0;
      for (const double c : kSurgeHours) surge += bump(hour, c, 0.35);
      surge *= (weekend ? 0.15 : 1.0) * day_factor[day];
      if (event_center[day] >= 0) {
        const double hop =
            std::min({std::abs(static_cast<double>(i) - event_center[day]),
                      static_cast<double>(i) + n - event_center[day],
                      static_cast<double>(event_center[day]) + n - i});
        surge += 2.5 * bump(hour, 19.0, 1.0) * std::exp(-hop / 2.0);
      }
      ar_noise[i] = 0.7 * ar_noise[i] + rng.normal(0.0, config.noise_std);
      const double light_delay =
          static_cast<double>(lights[i]) * rng.uniform(0.0, 15.0);
      const double tt = base[i] *
                            (1.0 + config.surge_factor * sensitivity[i] * surge) +
                        light_delay + ar_noise[i];
      x(i, 0) = std::max(30.0, tt);
    }
    ds.truth.push_back(std::move(x));
    ds.mask.emplace_back(n, 1);  // filled by the shuttle simulation below
  }

  // ---- Shuttle simulation -> structural observation mask --------------------
  // Each shuttle circulates the loop during service hours; completing a
  // segment produces one observation of that segment in the bin where the
  // traversal finishes. This reproduces the roving-sensor sampling pattern:
  // quasi-periodic per segment, bursty, with overnight gaps.
  const double seconds_per_step = minutes_per_step * 60.0;
  const std::size_t per_loop = std::max<std::size_t>(
      1, std::min(config.segments_per_loop, n));
  for (std::size_t k = 0; k < config.num_shuttles; ++k) {
    // Stagger starting segments and phase so shuttles spread over the loop.
    std::size_t seg = rng.uniform_index(n);
    const double clock_s = config.service_start_hour * 3600.0 +
                           rng.uniform(0.0, config.loop_minutes * 60.0);
    for (std::size_t day = 0; day < config.num_days; ++day) {
      const double day_start = static_cast<double>(day) * 86400.0;
      double tsec = day_start + clock_s;
      const double day_end = day_start + config.service_end_hour * 3600.0;
      while (tsec < day_end) {
        // One loop: traverse `per_loop` consecutive monitored segments...
        double monitored_time = 0.0;
        for (std::size_t j = 0; j < per_loop && tsec < day_end; ++j) {
          const std::size_t bin =
              std::min(total_steps - 1,
                       static_cast<std::size_t>(tsec / seconds_per_step));
          // Traversal takes the segment's current travel time plus a stop.
          const double tt = ds.truth[bin](seg, 0) + rng.uniform(10.0, 40.0);
          tsec += tt;
          monitored_time += tt;
          if (tsec >= day_end) break;
          const std::size_t done_bin =
              std::min(total_steps - 1,
                       static_cast<std::size_t>(tsec / seconds_per_step));
          ds.mask[done_bin](seg, 0) = 1.0;
          seg = (seg + 1) % n;
        }
        // ...then spend the rest of the loop on unmonitored city roads.
        const double loop_s =
            config.loop_minutes * 60.0 * rng.uniform(0.9, 1.1);
        tsec += std::max(0.0, loop_s - monitored_time);
      }
    }
  }
  ds.validate();
  return ds;
}

TrafficDataset generate_air_quality_like(const AirQualityConfig& config) {
  Rng rng(config.seed);
  const std::size_t n = config.num_stations;
  const std::size_t total_steps = config.num_days * config.steps_per_day;
  const double hours_per_step =
      24.0 / static_cast<double>(config.steps_per_day);

  TrafficDataset ds;
  ds.name = "air-quality-like";
  ds.steps_per_day = config.steps_per_day;

  // ---- Station layout: uniform scatter over the city -------------------------
  ds.coords = Matrix(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    ds.coords(i, 0) = rng.uniform(0.0, config.city_km);
    ds.coords(i, 1) = rng.uniform(0.0, config.city_km);
  }
  // Air pollution diffuses isotropically: road distance == Euclidean.
  ds.geo_distances = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = ds.coords(i, 0) - ds.coords(j, 0);
      const double dy = ds.coords(i, 1) - ds.coords(j, 1);
      const double d = std::sqrt(dx * dx + dy * dy);
      ds.geo_distances(i, j) = ds.geo_distances(j, i) = d;
    }
  }

  // Per-station emission context: stations near the (random) industrial
  // corner read higher; a traffic-exposure factor scales the diurnal peaks.
  const double ind_x = rng.uniform(0.0, config.city_km);
  const double ind_y = rng.uniform(0.0, config.city_km);
  std::vector<double> industry(n), traffic(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = ds.coords(i, 0) - ind_x;
    const double dy = ds.coords(i, 1) - ind_y;
    industry[i] = 10.0 * std::exp(-std::sqrt(dx * dx + dy * dy) / 8.0);
    traffic[i] = rng.uniform(0.5, 1.3);
  }

  // ---- Synoptic episodes: stagnation events raising the whole city, with a
  // front that sweeps across it over ~a day --------------------------------
  struct Episode {
    double start_hour;
    double duration_hours;
    double magnitude;
    double dir_x, dir_y;  // front normal (unit)
  };
  std::vector<Episode> episodes;
  const auto n_episodes = static_cast<std::size_t>(config.episodes);
  for (std::size_t k = 0; k < n_episodes; ++k) {
    Episode e;
    e.start_hour = rng.uniform(0.0, 24.0 * static_cast<double>(config.num_days));
    e.duration_hours = rng.uniform(24.0, 72.0);
    e.magnitude = rng.uniform(15.0, 45.0);
    const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
    e.dir_x = std::cos(theta);
    e.dir_y = std::sin(theta);
    episodes.push_back(e);
  }

  std::vector<double> ar_noise(n, 0.0);
  ds.truth.reserve(total_steps);
  ds.mask.reserve(total_steps);
  for (std::size_t t = 0; t < total_steps; ++t) {
    const double abs_hour = static_cast<double>(t) * hours_per_step;
    const double hour = std::fmod(abs_hour, 24.0);
    const std::size_t day = t / config.steps_per_day;
    const bool weekend = (day % 7) >= 5;
    Matrix x(n, 2);
    for (std::size_t i = 0; i < n; ++i) {
      // Diurnal: traffic peaks plus a nocturnal boundary-layer bump.
      const double diurnal =
          config.traffic_amp * traffic[i] * (weekend ? 0.4 : 1.0) *
              (bump(hour, 8.0, 1.5) + 0.8 * bump(hour, 18.0, 2.0)) +
          5.0 * bump(hour, 23.0, 2.5);
      double episodic = 0.0;
      for (const Episode& e : episodes) {
        if (abs_hour < e.start_hour ||
            abs_hour > e.start_hour + e.duration_hours) {
          continue;
        }
        // Front position sweeps along dir over the first 24 h.
        const double progress =
            std::min(1.0, (abs_hour - e.start_hour) / 24.0);
        const double coord = (ds.coords(i, 0) * e.dir_x +
                              ds.coords(i, 1) * e.dir_y) /
                             config.city_km;  // 0..~1.4
        const double arrival = coord / 1.5;   // fraction of sweep
        if (progress >= arrival) {
          // Ramp up after arrival, decay near the episode end.
          const double tail =
              (e.start_hour + e.duration_hours - abs_hour) / 12.0;
          episodic += e.magnitude * std::min({1.0, tail});
        }
      }
      ar_noise[i] = 0.75 * ar_noise[i] + rng.normal(0.0, config.noise_std);
      const double pm25 = std::max(
          2.0, config.base_pm + industry[i] + diurnal + episodic + ar_noise[i]);
      x(i, 0) = pm25;
      // PM10 tracks PM2.5 with a dust component and its own noise.
      x(i, 1) = std::max(3.0, 1.4 * pm25 + rng.normal(6.0, 2.0));
    }
    ds.truth.push_back(std::move(x));
    ds.mask.emplace_back(n, 2, 1.0);
  }
  ds.validate();
  return ds;
}

}  // namespace rihgcn::data
