// Synthetic traffic-data generators standing in for the paper's two
// datasets (see DESIGN.md §1 for the substitution rationale):
//
//  * PemsLikeGenerator — highway loop-detector network a la Caltrans PeMS
//    district 07: N sensors along corridors, speed in mph with rush-hour
//    dips, weekday/weekend modulation, spatially propagating congestion
//    waves, incidents, correlated per-lane features, AR(1) sensor noise.
//    Data is COMPLETE (mask all ones); experiments inject MCAR missingness
//    at controlled rates exactly as the paper "randomly drops" values.
//
//  * StampedeLikeGenerator — campus shuttle loop a la the paper's private
//    roving-sensor system: 12 road segments, travel-time measurements that
//    only exist when a shuttle traverses the segment, yielding high
//    STRUCTURAL missingness (visit-driven, not MCAR) plus overnight service
//    gaps. Ground truth is still complete so imputation error is exact.
#pragma once

#include <cstddef>

#include "data/dataset.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::data {

struct PemsLikeConfig {
  std::size_t num_nodes = 30;
  std::size_t num_days = 28;
  std::size_t steps_per_day = 288;  ///< 5-minute bins
  std::size_t num_features = 4;    ///< avg speed + 3 lane speeds (paper)
  /// Number of highway corridors the sensors are strung along.
  std::size_t num_corridors = 3;
  /// Mean free-flow speed (mph) and spread.
  double free_flow_mean = 65.0;
  double free_flow_spread = 5.0;
  /// Peak rush-hour speed drop as a fraction of free-flow (0..1).
  double rush_severity = 0.45;
  /// Congestion-wave propagation delay between adjacent sensors (minutes).
  double wave_delay_minutes = 4.0;
  /// Expected incidents per day across the network.
  double incidents_per_day = 1.5;
  /// AR(1) coefficient and innovation stddev of sensor noise.
  double noise_ar = 0.8;
  double noise_std = 1.2;
  std::uint64_t seed = 42;
};

/// Generate a PeMS-like dataset (complete mask).
[[nodiscard]] TrafficDataset generate_pems_like(const PemsLikeConfig& config);

struct StampedeLikeConfig {
  std::size_t num_segments = 12;
  std::size_t num_days = 28;
  std::size_t steps_per_day = 288;  ///< 5-minute bins
  std::size_t num_shuttles = 15;
  /// Mean shuttle loop time (minutes) — drives observation frequency.
  double loop_minutes = 45.0;
  /// Monitored segments traversed per loop. Shuttles "run among different
  /// locations in the city" (paper §IV-A2), so most of each loop covers
  /// road that is NOT one of the 12 monitored segments; each loop only
  /// crosses a few of them. This is what makes roving-sensor missingness
  /// high and structural.
  std::size_t segments_per_loop = 3;
  /// Service hours (shuttles do not run overnight).
  double service_start_hour = 6.5;
  double service_end_hour = 23.0;
  /// Baseline travel time per segment (seconds) and spread.
  double base_travel_seconds = 180.0;
  double base_travel_spread = 60.0;
  /// Peak congestion multiplier during class-change surges.
  double surge_factor = 0.8;
  double noise_std = 12.0;
  std::uint64_t seed = 43;
};

/// Generate a Stampede-like roving-sensor dataset. The returned mask is the
/// structural visit mask (high missing rate by construction, typically
/// 70-90% depending on num_shuttles/loop_minutes).
[[nodiscard]] TrafficDataset generate_stampede_like(
    const StampedeLikeConfig& config);

struct AirQualityConfig {
  std::size_t num_stations = 20;
  std::size_t num_days = 28;
  std::size_t steps_per_day = 24;  ///< hourly, the usual AQ cadence
  /// City extent (km) the stations are scattered over.
  double city_km = 25.0;
  /// Baseline PM2.5 (µg/m³) and traffic-peak amplitude.
  double base_pm = 22.0;
  double traffic_amp = 14.0;
  /// Expected multi-day pollution episodes over the whole period.
  double episodes = 3.0;
  double noise_std = 3.0;
  std::uint64_t seed = 44;
};

/// Air-quality surrogate — the paper's conclusion claims the framework
/// generalizes to "air quality prediction with data collected in different
/// locations of a city"; this generator provides that workload: PM2.5/PM10
/// station network with diurnal traffic peaks, multi-day synoptic pollution
/// episodes advected across the city with a spatial gradient, and
/// station-level correlated features. Mask is complete (inject missingness
/// with the data::inject_* functions).
[[nodiscard]] TrafficDataset generate_air_quality_like(
    const AirQualityConfig& config);

}  // namespace rihgcn::data
