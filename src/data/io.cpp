#include "data/io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace rihgcn::data {

namespace {

void write_matrix(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    os << m.data()[i] << (i + 1 == m.size() ? "" : " ");
  }
  os << "\n";
}

/// Read a rows x cols block, validating every entry is a finite double.
/// `section` names the block ("coords", "truth[t]", ...) so malformed files
/// fail with full row/col context instead of a generic parse error.
Matrix read_matrix(std::istream& is, std::size_t rows, std::size_t cols,
                   const std::string& section) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!(is >> m.data()[i])) {
      throw std::runtime_error(
          "load_dataset: truncated or unparsable data in " + section +
          " at row " + std::to_string(i / cols) + ", col " +
          std::to_string(i % cols));
    }
    if (!std::isfinite(m.data()[i])) {
      throw std::runtime_error(
          "load_dataset: non-finite value in " + section + " at row " +
          std::to_string(i / cols) + ", col " + std::to_string(i % cols));
    }
  }
  return m;
}

/// Mask entries must be exactly 0 or 1 — anything else means the file was
/// corrupted or produced by a buggy writer.
void validate_mask_block(const Matrix& m, std::size_t t) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t f = 0; f < m.cols(); ++f) {
      const double v = m(i, f);
      if (v != 0.0 && v != 1.0) {
        throw std::runtime_error(
            "load_dataset: mask entry outside {0,1} at timestep " +
            std::to_string(t) + ", row " + std::to_string(i) + ", col " +
            std::to_string(f));
      }
    }
  }
}

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  is >> token;
  if (token != expected) {
    throw std::runtime_error("load_dataset: expected '" + expected +
                             "', got '" + token + "'");
  }
}

}  // namespace

void save_dataset(std::ostream& os, const TrafficDataset& ds) {
  ds.validate();
  os << "rihgcn-dataset v1\n";
  // Names are single tokens in the format; replace interior whitespace.
  std::string name = ds.name.empty() ? "unnamed" : ds.name;
  for (char& c : name) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  os << name << " " << ds.num_nodes() << " " << ds.num_features() << " "
     << ds.num_timesteps() << " " << ds.steps_per_day << "\n";
  os << std::setprecision(17);
  os << "coords " << ds.coords.rows() << " " << ds.coords.cols() << "\n";
  write_matrix(os, ds.coords);
  os << "geo_distances " << ds.geo_distances.rows() << " "
     << ds.geo_distances.cols() << "\n";
  write_matrix(os, ds.geo_distances);
  os << "truth\n";
  for (const Matrix& x : ds.truth) write_matrix(os, x);
  os << "mask\n";
  for (const Matrix& m : ds.mask) write_matrix(os, m);
}

TrafficDataset load_dataset(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  if (magic != "rihgcn-dataset" || version != "v1") {
    throw std::runtime_error("load_dataset: bad header");
  }
  TrafficDataset ds;
  std::size_t n = 0, d = 0, t = 0;
  is >> ds.name >> n >> d >> t >> ds.steps_per_day;
  if (!is || n == 0 || d == 0 || t == 0) {
    throw std::runtime_error("load_dataset: bad dimensions");
  }
  std::size_t rows = 0, cols = 0;
  expect_token(is, "coords");
  is >> rows >> cols;
  ds.coords = read_matrix(is, rows, cols, "coords");
  expect_token(is, "geo_distances");
  is >> rows >> cols;
  ds.geo_distances = read_matrix(is, rows, cols, "geo_distances");
  expect_token(is, "truth");
  ds.truth.reserve(t);
  for (std::size_t k = 0; k < t; ++k) {
    ds.truth.push_back(
        read_matrix(is, n, d, "truth[" + std::to_string(k) + "]"));
  }
  expect_token(is, "mask");
  ds.mask.reserve(t);
  for (std::size_t k = 0; k < t; ++k) {
    ds.mask.push_back(read_matrix(is, n, d, "mask[" + std::to_string(k) + "]"));
    validate_mask_block(ds.mask.back(), k);
  }
  ds.validate();
  return ds;
}

void save_dataset_file(const std::string& path, const TrafficDataset& ds) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_dataset_file: cannot open " + path);
  save_dataset(os, ds);
}

TrafficDataset load_dataset_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_dataset_file: cannot open " + path);
  return load_dataset(is);
}

void export_csv(std::ostream& os, const TrafficDataset& ds,
                std::size_t max_timesteps) {
  os << "t,node,feature,value,observed\n" << std::setprecision(10);
  const std::size_t t_end = max_timesteps == 0
                                ? ds.num_timesteps()
                                : std::min(max_timesteps, ds.num_timesteps());
  for (std::size_t t = 0; t < t_end; ++t) {
    for (std::size_t i = 0; i < ds.num_nodes(); ++i) {
      for (std::size_t f = 0; f < ds.num_features(); ++f) {
        os << t << "," << i << "," << f << "," << ds.truth[t](i, f) << ","
           << (ds.mask[t](i, f) > 0.5 ? 1 : 0) << "\n";
      }
    }
  }
}

}  // namespace rihgcn::data
