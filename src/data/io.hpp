// Dataset (de)serialization: a versioned, self-describing text format so
// generated datasets can be frozen to disk, shared between runs, or edited
// by external tooling, plus a CSV exporter for plotting pipelines.
//
// Format (rihgcn-dataset v1):
//   rihgcn-dataset v1
//   <name> <N> <D> <T> <steps_per_day>
//   coords <rows> <cols>        followed by row-major doubles
//   geo_distances <rows> <cols> followed by row-major doubles
//   truth                        T blocks of N*D doubles
//   mask                         T blocks of N*D doubles (0/1)
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace rihgcn::data {

/// Serialize the full dataset. Lossless round trip with load_dataset.
void save_dataset(std::ostream& os, const TrafficDataset& ds);

/// Restore a dataset written by save_dataset; validates on load.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] TrafficDataset load_dataset(std::istream& is);

/// Convenience file wrappers.
void save_dataset_file(const std::string& path, const TrafficDataset& ds);
[[nodiscard]] TrafficDataset load_dataset_file(const std::string& path);

/// Long-format CSV export for plotting: t,node,feature,value,observed.
/// `max_timesteps` (0 = all) truncates large datasets.
void export_csv(std::ostream& os, const TrafficDataset& ds,
                std::size_t max_timesteps = 0);

}  // namespace rihgcn::data
