#include "data/missing.hpp"

#include <stdexcept>

namespace rihgcn::data {

namespace {

void check_rate(double rate) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("missing rate must be in [0, 1)");
  }
}

}  // namespace

void inject_mcar(TrafficDataset& ds, double rate, Rng& rng) {
  check_rate(rate);
  for (Matrix& m : ds.mask) {
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m.data()[i] > 0.5 && rng.bernoulli(rate)) m.data()[i] = 0.0;
    }
  }
}

void inject_mcar_readings(TrafficDataset& ds, double rate, Rng& rng) {
  check_rate(rate);
  for (Matrix& m : ds.mask) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      if (!rng.bernoulli(rate)) continue;
      for (std::size_t f = 0; f < m.cols(); ++f) m(i, f) = 0.0;
    }
  }
}

void inject_block_missing(TrafficDataset& ds, double rate,
                          std::size_t mean_block_len, Rng& rng) {
  check_rate(rate);
  if (mean_block_len == 0) {
    throw std::invalid_argument("mean_block_len must be >= 1");
  }
  const std::size_t t_total = ds.num_timesteps();
  const std::size_t n = ds.num_nodes();
  const std::size_t d = ds.num_features();
  // Episode start probability p solves: p * mean_len / (1 + p * mean_len)
  // ≈ rate  =>  p = rate / (mean_len * (1 - rate)).
  const double p_start =
      rate / (static_cast<double>(mean_block_len) * (1.0 - rate));
  const double p_end = 1.0 / static_cast<double>(mean_block_len);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < d; ++f) {
      bool failing = false;
      for (std::size_t t = 0; t < t_total; ++t) {
        if (failing) {
          if (rng.bernoulli(p_end)) failing = false;
        } else if (rng.bernoulli(p_start)) {
          failing = true;
        }
        if (failing) ds.mask[t](i, f) = 0.0;
      }
    }
  }
}

std::vector<Matrix> make_imputation_holdout(TrafficDataset& ds,
                                            double fraction, Rng& rng) {
  check_rate(fraction);
  std::vector<Matrix> holdout;
  holdout.reserve(ds.mask.size());
  for (Matrix& m : ds.mask) {
    Matrix h(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m.data()[i] > 0.5 && rng.bernoulli(fraction)) {
        m.data()[i] = 0.0;
        h.data()[i] = 1.0;
      }
    }
    holdout.push_back(std::move(h));
  }
  return holdout;
}

}  // namespace rihgcn::data
