// Missing-data injection and hold-out protocols.
//
// The paper's Table I drops observed values uniformly at random at rates
// 20/40/60/80% (MCAR); its imputation study (RQ2) additionally holds out 30%
// of the remaining observed entries as imputation ground truth. Real sensor
// failures are bursty, so a block-missing injector is provided as well for
// robustness tests (not a paper experiment).
#pragma once

#include <cstddef>

#include "data/dataset.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::data {

/// Drop each currently-observed entry independently with probability `rate`.
/// Mutates ds.mask only (truth is untouched).
void inject_mcar(TrafficDataset& ds, double rate, Rng& rng);

/// Drop whole sensor READINGS: with probability `rate`, all D features of a
/// (node, timestep) pair go missing together. This matches the paper's
/// failure model (detector malfunction / transmission failure takes out the
/// entire report) and is what the Table I benches use — entry-level MCAR
/// leaves correlated lane features behind, which unrealistically softens
/// the impact of missingness on mean-filled baselines.
void inject_mcar_readings(TrafficDataset& ds, double rate, Rng& rng);

/// Drop observed entries in temporal bursts: for each (node, feature) stream,
/// failure episodes start with per-step probability chosen so the expected
/// overall drop fraction is `rate`; each episode lasts Geometric(1/mean_len).
void inject_block_missing(TrafficDataset& ds, double rate,
                          std::size_t mean_block_len, Rng& rng);

/// Imputation hold-out (paper RQ2): move `fraction` of the observed entries
/// of `ds.mask` into a separate evaluation mask. After the call,
/// ds.mask has those entries zeroed; the returned tensor has ones exactly at
/// the held-out positions (same layout as ds.mask).
[[nodiscard]] std::vector<Matrix> make_imputation_holdout(TrafficDataset& ds,
                                                          double fraction,
                                                          Rng& rng);

}  // namespace rihgcn::data
