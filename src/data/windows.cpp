#include "data/windows.hpp"

#include <cstring>
#include <stdexcept>

namespace rihgcn::data {

namespace {

Matrix take_matrix_rows(const Matrix& m, const std::vector<std::size_t>& nodes) {
  const std::size_t cols = m.cols();
  Matrix out(nodes.size(), cols);
  for (std::size_t r = 0; r < nodes.size(); ++r) {
    std::memcpy(out.data() + r * cols, m.data() + nodes[r] * cols,
                cols * sizeof(double));
  }
  return out;
}

}  // namespace

Window take_rows(const Window& w, const std::vector<std::size_t>& nodes) {
  const std::size_t n =
      w.x_obs.empty() ? 0 : w.x_obs.front().rows();
  for (std::size_t r = 0; r < nodes.size(); ++r) {
    if (nodes[r] >= n || (r > 0 && nodes[r] <= nodes[r - 1])) {
      throw std::invalid_argument(
          "take_rows: nodes must be strictly ascending and within range");
    }
  }
  Window out;
  out.start = w.start;
  out.slot = w.slot;
  auto take_all = [&nodes](const std::vector<Matrix>& src) {
    std::vector<Matrix> dst;
    dst.reserve(src.size());
    for (const Matrix& m : src) dst.push_back(take_matrix_rows(m, nodes));
    return dst;
  };
  out.x_obs = take_all(w.x_obs);
  out.x_mask = take_all(w.x_mask);
  out.x_truth = take_all(w.x_truth);
  out.y = take_all(w.y);
  out.y_mask = take_all(w.y_mask);
  return out;
}

WindowSampler::WindowSampler(const TrafficDataset& ds, std::size_t lookback,
                             std::size_t horizon, std::size_t target_feature)
    : ds_(ds),
      lookback_(lookback),
      horizon_(horizon),
      target_feature_(target_feature) {
  if (lookback == 0 || horizon == 0) {
    throw std::invalid_argument("WindowSampler: zero lookback/horizon");
  }
  if (target_feature >= ds.num_features()) {
    throw std::invalid_argument("WindowSampler: target feature out of range");
  }
  const std::size_t needed = lookback + horizon;
  count_ = ds.num_timesteps() >= needed ? ds.num_timesteps() - needed + 1 : 0;
  if (count_ == 0) {
    throw std::invalid_argument("WindowSampler: series shorter than window");
  }
}

SplitIndices WindowSampler::split(double train_frac, double val_frac) const {
  if (train_frac <= 0.0 || val_frac < 0.0 || train_frac + val_frac >= 1.0) {
    throw std::invalid_argument("WindowSampler::split: bad fractions");
  }
  SplitIndices out;
  // Split the TIMELINE, then keep only windows fully inside each region so
  // no test information leaks into training windows.
  const std::size_t t_total = ds_.num_timesteps();
  const auto train_end = static_cast<std::size_t>(train_frac * static_cast<double>(t_total));
  const auto val_end = static_cast<std::size_t>((train_frac + val_frac) * static_cast<double>(t_total));
  const std::size_t len = lookback_ + horizon_;
  for (std::size_t s = 0; s < count_; ++s) {
    const std::size_t end = s + len;  // one past the last timestep used
    if (end <= train_end) {
      out.train.push_back(s);
    } else if (s >= train_end && end <= val_end) {
      out.val.push_back(s);
    } else if (s >= val_end) {
      out.test.push_back(s);
    }
    // Windows straddling a boundary are discarded.
  }
  return out;
}

Window WindowSampler::make_window(std::size_t start) const {
  if (start + lookback_ + horizon_ > ds_.num_timesteps()) {
    throw std::out_of_range("WindowSampler::make_window: start too late");
  }
  Window w;
  w.start = start;
  w.slot = ds_.slot_of(start);
  w.x_obs.reserve(lookback_);
  w.x_mask.reserve(lookback_);
  w.x_truth.reserve(lookback_);
  for (std::size_t k = 0; k < lookback_; ++k) {
    const std::size_t t = start + k;
    w.x_obs.push_back(ds_.observed(t));
    w.x_mask.push_back(ds_.mask[t]);
    w.x_truth.push_back(ds_.truth[t]);
  }
  w.y.reserve(horizon_);
  w.y_mask.reserve(horizon_);
  for (std::size_t k = 0; k < horizon_; ++k) {
    const std::size_t t = start + lookback_ + k;
    w.y.push_back(ds_.truth[t].col(target_feature_));
    w.y_mask.push_back(ds_.mask[t].col(target_feature_));
  }
  return w;
}

}  // namespace rihgcn::data
