// Sliding-window sampling: lookback T=12 steps in, horizon T'=12 steps out
// (the paper's setup, §IV-B3), with the chronological 7:2:1
// train/validation/test split of §IV-A3.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace rihgcn::data {

/// One materialized training/evaluation sample.
struct Window {
  /// Index of the first lookback timestep in the source series.
  std::size_t start = 0;
  /// Time-of-day slot of the first lookback timestep.
  std::size_t slot = 0;
  /// Masked inputs: truth ⊙ mask, one N x D matrix per lookback step.
  std::vector<Matrix> x_obs;
  /// Observation masks, aligned with x_obs.
  std::vector<Matrix> x_mask;
  /// Complete ground truth over the lookback (imputation evaluation only —
  /// never fed to a model).
  std::vector<Matrix> x_truth;
  /// Targets: ground-truth PREDICTED feature over the horizon, N x 1 each.
  std::vector<Matrix> y;
  /// Mask of target entries a deployed system would have observed (used as
  /// the training-loss weight so models never train on invisible targets).
  std::vector<Matrix> y_mask;
};

/// Row-restricted copy of a window: every matrix keeps only the rows in
/// `nodes` (strictly ascending node indices), in order. Empty members (e.g.
/// x_truth on synthetic-free paths) stay empty. This is how the partitioned
/// trainer feeds a cluster's owned ∪ halo nodes through the standard model
/// forward pass (DESIGN.md §13).
[[nodiscard]] Window take_rows(const Window& w,
                               const std::vector<std::size_t>& nodes);

struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> val;
  std::vector<std::size_t> test;
};

class WindowSampler {
 public:
  /// `target_feature` selects which feature column becomes the label y
  /// (paper: traffic speed / travel time, here feature 0).
  WindowSampler(const TrafficDataset& ds, std::size_t lookback,
                std::size_t horizon, std::size_t target_feature = 0);

  /// Number of valid window start positions.
  [[nodiscard]] std::size_t num_windows() const noexcept { return count_; }
  /// Chronological split of window starts (windows never straddle splits).
  [[nodiscard]] SplitIndices split(double train_frac = 0.7,
                                   double val_frac = 0.2) const;
  /// Materialize the window starting at series index `start`.
  [[nodiscard]] Window make_window(std::size_t start) const;

  [[nodiscard]] std::size_t lookback() const noexcept { return lookback_; }
  [[nodiscard]] std::size_t horizon() const noexcept { return horizon_; }
  [[nodiscard]] const TrafficDataset& dataset() const noexcept { return ds_; }

 private:
  const TrafficDataset& ds_;
  std::size_t lookback_;
  std::size_t horizon_;
  std::size_t target_feature_;
  std::size_t count_;
};

}  // namespace rihgcn::data
