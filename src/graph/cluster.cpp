#include "graph/cluster.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::graph {

Clustering ClusterPartitioner::partition(const CsrMatrix& adjacency,
                                         std::size_t num_clusters) const {
  const std::size_t n = adjacency.rows();
  if (adjacency.cols() != n) {
    throw ShapeError("ClusterPartitioner: adjacency must be square");
  }
  if (num_clusters == 0) {
    throw std::invalid_argument("ClusterPartitioner: num_clusters must be > 0");
  }
  const std::size_t c_count = std::min(num_clusters, std::max<std::size_t>(n, 1));
  Clustering out;
  out.num_nodes = n;
  out.owned.resize(c_count);
  out.halo.resize(c_count);
  out.cluster_of.assign(n, 0);
  if (n == 0) return out;

  const auto& ptr = adjacency.row_ptr();
  const auto& col = adjacency.col_idx();
  constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  std::vector<std::size_t> owner(n, kUnassigned);
  // Per-node cursor into its CSR row: each edge is inspected at most once
  // across the whole growth, keeping the BFS O(N + nnz).
  std::vector<std::size_t> cursor(ptr.begin(), ptr.end() - 1);
  std::vector<std::deque<std::size_t>> frontier(c_count);
  std::vector<std::size_t> sizes(c_count, 0);
  // Balanced size cap: c_count * cap >= n, so growth can always finish.
  const std::size_t cap = (n + c_count - 1) / c_count;

  // Seeds: the first C entries of a seeded permutation — spread uniformly,
  // reproducible from the seed alone.
  Rng rng(seed_);
  const std::vector<std::size_t> perm = rng.permutation(n);
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < c_count; ++c) {
    const std::size_t s = perm[c];
    owner[s] = c;
    frontier[c].push_back(s);
    sizes[c] = 1;
    ++assigned;
  }

  // Round-robin growth, one node claimed per turn: cluster c scans its FIFO
  // frontier's head for the first unassigned neighbour in ascending column
  // order; an exhausted head is popped. An empty frontier under the cap
  // teleports to the smallest-index unassigned node (disconnected graphs).
  std::size_t next_free = 0;  // smallest possibly-unassigned index
  while (assigned < n) {
    bool progressed = false;
    for (std::size_t c = 0; c < c_count && assigned < n; ++c) {
      if (sizes[c] >= cap) continue;
      std::size_t claimed = kUnassigned;
      while (!frontier[c].empty() && claimed == kUnassigned) {
        const std::size_t u = frontier[c].front();
        while (cursor[u] < ptr[u + 1]) {
          const std::size_t v = col[cursor[u]++];
          if (owner[v] == kUnassigned) {
            claimed = v;
            break;
          }
        }
        if (claimed == kUnassigned) frontier[c].pop_front();
      }
      if (claimed == kUnassigned) {
        while (next_free < n && owner[next_free] != kUnassigned) ++next_free;
        claimed = next_free;
      }
      owner[claimed] = c;
      frontier[c].push_back(claimed);
      ++sizes[c];
      ++assigned;
      progressed = true;
    }
    if (!progressed) {
      // Unreachable (cap * c_count >= n), kept as a loud invariant check.
      throw std::logic_error("ClusterPartitioner: growth stalled");
    }
  }

  out.cluster_of.assign(owner.begin(), owner.end());
  for (std::size_t i = 0; i < n; ++i) {
    out.owned[owner[i]].push_back(i);  // ascending by construction
  }
  // Halos: out-of-cluster structural neighbours of owned nodes.
  std::vector<char> in_halo(n, 0);
  for (std::size_t c = 0; c < c_count; ++c) {
    std::vector<std::size_t>& h = out.halo[c];
    for (const std::size_t u : out.owned[c]) {
      for (std::size_t e = ptr[u]; e < ptr[u + 1]; ++e) {
        const std::size_t v = col[e];
        if (owner[v] != c && !in_halo[v]) {
          in_halo[v] = 1;
          h.push_back(v);
        }
      }
    }
    std::sort(h.begin(), h.end());
    for (const std::size_t v : h) in_halo[v] = 0;  // reset for next cluster
  }
  return out;
}

}  // namespace rihgcn::graph
