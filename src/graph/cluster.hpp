// Deterministic graph clustering for partitioned sub-graph training
// (DESIGN.md §13). A Cluster-GCN-style trainer cuts the sensor graph into C
// node clusters and trains on per-cluster sub-Laplacians; this header
// provides the partition itself: seeded round-robin BFS over the spatial
// adjacency, plus the 1-hop halo sets the sub-graph forward pass needs so
// boundary nodes still see their out-of-cluster neighbours.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/csr.hpp"

namespace rihgcn::graph {

using rihgcn::CsrMatrix;

/// A complete disjoint partition of the nodes plus per-cluster halos.
struct Clustering {
  std::size_t num_nodes = 0;
  /// owned[c]: nodes assigned to cluster c, ascending. Clusters are
  /// pairwise disjoint and cover every node exactly once.
  std::vector<std::vector<std::size_t>> owned;
  /// halo[c]: the 1-hop boundary of cluster c — every node outside the
  /// cluster adjacent (by a structural edge) to an owned node. Ascending,
  /// disjoint from owned[c].
  std::vector<std::vector<std::size_t>> halo;
  /// cluster_of[i]: the owning cluster of node i.
  std::vector<std::size_t> cluster_of;

  [[nodiscard]] std::size_t num_clusters() const noexcept {
    return owned.size();
  }
};

/// Seeded BFS partitioner. Fully deterministic: the same (seed, adjacency,
/// num_clusters) triple always yields the same Clustering — growth is
/// sequential (no threading) and every choice is by fixed rule (round-robin
/// cluster order, FIFO frontiers, ascending CSR neighbour order, smallest
/// unassigned index on teleport). Cluster sizes are capped at ceil(N/C), so
/// the partition stays balanced even on disconnected or star-shaped graphs.
class ClusterPartitioner {
 public:
  explicit ClusterPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  /// Partition the nodes of a square CSR adjacency into
  /// min(num_clusters, N) clusters (num_clusters must be > 0).
  [[nodiscard]] Clustering partition(const CsrMatrix& adjacency,
                                     std::size_t num_clusters) const;

 private:
  std::uint64_t seed_;
};

}  // namespace rihgcn::graph
