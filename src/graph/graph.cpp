#include "graph/graph.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace rihgcn::graph {

Matrix gaussian_adjacency(const Matrix& distances,
                          const AdjacencyOptions& opts) {
  const std::size_t n = distances.rows();
  if (distances.cols() != n) {
    throw ShapeError("gaussian_adjacency: distance matrix must be square");
  }
  double sigma;
  if (opts.sigma.has_value()) {
    sigma = *opts.sigma;
  } else {
    // std of the off-diagonal distances (paper's convention via DCRNN).
    double sum = 0.0, sum2 = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        sum += distances(i, j);
        sum2 += distances(i, j) * distances(i, j);
        ++count;
      }
    }
    if (count == 0) return Matrix(n, n);
    const double mean = sum / static_cast<double>(count);
    sigma = std::sqrt(std::max(0.0, sum2 / static_cast<double>(count) -
                                        mean * mean));
  }
  if (sigma <= 0.0) sigma = 1.0;  // degenerate (all-equal distances)
  Matrix a(n, n);
  const double s2 = sigma * sigma;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (opts.zero_diagonal && i == j) continue;
      const double w = std::exp(-distances(i, j) * distances(i, j) / s2);
      a(i, j) = w >= opts.epsilon ? w : 0.0;
    }
  }
  return a;
}

Matrix pairwise_euclidean(const Matrix& coords) {
  const std::size_t n = coords.rows();
  const std::size_t d = coords.cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        const double diff = coords(i, k) - coords(j, k);
        s += diff * diff;
      }
      out(i, j) = out(j, i) = std::sqrt(s);
    }
  }
  return out;
}

std::vector<double> degree_vector(const Matrix& adjacency) {
  const std::size_t n = adjacency.rows();
  if (adjacency.cols() != n) {
    throw ShapeError("degree_vector: adjacency must be square");
  }
  std::vector<double> deg(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += adjacency(i, j);
    deg[i] = s;
  }
  return deg;
}

Matrix degree_matrix(const Matrix& adjacency) {
  const std::vector<double> deg = degree_vector(adjacency);
  Matrix d(deg.size(), deg.size());
  for (std::size_t i = 0; i < deg.size(); ++i) d(i, i) = deg[i];
  return d;
}

Matrix normalized_laplacian(const Matrix& adjacency) {
  const std::size_t n = adjacency.rows();
  if (adjacency.cols() != n) {
    throw ShapeError("normalized_laplacian: adjacency must be square");
  }
  // D^{-1/2} from the degree vector alone — no N x N degree matrix.
  std::vector<double> dinv_sqrt = degree_vector(adjacency);
  for (double& s : dinv_sqrt) s = s > 0.0 ? 1.0 / std::sqrt(s) : 0.0;
  Matrix lap(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double norm = dinv_sqrt[i] * adjacency(i, j) * dinv_sqrt[j];
      lap(i, j) = (i == j ? 1.0 : 0.0) - norm;
    }
  }
  return lap;
}

double largest_eigenvalue(const Matrix& symmetric, std::size_t max_iters,
                          double tol) {
  const std::size_t n = symmetric.rows();
  if (symmetric.cols() != n) {
    throw ShapeError("largest_eigenvalue: matrix must be square");
  }
  if (n == 0) return 0.0;
  if (n == 1) return symmetric(0, 0);
  // Power iteration on (M + shift I) so the dominant eigenvalue is the
  // algebraically largest one even when eigenvalues of mixed sign exist.
  // For a normalized Laplacian the spectrum is within [0, 2]; shift=2 is
  // safely larger than |λ_min|.
  const double shift = 2.0;
  // Deterministic non-uniform start vector: the all-ones vector is an exact
  // eigenvector (eigenvalue 0) of regular graphs' normalized Laplacians, and
  // power iteration can never escape an exact eigenvector.
  std::vector<double> v(n);
  double vnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 + 0.5 * std::sin(static_cast<double>(i) * 1.7 + 0.3);
    vnorm += v[i] * v[i];
  }
  vnorm = std::sqrt(vnorm);
  for (auto& x : v) x /= vnorm;
  std::vector<double> w(n, 0.0);
  double lambda = 0.0;
  for (std::size_t it = 0; it < max_iters; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = shift * v[i];
      const double* row = symmetric.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) s += row[j] * v[j];
      w[i] = s;
    }
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0.0) return 0.0;
    double new_lambda = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      w[i] /= norm;
      new_lambda += w[i] * w[i];
    }
    // Rayleigh quotient of the shifted matrix.
    double rq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double s = shift * w[i];
      const double* row = symmetric.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) s += row[j] * w[j];
      rq += w[i] * s;
    }
    v.swap(w);
    if (std::abs(rq - lambda) < tol) {
      lambda = rq;
      break;
    }
    lambda = rq;
  }
  return lambda - shift;
}

Matrix scaled_laplacian(const Matrix& laplacian, double lambda_max) {
  const std::size_t n = laplacian.rows();
  if (laplacian.cols() != n) {
    throw ShapeError("scaled_laplacian: matrix must be square");
  }
  if (lambda_max <= 0.0) lambda_max = largest_eigenvalue(laplacian);
  if (lambda_max <= 0.0) lambda_max = 2.0;  // empty graph: L == 0
  Matrix out = laplacian * (2.0 / lambda_max);
  for (std::size_t i = 0; i < n; ++i) out(i, i) -= 1.0;
  return out;
}

Matrix scaled_laplacian_from_distances(const Matrix& distances,
                                       const AdjacencyOptions& opts) {
  return scaled_laplacian(normalized_laplacian(gaussian_adjacency(distances,
                                                                  opts)));
}

CsrMatrix to_csr(const Matrix& m, double tol) {
  return CsrMatrix::from_dense(m, tol);
}

CsrMatrix scaled_laplacian_csr(const Matrix& laplacian, double lambda_max,
                               double tol) {
  return CsrMatrix::from_dense(scaled_laplacian(laplacian, lambda_max), tol);
}

SparsityStats sparsity_stats(const Matrix& m) {
  SparsityStats st;
  st.size = m.size();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] != 0.0) ++st.nnz;
  }
  if (st.size > 0) {
    st.density = static_cast<double>(st.nnz) / static_cast<double>(st.size);
  }
  return st;
}

bool is_symmetric(const Matrix& m, double tol) {
  if (m.rows() != m.cols()) return false;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i + 1; j < m.cols(); ++j) {
      if (std::abs(m(i, j) - m(j, i)) > tol) return false;
    }
  }
  return true;
}

double sparsity(const Matrix& m) {
  if (m.rows() <= 1) return 0.0;
  std::size_t zeros = 0, total = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (i == j) continue;
      ++total;
      if (m(i, j) == 0.0) ++zeros;
    }
  }
  return static_cast<double>(zeros) / static_cast<double>(total);
}

std::size_t connected_components(const Matrix& adjacency) {
  const std::size_t n = adjacency.rows();
  std::vector<bool> seen(n, false);
  std::size_t components = 0;
  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    ++components;
    stack.push_back(start);
    seen[start] = true;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      for (std::size_t v = 0; v < n; ++v) {
        if (!seen[v] && (adjacency(u, v) != 0.0 || adjacency(v, u) != 0.0)) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  return components;
}

RoadGraph::RoadGraph(Matrix coords, const AdjacencyOptions& opts) {
  distances_ = pairwise_euclidean(coords);
  finish(opts);
}

RoadGraph RoadGraph::from_distances(Matrix distances,
                                    const AdjacencyOptions& opts) {
  if (distances.rows() != distances.cols()) {
    throw ShapeError("RoadGraph::from_distances: must be square");
  }
  RoadGraph g;
  g.distances_ = std::move(distances);
  g.finish(opts);
  return g;
}

void RoadGraph::finish(const AdjacencyOptions& opts) {
  adjacency_ = gaussian_adjacency(distances_, opts);
  laplacian_ = normalized_laplacian(adjacency_);
  lambda_max_ = largest_eigenvalue(laplacian_);
  scaled_laplacian_ = graph::scaled_laplacian(laplacian_, lambda_max_);
}

}  // namespace rihgcn::graph
