#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "tensor/parallel.hpp"

namespace rihgcn::graph {

Matrix gaussian_adjacency(const Matrix& distances,
                          const AdjacencyOptions& opts) {
  const std::size_t n = distances.rows();
  if (distances.cols() != n) {
    throw ShapeError("gaussian_adjacency: distance matrix must be square");
  }
  double sigma;
  if (opts.sigma.has_value()) {
    sigma = *opts.sigma;
  } else {
    // std of the off-diagonal distances (paper's convention via DCRNN).
    double sum = 0.0, sum2 = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        sum += distances(i, j);
        sum2 += distances(i, j) * distances(i, j);
        ++count;
      }
    }
    if (count == 0) return Matrix(n, n);
    const double mean = sum / static_cast<double>(count);
    sigma = std::sqrt(std::max(0.0, sum2 / static_cast<double>(count) -
                                        mean * mean));
  }
  if (sigma <= 0.0) sigma = 1.0;  // degenerate (all-equal distances)
  Matrix a(n, n);
  const double s2 = sigma * sigma;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (opts.zero_diagonal && i == j) continue;
      const double w = std::exp(-distances(i, j) * distances(i, j) / s2);
      a(i, j) = w >= opts.epsilon ? w : 0.0;
    }
  }
  return a;
}

Matrix pairwise_euclidean(const Matrix& coords) {
  const std::size_t n = coords.rows();
  const std::size_t d = coords.cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        const double diff = coords(i, k) - coords(j, k);
        s += diff * diff;
      }
      out(i, j) = out(j, i) = std::sqrt(s);
    }
  }
  return out;
}

std::vector<double> degree_vector(const Matrix& adjacency) {
  const std::size_t n = adjacency.rows();
  if (adjacency.cols() != n) {
    throw ShapeError("degree_vector: adjacency must be square");
  }
  std::vector<double> deg(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += adjacency(i, j);
    deg[i] = s;
  }
  return deg;
}

Matrix degree_matrix(const Matrix& adjacency) {
  const std::vector<double> deg = degree_vector(adjacency);
  Matrix d(deg.size(), deg.size());
  for (std::size_t i = 0; i < deg.size(); ++i) d(i, i) = deg[i];
  return d;
}

Matrix normalized_laplacian(const Matrix& adjacency) {
  const std::size_t n = adjacency.rows();
  if (adjacency.cols() != n) {
    throw ShapeError("normalized_laplacian: adjacency must be square");
  }
  // D^{-1/2} from the degree vector alone — no N x N degree matrix.
  std::vector<double> dinv_sqrt = degree_vector(adjacency);
  for (double& s : dinv_sqrt) s = s > 0.0 ? 1.0 / std::sqrt(s) : 0.0;
  Matrix lap(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double norm = dinv_sqrt[i] * adjacency(i, j) * dinv_sqrt[j];
      lap(i, j) = (i == j ? 1.0 : 0.0) - norm;
    }
  }
  return lap;
}

double largest_eigenvalue(const Matrix& symmetric, std::size_t max_iters,
                          double tol) {
  const std::size_t n = symmetric.rows();
  if (symmetric.cols() != n) {
    throw ShapeError("largest_eigenvalue: matrix must be square");
  }
  if (n == 0) return 0.0;
  if (n == 1) return symmetric(0, 0);
  // Power iteration on (M + shift I) so the dominant eigenvalue is the
  // algebraically largest one even when eigenvalues of mixed sign exist.
  // For a normalized Laplacian the spectrum is within [0, 2]; shift=2 is
  // safely larger than |λ_min|.
  const double shift = 2.0;
  // Deterministic non-uniform start vector: the all-ones vector is an exact
  // eigenvector (eigenvalue 0) of regular graphs' normalized Laplacians, and
  // power iteration can never escape an exact eigenvector.
  std::vector<double> v(n);
  double vnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 + 0.5 * std::sin(static_cast<double>(i) * 1.7 + 0.3);
    vnorm += v[i] * v[i];
  }
  vnorm = std::sqrt(vnorm);
  for (auto& x : v) x /= vnorm;
  std::vector<double> w(n, 0.0);
  double lambda = 0.0;
  for (std::size_t it = 0; it < max_iters; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = shift * v[i];
      const double* row = symmetric.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) s += row[j] * v[j];
      w[i] = s;
    }
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0.0) return 0.0;
    double new_lambda = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      w[i] /= norm;
      new_lambda += w[i] * w[i];
    }
    // Rayleigh quotient of the shifted matrix.
    double rq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double s = shift * w[i];
      const double* row = symmetric.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) s += row[j] * w[j];
      rq += w[i] * s;
    }
    v.swap(w);
    if (std::abs(rq - lambda) < tol) {
      lambda = rq;
      break;
    }
    lambda = rq;
  }
  return lambda - shift;
}

Matrix scaled_laplacian(const Matrix& laplacian, double lambda_max) {
  const std::size_t n = laplacian.rows();
  if (laplacian.cols() != n) {
    throw ShapeError("scaled_laplacian: matrix must be square");
  }
  if (lambda_max <= 0.0) lambda_max = largest_eigenvalue(laplacian);
  if (lambda_max <= 0.0) lambda_max = 2.0;  // empty graph: L == 0
  Matrix out = laplacian * (2.0 / lambda_max);
  for (std::size_t i = 0; i < n; ++i) out(i, i) -= 1.0;
  return out;
}

Matrix scaled_laplacian_from_distances(const Matrix& distances,
                                       const AdjacencyOptions& opts) {
  return scaled_laplacian(normalized_laplacian(gaussian_adjacency(distances,
                                                                  opts)));
}

CsrMatrix to_csr(const Matrix& m, double tol) {
  return CsrMatrix::from_dense(m, tol);
}

CsrMatrix scaled_laplacian_csr(const Matrix& laplacian, double lambda_max,
                               double tol) {
  return CsrMatrix::from_dense(scaled_laplacian(laplacian, lambda_max), tol);
}

// ---- k-NN graph pipeline for city-scale N (DESIGN.md §13) -----------------

namespace {

// Shared shard grain for the k-NN row scans: chunk boundaries depend only on
// (N, grain), never the thread count — same convention as knn_series_graph.
constexpr std::size_t kKnnRowGrain = 4;

ts::NeighborList make_neighbor_list(std::size_t n, std::size_t k) {
  ts::NeighborList out;
  out.num_nodes = n;
  out.k = k;
  out.offsets.resize(n + 1);
  for (std::size_t i = 0; i <= n; ++i) out.offsets[i] = i * k;
  out.idx.assign(n * k, 0);
  out.dist.assign(n * k, 0.0);
  return out;
}

}  // namespace

ts::NeighborList knn_from_distances(const Matrix& distances, std::size_t k) {
  const std::size_t n = distances.rows();
  if (distances.cols() != n) {
    throw ShapeError("knn_from_distances: distance matrix must be square");
  }
  if (k == 0) {
    throw std::invalid_argument("knn_from_distances: k must be > 0");
  }
  const std::size_t kk = n == 0 ? 0 : std::min(k, n - 1);
  ts::NeighborList out = make_neighbor_list(n, kk);
  if (kk == 0) return out;
  ThreadPool::global().parallel_for(
      0, n, kKnnRowGrain, [&](std::size_t b, std::size_t e) {
        ts::TopKNeighbors best(kk);
        for (std::size_t i = b; i < e; ++i) {
          best.clear();
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            best.offer(distances(i, j), j);
          }
          for (std::size_t r = 0; r < best.size(); ++r) {
            out.idx[i * kk + r] = best.items()[r].idx;
            out.dist[i * kk + r] = best.items()[r].dist;
          }
        }
      });
  return out;
}

ts::NeighborList knn_from_coords(const Matrix& coords, std::size_t k) {
  const std::size_t n = coords.rows();
  const std::size_t dim = coords.cols();
  if (k == 0) {
    throw std::invalid_argument("knn_from_coords: k must be > 0");
  }
  const std::size_t kk = n == 0 ? 0 : std::min(k, n - 1);
  ts::NeighborList out = make_neighbor_list(n, kk);
  if (kk == 0) return out;
  const double* base = coords.data();
  ThreadPool::global().parallel_for(
      0, n, kKnnRowGrain, [&](std::size_t b, std::size_t e) {
        ts::TopKNeighbors best(kk);
        for (std::size_t i = b; i < e; ++i) {
          const double* ci = base + i * dim;
          best.clear();
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i) continue;
            const double* cj = base + j * dim;
            // Same per-dimension accumulation order as pairwise_euclidean;
            // (-x)·(-x) == x·x exactly, so both directions match bitwise.
            double s = 0.0;
            for (std::size_t d = 0; d < dim; ++d) {
              const double diff = ci[d] - cj[d];
              s += diff * diff;
            }
            best.offer(std::sqrt(s), j);
          }
          for (std::size_t r = 0; r < best.size(); ++r) {
            out.idx[i * kk + r] = best.items()[r].idx;
            out.dist[i * kk + r] = best.items()[r].dist;
          }
        }
      });
  return out;
}

CsrMatrix gaussian_knn_adjacency(const ts::NeighborList& knn,
                                 const AdjacencyOptions& opts) {
  const std::size_t n = knn.num_nodes;
  double sigma;
  if (opts.sigma.has_value()) {
    sigma = *opts.sigma;
  } else {
    // std of the kept directed k-NN distances. The dense pipeline's
    // all-pairs std is the O(N²) pass this path exists to avoid; the edge
    // set is identical on every build path, so this σ is too.
    const std::size_t count = knn.dist.size();
    if (count == 0) {
      return CsrMatrix::from_parts(n, n,
                                   std::vector<std::size_t>(n + 1, 0), {}, {});
    }
    double sum = 0.0, sum2 = 0.0;
    for (const double x : knn.dist) {
      sum += x;
      sum2 += x * x;
    }
    const double mean = sum / static_cast<double>(count);
    sigma = std::sqrt(std::max(0.0, sum2 / static_cast<double>(count) -
                                        mean * mean));
  }
  if (sigma <= 0.0) sigma = 1.0;  // degenerate (all-equal distances)
  const double s2 = sigma * sigma;

  // Union-symmetrize the directed edge set: both (i,j) and (j,i) enter;
  // duplicates collapse to the first after a deterministic sort.
  struct Edge {
    std::size_t r, c;
    double d;
  };
  std::vector<Edge> edges;
  edges.reserve(2 * knn.idx.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e = knn.offsets[i]; e < knn.offsets[i + 1]; ++e) {
      const std::size_t j = knn.idx[e];
      if (j == i) continue;  // k-NN lists exclude self; keep the invariant
      edges.push_back({i, j, knn.dist[e]});
      edges.push_back({j, i, knn.dist[e]});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.r != b.r) return a.r < b.r;
    if (a.c != b.c) return a.c < b.c;
    return a.d < b.d;  // total order even if a metric were asymmetric
  });
  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> vals;
  col_idx.reserve(edges.size());
  vals.reserve(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (e > 0 && edges[e].r == edges[e - 1].r &&
        edges[e].c == edges[e - 1].c) {
      continue;
    }
    const double w = std::exp(-edges[e].d * edges[e].d / s2);
    if (w < opts.epsilon || w == 0.0) continue;
    col_idx.push_back(edges[e].c);
    vals.push_back(w);
    row_ptr[edges[e].r + 1] = vals.size();
  }
  // Rows whose every edge was thresholded away still need cumulative counts.
  for (std::size_t r = 1; r <= n; ++r) {
    row_ptr[r] = std::max(row_ptr[r], row_ptr[r - 1]);
  }
  return CsrMatrix::from_parts(n, n, std::move(row_ptr), std::move(col_idx),
                               std::move(vals));
}

std::vector<double> degree_vector(const CsrMatrix& adjacency) {
  const std::size_t n = adjacency.rows();
  if (adjacency.cols() != n) {
    throw ShapeError("degree_vector: adjacency must be square");
  }
  const auto& ptr = adjacency.row_ptr();
  const auto& val = adjacency.values();
  std::vector<double> deg(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Ascending structural order = the dense loop's ascending-j order minus
    // its zero terms; adding 0.0 to a sum of nonnegative weights never
    // changes bits, so this equals the dense degree_vector exactly.
    double s = 0.0;
    for (std::size_t e = ptr[i]; e < ptr[i + 1]; ++e) s += val[e];
    deg[i] = s;
  }
  return deg;
}

CsrMatrix normalized_laplacian_csr(const CsrMatrix& adjacency) {
  const std::size_t n = adjacency.rows();
  if (adjacency.cols() != n) {
    throw ShapeError("normalized_laplacian_csr: adjacency must be square");
  }
  std::vector<double> dinv_sqrt = degree_vector(adjacency);
  for (double& s : dinv_sqrt) s = s > 0.0 ? 1.0 / std::sqrt(s) : 0.0;
  const auto& ptr = adjacency.row_ptr();
  const auto& col = adjacency.col_idx();
  const auto& val = adjacency.values();
  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> vals;
  col_idx.reserve(adjacency.nnz() + n);
  vals.reserve(adjacency.nnz() + n);
  for (std::size_t i = 0; i < n; ++i) {
    bool diag_done = false;
    for (std::size_t e = ptr[i]; e < ptr[i + 1]; ++e) {
      const std::size_t j = col[e];
      if (!diag_done && j > i) {
        // No structural a_ii: the dense entry is 1.0 − 0 = 1.0 exactly.
        col_idx.push_back(i);
        vals.push_back(1.0);
        diag_done = true;
      }
      const double norm = dinv_sqrt[i] * val[e] * dinv_sqrt[j];
      const double v = (j == i ? 1.0 : 0.0) - norm;
      if (j == i) diag_done = true;
      // from_dense keeps |v| > 0: exact zeros are dropped on both paths.
      if (v != 0.0) {
        col_idx.push_back(j);
        vals.push_back(v);
      }
    }
    if (!diag_done) {
      col_idx.push_back(i);
      vals.push_back(1.0);
    }
    row_ptr[i + 1] = vals.size();
  }
  return CsrMatrix::from_parts(n, n, std::move(row_ptr), std::move(col_idx),
                               std::move(vals));
}

double largest_eigenvalue(const CsrMatrix& symmetric, std::size_t max_iters,
                          double tol) {
  const std::size_t n = symmetric.rows();
  if (symmetric.cols() != n) {
    throw ShapeError("largest_eigenvalue: matrix must be square");
  }
  if (n == 0) return 0.0;
  const auto& ptr = symmetric.row_ptr();
  const auto& col = symmetric.col_idx();
  const auto& val = symmetric.values();
  if (n == 1) return ptr[1] > ptr[0] ? val[0] : 0.0;
  // Same shifted power iteration as the dense overload; the row products
  // skip only structural zeros, whose ±0.0 contributions cannot change the
  // bits of the nonzero partial sums (see the header contract).
  const double shift = 2.0;
  std::vector<double> v(n);
  double vnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 1.0 + 0.5 * std::sin(static_cast<double>(i) * 1.7 + 0.3);
    vnorm += v[i] * v[i];
  }
  vnorm = std::sqrt(vnorm);
  for (auto& x : v) x /= vnorm;
  const auto apply_row = [&](std::size_t i, const std::vector<double>& x) {
    double s = shift * x[i];
    for (std::size_t e = ptr[i]; e < ptr[i + 1]; ++e) {
      s += val[e] * x[col[e]];
    }
    return s;
  };
  std::vector<double> w(n, 0.0);
  double lambda = 0.0;
  for (std::size_t it = 0; it < max_iters; ++it) {
    for (std::size_t i = 0; i < n; ++i) w[i] = apply_row(i, v);
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0.0) return 0.0;
    for (std::size_t i = 0; i < n; ++i) w[i] /= norm;
    double rq = 0.0;
    for (std::size_t i = 0; i < n; ++i) rq += w[i] * apply_row(i, w);
    v.swap(w);
    if (std::abs(rq - lambda) < tol) {
      lambda = rq;
      break;
    }
    lambda = rq;
  }
  return lambda - shift;
}

CsrMatrix scaled_laplacian_csr(const CsrMatrix& laplacian, double lambda_max) {
  const std::size_t n = laplacian.rows();
  if (laplacian.cols() != n) {
    throw ShapeError("scaled_laplacian_csr: matrix must be square");
  }
  if (lambda_max <= 0.0) lambda_max = largest_eigenvalue(laplacian);
  if (lambda_max <= 0.0) lambda_max = 2.0;  // empty graph: L == 0
  const double scale = 2.0 / lambda_max;
  const auto& ptr = laplacian.row_ptr();
  const auto& col = laplacian.col_idx();
  const auto& val = laplacian.values();
  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> vals;
  col_idx.reserve(laplacian.nnz() + n);
  vals.reserve(laplacian.nnz() + n);
  for (std::size_t i = 0; i < n; ++i) {
    bool diag_done = false;
    const auto emit = [&](std::size_t j, double v) {
      // Matches from_dense(|v| > 0): a diagonal that rescales to exactly
      // 1.0 (then −1.0 → 0) disappears on the dense path too.
      if (v != 0.0) {
        col_idx.push_back(j);
        vals.push_back(v);
      }
    };
    for (std::size_t e = ptr[i]; e < ptr[i + 1]; ++e) {
      const std::size_t j = col[e];
      if (!diag_done && j > i) {
        emit(i, -1.0);  // structural-zero diagonal: 0·scale − 1
        diag_done = true;
      }
      double v = val[e] * scale;
      if (j == i) {
        v -= 1.0;
        diag_done = true;
      }
      emit(j, v);
    }
    if (!diag_done) emit(i, -1.0);
    row_ptr[i + 1] = vals.size();
  }
  return CsrMatrix::from_parts(n, n, std::move(row_ptr), std::move(col_idx),
                               std::move(vals));
}

SparsityStats sparsity_stats(const Matrix& m) {
  SparsityStats st;
  st.size = m.size();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] != 0.0) ++st.nnz;
  }
  if (st.size > 0) {
    st.density = static_cast<double>(st.nnz) / static_cast<double>(st.size);
  }
  return st;
}

bool is_symmetric(const Matrix& m, double tol) {
  if (m.rows() != m.cols()) return false;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = i + 1; j < m.cols(); ++j) {
      if (std::abs(m(i, j) - m(j, i)) > tol) return false;
    }
  }
  return true;
}

double sparsity(const Matrix& m) {
  if (m.rows() <= 1) return 0.0;
  std::size_t zeros = 0, total = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (i == j) continue;
      ++total;
      if (m(i, j) == 0.0) ++zeros;
    }
  }
  return static_cast<double>(zeros) / static_cast<double>(total);
}

std::size_t connected_components(const Matrix& adjacency) {
  const std::size_t n = adjacency.rows();
  std::vector<bool> seen(n, false);
  std::size_t components = 0;
  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    ++components;
    stack.push_back(start);
    seen[start] = true;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      for (std::size_t v = 0; v < n; ++v) {
        if (!seen[v] && (adjacency(u, v) != 0.0 || adjacency(v, u) != 0.0)) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  return components;
}

RoadGraph::RoadGraph(Matrix coords, const AdjacencyOptions& opts) {
  distances_ = pairwise_euclidean(coords);
  finish(opts);
}

RoadGraph RoadGraph::from_distances(Matrix distances,
                                    const AdjacencyOptions& opts) {
  if (distances.rows() != distances.cols()) {
    throw ShapeError("RoadGraph::from_distances: must be square");
  }
  RoadGraph g;
  g.distances_ = std::move(distances);
  g.finish(opts);
  return g;
}

void RoadGraph::finish(const AdjacencyOptions& opts) {
  adjacency_ = gaussian_adjacency(distances_, opts);
  laplacian_ = normalized_laplacian(adjacency_);
  lambda_max_ = largest_eigenvalue(laplacian_);
  scaled_laplacian_ = graph::scaled_laplacian(laplacian_, lambda_max_);
}

}  // namespace rihgcn::graph
