// Road-network graph machinery: Gaussian-kernel adjacency construction
// (paper Eq. 8), normalized Laplacian, largest-eigenvalue estimation, and
// the rescaled Laplacian L̃ = 2L/λ_max − I that Chebyshev GCN consumes.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"
#include "timeseries/distance.hpp"

namespace rihgcn::graph {

using rihgcn::CsrMatrix;
using rihgcn::Matrix;

/// Options for Gaussian-kernel adjacency construction (paper Eq. 8):
///   A_ij = exp(-d_ij^2 / sigma^2) if >= epsilon else 0.
struct AdjacencyOptions {
  /// Sparsity threshold ε (paper: 0.1).
  double epsilon = 0.1;
  /// Kernel width σ. If unset, uses the standard deviation of all pairwise
  /// distances (the paper's convention, following DCRNN).
  std::optional<double> sigma;
  /// Zero the diagonal (self-loops are added by the Laplacian instead).
  bool zero_diagonal = true;
};

/// Build the thresholded Gaussian-kernel adjacency from a symmetric distance
/// matrix. Output is symmetric with zero diagonal (by default).
[[nodiscard]] Matrix gaussian_adjacency(const Matrix& distances,
                                        const AdjacencyOptions& opts = {});

/// Pairwise Euclidean distances between rows of `coords` (N x dim).
[[nodiscard]] Matrix pairwise_euclidean(const Matrix& coords);

/// Row-sum degrees deg_i = sum_j A_ij as a length-N vector. The hot-path
/// building block behind degree_matrix/normalized_laplacian.
[[nodiscard]] std::vector<double> degree_vector(const Matrix& adjacency);

/// Degree matrix diag(sum_j A_ij) returned as N x N. Materializes a full
/// dense matrix — kept for the public API and tests; the Laplacian pipeline
/// works from degree_vector() instead.
[[nodiscard]] Matrix degree_matrix(const Matrix& adjacency);

/// Symmetric normalized Laplacian L = I − D^{-1/2} A D^{-1/2}.
/// Isolated nodes (zero degree) contribute an identity row/column.
[[nodiscard]] Matrix normalized_laplacian(const Matrix& adjacency);

/// Largest eigenvalue by power iteration on (L + shift·I) — L's spectrum lies
/// in [0, 2], so the shift makes the dominant eigenvalue unambiguous.
/// Returns λ_max of L.
[[nodiscard]] double largest_eigenvalue(const Matrix& symmetric,
                                        std::size_t max_iters = 200,
                                        double tol = 1e-9);

/// Chebyshev rescaling: L̃ = 2L/λ_max − I. If lambda_max <= 0 it is
/// estimated with largest_eigenvalue().
[[nodiscard]] Matrix scaled_laplacian(const Matrix& laplacian,
                                      double lambda_max = -1.0);

/// Convenience: distance matrix -> scaled Laplacian in one call.
[[nodiscard]] Matrix scaled_laplacian_from_distances(
    const Matrix& distances, const AdjacencyOptions& opts = {});

// ---- Sparse graph backend (DESIGN.md §9) ----------------------------------

/// CSR form of any graph matrix, keeping entries with |v| > tol. tol = 0
/// preserves exact nonzeros so SpMM stays bitwise equal to dense matmul.
[[nodiscard]] CsrMatrix to_csr(const Matrix& m, double tol = 0.0);

/// Chebyshev-rescaled Laplacian L̃ = 2L/λ_max − I directly in CSR form.
/// Same estimation rule for lambda_max as scaled_laplacian().
[[nodiscard]] CsrMatrix scaled_laplacian_csr(const Matrix& laplacian,
                                             double lambda_max = -1.0,
                                             double tol = 0.0);

// ---- k-NN graph pipeline for city-scale N (DESIGN.md §13) -----------------
//
// At N = 16384 a dense N x N matrix is 2 GiB; this pipeline never builds
// one. Adjacency lives as a CsrMatrix from the start (k-NN edge set,
// union-symmetrized), and the Laplacian / rescaling steps below operate
// CSR-to-CSR. The selection rule behind every k-NN list is the shared
// ts::TopKNeighbors helper — keep the k smallest distances per row, ties
// broken toward the smaller index — so the spatial graphs here and the
// temporal graphs from ts::knn_series_graph sparsify identically.
//
// Bitwise-parity contract with the dense pipeline: for the same adjacency
// (CSR vs dense with the same entries), degree_vector, normalized Laplacian,
// largest_eigenvalue and Chebyshev rescaling below produce bit-identical
// values to their dense counterparts followed by CsrMatrix::from_dense
// (tol = 0). The dense loops only add zero-valued terms that the CSR loops
// skip, and adding ±0.0 to a nonzero partial sum never changes its bits;
// exact zeros produced by the arithmetic are dropped on both paths
// (from_dense keeps |v| > 0). tests/test_knn_graph.cpp enforces == .

/// Row-wise k-NN sparsification of a dense symmetric distance matrix
/// (diagonal excluded). k is clamped to N-1. Sharded over the global
/// ThreadPool; results are thread-count independent.
[[nodiscard]] ts::NeighborList knn_from_distances(const Matrix& distances,
                                                  std::size_t k);

/// k-NN over Euclidean distances between rows of `coords` (N x dim) without
/// materializing the N x N distance matrix. Bitwise equal to
/// knn_from_distances(pairwise_euclidean(coords), k).
[[nodiscard]] ts::NeighborList knn_from_coords(const Matrix& coords,
                                               std::size_t k);

/// Gaussian-kernel adjacency (paper Eq. 8) restricted to a k-NN edge set,
/// union-symmetrized (edge kept if either endpoint selected it), returned in
/// CSR form. When opts.sigma is unset, σ is the standard deviation of the
/// kept directed k-NN distances — NOT the dense pipeline's all-pairs std,
/// which is exactly the O(N²) pass this path exists to avoid. The diagonal
/// is never included (k-NN excludes self-pairs).
[[nodiscard]] CsrMatrix gaussian_knn_adjacency(const ts::NeighborList& knn,
                                               const AdjacencyOptions& opts =
                                                   {});

/// Row-sum degrees of a CSR adjacency; bitwise equal to the dense overload.
[[nodiscard]] std::vector<double> degree_vector(const CsrMatrix& adjacency);

/// Symmetric normalized Laplacian L = I − D^{-1/2} A D^{-1/2}, CSR to CSR.
/// Isolated nodes contribute an identity row. Bitwise equal to
/// from_dense(normalized_laplacian(dense A)).
[[nodiscard]] CsrMatrix normalized_laplacian_csr(const CsrMatrix& adjacency);

/// Power-iteration largest eigenvalue, CSR overload; same shifted iteration,
/// start vector and Rayleigh quotient as the dense version.
[[nodiscard]] double largest_eigenvalue(const CsrMatrix& symmetric,
                                        std::size_t max_iters = 200,
                                        double tol = 1e-9);

/// Chebyshev rescaling L̃ = 2L/λ_max − I, CSR to CSR. lambda_max <= 0 is
/// estimated with the CSR largest_eigenvalue. Exact zeros produced by the
/// rescaling are dropped (matching from_dense of the dense result).
[[nodiscard]] CsrMatrix scaled_laplacian_csr(const CsrMatrix& laplacian,
                                             double lambda_max = -1.0);

/// Structural sparsity summary of a graph matrix.
struct SparsityStats {
  std::size_t nnz = 0;    ///< entries with |v| > 0
  std::size_t size = 0;   ///< rows * cols
  double density = 0.0;   ///< nnz / size (0 for an empty matrix)
};
[[nodiscard]] SparsityStats sparsity_stats(const Matrix& m);

// ---- Structural checks (used by tests and data validation) ----------------

[[nodiscard]] bool is_symmetric(const Matrix& m, double tol = 1e-12);
/// Fraction of off-diagonal entries that are exactly zero.
[[nodiscard]] double sparsity(const Matrix& m);
/// Number of connected components treating nonzero entries as edges.
[[nodiscard]] std::size_t connected_components(const Matrix& adjacency);

/// A static road-network graph: node coordinates plus derived matrices.
/// This is the "geographic graph" of the paper; the temporal graphs reuse the
/// same adjacency/Laplacian pipeline with DTW distances instead of meters.
class RoadGraph {
 public:
  /// coords: N x dim node positions (e.g. projected lon/lat in km).
  RoadGraph(Matrix coords, const AdjacencyOptions& opts = {});
  /// Directly from a precomputed symmetric distance matrix.
  static RoadGraph from_distances(Matrix distances,
                                  const AdjacencyOptions& opts = {});

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return adjacency_.rows();
  }
  [[nodiscard]] const Matrix& distances() const noexcept { return distances_; }
  [[nodiscard]] const Matrix& adjacency() const noexcept { return adjacency_; }
  [[nodiscard]] const Matrix& laplacian() const noexcept { return laplacian_; }
  [[nodiscard]] const Matrix& scaled_laplacian() const noexcept {
    return scaled_laplacian_;
  }
  [[nodiscard]] double lambda_max() const noexcept { return lambda_max_; }

 private:
  RoadGraph() = default;
  void finish(const AdjacencyOptions& opts);

  Matrix distances_;
  Matrix adjacency_;
  Matrix laplacian_;
  Matrix scaled_laplacian_;
  double lambda_max_ = 0.0;
};

}  // namespace rihgcn::graph
