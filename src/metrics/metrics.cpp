#include "metrics/metrics.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rihgcn::metrics {

void ErrorAccumulator::add(const Matrix& pred, const Matrix& truth,
                           const Matrix& weight) {
  if (!pred.same_shape(truth) || !pred.same_shape(weight)) {
    throw ShapeError("ErrorAccumulator::add: shape mismatch");
  }
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double w = weight.data()[i];
    if (w <= 0.0) continue;
    const double d = pred.data()[i] - truth.data()[i];
    abs_sum_ += w * std::abs(d);
    sq_sum_ += w * d * d;
    count_ += w;
    if (std::abs(truth.data()[i]) > kMapeFloor) {
      pct_sum_ += w * std::abs(d / truth.data()[i]);
      pct_count_ += w;
    }
  }
}

void ErrorAccumulator::add(const Matrix& pred, const Matrix& truth) {
  add(pred, truth, Matrix(pred.rows(), pred.cols(), 1.0));
}

void ErrorAccumulator::add_scalar(double pred, double truth, double weight) {
  if (weight <= 0.0) return;
  const double d = pred - truth;
  abs_sum_ += weight * std::abs(d);
  sq_sum_ += weight * d * d;
  count_ += weight;
  if (std::abs(truth) > kMapeFloor) {
    pct_sum_ += weight * std::abs(d / truth);
    pct_count_ += weight;
  }
}

void ErrorAccumulator::merge(const ErrorAccumulator& other) {
  abs_sum_ += other.abs_sum_;
  sq_sum_ += other.sq_sum_;
  count_ += other.count_;
  pct_sum_ += other.pct_sum_;
  pct_count_ += other.pct_count_;
}

double ErrorAccumulator::mae() const {
  if (count_ == 0.0) throw std::logic_error("mae: no samples accumulated");
  return abs_sum_ / count_;
}

double ErrorAccumulator::rmse() const {
  if (count_ == 0.0) throw std::logic_error("rmse: no samples accumulated");
  return std::sqrt(sq_sum_ / count_);
}

double ErrorAccumulator::mape() const {
  if (pct_count_ == 0.0) {
    throw std::logic_error("mape: no nonzero-truth samples accumulated");
  }
  return pct_sum_ / pct_count_;
}

void ErrorAccumulator::reset() {
  abs_sum_ = sq_sum_ = count_ = pct_sum_ = pct_count_ = 0.0;
}

double masked_mae(const Matrix& pred, const Matrix& truth,
                  const Matrix& weight) {
  ErrorAccumulator acc;
  acc.add(pred, truth, weight);
  return acc.empty() ? 0.0 : acc.mae();
}

double masked_rmse(const Matrix& pred, const Matrix& truth,
                   const Matrix& weight) {
  ErrorAccumulator acc;
  acc.add(pred, truth, weight);
  return acc.empty() ? 0.0 : acc.rmse();
}

ResultTable::ResultTable(std::string title,
                         std::vector<std::string> group_labels)
    : title_(std::move(title)), group_labels_(std::move(group_labels)) {
  if (group_labels_.empty()) {
    throw std::invalid_argument("ResultTable: no groups");
  }
}

std::size_t ResultTable::method_row(const std::string& method) {
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    if (methods_[i] == method) return i;
  }
  methods_.push_back(method);
  cells_.emplace_back(group_labels_.size());
  return methods_.size() - 1;
}

void ResultTable::set(const std::string& method, std::size_t group, double mae,
                      double rmse) {
  if (group >= group_labels_.size()) {
    throw std::out_of_range("ResultTable::set: group out of range");
  }
  Cell& c = cells_[method_row(method)][group];
  c.mae = mae;
  c.rmse = rmse;
  c.present = true;
}

std::pair<double, double> ResultTable::cell(const std::string& method,
                                            std::size_t group) const {
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    if (methods_[i] == method) {
      const Cell& c = cells_[i].at(group);
      if (!c.present) throw std::logic_error("ResultTable::cell: empty cell");
      return {c.mae, c.rmse};
    }
  }
  throw std::logic_error("ResultTable::cell: unknown method " + method);
}

std::string ResultTable::to_string() const {
  std::ostringstream os;
  constexpr int kMethodWidth = 16;
  constexpr int kNumWidth = 9;
  os << title_ << "\n";
  os << std::left << std::setw(kMethodWidth) << "Method" << std::right;
  for (const std::string& g : group_labels_) {
    std::string label = g;
    const int group_width = 2 * kNumWidth;
    const int pad = group_width - static_cast<int>(label.size());
    os << std::string(std::max(1, pad / 2 + pad % 2), ' ') << label
       << std::string(static_cast<std::size_t>(std::max(0, pad / 2)), ' ');
  }
  os << "\n" << std::left << std::setw(kMethodWidth) << "" << std::right;
  for (std::size_t g = 0; g < group_labels_.size(); ++g) {
    os << std::setw(kNumWidth) << "MAE" << std::setw(kNumWidth) << "RMSE";
  }
  os << "\n";
  os << std::string(kMethodWidth + 2 * kNumWidth * group_labels_.size(), '-')
     << "\n";
  os << std::fixed << std::setprecision(4);
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    os << std::left << std::setw(kMethodWidth) << methods_[i] << std::right;
    for (const Cell& c : cells_[i]) {
      if (c.present) {
        os << std::setw(kNumWidth) << c.mae << std::setw(kNumWidth) << c.rmse;
      } else {
        os << std::setw(kNumWidth) << "-" << std::setw(kNumWidth) << "-";
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string ResultTable::to_csv() const {
  std::ostringstream os;
  os << "method,group,mae,rmse\n" << std::setprecision(10);
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    for (std::size_t g = 0; g < group_labels_.size(); ++g) {
      const Cell& c = cells_[i][g];
      if (!c.present) continue;
      os << methods_[i] << "," << group_labels_[g] << "," << c.mae << ","
         << c.rmse << "\n";
    }
  }
  return os.str();
}

}  // namespace rihgcn::metrics
