// Evaluation metrics (masked MAE / RMSE, the paper's two metrics) and an
// accumulator that aggregates errors over many windows/horizons, plus the
// fixed-width table formatting used by the bench harnesses to print
// paper-style result tables.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace rihgcn::metrics {

using rihgcn::Matrix;

/// Streaming accumulator of absolute and squared errors over weighted
/// entries. Thread-compatible (no sharing), cheap to merge.
class ErrorAccumulator {
 public:
  /// Accumulate |pred - truth| and (pred - truth)^2 where weight > 0.
  void add(const Matrix& pred, const Matrix& truth, const Matrix& weight);
  /// Accumulate with implicit all-ones weight.
  void add(const Matrix& pred, const Matrix& truth);
  void add_scalar(double pred, double truth, double weight = 1.0);
  void merge(const ErrorAccumulator& other);

  [[nodiscard]] double mae() const;
  [[nodiscard]] double rmse() const;
  /// Mean absolute percentage error over entries with |truth| > mape_floor
  /// (near-zero truths would explode the ratio; they are skipped, matching
  /// common traffic-forecasting practice).
  [[nodiscard]] double mape() const;
  [[nodiscard]] double count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0.0; }
  void reset();

  /// Threshold below which |truth| is considered zero for MAPE.
  static constexpr double kMapeFloor = 1e-6;

 private:
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double count_ = 0.0;
  double pct_sum_ = 0.0;
  double pct_count_ = 0.0;
};

/// One-shot masked MAE.
[[nodiscard]] double masked_mae(const Matrix& pred, const Matrix& truth,
                                const Matrix& weight);
/// One-shot masked RMSE.
[[nodiscard]] double masked_rmse(const Matrix& pred, const Matrix& truth,
                                 const Matrix& weight);

/// Fixed-layout results table: rows = methods, column groups = sweep points,
/// each group holding MAE and RMSE — the layout of the paper's Tables I/II.
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> group_labels);

  /// Record one (method, group) cell.
  void set(const std::string& method, std::size_t group, double mae,
           double rmse);
  /// Render in the paper's layout. Missing cells print as "-".
  [[nodiscard]] std::string to_string() const;
  /// Render as CSV (method,group_label,mae,rmse per line) for plotting.
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] const std::vector<std::string>& methods() const noexcept {
    return methods_;
  }
  /// Lookup a cell; throws if absent.
  [[nodiscard]] std::pair<double, double> cell(const std::string& method,
                                               std::size_t group) const;

 private:
  struct Cell {
    double mae = -1.0;
    double rmse = -1.0;
    bool present = false;
  };
  [[nodiscard]] std::size_t method_row(const std::string& method);

  std::string title_;
  std::vector<std::string> group_labels_;
  std::vector<std::string> methods_;
  std::vector<std::vector<Cell>> cells_;  // [method][group]
};

}  // namespace rihgcn::metrics
