#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/csr.hpp"

namespace rihgcn::nn {

Matrix xavier_uniform(Rng& rng, std::size_t fan_in, std::size_t fan_out) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return rng.uniform_matrix(fan_in, fan_out, -a, a);
}

Matrix he_normal(Rng& rng, std::size_t fan_in, std::size_t fan_out) {
  const double s = std::sqrt(2.0 / static_cast<double>(fan_in));
  return rng.normal_matrix(fan_in, fan_out, s);
}

std::size_t Module::num_parameters() {
  std::size_t n = 0;
  for (const Parameter* p : parameters()) n += p->size();
  return n;
}

// ---- Linear -----------------------------------------------------------------

Linear::Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng,
               std::string name)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(xavier_uniform(rng, in_dim, out_dim), name + ".weight"),
      bias_(Matrix(1, out_dim), name + ".bias") {
  if (in_dim == 0 || out_dim == 0) {
    throw std::invalid_argument("Linear: zero dimension");
  }
}

Var Linear::forward(Tape& tape, Var x) {
  Var w = tape.leaf(weight_);
  Var b = tape.leaf(bias_);
  return tape.add_row_broadcast(tape.matmul(x, w), b);
}

std::vector<Parameter*> Linear::parameters() { return {&weight_, &bias_}; }

// ---- LstmCell -----------------------------------------------------------------

LstmCell::LstmCell(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
                   std::string name)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_ih_(xavier_uniform(rng, input_dim, 4 * hidden_dim), name + ".w_ih"),
      w_hh_(xavier_uniform(rng, hidden_dim, 4 * hidden_dim), name + ".w_hh"),
      bias_(Matrix(1, 4 * hidden_dim), name + ".bias") {
  if (input_dim == 0 || hidden_dim == 0) {
    throw std::invalid_argument("LstmCell: zero dimension");
  }
  // Forget-gate bias init to 1 keeps early gradients flowing (standard
  // practice; Jozefowicz et al. 2015).
  for (std::size_t c = hidden_dim; c < 2 * hidden_dim; ++c) {
    bias_.value()(0, c) = 1.0;
  }
}

LstmCell::State LstmCell::initial_state(Tape& tape, std::size_t batch) const {
  return State{tape.constant(Matrix(batch, hidden_dim_)),
               tape.constant(Matrix(batch, hidden_dim_))};
}

LstmCell::State LstmCell::step(Tape& tape, Var x, const State& prev) {
  if (x.cols() != input_dim_) {
    throw ShapeError("LstmCell::step: input dim mismatch");
  }
  Var w_ih = tape.leaf(w_ih_);
  Var w_hh = tape.leaf(w_hh_);
  Var b = tape.leaf(bias_);
  if (fused()) {
    Tape::LstmState s = tape.lstm_cell(x, prev.h, prev.c, w_ih, w_hh, b);
    return State{s.h, s.c};
  }
  // Unfused reference chain. One statement per node pins the tape creation
  // order (C++ argument evaluation order is unspecified); the fused kernel's
  // backward replays the reverse of exactly this sequence, which is what
  // makes the bitwise fused/unfused parity tests possible.
  const std::size_t H = hidden_dim_;
  Var mm1 = tape.matmul(x, w_ih);
  Var mm2 = tape.matmul(prev.h, w_hh);
  Var pre = tape.add(mm1, mm2);
  Var gates = tape.add_row_broadcast(pre, b);
  Var i = tape.sigmoid(tape.slice_cols(gates, 0, H));
  Var f = tape.sigmoid(tape.slice_cols(gates, H, 2 * H));
  Var o = tape.sigmoid(tape.slice_cols(gates, 2 * H, 3 * H));
  Var g = tape.tanh(tape.slice_cols(gates, 3 * H, 4 * H));
  Var fc = tape.mul(f, prev.c);
  Var ig = tape.mul(i, g);
  Var c = tape.add(fc, ig);
  Var h = tape.mul(o, tape.tanh(c));
  return State{h, c};
}

std::vector<Parameter*> LstmCell::parameters() {
  return {&w_ih_, &w_hh_, &bias_};
}

// ---- GruCell -----------------------------------------------------------------

GruCell::GruCell(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
                 std::string name)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      w_ih_(xavier_uniform(rng, input_dim, 3 * hidden_dim), name + ".w_ih"),
      w_hh_(xavier_uniform(rng, hidden_dim, 3 * hidden_dim), name + ".w_hh"),
      bias_(Matrix(1, 3 * hidden_dim), name + ".bias") {
  if (input_dim == 0 || hidden_dim == 0) {
    throw std::invalid_argument("GruCell: zero dimension");
  }
}

RecurrentCell::State GruCell::initial_state(Tape& tape,
                                            std::size_t batch) const {
  Var h = tape.constant(Matrix(batch, hidden_dim_));
  return State{h, h};
}

RecurrentCell::State GruCell::step(Tape& tape, Var x, const State& prev) {
  if (x.cols() != input_dim_) {
    throw ShapeError("GruCell::step: input dim mismatch");
  }
  Var w_ih = tape.leaf(w_ih_);
  Var w_hh = tape.leaf(w_hh_);
  Var b = tape.leaf(bias_);
  if (fused()) {
    Var h = tape.gru_cell(x, prev.h, w_ih, w_hh, b);
    return State{h, h};
  }
  // Unfused reference chain; statement-per-node pins the tape order the
  // fused kernel's backward mirrors (see LstmCell::step).
  const std::size_t H = hidden_dim_;
  Var xi = tape.matmul(x, w_ih);  // batch x 3H
  Var hh = tape.matmul(prev.h, w_hh);
  Var xr = tape.slice_cols(xi, 0, H);
  Var hr = tape.slice_cols(hh, 0, H);
  Var ar = tape.add(xr, hr);
  Var br = tape.slice_cols(b, 0, H);
  Var r = tape.sigmoid(tape.add_row_broadcast(ar, br));
  Var xz = tape.slice_cols(xi, H, 2 * H);
  Var hz = tape.slice_cols(hh, H, 2 * H);
  Var az = tape.add(xz, hz);
  Var bz = tape.slice_cols(b, H, 2 * H);
  Var z = tape.sigmoid(tape.add_row_broadcast(az, bz));
  Var xn = tape.slice_cols(xi, 2 * H, 3 * H);
  Var hn = tape.slice_cols(hh, 2 * H, 3 * H);
  Var rn = tape.mul(r, hn);
  Var an = tape.add(xn, rn);
  Var bn = tape.slice_cols(b, 2 * H, 3 * H);
  Var n = tape.tanh(tape.add_row_broadcast(an, bn));
  // h' = (1 - z) ⊙ n + z ⊙ h = n − z⊙n + z⊙h
  Var zn = tape.mul(z, n);
  Var nm = tape.sub(n, zn);
  Var zh = tape.mul(z, prev.h);
  Var h = tape.add(nm, zh);
  return State{h, h};
}

std::vector<Parameter*> GruCell::parameters() {
  return {&w_ih_, &w_hh_, &bias_};
}

std::unique_ptr<RecurrentCell> make_recurrent_cell(CellKind kind,
                                                   std::size_t input_dim,
                                                   std::size_t hidden_dim,
                                                   Rng& rng,
                                                   std::string name) {
  switch (kind) {
    case CellKind::kLstm:
      return std::make_unique<LstmCell>(input_dim, hidden_dim, rng,
                                        std::move(name));
    case CellKind::kGru:
      return std::make_unique<GruCell>(input_dim, hidden_dim, rng,
                                       std::move(name));
  }
  throw std::logic_error("make_recurrent_cell: bad kind");
}

// ---- ChebGcnLayer -------------------------------------------------------------

ChebGcnLayer::ChebGcnLayer(std::size_t in_dim, std::size_t out_dim,
                           std::size_t order, Rng& rng, std::string name)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      order_(order),
      bias_(Matrix(1, out_dim), name + ".bias") {
  if (order == 0) throw std::invalid_argument("ChebGcnLayer: order must be >=1");
  theta_.reserve(order);
  for (std::size_t k = 0; k < order; ++k) {
    theta_.emplace_back(xavier_uniform(rng, in_dim, out_dim),
                        name + ".theta" + std::to_string(k));
  }
}

Var ChebGcnLayer::forward(Tape& tape, Var x, const Matrix& scaled_laplacian) {
  if (scaled_laplacian.rows() != x.rows() ||
      scaled_laplacian.cols() != x.rows()) {
    throw ShapeError("ChebGcnLayer::forward: Laplacian/input size mismatch");
  }
  return forward(tape, x, tape.constant(scaled_laplacian));
}

Var ChebGcnLayer::forward(Tape& tape, Var x, Var lap) {
  if (x.cols() != in_dim_) {
    throw ShapeError("ChebGcnLayer::forward: input dim mismatch");
  }
  if (lap.rows() != x.rows() || lap.cols() != x.rows()) {
    throw ShapeError("ChebGcnLayer::forward: Laplacian/input size mismatch");
  }
  // Chebyshev recurrence: Z0 = x, Z1 = L̃x, Zk = 2 L̃ Z_{k-1} − Z_{k-2}.
  std::vector<Var> z;
  z.reserve(order_);
  z.push_back(x);
  if (order_ > 1) z.push_back(tape.matmul(lap, x));
  for (std::size_t k = 2; k < order_; ++k) {
    z.push_back(
        tape.sub(tape.scale(tape.matmul(lap, z[k - 1]), 2.0), z[k - 2]));
  }
  return mix_theta(tape, z);
}

Var ChebGcnLayer::forward(Tape& tape, Var x, const CsrMatrix& lap) {
  if (x.cols() != in_dim_) {
    throw ShapeError("ChebGcnLayer::forward: input dim mismatch");
  }
  if (lap.rows() != x.rows() || lap.cols() != x.rows()) {
    throw ShapeError("ChebGcnLayer::forward: Laplacian/input size mismatch");
  }
  // Same recurrence with L̃ applied via SpMM. Op structure matches the dense
  // overload exactly, so the tape (and therefore the gradients) differ only
  // in the kernel used for L̃·Z — which is bitwise-equal at tol = 0.
  std::vector<Var> z;
  z.reserve(order_);
  z.push_back(x);
  if (order_ > 1) z.push_back(tape.spmm(lap, x));
  for (std::size_t k = 2; k < order_; ++k) {
    z.push_back(tape.sub(tape.scale(tape.spmm(lap, z[k - 1]), 2.0), z[k - 2]));
  }
  return mix_theta(tape, z);
}

Var ChebGcnLayer::mix_theta(Tape& tape, const std::vector<Var>& z) {
  Var acc = tape.matmul(z[0], tape.leaf(theta_[0]));
  for (std::size_t k = 1; k < order_; ++k) {
    acc = tape.add(acc, tape.matmul(z[k], tape.leaf(theta_[k])));
  }
  return tape.add_row_broadcast(acc, tape.leaf(bias_));
}

std::vector<Parameter*> ChebGcnLayer::parameters() {
  std::vector<Parameter*> out;
  out.reserve(theta_.size() + 1);
  for (auto& t : theta_) out.push_back(&t);
  out.push_back(&bias_);
  return out;
}

// ---- Mlp -----------------------------------------------------------------

Mlp::Mlp(const std::vector<std::size_t>& dims, Rng& rng, std::string name) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need >=2 dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng,
                         name + ".fc" + std::to_string(i));
  }
}

Var Mlp::forward(Tape& tape, Var x) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i].forward(tape, x);
    if (i + 1 < layers_.size()) x = tape.tanh(x);
  }
  return x;
}

std::vector<Parameter*> Mlp::parameters() {
  std::vector<Parameter*> out;
  for (auto& l : layers_) {
    for (Parameter* p : l.parameters()) out.push_back(p);
  }
  return out;
}

std::vector<Parameter*> collect_parameters(
    std::initializer_list<Module*> modules) {
  std::vector<Parameter*> out;
  for (Module* m : modules) {
    for (Parameter* p : m->parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace rihgcn::nn
