// Neural-network building blocks on top of the autodiff tape.
//
// Every layer owns its Parameters and exposes them through parameters() so
// an optimizer can update them; forward() methods take the Tape explicitly
// (one tape per forward/backward pass) and are const-incorrect on purpose —
// a forward pass never mutates layer state, only the tape.
//
// These are exactly the blocks the paper composes (§III): a generalized
// Chebyshev graph convolution (Eq. 1), a batched LSTM cell shared across
// nodes (Eq. 4), and linear projections (Eq. 5 / the FC prediction head).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autodiff/tape.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::nn {

using ad::Parameter;
using ad::Tape;
using ad::Var;

/// Xavier/Glorot uniform init: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
Matrix xavier_uniform(Rng& rng, std::size_t fan_in, std::size_t fan_out);
/// He/Kaiming normal init for ReLU layers.
Matrix he_normal(Rng& rng, std::size_t fan_in, std::size_t fan_out);

/// Anything that owns trainable parameters.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  // Movable so layers can live in std::vector (parameters() is only called
  // after construction settles, so moved-from husks are never observed).
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;

  /// Non-owning views of every trainable parameter (stable addresses).
  [[nodiscard]] virtual std::vector<Parameter*> parameters() = 0;

  /// Total scalar parameter count.
  [[nodiscard]] std::size_t num_parameters();
};

/// y = x W + b, with x: (batch x in), W: (in x out), b: (1 x out).
class Linear : public Module {
 public:
  Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng,
         std::string name = "linear");

  [[nodiscard]] Var forward(Tape& tape, Var x);
  [[nodiscard]] std::vector<Parameter*> parameters() override;

  [[nodiscard]] std::size_t in_dim() const noexcept { return in_dim_; }
  [[nodiscard]] std::size_t out_dim() const noexcept { return out_dim_; }

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  Parameter weight_;
  Parameter bias_;
};

/// Abstract batched recurrent cell: rows of the input are independent
/// sequence elements (here: road-network nodes, which share parameters per
/// the paper §III-E). LSTM is the paper's choice; GRU is provided as a
/// lighter drop-in (ablated in bench_ablation).
class RecurrentCell : public Module {
 public:
  struct State {
    Var h;  ///< batch x hidden
    Var c;  ///< batch x hidden (cells without a memory lane mirror h here)
  };

  /// Zero-initialized state for a batch of `batch` rows.
  [[nodiscard]] virtual State initial_state(Tape& tape,
                                            std::size_t batch) const = 0;
  /// One step: consumes x_t (batch x input_dim) and the previous state.
  [[nodiscard]] virtual State step(Tape& tape, Var x, const State& prev) = 0;
  [[nodiscard]] virtual std::size_t hidden_dim() const noexcept = 0;
  [[nodiscard]] virtual std::size_t input_dim() const noexcept = 0;

  /// Fused (default) routes step() through Tape::lstm_cell / Tape::gru_cell
  /// — 2-3 tape nodes per step instead of ~15-25. Unfused builds the
  /// elementary op chain; both produce bitwise-identical values and
  /// gradients (tests/test_tape_arena.cpp), so unfused exists for
  /// differential testing and as executable documentation of the math.
  void set_fused(bool fused) noexcept { fused_ = fused; }
  [[nodiscard]] bool fused() const noexcept { return fused_; }

 private:
  bool fused_ = true;
};

/// Which recurrent cell a model uses.
enum class CellKind { kLstm, kGru };

/// Batched LSTM cell. Gate layout along the 4H columns is [i | f | o | g].
class LstmCell : public RecurrentCell {
 public:
  LstmCell(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
           std::string name = "lstm");

  [[nodiscard]] State initial_state(Tape& tape,
                                    std::size_t batch) const override;
  [[nodiscard]] State step(Tape& tape, Var x, const State& prev) override;

  [[nodiscard]] std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::size_t hidden_dim() const noexcept override {
    return hidden_dim_;
  }
  [[nodiscard]] std::size_t input_dim() const noexcept override {
    return input_dim_;
  }

 private:
  std::size_t input_dim_;
  std::size_t hidden_dim_;
  Parameter w_ih_;  ///< input_dim x 4H
  Parameter w_hh_;  ///< H x 4H
  Parameter bias_;  ///< 1 x 4H (forget-gate block initialized to 1)
};

/// Batched GRU cell (Cho et al. 2014). Gate layout along the 3H columns is
/// [r | z | n]; the candidate n applies the reset gate to the recurrent
/// term: n = tanh(x W_n + r ⊙ (h U_n) + b_n), h' = (1−z)⊙n + z⊙h.
class GruCell : public RecurrentCell {
 public:
  GruCell(std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
          std::string name = "gru");

  [[nodiscard]] State initial_state(Tape& tape,
                                    std::size_t batch) const override;
  [[nodiscard]] State step(Tape& tape, Var x, const State& prev) override;

  [[nodiscard]] std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::size_t hidden_dim() const noexcept override {
    return hidden_dim_;
  }
  [[nodiscard]] std::size_t input_dim() const noexcept override {
    return input_dim_;
  }

 private:
  std::size_t input_dim_;
  std::size_t hidden_dim_;
  Parameter w_ih_;  ///< input_dim x 3H
  Parameter w_hh_;  ///< H x 3H
  Parameter bias_;  ///< 1 x 3H
};

/// Factory over CellKind.
[[nodiscard]] std::unique_ptr<RecurrentCell> make_recurrent_cell(
    CellKind kind, std::size_t input_dim, std::size_t hidden_dim, Rng& rng,
    std::string name);

/// Order-K Chebyshev spectral graph convolution (paper Eq. 1):
///   y = Σ_{k=0}^{K-1} T_k(L̃) x Θ_k + b
/// where L̃ is the rescaled Laplacian 2L/λ_max − I (built by rihgcn::graph).
/// T_k is evaluated by the three-term recurrence, so cost is K sparse-ish
/// matmuls; L̃ enters the tape as a constant (the graph is not trained).
class ChebGcnLayer : public Module {
 public:
  ChebGcnLayer(std::size_t in_dim, std::size_t out_dim, std::size_t order,
               Rng& rng, std::string name = "cheb_gcn");

  /// x: (N x in_dim), scaled_laplacian: (N x N). Wraps the Laplacian in a
  /// fresh tape constant each call; prefer the Var overload in loops.
  [[nodiscard]] Var forward(Tape& tape, Var x, const Matrix& scaled_laplacian);

  /// Same convolution with the Laplacian already on the tape (e.g. created
  /// once per tape and reused across timesteps — avoids lookback x (M+1)
  /// redundant N x N constants per forward pass).
  [[nodiscard]] Var forward(Tape& tape, Var x, Var scaled_laplacian);

  /// Sparse fast path: the recurrence runs over Tape::spmm instead of dense
  /// matmul, dropping propagation cost from O(N²·in) to O(nnz·in). With the
  /// CSR built at tol = 0 the result is bitwise identical to the dense
  /// overloads (see tensor/csr.hpp). The CsrMatrix must outlive the tape —
  /// in practice it lives in the model's per-model sparse Laplacian cache.
  [[nodiscard]] Var forward(Tape& tape, Var x,
                            const CsrMatrix& scaled_laplacian);

  [[nodiscard]] std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::size_t order() const noexcept { return order_; }
  [[nodiscard]] std::size_t in_dim() const noexcept { return in_dim_; }
  [[nodiscard]] std::size_t out_dim() const noexcept { return out_dim_; }

 private:
  /// Σ_k Z_k Θ_k + b — the part shared by the dense and sparse overloads.
  [[nodiscard]] Var mix_theta(Tape& tape, const std::vector<Var>& z);

  std::size_t in_dim_;
  std::size_t out_dim_;
  std::size_t order_;
  std::vector<Parameter> theta_;  ///< K matrices, each in_dim x out_dim
  Parameter bias_;                ///< 1 x out_dim
};

/// Simple MLP: a stack of Linear layers with tanh between (not after the
/// last). Used by baselines' prediction heads.
class Mlp : public Module {
 public:
  Mlp(const std::vector<std::size_t>& dims, Rng& rng, std::string name = "mlp");

  [[nodiscard]] Var forward(Tape& tape, Var x);
  [[nodiscard]] std::vector<Parameter*> parameters() override;

 private:
  std::vector<Linear> layers_;
};

/// Collect parameters from several modules into one flat list.
[[nodiscard]] std::vector<Parameter*> collect_parameters(
    std::initializer_list<Module*> modules);

}  // namespace rihgcn::nn
