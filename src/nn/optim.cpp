#include "nn/optim.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace rihgcn::nn {

AdamOptimizer::AdamOptimizer(std::vector<ad::Parameter*> params, Config config)
    : params_(std::move(params)), config_(config), lr_(config.lr) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ad::Parameter* p : params_) {
    if (p == nullptr) throw std::invalid_argument("AdamOptimizer: null param");
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void AdamOptimizer::zero_grad() {
  for (ad::Parameter* p : params_) p->zero_grad();
}

double AdamOptimizer::step() {
  const double raw_norm = global_grad_norm(params_);
  if (config_.max_grad_norm > 0.0) {
    clip_global_grad_norm(params_, config_.max_grad_norm);
  }
  ++t_;
  if (config_.lr_decay_every > 0 && config_.lr_decay != 1.0 &&
      t_ % config_.lr_decay_every == 0) {
    lr_ *= config_.lr_decay;
  }
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ad::Parameter& p = *params_[i];
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    double* pv = p.value().data();
    const double* g = p.grad().data();
    double* mp = m.data();
    double* vp = v.data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (config_.weight_decay > 0.0) {
        pv[j] -= lr_ * config_.weight_decay * pv[j];  // decoupled (AdamW)
      }
      mp[j] = config_.beta1 * mp[j] + (1.0 - config_.beta1) * g[j];
      vp[j] = config_.beta2 * vp[j] + (1.0 - config_.beta2) * g[j] * g[j];
      const double mhat = mp[j] / bc1;
      const double vhat = vp[j] / bc2;
      pv[j] -= lr_ * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
  return raw_norm;
}

double global_grad_norm(const std::vector<ad::Parameter*>& params) {
  double s = 0.0;
  for (const ad::Parameter* p : params) {
    const double n = p->grad().norm();
    s += n * n;
  }
  return std::sqrt(s);
}

void clip_global_grad_norm(const std::vector<ad::Parameter*>& params,
                           double max_norm) {
  const double norm = global_grad_norm(params);
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (ad::Parameter* p : params) p->grad() *= scale;
}

bool EarlyStopping::update(double value) {
  if (value < best_ - min_delta_) {
    best_ = value;
    bad_epochs_ = 0;
    return true;
  }
  ++bad_epochs_;
  return false;
}

void save_parameters(std::ostream& os,
                     const std::vector<ad::Parameter*>& params) {
  os << "rihgcn-params v1\n" << params.size() << "\n";
  os << std::setprecision(17);
  for (const ad::Parameter* p : params) {
    const Matrix& m = p->value();
    os << p->name() << "\n" << m.rows() << " " << m.cols() << "\n";
    for (std::size_t i = 0; i < m.size(); ++i) {
      os << m.data()[i] << (i + 1 == m.size() ? "" : " ");
    }
    os << "\n";
  }
}

void load_parameters(std::istream& is,
                     const std::vector<ad::Parameter*>& params) {
  std::string magic, version;
  is >> magic >> version;
  if (magic != "rihgcn-params" || version != "v1") {
    throw std::runtime_error("load_parameters: bad header");
  }
  std::size_t count = 0;
  is >> count;
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (ad::Parameter* p : params) {
    std::string name;
    std::size_t rows = 0, cols = 0;
    is >> name >> rows >> cols;
    if (rows != p->value().rows() || cols != p->value().cols()) {
      throw std::runtime_error("load_parameters: shape mismatch for '" + name +
                               "'");
    }
    for (std::size_t i = 0; i < p->value().size(); ++i) {
      is >> p->value().data()[i];
    }
  }
  if (!is) throw std::runtime_error("load_parameters: truncated stream");
}

std::vector<Matrix> snapshot_values(
    const std::vector<ad::Parameter*>& params) {
  std::vector<Matrix> snap;
  snap.reserve(params.size());
  for (const ad::Parameter* p : params) snap.push_back(p->value());
  return snap;
}

void restore_values(const std::vector<Matrix>& snapshot,
                    const std::vector<ad::Parameter*>& params) {
  if (snapshot.size() != params.size()) {
    throw std::invalid_argument("restore_values: size mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!snapshot[i].same_shape(params[i]->value())) {
      throw std::invalid_argument("restore_values: shape mismatch");
    }
    params[i]->value() = snapshot[i];
  }
}

}  // namespace rihgcn::nn
