#include "nn/optim.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <istream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rihgcn::nn {

AdamOptimizer::AdamOptimizer(std::vector<ad::Parameter*> params, Config config)
    : params_(std::move(params)), config_(config), lr_(config.lr) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ad::Parameter* p : params_) {
    if (p == nullptr) throw std::invalid_argument("AdamOptimizer: null param");
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void AdamOptimizer::zero_grad() {
  for (ad::Parameter* p : params_) p->zero_grad();
}

double AdamOptimizer::step() {
  const double raw_norm = global_grad_norm(params_);
  if (config_.max_grad_norm > 0.0) {
    clip_global_grad_norm(params_, config_.max_grad_norm);
  }
  ++t_;
  if (config_.lr_decay_every > 0 && config_.lr_decay != 1.0 &&
      t_ % config_.lr_decay_every == 0) {
    lr_ *= config_.lr_decay;
  }
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ad::Parameter& p = *params_[i];
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    double* pv = p.value().data();
    const double* g = p.grad().data();
    double* mp = m.data();
    double* vp = v.data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (config_.weight_decay > 0.0) {
        pv[j] -= lr_ * config_.weight_decay * pv[j];  // decoupled (AdamW)
      }
      mp[j] = config_.beta1 * mp[j] + (1.0 - config_.beta1) * g[j];
      vp[j] = config_.beta2 * vp[j] + (1.0 - config_.beta2) * g[j] * g[j];
      const double mhat = mp[j] / bc1;
      const double vhat = vp[j] / bc2;
      pv[j] -= lr_ * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
  return raw_norm;
}

AdamOptimizer::State AdamOptimizer::state() const {
  State s;
  state_into(s);
  return s;
}

void AdamOptimizer::state_into(State& out) const {
  // Element-wise assignment so Matrix buffers are reused when `out` was
  // filled from this optimizer before; callers that snapshot every step
  // (NumericalGuard) then pay a memcpy, not an allocation, per step.
  out.m.resize(m_.size());
  out.v.resize(v_.size());
  for (std::size_t i = 0; i < m_.size(); ++i) out.m[i] = m_[i];
  for (std::size_t i = 0; i < v_.size(); ++i) out.v[i] = v_[i];
  out.t = t_;
  out.lr = lr_;
}

void AdamOptimizer::set_state(const State& s) {
  if (s.m.size() != m_.size() || s.v.size() != v_.size()) {
    throw std::invalid_argument("AdamOptimizer::set_state: moment count mismatch");
  }
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (!s.m[i].same_shape(m_[i]) || !s.v[i].same_shape(v_[i])) {
      throw std::invalid_argument(
          "AdamOptimizer::set_state: moment shape mismatch");
    }
  }
  m_ = s.m;
  v_ = s.v;
  t_ = s.t;
  lr_ = s.lr;
}

double global_grad_norm(const std::vector<ad::Parameter*>& params) {
  double s = 0.0;
  for (const ad::Parameter* p : params) {
    const double n = p->grad().norm();
    s += n * n;
  }
  return std::sqrt(s);
}

void clip_global_grad_norm(const std::vector<ad::Parameter*>& params,
                           double max_norm) {
  const double norm = global_grad_norm(params);
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (ad::Parameter* p : params) p->grad() *= scale;
}

bool EarlyStopping::update(double value) {
  if (value < best_ - min_delta_) {
    best_ = value;
    bad_epochs_ = 0;
    return true;
  }
  ++bad_epochs_;
  return false;
}

void save_parameters(std::ostream& os,
                     const std::vector<ad::Parameter*>& params) {
  os << "rihgcn-params v1\n" << params.size() << "\n";
  os << std::setprecision(17);
  for (const ad::Parameter* p : params) {
    const Matrix& m = p->value();
    os << p->name() << "\n" << m.rows() << " " << m.cols() << "\n";
    for (std::size_t i = 0; i < m.size(); ++i) {
      os << m.data()[i] << (i + 1 == m.size() ? "" : " ");
    }
    os << "\n";
  }
}

void load_parameters(std::istream& is,
                     const std::vector<ad::Parameter*>& params) {
  std::string magic, version;
  is >> magic >> version;
  if (magic != "rihgcn-params" || version != "v1") {
    throw std::runtime_error("load_parameters: bad header");
  }
  std::size_t count = 0;
  is >> count;
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (ad::Parameter* p : params) {
    std::string name;
    std::size_t rows = 0, cols = 0;
    is >> name >> rows >> cols;
    if (rows != p->value().rows() || cols != p->value().cols()) {
      throw std::runtime_error("load_parameters: shape mismatch for '" + name +
                               "'");
    }
    for (std::size_t i = 0; i < p->value().size(); ++i) {
      is >> p->value().data()[i];
    }
  }
  if (!is) throw std::runtime_error("load_parameters: truncated stream");
}

// ---- Durable training checkpoints ------------------------------------------

namespace {

void write_matrix_block(std::ostream& os, const Matrix& m) {
  os << m.rows() << " " << m.cols() << "\n";
  for (std::size_t i = 0; i < m.size(); ++i) {
    os << m.data()[i] << (i + 1 == m.size() ? "" : " ");
  }
  os << "\n";
}

Matrix read_matrix_block(std::istream& is, const char* what) {
  std::size_t rows = 0, cols = 0;
  if (!(is >> rows >> cols)) {
    throw std::runtime_error(std::string("load_training_checkpoint: bad ") +
                             what + " shape");
  }
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!(is >> m.data()[i])) {
      throw std::runtime_error(std::string("load_training_checkpoint: "
                                           "truncated ") +
                               what);
    }
  }
  return m;
}

void expect_keyword(std::istream& is, const std::string& expected) {
  std::string token;
  is >> token;
  if (token != expected) {
    throw std::runtime_error("load_training_checkpoint: expected '" +
                             expected + "', got '" + token + "'");
  }
}

}  // namespace

std::uint32_t crc32(const unsigned char* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::string& bytes) {
  return crc32(reinterpret_cast<const unsigned char*>(bytes.data()),
               bytes.size());
}

void save_training_checkpoint(const std::string& path,
                              const TrainCheckpoint& ckpt,
                              const std::vector<ad::Parameter*>& params) {
  if (ckpt.adam.m.size() != params.size()) {
    throw std::invalid_argument(
        "save_training_checkpoint: adam state / parameter count mismatch");
  }
  // Build the payload in memory first: the CRC covers exactly these bytes.
  std::ostringstream payload;
  payload << std::setprecision(17);  // lossless binary64 text round trip
  payload << "epoch " << ckpt.epoch << "\n";
  payload << "contract " << ckpt.batch_size << " " << ckpt.num_threads << " "
          << ckpt.seed << "\n";
  payload << "rng";
  for (const std::uint64_t w : ckpt.rng.words) payload << " " << w;
  payload << " " << (ckpt.rng.has_cached_normal ? 1 : 0) << " "
          << ckpt.rng.cached_normal << "\n";
  payload << "adam " << ckpt.adam.t << " " << ckpt.adam.lr << " "
          << ckpt.adam.m.size() << "\n";
  for (std::size_t i = 0; i < ckpt.adam.m.size(); ++i) {
    write_matrix_block(payload, ckpt.adam.m[i]);
    write_matrix_block(payload, ckpt.adam.v[i]);
  }
  payload << "stopper " << ckpt.stopper_best << " " << ckpt.stopper_bad_epochs
          << "\n";
  payload << "guard " << ckpt.guard_loss_ema << " "
          << (ckpt.guard_ema_initialized ? 1 : 0) << " "
          << ckpt.guard_good_steps << " " << ckpt.guard_consecutive_bad << " "
          << ckpt.guard_backoffs_used << "\n";
  save_parameters(payload, params);
  payload << "best " << ckpt.best_values.size() << "\n";
  for (const Matrix& m : ckpt.best_values) write_matrix_block(payload, m);
  const std::string bytes = payload.str();

  // Atomic write: temp file in the same directory, then rename into place.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("save_training_checkpoint: cannot open " + tmp);
    }
    os << "rihgcn-train-ckpt v2\n";
    os << "crc32 " << crc32(bytes) << " " << bytes.size() << "\n";
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
      throw std::runtime_error("save_training_checkpoint: write failed for " +
                               tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("save_training_checkpoint: rename to " + path +
                             " failed");
  }
}

TrainCheckpoint load_training_checkpoint(
    const std::string& path, const std::vector<ad::Parameter*>& params) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("load_training_checkpoint: cannot open " + path);
  }
  std::string magic, version;
  is >> magic >> version;
  if (magic != "rihgcn-train-ckpt" || version != "v2") {
    throw std::runtime_error("load_training_checkpoint: bad header in " +
                             path);
  }
  std::string crc_kw;
  std::uint32_t stored_crc = 0;
  std::size_t payload_size = 0;
  is >> crc_kw >> stored_crc >> payload_size;
  if (!is || crc_kw != "crc32") {
    throw std::runtime_error("load_training_checkpoint: bad crc line");
  }
  is.get();  // consume the newline terminating the crc line
  std::string bytes(std::istreambuf_iterator<char>(is), {});
  if (bytes.size() != payload_size) {
    throw std::runtime_error("load_training_checkpoint: truncated payload (" +
                             std::to_string(bytes.size()) + " of " +
                             std::to_string(payload_size) + " bytes)");
  }
  if (crc32(bytes) != stored_crc) {
    throw std::runtime_error(
        "load_training_checkpoint: CRC mismatch — checkpoint is corrupt");
  }

  std::istringstream payload(bytes);
  TrainCheckpoint ckpt;
  expect_keyword(payload, "epoch");
  payload >> ckpt.epoch;
  expect_keyword(payload, "contract");
  payload >> ckpt.batch_size >> ckpt.num_threads >> ckpt.seed;
  expect_keyword(payload, "rng");
  int has_cached = 0;
  for (std::uint64_t& w : ckpt.rng.words) payload >> w;
  payload >> has_cached >> ckpt.rng.cached_normal;
  ckpt.rng.has_cached_normal = has_cached != 0;
  expect_keyword(payload, "adam");
  std::size_t adam_count = 0;
  payload >> ckpt.adam.t >> ckpt.adam.lr >> adam_count;
  if (!payload || adam_count != params.size()) {
    throw std::runtime_error(
        "load_training_checkpoint: adam moment count mismatch");
  }
  ckpt.adam.m.reserve(adam_count);
  ckpt.adam.v.reserve(adam_count);
  for (std::size_t i = 0; i < adam_count; ++i) {
    ckpt.adam.m.push_back(read_matrix_block(payload, "adam m"));
    ckpt.adam.v.push_back(read_matrix_block(payload, "adam v"));
  }
  expect_keyword(payload, "stopper");
  payload >> ckpt.stopper_best >> ckpt.stopper_bad_epochs;
  expect_keyword(payload, "guard");
  int ema_init = 0;
  payload >> ckpt.guard_loss_ema >> ema_init >> ckpt.guard_good_steps >>
      ckpt.guard_consecutive_bad >> ckpt.guard_backoffs_used;
  ckpt.guard_ema_initialized = ema_init != 0;
  load_parameters(payload, params);
  expect_keyword(payload, "best");
  std::size_t best_count = 0;
  payload >> best_count;
  ckpt.best_values.reserve(best_count);
  for (std::size_t i = 0; i < best_count; ++i) {
    ckpt.best_values.push_back(read_matrix_block(payload, "best snapshot"));
  }
  if (!payload) {
    throw std::runtime_error("load_training_checkpoint: truncated payload");
  }
  return ckpt;
}

std::vector<Matrix> snapshot_values(
    const std::vector<ad::Parameter*>& params) {
  std::vector<Matrix> snap;
  snap.reserve(params.size());
  for (const ad::Parameter* p : params) snap.push_back(p->value());
  return snap;
}

void restore_values(const std::vector<Matrix>& snapshot,
                    const std::vector<ad::Parameter*>& params) {
  if (snapshot.size() != params.size()) {
    throw std::invalid_argument("restore_values: size mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!snapshot[i].same_shape(params[i]->value())) {
      throw std::invalid_argument("restore_values: shape mismatch");
    }
    params[i]->value() = snapshot[i];
  }
}

}  // namespace rihgcn::nn
