// Optimization utilities: Adam with global-norm gradient clipping (the
// paper's training recipe, §IV-B3), early stopping on validation loss
// (patience 6 in the paper), and parameter (de)serialization for
// checkpointing.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "autodiff/tape.hpp"

namespace rihgcn::nn {

/// Adam (Kingma & Ba 2015) over a fixed set of externally-owned parameters.
class AdamOptimizer {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    /// Clip gradients to this global L2 norm before each step; <=0 disables.
    double max_grad_norm = 5.0;
    /// Decoupled weight decay (AdamW, Loshchilov & Hutter 2019); 0 = plain
    /// Adam. Applied as p -= lr * weight_decay * p before the Adam update.
    double weight_decay = 0.0;
    /// Multiply the learning rate by this factor every `lr_decay_every`
    /// steps; 1.0 disables scheduling.
    double lr_decay = 1.0;
    std::size_t lr_decay_every = 0;
  };

  explicit AdamOptimizer(std::vector<ad::Parameter*> params)
      : AdamOptimizer(std::move(params), Config()) {}
  AdamOptimizer(std::vector<ad::Parameter*> params, Config config);

  /// Zero every parameter's gradient accumulator.
  void zero_grad();
  /// Apply one Adam update from the accumulated gradients.
  /// Returns the (pre-clip) global gradient norm, useful for logging.
  double step();

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_steps() const noexcept { return t_; }
  /// Learning rate currently in effect (after any scheduled decay).
  [[nodiscard]] double current_lr() const noexcept { return lr_; }

 private:
  std::vector<ad::Parameter*> params_;
  Config config_;
  std::vector<Matrix> m_;  // first moments, aligned with params_
  std::vector<Matrix> v_;  // second moments
  std::size_t t_ = 0;
  double lr_ = 0.0;  // current (possibly decayed) learning rate
};

/// Global L2 norm of all parameter gradients.
[[nodiscard]] double global_grad_norm(const std::vector<ad::Parameter*>& params);
/// Scale all gradients so their global norm is at most `max_norm`.
void clip_global_grad_norm(const std::vector<ad::Parameter*>& params,
                           double max_norm);

/// Early stopping on a monitored value that should decrease.
class EarlyStopping {
 public:
  explicit EarlyStopping(std::size_t patience = 6, double min_delta = 0.0)
      : patience_(patience), min_delta_(min_delta) {}

  /// Report a new validation metric. Returns true if this is a new best.
  bool update(double value);
  /// True once `patience` consecutive non-improving updates have occurred.
  [[nodiscard]] bool should_stop() const noexcept {
    return bad_epochs_ >= patience_;
  }
  [[nodiscard]] double best() const noexcept { return best_; }
  [[nodiscard]] std::size_t bad_epochs() const noexcept { return bad_epochs_; }

 private:
  std::size_t patience_;
  double min_delta_;
  double best_ = 1e300;
  std::size_t bad_epochs_ = 0;
};

/// Serialize parameter values (shape + raw doubles, text format) so models
/// can be checkpointed and restored. Order must match between save and load.
void save_parameters(std::ostream& os,
                     const std::vector<ad::Parameter*>& params);
/// Restore values saved by save_parameters; throws on shape mismatch.
void load_parameters(std::istream& is,
                     const std::vector<ad::Parameter*>& params);

/// Snapshot / restore parameter values in memory (for early-stopping
/// "keep the best epoch" behaviour).
[[nodiscard]] std::vector<Matrix> snapshot_values(
    const std::vector<ad::Parameter*>& params);
void restore_values(const std::vector<Matrix>& snapshot,
                    const std::vector<ad::Parameter*>& params);

}  // namespace rihgcn::nn
