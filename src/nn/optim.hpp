// Optimization utilities: Adam with global-norm gradient clipping (the
// paper's training recipe, §IV-B3), early stopping on validation loss
// (patience 6 in the paper), and parameter (de)serialization for
// checkpointing — including the durable, CRC-verified training checkpoint
// (rihgcn-train-ckpt v2) that carries optimizer moments, epoch counter and
// RNG state so an interrupted run resumes bitwise-identically
// (DESIGN.md §11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "autodiff/tape.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::nn {

/// Adam (Kingma & Ba 2015) over a fixed set of externally-owned parameters.
class AdamOptimizer {
 public:
  struct Config {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    /// Clip gradients to this global L2 norm before each step; <=0 disables.
    double max_grad_norm = 5.0;
    /// Decoupled weight decay (AdamW, Loshchilov & Hutter 2019); 0 = plain
    /// Adam. Applied as p -= lr * weight_decay * p before the Adam update.
    double weight_decay = 0.0;
    /// Multiply the learning rate by this factor every `lr_decay_every`
    /// steps; 1.0 disables scheduling.
    double lr_decay = 1.0;
    std::size_t lr_decay_every = 0;
  };

  /// The optimizer's complete mutable state: first/second moments aligned
  /// with the parameter list, the step counter, and the (possibly decayed /
  /// backed-off) learning rate. Snapshot/restore is what lets the trainer's
  /// NumericalGuard roll a diverged run back and the training checkpoint
  /// resume mid-schedule without replaying the moment history.
  struct State {
    std::vector<Matrix> m;
    std::vector<Matrix> v;
    std::size_t t = 0;
    double lr = 0.0;
  };

  explicit AdamOptimizer(std::vector<ad::Parameter*> params)
      : AdamOptimizer(std::move(params), Config()) {}
  AdamOptimizer(std::vector<ad::Parameter*> params, Config config);

  /// Zero every parameter's gradient accumulator.
  void zero_grad();
  /// Apply one Adam update from the accumulated gradients.
  /// Returns the (pre-clip) global gradient norm, useful for logging.
  double step();

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_steps() const noexcept { return t_; }
  /// Learning rate currently in effect (after any scheduled decay).
  [[nodiscard]] double current_lr() const noexcept { return lr_; }
  /// Override the effective learning rate (NumericalGuard backoff).
  void set_lr(double lr) noexcept { lr_ = lr; }

  /// Deep copy of the optimizer state.
  [[nodiscard]] State state() const;
  /// Copy the state into `out`, reusing its Matrix buffers when shapes
  /// already match — allocation-free in steady state.
  void state_into(State& out) const;
  /// Restore a state captured from THIS optimizer (or one over identically
  /// shaped parameters); throws std::invalid_argument on shape mismatch.
  void set_state(const State& s);

 private:
  std::vector<ad::Parameter*> params_;
  Config config_;
  std::vector<Matrix> m_;  // first moments, aligned with params_
  std::vector<Matrix> v_;  // second moments
  std::size_t t_ = 0;
  double lr_ = 0.0;  // current (possibly decayed) learning rate
};

/// Global L2 norm of all parameter gradients.
[[nodiscard]] double global_grad_norm(const std::vector<ad::Parameter*>& params);
/// Scale all gradients so their global norm is at most `max_norm`.
void clip_global_grad_norm(const std::vector<ad::Parameter*>& params,
                           double max_norm);

/// Early stopping on a monitored value that should decrease.
class EarlyStopping {
 public:
  explicit EarlyStopping(std::size_t patience = 6, double min_delta = 0.0)
      : patience_(patience), min_delta_(min_delta) {}

  /// Report a new validation metric. Returns true if this is a new best.
  bool update(double value);
  /// True once `patience` consecutive non-improving updates have occurred.
  [[nodiscard]] bool should_stop() const noexcept {
    return bad_epochs_ >= patience_;
  }
  [[nodiscard]] double best() const noexcept { return best_; }
  [[nodiscard]] std::size_t bad_epochs() const noexcept { return bad_epochs_; }
  /// Restore monitor state from a checkpoint.
  void restore(double best, std::size_t bad_epochs) noexcept {
    best_ = best;
    bad_epochs_ = bad_epochs;
  }

 private:
  std::size_t patience_;
  double min_delta_;
  double best_ = 1e300;
  std::size_t bad_epochs_ = 0;
};

/// Serialize parameter values (shape + raw doubles, text format) so models
/// can be checkpointed and restored. Order must match between save and load.
void save_parameters(std::ostream& os,
                     const std::vector<ad::Parameter*>& params);
/// Restore values saved by save_parameters; throws on shape mismatch.
void load_parameters(std::istream& is,
                     const std::vector<ad::Parameter*>& params);

/// Snapshot / restore parameter values in memory (for early-stopping
/// "keep the best epoch" behaviour).
[[nodiscard]] std::vector<Matrix> snapshot_values(
    const std::vector<ad::Parameter*>& params);
void restore_values(const std::vector<Matrix>& snapshot,
                    const std::vector<ad::Parameter*>& params);

// ---- Durable training checkpoints (rihgcn-train-ckpt v2) -------------------
//
// Everything a mid-training snapshot needs for a bitwise-identical resume:
// parameters AND Adam moments/step/lr, the epoch counter, the trainer RNG
// state (mini-batch shuffling), early-stopping monitor state, numerical-guard
// state, the best-epoch parameter snapshot, and the determinism contract
// (batch size / thread count / seed — a resume under a different value would
// silently change floating-point accumulation order, so loading verifies
// them). The payload is covered by a CRC32 so a torn or bit-flipped file is
// rejected instead of silently restoring garbage; writes go to a temp file
// and rename into place, so a crash mid-write never clobbers the previous
// good checkpoint.

struct TrainCheckpoint {
  /// Epochs fully completed when the snapshot was taken; resume starts here.
  std::size_t epoch = 0;
  // Determinism contract — must match the resuming TrainConfig exactly.
  std::size_t batch_size = 0;
  std::size_t num_threads = 0;
  std::uint64_t seed = 0;
  RngState rng;
  AdamOptimizer::State adam;
  // Early-stopping monitor.
  double stopper_best = 1e300;
  std::size_t stopper_bad_epochs = 0;
  // Numerical-guard state (core::GuardState fields, kept flat so nn stays
  // independent of core).
  double guard_loss_ema = 0.0;
  bool guard_ema_initialized = false;
  std::size_t guard_good_steps = 0;
  std::size_t guard_consecutive_bad = 0;
  std::size_t guard_backoffs_used = 0;
  /// Best-validation parameter snapshot (restore_best support); may be empty.
  std::vector<Matrix> best_values;
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of a byte range.
[[nodiscard]] std::uint32_t crc32(const unsigned char* data, std::size_t len);
[[nodiscard]] std::uint32_t crc32(const std::string& bytes);

/// Atomically write `ckpt` + the current values of `params` to `path`
/// (temp file + rename). Throws std::runtime_error on I/O failure.
void save_training_checkpoint(const std::string& path,
                              const TrainCheckpoint& ckpt,
                              const std::vector<ad::Parameter*>& params);
/// Load a checkpoint written by save_training_checkpoint, verifying the CRC
/// and restoring parameter values in place. Throws std::runtime_error on a
/// bad header, CRC mismatch, truncation, or parameter shape/count mismatch.
[[nodiscard]] TrainCheckpoint load_training_checkpoint(
    const std::string& path, const std::vector<ad::Parameter*>& params);

}  // namespace rihgcn::nn
