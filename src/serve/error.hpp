// Typed serving failures (DESIGN.md §15).
//
// Every ForecastServer request resolves to exactly one of: a finite Matrix,
// or a ServeError delivered through the future via set_exception — never a
// bare std::future_error{broken_promise}. The status taxonomy mirrors what
// a production RPC layer would map onto wire codes:
//
//   kOverloaded       — bounded admission rejected the request (queue full
//                       under ShedPolicy::kRejectNew) or shed it (victim of
//                       ShedPolicy::kShedOldest).
//   kDeadlineExceeded — the request's deadline expired while it waited in
//                       the admission queue (or had already expired on
//                       arrival); it never consumed a batch slot.
//   kEngineFailure    — the engine threw or emitted non-finite output and
//                       degraded serving is disabled
//                       (ServeConfig::degraded_serving = false); with
//                       degradation on, clients receive fallback VALUES
//                       instead of this error.
//   kShuttingDown     — the request arrived at (or survived into) drain();
//                       the server is quiescing and will not serve it.
#pragma once

#include <stdexcept>
#include <string>

namespace rihgcn::serve {

enum class ServeStatus {
  kOverloaded,
  kDeadlineExceeded,
  kEngineFailure,
  kShuttingDown,
};

[[nodiscard]] constexpr const char* to_string(ServeStatus s) noexcept {
  switch (s) {
    case ServeStatus::kOverloaded: return "OVERLOADED";
    case ServeStatus::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ServeStatus::kEngineFailure: return "ENGINE_FAILURE";
    case ServeStatus::kShuttingDown: return "SHUTTING_DOWN";
  }
  return "UNKNOWN";
}

/// The one exception type ForecastServer futures carry. what() always leads
/// with the status name so a log line is greppable without the type.
class ServeError : public std::runtime_error {
 public:
  ServeError(ServeStatus status, const std::string& detail)
      : std::runtime_error(std::string(to_string(status)) + ": " + detail),
        status_(status) {}

  [[nodiscard]] ServeStatus status() const noexcept { return status_; }

 private:
  ServeStatus status_;
};

}  // namespace rihgcn::serve
