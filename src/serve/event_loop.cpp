#include "serve/event_loop.hpp"

#include <stdexcept>

namespace rihgcn::serve {

EventLoop::~EventLoop() {
  stop();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) {
    throw std::logic_error("EventLoop::start: loop thread already running");
  }
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void EventLoop::run() {
  std::unique_lock<std::mutex> lock(mu_);
  running_ = true;
  while (true) {
    if (drain_one(lock)) continue;
    if (stop_requested_) break;
    if (timers_.empty()) {
      cv_.wait(lock, [this] {
        return stop_requested_ || !ready_.empty() || !timers_.empty();
      });
    } else {
      cv_.wait_until(lock, timers_.begin()->first.first);
    }
  }
  running_ = false;
}

bool EventLoop::drain_one(std::unique_lock<std::mutex>& lock) {
  // Posts drain ahead of timers: an already-ready handler should never wait
  // behind a deadline that just came due.
  Handler h;
  if (!ready_.empty()) {
    h = std::move(ready_.front());
    ready_.pop_front();
  } else if (!timers_.empty() &&
             timers_.begin()->first.first <= Clock::now()) {
    auto it = timers_.begin();
    h = std::move(it->second);
    timer_index_.erase(it->first.second);
    timers_.erase(it);
  } else {
    return false;
  }
  lock.unlock();
  h();
  lock.lock();
  return true;
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
}

void EventLoop::join() {
  if (thread_.joinable()) thread_.join();
}

std::size_t EventLoop::drain_ready() {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) {
    throw std::logic_error("EventLoop::drain_ready: loop is running");
  }
  std::size_t drained = 0;
  while (!ready_.empty()) {
    Handler h = std::move(ready_.front());
    ready_.pop_front();
    lock.unlock();
    h();
    ++drained;
    lock.lock();
  }
  return drained;
}

void EventLoop::post(Handler h) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready_.push_back(std::move(h));
  }
  cv_.notify_all();
}

std::uint64_t EventLoop::add_time_handler(Clock::time_point when, Handler h) {
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    timers_.emplace(std::make_pair(when, id), std::move(h));
    timer_index_.emplace(id, when);
  }
  cv_.notify_all();
  return id;
}

bool EventLoop::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto idx = timer_index_.find(id);
  if (idx == timer_index_.end()) return false;
  timers_.erase(std::make_pair(idx->second, id));
  timer_index_.erase(idx);
  return true;
}

bool EventLoop::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

}  // namespace rihgcn::serve
