// Single-threaded event loop with a timer queue (DESIGN.md §14).
//
// The serving core schedules everything — admission-queue flushes, delayed
// micro-batch timers, snapshot publishes — onto one loop thread, so all
// server state is owned by a single thread and the only cross-thread
// primitives are the loop's own mutex and the response promises. The design
// is the classic add_time_handler idiom: a FIFO of ready handlers plus an
// ordered multimap of (deadline, id) timers; run() pops ready work, fires
// due timers, and sleeps on a condition variable until the next deadline or
// a new post().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace rihgcn::serve {

class EventLoop {
 public:
  using Clock = std::chrono::steady_clock;
  using Handler = std::function<void()>;

  EventLoop() = default;
  /// Stops and joins the loop thread if still running.
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawn a background thread running run(). At most one loop thread.
  void start();
  /// Process handlers until stop(); callable directly for same-thread use.
  void run();
  /// Ask the loop to exit after the handler in flight; joins nothing —
  /// the destructor, join(), or a caller holding the thread joins.
  void stop();
  /// Join the background thread started by start(). Safe to call once after
  /// stop(); no-op if no thread is running. ForecastServer::drain uses
  /// stop()+join() for a deterministic quiesce point.
  void join();

  /// Run any handlers still sitting in the ready queue on the CALLER's
  /// thread. Only legal when the loop is not running (i.e. after
  /// stop()+join()): it exists to give closures that were posted after the
  /// loop exited a deterministic place to resolve their promises instead of
  /// being silently destroyed. Returns the number of handlers run. Pending
  /// timers are NOT fired. Throws std::logic_error if the loop is running.
  std::size_t drain_ready();

  /// Enqueue an immediate handler (FIFO order among posts).
  void post(Handler h);

  /// Schedule `h` at `when`. Timers fire in (when, id) order — two timers
  /// with the same deadline fire in registration order. Returns an id for
  /// cancel(). Callable from any thread, including from inside a handler.
  std::uint64_t add_time_handler(Clock::time_point when, Handler h);
  std::uint64_t add_time_handler_after(std::chrono::microseconds delay,
                                       Handler h) {
    return add_time_handler(Clock::now() + delay, std::move(h));
  }

  /// Drop a not-yet-fired timer. Returns false if it already fired (or the
  /// id is unknown). O(log n) via the id index — the serving layer cancels
  /// one deadline timer per answered request, so this is on the hot path.
  bool cancel(std::uint64_t id);

  /// True while run() is executing (any thread).
  [[nodiscard]] bool running() const;

 private:
  /// Pop-and-run one ready handler or one due timer. Returns false when
  /// there was nothing due and the loop should sleep.
  bool drain_one(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Handler> ready_;
  std::map<std::pair<Clock::time_point, std::uint64_t>, Handler> timers_;
  std::map<std::uint64_t, Clock::time_point> timer_index_;  ///< id -> deadline
  std::uint64_t next_id_ = 1;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace rihgcn::serve
