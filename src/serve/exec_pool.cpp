#include "serve/exec_pool.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

namespace rihgcn::serve {

ExecPool::ExecPool(std::size_t workers) {
  if (workers == 0) {
    throw std::invalid_argument("ExecPool: worker count must be >= 1");
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Queues exist before any thread starts: a submit racing construction of a
  // later worker still lands in a fully-formed queue.
  for (auto& w : workers_) {
    w->thread = std::thread([worker = w.get()] { worker_loop(*worker); });
  }
}

ExecPool::~ExecPool() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_one();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ExecPool::submit(std::size_t worker, Task task) {
  Worker& w = *workers_[worker % workers_.size()];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.queue.push_back(std::move(task));
  }
  w.cv.notify_one();
}

void ExecPool::worker_loop(Worker& w) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&w] { return w.stop || !w.queue.empty(); });
      // Drain the queue even when stopping: a submitted task is a promise
      // of execution (the server's flush completions must never vanish).
      if (w.queue.empty()) return;
      task = std::move(w.queue.front());
      w.queue.pop_front();
    }
    task();
  }
}

std::size_t serve_workers_from_env(std::size_t fallback) {
  const char* env = std::getenv("RIHGCN_SERVE_WORKERS");
  if (env == nullptr || *env == '\0') return fallback;
  // Digits only: strtoul would silently accept leading whitespace and signs
  // (" 2", "+2"), and a typo'd worker count must fail loudly instead.
  bool digits_only = true;
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      digits_only = false;
      break;
    }
  }
  char* endp = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(env, &endp, 10);
  if (!digits_only || endp == env || *endp != '\0' || errno == ERANGE ||
      v > 1024) {
    throw std::runtime_error(
        std::string(
            "RIHGCN_SERVE_WORKERS must be an integer in [0, 1024], got '") +
        env + "'");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace rihgcn::serve
