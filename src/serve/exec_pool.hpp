// Engine execution worker pool (DESIGN.md §16).
//
// ForecastServer's event loop is admission-only once ServeConfig::num_workers
// is set: a flush SPLITS the admitted batch into per-worker sub-batches and
// posts each to a dedicated ExecPool worker, which runs predict_batch against
// its own private InferenceEngine::Workspace over the shared immutable
// compiled plan, then posts the completed chunk back to the loop. The split
// is a fixed function of (batch size, worker count) — chunk w runs on worker
// w mod K, every chunk is dispatched in admission order into a per-worker
// FIFO — so execution is deterministic and, because every engine op is row-
// or block-local, the per-window outputs are bitwise identical to the inline
// single-threaded flush for ANY worker count.
//
// ExecPool is deliberately not ThreadPool: the tensor ThreadPool is a
// synchronous fork-join primitive (parallel_for blocks the caller), while
// flush dispatch must RETURN so the loop can keep admitting batch t+1 while
// batch t executes (the pipelined flush). Each worker owns its own queue —
// no work stealing — because chunk-to-worker assignment is part of the
// determinism contract, and each worker's Workspace must only ever be
// touched by that worker's thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rihgcn::serve {

class ExecPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `workers` threads (must be >= 1; throws std::invalid_argument
  /// on 0 — callers wanting inline execution simply don't build a pool).
  explicit ExecPool(std::size_t workers);
  /// Joins every worker. Tasks already submitted run to completion first —
  /// the serving drain sequence guarantees the pool is idle by the time the
  /// server destroys it, but the pool itself never drops a task.
  ~ExecPool();
  ExecPool(const ExecPool&) = delete;
  ExecPool& operator=(const ExecPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue `task` on worker `worker % size()`. Per-worker FIFO: tasks
  /// submitted to the same worker run in submission order, one at a time.
  void submit(std::size_t worker, Task task);

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> queue;
    bool stop = false;
    std::thread thread;
  };
  static void worker_loop(Worker& w);

  std::vector<std::unique_ptr<Worker>> workers_;
};

/// ServeConfig::num_workers from the RIHGCN_SERVE_WORKERS environment
/// variable. Unset or empty returns `fallback` (the config value); a
/// set-but-invalid value (non-numeric, trailing junk, > 1024) throws
/// std::runtime_error — the RIHGCN_THREADS contract (DESIGN.md §8): a typo'd
/// worker count must fail loudly, not silently serve single-threaded. 0 is
/// VALID here and means inline loop-thread execution (unlike RIHGCN_THREADS,
/// where a 0-thread pool is meaningless).
[[nodiscard]] std::size_t serve_workers_from_env(std::size_t fallback);

}  // namespace rihgcn::serve
