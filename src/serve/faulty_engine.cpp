#include "serve/faulty_engine.hpp"

#include <chrono>
#include <limits>
#include <thread>

namespace rihgcn::serve {

const FMatrix& FaultyEngine::predict_batch(const data::Window* const* windows,
                                           std::size_t batch,
                                           Workspace& ws) const {
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (faults_.latency_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(faults_.latency_us));
  }
  // Forced faults first (deterministic choreography), then the seeded rates.
  bool do_throw = false;
  bool do_nan = false;
  auto take = [](std::atomic<std::size_t>& q) {
    std::size_t n = q.load(std::memory_order_relaxed);
    while (n > 0 &&
           !q.compare_exchange_weak(n, n - 1, std::memory_order_relaxed)) {
    }
    return n > 0;
  };
  if (take(forced_throws_)) {
    do_throw = true;
  } else if (take(forced_nans_)) {
    do_nan = true;
  } else if (faults_.throw_rate > 0.0 || faults_.nan_rate > 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (rng_.bernoulli(faults_.throw_rate)) {
      do_throw = true;
    } else if (rng_.bernoulli(faults_.nan_rate)) {
      do_nan = true;
    }
  }
  if (do_throw) {
    throws_.fetch_add(1, std::memory_order_relaxed);
    throw EngineFault();
  }
  const FMatrix& out = core::InferenceEngine::predict_batch(windows, batch, ws);
  if (do_nan) {
    nans_.fetch_add(1, std::memory_order_relaxed);
    FMatrix& pred = workspace_pred(ws);
    const std::size_t n = num_nodes();
    // Poison one entry per window so every batched row block is affected —
    // the server must detect and degrade each window independently.
    for (std::size_t b = 0; b < batch; ++b) {
      pred(b * n, 0) = std::numeric_limits<float>::quiet_NaN();
    }
  }
  return out;
}

}  // namespace rihgcn::serve
