// Seeded fault-injecting engine decorator (DESIGN.md §15 test harness).
//
// FaultyEngine compiles the SAME execution plan as core::InferenceEngine
// (it IS one — construction runs the base compiler) and then corrupts the
// serving path on a deterministic schedule: predict_batch may throw, stall
// for a configured latency, or poison its output rows with NaN. The
// overload-storm, breaker and fallback tests drive ForecastServer through
// every failure taxonomy entry with a single seed, so a TSan run replays the
// exact same fault sequence every time.
//
// Two control styles compose:
//   * rates  — each engine call draws (seeded xoshiro) against throw_rate /
//     nan_rate; latency_us stalls every call (the overload knob);
//   * forced — force_throw_next(k) / force_nan_next(k) arm exactly k
//     failures from now, FIFO before the rates apply. Deterministic breaker
//     choreography without touching probabilities.
//
// Thread-safety: the fault schedule is mutex-guarded; the underlying plan is
// immutable after construction (same contract as the base engine), so many
// threads may call predict_batch with their own Workspaces.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "core/engine.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::serve {

class FaultyEngine : public core::InferenceEngine {
 public:
  struct FaultConfig {
    double throw_rate = 0.0;    ///< P(call throws EngineFault)
    double nan_rate = 0.0;      ///< P(call poisons its output with NaN)
    std::uint64_t latency_us = 0;  ///< stall per call (sleep_for)
    std::uint64_t seed = 0x5eedULL;
  };

  /// What a rate-triggered or forced throw looks like to the server.
  struct EngineFault : std::runtime_error {
    EngineFault() : std::runtime_error("FaultyEngine: injected failure") {}
  };

  FaultyEngine(const core::RihgcnModel& model, Options options,
               FaultConfig faults)
      : core::InferenceEngine(model, options), faults_(faults), rng_(faults.seed) {}

  /// Arm exactly `k` throws starting with the next call (before rates draw).
  void force_throw_next(std::size_t k) {
    forced_throws_.fetch_add(k, std::memory_order_relaxed);
  }
  /// Arm exactly `k` NaN-poisoned calls (after the throw queue drains).
  void force_nan_next(std::size_t k) {
    forced_nans_.fetch_add(k, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t throws_injected() const noexcept {
    return throws_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t nans_injected() const noexcept {
    return nans_.load(std::memory_order_relaxed);
  }

  const FMatrix& predict_batch(const data::Window* const* windows,
                               std::size_t batch,
                               Workspace& ws) const override;

 private:
  FaultConfig faults_;
  mutable std::mutex mu_;  ///< guards rng_ only
  mutable Rng rng_;
  mutable std::atomic<std::size_t> forced_throws_{0};
  mutable std::atomic<std::size_t> forced_nans_{0};
  mutable std::atomic<std::size_t> calls_{0};
  mutable std::atomic<std::size_t> throws_{0};
  mutable std::atomic<std::size_t> nans_{0};
};

}  // namespace rihgcn::serve
