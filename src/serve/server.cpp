#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace rihgcn::serve {

ForecastServer::ForecastServer(std::shared_ptr<core::InferenceEngine> engine,
                               const data::ZScoreNormalizer& normalizer,
                               ServeConfig cfg)
    : cfg_(cfg), normalizer_(normalizer) {
  if (engine == nullptr) {
    throw std::invalid_argument("ForecastServer: null engine");
  }
  n_ = engine->num_nodes();
  f_ = engine->num_features();
  lookback_ = engine->lookback();
  horizon_ = engine->horizon();
  steps_per_day_ = engine->steps_per_day();
  cfg_.max_batch = std::clamp<std::size_t>(cfg_.max_batch, 1,
                                           engine->max_batch());
  cfg_.max_queue = std::max<std::size_t>(1, cfg_.max_queue);
  cfg_.breaker_threshold = std::max<std::size_t>(1, cfg_.breaker_threshold);
  // Environment override for the execution layer; set-but-invalid throws
  // (the RIHGCN_THREADS contract — a typo must not silently serve inline).
  cfg_.num_workers = serve_workers_from_env(cfg_.num_workers);
  if (cfg_.num_workers > 0) {
    exec_pool_ = std::make_unique<ExecPool>(cfg_.num_workers);
  }
  // The deepest fallback: every entry the historical mean of the target
  // feature (normalized 0 denormalized) — finite by construction.
  mean_forecast_ = Matrix(n_, horizon_);
  const double mean = normalizer_.denormalize(0.0, 0);
  std::fill(mean_forecast_.data(), mean_forecast_.data() + mean_forecast_.size(),
            mean);
  auto snap = std::make_shared<Snapshot>();
  snap->ws = engine->make_workspace();
  snap->worker_ws.reserve(cfg_.num_workers);
  for (std::size_t w = 0; w < cfg_.num_workers; ++w) {
    snap->worker_ws.push_back(engine->make_workspace());
  }
  snap->engine = std::move(engine);
  snapshot_ = std::move(snap);  // loop not running yet — plain write is safe
  loop_.start();
}

ForecastServer::~ForecastServer() { drain(); }

void ForecastServer::drain() {
  // Admission stops first (any thread sees it), then exactly one caller
  // performs the quiesce sequence.
  draining_.store(true, std::memory_order_release);
  std::call_once(drain_once_, [this] {
    // Rendezvous before stopping the loop: a pooled flush may be in flight,
    // and its workers post completions INTO the loop — stopping first would
    // orphan them (and their waiters). The loop fulfills the quiesce
    // promise only once loop_draining_ is set, the in-flight flush (if any)
    // has settled, and the final inline flush has answered everything still
    // admitted; only then is it safe to stop and join.
    auto quiesced = std::make_shared<std::promise<void>>();
    std::future<void> quiesce_done = quiesced->get_future();
    loop_.post([this, quiesced] {
      // Everything admitted before this closure is in pending_ (FIFO);
      // everything after it sees loop_draining_ and resolves to
      // SHUTTING_DOWN inside enqueue_request.
      loop_draining_ = true;
      drain_quiesce_ = quiesced;
      maybe_finish_drain();
    });
    quiesce_done.wait();
    loop_.stop();
    loop_.join();
    // Closures that raced past the loop's exit still resolve their
    // promises — on this thread, deterministically.
    loop_.drain_ready();
    // Safety net: nothing should reach pending_ after the final flush, but
    // a typed error beats a broken promise if anything ever does.
    for (Pending& p : pending_) {
      for (Waiter& w : p.waiters) {
        settle_with_error(w, ServeStatus::kShuttingDown,
                          "server drained with the request still queued");
      }
    }
    pending_.clear();
  });
}

std::size_t ForecastServer::add_stream(std::size_t start_slot) {
  if (draining_.load(std::memory_order_acquire)) {
    throw ServeError(ServeStatus::kShuttingDown, "add_stream after drain");
  }
  auto done = std::make_shared<std::promise<std::size_t>>();
  auto claimed = std::make_shared<std::atomic<bool>>(false);
  std::future<std::size_t> id = done->get_future();
  loop_.post([this, start_slot, done, claimed] {
    Stream s;
    s.start_slot = start_slot % steps_per_day_;
    s.detector = core::StuckSensorDetector(n_, cfg_.stuck_threshold);
    streams_.push_back(std::move(s));
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      reg_seen_.push_back(std::make_shared<std::atomic<std::uint64_t>>(0));
    }
    num_streams_.store(streams_.size(), std::memory_order_release);
    if (!claimed->exchange(true)) done->set_value(streams_.size() - 1);
  });
  if (draining_.load(std::memory_order_acquire) &&
      !claimed->exchange(true)) {
    done->set_exception(std::make_exception_ptr(
        ServeError(ServeStatus::kShuttingDown, "add_stream during drain")));
  }
  return id.get();
}

void ForecastServer::ingest(std::size_t stream, const Matrix& values,
                            const Matrix& mask) {
  if (stream >= num_streams_.load(std::memory_order_acquire)) {
    throw std::invalid_argument("ForecastServer::ingest: unknown stream");
  }
  if (values.rows() != n_ || values.cols() != f_ ||
      !values.same_shape(mask)) {
    throw ShapeError("ForecastServer::ingest: shape mismatch");
  }
  if (draining_.load(std::memory_order_acquire)) {
    throw ServeError(ServeStatus::kShuttingDown, "ingest after drain");
  }
  // Sanitize + normalize on the CLIENT thread (the shared
  // core::sanitize_reading — a pure function of the reading and the frozen
  // normalizer) so many feeds prepare their own input in parallel; the loop
  // runs only the stateful stuck-sensor demotion and the buffer append.
  Matrix normalized(n_, f_);
  Matrix clean_mask(n_, f_);
  const core::SanitizeCounts counts =
      core::sanitize_reading(values, mask, normalizer_, normalized, clean_mask);
  sanitized_entries_.fetch_add(counts.sanitized_entries,
                               std::memory_order_relaxed);
  coerced_mask_entries_.fetch_add(counts.coerced_mask_entries,
                                  std::memory_order_relaxed);
  std::shared_ptr<std::atomic<std::uint64_t>> seen;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    seen = reg_seen_[stream];
  }
  auto vp = std::make_shared<Matrix>(std::move(normalized));
  auto mp = std::make_shared<Matrix>(std::move(clean_mask));
  loop_.post([this, stream, vp, mp] {
    Stream& s = streams_[stream];
    stuck_demotions_.fetch_add(s.detector.observe_and_demote(*vp, *mp),
                               std::memory_order_relaxed);
    s.values.push_back(std::move(*vp));
    s.masks.push_back(std::move(*mp));
    if (s.values.size() > lookback_) {
      s.values.pop_front();
      s.masks.pop_front();
    }
    ++s.seen;
    ++s.version;  // never coalesce across an ingest
  });
  // Bump the client-visible counter AFTER the post: a forecast issued after
  // this ingest returns observes the counter only once its enqueue closure
  // is guaranteed to land behind the append in the loop's FIFO.
  seen->fetch_add(1, std::memory_order_release);
}

void ForecastServer::ingest_gap(std::size_t stream) {
  ingest(stream, Matrix(n_, f_), Matrix(n_, f_));
}

std::future<Matrix> ForecastServer::forecast_async(
    std::size_t stream, std::optional<std::uint64_t> deadline_us) {
  if (stream >= num_streams_.load(std::memory_order_acquire)) {
    throw std::invalid_argument(
        "ForecastServer::forecast_async: unknown stream");
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  auto settle = std::make_shared<SettleOnce>();
  std::future<Matrix> fut = settle->promise.get_future();
  // Eager no-readings validation (client thread): the failure resolves
  // immediately and the request never occupies a queue slot.
  std::shared_ptr<std::atomic<std::uint64_t>> seen;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    seen = reg_seen_[stream];
  }
  if (seen->load(std::memory_order_acquire) == 0) {
    settle->claim();
    settle->promise.set_exception(std::make_exception_ptr(
        std::logic_error("ForecastServer: no readings pushed yet")));
    return fut;
  }
  const std::uint64_t us = deadline_us.value_or(cfg_.default_deadline_us);
  const bool has_deadline = us > 0;
  const EventLoop::Clock::time_point deadline =
      EventLoop::Clock::now() + std::chrono::microseconds(us);
  auto fail_shutdown = [this, &settle] {
    if (settle->claim()) {
      aborted_.fetch_add(1, std::memory_order_relaxed);
      settle->promise.set_exception(std::make_exception_ptr(ServeError(
          ServeStatus::kShuttingDown, "server is draining")));
    }
  };
  if (draining_.load(std::memory_order_acquire)) {
    fail_shutdown();
    return fut;
  }
  loop_.post([this, stream, settle, has_deadline, deadline] {
    enqueue_request(stream, settle, has_deadline, deadline);
  });
  // Close the check-then-post race against drain(): if drain began after
  // the check above, the posted closure may never run — settle here; the
  // SettleOnce claim makes the duplicate attempt (if the closure does run)
  // a no-op.
  if (draining_.load(std::memory_order_acquire)) {
    fail_shutdown();
  }
  return fut;
}

void ForecastServer::settle_with_value(Waiter& w, const Matrix& value,
                                       bool fallback) {
  if (w.timer_id != 0) {
    loop_.cancel(w.timer_id);
    w.timer_id = 0;
  }
  if (!w.settle->claim()) return;
  // Count BEFORE fulfilling: a client that wakes on the future must see its
  // own response in stats().
  responses_.fetch_add(1, std::memory_order_relaxed);
  if (fallback) fallback_responses_.fetch_add(1, std::memory_order_relaxed);
  w.settle->promise.set_value(value);
}

void ForecastServer::settle_with_error(Waiter& w, ServeStatus status,
                                       const char* detail) {
  if (w.timer_id != 0) {
    loop_.cancel(w.timer_id);
    w.timer_id = 0;
  }
  if (!w.settle->claim()) return;
  switch (status) {
    case ServeStatus::kOverloaded:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::kDeadlineExceeded:
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::kShuttingDown:
      aborted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::kEngineFailure:
      break;  // engine_failures_ counts calls, not waiters
  }
  w.settle->promise.set_exception(
      std::make_exception_ptr(ServeError(status, detail)));
}

void ForecastServer::arm_deadline(std::size_t stream, Waiter& w) {
  if (!w.has_deadline) return;
  const std::uint64_t seq = w.seq;
  w.timer_id = loop_.add_time_handler(w.deadline, [this, stream, seq] {
    on_deadline_expired(stream, seq);
  });
}

void ForecastServer::on_deadline_expired(std::size_t stream,
                                         std::uint64_t seq) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->stream != stream) continue;
    auto wit = std::find_if(it->waiters.begin(), it->waiters.end(),
                            [seq](const Waiter& w) { return w.seq == seq; });
    if (wit == it->waiters.end()) continue;
    wit->timer_id = 0;  // this timer just fired; nothing to cancel
    settle_with_error(*wit, ServeStatus::kDeadlineExceeded,
                      "deadline expired while queued");
    it->waiters.erase(wit);
    if (it->waiters.empty()) {
      pending_.erase(it);
      if (pending_.empty() && flush_timer_ != 0) {
        loop_.cancel(flush_timer_);
        flush_timer_ = 0;
      }
    }
    return;
  }
}

void ForecastServer::fail_expired(EventLoop::Clock::time_point now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    auto& waiters = it->waiters;
    for (auto wit = waiters.begin(); wit != waiters.end();) {
      if (wit->has_deadline && wit->deadline <= now) {
        settle_with_error(*wit, ServeStatus::kDeadlineExceeded,
                          "deadline expired before the batch was assembled");
        wit = waiters.erase(wit);
      } else {
        ++wit;
      }
    }
    it = waiters.empty() ? pending_.erase(it) : it + 1;
  }
}

void ForecastServer::attach_waiter(Pending& p, Waiter w) {
  arm_deadline(p.stream, w);
  p.waiters.push_back(std::move(w));
}

void ForecastServer::enqueue_request(std::size_t stream,
                                     std::shared_ptr<SettleOnce> settle,
                                     bool has_deadline,
                                     EventLoop::Clock::time_point deadline) {
  Waiter w;
  w.settle = std::move(settle);
  w.seq = next_waiter_seq_++;
  w.has_deadline = has_deadline;
  w.deadline = deadline;
  if (loop_draining_) {
    settle_with_error(w, ServeStatus::kShuttingDown,
                      "request arrived after the final flush");
    return;
  }
  const Stream& s = streams_[stream];
  if (s.seen == 0) {
    // Normally caught eagerly on the client thread; kept as a loop-side
    // belt-and-braces for racy ingest/forecast interleavings.
    if (w.settle->claim()) {
      w.settle->promise.set_exception(std::make_exception_ptr(
          std::logic_error("ForecastServer: no readings pushed yet")));
    }
    return;
  }
  // Fail fast on an already-expired deadline — before consuming any slot.
  if (has_deadline && deadline <= EventLoop::Clock::now()) {
    settle_with_error(w, ServeStatus::kDeadlineExceeded,
                      "deadline expired before admission");
    return;
  }
  // Coalesce: an identical query (same stream, no ingest in between) rides
  // the already-queued window — never counts against max_queue.
  for (Pending& p : pending_) {
    if (p.stream == stream && p.version == s.version) {
      attach_waiter(p, std::move(w));
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // Bounded admission: a new window slot must fit in max_queue.
  if (pending_.size() >= cfg_.max_queue) {
    if (cfg_.shed_policy == ShedPolicy::kRejectNew) {
      settle_with_error(w, ServeStatus::kOverloaded,
                        "admission queue full (reject-new)");
      return;
    }
    // Shed-oldest: the front entry's waiters pay for the newcomer.
    Pending& victim = pending_.front();
    for (Waiter& vw : victim.waiters) {
      settle_with_error(vw, ServeStatus::kOverloaded,
                        "shed by a newer request (shed-oldest)");
    }
    pending_.erase(pending_.begin());
  }
  Pending p;
  p.stream = stream;
  p.version = s.version;
  p.window = make_window(s);
  attach_waiter(p, std::move(w));
  pending_.push_back(std::move(p));
  if (pending_.size() >= cfg_.max_batch) {
    flush();
  } else if (pending_.size() == 1) {
    flush_timer_ = loop_.add_time_handler_after(
        std::chrono::microseconds(cfg_.max_delay_us), [this] {
          flush_timer_ = 0;
          flush();
        });
  }
}

data::Window ForecastServer::make_window(const Stream& s) const {
  data::Window w;
  // Warm-up: left-pad with fully-missing steps (the imputation machinery's
  // job), exactly like OnlineForecaster::make_window.
  const std::size_t pad = lookback_ - s.values.size();
  w.slot = (s.start_slot + s.seen - s.values.size() +
            steps_per_day_ * lookback_ - pad) %
           steps_per_day_;
  w.start = 0;
  for (std::size_t k = 0; k < pad; ++k) {
    w.x_obs.emplace_back(n_, f_);
    w.x_mask.emplace_back(n_, f_);
    w.x_truth.emplace_back(n_, f_);
  }
  for (std::size_t k = 0; k < s.values.size(); ++k) {
    w.x_obs.push_back(s.values[k]);
    w.x_mask.push_back(s.masks[k]);
    w.x_truth.push_back(s.values[k]);
  }
  for (std::size_t k = 0; k < horizon_; ++k) {
    w.y.emplace_back(n_, 1);
    w.y_mask.emplace_back(n_, 1);
  }
  return w;
}

data::Window ForecastServer::make_probe_window() const {
  // Deterministic canary input: normalized-mean values under a half-observed
  // checkerboard mask — exercises both the observed and the imputation path
  // of the candidate without depending on live traffic.
  data::Window w;
  w.slot = 0;
  w.start = 0;
  for (std::size_t t = 0; t < lookback_; ++t) {
    Matrix obs(n_, f_);
    Matrix msk(n_, f_);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t c = 0; c < f_; ++c) {
        msk(i, c) = static_cast<double>((i + c + t) % 2);
      }
    }
    w.x_obs.push_back(obs);
    w.x_mask.push_back(msk);
    w.x_truth.push_back(std::move(obs));
  }
  for (std::size_t k = 0; k < horizon_; ++k) {
    w.y.emplace_back(n_, 1);
    w.y_mask.emplace_back(n_, 1);
  }
  return w;
}

void ForecastServer::fallback_respond(Pending& p, const Matrix* raw_pred) {
  if (!cfg_.degraded_serving) {
    for (Waiter& w : p.waiters) {
      settle_with_error(w, ServeStatus::kEngineFailure,
                        "engine failed and degraded serving is disabled");
    }
    return;
  }
  Stream& s = streams_[p.stream];
  Matrix pred;
  if (s.last_good.size() != 0) {
    pred = s.last_good;  // freshest degraded answer available
  } else if (raw_pred != nullptr && raw_pred->rows() == n_ &&
             raw_pred->cols() == horizon_) {
    // Historical-mean scrub (shared core::scrub_non_finite semantics):
    // keep the finite entries the engine did produce.
    pred = *raw_pred;
    scrubbed_entries_.fetch_add(
        core::scrub_non_finite(pred, normalizer_.denormalize(0.0, 0)),
        std::memory_order_relaxed);
  } else {
    pred = mean_forecast_;
  }
  for (Waiter& w : p.waiters) {
    settle_with_value(w, pred, /*fallback=*/true);
  }
}

void ForecastServer::note_engine_result(bool success,
                                        EventLoop::Clock::time_point now) {
  if (success) {
    consecutive_engine_failures_ = 0;
    if (breaker_ == BreakerState::kHalfOpen) {
      set_breaker(BreakerState::kClosed);
      breaker_closes_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  engine_failures_.fetch_add(1, std::memory_order_relaxed);
  ++consecutive_engine_failures_;
  if (breaker_ == BreakerState::kHalfOpen) {
    // Failed probe: straight back to OPEN, new cooldown.
    set_breaker(BreakerState::kOpen);
    breaker_retry_at_ = now + std::chrono::microseconds(cfg_.breaker_cooldown_us);
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
  } else if (breaker_ == BreakerState::kClosed &&
             consecutive_engine_failures_ >= cfg_.breaker_threshold) {
    set_breaker(BreakerState::kOpen);
    breaker_retry_at_ = now + std::chrono::microseconds(cfg_.breaker_cooldown_us);
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ForecastServer::flush() {
  // Pipelined mode: while batch t executes on the workers the admission
  // queue keeps filling; its completion handler re-enters flush(), so a
  // trigger landing mid-execution simply defers to that.
  if (inflight_ != nullptr) return;
  if (pending_.empty()) return;
  if (flush_timer_ != 0) {
    loop_.cancel(flush_timer_);
    flush_timer_ = 0;
  }
  // Expired requests fail fast, BEFORE any batch slot is assigned.
  fail_expired(EventLoop::Clock::now());
  if (pending_.empty()) return;
  // The final drain flush always runs inline: drain() stops the loop right
  // after the quiesce rendezvous, and an async dispatch would have nowhere
  // to post its completions.
  if (exec_pool_ == nullptr || loop_draining_) {
    flush_inline();
  } else {
    dispatch_flush();
  }
}

void ForecastServer::flush_inline() {
  // The whole flush runs against ONE snapshot: a publish() racing us posts
  // its swap behind this closure, so this batch finishes on the engine it
  // started on and the swap lands before the next flush.
  const std::shared_ptr<Snapshot> snap = snapshot_;
  const std::size_t chunk = snap->engine->max_batch();
  std::vector<Matrix> preds;  // per-window denormalized outputs of one chunk
  for (std::size_t begin = 0; begin < pending_.size(); begin += chunk) {
    const std::size_t count = std::min(chunk, pending_.size() - begin);
    const EventLoop::Clock::time_point now = EventLoop::Clock::now();
    // Circuit-breaker gate, evaluated per engine call: CLOSED serves
    // through the engine, OPEN from fallback until the cooldown elapses,
    // at which point ONE probe call goes through half-open.
    bool engine_allowed = true;
    if (breaker_ == BreakerState::kOpen) {
      if (now >= breaker_retry_at_) {
        set_breaker(BreakerState::kHalfOpen);
        breaker_probes_.fetch_add(1, std::memory_order_relaxed);
      } else {
        engine_allowed = false;
      }
    }
    if (!engine_allowed) {
      for (std::size_t b = 0; b < count; ++b) {
        fallback_respond(pending_[begin + b], nullptr);
      }
      continue;
    }
    batch_ptrs_.clear();
    for (std::size_t b = 0; b < count; ++b) {
      batch_ptrs_.push_back(&pending_[begin + b].window);
    }
    bool call_ok = true;
    bool call_threw = false;
    try {
      const FMatrix& out =
          snap->engine->predict_batch(batch_ptrs_.data(), count, snap->ws);
      batched_windows_.fetch_add(count, std::memory_order_relaxed);
      preds.resize(count);
      for (std::size_t b = 0; b < count; ++b) {
        Matrix& pred = preds[b];
        pred = Matrix(n_, horizon_);
        for (std::size_t i = 0; i < n_; ++i) {
          for (std::size_t h = 0; h < horizon_; ++h) {
            pred(i, h) = normalizer_.denormalize(
                static_cast<double>(out(b * n_ + i, h)), 0);
          }
        }
        // A poisoned row block degrades only its own window's waiters, but
        // the call still counts as failed for the breaker.
        if (pred.has_non_finite()) call_ok = false;
      }
    } catch (...) {
      call_ok = false;
      call_threw = true;
    }
    engine_calls_.fetch_add(1, std::memory_order_relaxed);
    // Breaker bookkeeping BEFORE any waiter settles: a client that wakes on
    // its future must observe the breaker state this call produced.
    note_engine_result(call_ok, EventLoop::Clock::now());
    if (call_threw) {
      for (std::size_t b = 0; b < count; ++b) {
        fallback_respond(pending_[begin + b], nullptr);
      }
      continue;
    }
    for (std::size_t b = 0; b < count; ++b) {
      Pending& p = pending_[begin + b];
      Matrix& pred = preds[b];
      if (pred.has_non_finite()) {
        fallback_respond(p, &pred);
        continue;
      }
      streams_[p.stream].last_good = pred;
      // Enqueue order across windows, attach order within one: the
      // deterministic-ordering contract of the class comment.
      for (Waiter& w : p.waiters) {
        settle_with_value(w, pred, /*fallback=*/false);
      }
    }
  }
  pending_.clear();
}

void ForecastServer::dispatch_flush() {
  auto st = std::make_shared<FlushState>();
  // One snapshot for the whole flush, exactly like the inline path: a
  // racing publish() retargets snapshot_ for the NEXT flush; this one keeps
  // the engine (and the per-worker workspaces) it started with alive via
  // the shared_ptr.
  st->snap = snapshot_;
  st->entries = std::move(pending_);
  pending_.clear();
  const std::size_t total = st->entries.size();
  const std::size_t workers = exec_pool_->size();
  // Fixed deterministic split: ceil(total / K) windows per sub-batch,
  // capped at the engine's max_batch; chunk c runs on worker c mod K. A
  // pure function of (total, K, max_batch) — never of timing — and since
  // every engine op is row-/block-local, per-window outputs are bitwise
  // identical to the inline flush regardless of the split.
  st->chunk_size = std::max<std::size_t>(
      1, std::min(st->snap->engine->max_batch(),
                  (total + workers - 1) / workers));
  const std::size_t nchunks = (total + st->chunk_size - 1) / st->chunk_size;
  st->chunk_ptrs.resize(nchunks);
  st->results.resize(nchunks);
  // Circuit-breaker gate per chunk, evaluated in admission order at
  // dispatch time: OPEN bypasses the engine until the cooldown elapses, at
  // which point exactly ONE half-open probe chunk goes through; the probe's
  // outcome lands with the completions (note_engine_result in chunk order).
  std::size_t dispatched = 0;
  const EventLoop::Clock::time_point now = EventLoop::Clock::now();
  for (std::size_t c = 0; c < nchunks; ++c) {
    bool engine_allowed = true;
    if (breaker_ == BreakerState::kOpen) {
      if (now >= breaker_retry_at_) {
        set_breaker(BreakerState::kHalfOpen);
        breaker_probes_.fetch_add(1, std::memory_order_relaxed);
      } else {
        engine_allowed = false;
      }
    }
    if (!engine_allowed) continue;  // results[c].executed stays false
    st->results[c].executed = true;
    const std::size_t begin = c * st->chunk_size;
    const std::size_t count = std::min(st->chunk_size, total - begin);
    std::vector<const data::Window*>& ptrs = st->chunk_ptrs[c];
    ptrs.reserve(count);
    for (std::size_t b = 0; b < count; ++b) {
      ptrs.push_back(&st->entries[begin + b].window);
    }
    ++dispatched;
  }
  pooled_flushes_.fetch_add(1, std::memory_order_relaxed);
  if (dispatched == 0) {
    // Breaker OPEN gated every chunk — nothing leaves the loop thread.
    finish_flush(st);
    return;
  }
  st->chunks_left = dispatched;
  inflight_ = st;
  for (std::size_t c = 0; c < nchunks; ++c) {
    if (!st->results[c].executed) continue;
    exec_pool_->submit(c % workers, [this, st, c] { run_chunk(st, c); });
  }
}

void ForecastServer::run_chunk(const std::shared_ptr<FlushState>& st,
                               std::size_t chunk) {
  // WORKER thread. Touches only this chunk's slots of the FlushState and
  // this worker's private workspace; everything it reads (entries, snap) is
  // frozen for the lifetime of the flush. The posted completion closure is
  // what publishes the writes to the loop thread.
  ChunkResult& r = st->results[chunk];
  const std::vector<const data::Window*>& ptrs = st->chunk_ptrs[chunk];
  const std::size_t count = ptrs.size();
  core::InferenceEngine::Workspace& ws =
      st->snap->worker_ws[chunk % exec_pool_->size()];
  try {
    const FMatrix& out =
        st->snap->engine->predict_batch(ptrs.data(), count, ws);
    bool ok = true;
    r.preds.resize(count);
    for (std::size_t b = 0; b < count; ++b) {
      Matrix& pred = r.preds[b];
      pred = Matrix(n_, horizon_);
      for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t h = 0; h < horizon_; ++h) {
          pred(i, h) = normalizer_.denormalize(
              static_cast<double>(out(b * n_ + i, h)), 0);
        }
      }
      // A poisoned row block degrades only its own window's waiters, but
      // the call still counts as failed for the breaker.
      if (pred.has_non_finite()) ok = false;
    }
    r.ok = ok;
  } catch (...) {
    r.ok = false;
    r.threw = true;
  }
  loop_.post([this, st] { on_chunk_done(st); });
}

void ForecastServer::on_chunk_done(const std::shared_ptr<FlushState>& st) {
  if (--st->chunks_left > 0) return;
  finish_flush(st);
}

void ForecastServer::finish_flush(const std::shared_ptr<FlushState>& st) {
  inflight_.reset();
  const std::size_t total = st->entries.size();
  // Chunk order IS admission order: breaker bookkeeping before the affected
  // waiters settle, promises fulfilled in enqueue order, waiters in attach
  // order — the same deterministic-ordering contract as the inline flush.
  for (std::size_t c = 0; c * st->chunk_size < total; ++c) {
    const std::size_t begin = c * st->chunk_size;
    const std::size_t count = std::min(st->chunk_size, total - begin);
    ChunkResult& r = st->results[c];
    if (!r.executed) {
      for (std::size_t b = 0; b < count; ++b) {
        fallback_respond(st->entries[begin + b], nullptr);
      }
      continue;
    }
    engine_calls_.fetch_add(1, std::memory_order_relaxed);
    if (!r.threw) {
      batched_windows_.fetch_add(count, std::memory_order_relaxed);
    }
    note_engine_result(r.ok, EventLoop::Clock::now());
    if (r.threw) {
      for (std::size_t b = 0; b < count; ++b) {
        fallback_respond(st->entries[begin + b], nullptr);
      }
      continue;
    }
    for (std::size_t b = 0; b < count; ++b) {
      Pending& p = st->entries[begin + b];
      Matrix& pred = r.preds[b];
      if (pred.has_non_finite()) {
        fallback_respond(p, &pred);
        continue;
      }
      streams_[p.stream].last_good = pred;
      for (Waiter& w : p.waiters) {
        settle_with_value(w, pred, /*fallback=*/false);
      }
    }
  }
  // Pipelining: batch t+1 accumulated while batch t executed — flush it
  // now. During drain maybe_finish_drain runs the final inline flush
  // instead, so everything admitted still resolves before the loop stops.
  if (!pending_.empty() && !loop_draining_) flush();
  maybe_finish_drain();
}

void ForecastServer::maybe_finish_drain() {
  if (!loop_draining_ || drain_quiesce_ == nullptr) return;
  if (inflight_ != nullptr) return;  // its completion re-enters
  flush();  // inline during drain: settles everything still admitted
  drain_quiesce_->set_value();
  drain_quiesce_.reset();
}

bool ForecastServer::publish(std::shared_ptr<core::InferenceEngine> engine) {
  if (engine == nullptr) {
    throw std::invalid_argument("ForecastServer::publish: null engine");
  }
  if (engine->num_nodes() != n_ || engine->num_features() != f_ ||
      engine->lookback() != lookback_ || engine->horizon() != horizon_ ||
      engine->steps_per_day() != steps_per_day_) {
    throw std::invalid_argument(
        "ForecastServer::publish: engine dimensions changed");
  }
  // Canary gate, on the CALLER's thread: one synthetic probe window through
  // the candidate. A throw, shape drift or non-finite output quarantines it
  // — the serving snapshot is never retargeted at an engine that cannot
  // answer the probe, so a poisoned retrain can't take down serving.
  bool healthy = false;
  try {
    const Matrix probe = engine->predict(make_probe_window());
    healthy = probe.rows() == n_ && probe.cols() == horizon_ &&
              !probe.has_non_finite();
  } catch (...) {
    healthy = false;
  }
  if (!healthy) {
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Build the new snapshot (workspace allocation included) on the CALLER's
  // thread; the loop only retargets one shared_ptr, so serving never stalls
  // on a publish however large the engine is.
  auto snap = std::make_shared<Snapshot>();
  snap->ws = engine->make_workspace();
  snap->worker_ws.reserve(cfg_.num_workers);
  for (std::size_t w = 0; w < cfg_.num_workers; ++w) {
    snap->worker_ws.push_back(engine->make_workspace());
  }
  snap->engine = std::move(engine);
  loop_.post([this, snap = std::move(snap)]() mutable {
    snapshot_ = std::move(snap);
    swaps_.fetch_add(1, std::memory_order_relaxed);
  });
  return true;
}

ServerStats ForecastServer::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.engine_calls = engine_calls_.load(std::memory_order_relaxed);
  s.batched_windows = batched_windows_.load(std::memory_order_relaxed);
  s.coalesced_requests = coalesced_.load(std::memory_order_relaxed);
  s.snapshot_swaps = swaps_.load(std::memory_order_relaxed);
  s.shed_requests = shed_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.aborted_requests = aborted_.load(std::memory_order_relaxed);
  s.engine_failures = engine_failures_.load(std::memory_order_relaxed);
  s.fallback_responses = fallback_responses_.load(std::memory_order_relaxed);
  s.scrubbed_entries = scrubbed_entries_.load(std::memory_order_relaxed);
  s.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  s.breaker_probes = breaker_probes_.load(std::memory_order_relaxed);
  s.breaker_closes = breaker_closes_.load(std::memory_order_relaxed);
  s.quarantined_publishes = quarantined_.load(std::memory_order_relaxed);
  s.sanitized_entries = sanitized_entries_.load(std::memory_order_relaxed);
  s.coerced_mask_entries =
      coerced_mask_entries_.load(std::memory_order_relaxed);
  s.stuck_demotions = stuck_demotions_.load(std::memory_order_relaxed);
  s.pooled_flushes = pooled_flushes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rihgcn::serve
