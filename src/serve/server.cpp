#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace rihgcn::serve {

ForecastServer::ForecastServer(std::shared_ptr<core::InferenceEngine> engine,
                               const data::ZScoreNormalizer& normalizer,
                               ServeConfig cfg)
    : cfg_(cfg), normalizer_(normalizer) {
  if (engine == nullptr) {
    throw std::invalid_argument("ForecastServer: null engine");
  }
  n_ = engine->num_nodes();
  f_ = engine->num_features();
  lookback_ = engine->lookback();
  horizon_ = engine->horizon();
  steps_per_day_ = engine->steps_per_day();
  cfg_.max_batch = std::clamp<std::size_t>(cfg_.max_batch, 1,
                                           engine->max_batch());
  auto snap = std::make_shared<Snapshot>();
  snap->ws = engine->make_workspace();
  snap->engine = std::move(engine);
  snapshot_ = std::move(snap);  // loop not running yet — plain write is safe
  loop_.start();
}

ForecastServer::~ForecastServer() {
  // Serve whatever is still queued, then let the loop drain and exit. The
  // EventLoop member is declared last, so it joins before any server state
  // the final flush touches is destroyed.
  loop_.post([this] { flush(); });
  loop_.stop();
}

std::size_t ForecastServer::add_stream(std::size_t start_slot) {
  auto done = std::make_shared<std::promise<std::size_t>>();
  std::future<std::size_t> id = done->get_future();
  loop_.post([this, start_slot, done] {
    Stream s;
    s.start_slot = start_slot % steps_per_day_;
    streams_.push_back(std::move(s));
    num_streams_.store(streams_.size(), std::memory_order_release);
    done->set_value(streams_.size() - 1);
  });
  return id.get();
}

void ForecastServer::ingest(std::size_t stream, const Matrix& values,
                            const Matrix& mask) {
  if (stream >= num_streams_.load(std::memory_order_acquire)) {
    throw std::invalid_argument("ForecastServer::ingest: unknown stream");
  }
  if (values.rows() != n_ || values.cols() != f_ ||
      !values.same_shape(mask)) {
    throw ShapeError("ForecastServer::ingest: shape mismatch");
  }
  // Sanitize + normalize on the CLIENT thread (a pure function of the
  // reading and the frozen normalizer) so many feeds prepare their own
  // input in parallel; only the buffer append runs on the loop.
  Matrix normalized(n_, f_);
  Matrix clean_mask(n_, f_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t c = 0; c < f_; ++c) {
      const double m = mask(i, c);
      bool observed = std::isfinite(m) && m > 0.5;
      if (observed && !std::isfinite(values(i, c))) observed = false;
      double z = 0.0;
      if (observed) {
        z = normalizer_.normalize_value(values(i, c), c);
        if (!std::isfinite(z)) {  // degenerate normalizer stats
          observed = false;
          z = 0.0;
        }
      }
      clean_mask(i, c) = observed ? 1.0 : 0.0;
      normalized(i, c) = z;
    }
  }
  auto vp = std::make_shared<Matrix>(std::move(normalized));
  auto mp = std::make_shared<Matrix>(std::move(clean_mask));
  loop_.post([this, stream, vp, mp] {
    Stream& s = streams_[stream];
    s.values.push_back(std::move(*vp));
    s.masks.push_back(std::move(*mp));
    if (s.values.size() > lookback_) {
      s.values.pop_front();
      s.masks.pop_front();
    }
    ++s.seen;
    ++s.version;  // never coalesce across an ingest
  });
}

void ForecastServer::ingest_gap(std::size_t stream) {
  ingest(stream, Matrix(n_, f_), Matrix(n_, f_));
}

std::future<Matrix> ForecastServer::forecast_async(std::size_t stream) {
  if (stream >= num_streams_.load(std::memory_order_acquire)) {
    throw std::invalid_argument(
        "ForecastServer::forecast_async: unknown stream");
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  auto promise = std::make_shared<std::promise<Matrix>>();
  std::future<Matrix> fut = promise->get_future();
  loop_.post([this, stream, promise] {
    enqueue_request(stream, std::move(*promise));
  });
  return fut;
}

void ForecastServer::enqueue_request(std::size_t stream,
                                     std::promise<Matrix> promise) {
  const Stream& s = streams_[stream];
  if (s.seen == 0) {
    promise.set_exception(std::make_exception_ptr(
        std::logic_error("ForecastServer: no readings pushed yet")));
    return;
  }
  // Coalesce: an identical query (same stream, no ingest in between) rides
  // the already-queued window.
  for (Pending& p : pending_) {
    if (p.stream == stream && p.version == s.version) {
      p.waiters.push_back(std::move(promise));
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  Pending p;
  p.stream = stream;
  p.version = s.version;
  p.window = make_window(s);
  p.waiters.push_back(std::move(promise));
  pending_.push_back(std::move(p));
  if (pending_.size() >= cfg_.max_batch) {
    flush();
  } else if (pending_.size() == 1) {
    flush_timer_ = loop_.add_time_handler_after(
        std::chrono::microseconds(cfg_.max_delay_us), [this] {
          flush_timer_ = 0;
          flush();
        });
  }
}

data::Window ForecastServer::make_window(const Stream& s) const {
  data::Window w;
  // Warm-up: left-pad with fully-missing steps (the imputation machinery's
  // job), exactly like OnlineForecaster::make_window.
  const std::size_t pad = lookback_ - s.values.size();
  w.slot = (s.start_slot + s.seen - s.values.size() +
            steps_per_day_ * lookback_ - pad) %
           steps_per_day_;
  w.start = 0;
  for (std::size_t k = 0; k < pad; ++k) {
    w.x_obs.emplace_back(n_, f_);
    w.x_mask.emplace_back(n_, f_);
    w.x_truth.emplace_back(n_, f_);
  }
  for (std::size_t k = 0; k < s.values.size(); ++k) {
    w.x_obs.push_back(s.values[k]);
    w.x_mask.push_back(s.masks[k]);
    w.x_truth.push_back(s.values[k]);
  }
  for (std::size_t k = 0; k < horizon_; ++k) {
    w.y.emplace_back(n_, 1);
    w.y_mask.emplace_back(n_, 1);
  }
  return w;
}

void ForecastServer::flush() {
  if (pending_.empty()) return;
  if (flush_timer_ != 0) {
    loop_.cancel(flush_timer_);
    flush_timer_ = 0;
  }
  // The whole flush runs against ONE snapshot: a publish() racing us posts
  // its swap behind this closure, so this batch finishes on the engine it
  // started on and the swap lands before the next flush.
  const std::shared_ptr<Snapshot> snap = snapshot_;
  const std::size_t chunk = snap->engine->max_batch();
  for (std::size_t begin = 0; begin < pending_.size(); begin += chunk) {
    const std::size_t count = std::min(chunk, pending_.size() - begin);
    batch_ptrs_.clear();
    for (std::size_t b = 0; b < count; ++b) {
      batch_ptrs_.push_back(&pending_[begin + b].window);
    }
    try {
      const FMatrix& out =
          snap->engine->predict_batch(batch_ptrs_.data(), count, snap->ws);
      engine_calls_.fetch_add(1, std::memory_order_relaxed);
      batched_windows_.fetch_add(count, std::memory_order_relaxed);
      for (std::size_t b = 0; b < count; ++b) {
        Matrix pred(n_, horizon_);
        for (std::size_t i = 0; i < n_; ++i) {
          for (std::size_t h = 0; h < horizon_; ++h) {
            pred(i, h) = normalizer_.denormalize(
                static_cast<double>(out(b * n_ + i, h)), 0);
          }
        }
        // Enqueue order across windows, attach order within one: the
        // deterministic-ordering contract of the class comment.
        for (std::promise<Matrix>& waiter : pending_[begin + b].waiters) {
          // Count BEFORE fulfilling: a client that wakes on the future must
          // see its own response in stats().
          responses_.fetch_add(1, std::memory_order_relaxed);
          waiter.set_value(pred);
        }
      }
    } catch (...) {
      for (std::size_t b = 0; b < count; ++b) {
        for (std::promise<Matrix>& waiter : pending_[begin + b].waiters) {
          waiter.set_exception(std::current_exception());
        }
      }
    }
  }
  pending_.clear();
}

void ForecastServer::publish(std::shared_ptr<core::InferenceEngine> engine) {
  if (engine == nullptr) {
    throw std::invalid_argument("ForecastServer::publish: null engine");
  }
  if (engine->num_nodes() != n_ || engine->num_features() != f_ ||
      engine->lookback() != lookback_ || engine->horizon() != horizon_ ||
      engine->steps_per_day() != steps_per_day_) {
    throw std::invalid_argument(
        "ForecastServer::publish: engine dimensions changed");
  }
  // Build the new snapshot (workspace allocation included) on the CALLER's
  // thread; the loop only retargets one shared_ptr, so serving never stalls
  // on a publish however large the engine is.
  auto snap = std::make_shared<Snapshot>();
  snap->ws = engine->make_workspace();
  snap->engine = std::move(engine);
  loop_.post([this, snap = std::move(snap)]() mutable {
    snapshot_ = std::move(snap);
    swaps_.fetch_add(1, std::memory_order_relaxed);
  });
}

ServerStats ForecastServer::stats() const {
  ServerStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.engine_calls = engine_calls_.load(std::memory_order_relaxed);
  s.batched_windows = batched_windows_.load(std::memory_order_relaxed);
  s.coalesced_requests = coalesced_.load(std::memory_order_relaxed);
  s.snapshot_swaps = swaps_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rihgcn::serve
