// ForecastServer — the online serving front end (DESIGN.md §14).
//
// OnlineForecaster (src/core/online.hpp) wraps ONE stream around the f64
// tape model; ForecastServer is the production path: many streams, many
// concurrent clients, one compiled core::InferenceEngine. Three mechanisms
// carry the load:
//
//   * micro-batching — forecast requests land in an admission queue on the
//     event-loop thread and are flushed through ONE predict_batch call when
//     the queue holds `max_batch` distinct windows or the oldest request has
//     waited `max_delay_us`, whichever comes first;
//   * coalescing — concurrent requests for the same (stream, ingest
//     version) share one engine invocation and one window slot in the
//     batch: later arrivals just attach to the pending entry's waiter list;
//   * snapshot swap — the engine sits behind a loop-thread-owned
//     shared_ptr<Snapshot>; publish() validates a freshly compiled engine on
//     the caller's thread (typically a background retrain loop) and posts
//     the pointer swap to the loop, so the next flush picks it up. Serving
//     never pauses — publish is just an enqueue — and in-flight batches
//     finish on the snapshot they started with. (An atomic<shared_ptr> would
//     work too, but libstdc++'s _Sp_atomic hides its spinlock bit from TSan;
//     routing the swap through the loop keeps the single-writer discipline
//     uniform AND sanitizer-provable.)
//
// All mutable server state (stream buffers, the admission queue, snapshot
// workspaces) is owned by the single EventLoop thread; client threads only
// normalize inputs, post closures and wait on futures. That single-writer
// discipline is what the TSan-covered swap-under-load test
// (ServeSnapshot.SwapUnderLoad) locks in.
//
// Responses are deterministic: windows are materialized from the stream
// buffer at enqueue time (an ingest racing a forecast affects only requests
// enqueued after it), and promises are fulfilled in enqueue order, waiters
// in attach order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "data/dataset.hpp"
#include "data/windows.hpp"
#include "serve/event_loop.hpp"

namespace rihgcn::serve {

struct ServeConfig {
  /// Flush the admission queue at this many distinct windows (clamped to
  /// the engine's max_batch at flush time).
  std::size_t max_batch = 8;
  /// ... or when the oldest queued request has waited this long.
  std::uint64_t max_delay_us = 500;
};

/// Monotonic serving counters (all lifetime totals).
struct ServerStats {
  std::size_t requests = 0;            ///< forecast futures handed out
  std::size_t responses = 0;           ///< futures fulfilled with a value
  std::size_t engine_calls = 0;        ///< predict_batch invocations
  std::size_t batched_windows = 0;     ///< sum of batch sizes over calls
  std::size_t coalesced_requests = 0;  ///< requests that joined a pending window
  std::size_t snapshot_swaps = 0;      ///< published engines applied by the loop
};

class ForecastServer {
 public:
  /// Starts the loop thread. `engine` is the initial snapshot; `normalizer`
  /// is copied (the server converts original-unit readings to the model's
  /// normalized space and back).
  ForecastServer(std::shared_ptr<core::InferenceEngine> engine,
                 const data::ZScoreNormalizer& normalizer, ServeConfig cfg);
  /// Fails all still-queued requests with broken promises after a final
  /// flush, then joins the loop thread.
  ~ForecastServer();
  ForecastServer(const ForecastServer&) = delete;
  ForecastServer& operator=(const ForecastServer&) = delete;

  /// Register a sensor stream; `start_slot` anchors its time-of-day clock.
  /// Returns the stream id used by ingest/forecast.
  std::size_t add_stream(std::size_t start_slot = 0);

  /// Ingest one reading (ORIGINAL units, num_nodes x num_features values +
  /// mask). Sanitizes like OnlineForecaster: non-finite values and
  /// malformed mask entries are demoted to missing. Bumps the stream's
  /// ingest version, so it never coalesces with earlier forecasts.
  void ingest(std::size_t stream, const Matrix& values, const Matrix& mask);
  /// Ingest a fully-missing timestep (feed gap).
  void ingest_gap(std::size_t stream);

  /// Queue a forecast of the stream's next `horizon` target-feature steps
  /// in ORIGINAL units (num_nodes x horizon). The future carries
  /// std::logic_error if the stream has no readings yet, or whatever the
  /// engine threw.
  [[nodiscard]] std::future<Matrix> forecast_async(std::size_t stream);
  /// Blocking convenience wrapper.
  [[nodiscard]] Matrix forecast(std::size_t stream) {
    return forecast_async(stream).get();
  }

  /// Swap in a retrained engine (any thread, never blocks serving — the
  /// pointer swap is posted to the loop and takes effect before the next
  /// flush). Throws std::invalid_argument if its dimensions disagree with
  /// the server's.
  void publish(std::shared_ptr<core::InferenceEngine> engine);

  [[nodiscard]] ServerStats stats() const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_features() const noexcept { return f_; }
  [[nodiscard]] std::size_t horizon() const noexcept { return horizon_; }

 private:
  /// An engine plus its private scratch. The workspace is touched only by
  /// the loop thread, which is what makes the mutable member safe here.
  struct Snapshot {
    std::shared_ptr<core::InferenceEngine> engine;
    core::InferenceEngine::Workspace ws;
  };
  /// Per-stream rolling buffer of normalized readings (loop thread only).
  struct Stream {
    std::size_t start_slot = 0;
    std::size_t seen = 0;
    std::uint64_t version = 0;  ///< bumped per ingest; the coalescing key
    std::deque<Matrix> values;  ///< normalized, observed-masked
    std::deque<Matrix> masks;
  };
  /// One admission-queue entry: a materialized window and its waiters.
  struct Pending {
    std::size_t stream = 0;
    std::uint64_t version = 0;
    data::Window window;
    std::vector<std::promise<Matrix>> waiters;
  };

  // Loop-thread internals.
  void enqueue_request(std::size_t stream, std::promise<Matrix> promise);
  void flush();
  [[nodiscard]] data::Window make_window(const Stream& s) const;

  // Immutable after construction.
  std::size_t n_ = 0, f_ = 0;
  std::size_t lookback_ = 0, horizon_ = 0, steps_per_day_ = 0;
  ServeConfig cfg_;
  data::ZScoreNormalizer normalizer_;

  // Loop-thread-owned state.
  std::shared_ptr<Snapshot> snapshot_;  ///< swapped only via posted closures
  std::deque<Stream> streams_;
  std::vector<Pending> pending_;
  std::vector<const data::Window*> batch_ptrs_;  ///< reused flush scratch
  std::uint64_t flush_timer_ = 0;                ///< 0 = not armed

  std::atomic<std::size_t> num_streams_{0};  ///< for client-side validation
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> responses_{0};
  std::atomic<std::size_t> engine_calls_{0};
  std::atomic<std::size_t> batched_windows_{0};
  std::atomic<std::size_t> coalesced_{0};
  std::atomic<std::size_t> swaps_{0};

  EventLoop loop_;  ///< last member: joins before the state above dies
};

}  // namespace rihgcn::serve
