// ForecastServer — the online serving front end (DESIGN.md §14, §15).
//
// OnlineForecaster (src/core/online.hpp) wraps ONE stream around the f64
// tape model; ForecastServer is the production path: many streams, many
// concurrent clients, one compiled core::InferenceEngine. Three mechanisms
// carry the load:
//
//   * micro-batching — forecast requests land in an admission queue on the
//     event-loop thread and are flushed through ONE predict_batch call when
//     the queue holds `max_batch` distinct windows or the oldest request has
//     waited `max_delay_us`, whichever comes first;
//   * coalescing — concurrent requests for the same (stream, ingest
//     version) share one engine invocation and one window slot in the
//     batch: later arrivals just attach to the pending entry's waiter list;
//   * snapshot swap — the engine sits behind a loop-thread-owned
//     shared_ptr<Snapshot>; publish() canary-tests a freshly compiled engine
//     on the caller's thread (typically a background retrain loop) and posts
//     the pointer swap to the loop, so the next flush picks it up. Serving
//     never pauses — publish is just an enqueue — and in-flight batches
//     finish on the snapshot they started with. (An atomic<shared_ptr> would
//     work too, but libstdc++'s _Sp_atomic hides its spinlock bit from TSan;
//     routing the swap through the loop keeps the single-writer discipline
//     uniform AND sanitizer-provable.)
//
// And four overload/fault mechanisms keep it standing when the load or the
// engine misbehaves (DESIGN.md §15):
//
//   * bounded admission — at most `max_queue` distinct windows wait at once;
//     beyond that the shed policy either rejects the newcomer or sheds the
//     oldest entry, failing its waiters with ServeError{OVERLOADED};
//   * deadlines — a request may carry `deadline_us` (or inherit the config
//     default); expiry is enforced on the loop thread via a cancellable
//     EventLoop timer plus a sweep at flush start, so an expired request
//     fails with ServeError{DEADLINE_EXCEEDED} *before* consuming a batch
//     slot;
//   * engine circuit breaker + per-stream fallback — a flush that throws or
//     emits non-finite rows answers the affected waiters from a degraded
//     path (the stream's last good forecast, else the engine output scrubbed
//     to the historical mean, else the all-mean matrix — the shared
//     core::scrub_non_finite semantics), and after `breaker_threshold`
//     consecutive failed engine calls the breaker OPENS: every request is
//     served from fallback without touching the engine until a half-open
//     probe batch (after `breaker_cooldown_us`) succeeds and closes it;
//   * canary-gated publish — publish() runs the candidate on a synthetic
//     probe window first; a throw, shape mismatch or non-finite output
//     quarantines the candidate (counted in stats) and keeps the current
//     snapshot serving.
//
// With ServeConfig::num_workers > 0 the parallel execution layer (DESIGN.md
// §16) takes over flush execution: the admitted batch is split into fixed
// deterministic per-worker sub-batches and run on an ExecPool (each worker a
// private Workspace over the shared plan), completions post back to the
// loop, and the loop keeps admitting batch t+1 while batch t executes — the
// pipelined flush. Breaker bookkeeping and settlement still happen on the
// loop thread in admission order, so per-window outputs are bitwise
// identical to inline execution and the §15 failure accounting is exact.
//
// Every request resolves to a typed outcome: a finite Matrix or a
// serve::ServeError via set_exception — never a broken promise, including
// through drain()/destruction (ServeError{SHUTTING_DOWN}).
//
// All mutable server state (stream buffers, the admission queue, snapshot
// workspaces, breaker state) is owned by the single EventLoop thread; client
// threads only normalize inputs, post closures and wait on futures. That
// single-writer discipline is what the TSan-covered swap-under-load and
// overload-storm tests lock in.
//
// Responses are deterministic: windows are materialized from the stream
// buffer at enqueue time (an ingest racing a forecast affects only requests
// enqueued after it), and promises are fulfilled in enqueue order, waiters
// in attach order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "core/robust.hpp"
#include "data/dataset.hpp"
#include "data/windows.hpp"
#include "serve/error.hpp"
#include "serve/event_loop.hpp"
#include "serve/exec_pool.hpp"

namespace rihgcn::serve {

/// What to do when the admission queue is full and a request needs a new
/// window slot (coalescing attaches never grow the queue, so they are
/// always admitted).
enum class ShedPolicy {
  kRejectNew,   ///< fail the incoming request with OVERLOADED
  kShedOldest,  ///< fail the oldest queued window's waiters, admit the new
};

/// Engine circuit-breaker state (DESIGN.md §15 state machine).
enum class BreakerState {
  kClosed,    ///< normal serving through the engine
  kOpen,      ///< engine bypassed; everything served from fallback
  kHalfOpen,  ///< one probe batch in flight; its outcome decides
};

struct ServeConfig {
  /// Flush the admission queue at this many distinct windows (clamped to
  /// the engine's max_batch at flush time).
  std::size_t max_batch = 8;
  /// ... or when the oldest queued request has waited this long.
  std::uint64_t max_delay_us = 500;
  /// Bounded admission: at most this many distinct windows queued (floored
  /// to 1). Waiters coalescing onto an existing window don't count.
  std::size_t max_queue = 64;
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  /// Default per-request deadline (microseconds from enqueue); 0 = none.
  /// forecast_async's explicit argument overrides it per request.
  std::uint64_t default_deadline_us = 0;
  /// Consecutive failed engine calls (throw or non-finite output) that
  /// open the circuit breaker (floored to 1).
  std::size_t breaker_threshold = 3;
  /// How long an open breaker waits before letting one half-open probe
  /// batch through the engine.
  std::uint64_t breaker_cooldown_us = 10'000;
  /// Per-stream stuck-sensor demotion threshold (core::StuckSensorDetector,
  /// the shared OnlineForecaster semantics); 0 disables.
  std::size_t stuck_threshold = 12;
  /// true: engine failures answer waiters with degraded-but-finite values
  /// (last-good / mean-scrub fallback). false: they carry
  /// ServeError{ENGINE_FAILURE} instead — for deployments that prefer a
  /// typed error over a stale number.
  bool degraded_serving = true;
  /// Parallel execution layer (DESIGN.md §16). 0 = flushes execute inline
  /// on the loop thread (the §14/§15 behaviour). K >= 1 = a K-worker
  /// ExecPool executes each flush: the admitted batch is split into fixed
  /// deterministic sub-batches (chunk w on worker w mod K, each worker
  /// running against its own private Workspace over the shared plan), and
  /// while the workers execute batch t the loop keeps admitting and
  /// coalescing batch t+1 — the pipelined flush. Per-window outputs are
  /// bitwise identical to inline execution for any K. Overridden at
  /// construction by RIHGCN_SERVE_WORKERS when set (set-but-invalid throws,
  /// the RIHGCN_THREADS contract).
  std::size_t num_workers = 0;
};

/// Monotonic serving counters (all lifetime totals).
struct ServerStats {
  std::size_t requests = 0;            ///< forecast futures handed out
  std::size_t responses = 0;           ///< futures fulfilled with a value
  std::size_t engine_calls = 0;        ///< predict_batch invocations
  std::size_t batched_windows = 0;     ///< sum of batch sizes over calls
  std::size_t coalesced_requests = 0;  ///< requests that joined a pending window
  std::size_t snapshot_swaps = 0;      ///< published engines applied by the loop
  std::size_t pooled_flushes = 0;      ///< flushes dispatched to the ExecPool
  // ---- overload & fault-tolerance counters (DESIGN.md §15) -----------------
  std::size_t shed_requests = 0;       ///< failed with OVERLOADED
  std::size_t deadline_expired = 0;    ///< failed with DEADLINE_EXCEEDED
  std::size_t aborted_requests = 0;    ///< failed with SHUTTING_DOWN
  std::size_t engine_failures = 0;     ///< engine calls that threw / went non-finite
  std::size_t fallback_responses = 0;  ///< degraded values served (subset of responses)
  std::size_t scrubbed_entries = 0;    ///< non-finite output entries scrubbed to mean
  std::size_t breaker_opens = 0;       ///< transitions to OPEN (incl. failed probes)
  std::size_t breaker_probes = 0;      ///< half-open probe batches attempted
  std::size_t breaker_closes = 0;      ///< successful probes closing the breaker
  std::size_t quarantined_publishes = 0;  ///< candidates rejected by the canary
  std::size_t sanitized_entries = 0;   ///< ingest values demoted to missing
  std::size_t coerced_mask_entries = 0;  ///< ingest mask entries outside {0,1}
  std::size_t stuck_demotions = 0;     ///< readings demoted by stuck detection
};

class ForecastServer {
 public:
  /// Starts the loop thread. `engine` is the initial snapshot; `normalizer`
  /// is copied (the server converts original-unit readings to the model's
  /// normalized space and back).
  ForecastServer(std::shared_ptr<core::InferenceEngine> engine,
                 const data::ZScoreNormalizer& normalizer, ServeConfig cfg);
  /// Equivalent to drain(): every still-queued request resolves with
  /// ServeError{SHUTTING_DOWN} or a final-flush value before the loop joins.
  ~ForecastServer();
  ForecastServer(const ForecastServer&) = delete;
  ForecastServer& operator=(const ForecastServer&) = delete;

  /// Register a sensor stream; `start_slot` anchors its time-of-day clock.
  /// Returns the stream id used by ingest/forecast.
  std::size_t add_stream(std::size_t start_slot = 0);

  /// Ingest one reading (ORIGINAL units, num_nodes x num_features values +
  /// mask). Sanitizes with the shared core::sanitize_reading (non-finite
  /// values and malformed mask entries demoted to missing); the loop thread
  /// additionally demotes stuck sensors. Bumps the stream's ingest version,
  /// so it never coalesces with earlier forecasts. Throws
  /// ServeError{SHUTTING_DOWN} once drain() has begun.
  void ingest(std::size_t stream, const Matrix& values, const Matrix& mask);
  /// Ingest a fully-missing timestep (feed gap).
  void ingest_gap(std::size_t stream);

  /// Queue a forecast of the stream's next `horizon` target-feature steps
  /// in ORIGINAL units (num_nodes x horizon).
  ///
  /// `deadline_us` bounds the time the request may wait before being
  /// answered: nullopt inherits ServeConfig::default_deadline_us, an
  /// explicit 0 disables the deadline for this request.
  ///
  /// The future carries exactly one of: a finite Matrix; a
  /// serve::ServeError (OVERLOADED / DEADLINE_EXCEEDED / ENGINE_FAILURE /
  /// SHUTTING_DOWN); or std::logic_error if the stream has no readings yet
  /// (validated eagerly — such a request never occupies a queue slot).
  [[nodiscard]] std::future<Matrix> forecast_async(
      std::size_t stream,
      std::optional<std::uint64_t> deadline_us = std::nullopt);
  /// Blocking convenience wrapper.
  [[nodiscard]] Matrix forecast(std::size_t stream) {
    return forecast_async(stream).get();
  }

  /// Canary-gated swap of a retrained engine (any thread, never blocks
  /// serving). The candidate first predicts a synthetic probe window on the
  /// CALLER's thread; a throw, wrong shape or non-finite output quarantines
  /// it — stats().quarantined_publishes counts, the current snapshot keeps
  /// serving, and publish returns false. On success the pointer swap is
  /// posted to the loop (applied before the next flush) and publish returns
  /// true. Throws std::invalid_argument for a null engine or one whose
  /// dimensions disagree with the server's (caller bugs, not fault modes).
  [[nodiscard]] bool publish(std::shared_ptr<core::InferenceEngine> engine);

  /// Graceful shutdown: stops admission (subsequent forecasts resolve to
  /// ServeError{SHUTTING_DOWN}, ingests throw it), serves everything already
  /// admitted via one final flush, then stops and joins the loop thread
  /// deterministically. Idempotent; called by the destructor.
  void drain();

  [[nodiscard]] ServerStats stats() const;
  /// Current circuit-breaker state (any thread).
  [[nodiscard]] BreakerState breaker_state() const noexcept {
    return static_cast<BreakerState>(
        breaker_state_.load(std::memory_order_acquire));
  }
  /// True once drain() has begun (any thread).
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_features() const noexcept { return f_; }
  [[nodiscard]] std::size_t horizon() const noexcept { return horizon_; }
  /// Resolved worker count (config after the RIHGCN_SERVE_WORKERS
  /// override); 0 = inline flush execution.
  [[nodiscard]] std::size_t num_workers() const noexcept {
    return cfg_.num_workers;
  }

 private:
  /// An engine plus its private scratch. `ws` backs the inline flush path
  /// and is touched only by the loop thread; worker_ws[w] (sized
  /// num_workers) is touched only by ExecPool worker w — one workspace per
  /// executing thread over the one shared immutable plan.
  struct Snapshot {
    std::shared_ptr<core::InferenceEngine> engine;
    core::InferenceEngine::Workspace ws;
    std::vector<core::InferenceEngine::Workspace> worker_ws;
  };
  /// Per-stream rolling buffer of normalized readings (loop thread only).
  struct Stream {
    std::size_t start_slot = 0;
    std::size_t seen = 0;
    std::uint64_t version = 0;  ///< bumped per ingest; the coalescing key
    std::deque<Matrix> values;  ///< normalized, observed-masked
    std::deque<Matrix> masks;
    core::StuckSensorDetector detector;  ///< shared OnlineForecaster semantics
    Matrix last_good;  ///< last finite engine forecast (original units)
  };
  /// A promise that can be raced for by the loop thread and the
  /// drain/forecast_async shutdown paths: whoever settles first wins, every
  /// later attempt is a silent no-op. This is what makes "typed outcome for
  /// every request, no broken promises" hold through racy shutdown.
  struct SettleOnce {
    std::promise<Matrix> promise;
    std::atomic<bool> settled{false};
    /// True iff the caller won the exclusive right to settle the promise
    /// (set_value / set_exception). Counting happens between claim() and the
    /// set so stats() is consistent by the time the client's .get() returns.
    bool claim() { return !settled.exchange(true, std::memory_order_acq_rel); }
  };
  /// One waiter on a queued window.
  struct Waiter {
    std::shared_ptr<SettleOnce> settle;
    std::uint64_t seq = 0;       ///< unique token for deadline lookup
    std::uint64_t timer_id = 0;  ///< armed deadline timer; 0 = none
    bool has_deadline = false;
    EventLoop::Clock::time_point deadline{};
  };
  /// One admission-queue entry: a materialized window and its waiters.
  struct Pending {
    std::size_t stream = 0;
    std::uint64_t version = 0;
    data::Window window;
    std::vector<Waiter> waiters;
  };
  /// One sub-batch of a dispatched flush, filled in by its worker. Distinct
  /// chunks are written by distinct workers; the loop reads them only after
  /// the final completion lands, so no field needs synchronization beyond
  /// the loop post itself.
  struct ChunkResult {
    bool executed = false;  ///< breaker gate let this chunk reach the engine
    bool ok = false;        ///< call returned finite output
    bool threw = false;
    std::vector<Matrix> preds;  ///< denormalized, one per window of the chunk
  };
  /// One in-flight pooled flush (DESIGN.md §16): the entries moved out of
  /// the admission queue, the snapshot they execute against, and the
  /// per-chunk results. The admission queue keeps filling (batch t+1) while
  /// this executes; results are processed in chunk order — i.e. admission
  /// order — once every chunk has posted back.
  struct FlushState {
    std::shared_ptr<Snapshot> snap;
    std::vector<Pending> entries;
    std::size_t chunk_size = 0;
    std::vector<std::vector<const data::Window*>> chunk_ptrs;
    std::vector<ChunkResult> results;
    std::size_t chunks_left = 0;  ///< loop thread only
  };

  // Loop-thread internals.
  void enqueue_request(std::size_t stream, std::shared_ptr<SettleOnce> settle,
                       bool has_deadline, EventLoop::Clock::time_point deadline);
  void attach_waiter(Pending& p, Waiter w);
  void arm_deadline(std::size_t stream, Waiter& w);
  void on_deadline_expired(std::size_t stream, std::uint64_t seq);
  /// Sweep expired waiters out of the queue (flush-start fast-fail).
  void fail_expired(EventLoop::Clock::time_point now);
  void settle_with_value(Waiter& w, const Matrix& value, bool fallback);
  void settle_with_error(Waiter& w, ServeStatus status, const char* detail);
  /// Answer one pending entry from the degraded path: last-good forecast,
  /// else `raw_pred` (original units) scrubbed to the historical mean, else
  /// the all-mean matrix. With degraded_serving=false, delivers
  /// ServeError{ENGINE_FAILURE} instead.
  void fallback_respond(Pending& p, const Matrix* raw_pred);
  /// Breaker bookkeeping after one engine call (loop thread).
  void note_engine_result(bool success, EventLoop::Clock::time_point now);
  void set_breaker(BreakerState s) noexcept {
    breaker_ = s;
    breaker_state_.store(static_cast<int>(s), std::memory_order_release);
  }
  /// Flush entry point: no-op while a pooled flush is in flight (its
  /// completion re-flushes); otherwise executes inline (num_workers == 0,
  /// or during drain) or dispatches to the ExecPool.
  void flush();
  /// The §14/§15 stop-the-world flush: chunked predict_batch on the loop
  /// thread, breaker bookkeeping and settlement interleaved per chunk.
  void flush_inline();
  /// Split pending_ into per-worker sub-batches and submit them (§16).
  void dispatch_flush();
  /// Worker-side execution of one chunk: predict_batch on the worker's
  /// private workspace, denormalize, record, post completion to the loop.
  void run_chunk(const std::shared_ptr<FlushState>& st, std::size_t chunk);
  /// Loop-side completion: counts down the in-flight chunks, delegating to
  /// finish_flush when the last one lands.
  void on_chunk_done(const std::shared_ptr<FlushState>& st);
  /// Breaker bookkeeping and settlement for a completed pooled flush, in
  /// chunk (= admission) order, then flush batch t+1 if the admission queue
  /// refilled while batch t executed.
  void finish_flush(const std::shared_ptr<FlushState>& st);
  /// Drain rendezvous: once loop_draining_ is set and no flush is in
  /// flight, run the final inline flush and release the drain() caller.
  void maybe_finish_drain();
  [[nodiscard]] data::Window make_window(const Stream& s) const;
  /// Deterministic synthetic window for the publish canary: normalized-mean
  /// values under a half-observed checkerboard mask.
  [[nodiscard]] data::Window make_probe_window() const;

  // Immutable after construction.
  std::size_t n_ = 0, f_ = 0;
  std::size_t lookback_ = 0, horizon_ = 0, steps_per_day_ = 0;
  ServeConfig cfg_;
  data::ZScoreNormalizer normalizer_;
  Matrix mean_forecast_;  ///< n x horizon, the historical-mean fallback

  // Loop-thread-owned state.
  std::shared_ptr<Snapshot> snapshot_;  ///< swapped only via posted closures
  std::deque<Stream> streams_;
  std::vector<Pending> pending_;
  std::vector<const data::Window*> batch_ptrs_;  ///< reused flush scratch
  std::uint64_t flush_timer_ = 0;                ///< 0 = not armed
  std::uint64_t next_waiter_seq_ = 1;
  BreakerState breaker_ = BreakerState::kClosed;
  std::size_t consecutive_engine_failures_ = 0;
  EventLoop::Clock::time_point breaker_retry_at_{};
  bool loop_draining_ = false;  ///< set by drain's final closure
  std::shared_ptr<FlushState> inflight_;  ///< pooled flush in execution
  /// Fulfilled by the loop once loop_draining_ is set and the last in-flight
  /// flush (plus the final inline flush) has settled — the rendezvous that
  /// lets drain() stop the loop without orphaning worker completions.
  std::shared_ptr<std::promise<void>> drain_quiesce_;

  // Client-visible registry: per-stream readings-seen counters for the
  // eager no-readings validation (guarded by reg_mu_; the atomics
  // themselves are lock-free once fetched).
  mutable std::mutex reg_mu_;
  std::vector<std::shared_ptr<std::atomic<std::uint64_t>>> reg_seen_;

  std::atomic<std::size_t> num_streams_{0};  ///< for client-side validation
  std::atomic<bool> draining_{false};
  std::once_flag drain_once_;
  std::atomic<int> breaker_state_{static_cast<int>(BreakerState::kClosed)};
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> responses_{0};
  std::atomic<std::size_t> engine_calls_{0};
  std::atomic<std::size_t> batched_windows_{0};
  std::atomic<std::size_t> coalesced_{0};
  std::atomic<std::size_t> swaps_{0};
  std::atomic<std::size_t> pooled_flushes_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> deadline_expired_{0};
  std::atomic<std::size_t> aborted_{0};
  std::atomic<std::size_t> engine_failures_{0};
  std::atomic<std::size_t> fallback_responses_{0};
  std::atomic<std::size_t> scrubbed_entries_{0};
  std::atomic<std::size_t> breaker_opens_{0};
  std::atomic<std::size_t> breaker_probes_{0};
  std::atomic<std::size_t> breaker_closes_{0};
  std::atomic<std::size_t> quarantined_{0};
  std::atomic<std::size_t> sanitized_entries_{0};
  std::atomic<std::size_t> coerced_mask_entries_{0};
  std::atomic<std::size_t> stuck_demotions_{0};

  EventLoop loop_;  ///< joins before the state above dies
  /// Declared after loop_, so it is destroyed FIRST: workers are joined
  /// while the loop object (which their completions post into) still
  /// exists. drain() guarantees the pool is idle before either dies.
  std::unique_ptr<ExecPool> exec_pool_;
};

}  // namespace rihgcn::serve
