#include "tensor/csr.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"

namespace rihgcn {

namespace {

// Row-partitioned dispatch mirroring the dense matmul family: the chunk
// boundaries depend only on (rows, matmul_row_grain), never on the thread
// count, and `work` ~ nnz * m decides whether pool dispatch is worth it.
template <typename Body>
void for_csr_rows(std::size_t rows, std::size_t work, Body&& body) {
  if (work < ParallelTuning::min_matmul_flops ||
      work < ParallelTuning::serial_cutover_flops) {
    body(std::size_t{0}, rows);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() <= 1) {
    body(std::size_t{0}, rows);
    return;
  }
  pool.parallel_for(0, rows, ParallelTuning::matmul_row_grain,
                    ThreadPool::RangeBody(std::forward<Body>(body)));
}

// out rows [i0, i1) of C += S · B where S is the CSR triple (ptr, idx, val).
// One dispatched SIMD call (tensor/simd.hpp spmm_rows) per row range — a
// per-nonzero call through the kernel table cost ~30% at F = 16. Per output
// element the terms accumulate in ascending structural order, matching the
// dense kernels' ascending-k order minus the zero terms, so the bitwise
// sparse-vs-dense parity in the header holds under every ISA.
void spmm_rows(const std::size_t* ptr, const std::size_t* idx,
               const double* val, const double* bp, double* cp, std::size_t m,
               std::size_t i0, std::size_t i1) {
  simd::active_kernels().spmm_rows(ptr, idx, val, bp, cp, m, i0, i1);
}

[[noreturn]] void throw_spmm_shape(const char* op, const CsrMatrix& a,
                                   std::size_t inner, const Matrix& b) {
  std::ostringstream os;
  os << op << ": inner dimensions differ: A(" << a.rows() << "x" << a.cols()
     << (inner == a.cols() ? ")" : ")^T") << " * B(" << b.rows() << "x"
     << b.cols() << ")";
  throw ShapeError(os.str());
}

}  // namespace

CsrMatrix CsrMatrix::from_dense(const Matrix& dense, double tol) {
  if (tol < 0.0) {
    throw ShapeError("CsrMatrix::from_dense: tol must be >= 0");
  }
  CsrMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  const std::size_t n = out.rows_;
  const std::size_t m = out.cols_;
  out.row_ptr_.assign(n + 1, 0);
  // Keep |v| > tol; tol = 0 keeps exact nonzeros (|v| > 0).
  const double* dp = dense.data();
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n * m; ++i) {
    if (std::abs(dp[i]) > tol) ++nnz;
  }
  out.col_idx_.reserve(nnz);
  out.vals_.reserve(nnz);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = dp + i * m;
    for (std::size_t j = 0; j < m; ++j) {
      if (std::abs(row[j]) > tol) {
        out.col_idx_.push_back(j);
        out.vals_.push_back(row[j]);
      }
    }
    out.row_ptr_[i + 1] = out.vals_.size();
  }
  out.build_transpose();
  return out;
}

CsrMatrix CsrMatrix::from_parts(std::size_t rows, std::size_t cols,
                                std::vector<std::size_t> row_ptr,
                                std::vector<std::size_t> col_idx,
                                std::vector<double> vals) {
  if (row_ptr.size() != rows + 1 || row_ptr.front() != 0 ||
      row_ptr.back() != col_idx.size() || col_idx.size() != vals.size()) {
    throw ShapeError("CsrMatrix::from_parts: inconsistent CSR arrays");
  }
  for (std::size_t i = 0; i < rows; ++i) {
    if (row_ptr[i] > row_ptr[i + 1]) {
      throw ShapeError("CsrMatrix::from_parts: row_ptr not monotone");
    }
    for (std::size_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
      if (col_idx[e] >= cols ||
          (e > row_ptr[i] && col_idx[e] <= col_idx[e - 1])) {
        throw ShapeError(
            "CsrMatrix::from_parts: columns must be strictly ascending and "
            "in range within each row");
      }
    }
  }
  CsrMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_ptr_ = std::move(row_ptr);
  out.col_idx_ = std::move(col_idx);
  out.vals_ = std::move(vals);
  out.build_transpose();
  return out;
}

CsrMatrix CsrMatrix::submatrix(const std::vector<std::size_t>& nodes) const {
  constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);
  // Old-index -> new-index map; validates strict ascent/range as it fills.
  std::vector<std::size_t> local(cols_, kAbsent);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] >= rows_ || nodes[i] >= cols_ ||
        (i > 0 && nodes[i] <= nodes[i - 1])) {
      throw ShapeError(
          "CsrMatrix::submatrix: nodes must be strictly ascending and within "
          "range");
    }
    local[nodes[i]] = i;
  }
  const std::size_t n = nodes.size();
  std::vector<std::size_t> sub_ptr(n + 1, 0);
  std::vector<std::size_t> sub_idx;
  std::vector<double> sub_vals;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = nodes[i];
    // Source columns are ascending, and `nodes` is ascending, so the kept
    // entries stay ascending after remapping — no sort needed.
    for (std::size_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const std::size_t c = local[col_idx_[e]];
      if (c == kAbsent) continue;
      sub_idx.push_back(c);
      sub_vals.push_back(vals_[e]);
    }
    sub_ptr[i + 1] = sub_vals.size();
  }
  CsrMatrix out;
  out.rows_ = n;
  out.cols_ = n;
  out.row_ptr_ = std::move(sub_ptr);
  out.col_idx_ = std::move(sub_idx);
  out.vals_ = std::move(sub_vals);
  out.build_transpose();
  return out;
}

// Transpose structure: count per column, prefix-sum, then fill by
// ascending row so each transposed row ends up sorted by original row.
void CsrMatrix::build_transpose() {
  const std::size_t nnz = vals_.size();
  t_row_ptr_.assign(cols_ + 1, 0);
  for (const std::size_t c : col_idx_) ++t_row_ptr_[c + 1];
  for (std::size_t c = 0; c < cols_; ++c) {
    t_row_ptr_[c + 1] += t_row_ptr_[c];
  }
  t_col_idx_.resize(nnz);
  t_vals_.resize(nnz);
  std::vector<std::size_t> cursor(t_row_ptr_.begin(), t_row_ptr_.end() - 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      const std::size_t c = col_idx_[e];
      t_col_idx_[cursor[c]] = i;
      t_vals_[cursor[c]] = vals_[e];
      ++cursor[c];
    }
  }
}

double CsrMatrix::density() const noexcept {
  const std::size_t total = rows_ * cols_;
  if (total == 0) return 0.0;
  return static_cast<double>(nnz()) / static_cast<double>(total);
}

Matrix CsrMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      out(i, col_idx_[e]) = vals_[e];
    }
  }
  return out;
}

Matrix spmm(const CsrMatrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  spmm_accumulate(a, b, out);
  return out;
}

void spmm_accumulate(const CsrMatrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.rows()) throw_spmm_shape("spmm", a, a.cols(), b);
  if (out.rows() != a.rows() || out.cols() != b.cols()) {
    throw std::invalid_argument("spmm_accumulate: output shape mismatch");
  }
  const std::size_t m = b.cols();
  if (a.rows() == 0 || m == 0 || a.nnz() == 0) return;
  const std::size_t* ptr = a.row_ptr_.data();
  const std::size_t* idx = a.col_idx_.data();
  const double* val = a.vals_.data();
  const double* bp = b.data();
  double* cp = out.data();
  for_csr_rows(a.rows(), a.nnz() * m,
               [ptr, idx, val, bp, cp, m](std::size_t i0, std::size_t i1) {
                 spmm_rows(ptr, idx, val, bp, cp, m, i0, i1);
               });
}

Matrix spmm_t(const CsrMatrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  spmm_t_accumulate(a, b, out);
  return out;
}

void spmm_t_accumulate(const CsrMatrix& a, const Matrix& b, Matrix& out) {
  if (a.rows() != b.rows()) throw_spmm_shape("spmm_t", a, a.rows(), b);
  if (out.rows() != a.cols() || out.cols() != b.cols()) {
    throw std::invalid_argument("spmm_t_accumulate: output shape mismatch");
  }
  const std::size_t m = b.cols();
  if (a.cols() == 0 || m == 0 || a.nnz() == 0) return;
  const std::size_t* ptr = a.t_row_ptr_.data();
  const std::size_t* idx = a.t_col_idx_.data();
  const double* val = a.t_vals_.data();
  const double* bp = b.data();
  double* cp = out.data();
  for_csr_rows(a.cols(), a.nnz() * m,
               [ptr, idx, val, bp, cp, m](std::size_t i0, std::size_t i1) {
                 spmm_rows(ptr, idx, val, bp, cp, m, i0, i1);
               });
}

}  // namespace rihgcn
