// Compressed-sparse-row matrix and the SpMM kernels behind the sparse graph
// backend (DESIGN.md §9).
//
// The paper's graphs are thresholded Gaussian kernels (Eq. 8), so the scaled
// Laplacians the Chebyshev GCN multiplies by are mostly zeros. CsrMatrix
// stores only the nonzeros; spmm/spmm_t replace the dense N x N matmul on
// the GCN hot path, cutting the propagation cost from O(N²·F) to O(nnz·F).
//
// Determinism contract (same as the dense kernels, DESIGN.md §8):
//  * spmm/spmm_t partition OUTPUT rows into fixed-size chunks on the global
//    ThreadPool; every output element accumulates its terms in ascending
//    structural order inside exactly one chunk, so results are bit-for-bit
//    identical for any thread count.
//  * Per output element the accumulation order matches the dense kernels'
//    ascending-k order minus the exactly-zero terms. Adding a ±0.0 product
//    to a partial sum that started from +0.0 cannot change its bits (IEEE
//    round-to-nearest never produces -0.0 from x + y unless both halves are
//    -0.0), so for finite inputs spmm(csr(A), B) == matmul(A, B) and
//    spmm_t(csr(A), B) == matmul_at(A, B) EXACTLY when csr was built with
//    tol = 0. The sparse model path is therefore bitwise interchangeable
//    with the dense one — tests/test_csr.cpp enforces this with == across
//    random sparsity patterns and thread counts.
//
// A CsrMatrix also stores its transpose in CSR form (built once at
// construction): the autodiff backward of y = A·x needs Aᵀ·g, and keeping
// the transposed arrays lets spmm_t stay row-partitioned (scattering from
// A's rows instead would make chunk writes overlap).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace rihgcn {

/// Immutable CSR matrix of doubles. Column indices are strictly ascending
/// within each row; empty rows are allowed (row_ptr entries repeat).
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Build from a dense matrix, keeping entries with |v| > tol. tol = 0
  /// keeps exactly the nonzeros (including denormals), which is what the
  /// bitwise-parity contract above requires.
  [[nodiscard]] static CsrMatrix from_dense(const Matrix& dense,
                                            double tol = 0.0);

  /// Build directly from CSR arrays (the sparse graph pipeline constructs
  /// Laplacians without a dense detour). Column indices must be strictly
  /// ascending within each row; validated, throws ShapeError on malformed
  /// input. The transpose structure is built here, as in from_dense.
  [[nodiscard]] static CsrMatrix from_parts(std::size_t rows, std::size_t cols,
                                            std::vector<std::size_t> row_ptr,
                                            std::vector<std::size_t> col_idx,
                                            std::vector<double> vals);

  /// Symmetric sub-matrix extraction: rows AND columns restricted to
  /// `nodes`, which must be strictly ascending and within range. Entry
  /// (i, j) of the result is entry (nodes[i], nodes[j]) of this matrix —
  /// the per-cluster sub-Laplacian builder of the partitioned trainer.
  /// O(|nodes| + nnz of the selected rows).
  [[nodiscard]] CsrMatrix submatrix(const std::vector<std::size_t>& nodes) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  /// Number of stored entries.
  [[nodiscard]] std::size_t nnz() const noexcept { return vals_.size(); }
  /// nnz / (rows*cols); 0 for an empty matrix.
  [[nodiscard]] double density() const noexcept;

  /// Scatter back to a dense matrix (exact values).
  [[nodiscard]] Matrix to_dense() const;

  // Raw structure views (tests, serialization).
  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return vals_;
  }

  friend Matrix spmm(const CsrMatrix& a, const Matrix& b);
  friend Matrix spmm_t(const CsrMatrix& a, const Matrix& b);
  friend void spmm_accumulate(const CsrMatrix& a, const Matrix& b, Matrix& out);
  friend void spmm_t_accumulate(const CsrMatrix& a, const Matrix& b,
                                Matrix& out);

 private:
  /// Fill t_row_ptr_/t_col_idx_/t_vals_ from the forward structure
  /// (count per column, prefix-sum, fill by ascending row).
  void build_transpose();

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // A in CSR.
  std::vector<std::size_t> row_ptr_;  // rows_+1 (empty for the 0x0 matrix)
  std::vector<std::size_t> col_idx_;
  std::vector<double> vals_;
  // Aᵀ in CSR (row r of the transpose = column r of A, entries ascending by
  // A-row). Built eagerly: the graph Laplacians are constructed once per
  // model and reused across every forward/backward pass.
  std::vector<std::size_t> t_row_ptr_;  // cols_+1
  std::vector<std::size_t> t_col_idx_;
  std::vector<double> t_vals_;
};

/// C = A · B with A sparse (rows x k) and B dense (k x m).
[[nodiscard]] Matrix spmm(const CsrMatrix& a, const Matrix& b);
/// C += A · B into a preallocated output; zero `out` first for the plain
/// product. Same per-element accumulation order as spmm.
void spmm_accumulate(const CsrMatrix& a, const Matrix& b, Matrix& out);
/// C = Aᵀ · B without materializing the transpose (uses the stored
/// transposed structure) — the backward kernel for Tape::spmm.
[[nodiscard]] Matrix spmm_t(const CsrMatrix& a, const Matrix& b);
/// C += Aᵀ · B into a preallocated output; zero `out` first for the plain
/// product.
void spmm_t_accumulate(const CsrMatrix& a, const Matrix& b, Matrix& out);

}  // namespace rihgcn
