#include "tensor/fmatrix.hpp"

#include <algorithm>

#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"

namespace rihgcn {

FMatrix FMatrix::from(const Matrix& m) {
  FMatrix out(m.rows(), m.cols());
  const double* src = m.data();
  float* dst = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
  return out;
}

Matrix FMatrix::to_double() const {
  Matrix out(rows_, cols_);
  double* dst = out.data();
  for (std::size_t i = 0; i < data_.size(); ++i) {
    dst[i] = static_cast<double>(data_[i]);
  }
  return out;
}

FCsrMatrix FCsrMatrix::from(const CsrMatrix& a) {
  FCsrMatrix out;
  out.rows_ = a.rows();
  out.cols_ = a.cols();
  out.row_ptr_ = a.row_ptr();
  out.col_idx_ = a.col_idx();
  out.vals_.resize(a.values().size());
  std::transform(a.values().begin(), a.values().end(), out.vals_.begin(),
                 [](double v) { return static_cast<float>(v); });
  return out;
}

FCsrMatrix FCsrMatrix::block_diagonal(const FCsrMatrix& a, std::size_t copies) {
  if (copies == 0) {
    throw ShapeError("FCsrMatrix::block_diagonal: zero copies");
  }
  FCsrMatrix out;
  out.rows_ = a.rows_ * copies;
  out.cols_ = a.cols_ * copies;
  const std::size_t nnz = a.vals_.size();
  out.row_ptr_.resize(out.rows_ + 1);
  out.col_idx_.resize(nnz * copies);
  out.vals_.resize(nnz * copies);
  out.row_ptr_[0] = 0;
  for (std::size_t b = 0; b < copies; ++b) {
    const std::size_t row0 = b * a.rows_;
    const std::size_t col0 = b * a.cols_;
    const std::size_t nz0 = b * nnz;
    for (std::size_t i = 0; i < a.rows_; ++i) {
      out.row_ptr_[row0 + i + 1] = nz0 + a.row_ptr_[i + 1];
    }
    for (std::size_t e = 0; e < nnz; ++e) {
      out.col_idx_[nz0 + e] = col0 + a.col_idx_[e];
    }
    std::copy(a.vals_.begin(), a.vals_.end(), out.vals_.begin() + nz0);
  }
  return out;
}

void fmatmul_accumulate(const FMatrix& a, const FMatrix& b, FMatrix& out) {
  if (a.cols() != b.rows() || out.rows() != a.rows() ||
      out.cols() != b.cols()) {
    throw ShapeError("fmatmul: incompatible shapes");
  }
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const simd::Kernels& kern = simd::active_kernels();
  const float* ap = a.data();
  const float* bp = b.data();
  float* cp = out.data();
  const std::size_t flops = n * k * m;
  if (flops < ParallelTuning::min_matmul_flops ||
      flops < ParallelTuning::serial_cutover_flops ||
      ThreadPool::in_parallel_region()) {
    kern.smatmul_rows(ap, bp, cp, k, m, 0, n);
    return;
  }
  ThreadPool::global().parallel_for(
      0, n, ParallelTuning::matmul_row_grain,
      [&](std::size_t i0, std::size_t i1) {
        kern.smatmul_rows(ap, bp, cp, k, m, i0, i1);
      });
}

FMatrix fmatmul(const FMatrix& a, const FMatrix& b) {
  FMatrix out(a.rows(), b.cols());
  fmatmul_accumulate(a, b, out);
  return out;
}

void fspmm_into(const FCsrMatrix& a, const FMatrix& b, FMatrix& out) {
  if (a.cols() != b.rows() || out.rows() != a.rows() ||
      out.cols() != b.cols()) {
    throw ShapeError("fspmm: incompatible shapes");
  }
  const std::size_t n = a.rows(), m = b.cols();
  if (n == 0 || m == 0) return;
  std::fill(out.data(), out.data() + out.size(), 0.0f);
  const simd::Kernels& kern = simd::active_kernels();
  const float* bp = b.data();
  float* cp = out.data();
  const std::size_t* ptr = a.row_ptr_.data();
  const std::size_t* idx = a.col_idx_.data();
  const float* val = a.vals_.data();
  const auto row_body = [&](std::size_t i0, std::size_t i1) {
    kern.sspmm_rows(ptr, idx, val, bp, cp, m, i0, i1);
  };
  const std::size_t work = a.nnz() * m;
  if (work < ParallelTuning::min_matmul_flops ||
      work < ParallelTuning::serial_cutover_flops ||
      ThreadPool::in_parallel_region()) {
    row_body(0, n);
    return;
  }
  ThreadPool::global().parallel_for(0, n, ParallelTuning::matmul_row_grain,
                                    row_body);
}

FMatrix fspmm(const FCsrMatrix& a, const FMatrix& b) {
  FMatrix out(a.rows(), b.cols());
  fspmm_into(a, b, out);
  return out;
}

}  // namespace rihgcn
