// Single-precision inference kernels for the serving side (DESIGN.md §12).
//
// Training stays double end to end — FMatrix/FCsrMatrix exist so a serving
// replica can hold converted weights at half the memory bandwidth and run
// the f32 SIMD kernels (FMA allowed). The contract here is ULP-BOUNDED, not
// bitwise: tests/test_kernel_conformance.cpp checks every f32 product
// against the f64 reference within (k+2)·eps_f32·Σ|a||b| per element.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/csr.hpp"
#include "tensor/matrix.hpp"

namespace rihgcn {

/// Dense row-major matrix of floats. Deliberately minimal: storage, shape,
/// and conversion to/from the double Matrix — all arithmetic lives in the
/// free kernels below.
class FMatrix {
 public:
  FMatrix() = default;
  FMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Narrowing conversion from the training-precision Matrix.
  [[nodiscard]] static FMatrix from(const Matrix& m);
  /// Widen back to double (exact — every float is a double).
  [[nodiscard]] Matrix to_double() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Immutable CSR matrix of floats, converted once from the training-side
/// CsrMatrix (graph Laplacians are built once per model, so serving pays the
/// narrowing conversion once).
class FCsrMatrix {
 public:
  FCsrMatrix() = default;
  [[nodiscard]] static FCsrMatrix from(const CsrMatrix& a);
  /// Block-diagonal replication: `copies` copies of `a` along the diagonal
  /// ((copies·rows) x (copies·cols)). Built once per compiled inference plan
  /// so a batched SpMM over B row-stacked windows is a single kernel call;
  /// because block b's rows only reference block b's columns, the row prefix
  /// [0, b·rows) of the full matrix serves any batch size b <= copies.
  [[nodiscard]] static FCsrMatrix block_diagonal(const FCsrMatrix& a,
                                                 std::size_t copies);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return vals_.size(); }

  // Raw CSR views for callers driving the simd::Kernels table directly
  // (the inference engine's batched SpMM operates on a row prefix, which
  // fspmm_into's whole-matrix contract cannot express).
  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<float>& values() const noexcept {
    return vals_;
  }

  friend void fspmm_into(const FCsrMatrix& a, const FMatrix& b, FMatrix& out);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<float> vals_;
};

/// C = A · B, float. Row-partitioned on the global ThreadPool like the
/// double kernels (same fixed-chunk rule, so f32 results are also
/// thread-count invariant — the ULP bound is against f64, not across runs).
[[nodiscard]] FMatrix fmatmul(const FMatrix& a, const FMatrix& b);
/// C += A · B into a preallocated output.
void fmatmul_accumulate(const FMatrix& a, const FMatrix& b, FMatrix& out);

/// C = A · B with A sparse.
[[nodiscard]] FMatrix fspmm(const FCsrMatrix& a, const FMatrix& b);
/// C = A · B into a preallocated output (zeroed first).
void fspmm_into(const FCsrMatrix& a, const FMatrix& b, FMatrix& out);

}  // namespace rihgcn
