#include "tensor/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace rihgcn {

Matrix solve_linear(Matrix a, Matrix b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.rows() != n) {
    throw ShapeError("solve_linear: incompatible shapes");
  }
  const std::size_t m = b.cols();
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-300) {
      throw std::runtime_error("solve_linear: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      for (std::size_t c = 0; c < m; ++c) std::swap(b(col, c), b(pivot, c));
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      for (std::size_t c = 0; c < m; ++c) b(r, c) -= f * b(col, c);
    }
  }
  // Back substitution.
  Matrix x(n, m);
  for (std::size_t ri = n; ri-- > 0;) {
    for (std::size_t c = 0; c < m; ++c) {
      double s = b(ri, c);
      for (std::size_t k = ri + 1; k < n; ++k) s -= a(ri, k) * x(k, c);
      x(ri, c) = s / a(ri, ri);
    }
  }
  return x;
}

Matrix ridge_least_squares(const Matrix& a, const Matrix& b, double ridge) {
  if (a.rows() != b.rows()) {
    throw ShapeError("ridge_least_squares: row mismatch");
  }
  Matrix ata = matmul_at(a, a);
  for (std::size_t i = 0; i < ata.rows(); ++i) ata(i, i) += ridge;
  Matrix atb = matmul_at(a, b);
  return solve_linear(std::move(ata), std::move(atb));
}

}  // namespace rihgcn
