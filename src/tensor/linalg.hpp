// Small dense linear-algebra routines used by the classical baselines
// (VAR least squares, ALS matrix/tensor factorization): Gaussian elimination
// with partial pivoting and a ridge-regularized least-squares solver.
#pragma once

#include "tensor/matrix.hpp"

namespace rihgcn {

/// Solve A X = B for X (A square, n x n; B n x m) by Gaussian elimination
/// with partial pivoting. Throws std::runtime_error on (numerically)
/// singular A.
[[nodiscard]] Matrix solve_linear(Matrix a, Matrix b);

/// Ridge least squares: argmin_X ||A X - B||^2 + ridge ||X||^2, solved via
/// the normal equations (AᵀA + ridge I) X = AᵀB. A: (s x n), B: (s x m).
[[nodiscard]] Matrix ridge_least_squares(const Matrix& a, const Matrix& b,
                                         double ridge = 1e-6);

}  // namespace rihgcn
