#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>

#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"

namespace rihgcn {

namespace {

[[noreturn]] void throw_shape(const std::string& op, const Matrix& a,
                              const Matrix& b) {
  std::ostringstream os;
  os << op << ": incompatible shapes (" << a.rows() << "x" << a.cols()
     << ") vs (" << b.rows() << "x" << b.cols() << ")";
  throw ShapeError(os.str());
}

// Elementwise dispatch: inline below the tuning threshold, chunked onto the
// global pool above it. Each element is touched by exactly one chunk, so
// results never depend on the thread count.
template <typename Body>
void for_elems(std::size_t n, Body&& body) {
  if (n < ParallelTuning::min_elems) {
    body(std::size_t{0}, n);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() <= 1) {
    body(std::size_t{0}, n);
    return;
  }
  pool.parallel_for(0, n, ParallelTuning::elem_grain,
                    ThreadPool::RangeBody(std::forward<Body>(body)));
}

// Row-partitioned dispatch for the matmul family. `flops` ~ n*k*m decides
// whether pool dispatch is worth it; the row grain is fixed so partition
// boundaries are thread-count independent. Jobs under the serial cut-over
// run inline regardless — small-N dispatch costs more than it buys (see
// ParallelTuning::serial_cutover_flops).
template <typename Body>
void for_rows(std::size_t rows, std::size_t flops, Body&& body) {
  if (flops < ParallelTuning::min_matmul_flops ||
      flops < ParallelTuning::serial_cutover_flops) {
    body(std::size_t{0}, rows);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  if (pool.num_threads() <= 1) {
    body(std::size_t{0}, rows);
    return;
  }
  pool.parallel_for(0, rows, ParallelTuning::matmul_row_grain,
                    ThreadPool::RangeBody(std::forward<Body>(body)));
}

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw ShapeError("Matrix initializer rows have unequal lengths");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    throw ShapeError("Matrix flat-buffer constructor: size mismatch");
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw ShapeError("Matrix::at out of range");
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw ShapeError("Matrix::at out of range");
  }
  return (*this)(r, c);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::constant(std::size_t rows, std::size_t cols, double value) {
  return Matrix(rows, cols, value);
}

Matrix Matrix::row_vector(const std::vector<double>& v) {
  return Matrix(1, v.size(), v);
}

Matrix Matrix::col_vector(const std::vector<double>& v) {
  return Matrix(v.size(), 1, v);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (!same_shape(other)) throw_shape("operator+=", *this, other);
  double* dst = data_.data();
  const double* src = other.data_.data();
  const simd::Kernels& kern = simd::active_kernels();
  for_elems(data_.size(), [dst, src, &kern](std::size_t b, std::size_t e) {
    kern.add(dst + b, src + b, e - b);
  });
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (!same_shape(other)) throw_shape("operator-=", *this, other);
  double* dst = data_.data();
  const double* src = other.data_.data();
  const simd::Kernels& kern = simd::active_kernels();
  for_elems(data_.size(), [dst, src, &kern](std::size_t b, std::size_t e) {
    kern.sub(dst + b, src + b, e - b);
  });
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  double* dst = data_.data();
  const simd::Kernels& kern = simd::active_kernels();
  for_elems(data_.size(), [dst, s, &kern](std::size_t b, std::size_t e) {
    kern.scale(dst + b, s, e - b);
  });
  return *this;
}

Matrix& Matrix::hadamard_inplace(const Matrix& other) {
  if (!same_shape(other)) throw_shape("hadamard_inplace", *this, other);
  double* dst = data_.data();
  const double* src = other.data_.data();
  const simd::Kernels& kern = simd::active_kernels();
  for_elems(data_.size(), [dst, src, &kern](std::size_t b, std::size_t e) {
    kern.mul(dst + b, src + b, e - b);
  });
  return *this;
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::apply(const std::function<double(double)>& f) {
  double* dst = data_.data();
  for_elems(data_.size(), [dst, &f](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) dst[i] = f(dst[i]);
  });
}

Matrix Matrix::row(std::size_t r) const { return slice_rows(r, r + 1); }

Matrix Matrix::col(std::size_t c) const { return slice_cols(c, c + 1); }

Matrix Matrix::slice_cols(std::size_t c0, std::size_t c1) const {
  if (c0 > c1 || c1 > cols_) throw ShapeError("slice_cols: bad range");
  Matrix out(rows_, c1 - c0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = c0; c < c1; ++c) out(r, c - c0) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::slice_rows(std::size_t r0, std::size_t r1) const {
  if (r0 > r1 || r1 > rows_) throw ShapeError("slice_rows: bad range");
  Matrix out(r1 - r0, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(r0 * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(r1 * cols_),
            out.data_.begin());
  return out;
}

void Matrix::set_cols(std::size_t c0, const Matrix& src) {
  if (src.rows_ != rows_ || c0 + src.cols_ > cols_) {
    throw ShapeError("set_cols: source does not fit");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < src.cols_; ++c) {
      (*this)(r, c0 + c) = src(r, c);
    }
  }
}

void Matrix::set_rows(std::size_t r0, const Matrix& src) {
  if (src.cols_ != cols_ || r0 + src.rows_ > rows_) {
    throw ShapeError("set_rows: source does not fit");
  }
  std::copy(src.data_.begin(), src.data_.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r0 * cols_));
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  if (data_.size() < ParallelTuning::min_elems ||
      ThreadPool::global().num_threads() <= 1) {
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    }
    return out;
  }
  // Each source row scatters into one output column: chunks of rows write
  // disjoint columns, so the partition (fixed by shape, not thread count)
  // cannot affect the result.
  const std::size_t grain =
      std::max<std::size_t>(1, ParallelTuning::elem_grain /
                                   std::max<std::size_t>(1, cols_));
  ThreadPool::global().parallel_for(
      0, rows_, grain, [this, &out](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
          for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
        }
      });
  return out;
}

double Matrix::sum() const noexcept {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Matrix::mean() const {
  if (data_.empty()) throw ShapeError("mean of empty matrix");
  return sum() / static_cast<double>(data_.size());
}

double Matrix::min() const {
  if (data_.empty()) throw ShapeError("min of empty matrix");
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::max() const {
  if (data_.empty()) throw ShapeError("max of empty matrix");
  return *std::max_element(data_.begin(), data_.end());
}

double Matrix::norm() const noexcept {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::abs_max() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

bool Matrix::has_non_finite() const noexcept {
  return std::any_of(data_.begin(), data_.end(),
                     [](double x) { return !std::isfinite(x); });
}

Matrix Matrix::col_mean() const {
  if (rows_ == 0) throw ShapeError("col_mean of empty matrix");
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(0, c) += (*this)(r, c);
  }
  out *= 1.0 / static_cast<double>(rows_);
  return out;
}

Matrix Matrix::col_std() const {
  Matrix mu = col_mean();
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double d = (*this)(r, c) - mu(0, c);
      out(0, c) += d * d;
    }
  }
  for (std::size_t c = 0; c < cols_; ++c) {
    out(0, c) = std::sqrt(out(0, c) / static_cast<double>(rows_));
  }
  return out;
}

Matrix Matrix::row_sum() const {
  Matrix out(rows_, 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(r, 0) += (*this)(r, c);
  }
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  matmul_accumulate(a, b, out);
  return out;
}

void matmul_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.rows()) {
    std::ostringstream os;
    os << "matmul: inner dimensions differ: A(" << a.rows() << "x" << a.cols()
       << ") * B(" << b.rows() << "x" << b.cols() << ")";
    throw ShapeError(os.str());
  }
  if (out.rows() != a.rows() || out.cols() != b.cols()) {
    std::ostringstream os;
    os << "matmul_accumulate: out(" << out.rows() << "x" << out.cols()
       << ") cannot hold A(" << a.rows() << "x" << a.cols() << ") * B("
       << b.rows() << "x" << b.cols() << ") = (" << a.rows() << "x"
       << b.cols() << ")";
    throw ShapeError(os.str());
  }
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  const std::size_t m = b.cols();
  if (n == 0 || k == 0 || m == 0) return;
  const double* ap = a.data();
  const double* bp = b.data();
  double* cp = out.data();
  // The blocked row kernel lives in the SIMD dispatch table (tensor/simd.hpp);
  // scalar and AVX2 variants produce identical bits by contract.
  const simd::Kernels& kern = simd::active_kernels();
  for_rows(n, n * k * m,
           [ap, bp, cp, k, m, &kern](std::size_t i0, std::size_t i1) {
             kern.matmul_rows(ap, bp, cp, k, m, i0, i1);
           });
}

namespace detail {

void matmul_naive(const Matrix& a, const Matrix& b, Matrix& out) {
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  const std::size_t m = b.cols();
  const double* ap = a.data();
  const double* bp = b.data();
  double* cp = out.data();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // B and C, which is the cache-friendly order for row-major storage.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = ap[i * k + kk];
      if (aik == 0.0) continue;
      const double* brow = bp + kk * m;
      double* crow = cp + i * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace detail

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  matmul_bt_into(a, b, out);
  return out;
}

void matmul_bt_into(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.cols()) throw_shape("matmul_bt", a, b);
  if (out.rows() != a.rows() || out.cols() != b.rows()) {
    throw std::invalid_argument("matmul_bt_into: output shape mismatch");
  }
  const std::size_t k = a.cols();
  const std::size_t rows = a.rows();
  const std::size_t cols = b.rows();
  const double* ap = a.data();
  const double* bp = b.data();
  double* op = out.data();
  // Row-partitioned; each dot product accumulates k-terms in ascending
  // order with a single accumulator, matching the serial kernel exactly.
  // Stays scalar even under SIMD dispatch: vectorizing over k would split
  // the single accumulator into lanes (reassociation), breaking the bitwise
  // contract. The matmul/matmul_at/spmm hot paths don't have this shape.
  for_rows(rows, rows * cols * k,
           [ap, bp, op, k, cols](std::size_t i0, std::size_t i1) {
             for (std::size_t i = i0; i < i1; ++i) {
               const double* arow = ap + i * k;
               for (std::size_t j = 0; j < cols; ++j) {
                 const double* brow = bp + j * k;
                 double s = 0.0;
                 for (std::size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
                 op[i * cols + j] = s;
               }
             }
           });
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  matmul_at_accumulate(a, b, out);
  return out;
}

void matmul_at_accumulate(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.rows() != b.rows()) throw_shape("matmul_at", a, b);
  if (out.rows() != a.cols() || out.cols() != b.cols()) {
    throw std::invalid_argument("matmul_at_accumulate: output shape mismatch");
  }
  const std::size_t n = a.rows();
  const std::size_t p = a.cols();
  const std::size_t m = b.cols();
  const double* ap = a.data();
  const double* bp = b.data();
  double* op = out.data();
  // Partitioned over output rows i (columns of A); the reduction dimension r
  // stays innermost-ascending per element, so any row partition gives the
  // same bits as the serial r-outer seed kernel. The row update is the SIMD
  // axpy — lanes hold independent j-columns, so vectorizing keeps bits.
  const simd::Kernels& kern = simd::active_kernels();
  for_rows(p, n * p * m,
           [ap, bp, op, n, p, m, &kern](std::size_t i0, std::size_t i1) {
             for (std::size_t i = i0; i < i1; ++i) {
               double* orow = op + i * m;
               for (std::size_t r = 0; r < n; ++r) {
                 const double av = ap[r * p + i];
                 if (av == 0.0) continue;
                 kern.axpy(orow, av, bp + r * m, m);
               }
             }
           });
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, double s) {
  Matrix out = a;
  out *= s;
  return out;
}

Matrix operator*(double s, const Matrix& a) { return a * s; }

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.hadamard_inplace(b);
  return out;
}

Matrix map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix out = a;
  out.apply(f);
  return out;
}

Matrix zip(const Matrix& a, const Matrix& b,
           const std::function<double(double, double)>& f) {
  if (!a.same_shape(b)) throw_shape("zip", a, b);
  Matrix out(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  for_elems(a.size(), [pa, pb, po, &f](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) po[i] = f(pa[i], pb[i]);
  });
  return out;
}

Matrix add_row_broadcast(const Matrix& a, const Matrix& row) {
  if (row.rows() != 1 || row.cols() != a.cols()) {
    throw_shape("add_row_broadcast", a, row);
  }
  Matrix out = a;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) out(r, c) += row(0, c);
  }
  return out;
}

Matrix hcat(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) throw_shape("hcat", a, b);
  Matrix out(a.rows(), a.cols() + b.cols());
  out.set_cols(0, a);
  out.set_cols(a.cols(), b);
  return out;
}

Matrix vcat(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) throw_shape("vcat", a, b);
  Matrix out(a.rows() + b.rows(), a.cols());
  out.set_rows(0, a);
  out.set_rows(a.rows(), b);
  return out;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) throw_shape("max_abs_diff", a, b);
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

bool allclose(const Matrix& a, const Matrix& b, double tol) {
  return a.same_shape(b) && max_abs_diff(a, b) <= tol;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")[\n";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << "  ";
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << "\n";
  }
  return os << "]";
}

}  // namespace rihgcn
