// Dense row-major matrix of doubles: the numeric workhorse underneath the
// autodiff tape, the neural-network layers and the classical baselines.
//
// Design notes
//  * Value semantics: a Matrix owns its storage; copies are deep. All model
//    state (parameters, activations, gradients) is built from Matrix values,
//    which keeps ownership trivial (C++ Core Guidelines R.1, C.20).
//  * Shapes are checked on every binary operation; mismatches throw
//    ShapeError. Silent broadcasting bugs are the classic failure mode of
//    hand-rolled DL stacks, so we make every shape rule explicit.
//  * double precision throughout: problem sizes here are small (tens of
//    nodes, hundreds of timesteps), and double makes the numerical gradient
//    checks in tests/autodiff meaningful to ~1e-6 relative error.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace rihgcn {

/// Thrown when matrix dimensions are incompatible with the requested op.
class ShapeError : public std::runtime_error {
 public:
  explicit ShapeError(const std::string& what) : std::runtime_error(what) {}
};

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Build from a flat row-major buffer (size must equal rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (tests and debugging).
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::vector<double>& storage() noexcept { return data_; }
  [[nodiscard]] const std::vector<double>& storage() const noexcept {
    return data_;
  }

  [[nodiscard]] bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Factory: identity matrix.
  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Factory: every element = value.
  [[nodiscard]] static Matrix constant(std::size_t rows, std::size_t cols,
                                       double value);
  /// Factory: single row from a vector.
  [[nodiscard]] static Matrix row_vector(const std::vector<double>& v);
  /// Factory: single column from a vector.
  [[nodiscard]] static Matrix col_vector(const std::vector<double>& v);

  // ---- In-place mutators -------------------------------------------------
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  /// Elementwise (Hadamard) in-place product.
  Matrix& hadamard_inplace(const Matrix& other);
  /// Set every element to `value`.
  void fill(double value);
  /// Apply `f` to every element in place. For large matrices `f` is invoked
  /// from the worker threads of the global ThreadPool, so it must be safe to
  /// call concurrently (every callsite uses stateless lambdas).
  void apply(const std::function<double(double)>& f);

  // ---- Views / slices (deep copies — storage is always owned) ------------
  [[nodiscard]] Matrix row(std::size_t r) const;
  [[nodiscard]] Matrix col(std::size_t c) const;
  /// Columns [c0, c1) as a new rows x (c1-c0) matrix.
  [[nodiscard]] Matrix slice_cols(std::size_t c0, std::size_t c1) const;
  /// Rows [r0, r1) as a new (r1-r0) x cols matrix.
  [[nodiscard]] Matrix slice_rows(std::size_t r0, std::size_t r1) const;
  /// Write `src` into columns starting at c0 (shapes must fit).
  void set_cols(std::size_t c0, const Matrix& src);
  /// Write `src` into rows starting at r0 (shapes must fit).
  void set_rows(std::size_t r0, const Matrix& src);

  [[nodiscard]] Matrix transposed() const;

  // ---- Reductions ---------------------------------------------------------
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Frobenius norm.
  [[nodiscard]] double norm() const noexcept;
  /// Largest |element|.
  [[nodiscard]] double abs_max() const noexcept;
  /// true if any element is NaN or +/-inf.
  [[nodiscard]] bool has_non_finite() const noexcept;
  /// Per-column mean as a 1 x cols matrix.
  [[nodiscard]] Matrix col_mean() const;
  /// Per-column (population) standard deviation as a 1 x cols matrix.
  [[nodiscard]] Matrix col_std() const;
  /// Per-row sum as a rows x 1 matrix.
  [[nodiscard]] Matrix row_sum() const;

  friend bool operator==(const Matrix& a, const Matrix& b) noexcept {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- Free-function kernels -------------------------------------------------
//
// The matmul family and the large-size elementwise/transpose paths run on
// the global ThreadPool (tensor/parallel.hpp). Partitioning is by output
// rows with fixed chunk boundaries and every output element keeps the exact
// serial accumulation order (ascending k), so results are bit-for-bit
// identical for any thread count — see DESIGN.md §8.

/// C = A * B (throws ShapeError unless A.cols == B.rows).
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);
/// C += A * B into a preallocated output (avoids allocation in hot loops).
void matmul_accumulate(const Matrix& a, const Matrix& b, Matrix& out);

namespace detail {
/// The seed single-threaded i-k-j kernel, kept verbatim as the ground-truth
/// reference for the parallel backend's property tests and as the baseline
/// in bench_micro. C += A * B; shapes must already agree.
void matmul_naive(const Matrix& a, const Matrix& b, Matrix& out);
}  // namespace detail
/// C = A * B^T without materializing the transpose.
[[nodiscard]] Matrix matmul_bt(const Matrix& a, const Matrix& b);
/// C = A * B^T into a preallocated output. Every element is overwritten
/// (single-accumulator dot products), so `out` need not be zeroed.
void matmul_bt_into(const Matrix& a, const Matrix& b, Matrix& out);
/// C = A^T * B without materializing the transpose.
[[nodiscard]] Matrix matmul_at(const Matrix& a, const Matrix& b);
/// C += A^T * B into a preallocated output; zero `out` first for the plain
/// product. Same ascending-r accumulation order as matmul_at.
void matmul_at_accumulate(const Matrix& a, const Matrix& b, Matrix& out);

[[nodiscard]] Matrix operator+(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix operator-(const Matrix& a, const Matrix& b);
[[nodiscard]] Matrix operator*(const Matrix& a, double s);
[[nodiscard]] Matrix operator*(double s, const Matrix& a);

/// Elementwise (Hadamard) product.
[[nodiscard]] Matrix hadamard(const Matrix& a, const Matrix& b);
/// Elementwise map: out[i] = f(a[i]).
[[nodiscard]] Matrix map(const Matrix& a,
                         const std::function<double(double)>& f);
/// Elementwise zip: out[i] = f(a[i], b[i]).
[[nodiscard]] Matrix zip(const Matrix& a, const Matrix& b,
                         const std::function<double(double, double)>& f);
/// Add a 1 x cols row vector to every row of `a`.
[[nodiscard]] Matrix add_row_broadcast(const Matrix& a, const Matrix& row);
/// Horizontal concatenation [a | b].
[[nodiscard]] Matrix hcat(const Matrix& a, const Matrix& b);
/// Vertical concatenation [a ; b].
[[nodiscard]] Matrix vcat(const Matrix& a, const Matrix& b);

/// max |a - b| over all elements; throws on shape mismatch.
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);
/// true if all elements agree within `tol`.
[[nodiscard]] bool allclose(const Matrix& a, const Matrix& b,
                            double tol = 1e-9);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace rihgcn
