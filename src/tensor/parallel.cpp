#include "tensor/parallel.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>

namespace rihgcn {

namespace {

// Depth of chunk/task execution on this thread; > 0 means a parallel_for
// issued now must run inline (reentrancy guard).
thread_local int tl_region_depth = 0;

struct ScopedRegion {
  ScopedRegion() noexcept { ++tl_region_depth; }
  ~ScopedRegion() noexcept { --tl_region_depth; }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;
};

}  // namespace

// A synchronous chunked-range job. Lives on the issuing thread's stack; the
// issuer removes it from the queue and waits for done_chunks == num_chunks
// before returning, so the pointer stays valid for every thread that can
// still dereference it (all dereferences happen under the pool mutex or on a
// chunk claimed before the issuer finished waiting).
struct ThreadPool::RangeJob {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::size_t done_chunks = 0;  // guarded by pool mutex
  const RangeBody* body = nullptr;
  std::exception_ptr error;  // first error only; guarded by pool mutex
};

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(std::max<std::size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
    tasks_.clear();  // pending fire-and-forget work is discarded
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::in_parallel_region() noexcept { return tl_region_depth > 0; }

void ThreadPool::run_chunk(RangeJob& job, std::size_t chunk) {
  std::exception_ptr err;
  {
    ScopedRegion region;
    try {
      const std::size_t b = job.begin + chunk * job.grain;
      (*job.body)(b, std::min(job.end, b + job.grain));
    } catch (...) {
      err = std::current_exception();
    }
  }
  std::lock_guard<std::mutex> lk(mutex_);
  if (err && !job.error) job.error = err;
  if (++job.done_chunks == job.num_chunks) done_cv_.notify_all();
}

void ThreadPool::run_serial(std::size_t begin, std::size_t end,
                            std::size_t grain, const RangeBody& body) {
  // Same fixed chunk boundaries as the threaded path, executed in order.
  ScopedRegion region;
  for (std::size_t b = begin; b < end; b += grain) {
    body(b, std::min(end, b + grain));
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain, const RangeBody& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t num_chunks = (end - begin + grain - 1) / grain;
  if (workers_.empty() || num_chunks == 1 || in_parallel_region()) {
    run_serial(begin, end, grain, body);
    return;
  }

  RangeJob job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.num_chunks = num_chunks;
  job.body = &body;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    jobs_.push_back(&job);
  }
  work_cv_.notify_all();

  // The caller participates until every chunk is claimed...
  for (;;) {
    const std::size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    run_chunk(job, c);
  }
  // ...then waits for straggler chunks still running on workers.
  std::unique_lock<std::mutex> lk(mutex_);
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (*it == &job) {
      jobs_.erase(it);
      break;
    }
  }
  done_cv_.wait(lk, [&] { return job.done_chunks == job.num_chunks; });
  if (job.error) std::rethrow_exception(job.error);
}

double ThreadPool::parallel_reduce(std::size_t begin, std::size_t end,
                                   std::size_t grain, double init,
                                   const ChunkReducer& chunk_fn) {
  if (end <= begin) return init;
  if (grain == 0) grain = 1;
  const std::size_t num_chunks = (end - begin + grain - 1) / grain;
  std::vector<double> partials(num_chunks, 0.0);
  parallel_for(begin, end, grain, [&](std::size_t b, std::size_t e) {
    partials[(b - begin) / grain] = chunk_fn(b, e);
  });
  double acc = init;
  for (const double p : partials) acc += p;  // ascending chunk order
  return acc;
}

void ThreadPool::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    ScopedRegion region;
    try {
      task();
    } catch (...) {
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (stop_) return;
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mutex_);
  idle_cv_.wait(lk, [&] { return tasks_.empty() && active_tasks_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || !jobs_.empty() || !tasks_.empty(); });
    if (stop_) return;
    if (!jobs_.empty()) {
      RangeJob* job = jobs_.front();
      const std::size_t c =
          job->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job->num_chunks) {
        // Exhausted: drop it so we don't spin; the issuer also erases it.
        if (!jobs_.empty() && jobs_.front() == job) jobs_.pop_front();
        continue;
      }
      lk.unlock();
      run_chunk(*job, c);
      lk.lock();
      continue;
    }
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    ++active_tasks_;
    lk.unlock();
    {
      ScopedRegion region;
      try {
        task();
      } catch (...) {
      }
    }
    lk.lock();
    --active_tasks_;
    if (tasks_.empty() && active_tasks_ == 0) idle_cv_.notify_all();
  }
}

// ---- Global pool -----------------------------------------------------------

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool_owner;
std::atomic<ThreadPool*> g_pool{nullptr};

}  // namespace

namespace {

// Oversubscribing the machine is never a win for these compute-bound
// kernels: with more workers than cores the chunked loops just pay context
// switches (BENCH_micro.json showed cheb_dense N=1024 at 15.1 ms with 4
// requested threads vs 8.8 ms with 1 on a single-core host). Requests for
// the shared global pool are therefore clamped to the hardware; direct
// ThreadPool(n) construction stays uncapped so tests can still exercise
// real multi-worker pools.
std::size_t capped_global_size(std::size_t requested) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cap = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  if (requested == 0) requested = 1;
  return requested < cap ? requested : cap;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  ThreadPool* p = g_pool.load(std::memory_order_acquire);
  if (p != nullptr) return *p;
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  if (!g_pool_owner) {
    g_pool_owner =
        std::make_unique<ThreadPool>(capped_global_size(threads_from_env()));
    g_pool.store(g_pool_owner.get(), std::memory_order_release);
  }
  return *g_pool_owner;
}

void ThreadPool::set_global_threads(std::size_t n) {
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  g_pool.store(nullptr, std::memory_order_release);
  g_pool_owner.reset();  // joins the old pool's workers
  g_pool_owner = std::make_unique<ThreadPool>(
      capped_global_size(n == 0 ? threads_from_env() : n));
  g_pool.store(g_pool_owner.get(), std::memory_order_release);
}

std::size_t ThreadPool::threads_from_env() {
  const char* env = std::getenv("RIHGCN_THREADS");
  if (env == nullptr || *env == '\0') {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  // A set-but-invalid value is a configuration error; silently falling back
  // to hardware_concurrency made "RIHGCN_THREADS=O4" run 64-wide on a big
  // box without anyone noticing.
  char* endp = nullptr;
  errno = 0;
  const unsigned long v = std::strtoul(env, &endp, 10);
  if (endp == env || *endp != '\0' || errno == ERANGE || v == 0 || v > 1024) {
    throw std::runtime_error(
        std::string("RIHGCN_THREADS must be an integer in [1, 1024], got '") +
        env + "'");
  }
  return static_cast<std::size_t>(v);
}

// ---- Tuning ---------------------------------------------------------------

namespace {
// Coarsened from the seed values (32k/16k elems, 256k flops, 8 rows) after
// BENCH_micro.json showed dispatch overhead eating the win at small N: a
// chunk now carries enough work (~tens of µs) that claiming it costs a
// fraction of running it, and small matrices stay on the serial path.
constexpr std::size_t kDefaultMinElems = std::size_t{1} << 16;
constexpr std::size_t kDefaultElemGrain = std::size_t{1} << 15;
constexpr std::size_t kDefaultMinMatmulFlops = std::size_t{1} << 19;
constexpr std::size_t kDefaultMatmulRowGrain = 16;
constexpr std::size_t kDefaultSerialCutoverFlops = std::size_t{1} << 22;
}  // namespace

std::size_t ParallelTuning::min_elems = kDefaultMinElems;
std::size_t ParallelTuning::elem_grain = kDefaultElemGrain;
std::size_t ParallelTuning::min_matmul_flops = kDefaultMinMatmulFlops;
std::size_t ParallelTuning::matmul_row_grain = kDefaultMatmulRowGrain;
std::size_t ParallelTuning::serial_cutover_flops = kDefaultSerialCutoverFlops;

void ParallelTuning::reset() noexcept {
  min_elems = kDefaultMinElems;
  elem_grain = kDefaultElemGrain;
  min_matmul_flops = kDefaultMinMatmulFlops;
  matmul_row_grain = kDefaultMatmulRowGrain;
  serial_cutover_flops = kDefaultSerialCutoverFlops;
}

}  // namespace rihgcn
