// Fixed-size thread pool and deterministic data-parallel primitives for the
// tensor kernels (blocked matmul, elementwise ops, transpose) and the
// autodiff tape's backward loops.
//
// Determinism contract (DESIGN.md §8 "Parallel execution model")
//  * parallel_for partitions [begin, end) into chunks of `grain` elements.
//    Chunk boundaries depend only on (begin, end, grain) — never on the
//    thread count or on scheduling. Each chunk runs on exactly one thread.
//  * Kernel bodies write disjoint outputs and each output element is
//    produced entirely inside one chunk, so results are bit-for-bit
//    identical for every thread count, including fully serial execution.
//  * parallel_reduce combines per-chunk partial results strictly in
//    ascending chunk order, so floating-point rounding does not depend on
//    the thread count either (it does depend on `grain`, which is fixed).
//
// Sizing: the process-wide pool (ThreadPool::global()) reads the
// RIHGCN_THREADS environment variable once at first use; unset falls back to
// std::thread::hardware_concurrency(), while a set-but-invalid value throws
// (see threads_from_env). A pool of size N spawns N-1 workers — the thread
// that calls parallel_for participates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rihgcn {

/// Work-stealing-free fixed-size thread pool. parallel_for/parallel_reduce
/// are synchronous (they return when every chunk has run); enqueue() is
/// fire-and-forget for independent background tasks.
///
/// Thread safety: parallel_for may be called concurrently from several
/// non-pool threads (each call is an independent job; the trainer's
/// data-parallel workers rely on this). A parallel_for issued from inside a
/// running chunk or task executes inline and serially (reentrancy guard) —
/// nesting never deadlocks and never oversubscribes.
class ThreadPool {
 public:
  /// `num_threads` == total concurrency (callers participate); a pool of
  /// size <= 1 spawns no workers and runs everything inline.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return num_threads_;
  }

  /// Body receives a half-open chunk [chunk_begin, chunk_end).
  using RangeBody = std::function<void(std::size_t, std::size_t)>;

  /// Run `body` over [begin, end) in chunks of `grain` (see the determinism
  /// contract above). The first exception thrown by any chunk is rethrown
  /// here after all claimed chunks finish; remaining chunks still run.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const RangeBody& body);

  /// chunk_fn maps a chunk [b, e) to its partial result; partials are
  /// combined as ((init + r0) + r1) + ... in ascending chunk order.
  using ChunkReducer = std::function<double(std::size_t, std::size_t)>;
  [[nodiscard]] double parallel_reduce(std::size_t begin, std::size_t end,
                                       std::size_t grain, double init,
                                       const ChunkReducer& chunk_fn);

  /// Fire-and-forget task. Tasks still queued when the pool is destroyed
  /// are discarded (tasks already running are completed first); exceptions
  /// escaping a task are swallowed. Runs inline if the pool has no workers.
  void enqueue(std::function<void()> task);
  /// Block until the enqueue() queue is empty and no task is running.
  void wait_idle();

  /// True while the calling thread is executing a chunk body or an enqueued
  /// task — i.e. a parallel_for issued now would run inline.
  [[nodiscard]] static bool in_parallel_region() noexcept;

  /// Process-wide pool, created on first use with threads_from_env().
  /// Its size is clamped to hardware_concurrency: oversubscription only
  /// adds context-switch cost for these compute-bound kernels. Direct
  /// ThreadPool(n) construction is not clamped.
  [[nodiscard]] static ThreadPool& global();
  /// Replace the global pool with one of `n` threads (0 = re-read the
  /// environment; the hardware_concurrency clamp applies either way).
  /// Callers must quiesce kernel activity first: the old pool is joined
  /// and destroyed. Intended for tests and benchmarks.
  static void set_global_threads(std::size_t n);
  /// RIHGCN_THREADS if set, else hardware concurrency. A set-but-invalid
  /// value (0, non-numeric, > 1024) throws std::runtime_error rather than
  /// silently falling back — a typo'd thread count should fail loudly.
  [[nodiscard]] static std::size_t threads_from_env();

 private:
  struct RangeJob;

  void worker_loop();
  void run_chunk(RangeJob& job, std::size_t chunk);
  void run_serial(std::size_t begin, std::size_t end, std::size_t grain,
                  const RangeBody& body);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: jobs/tasks available or stop
  std::condition_variable done_cv_;  // parallel_for callers: job finished
  std::condition_variable idle_cv_;  // wait_idle(): task queue drained
  std::deque<RangeJob*> jobs_;
  std::deque<std::function<void()>> tasks_;
  std::size_t active_tasks_ = 0;
  bool stop_ = false;
  std::size_t num_threads_ = 1;
};

/// Dispatch thresholds for the parallel tensor kernels. Below the threshold
/// the serial path runs inline so tiny matrices don't pay pool dispatch
/// overhead. Mutable so tests and benchmarks can force the threaded path on
/// small inputs; not synchronized — set while no kernels are in flight.
/// Grain changes never alter elementwise/matmul results (each output element
/// is produced wholly inside one chunk); they do alter parallel_reduce
/// rounding, which is why the defaults are fixed constants.
struct ParallelTuning {
  static std::size_t min_elems;         ///< elementwise ops: min elements
  static std::size_t elem_grain;        ///< elementwise ops: chunk size
  static std::size_t min_matmul_flops;  ///< matmul family: min n*k*m
  static std::size_t matmul_row_grain;  ///< matmul family: rows per chunk
  /// Serial cut-over for the row-partitioned (matmul/SpMM) dispatchers: jobs
  /// whose TOTAL work is below this many flops skip pool dispatch entirely,
  /// even above min_matmul_flops. Rationale (BENCH_micro.json): a ~1 Mflop
  /// dispatch splits into ~16 chunks of a few µs each, and the wake/steal/
  /// join overhead then exceeds the parallel win (cheb_dense N=64 ran 23%
  /// SLOWER @4T than @1T). Below ~4 Mflops the serial kernel is never worse
  /// than the dispatched one on the sizes the model produces. Results are
  /// unaffected — dispatch never changes bits (DESIGN.md §8).
  static std::size_t serial_cutover_flops;
  /// Restore the defaults (tests).
  static void reset() noexcept;
};

}  // namespace rihgcn
