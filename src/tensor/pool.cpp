#include "tensor/pool.hpp"

#include <algorithm>
#include <utility>

namespace rihgcn {

Matrix BufferPool::acquire(std::size_t rows, std::size_t cols) {
  const std::size_t elems = rows * cols;
  if (elems == 0) return Matrix(rows, cols);
  auto it = buckets_.find(elems);
  if (it != buckets_.end() && !it->second.empty()) {
    ++hits_;
    std::vector<double> storage = std::move(it->second.back());
    it->second.pop_back();
    std::fill(storage.begin(), storage.end(), 0.0);
    return Matrix(rows, cols, std::move(storage));
  }
  ++misses_;
  return Matrix(rows, cols);
}

void BufferPool::release(Matrix&& m) {
  if (m.empty()) return;
  buckets_[m.size()].push_back(std::move(m.storage()));
}

void BufferPool::clear() { buckets_.clear(); }

std::size_t BufferPool::pooled_buffers() const noexcept {
  std::size_t n = 0;
  for (const auto& [elems, bucket] : buckets_) n += bucket.size();
  return n;
}

}  // namespace rihgcn
