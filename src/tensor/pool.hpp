// Size-bucketed recycler for Matrix storage — the allocation arena behind
// Tape::reset() (DESIGN.md §10).
//
// A training step builds thousands of small tape nodes whose value/grad
// buffers all die together when the step ends. Instead of returning that
// memory to the heap and re-allocating identical buffers on the next step,
// the pool keeps retired std::vector<double> storage in buckets keyed by
// element count. acquire() pops a buffer from the matching bucket (zeroing
// it) or allocates on a miss; release() retires storage back to its bucket.
// After one warm-up step every acquire hits, so steady-state steps perform
// near-zero heap allocation — the hit/miss counters make that measurable
// (bench_micro reports the per-step miss delta as `pool_steady_allocs`).
//
// Not thread-safe: a pool belongs to exactly one Tape, and a Tape is only
// ever driven by one thread at a time (the threaded kernels it calls fan
// out *under* a single acquire/release site, never around one).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.hpp"

namespace rihgcn {

class BufferPool {
 public:
  /// Zero-filled rows x cols matrix, reusing retired storage with the same
  /// element count when available.
  [[nodiscard]] Matrix acquire(std::size_t rows, std::size_t cols);

  /// Retire a matrix's storage into the bucket for its element count.
  /// Empty matrices are dropped (nothing to recycle).
  void release(Matrix&& m);

  /// Drop every pooled buffer, returning the memory to the heap. Counters
  /// are not reset.
  void clear();

  // Counters since construction: hits = acquires served from a bucket,
  // misses = acquires that had to allocate.
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  /// Number of buffers currently parked in buckets.
  [[nodiscard]] std::size_t pooled_buffers() const noexcept;

 private:
  std::unordered_map<std::size_t, std::vector<std::vector<double>>> buckets_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace rihgcn
