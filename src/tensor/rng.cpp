#include "tensor/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rihgcn {

namespace {

// splitmix64: used only to expand the user seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& st : state_) st = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index(0)");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return static_cast<std::size_t>(v % n);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Matrix Rng::normal_matrix(std::size_t rows, std::size_t cols, double stddev) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = normal() * stddev;
  return m;
}

Matrix Rng::uniform_matrix(std::size_t rows, std::size_t cols, double lo,
                           double hi) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = uniform(lo, hi);
  return m;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[uniform_index(i)]);
  }
  return p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("sample_without_replacement: k > n");
  }
  auto p = permutation(n);
  p.resize(k);
  return p;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xa5a5a5a5deadbeefULL); }

RngState Rng::state() const noexcept {
  RngState s;
  for (std::size_t i = 0; i < 4; ++i) s.words[i] = state_[i];
  s.has_cached_normal = has_cached_normal_;
  s.cached_normal = cached_normal_;
  return s;
}

void Rng::set_state(const RngState& s) noexcept {
  for (std::size_t i = 0; i < 4; ++i) state_[i] = s.words[i];
  has_cached_normal_ = s.has_cached_normal;
  cached_normal_ = s.cached_normal;
}

}  // namespace rihgcn
