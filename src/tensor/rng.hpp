// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library (data generators, missing-mask
// injection, parameter init, mini-batch shuffling) takes an explicit Rng so a
// single seed reproduces an entire experiment end to end. The generator is
// xoshiro256** (public domain, Blackman & Vigna) — fast, high quality, and
// identical across platforms, unlike std::default_random_engine.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace rihgcn {

/// Complete serializable Rng state: the four xoshiro words plus the
/// Box-Muller cache (a restored stream must replay the pending second
/// normal, or every downstream draw shifts by one). Used by the durable
/// training checkpoints (nn::TrainCheckpoint) so a resumed run shuffles
/// mini-batches exactly like the uninterrupted one.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// xoshiro256** PRNG with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n) (n must be > 0).
  std::size_t uniform_index(std::size_t n);
  /// Standard normal via Box-Muller.
  double normal() noexcept;
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Matrix of iid N(0, stddev^2) entries.
  Matrix normal_matrix(std::size_t rows, std::size_t cols, double stddev = 1.0);
  /// Matrix of iid U[lo, hi) entries.
  Matrix uniform_matrix(std::size_t rows, std::size_t cols, double lo,
                        double hi);
  /// Random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<std::size_t> permutation(std::size_t n);
  /// Sample k distinct indices from {0, ..., n-1} (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child stream (for parallel-safe substreams).
  Rng split();

  /// Snapshot / restore the full generator state (checkpoint support).
  [[nodiscard]] RngState state() const noexcept;
  void set_state(const RngState& s) noexcept;

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace rihgcn
