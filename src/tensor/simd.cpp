// Scalar reference kernels + the runtime ISA dispatcher (tensor/simd.hpp).
//
// The scalar table is the ground truth the SIMD tables are held to: bitwise
// for double (tests/test_kernel_conformance.cpp compares every kernel across
// ISAs with operator==), ULP-bounded for float. Keep these loops boring —
// one rounded multiply and one rounded add per accumulation step, ascending
// index order.
#include "tensor/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

namespace rihgcn::simd {

namespace {

// ---- scalar double kernels -------------------------------------------------

void s_add(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void s_sub(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void s_mul(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void s_scale(double* y, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= s;
}

void s_add_into(double* out, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void s_sub_into(double* out, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void s_mul_into(double* out, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void s_axpy(double* y, double a, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void s_fmadd(double* y, const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a[i] * b[i];
}

void s_mul2_add(double* out, const double* a, const double* b, const double* c,
                const double* d, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ab = a[i] * b[i];
    const double cd = c[i] * d[i];
    out[i] = ab + cd;
  }
}

// Cache-blocked C += A·B over output rows [i0, i1): 4 output rows at a time,
// 4 output columns at a time, k innermost. Every C element accumulates its
// k-terms in ascending order, each term one rounded multiply + one rounded
// add seeded from the existing C value — the exact per-element arithmetic of
// the naive i-k-j kernel (detail::matmul_naive), so the result is bitwise
// identical to the serial reference and independent of row partitioning.
void s_matmul_rows(const double* ap, const double* bp, double* cp,
                   std::size_t k, std::size_t m, std::size_t i0,
                   std::size_t i1) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = ap + (i + 0) * k;
    const double* a1 = ap + (i + 1) * k;
    const double* a2 = ap + (i + 2) * k;
    const double* a3 = ap + (i + 3) * k;
    double* c0 = cp + (i + 0) * m;
    double* c1 = cp + (i + 1) * m;
    double* c2 = cp + (i + 2) * m;
    double* c3 = cp + (i + 3) * m;
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      double t00 = c0[j], t01 = c0[j + 1], t02 = c0[j + 2], t03 = c0[j + 3];
      double t10 = c1[j], t11 = c1[j + 1], t12 = c1[j + 2], t13 = c1[j + 3];
      double t20 = c2[j], t21 = c2[j + 1], t22 = c2[j + 2], t23 = c2[j + 3];
      double t30 = c3[j], t31 = c3[j + 1], t32 = c3[j + 2], t33 = c3[j + 3];
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double* brow = bp + kk * m + j;
        const double b0 = brow[0], b1 = brow[1], b2 = brow[2], b3 = brow[3];
        const double av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
        t00 += av0 * b0; t01 += av0 * b1; t02 += av0 * b2; t03 += av0 * b3;
        t10 += av1 * b0; t11 += av1 * b1; t12 += av1 * b2; t13 += av1 * b3;
        t20 += av2 * b0; t21 += av2 * b1; t22 += av2 * b2; t23 += av2 * b3;
        t30 += av3 * b0; t31 += av3 * b1; t32 += av3 * b2; t33 += av3 * b3;
      }
      c0[j] = t00; c0[j + 1] = t01; c0[j + 2] = t02; c0[j + 3] = t03;
      c1[j] = t10; c1[j + 1] = t11; c1[j + 2] = t12; c1[j + 3] = t13;
      c2[j] = t20; c2[j + 1] = t21; c2[j + 2] = t22; c2[j + 3] = t23;
      c3[j] = t30; c3[j + 1] = t31; c3[j + 2] = t32; c3[j + 3] = t33;
    }
    for (; j < m; ++j) {
      double t0 = c0[j], t1 = c1[j], t2 = c2[j], t3 = c3[j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double b0 = bp[kk * m + j];
        t0 += a0[kk] * b0;
        t1 += a1[kk] * b0;
        t2 += a2[kk] * b0;
        t3 += a3[kk] * b0;
      }
      c0[j] = t0; c1[j] = t1; c2[j] = t2; c3[j] = t3;
    }
  }
  for (; i < i1; ++i) {
    const double* arow = ap + i * k;
    double* crow = cp + i * m;
    for (std::size_t j = 0; j < m; ++j) {
      double t = crow[j];
      for (std::size_t kk = 0; kk < k; ++kk) t += arow[kk] * bp[kk * m + j];
      crow[j] = t;
    }
  }
}

// C += S·B over rows [i0, i1), S in CSR. i-p-j order: per output element the
// terms arrive in ascending structural order p, one rounded multiply + one
// rounded add each — the dense kernels' ascending-k order minus the zero
// terms (the bitwise sparse-vs-dense parity argument in tensor/csr.hpp).
void s_spmm_rows(const std::size_t* row_ptr, const std::size_t* col_idx,
                 const double* vals, const double* b, double* c, std::size_t m,
                 std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    double* crow = c + i * m;
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const double v = vals[p];
      const double* brow = b + col_idx[p] * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += v * brow[j];
    }
  }
}

// ---- scalar float kernels --------------------------------------------------

void s_saxpy(float* y, float a, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void s_smatmul_rows(const float* ap, const float* bp, float* cp, std::size_t k,
                    std::size_t m, std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = ap + i * k;
    float* crow = cp + i * m;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = bp + kk * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void s_sspmm_rows(const std::size_t* row_ptr, const std::size_t* col_idx,
                  const float* vals, const float* b, float* c, std::size_t m,
                  std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    float* crow = c + i * m;
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const float v = vals[p];
      const float* brow = b + col_idx[p] * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += v * brow[j];
    }
  }
}

void s_smatmul_panel(const float* ap, const float* bp, float* cp,
                     std::size_t rows, std::size_t k, std::size_t m) {
  s_smatmul_rows(ap, bp, cp, k, m, 0, rows);
}

inline float s_sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

void s_lstm_step(const float* gates, float* c, float* h, std::size_t rows,
                 std::size_t hdim) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* g = gates + r * 4 * hdim;
    float* cr = c + r * hdim;
    float* hr = h + r * hdim;
    for (std::size_t j = 0; j < hdim; ++j) {
      const float iv = s_sigmoidf(g[j]);
      const float fv = s_sigmoidf(g[hdim + j]);
      const float ov = s_sigmoidf(g[2 * hdim + j]);
      const float gv = std::tanh(g[3 * hdim + j]);
      const float cc = fv * cr[j] + iv * gv;
      cr[j] = cc;
      hr[j] = ov * std::tanh(cc);
    }
  }
}

void s_gru_step(const float* gx, const float* gh, const float* bias, float* h,
                std::size_t rows, std::size_t hdim) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = gx + r * 3 * hdim;
    const float* hh = gh + r * 3 * hdim;
    float* hr = h + r * hdim;
    for (std::size_t j = 0; j < hdim; ++j) {
      const float rg = s_sigmoidf(x[j] + hh[j] + bias[j]);
      const float zg =
          s_sigmoidf(x[hdim + j] + hh[hdim + j] + bias[hdim + j]);
      const float ng = std::tanh(x[2 * hdim + j] + rg * hh[2 * hdim + j] +
                                 bias[2 * hdim + j]);
      hr[j] = ng - zg * ng + zg * hr[j];
    }
  }
}

constexpr Kernels kScalarKernels = {
    s_add,   s_sub,      s_mul,         s_scale,  s_add_into,
    s_sub_into, s_mul_into, s_axpy,     s_fmadd,  s_mul2_add,
    s_matmul_rows, s_spmm_rows, s_saxpy, s_smatmul_rows, s_sspmm_rows,
    s_smatmul_panel, s_lstm_step, s_gru_step,
};

// ---- dispatch --------------------------------------------------------------

std::atomic<const Kernels*> g_active{nullptr};
std::mutex g_resolve_mutex;
Isa g_active_isa = Isa::kScalar;

Isa detect_isa() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
      isa_supported(Isa::kAvx2)) {
    return Isa::kAvx2;
  }
#endif
  return Isa::kScalar;
}

const Kernels& resolve() {
  std::lock_guard<std::mutex> lk(g_resolve_mutex);
  const Kernels* p = g_active.load(std::memory_order_acquire);
  if (p != nullptr) return *p;
  const std::optional<Isa> forced = isa_from_env();
  const Isa isa = forced.value_or(detect_isa());
  const Kernels& table = kernels_for(isa);  // throws if env asked too much
  g_active_isa = isa;
  g_active.store(&table, std::memory_order_release);
  return table;
}

}  // namespace

// Implemented in simd_avx2.cpp (returns nullptr when the build target or the
// running CPU cannot execute AVX2+FMA).
const Kernels* avx2_kernels_or_null() noexcept;

bool isa_supported(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return avx2_kernels_or_null() != nullptr;
  }
  return false;
}

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "?";
}

std::optional<Isa> isa_from_env() {
  const char* env = std::getenv("RIHGCN_SIMD");
  if (env == nullptr || *env == '\0') return std::nullopt;
  const std::string v(env);
  if (v == "scalar") return Isa::kScalar;
  if (v == "avx2") {
    if (!isa_supported(Isa::kAvx2)) {
      throw std::runtime_error(
          "RIHGCN_SIMD=avx2 but this CPU/build does not support AVX2+FMA");
    }
    return Isa::kAvx2;
  }
  throw std::runtime_error("RIHGCN_SIMD must be 'scalar' or 'avx2', got '" +
                           v + "'");
}

const Kernels& kernels_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return kScalarKernels;
    case Isa::kAvx2:
      if (const Kernels* k = avx2_kernels_or_null()) return *k;
      throw std::runtime_error(
          "AVX2 kernels unavailable on this CPU/build (need AVX2+FMA)");
  }
  throw std::runtime_error("unknown SIMD ISA");
}

Isa active_isa() {
  resolve();
  std::lock_guard<std::mutex> lk(g_resolve_mutex);
  return g_active_isa;
}

const Kernels& active_kernels() {
  const Kernels* p = g_active.load(std::memory_order_acquire);
  if (p != nullptr) return *p;
  return resolve();
}

void force_isa(Isa isa) {
  const Kernels& table = kernels_for(isa);  // throws if unsupported
  std::lock_guard<std::mutex> lk(g_resolve_mutex);
  g_active_isa = isa;
  g_active.store(&table, std::memory_order_release);
}

void reset_isa() {
  std::lock_guard<std::mutex> lk(g_resolve_mutex);
  g_active.store(nullptr, std::memory_order_release);
}

}  // namespace rihgcn::simd
