// Runtime-dispatched SIMD kernel layer underneath the tensor backend
// (DESIGN.md §12).
//
// The dense/sparse kernels and the tape's elementwise loops funnel their
// innermost loops through the function table returned by active_kernels().
// The table is selected ONCE, at first use:
//   * RIHGCN_SIMD=scalar|avx2 forces an instruction set (an unsupported or
//     misspelled value throws — no silent fallback),
//   * otherwise the best set the CPU supports is picked (AVX2+FMA when
//     available, scalar everywhere else).
//
// Two numeric contracts (DESIGN.md §12):
//  * double kernels are BITWISE-IDENTICAL to the scalar reference. Every
//    output element is produced by the same sequence of individually rounded
//    multiplies and adds as the scalar loop — SIMD only evaluates independent
//    elements in parallel lanes, never reassociates a reduction and never
//    fuses a multiply-add. (The whole project is built with -ffp-contract=off
//    so the scalar reference is pinned to mul+add rounding too.) The training
//    path therefore keeps the bitwise-determinism-at-fixed-thread-count
//    guarantee of DESIGN.md §8 with SIMD on.
//  * float kernels (the f32 inference path, tensor/fmatrix.hpp) may use FMA
//    and are held to an ULP-BOUNDED tolerance against the double reference
//    instead (tests/test_kernel_conformance.cpp).
#pragma once

#include <cstddef>
#include <optional>

namespace rihgcn::simd {

/// Instruction sets the dispatcher knows about.
enum class Isa {
  kScalar,  ///< portable reference kernels (always available)
  kAvx2,    ///< AVX2 + FMA (x86-64; FMA used only by the float kernels)
};

/// One resolved kernel table. All pointers are always non-null.
struct Kernels {
  // ---- double kernels: bitwise contract (mul+add per element, ascending
  // index order, no reassociation) --------------------------------------
  void (*add)(double* y, const double* x, std::size_t n);  ///< y[i] += x[i]
  void (*sub)(double* y, const double* x, std::size_t n);  ///< y[i] -= x[i]
  void (*mul)(double* y, const double* x, std::size_t n);  ///< y[i] *= x[i]
  void (*scale)(double* y, double s, std::size_t n);       ///< y[i] *= s
  /// out[i] = a[i] + b[i]
  void (*add_into)(double* out, const double* a, const double* b,
                   std::size_t n);
  /// out[i] = a[i] - b[i]
  void (*sub_into)(double* out, const double* a, const double* b,
                   std::size_t n);
  /// out[i] = a[i] * b[i]
  void (*mul_into)(double* out, const double* a, const double* b,
                   std::size_t n);
  /// y[i] += a * x[i] — the SpMM / Aᵀ·B row update.
  void (*axpy)(double* y, double a, const double* x, std::size_t n);
  /// y[i] += a[i] * b[i] (two roundings) — elementwise-mul backward and the
  /// fused-cell gradient sections.
  void (*fmadd)(double* y, const double* a, const double* b, std::size_t n);
  /// out[i] = a[i]*b[i] + c[i]*d[i] (three roundings) — the fused LSTM
  /// cell-state update c' = f⊙c + i⊙g.
  void (*mul2_add)(double* out, const double* a, const double* b,
                   const double* c, const double* d, std::size_t n);
  /// C += A·B over output rows [i0, i1). A: (? x k), B: (k x m), row-major.
  /// Per element: seed from C, then add round(a_ik * b_kj) for ascending k —
  /// exactly the serial blocked kernel's arithmetic.
  void (*matmul_rows)(const double* a, const double* b, double* c,
                      std::size_t k, std::size_t m, std::size_t i0,
                      std::size_t i1);
  /// C += S·B over output rows [i0, i1) where S is the CSR triple
  /// (row_ptr, col_idx, vals) and B is dense (? x m). Whole row ranges per
  /// call — a per-nonzero axpy through the function pointer costs ~30% on
  /// the Chebyshev SpMM sweep (BENCH_micro.json, F = 16). Each output
  /// element accumulates round(v_p * b_pj) in ascending structural order p,
  /// so the bitwise contract holds regardless of lane width.
  void (*spmm_rows)(const std::size_t* row_ptr, const std::size_t* col_idx,
                    const double* vals, const double* b, double* c,
                    std::size_t m, std::size_t i0, std::size_t i1);

  // ---- float kernels: ULP-bounded contract (FMA allowed) ---------------
  void (*saxpy)(float* y, float a, const float* x, std::size_t n);
  /// C += A·B over output rows [i0, i1), float, FMA-accumulated.
  void (*smatmul_rows)(const float* a, const float* b, float* c,
                       std::size_t k, std::size_t m, std::size_t i0,
                       std::size_t i1);
  /// C += S·B over output rows [i0, i1), float CSR, FMA-accumulated.
  void (*sspmm_rows)(const std::size_t* row_ptr, const std::size_t* col_idx,
                     const float* vals, const float* b, float* c,
                     std::size_t m, std::size_t i0, std::size_t i1);
  /// Panel GEMM C(rows x m) += A(rows x k)·B(k x m) for SHORT panels (rows
  /// ≲ 8) against a large B: B is streamed once per 4-row group instead of
  /// once per row, which is what the serving engine's transposed Laplacian
  /// apply (outᵀ = xᵀ·L̃ᵀ, DESIGN.md §14) is bound by. Same ascending-k
  /// per-element FMA order as smatmul_rows.
  void (*smatmul_panel)(const float* a, const float* b, float* c,
                        std::size_t rows, std::size_t k, std::size_t m);
  /// Fused LSTM gate row math: per row r of `gates` ((rows x 4h), layout
  /// [i|f|o|g], biases already added), updates c and h ((rows x h)):
  ///   c = σ(f)⊙c + σ(i)⊙tanh(g);  h = σ(o)⊙tanh(c)
  /// The AVX2 table may evaluate σ/tanh through vectorized libm (few-ULP
  /// vs scalar libm) — float-path tolerance only, like FMA use.
  void (*slstm_step)(const float* gates, float* c, float* h, std::size_t rows,
                     std::size_t hdim);
  /// Fused GRU gate row math: gx/gh ((rows x 3h), layout [r|z|n]) are the
  /// input-side and hidden-side pre-activations, bias is the shared 3h row:
  ///   r = σ(gx_r+gh_r+b_r); z = σ(gx_z+gh_z+b_z);
  ///   n = tanh(gx_n + r⊙gh_n + b_n);  h = n − z⊙n + z⊙h
  void (*sgru_step)(const float* gx, const float* gh, const float* bias,
                    float* h, std::size_t rows, std::size_t hdim);
};

/// True if this build + CPU can execute `isa`.
[[nodiscard]] bool isa_supported(Isa isa) noexcept;
/// "scalar" / "avx2".
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Parse RIHGCN_SIMD. Empty/unset → nullopt (auto-detect). "scalar"/"avx2" →
/// that ISA. Anything else throws std::runtime_error with the accepted
/// values; a recognized but unsupported ISA throws too (no silent fallback).
[[nodiscard]] std::optional<Isa> isa_from_env();

/// The ISA in effect (resolved once from env/CPU on first call).
[[nodiscard]] Isa active_isa();
/// The kernel table for active_isa(). Hot path: one atomic load.
[[nodiscard]] const Kernels& active_kernels();
/// The table for an explicit ISA (conformance tests compare tables directly).
/// Throws std::runtime_error if the ISA is not supported here.
[[nodiscard]] const Kernels& kernels_for(Isa isa);

/// Override the active ISA (tests/benchmarks). Not synchronized — call only
/// while no kernels are in flight. Throws if unsupported.
void force_isa(Isa isa);
/// Undo force_isa(): next active_kernels() re-resolves from env/CPU.
void reset_isa();

}  // namespace rihgcn::simd
