// AVX2 kernel table. This TU is the only one compiled with -mavx2 -mfma
// (plus -ffp-contract=off, see src/tensor/CMakeLists.txt) — nothing here may
// leak into a header.
//
// Double kernels honour the bitwise contract: lanes carry INDEPENDENT output
// elements, each accumulated with explicit _mm256_mul_pd + _mm256_add_pd (one
// rounding per op, same as scalar). No FMA, no horizontal reductions. Scalar
// tails run the identical expression, so results match the scalar table bit
// for bit. Float kernels are the serving path and use _mm256_fmadd_ps freely
// under the ULP contract.
#include "tensor/simd.hpp"

#include <cmath>

#if defined(__x86_64__) || defined(__i386__)
#define RIHGCN_HAVE_AVX2_TU 1
#include <immintrin.h>
#endif

namespace rihgcn::simd {

#if defined(RIHGCN_HAVE_AVX2_TU)

namespace {

void v_add(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                                          _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void v_sub(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_sub_pd(_mm256_loadu_pd(y + i),
                                          _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void v_mul(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i),
                                          _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void v_scale(double* y, double s, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), vs));
  }
  for (; i < n; ++i) y[i] *= s;
}

void v_add_into(double* out, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void v_sub_into(double* out, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void v_mul_into(double* out, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

// y[i] += round(a * x[i]) — mul then add, matching the scalar tail exactly.
void v_axpy(double* y, double a, const double* x, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void v_fmadd(double* y, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a[i] * b[i];
}

void v_mul2_add(double* out, const double* a, const double* b, const double* c,
                const double* d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ab =
        _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d cd =
        _mm256_mul_pd(_mm256_loadu_pd(c + i), _mm256_loadu_pd(d + i));
    _mm256_storeu_pd(out + i, _mm256_add_pd(ab, cd));
  }
  for (; i < n; ++i) {
    const double ab = a[i] * b[i];
    const double cd = c[i] * d[i];
    out[i] = ab + cd;
  }
}

// C += A·B over rows [i0, i1). Lanes hold 4 adjacent j-columns of one output
// row; k advances in ascending order with broadcast a_ik, so each element
// sees exactly the scalar kernel's rounding sequence.
void v_matmul_rows(const double* ap, const double* bp, double* cp,
                   std::size_t k, std::size_t m, std::size_t i0,
                   std::size_t i1) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = ap + (i + 0) * k;
    const double* a1 = ap + (i + 1) * k;
    const double* a2 = ap + (i + 2) * k;
    const double* a3 = ap + (i + 3) * k;
    double* c0 = cp + (i + 0) * m;
    double* c1 = cp + (i + 1) * m;
    double* c2 = cp + (i + 2) * m;
    double* c3 = cp + (i + 3) * m;
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d t0 = _mm256_loadu_pd(c0 + j);
      __m256d t1 = _mm256_loadu_pd(c1 + j);
      __m256d t2 = _mm256_loadu_pd(c2 + j);
      __m256d t3 = _mm256_loadu_pd(c3 + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d bv = _mm256_loadu_pd(bp + kk * m + j);
        t0 = _mm256_add_pd(t0, _mm256_mul_pd(_mm256_set1_pd(a0[kk]), bv));
        t1 = _mm256_add_pd(t1, _mm256_mul_pd(_mm256_set1_pd(a1[kk]), bv));
        t2 = _mm256_add_pd(t2, _mm256_mul_pd(_mm256_set1_pd(a2[kk]), bv));
        t3 = _mm256_add_pd(t3, _mm256_mul_pd(_mm256_set1_pd(a3[kk]), bv));
      }
      _mm256_storeu_pd(c0 + j, t0);
      _mm256_storeu_pd(c1 + j, t1);
      _mm256_storeu_pd(c2 + j, t2);
      _mm256_storeu_pd(c3 + j, t3);
    }
    for (; j < m; ++j) {
      double t0 = c0[j], t1 = c1[j], t2 = c2[j], t3 = c3[j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double b0 = bp[kk * m + j];
        t0 += a0[kk] * b0;
        t1 += a1[kk] * b0;
        t2 += a2[kk] * b0;
        t3 += a3[kk] * b0;
      }
      c0[j] = t0; c1[j] = t1; c2[j] = t2; c3[j] = t3;
    }
  }
  for (; i < i1; ++i) {
    const double* arow = ap + i * k;
    double* crow = cp + i * m;
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d t = _mm256_loadu_pd(crow + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_set1_pd(arow[kk]),
                                           _mm256_loadu_pd(bp + kk * m + j)));
      }
      _mm256_storeu_pd(crow + j, t);
    }
    for (; j < m; ++j) {
      double t = crow[j];
      for (std::size_t kk = 0; kk < k; ++kk) t += arow[kk] * bp[kk * m + j];
      crow[j] = t;
    }
  }
}

// C += S·B over rows [i0, i1), S in CSR. j-tile outer, p inner: the 4-lane
// accumulator stays in a register across the whole row's nonzeros. Per
// element that is still "seed from C, add round(v_p * b_pj) for ascending p"
// — identical rounding sequence to the scalar kernel's p-outer loop, so the
// bitwise contract holds (loop nesting only reorders independent elements).
void v_spmm_rows(const std::size_t* row_ptr, const std::size_t* col_idx,
                 const double* vals, const double* b, double* c, std::size_t m,
                 std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    double* crow = c + i * m;
    const std::size_t p0 = row_ptr[i];
    const std::size_t p1 = row_ptr[i + 1];
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d acc = _mm256_loadu_pd(crow + j);
      for (std::size_t p = p0; p < p1; ++p) {
        const __m256d bv = _mm256_loadu_pd(b + col_idx[p] * m + j);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(vals[p]), bv));
      }
      _mm256_storeu_pd(crow + j, acc);
    }
    for (; j < m; ++j) {
      double acc = crow[j];
      for (std::size_t p = p0; p < p1; ++p) {
        acc += vals[p] * b[col_idx[p] * m + j];
      }
      crow[j] = acc;
    }
  }
}

// ---- float serving kernels (ULP contract — FMA on) -------------------------

void v_saxpy(float* y, float a, const float* x, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fmaf(a, x[i], y[i]);
}

void v_smatmul_rows(const float* ap, const float* bp, float* cp, std::size_t k,
                    std::size_t m, std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = ap + i * k;
    float* crow = cp + i * m;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = bp + kk * m;
      const __m256 va = _mm256_set1_ps(av);
      std::size_t j = 0;
      for (; j + 8 <= m; j += 8) {
        _mm256_storeu_ps(
            crow + j, _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + j),
                                      _mm256_loadu_ps(crow + j)));
      }
      for (; j < m; ++j) crow[j] = std::fmaf(av, brow[j], crow[j]);
    }
  }
}

void v_sspmm_rows(const std::size_t* row_ptr, const std::size_t* col_idx,
                  const float* vals, const float* b, float* c, std::size_t m,
                  std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    float* crow = c + i * m;
    const std::size_t p0 = row_ptr[i];
    const std::size_t p1 = row_ptr[i + 1];
    std::size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (std::size_t p = p0; p < p1; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(vals[p]),
                              _mm256_loadu_ps(b + col_idx[p] * m + j), acc);
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    for (; j < m; ++j) {
      float acc = crow[j];
      for (std::size_t p = p0; p < p1; ++p) {
        acc = std::fmaf(vals[p], b[col_idx[p] * m + j], acc);
      }
      crow[j] = acc;
    }
  }
}

constexpr Kernels kAvx2Kernels = {
    v_add,   v_sub,      v_mul,         v_scale,  v_add_into,
    v_sub_into, v_mul_into, v_axpy,     v_fmadd,  v_mul2_add,
    v_matmul_rows, v_spmm_rows, v_saxpy, v_smatmul_rows, v_sspmm_rows,
};

}  // namespace

const Kernels* avx2_kernels_or_null() noexcept {
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &kAvx2Kernels;
  }
  return nullptr;
}

#else  // !RIHGCN_HAVE_AVX2_TU

const Kernels* avx2_kernels_or_null() noexcept { return nullptr; }

#endif

}  // namespace rihgcn::simd
