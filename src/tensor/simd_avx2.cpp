// AVX2 kernel table. This TU is the only one compiled with -mavx2 -mfma
// (plus -ffp-contract=off, see src/tensor/CMakeLists.txt) — nothing here may
// leak into a header.
//
// Double kernels honour the bitwise contract: lanes carry INDEPENDENT output
// elements, each accumulated with explicit _mm256_mul_pd + _mm256_add_pd (one
// rounding per op, same as scalar). No FMA, no horizontal reductions. Scalar
// tails run the identical expression, so results match the scalar table bit
// for bit. Float kernels are the serving path and use _mm256_fmadd_ps freely
// under the ULP contract.
#include "tensor/simd.hpp"

#include <cmath>

#if defined(__x86_64__) || defined(__i386__)
#define RIHGCN_HAVE_AVX2_TU 1
#include <immintrin.h>
#endif

namespace rihgcn::simd {

#if defined(RIHGCN_HAVE_AVX2_TU)

namespace {

void v_add(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                                          _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void v_sub(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_sub_pd(_mm256_loadu_pd(y + i),
                                          _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void v_mul(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i),
                                          _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void v_scale(double* y, double s, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_mul_pd(_mm256_loadu_pd(y + i), vs));
  }
  for (; i < n; ++i) y[i] *= s;
}

void v_add_into(double* out, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void v_sub_into(double* out, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void v_mul_into(double* out, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

// y[i] += round(a * x[i]) — mul then add, matching the scalar tail exactly.
void v_axpy(double* y, double a, const double* x, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void v_fmadd(double* y, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a[i] * b[i];
}

void v_mul2_add(double* out, const double* a, const double* b, const double* c,
                const double* d, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ab =
        _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    const __m256d cd =
        _mm256_mul_pd(_mm256_loadu_pd(c + i), _mm256_loadu_pd(d + i));
    _mm256_storeu_pd(out + i, _mm256_add_pd(ab, cd));
  }
  for (; i < n; ++i) {
    const double ab = a[i] * b[i];
    const double cd = c[i] * d[i];
    out[i] = ab + cd;
  }
}

// C += A·B over rows [i0, i1). Lanes hold 4 adjacent j-columns of one output
// row; k advances in ascending order with broadcast a_ik, so each element
// sees exactly the scalar kernel's rounding sequence.
void v_matmul_rows(const double* ap, const double* bp, double* cp,
                   std::size_t k, std::size_t m, std::size_t i0,
                   std::size_t i1) {
  std::size_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const double* a0 = ap + (i + 0) * k;
    const double* a1 = ap + (i + 1) * k;
    const double* a2 = ap + (i + 2) * k;
    const double* a3 = ap + (i + 3) * k;
    double* c0 = cp + (i + 0) * m;
    double* c1 = cp + (i + 1) * m;
    double* c2 = cp + (i + 2) * m;
    double* c3 = cp + (i + 3) * m;
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d t0 = _mm256_loadu_pd(c0 + j);
      __m256d t1 = _mm256_loadu_pd(c1 + j);
      __m256d t2 = _mm256_loadu_pd(c2 + j);
      __m256d t3 = _mm256_loadu_pd(c3 + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d bv = _mm256_loadu_pd(bp + kk * m + j);
        t0 = _mm256_add_pd(t0, _mm256_mul_pd(_mm256_set1_pd(a0[kk]), bv));
        t1 = _mm256_add_pd(t1, _mm256_mul_pd(_mm256_set1_pd(a1[kk]), bv));
        t2 = _mm256_add_pd(t2, _mm256_mul_pd(_mm256_set1_pd(a2[kk]), bv));
        t3 = _mm256_add_pd(t3, _mm256_mul_pd(_mm256_set1_pd(a3[kk]), bv));
      }
      _mm256_storeu_pd(c0 + j, t0);
      _mm256_storeu_pd(c1 + j, t1);
      _mm256_storeu_pd(c2 + j, t2);
      _mm256_storeu_pd(c3 + j, t3);
    }
    for (; j < m; ++j) {
      double t0 = c0[j], t1 = c1[j], t2 = c2[j], t3 = c3[j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double b0 = bp[kk * m + j];
        t0 += a0[kk] * b0;
        t1 += a1[kk] * b0;
        t2 += a2[kk] * b0;
        t3 += a3[kk] * b0;
      }
      c0[j] = t0; c1[j] = t1; c2[j] = t2; c3[j] = t3;
    }
  }
  for (; i < i1; ++i) {
    const double* arow = ap + i * k;
    double* crow = cp + i * m;
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d t = _mm256_loadu_pd(crow + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_set1_pd(arow[kk]),
                                           _mm256_loadu_pd(bp + kk * m + j)));
      }
      _mm256_storeu_pd(crow + j, t);
    }
    for (; j < m; ++j) {
      double t = crow[j];
      for (std::size_t kk = 0; kk < k; ++kk) t += arow[kk] * bp[kk * m + j];
      crow[j] = t;
    }
  }
}

// C += S·B over rows [i0, i1), S in CSR. j-tile outer, p inner: the 4-lane
// accumulator stays in a register across the whole row's nonzeros. Per
// element that is still "seed from C, add round(v_p * b_pj) for ascending p"
// — identical rounding sequence to the scalar kernel's p-outer loop, so the
// bitwise contract holds (loop nesting only reorders independent elements).
void v_spmm_rows(const std::size_t* row_ptr, const std::size_t* col_idx,
                 const double* vals, const double* b, double* c, std::size_t m,
                 std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    double* crow = c + i * m;
    const std::size_t p0 = row_ptr[i];
    const std::size_t p1 = row_ptr[i + 1];
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      __m256d acc = _mm256_loadu_pd(crow + j);
      for (std::size_t p = p0; p < p1; ++p) {
        const __m256d bv = _mm256_loadu_pd(b + col_idx[p] * m + j);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(vals[p]), bv));
      }
      _mm256_storeu_pd(crow + j, acc);
    }
    for (; j < m; ++j) {
      double acc = crow[j];
      for (std::size_t p = p0; p < p1; ++p) {
        acc += vals[p] * b[col_idx[p] * m + j];
      }
      crow[j] = acc;
    }
  }
}

// ---- float serving kernels (ULP contract — FMA on) -------------------------

void v_saxpy(float* y, float a, const float* x, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fmaf(a, x[i], y[i]);
}

// Register-blocked i-j-k: each 64/32/8-column tile of an output row is held
// in YMM accumulators across the whole k loop and stored once, instead of
// round-tripping C through memory per (i, k) — that store-forward chain is
// what caps the naive i-k-j form near one FMA per 8–9 cycles. Every output
// element still receives its terms in ascending-k FMA order, so the tiling
// is bitwise-neutral (and the a==0 skip only elides terms that would leave
// an FMA accumulator unchanged).
void v_smatmul_rows(const float* ap, const float* bp, float* cp, std::size_t k,
                    std::size_t m, std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = ap + i * k;
    float* crow = cp + i * m;
    std::size_t j = 0;
    for (; j + 64 <= m; j += 64) {  // 8 accumulators: hides FMA latency
      __m256 acc0 = _mm256_loadu_ps(crow + j);
      __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
      __m256 acc2 = _mm256_loadu_ps(crow + j + 16);
      __m256 acc3 = _mm256_loadu_ps(crow + j + 24);
      __m256 acc4 = _mm256_loadu_ps(crow + j + 32);
      __m256 acc5 = _mm256_loadu_ps(crow + j + 40);
      __m256 acc6 = _mm256_loadu_ps(crow + j + 48);
      __m256 acc7 = _mm256_loadu_ps(crow + j + 56);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const __m256 va = _mm256_set1_ps(av);
        const float* brow = bp + kk * m + j;
        acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow), acc0);
        acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 8), acc1);
        acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 16), acc2);
        acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 24), acc3);
        acc4 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 32), acc4);
        acc5 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 40), acc5);
        acc6 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 48), acc6);
        acc7 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 56), acc7);
      }
      _mm256_storeu_ps(crow + j, acc0);
      _mm256_storeu_ps(crow + j + 8, acc1);
      _mm256_storeu_ps(crow + j + 16, acc2);
      _mm256_storeu_ps(crow + j + 24, acc3);
      _mm256_storeu_ps(crow + j + 32, acc4);
      _mm256_storeu_ps(crow + j + 40, acc5);
      _mm256_storeu_ps(crow + j + 48, acc6);
      _mm256_storeu_ps(crow + j + 56, acc7);
    }
    for (; j + 32 <= m; j += 32) {
      __m256 acc0 = _mm256_loadu_ps(crow + j);
      __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
      __m256 acc2 = _mm256_loadu_ps(crow + j + 16);
      __m256 acc3 = _mm256_loadu_ps(crow + j + 24);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        const __m256 va = _mm256_set1_ps(av);
        const float* brow = bp + kk * m + j;
        acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow), acc0);
        acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 8), acc1);
        acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 16), acc2);
        acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + 24), acc3);
      }
      _mm256_storeu_ps(crow + j, acc0);
      _mm256_storeu_ps(crow + j + 8, acc1);
      _mm256_storeu_ps(crow + j + 16, acc2);
      _mm256_storeu_ps(crow + j + 24, acc3);
    }
    for (; j + 8 <= m; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        acc = _mm256_fmadd_ps(_mm256_set1_ps(av),
                              _mm256_loadu_ps(bp + kk * m + j), acc);
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    if (j + 4 <= m) {  // 4-wide tail: f32 feature panels are 4 columns
      __m128 acc = _mm_loadu_ps(crow + j);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        acc = _mm_fmadd_ps(_mm_set1_ps(av), _mm_loadu_ps(bp + kk * m + j),
                           acc);
      }
      _mm_storeu_ps(crow + j, acc);
      j += 4;
    }
    for (; j < m; ++j) {
      float acc = crow[j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (av == 0.0f) continue;
        acc = std::fmaf(av, bp[kk * m + j], acc);
      }
      crow[j] = acc;
    }
  }
}

void v_sspmm_rows(const std::size_t* row_ptr, const std::size_t* col_idx,
                  const float* vals, const float* b, float* c, std::size_t m,
                  std::size_t i0, std::size_t i1) {
  for (std::size_t i = i0; i < i1; ++i) {
    float* crow = c + i * m;
    const std::size_t p0 = row_ptr[i];
    const std::size_t p1 = row_ptr[i + 1];
    std::size_t j = 0;
    for (; j + 8 <= m; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (std::size_t p = p0; p < p1; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(vals[p]),
                              _mm256_loadu_ps(b + col_idx[p] * m + j), acc);
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    // 4-wide tail (see v_smatmul_rows): one 128-bit pass instead of four
    // scalar re-scans of the row's nonzeros. Bitwise-neutral per element.
    if (j + 4 <= m) {
      __m128 acc = _mm_loadu_ps(crow + j);
      for (std::size_t p = p0; p < p1; ++p) {
        acc = _mm_fmadd_ps(_mm_set1_ps(vals[p]),
                           _mm_loadu_ps(b + col_idx[p] * m + j), acc);
      }
      _mm_storeu_ps(crow + j, acc);
      j += 4;
    }
    for (; j < m; ++j) {
      float acc = crow[j];
      for (std::size_t p = p0; p < p1; ++p) {
        acc = std::fmaf(vals[p], b[col_idx[p] * m + j], acc);
      }
      crow[j] = acc;
    }
  }
}

// Short-panel GEMM: R rows of A advance together through one j-tile so each
// B row is loaded once per R-row group, not once per row — for an (8 x N)
// panel against an (N x N) B that cuts B streaming 4–8x, which is what the
// transposed Laplacian apply is bound by. Ascending-k FMA order per element
// (no zero-skip: a zero A term contributes fma(0, b, acc) = acc).
template <int R>
void panel_rows(const float* ap, const float* bp, float* cp, std::size_t k,
                std::size_t m) {
  std::size_t j = 0;
  for (; j + 16 <= m; j += 16) {
    __m256 acc0[R], acc1[R];
    for (int r = 0; r < R; ++r) {
      acc0[r] = _mm256_loadu_ps(cp + r * m + j);
      acc1[r] = _mm256_loadu_ps(cp + r * m + j + 8);
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* brow = bp + kk * m + j;
      const __m256 b0 = _mm256_loadu_ps(brow);
      const __m256 b1 = _mm256_loadu_ps(brow + 8);
      for (int r = 0; r < R; ++r) {
        const __m256 va = _mm256_set1_ps(ap[r * k + kk]);
        acc0[r] = _mm256_fmadd_ps(va, b0, acc0[r]);
        acc1[r] = _mm256_fmadd_ps(va, b1, acc1[r]);
      }
    }
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_ps(cp + r * m + j, acc0[r]);
      _mm256_storeu_ps(cp + r * m + j + 8, acc1[r]);
    }
  }
  for (; j + 8 <= m; j += 8) {
    __m256 acc[R];
    for (int r = 0; r < R; ++r) acc[r] = _mm256_loadu_ps(cp + r * m + j);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const __m256 b0 = _mm256_loadu_ps(bp + kk * m + j);
      for (int r = 0; r < R; ++r) {
        acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(ap[r * k + kk]), b0, acc[r]);
      }
    }
    for (int r = 0; r < R; ++r) _mm256_storeu_ps(cp + r * m + j, acc[r]);
  }
  if (j + 4 <= m) {
    __m128 acc[R];
    for (int r = 0; r < R; ++r) acc[r] = _mm_loadu_ps(cp + r * m + j);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const __m128 b0 = _mm_loadu_ps(bp + kk * m + j);
      for (int r = 0; r < R; ++r) {
        acc[r] = _mm_fmadd_ps(_mm_set1_ps(ap[r * k + kk]), b0, acc[r]);
      }
    }
    for (int r = 0; r < R; ++r) _mm_storeu_ps(cp + r * m + j, acc[r]);
    j += 4;
  }
  for (; j < m; ++j) {
    for (int r = 0; r < R; ++r) {
      float acc = cp[r * m + j];
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc = std::fmaf(ap[r * k + kk], bp[kk * m + j], acc);
      }
      cp[r * m + j] = acc;
    }
  }
}

void v_smatmul_panel(const float* ap, const float* bp, float* cp,
                     std::size_t rows, std::size_t k, std::size_t m) {
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) panel_rows<4>(ap + r * k, bp, cp + r * m, k, m);
  if (r + 2 <= rows) {
    panel_rows<2>(ap + r * k, bp, cp + r * m, k, m);
    r += 2;
  }
  if (r < rows) panel_rows<1>(ap + r * k, bp, cp + r * m, k, m);
}

// ---- fused recurrent-cell row math -----------------------------------------
// σ and tanh go through glibc's vectorized libm (few-ULP vs scalar libm)
// when the build found it — a float-path (ULP-contract) liberty, like FMA.
// Scalar tails and the no-libmvec fallback use the exact scalar-table math.

inline float v_sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

#if defined(RIHGCN_HAVE_MVEC)
extern "C" {
__m256 _ZGVdN8v_expf(__m256);   // AVX2 vector expf (glibc libmvec)
__m256 _ZGVdN8v_tanhf(__m256);  // AVX2 vector tanhf (glibc libmvec)
}

inline __m256 vec_sigmoid(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = _ZGVdN8v_expf(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}
#endif

void v_lstm_step(const float* gates, float* c, float* h, std::size_t rows,
                 std::size_t hdim) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* g = gates + r * 4 * hdim;
    float* cr = c + r * hdim;
    float* hr = h + r * hdim;
    std::size_t j = 0;
#if defined(RIHGCN_HAVE_MVEC)
    for (; j + 8 <= hdim; j += 8) {
      const __m256 iv = vec_sigmoid(_mm256_loadu_ps(g + j));
      const __m256 fv = vec_sigmoid(_mm256_loadu_ps(g + hdim + j));
      const __m256 ov = vec_sigmoid(_mm256_loadu_ps(g + 2 * hdim + j));
      const __m256 gv = _ZGVdN8v_tanhf(_mm256_loadu_ps(g + 3 * hdim + j));
      const __m256 cc = _mm256_fmadd_ps(fv, _mm256_loadu_ps(cr + j),
                                        _mm256_mul_ps(iv, gv));
      _mm256_storeu_ps(cr + j, cc);
      _mm256_storeu_ps(hr + j, _mm256_mul_ps(ov, _ZGVdN8v_tanhf(cc)));
    }
#endif
    for (; j < hdim; ++j) {
      const float iv = v_sigmoidf(g[j]);
      const float fv = v_sigmoidf(g[hdim + j]);
      const float ov = v_sigmoidf(g[2 * hdim + j]);
      const float gv = std::tanh(g[3 * hdim + j]);
      const float cc = fv * cr[j] + iv * gv;
      cr[j] = cc;
      hr[j] = ov * std::tanh(cc);
    }
  }
}

void v_gru_step(const float* gx, const float* gh, const float* bias, float* h,
                std::size_t rows, std::size_t hdim) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = gx + r * 3 * hdim;
    const float* hh = gh + r * 3 * hdim;
    float* hr = h + r * hdim;
    std::size_t j = 0;
#if defined(RIHGCN_HAVE_MVEC)
    for (; j + 8 <= hdim; j += 8) {
      const __m256 b0 = _mm256_loadu_ps(bias + j);
      const __m256 b1 = _mm256_loadu_ps(bias + hdim + j);
      const __m256 b2 = _mm256_loadu_ps(bias + 2 * hdim + j);
      const __m256 rg = vec_sigmoid(_mm256_add_ps(
          _mm256_add_ps(_mm256_loadu_ps(x + j), _mm256_loadu_ps(hh + j)), b0));
      const __m256 zg = vec_sigmoid(_mm256_add_ps(
          _mm256_add_ps(_mm256_loadu_ps(x + hdim + j),
                        _mm256_loadu_ps(hh + hdim + j)),
          b1));
      const __m256 ng = _ZGVdN8v_tanhf(_mm256_add_ps(
          _mm256_fmadd_ps(rg, _mm256_loadu_ps(hh + 2 * hdim + j),
                          _mm256_loadu_ps(x + 2 * hdim + j)),
          b2));
      const __m256 hv = _mm256_loadu_ps(hr + j);
      // h = n − z⊙n + z⊙h
      _mm256_storeu_ps(
          hr + j,
          _mm256_fmadd_ps(zg, hv, _mm256_sub_ps(ng, _mm256_mul_ps(zg, ng))));
    }
#endif
    for (; j < hdim; ++j) {
      const float rg = v_sigmoidf(x[j] + hh[j] + bias[j]);
      const float zg = v_sigmoidf(x[hdim + j] + hh[hdim + j] + bias[hdim + j]);
      const float ng = std::tanh(x[2 * hdim + j] + rg * hh[2 * hdim + j] +
                                 bias[2 * hdim + j]);
      hr[j] = ng - zg * ng + zg * hr[j];
    }
  }
}

constexpr Kernels kAvx2Kernels = {
    v_add,   v_sub,      v_mul,         v_scale,  v_add_into,
    v_sub_into, v_mul_into, v_axpy,     v_fmadd,  v_mul2_add,
    v_matmul_rows, v_spmm_rows, v_saxpy, v_smatmul_rows, v_sspmm_rows,
    v_smatmul_panel, v_lstm_step, v_gru_step,
};

}  // namespace

const Kernels* avx2_kernels_or_null() noexcept {
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &kAvx2Kernels;
  }
  return nullptr;
}

#else  // !RIHGCN_HAVE_AVX2_TU

const Kernels* avx2_kernels_or_null() noexcept { return nullptr; }

#endif

}  // namespace rihgcn::simd
