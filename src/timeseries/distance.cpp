#include "timeseries/distance.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "tensor/parallel.hpp"

namespace rihgcn::ts {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Generic DTW skeleton parameterized by a local-cost callable cost(i, j).
/// `cutoff` enables row-wise early abandoning: once no reachable cell of a
/// DP row is below it, the final value cannot be either (every complete
/// warping path visits each row and local costs are >= 0), so +inf is
/// returned. The abandon test is a pure comparison — DP arithmetic is
/// untouched — so a finite result is bitwise identical to cutoff = +inf.
template <typename CostFn>
double dtw_impl(std::size_t n, std::size_t m, std::ptrdiff_t band,
                CostFn&& cost, double cutoff = kInf) {
  if (n == 0 || m == 0) {
    throw std::invalid_argument("dtw: empty series");
  }
  // Two-row rolling DP. dp[j] = cost of aligning a[0..i] with b[0..j].
  std::vector<double> prev(m, kInf), curr(m, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    std::size_t j_lo = 0, j_hi = m;
    if (band >= 0) {
      const std::ptrdiff_t center =
          static_cast<std::ptrdiff_t>(i) * static_cast<std::ptrdiff_t>(m) /
          static_cast<std::ptrdiff_t>(n);
      j_lo = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, center - band));
      j_hi = static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(m),
                                   center + band + 1));
    }
    double row_min = kInf;
    for (std::size_t j = j_lo; j < j_hi; ++j) {
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, prev[j]);
        if (j > 0) best = std::min(best, curr[j - 1]);
        if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);
      }
      curr[j] = best + cost(i, j);
      row_min = std::min(row_min, curr[j]);
    }
    if (!(row_min < cutoff)) return kInf;  // abandoned: true dtw >= cutoff
    prev.swap(curr);
  }
  return prev[m - 1];
}

}  // namespace

double dtw(std::span<const double> a, std::span<const double> b,
           std::ptrdiff_t band) {
  return dtw_impl(a.size(), b.size(), band, [&](std::size_t i, std::size_t j) {
    return std::abs(a[i] - b[j]);
  });
}

double dtw_multivariate(const Matrix& a, const Matrix& b,
                        std::ptrdiff_t band) {
  if (a.cols() != b.cols()) {
    throw ShapeError("dtw_multivariate: dimension mismatch");
  }
  const std::size_t d = a.cols();
  return dtw_impl(a.rows(), b.rows(), band, [&](std::size_t i, std::size_t j) {
    double s = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double diff = a(i, k) - b(j, k);
      s += diff * diff;
    }
    return std::sqrt(s);
  });
}

double erp(std::span<const double> a, std::span<const double> b, double gap) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 0.0;
  std::vector<double> prev(m + 1, 0.0), curr(m + 1, 0.0);
  for (std::size_t j = 1; j <= m; ++j) {
    prev[j] = prev[j - 1] + std::abs(b[j - 1] - gap);
  }
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = prev[0] + std::abs(a[i - 1] - gap);
    for (std::size_t j = 1; j <= m; ++j) {
      const double match = prev[j - 1] + std::abs(a[i - 1] - b[j - 1]);
      const double del_a = prev[j] + std::abs(a[i - 1] - gap);
      const double del_b = curr[j - 1] + std::abs(b[j - 1] - gap);
      curr[j] = std::min({match, del_a, del_b});
    }
    prev.swap(curr);
  }
  return prev[m];
}

double lcss_distance(std::span<const double> a, std::span<const double> b,
                     double eps, std::size_t delta) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 1.0;
  std::vector<std::size_t> prev(m + 1, 0), curr(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const bool within_delta =
          (i > j ? i - j : j - i) <= delta;
      if (within_delta && std::abs(a[i - 1] - b[j - 1]) < eps) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    prev.swap(curr);
  }
  const double lcss = static_cast<double>(prev[m]);
  return 1.0 - lcss / static_cast<double>(std::min(n, m));
}

double series_distance(SeriesDistance kind, std::span<const double> a,
                       std::span<const double> b) {
  switch (kind) {
    case SeriesDistance::kDtw:
      return dtw(a, b);
    case SeriesDistance::kErp:
      return erp(a, b);
    case SeriesDistance::kLcss: {
      double sum = 0.0, sum2 = 0.0;
      const std::size_t total = a.size() + b.size();
      for (double x : a) sum += x, sum2 += x * x;
      for (double x : b) sum += x, sum2 += x * x;
      const double mean = sum / static_cast<double>(total);
      const double var =
          std::max(0.0, sum2 / static_cast<double>(total) - mean * mean);
      const double eps = 0.5 * std::sqrt(var) + 1e-12;
      const std::size_t delta = std::max(a.size(), b.size()) / 10 + 1;
      return lcss_distance(a, b, eps, delta);
    }
  }
  throw std::logic_error("series_distance: bad kind");
}

Matrix pairwise_series_distance(const Matrix& series, SeriesDistance kind) {
  const std::size_t n = series.rows();
  const std::size_t len = series.cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    std::span<const double> a(series.data() + i * len, len);
    for (std::size_t j = i + 1; j < n; ++j) {
      std::span<const double> b(series.data() + j * len, len);
      const double d = series_distance(kind, a, b);
      out(i, j) = out(j, i) = d;
    }
  }
  return out;
}

// ---- Pruned k-NN DTW graph construction (DESIGN.md §13) --------------------

double lb_kim(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("lb_kim: empty series");
  }
  double lb = std::abs(a.front() - b.front());
  // (0,0) and (n-1,m-1) are distinct path cells unless both series have
  // length 1, so the endpoint costs add.
  if (a.size() > 1 || b.size() > 1) lb += std::abs(a.back() - b.back());
  return lb;
}

KeoghEnvelope keogh_envelope(std::span<const double> s, std::ptrdiff_t band) {
  const std::size_t m = s.size();
  KeoghEnvelope env;
  env.lower.resize(m);
  env.upper.resize(m);
  if (m == 0) return env;
  const std::size_t r =
      band < 0 ? m : static_cast<std::size_t>(band);
  if (r >= m) {  // unconstrained: global min/max
    const auto [lo, hi] = std::minmax_element(s.begin(), s.end());
    std::fill(env.lower.begin(), env.lower.end(), *lo);
    std::fill(env.upper.begin(), env.upper.end(), *hi);
    return env;
  }
  // Monotone-deque sliding window min/max over |i - j| <= r, O(m) total.
  std::deque<std::size_t> min_q, max_q;
  std::size_t fed = 0;  // elements pushed into the deques so far
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t hi = std::min(m, i + r + 1);
    for (; fed < hi; ++fed) {
      while (!min_q.empty() && s[min_q.back()] >= s[fed]) min_q.pop_back();
      min_q.push_back(fed);
      while (!max_q.empty() && s[max_q.back()] <= s[fed]) max_q.pop_back();
      max_q.push_back(fed);
    }
    const std::size_t lo = i >= r ? i - r : 0;
    while (min_q.front() < lo) min_q.pop_front();
    while (max_q.front() < lo) max_q.pop_front();
    env.lower[i] = s[min_q.front()];
    env.upper[i] = s[max_q.front()];
  }
  return env;
}

double lb_keogh(std::span<const double> a, const KeoghEnvelope& env_b) {
  if (a.size() != env_b.lower.size()) {
    throw std::invalid_argument("lb_keogh: length mismatch");
  }
  double lb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > env_b.upper[i]) {
      lb += a[i] - env_b.upper[i];
    } else if (a[i] < env_b.lower[i]) {
      lb += env_b.lower[i] - a[i];
    }
  }
  return lb;
}

double dtw_early_abandoned(std::span<const double> a,
                           std::span<const double> b, std::ptrdiff_t band,
                           double cutoff) {
  return dtw_impl(
      a.size(), b.size(), band,
      [&](std::size_t i, std::size_t j) { return std::abs(a[i] - b[j]); },
      cutoff);
}

double TopKNeighbors::cutoff() const noexcept {
  return items_.size() < k_ ? kInf : items_.back().dist;
}

bool TopKNeighbors::offer(double d, std::size_t j) {
  if (!(d < cutoff())) return false;
  // Insert before the first strictly-greater distance: equal distances
  // keep their earlier (smaller) index first.
  auto pos = std::upper_bound(
      items_.begin(), items_.end(), d,
      [](double value, const Neighbor& c) { return value < c.dist; });
  items_.insert(pos, Neighbor{d, j});
  if (items_.size() > k_) items_.pop_back();
  return true;
}

namespace {

/// Top-k scan of row `i` against every other row. The TopKNeighbors
/// selection rule is shared by the exact and pruned modes; pruning can then
/// safely discard any candidate whose lower bound is >= the running cutoff,
/// because the exact loop would have rejected it too.
void scan_row(const Matrix& series, std::size_t i, const KnnOptions& opts,
              const std::vector<KeoghEnvelope>& envs, TopKNeighbors& best,
              KnnStats& st) {
  const std::size_t n = series.rows();
  const std::size_t len = series.cols();
  const std::span<const double> a(series.data() + i * len, len);
  best.clear();
  for (std::size_t j = 0; j < n; ++j) {
    if (j == i) continue;
    ++st.pairs;
    const double cutoff = best.cutoff();
    const std::span<const double> b(series.data() + j * len, len);
    if (opts.prune && cutoff < kInf) {
      if (lb_kim(a, b) >= cutoff) {
        ++st.lb_kim_pruned;
        continue;
      }
      if (lb_keogh(a, envs[j]) >= cutoff) {
        ++st.lb_keogh_pruned;
        continue;
      }
    }
    ++st.dtw_started;
    const double d =
        opts.prune
            ? dtw_early_abandoned(a, b, opts.band, cutoff)
            : dtw_impl(len, len, opts.band,
                       [&](std::size_t p, std::size_t q) {
                         return std::abs(a[p] - b[q]);
                       });
    if (!best.offer(d, j)) {
      if (opts.prune && d == kInf) ++st.dtw_abandoned;
    }
  }
}

}  // namespace

NeighborList knn_series_graph(const Matrix& series, const KnnOptions& opts,
                              KnnStats* stats) {
  const std::size_t n = series.rows();
  const std::size_t len = series.cols();
  if (opts.k == 0) {
    throw std::invalid_argument("knn_series_graph: k must be > 0");
  }
  if (n > 0 && len == 0) {
    throw std::invalid_argument("knn_series_graph: empty series");
  }
  const std::size_t k = n == 0 ? 0 : std::min(opts.k, n - 1);
  NeighborList out;
  out.num_nodes = n;
  out.k = k;
  out.offsets.resize(n + 1);
  for (std::size_t i = 0; i <= n; ++i) out.offsets[i] = i * k;
  out.idx.assign(n * k, 0);
  out.dist.assign(n * k, 0.0);
  if (n == 0 || k == 0) return out;

  // Keogh envelopes, one per row, built up front (pruned mode only):
  // O(N·T) memory, reused by every scan against that row.
  std::vector<KeoghEnvelope> envs;
  ThreadPool& pool = ThreadPool::global();
  // Fixed row grain — shard boundaries (hence per-row results and the shard
  // ownership) never depend on the thread count.
  constexpr std::size_t kRowGrain = 4;
  if (opts.prune) {
    envs.resize(n);
    pool.parallel_for(0, n, kRowGrain, [&](std::size_t b, std::size_t e) {
      for (std::size_t j = b; j < e; ++j) {
        envs[j] = keogh_envelope(
            std::span<const double>(series.data() + j * len, len), opts.band);
      }
    });
  }

  // Work counters: integer sums are order-independent, so relaxed atomics
  // keep the reported stats thread-count deterministic.
  std::atomic<std::size_t> pairs{0}, kim{0}, keogh{0}, started{0},
      abandoned{0};
  pool.parallel_for(0, n, kRowGrain, [&](std::size_t b, std::size_t e) {
    TopKNeighbors best(k);
    KnnStats local;
    for (std::size_t i = b; i < e; ++i) {
      scan_row(series, i, opts, envs, best, local);
      for (std::size_t r = 0; r < best.size(); ++r) {
        out.idx[i * k + r] = best.items()[r].idx;
        out.dist[i * k + r] = best.items()[r].dist;
      }
    }
    pairs.fetch_add(local.pairs, std::memory_order_relaxed);
    kim.fetch_add(local.lb_kim_pruned, std::memory_order_relaxed);
    keogh.fetch_add(local.lb_keogh_pruned, std::memory_order_relaxed);
    started.fetch_add(local.dtw_started, std::memory_order_relaxed);
    abandoned.fetch_add(local.dtw_abandoned, std::memory_order_relaxed);
  });
  if (stats != nullptr) {
    stats->pairs = pairs.load();
    stats->lb_kim_pruned = kim.load();
    stats->lb_keogh_pruned = keogh.load();
    stats->dtw_started = started.load();
    stats->dtw_abandoned = abandoned.load();
  }
  return out;
}

}  // namespace rihgcn::ts
