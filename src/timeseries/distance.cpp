#include "timeseries/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rihgcn::ts {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Generic DTW skeleton parameterized by a local-cost callable cost(i, j).
template <typename CostFn>
double dtw_impl(std::size_t n, std::size_t m, std::ptrdiff_t band,
                CostFn&& cost) {
  if (n == 0 || m == 0) {
    throw std::invalid_argument("dtw: empty series");
  }
  // Two-row rolling DP. dp[j] = cost of aligning a[0..i] with b[0..j].
  std::vector<double> prev(m, kInf), curr(m, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    std::size_t j_lo = 0, j_hi = m;
    if (band >= 0) {
      const std::ptrdiff_t center =
          static_cast<std::ptrdiff_t>(i) * static_cast<std::ptrdiff_t>(m) /
          static_cast<std::ptrdiff_t>(n);
      j_lo = static_cast<std::size_t>(std::max<std::ptrdiff_t>(0, center - band));
      j_hi = static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(m),
                                   center + band + 1));
    }
    for (std::size_t j = j_lo; j < j_hi; ++j) {
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, prev[j]);
        if (j > 0) best = std::min(best, curr[j - 1]);
        if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);
      }
      curr[j] = best + cost(i, j);
    }
    prev.swap(curr);
  }
  return prev[m - 1];
}

}  // namespace

double dtw(std::span<const double> a, std::span<const double> b,
           std::ptrdiff_t band) {
  return dtw_impl(a.size(), b.size(), band, [&](std::size_t i, std::size_t j) {
    return std::abs(a[i] - b[j]);
  });
}

double dtw_multivariate(const Matrix& a, const Matrix& b,
                        std::ptrdiff_t band) {
  if (a.cols() != b.cols()) {
    throw ShapeError("dtw_multivariate: dimension mismatch");
  }
  const std::size_t d = a.cols();
  return dtw_impl(a.rows(), b.rows(), band, [&](std::size_t i, std::size_t j) {
    double s = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const double diff = a(i, k) - b(j, k);
      s += diff * diff;
    }
    return std::sqrt(s);
  });
}

double erp(std::span<const double> a, std::span<const double> b, double gap) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 0.0;
  std::vector<double> prev(m + 1, 0.0), curr(m + 1, 0.0);
  for (std::size_t j = 1; j <= m; ++j) {
    prev[j] = prev[j - 1] + std::abs(b[j - 1] - gap);
  }
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = prev[0] + std::abs(a[i - 1] - gap);
    for (std::size_t j = 1; j <= m; ++j) {
      const double match = prev[j - 1] + std::abs(a[i - 1] - b[j - 1]);
      const double del_a = prev[j] + std::abs(a[i - 1] - gap);
      const double del_b = curr[j - 1] + std::abs(b[j - 1] - gap);
      curr[j] = std::min({match, del_a, del_b});
    }
    prev.swap(curr);
  }
  return prev[m];
}

double lcss_distance(std::span<const double> a, std::span<const double> b,
                     double eps, std::size_t delta) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0 || m == 0) return 1.0;
  std::vector<std::size_t> prev(m + 1, 0), curr(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const bool within_delta =
          (i > j ? i - j : j - i) <= delta;
      if (within_delta && std::abs(a[i - 1] - b[j - 1]) < eps) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    prev.swap(curr);
  }
  const double lcss = static_cast<double>(prev[m]);
  return 1.0 - lcss / static_cast<double>(std::min(n, m));
}

double series_distance(SeriesDistance kind, std::span<const double> a,
                       std::span<const double> b) {
  switch (kind) {
    case SeriesDistance::kDtw:
      return dtw(a, b);
    case SeriesDistance::kErp:
      return erp(a, b);
    case SeriesDistance::kLcss: {
      double sum = 0.0, sum2 = 0.0;
      const std::size_t total = a.size() + b.size();
      for (double x : a) sum += x, sum2 += x * x;
      for (double x : b) sum += x, sum2 += x * x;
      const double mean = sum / static_cast<double>(total);
      const double var =
          std::max(0.0, sum2 / static_cast<double>(total) - mean * mean);
      const double eps = 0.5 * std::sqrt(var) + 1e-12;
      const std::size_t delta = std::max(a.size(), b.size()) / 10 + 1;
      return lcss_distance(a, b, eps, delta);
    }
  }
  throw std::logic_error("series_distance: bad kind");
}

Matrix pairwise_series_distance(const Matrix& series, SeriesDistance kind) {
  const std::size_t n = series.rows();
  const std::size_t len = series.cols();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    std::span<const double> a(series.data() + i * len, len);
    for (std::size_t j = i + 1; j < n; ++j) {
      std::span<const double> b(series.data() + j * len, len);
      const double d = series_distance(kind, a, b);
      out(i, j) = out(j, i) = d;
    }
  }
  return out;
}

}  // namespace rihgcn::ts
