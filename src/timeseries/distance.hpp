// Time-series distance measures used to build the temporal graphs (§III-D):
// Dynamic Time Warping (the paper's choice), plus Edit distance with Real
// Penalty and Longest Common SubSequence, which the paper lists as
// alternatives — implemented so the choice can be ablated.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/matrix.hpp"

namespace rihgcn::ts {

using rihgcn::Matrix;

/// Dynamic Time Warping distance between two univariate series, |.| local
/// cost. `band` is the Sakoe-Chiba band half-width; negative = unconstrained.
/// Returns +inf when a band makes alignment infeasible.
[[nodiscard]] double dtw(std::span<const double> a, std::span<const double> b,
                         std::ptrdiff_t band = -1);

/// DTW between multivariate series; rows are timesteps, columns dimensions,
/// local cost is the Euclidean distance between row vectors.
[[nodiscard]] double dtw_multivariate(const Matrix& a, const Matrix& b,
                                      std::ptrdiff_t band = -1);

/// Edit distance with Real Penalty (Chen & Ng 2004) with gap element g.
/// A metric (satisfies triangle inequality), unlike DTW.
[[nodiscard]] double erp(std::span<const double> a, std::span<const double> b,
                         double gap = 0.0);

/// Longest Common SubSequence similarity turned into a distance:
///   1 - LCSS(a,b) / min(|a|,|b|),
/// where elements match if |a_i - b_j| < eps and |i - j| <= delta.
[[nodiscard]] double lcss_distance(std::span<const double> a,
                                   std::span<const double> b, double eps,
                                   std::size_t delta);

/// Which distance the temporal-graph builder uses.
enum class SeriesDistance { kDtw, kErp, kLcss };

/// Dispatch on SeriesDistance for univariate series. For kLcss, eps is taken
/// as 0.5 * stddev(a ∪ b) and delta as max(|a|,|b|)/10 + 1.
[[nodiscard]] double series_distance(SeriesDistance kind,
                                     std::span<const double> a,
                                     std::span<const double> b);

/// Pairwise distance matrix between the ROWS of `series` (each row is one
/// node's series). Symmetric, zero diagonal.
[[nodiscard]] Matrix pairwise_series_distance(const Matrix& series,
                                              SeriesDistance kind =
                                                  SeriesDistance::kDtw);

}  // namespace rihgcn::ts
