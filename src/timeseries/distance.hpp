// Time-series distance measures used to build the temporal graphs (§III-D):
// Dynamic Time Warping (the paper's choice), plus Edit distance with Real
// Penalty and Longest Common SubSequence, which the paper lists as
// alternatives — implemented so the choice can be ablated.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace rihgcn::ts {

using rihgcn::Matrix;

/// Dynamic Time Warping distance between two univariate series, |.| local
/// cost. `band` is the Sakoe-Chiba band half-width; negative = unconstrained.
/// Returns +inf when a band makes alignment infeasible.
[[nodiscard]] double dtw(std::span<const double> a, std::span<const double> b,
                         std::ptrdiff_t band = -1);

/// DTW between multivariate series; rows are timesteps, columns dimensions,
/// local cost is the Euclidean distance between row vectors.
[[nodiscard]] double dtw_multivariate(const Matrix& a, const Matrix& b,
                                      std::ptrdiff_t band = -1);

/// Edit distance with Real Penalty (Chen & Ng 2004) with gap element g.
/// A metric (satisfies triangle inequality), unlike DTW.
[[nodiscard]] double erp(std::span<const double> a, std::span<const double> b,
                         double gap = 0.0);

/// Longest Common SubSequence similarity turned into a distance:
///   1 - LCSS(a,b) / min(|a|,|b|),
/// where elements match if |a_i - b_j| < eps and |i - j| <= delta.
[[nodiscard]] double lcss_distance(std::span<const double> a,
                                   std::span<const double> b, double eps,
                                   std::size_t delta);

/// Which distance the temporal-graph builder uses.
enum class SeriesDistance { kDtw, kErp, kLcss };

/// Dispatch on SeriesDistance for univariate series. For kLcss, eps is taken
/// as 0.5 * stddev(a ∪ b) and delta as max(|a|,|b|)/10 + 1.
[[nodiscard]] double series_distance(SeriesDistance kind,
                                     std::span<const double> a,
                                     std::span<const double> b);

/// Pairwise distance matrix between the ROWS of `series` (each row is one
/// node's series). Symmetric, zero diagonal.
[[nodiscard]] Matrix pairwise_series_distance(const Matrix& series,
                                              SeriesDistance kind =
                                                  SeriesDistance::kDtw);

// ---- Pruned k-NN DTW graph construction (DESIGN.md §13) --------------------
//
// Building a temporal graph over N nodes from pairwise DTW is O(N² T²) —
// unreachable at city scale. What the graph actually needs is only the k
// nearest neighbours of every node, and DTW admits cheap lower bounds
// (LB_Kim O(1), LB_Keogh O(T)) plus row-wise early abandoning, so an exact
// top-k scan degenerates to ~O(N·k) full DTW evaluations in practice.
//
// Determinism/parity contract: knn_series_graph with prune on and off
// returns BITWISE-identical neighbour lists (indices and distances) at any
// thread count. Pruning only ever skips candidates whose lower bound is
// >= the running k-th best distance — candidates the exact selection loop
// would reject anyway — and surviving candidates run through the very same
// dtw_impl arithmetic as dtw(), so kept distances carry identical bits.
// Rows are sharded over the global ThreadPool with a fixed grain; each row's
// result depends only on that row's scan, never on scheduling.

/// LB_Kim (first/last-point bound): every warping path aligns the two first
/// elements and the two last elements, so
///   |a_0 - b_0| + |a_{n-1} - b_{m-1}| <= dtw(a, b).
[[nodiscard]] double lb_kim(std::span<const double> a,
                            std::span<const double> b);

/// Sliding min/max envelope of a series for LB_Keogh: lower[i]/upper[i] are
/// the min/max of s over the window |i - j| <= band (band < 0 = the whole
/// series, matching dtw()'s unconstrained alignment).
struct KeoghEnvelope {
  std::vector<double> lower;
  std::vector<double> upper;
};
[[nodiscard]] KeoghEnvelope keogh_envelope(std::span<const double> s,
                                           std::ptrdiff_t band);

/// LB_Keogh: sum over i of the distance from a_i to [lower_i, upper_i] of
/// b's envelope. Requires equal lengths and the same band as the dtw() call
/// it bounds: lb_keogh(a, env(b, band)) <= dtw(a, b, band).
[[nodiscard]] double lb_keogh(std::span<const double> a,
                              const KeoghEnvelope& env_b);

/// DTW with row-wise early abandoning: identical arithmetic to dtw(), but
/// after each DP row, if every reachable cell already costs >= `cutoff` the
/// search is abandoned (every complete path must pass through each row and
/// local costs are nonnegative, so the true distance is >= cutoff too) and
/// +inf is returned. A finite return value is bitwise equal to dtw(a, b,
/// band); +inf means only dtw(a, b, band) >= cutoff.
[[nodiscard]] double dtw_early_abandoned(std::span<const double> a,
                                         std::span<const double> b,
                                         std::ptrdiff_t band, double cutoff);

/// One selected neighbour; ordering is (dist, idx) ascending.
struct Neighbor {
  double dist = 0.0;
  std::size_t idx = 0;
};

/// The row-sparsify selection rule shared by every k-NN graph builder —
/// spatial (graph::knn_from_distances / knn_from_coords) and temporal
/// (knn_series_graph): keep the k smallest (distance, index) pairs while
/// scanning candidate indices ASCENDING. A candidate is admitted only when
/// its distance is STRICTLY below the current k-th best, so an equal
/// distance at a later index always loses the tie. That strictness is what
/// makes lower-bound pruning sound: skipping any candidate whose lower bound
/// is >= cutoff() can never change the selected set.
class TopKNeighbors {
 public:
  explicit TopKNeighbors(std::size_t k) : k_(k) { items_.reserve(k + 1); }

  /// Admission threshold: +inf until k candidates are held, then the k-th
  /// smallest distance seen. Any candidate whose distance (or any lower
  /// bound on it) is >= this value cannot enter the selection.
  [[nodiscard]] double cutoff() const noexcept;
  /// Offer candidate (d, j); call with j strictly ascending. Returns true
  /// if the candidate was admitted (d < cutoff()).
  bool offer(double d, std::size_t j);

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  /// Selection so far, sorted by (dist, idx) ascending.
  [[nodiscard]] const std::vector<Neighbor>& items() const noexcept {
    return items_;
  }
  /// Reset for the next row (capacity is kept).
  void clear() noexcept { items_.clear(); }

 private:
  std::size_t k_;
  std::vector<Neighbor> items_;
};

/// Per-row k-nearest-neighbour lists over the rows of a series matrix.
/// Row i's neighbours live at [offsets[i], offsets[i+1]) of idx/dist, sorted
/// by (distance, index) ascending — ties broken toward the smaller index.
struct NeighborList {
  std::size_t num_nodes = 0;
  std::size_t k = 0;  ///< neighbours per row (= min(requested k, N-1))
  std::vector<std::size_t> offsets;  ///< num_nodes + 1
  std::vector<std::size_t> idx;
  std::vector<double> dist;
};

struct KnnOptions {
  std::size_t k = 8;
  /// Sakoe-Chiba band for the DTW calls (negative = unconstrained).
  std::ptrdiff_t band = -1;
  /// Apply LB_Kim/LB_Keogh prefilter + early abandon. Off = exact full scan
  /// with the same selection rule (the parity reference).
  bool prune = true;
};

/// Work counters for tests and benches (summed atomically; exact counts are
/// thread-count independent because each candidate pair is classified by a
/// deterministic per-row scan).
struct KnnStats {
  std::size_t pairs = 0;            ///< candidate pairs considered
  std::size_t lb_kim_pruned = 0;    ///< rejected by LB_Kim
  std::size_t lb_keogh_pruned = 0;  ///< rejected by LB_Keogh
  std::size_t dtw_started = 0;      ///< exact DPs entered
  std::size_t dtw_abandoned = 0;    ///< exact DPs abandoned early
};

/// Deterministic top-k DTW neighbour search over the rows of `series`
/// (N x T), sharded over the global ThreadPool. See the contract above:
/// results are bitwise identical for prune on/off and any thread count, and
/// no N x N matrix is ever materialized (peak extra memory is O(N·(k + T))).
[[nodiscard]] NeighborList knn_series_graph(const Matrix& series,
                                            const KnnOptions& opts = {},
                                            KnnStats* stats = nullptr);

}  // namespace rihgcn::ts
