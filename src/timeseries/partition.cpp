#include "timeseries/partition.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "timeseries/distance.hpp"

namespace rihgcn::ts {

std::pair<std::size_t, std::size_t> Partition::slot_range(
    std::size_t i) const {
  const std::size_t slots = total_slots();
  const std::size_t a = (boundaries.at(i) + rotation) % slots;
  const std::size_t b = (boundaries.at(i + 1) + rotation) % slots;
  return {a, b == 0 ? slots : b};
}

bool Partition::contains(std::size_t i, std::size_t s) const {
  const auto [a, b] = slot_range(i);
  if (a < b) return s >= a && s < b;
  // Wrapping interval [a, slots) ∪ [0, b).
  return s >= a || s < b;
}

std::size_t Partition::interval_of(std::size_t s) const {
  if (s >= total_slots()) {
    throw std::out_of_range("Partition::interval_of: slot outside partition");
  }
  for (std::size_t i = 0; i < num_intervals(); ++i) {
    if (contains(i, s)) return i;
  }
  throw std::logic_error("Partition::interval_of: no interval contains slot");
}

Partition Partition::equal_split(std::size_t slots, std::size_t m) {
  if (m == 0 || m > slots) {
    throw std::invalid_argument("equal_split: need 1 <= m <= slots");
  }
  Partition p;
  p.boundaries.resize(m + 1);
  for (std::size_t i = 0; i <= m; ++i) {
    p.boundaries[i] = i * slots / m;
  }
  return p;
}

bool Partition::valid(std::size_t slots) const {
  if (boundaries.size() < 2) return false;
  if (boundaries.front() != 0 || boundaries.back() != slots) return false;
  if (rotation >= slots) return false;
  for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
    if (boundaries[i] >= boundaries[i + 1]) return false;
  }
  return true;
}

TimelinePartitioner::TimelinePartitioner(Matrix day_profile,
                                         PartitionConstraints constraints)
    : day_profile_(std::move(day_profile)), constraints_(constraints) {
  if (day_profile_.rows() == 0 || day_profile_.cols() == 0) {
    throw std::invalid_argument("TimelinePartitioner: empty profile");
  }
  if (constraints_.min_len == 0) constraints_.min_len = 1;
  if (constraints_.max_len == 0 || constraints_.max_len > day_profile_.rows()) {
    constraints_.max_len = day_profile_.rows();
  }
}

Matrix TimelinePartitioner::wrapped_rows(std::size_t start,
                                         std::size_t len) const {
  const std::size_t slots_total = slots();
  if (start + len <= slots_total) {
    return day_profile_.slice_rows(start, start + len);
  }
  const Matrix head = day_profile_.slice_rows(start, slots_total);
  const Matrix tail = day_profile_.slice_rows(0, start + len - slots_total);
  return vcat(head, tail);
}

double TimelinePartitioner::interval_distance_rotated(
    std::size_t a0, std::size_t a1, std::size_t b0, std::size_t b1,
    std::size_t rotation) const {
  const std::size_t slots_total = slots();
  const std::size_t ra = (a0 + rotation) % slots_total;
  const std::size_t rb = (b0 + rotation) % slots_total;
  const std::array<std::size_t, 4> key{ra, a1 - a0, rb, b1 - b0};
  auto it = distance_cache_.find(key);
  if (it != distance_cache_.end()) return it->second;
  const Matrix sa = wrapped_rows(ra, a1 - a0);
  const Matrix sb = wrapped_rows(rb, b1 - b0);
  const double d = dtw_multivariate(sa, sb);
  distance_cache_.emplace(key, d);
  return d;
}

double TimelinePartitioner::interval_distance(std::size_t a0, std::size_t a1,
                                              std::size_t b0,
                                              std::size_t b1) const {
  return interval_distance_rotated(a0, a1, b0, b1, 0);
}

double TimelinePartitioner::objective(const Partition& p) const {
  double total = 0.0;
  const std::size_t m = p.num_intervals();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      total += interval_distance_rotated(p.boundaries[i], p.boundaries[i + 1],
                                         p.boundaries[j], p.boundaries[j + 1],
                                         p.rotation);
    }
  }
  return total;
}

bool TimelinePartitioner::lengths_ok(const Partition& p) const {
  for (std::size_t i = 0; i < p.num_intervals(); ++i) {
    const std::size_t len = p.length(i);
    if (len < constraints_.min_len || len > constraints_.max_len) return false;
  }
  return true;
}

bool TimelinePartitioner::satisfies(const Partition& p) const {
  if (!p.valid(slots())) return false;
  if (!lengths_ok(p)) return false;
  const std::size_t m = p.num_intervals();
  if (m <= 1) return true;  // ratio constraints are vacuous for one interval
  // γ: longest interval must cover < gamma of the timeline.
  std::size_t longest = 0;
  for (std::size_t i = 0; i < m; ++i) longest = std::max(longest, p.length(i));
  if (static_cast<double>(longest) >=
      constraints_.gamma * static_cast<double>(slots())) {
    return false;
  }
  // η: min pairwise distance / sum of pairwise distances <= eta, i.e. no
  // partition where every pair is equally (un)informative is preferred; the
  // paper states the ratio must be <= η (10%).
  double min_d = std::numeric_limits<double>::infinity();
  double sum_d = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double d = interval_distance_rotated(
          p.boundaries[i], p.boundaries[i + 1], p.boundaries[j],
          p.boundaries[j + 1], p.rotation);
      min_d = std::min(min_d, d);
      sum_d += d;
    }
  }
  if (sum_d <= 0.0) return false;
  return min_d / sum_d <= constraints_.eta + 1e-12;
}

void TimelinePartitioner::enumerate(std::size_t m, std::size_t rotation,
                                    std::vector<std::size_t>& current,
                                    Partition& best, double& best_obj,
                                    std::size_t& evals,
                                    std::size_t eval_cap) const {
  if (evals >= eval_cap) return;
  const std::size_t placed = current.size() - 1;  // boundaries placed so far
  const std::size_t last = current.back();
  if (placed == m - 1) {
    // Close with the final boundary at `slots`.
    const std::size_t len = slots() - last;
    if (len < constraints_.min_len || len > constraints_.max_len) return;
    Partition p;
    p.boundaries = current;
    p.boundaries.push_back(slots());
    p.rotation = rotation;
    ++evals;
    if (!satisfies(p)) return;
    const double obj = objective(p);
    if (obj > best_obj) {
      best_obj = obj;
      best = p;
    }
    return;
  }
  const std::size_t remaining = m - placed;  // intervals still to create
  for (std::size_t next = last + constraints_.min_len;
       next + (remaining - 1) * constraints_.min_len <= slots(); ++next) {
    if (next - last > constraints_.max_len) break;
    current.push_back(next);
    enumerate(m, rotation, current, best, best_obj, evals, eval_cap);
    current.pop_back();
    if (evals >= eval_cap) return;
  }
}

Partition TimelinePartitioner::local_search(std::size_t m,
                                            std::size_t rotation,
                                            Rng& rng) const {
  Partition best = Partition::equal_split(slots(), m);
  best.rotation = rotation;
  double best_obj = satisfies(best) ? objective(best) : -1.0;
  const std::size_t restarts = 8;
  const std::size_t iters = 200;
  for (std::size_t r = 0; r < restarts; ++r) {
    Partition p = Partition::equal_split(slots(), m);
    p.rotation = rotation;
    // Random perturbation of internal boundaries for this restart.
    for (std::size_t i = 1; i < m; ++i) {
      const std::ptrdiff_t jitter =
          static_cast<std::ptrdiff_t>(rng.uniform_index(3)) - 1;
      const std::ptrdiff_t moved =
          static_cast<std::ptrdiff_t>(p.boundaries[i]) + jitter;
      if (moved > static_cast<std::ptrdiff_t>(p.boundaries[i - 1]) &&
          moved < static_cast<std::ptrdiff_t>(p.boundaries[i + 1])) {
        p.boundaries[i] = static_cast<std::size_t>(moved);
      }
    }
    double obj = satisfies(p) ? objective(p) : -1.0;
    for (std::size_t it = 0; it < iters; ++it) {
      bool improved = false;
      for (std::size_t i = 1; i < m; ++i) {
        for (const std::ptrdiff_t delta : {-1, +1}) {
          const std::ptrdiff_t nb =
              static_cast<std::ptrdiff_t>(p.boundaries[i]) + delta;
          if (nb <= static_cast<std::ptrdiff_t>(p.boundaries[i - 1]) ||
              nb >= static_cast<std::ptrdiff_t>(p.boundaries[i + 1])) {
            continue;
          }
          Partition q = p;
          q.boundaries[i] = static_cast<std::size_t>(nb);
          if (!satisfies(q)) continue;
          const double qobj = objective(q);
          if (qobj > obj) {
            p = q;
            obj = qobj;
            improved = true;
          }
        }
      }
      if (!improved) break;
    }
    if (obj > best_obj) {
      best_obj = obj;
      best = p;
    }
  }
  return best;
}

Partition TimelinePartitioner::search(std::size_t m, std::size_t rotation,
                                      Rng& rng) const {
  Partition best = Partition::equal_split(slots(), m);
  best.rotation = rotation;
  double best_obj = -1.0;
  std::vector<std::size_t> current{0};
  std::size_t evals = 0;
  const std::size_t eval_cap = 50000;
  enumerate(m, rotation, current, best, best_obj, evals, eval_cap);
  if (best_obj >= 0.0 && evals < eval_cap) return best;
  // Search space too large (or nothing satisfied constraints): local search.
  Partition ls = local_search(m, rotation, rng);
  if (best_obj < 0.0) return ls;
  return objective(ls) > best_obj ? ls : best;
}

Partition TimelinePartitioner::partition(std::size_t m, Rng& rng) const {
  if (m == 0) throw std::invalid_argument("partition: m must be >= 1");
  if (m > slots()) {
    throw std::invalid_argument("partition: more intervals than slots");
  }
  if (m == 1) {
    Partition p;
    p.boundaries = {0, slots()};
    return p;
  }
  return search(m, /*rotation=*/0, rng);
}

Partition TimelinePartitioner::partition_circular(std::size_t m, Rng& rng,
                                                  std::size_t rotation_step) const {
  if (rotation_step == 0) rotation_step = 1;
  if (m <= 1) return partition(m, rng);
  Partition best = partition(m, rng);  // rotation 0 is always a candidate
  double best_obj = objective(best);
  for (std::size_t rot = rotation_step; rot < slots(); rot += rotation_step) {
    const Partition candidate = search(m, rot, rng);
    if (!satisfies(candidate)) continue;
    const double obj = objective(candidate);
    if (obj > best_obj) {
      best_obj = obj;
      best = candidate;
    }
  }
  return best;
}

}  // namespace rihgcn::ts
