// Timeline partitioning (paper §III-D, Eq. 2): split the daily cycle into M
// contiguous intervals so that the summed pairwise DTW distance between the
// intervals' historical profiles is maximized, subject to the paper's four
// constraints (minimum/maximum interval length, minimum-distance ratio η,
// longest-interval ratio γ).
//
// The search works on a per-slot "day profile" (rows = time-of-day slots,
// columns = nodes); the paper searches at 1-hour granularity, so callers
// typically pass a 24 x N hourly profile. Interval-pair DTW distances are
// memoized; exhaustive enumeration is used when the candidate count is small
// and seeded stochastic local search otherwise, so the result is
// deterministic for a given seed.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::ts {

/// A partition of [0, slots) into contiguous intervals, optionally CIRCULAR:
/// the paper's future-work idea of forming the timeline into a circle so the
/// first interval need not start at midnight. A circular partition is stored
/// as a rotation offset plus ordinary boundaries over the rotated timeline;
/// interval i covers slots [(boundaries[i]+rotation) mod slots,
/// (boundaries[i+1]+rotation) mod slots).
struct Partition {
  /// M+1 ascending boundaries; boundaries.front()==0, boundaries.back()==slots.
  std::vector<std::size_t> boundaries;
  /// Circular rotation of the whole partition (0 = paper's original setup).
  std::size_t rotation = 0;

  [[nodiscard]] std::size_t num_intervals() const {
    return boundaries.empty() ? 0 : boundaries.size() - 1;
  }
  /// Interval i in the ROTATED (internal) coordinate system.
  [[nodiscard]] std::pair<std::size_t, std::size_t> interval(
      std::size_t i) const {
    return {boundaries.at(i), boundaries.at(i + 1)};
  }
  /// Interval i in REAL slot coordinates: (start, end) where end <= start
  /// means the interval wraps past the end of the day (circular partitions
  /// only; rotation == 0 never wraps).
  [[nodiscard]] std::pair<std::size_t, std::size_t> slot_range(
      std::size_t i) const;
  [[nodiscard]] std::size_t length(std::size_t i) const {
    return boundaries.at(i + 1) - boundaries.at(i);
  }
  /// True if real slot s lies inside interval i (wrap-aware).
  [[nodiscard]] bool contains(std::size_t i, std::size_t s) const;
  /// Index of the interval containing real slot s (s must be < slots).
  [[nodiscard]] std::size_t interval_of(std::size_t s) const;
  /// Equal-length split (remainder spread over the first intervals).
  [[nodiscard]] static Partition equal_split(std::size_t slots, std::size_t m);
  [[nodiscard]] bool valid(std::size_t slots) const;
  [[nodiscard]] std::size_t total_slots() const {
    return boundaries.empty() ? 0 : boundaries.back();
  }
};

/// Constraints from the paper, in slot units. With a 24-slot hourly grid and
/// M = 4 the paper's values are min_len = 1 (1 h), max_len = 12 (Q=2 ⇒ QT/M),
/// eta = 0.10, gamma = 0.5.
struct PartitionConstraints {
  std::size_t min_len = 1;
  std::size_t max_len = 12;
  /// Accept only if min pairwise distance / sum of pairwise distances <= eta.
  double eta = 0.10;
  /// Longest interval / total slots must be < gamma.
  double gamma = 0.5;
};

class TimelinePartitioner {
 public:
  /// day_profile: slots x N (one column per node; one row per time-of-day
  /// slot — the historical average at that slot).
  explicit TimelinePartitioner(Matrix day_profile,
                               PartitionConstraints constraints = {});

  /// Σ_{i<j} DTW(H_i, H_j) over the partition's intervals.
  [[nodiscard]] double objective(const Partition& p) const;
  /// All four paper constraints. Length constraints always apply; the η and
  /// γ ratio constraints only bind for m > 1 (a single interval trivially
  /// spans the whole day).
  [[nodiscard]] bool satisfies(const Partition& p) const;

  /// Best partition into m intervals found by exhaustive search (small
  /// search spaces) or seeded multi-restart local search.
  [[nodiscard]] Partition partition(std::size_t m, Rng& rng) const;

  /// Circular variant (the paper's future-work extension): additionally
  /// searches over rotations of the daily cycle so the first interval need
  /// not start at midnight. `rotation_step` controls the rotation grid
  /// (default: 1 coarse slot). Never worse than partition() in objective.
  [[nodiscard]] Partition partition_circular(std::size_t m, Rng& rng,
                                             std::size_t rotation_step = 1) const;

  [[nodiscard]] std::size_t slots() const noexcept {
    return day_profile_.rows();
  }
  [[nodiscard]] const PartitionConstraints& constraints() const noexcept {
    return constraints_;
  }

  /// DTW distance between two slot-intervals of the profile (memoized).
  [[nodiscard]] double interval_distance(std::size_t a0, std::size_t a1,
                                         std::size_t b0, std::size_t b1) const;

 private:
  [[nodiscard]] bool lengths_ok(const Partition& p) const;
  void enumerate(std::size_t m, std::size_t rotation,
                 std::vector<std::size_t>& current, Partition& best,
                 double& best_obj, std::size_t& evals,
                 std::size_t eval_cap) const;
  [[nodiscard]] Partition local_search(std::size_t m, std::size_t rotation,
                                       Rng& rng) const;
  [[nodiscard]] Partition search(std::size_t m, std::size_t rotation,
                                 Rng& rng) const;
  /// Rows [start, start+len) of the profile, wrapping past the last slot.
  [[nodiscard]] Matrix wrapped_rows(std::size_t start, std::size_t len) const;
  [[nodiscard]] double interval_distance_rotated(std::size_t a0,
                                                 std::size_t a1,
                                                 std::size_t b0,
                                                 std::size_t b1,
                                                 std::size_t rotation) const;

  Matrix day_profile_;
  PartitionConstraints constraints_;
  mutable std::map<std::array<std::size_t, 4>, double> distance_cache_;
};

}  // namespace rihgcn::ts
