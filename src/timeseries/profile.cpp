#include "timeseries/profile.hpp"

#include <stdexcept>

namespace rihgcn::ts {

HistoricalProfile::HistoricalProfile(const std::vector<Matrix>& values,
                                     const std::vector<Matrix>& mask,
                                     std::size_t steps_per_day,
                                     std::size_t feature) {
  if (values.empty()) {
    throw std::invalid_argument("HistoricalProfile: empty series");
  }
  if (values.size() != mask.size()) {
    throw std::invalid_argument("HistoricalProfile: values/mask length differ");
  }
  if (steps_per_day == 0) {
    throw std::invalid_argument("HistoricalProfile: steps_per_day == 0");
  }
  const std::size_t n = values.front().rows();
  if (feature >= values.front().cols()) {
    throw std::invalid_argument("HistoricalProfile: feature out of range");
  }
  profiles_ = Matrix(n, steps_per_day);
  Matrix counts(n, steps_per_day);
  Matrix node_sum(n, 1);
  Matrix node_count(n, 1);
  for (std::size_t t = 0; t < values.size(); ++t) {
    const Matrix& x = values[t];
    const Matrix& m = mask[t];
    if (x.rows() != n || !x.same_shape(m)) {
      throw ShapeError("HistoricalProfile: inconsistent shapes across time");
    }
    const std::size_t slot = t % steps_per_day;
    for (std::size_t i = 0; i < n; ++i) {
      if (m(i, feature) > 0.5) {
        profiles_(i, slot) += x(i, feature);
        counts(i, slot) += 1.0;
        node_sum(i, 0) += x(i, feature);
        node_count(i, 0) += 1.0;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double fallback =
        node_count(i, 0) > 0.0 ? node_sum(i, 0) / node_count(i, 0) : 0.0;
    for (std::size_t s = 0; s < steps_per_day; ++s) {
      profiles_(i, s) =
          counts(i, s) > 0.0 ? profiles_(i, s) / counts(i, s) : fallback;
    }
  }
}

Matrix HistoricalProfile::day_profile(std::size_t coarse_slots) const {
  const std::size_t fine = steps_per_day();
  if (coarse_slots == 0 || coarse_slots > fine) {
    throw std::invalid_argument("day_profile: bad coarse_slots");
  }
  const std::size_t n = num_nodes();
  Matrix out(coarse_slots, n);
  std::vector<double> cnt(coarse_slots, 0.0);
  for (std::size_t s = 0; s < fine; ++s) {
    const std::size_t c = s * coarse_slots / fine;
    for (std::size_t i = 0; i < n; ++i) out(c, i) += profiles_(i, s);
    cnt[c] += 1.0;
  }
  for (std::size_t c = 0; c < coarse_slots; ++c) {
    for (std::size_t i = 0; i < n; ++i) out(c, i) /= cnt[c];
  }
  return out;
}

Matrix HistoricalProfile::interval_series(std::size_t s0,
                                          std::size_t s1) const {
  if (s0 == s1 || s0 >= steps_per_day() || s1 > steps_per_day()) {
    throw std::invalid_argument("interval_series: bad range");
  }
  if (s0 < s1) return profiles_.slice_cols(s0, s1);
  // Wrapping interval (circular partitions): [s0, end) ++ [0, s1).
  return hcat(profiles_.slice_cols(s0, steps_per_day()),
              profiles_.slice_cols(0, s1));
}

}  // namespace rihgcn::ts
