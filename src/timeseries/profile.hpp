// Historical profiles: per-node averages of traffic measurements at each
// time-of-day slot, computed over the training days while respecting the
// missingness mask. These profiles feed both the timeline partitioner
// (hourly granularity, paper §III-D) and the temporal-graph construction
// (per-interval node series whose pairwise DTW distances define adjacency).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"

namespace rihgcn::ts {

/// Per-slot historical averages of one feature across days.
///
/// Input layout matches the rest of the library: `values[t]` and `mask[t]`
/// are N x D matrices for timestep t; `steps_per_day` slots tile the
/// timeline. Slots with no observation anywhere fall back to the node's
/// global observed mean (or 0 if the node never reports).
class HistoricalProfile {
 public:
  HistoricalProfile(const std::vector<Matrix>& values,
                    const std::vector<Matrix>& mask, std::size_t steps_per_day,
                    std::size_t feature = 0);

  /// N x steps_per_day matrix of per-slot averages.
  [[nodiscard]] const Matrix& node_profiles() const noexcept {
    return profiles_;
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return profiles_.rows();
  }
  [[nodiscard]] std::size_t steps_per_day() const noexcept {
    return profiles_.cols();
  }

  /// Aggregate to a coarser grid (e.g. 5-min slots -> 24 hourly slots),
  /// returned TRANSPOSED as (coarse_slots x N) — the layout the
  /// TimelinePartitioner expects (rows = time).
  [[nodiscard]] Matrix day_profile(std::size_t coarse_slots) const;

  /// Per-node series restricted to slot range [s0, s1): N x (s1-s0).
  /// This is H_i of the paper — the input to temporal-graph DTW distances.
  /// s1 <= s0 selects the WRAPPING range [s0, end) ++ [0, s1), which circular
  /// partitions (paper's future-work extension) produce.
  [[nodiscard]] Matrix interval_series(std::size_t s0, std::size_t s1) const;

 private:
  Matrix profiles_;  // N x steps_per_day
};

}  // namespace rihgcn::ts
