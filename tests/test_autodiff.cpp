#include "autodiff/tape.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/csr.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"

namespace rihgcn::ad {
namespace {

// Analytic-vs-numeric gradient harness: `build` constructs a scalar loss
// from leaf vars bound to `params` on a fresh tape. Verifies every
// parameter's gradient against central differences.
using Builder = std::function<Var(Tape&, std::vector<Var>&)>;

void expect_gradients_match(std::vector<Parameter>& params,
                            const Builder& build, double tol = 1e-5) {
  auto run = [&](bool do_backward) {
    Tape tape;
    std::vector<Var> leaves;
    leaves.reserve(params.size());
    for (auto& p : params) leaves.push_back(tape.leaf(p));
    Var loss = build(tape, leaves);
    const double value = tape.value(loss)(0, 0);
    if (do_backward) tape.backward(loss);
    return value;
  };
  for (auto& p : params) p.zero_grad();
  run(/*do_backward=*/true);
  for (auto& p : params) {
    const Matrix analytic = p.grad();
    const double diff = gradient_check(
        p, [&] { return run(false); }, analytic, 1e-6);
    EXPECT_LT(diff, tol) << "gradient mismatch for parameter " << p.name();
  }
}

Matrix randn(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return rng.normal_matrix(r, c, 1.0);
}

TEST(Tape, ConstantHasNoGradient) {
  Tape tape;
  Var c = tape.constant(Matrix{{1, 2}});
  EXPECT_EQ(tape.value(c)(0, 1), 2.0);
}

TEST(Tape, LeafRoutesGradientToParameter) {
  Parameter p(Matrix{{1.0, 2.0}}, "p");
  Tape tape;
  Var x = tape.leaf(p);
  Var loss = tape.sum_all(x);
  tape.backward(loss);
  EXPECT_EQ(p.grad()(0, 0), 1.0);
  EXPECT_EQ(p.grad()(0, 1), 1.0);
}

TEST(Tape, GradientsAccumulateAcrossBackwardCalls) {
  Parameter p(Matrix{{3.0}}, "p");
  for (int i = 0; i < 2; ++i) {
    Tape tape;
    Var loss = tape.sum_all(tape.leaf(p));
    tape.backward(loss);
  }
  EXPECT_EQ(p.grad()(0, 0), 2.0);
}

TEST(Tape, BackwardRequiresScalar) {
  Parameter p(Matrix{{1.0, 2.0}}, "p");
  Tape tape;
  Var x = tape.leaf(p);
  EXPECT_THROW(tape.backward(x), ShapeError);
}

TEST(Tape, CrossTapeVarRejected) {
  Tape t1, t2;
  Var a = t1.constant(Matrix{{1.0}});
  Var b = t2.constant(Matrix{{1.0}});
  EXPECT_THROW(t1.add(a, b), std::logic_error);
}

TEST(TapeGrad, Add) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(3, 2, 1), "a");
  ps.emplace_back(randn(3, 2, 2), "b");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.add(v[0], v[1]));
  });
}

TEST(TapeGrad, Sub) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(2, 4, 3), "a");
  ps.emplace_back(randn(2, 4, 4), "b");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.sub(v[0], v[1]));
  });
}

TEST(TapeGrad, ElementwiseMul) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(3, 3, 5), "a");
  ps.emplace_back(randn(3, 3, 6), "b");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.mul(v[0], v[1]));
  });
}

TEST(TapeGrad, ScaleAndAddScalar) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(2, 2, 7), "a");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.add_scalar(t.scale(v[0], -2.5), 3.0));
  });
}

TEST(TapeGrad, HadamardConst) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(3, 2, 8), "a");
  const Matrix mask{{1, 0}, {0, 1}, {1, 1}};
  expect_gradients_match(ps, [mask](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.hadamard_const(v[0], mask));
  });
}

TEST(TapeGrad, Matmul) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(3, 4, 9), "a");
  ps.emplace_back(randn(4, 2, 10), "b");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.matmul(v[0], v[1]));
  });
}

TEST(TapeGrad, Spmm) {
  // Sparse constant Laplacian stand-in (one empty row to hit that path).
  Matrix lap = randn(4, 4, 60);
  for (std::size_t j = 0; j < 4; ++j) {
    lap(2, j) = 0.0;
    lap(j, 1) = 0.0;
  }
  const CsrMatrix csr = CsrMatrix::from_dense(lap);
  std::vector<Parameter> ps;
  ps.emplace_back(randn(4, 3, 61), "x");
  expect_gradients_match(ps, [&csr](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.spmm(csr, v[0]));
  });
}

TEST(TapeGrad, SpmmGradientBitwiseMatchesDenseMatmul) {
  // The same loss through tape.spmm and through tape.matmul(constant(L), x)
  // must produce bitwise-identical parameter gradients (DESIGN.md §9).
  const Matrix lap = [] {
    Matrix m = randn(5, 5, 62);
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = 0; j < 5; ++j) {
        if ((i + 2 * j) % 3 == 0) m(i, j) = 0.0;
      }
    }
    return m;
  }();
  const CsrMatrix csr = CsrMatrix::from_dense(lap);
  auto grad_of = [&](bool sparse) {
    Parameter x(randn(5, 4, 63), "x");
    Tape tape;
    Var leaf = tape.leaf(x);
    Var prod = sparse ? tape.spmm(csr, leaf)
                      : tape.matmul(tape.constant(lap), leaf);
    tape.backward(tape.mean_all(prod));
    return x.grad();
  };
  EXPECT_EQ(grad_of(true), grad_of(false));
}

TEST(TapeGrad, MatmulChain) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(2, 3, 11), "a");
  ps.emplace_back(randn(3, 3, 12), "b");
  ps.emplace_back(randn(3, 2, 13), "c");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.matmul(t.matmul(v[0], v[1]), v[2]));
  });
}

TEST(TapeGrad, MulColBroadcast) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(4, 3, 14), "a");
  ps.emplace_back(randn(4, 1, 15), "col");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.mul_col_broadcast(v[0], v[1]));
  });
}

TEST(TapeGrad, AddRowBroadcast) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(4, 3, 16), "a");
  ps.emplace_back(randn(1, 3, 17), "bias");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.add_row_broadcast(v[0], v[1]));
  });
}

TEST(TapeGrad, Sigmoid) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(3, 3, 18), "a");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.sigmoid(v[0]));
  });
}

TEST(TapeGrad, Tanh) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(3, 3, 19), "a");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.tanh(v[0]));
  });
}

TEST(TapeGrad, Relu) {
  // Keep values away from the kink (numeric diff is invalid there).
  Parameter p(Matrix{{0.5, -0.7}, {1.2, -2.0}}, "a");
  std::vector<Parameter> ps;
  ps.push_back(std::move(p));
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.relu(v[0]));
  });
}

TEST(TapeGrad, SoftmaxRows) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(3, 4, 20), "a");
  const Matrix target = randn(3, 4, 21);
  expect_gradients_match(ps, [target](Tape& t, std::vector<Var>& v) {
    // Use MSE to a target so the softmax grad is non-trivial.
    return t.masked_mse(t.softmax_rows(v[0]), target,
                        Matrix(3, 4, 1.0));
  });
}

TEST(TapeGrad, ConcatAndSlice) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(3, 2, 22), "a");
  ps.emplace_back(randn(3, 3, 23), "b");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    Var cat = t.concat_cols(v[0], v[1]);
    Var s = t.slice_cols(cat, 1, 4);  // straddles both inputs
    return t.mean_all(s);
  });
}

TEST(TapeGrad, ConcatMany) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(2, 2, 24), "a");
  ps.emplace_back(randn(2, 1, 25), "b");
  ps.emplace_back(randn(2, 3, 26), "c");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.concat_cols_many({v[0], v[1], v[2]}));
  });
}

TEST(TapeGrad, Transpose) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(2, 5, 27), "a");
  ps.emplace_back(randn(2, 5, 28), "b");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.matmul(t.transpose(v[0]), v[1]));
  });
}

TEST(TapeGrad, MaskedMae) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(4, 3, 29), "a");
  const Matrix target = randn(4, 3, 30);
  Matrix w(4, 3);
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = i % 3 == 0 ? 1.0 : 0.0;
  expect_gradients_match(ps, [target, w](Tape& t, std::vector<Var>& v) {
    return t.masked_mae(v[0], target, w);
  });
}

TEST(TapeGrad, MaskedMse) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(4, 3, 31), "a");
  const Matrix target = randn(4, 3, 32);
  const Matrix w(4, 3, 1.0);
  expect_gradients_match(ps, [target, w](Tape& t, std::vector<Var>& v) {
    return t.masked_mse(v[0], target, w);
  });
}

TEST(TapeGrad, WeightedL1Between) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(3, 3, 33), "a");
  ps.emplace_back(randn(3, 3, 34), "b");
  const Matrix w(3, 3, 1.0);
  expect_gradients_match(ps, [w](Tape& t, std::vector<Var>& v) {
    return t.weighted_l1_between(v[0], v[1], w);
  });
}

TEST(TapeGrad, AffineCombine) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(2, 2, 35), "a");
  ps.emplace_back(randn(2, 2, 36), "b");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    Var l1 = t.mean_all(v[0]);
    Var l2 = t.mean_all(t.mul(v[1], v[1]));
    return t.affine_combine(l1, 1.0, l2, 0.37);
  });
}

TEST(TapeGrad, SumAll) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(2, 3, 37), "a");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.scale(t.sum_all(v[0]), 0.1);
  });
}

TEST(TapeGrad, ReusedVariableAccumulates) {
  // y = a ⊙ a: grad must be 2a (the same node is used twice).
  std::vector<Parameter> ps;
  ps.emplace_back(randn(3, 2, 38), "a");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    return t.mean_all(t.mul(v[0], v[0]));
  });
}

TEST(TapeGrad, DeepRecurrentChain) {
  // A miniature recurrence mimicking the imputation loop: state feeds back
  // through several steps, so gradients must flow through every timestep.
  std::vector<Parameter> ps;
  ps.emplace_back(randn(2, 2, 39) * 0.5, "w");
  ps.emplace_back(randn(1, 2, 40), "x0");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    Var x = v[1];
    for (int step = 0; step < 5; ++step) {
      x = t.tanh(t.matmul(x, v[0]));
    }
    return t.mean_all(x);
  });
}

TEST(Tape, MaskedLossShapeMismatchThrows) {
  Tape tape;
  Parameter p(Matrix(2, 2), "p");
  Var x = tape.leaf(p);
  EXPECT_THROW(tape.masked_mae(x, Matrix(3, 2), Matrix(2, 2)), ShapeError);
  EXPECT_THROW(tape.masked_mse(x, Matrix(2, 2), Matrix(2, 3)), ShapeError);
}

TEST(Tape, AffineCombineRejectsNonScalar) {
  Tape tape;
  Var a = tape.constant(Matrix(2, 2));
  Var b = tape.constant(Matrix(1, 1));
  EXPECT_THROW(tape.affine_combine(a, 1.0, b, 1.0), ShapeError);
}

TEST(Tape, MaskedMaeValue) {
  Tape tape;
  Var x = tape.constant(Matrix{{1.0, 5.0}});
  const Matrix target{{0.0, 0.0}};
  const Matrix w{{1.0, 0.0}};  // only first entry counts
  Var loss = tape.masked_mae(x, target, w);
  EXPECT_DOUBLE_EQ(tape.value(loss)(0, 0), 1.0);
}

TEST(Tape, GradOfUnreachedNodeIsZero) {
  Parameter p(Matrix{{1.0}}, "p");
  Tape tape;
  Var unused = tape.leaf(p);
  Var c = tape.constant(Matrix{{2.0}});
  Var loss = tape.mean_all(c);
  tape.backward(loss);
  EXPECT_EQ(tape.grad(unused).abs_max(), 0.0);
  EXPECT_EQ(p.grad()(0, 0), 0.0);
}

// Parameterized sweep: the same composite expression across many shapes.
class CompositeGradTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CompositeGradTest, MatchesNumeric) {
  const auto [r, c] = GetParam();
  const auto rows = static_cast<std::size_t>(r);
  const auto cols = static_cast<std::size_t>(c);
  std::vector<Parameter> ps;
  ps.emplace_back(randn(rows, cols, 50 + rows), "a");
  ps.emplace_back(randn(cols, cols, 60 + cols), "w");
  const Matrix target = randn(rows, cols, 70 + rows + cols);
  Matrix mask(rows, cols);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = (i * 2654435761u) % 3 == 0 ? 0.0 : 1.0;
  }
  expect_gradients_match(ps, [target, mask](Tape& t, std::vector<Var>& v) {
    Var h = t.tanh(t.matmul(v[0], v[1]));
    Var masked = t.hadamard_const(h, mask);
    return t.masked_mae(masked, target, mask);
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, CompositeGradTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 4},
                                           std::pair{3, 2}, std::pair{5, 5},
                                           std::pair{7, 3}, std::pair{2, 8}));

// Numerical-gradient property checks run twice — once on the serial path and
// once with a 4-thread pool and the dispatch thresholds forced down so every
// threaded kernel engages even on these small matrices. Analytic gradients
// must match central differences identically on both backends.
class ParallelBackendGrad : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    ParallelTuning::min_elems = 1;
    ParallelTuning::elem_grain = 4;
    ParallelTuning::min_matmul_flops = 1;
    ParallelTuning::serial_cutover_flops = 1;
    ParallelTuning::matmul_row_grain = 2;
    ThreadPool::set_global_threads(GetParam());
  }
  void TearDown() override {
    ParallelTuning::reset();
    ThreadPool::set_global_threads(0);
  }
};

TEST_P(ParallelBackendGrad, MaskedLossThroughGcnLikeStack) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(6, 4, 301), "x");
  ps.emplace_back(randn(4, 4, 302), "w");
  const Matrix target = randn(6, 4, 303);
  Matrix mask(6, 4);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = (i * 2654435761u) % 4 == 0 ? 0.0 : 1.0;
  }
  expect_gradients_match(ps, [target, mask](Tape& t, std::vector<Var>& v) {
    Var h = t.tanh(t.matmul(v[0], v[1]));
    return t.masked_mae(t.hadamard_const(h, mask), target, mask);
  });
}

TEST_P(ParallelBackendGrad, RecurrentChainWithGates) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(5, 3, 311), "x");
  ps.emplace_back(randn(3, 3, 312), "w");
  expect_gradients_match(ps, [](Tape& t, std::vector<Var>& v) {
    Var h = v[0];
    for (int step = 0; step < 3; ++step) {
      Var z = t.matmul(h, v[1]);
      h = t.add(t.mul(t.sigmoid(z), t.tanh(z)), t.scale(h, 0.5));
    }
    return t.mean_all(t.relu(h));
  });
}

TEST_P(ParallelBackendGrad, SoftmaxAttentionMixture) {
  std::vector<Parameter> ps;
  ps.emplace_back(randn(6, 4, 321), "scores");
  ps.emplace_back(randn(6, 4, 322), "values");
  const Matrix target = randn(6, 4, 323);
  expect_gradients_match(ps, [target](Tape& t, std::vector<Var>& v) {
    Var alpha = t.softmax_rows(v[0]);
    Var mixed = t.mul(alpha, v[1]);
    Var col = t.slice_cols(alpha, 0, 1);
    return t.masked_mse(t.mul_col_broadcast(mixed, col), target,
                        Matrix(6, 4, 1.0));
  });
}

INSTANTIATE_TEST_SUITE_P(SerialAndThreaded, ParallelBackendGrad,
                         ::testing::Values(1u, 4u));

}  // namespace
}  // namespace rihgcn::ad
