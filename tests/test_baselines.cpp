#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/classical.hpp"
#include "baselines/neural.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "graph/graph.hpp"

#include <set>

namespace rihgcn::baselines {
namespace {

struct Fixture {
  data::TrafficDataset ds;
  std::size_t train_end;
  Matrix lap;
  std::unique_ptr<data::WindowSampler> sampler;
  data::SplitIndices split;

  Fixture() {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 6;
    cfg.num_days = 4;
    cfg.steps_per_day = 48;
    cfg.seed = 13;
    ds = data::generate_pems_like(cfg);
    Rng rng(14);
    data::inject_mcar(ds, 0.4, rng);
    train_end = ds.num_timesteps() * 7 / 10;
    const data::ZScoreNormalizer nz(ds, train_end);
    nz.normalize(ds);
    lap = graph::scaled_laplacian_from_distances(ds.geo_distances);
    sampler = std::make_unique<data::WindowSampler>(ds, 6, 3);
    split = sampler->split();
  }

  NeuralBaselineConfig nb_config() const {
    NeuralBaselineConfig c;
    c.lookback = 6;
    c.horizon = 3;
    c.hidden = 6;
    c.cheb_order = 2;
    return c;
  }
};

// ---- Classical -------------------------------------------------------------

TEST(HistoricalAverage, PredictsSlotProfile) {
  Fixture f;
  HistoricalAverageModel ha(f.ds, f.train_end, 6, 3);
  const data::Window w = f.sampler->make_window(10);
  const Matrix pred = ha.predict(w);
  EXPECT_EQ(pred.rows(), 6u);
  EXPECT_EQ(pred.cols(), 3u);
  EXPECT_FALSE(pred.has_non_finite());
  // The prediction for a slot equals the profile value at that slot, so
  // predicting the same slot from different days gives identical values.
  const data::Window w2 = f.sampler->make_window(10 + f.ds.steps_per_day);
  EXPECT_TRUE(allclose(pred, ha.predict(w2), 1e-12));
}

TEST(HistoricalAverage, NoTrainableParameters) {
  Fixture f;
  HistoricalAverageModel ha(f.ds, f.train_end, 6, 3);
  EXPECT_TRUE(ha.parameters().empty());
  ad::Tape tape;
  EXPECT_DOUBLE_EQ(tape.value(ha.training_loss(tape, f.sampler->make_window(0)))(0, 0), 0.0);
}

TEST(Var, RecoversSimpleAutoregressiveStructure) {
  // x_t = 0.8 x_{t-1} + noise on 3 independent nodes: the fitted VAR should
  // forecast a decay toward 0, much better than predicting a constant far
  // off.
  data::TrafficDataset ds;
  ds.name = "ar";
  ds.steps_per_day = 48;
  Rng rng(15);
  Matrix x(3, 1);
  for (std::size_t i = 0; i < 3; ++i) x(i, 0) = rng.normal();
  for (std::size_t t = 0; t < 600; ++t) {
    Matrix next(3, 1);
    for (std::size_t i = 0; i < 3; ++i) {
      next(i, 0) = 0.8 * x(i, 0) + rng.normal(0.0, 0.1);
    }
    ds.truth.push_back(next);
    ds.mask.emplace_back(3, 1, 1.0);
    x = next;
  }
  ds.coords = Matrix(3, 2);
  ds.geo_distances = Matrix(3, 3);
  VarModel var(ds, 500, /*lookback=*/6, /*horizon=*/3, /*lags=*/3);
  const data::WindowSampler sampler(ds, 6, 3);
  const data::Window w = sampler.make_window(520);
  const Matrix pred = var.predict(w);
  // One-step-ahead should be close to 0.8 * last value.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(pred(i, 0), 0.8 * w.x_obs[5](i, 0), 0.25);
  }
}

TEST(Var, ArgumentValidation) {
  Fixture f;
  EXPECT_THROW(VarModel(f.ds, f.train_end, 6, 3, 0), std::invalid_argument);
  EXPECT_THROW(VarModel(f.ds, f.train_end, 2, 3, 3), std::invalid_argument);
  EXPECT_THROW(VarModel(f.ds, 2, 6, 3, 3), std::invalid_argument);
}

// ---- Neural baselines: shared contract ---------------------------------------

std::unique_ptr<core::ForecastModel> make_model(const std::string& kind,
                                                const Fixture& f) {
  const NeuralBaselineConfig c = f.nb_config();
  if (kind == "FC-LSTM") return std::make_unique<FcLstmModel>(4, c);
  if (kind == "FC-GCN") return std::make_unique<FcGcnModel>(f.lap, 4, c);
  if (kind == "GCN-LSTM") return std::make_unique<GcnLstmModel>(f.lap, 4, c);
  if (kind == "FC-LSTM-I") return std::make_unique<FcLstmIModel>(4, c);
  if (kind == "FC-GCN-I") return std::make_unique<FcGcnIModel>(f.lap, 4, c);
  if (kind == "ASTGCN") return std::make_unique<AstGcnModel>(f.lap, 4, c);
  return std::make_unique<GraphWaveNetModel>(f.lap, 6, 4, c);
}

class NeuralBaselineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NeuralBaselineTest, PredictShapeAndName) {
  Fixture f;
  auto model = make_model(GetParam(), f);
  EXPECT_EQ(model->name(), GetParam());
  const Matrix pred = model->predict(f.sampler->make_window(0));
  EXPECT_EQ(pred.rows(), 6u);
  EXPECT_EQ(pred.cols(), 3u);
  EXPECT_FALSE(pred.has_non_finite());
}

TEST_P(NeuralBaselineTest, LossIsFiniteAndBackpropagates) {
  Fixture f;
  auto model = make_model(GetParam(), f);
  for (ad::Parameter* p : model->parameters()) p->zero_grad();
  ad::Tape tape;
  ad::Var loss = model->training_loss(tape, f.sampler->make_window(2));
  EXPECT_TRUE(std::isfinite(tape.value(loss)(0, 0)));
  tape.backward(loss);
  double grad_norm = 0.0;
  for (ad::Parameter* p : model->parameters()) grad_norm += p->grad().norm();
  EXPECT_GT(grad_norm, 0.0);
}

TEST_P(NeuralBaselineTest, ParametersAreUniquePointers) {
  Fixture f;
  auto model = make_model(GetParam(), f);
  auto params = model->parameters();
  std::set<ad::Parameter*> uniq(params.begin(), params.end());
  EXPECT_EQ(uniq.size(), params.size());
  EXPECT_GT(params.size(), 0u);
}

TEST_P(NeuralBaselineTest, FewAdamStepsReduceLoss) {
  Fixture f;
  auto model = make_model(GetParam(), f);
  const data::Window w = f.sampler->make_window(1);
  nn::AdamOptimizer::Config cfg;
  cfg.lr = 5e-3;
  nn::AdamOptimizer opt(model->parameters(), cfg);
  double first = 0.0, last = 0.0;
  for (int it = 0; it < 30; ++it) {
    opt.zero_grad();
    ad::Tape tape;
    ad::Var loss = model->training_loss(tape, w);
    if (it == 0) first = tape.value(loss)(0, 0);
    last = tape.value(loss)(0, 0);
    tape.backward(loss);
    opt.step();
  }
  EXPECT_LT(last, first);
}

INSTANTIATE_TEST_SUITE_P(AllModels, NeuralBaselineTest,
                         ::testing::Values("FC-LSTM", "FC-GCN", "GCN-LSTM",
                                           "FC-LSTM-I", "FC-GCN-I", "ASTGCN",
                                           "GraphWaveNet"));

// ---- -I variants: imputation contract ------------------------------------------

class ImputingBaselineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ImputingBaselineTest, ImputePreservesObserved) {
  Fixture f;
  auto model = make_model(GetParam(), f);
  const data::Window w = f.sampler->make_window(3);
  const auto imputed = model->impute(w);
  ASSERT_EQ(imputed.size(), 6u);
  for (std::size_t t = 0; t < imputed.size(); ++t) {
    for (std::size_t i = 0; i < imputed[t].size(); ++i) {
      if (w.x_mask[t].data()[i] > 0.5) {
        EXPECT_DOUBLE_EQ(imputed[t].data()[i], w.x_truth[t].data()[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ImputingModels, ImputingBaselineTest,
                         ::testing::Values("FC-LSTM-I", "FC-GCN-I"));

TEST(MeanFilledModels, DoNotImpute) {
  Fixture f;
  auto model = make_model("FC-LSTM", f);
  EXPECT_TRUE(model->impute(f.sampler->make_window(0)).empty());
}

TEST(GraphWaveNet, AdaptiveAdjacencyIsTrainable) {
  Fixture f;
  GraphWaveNetModel model(f.lap, 6, 4, f.nb_config());
  for (ad::Parameter* p : model.parameters()) p->zero_grad();
  ad::Tape tape;
  tape.backward(model.training_loss(tape, f.sampler->make_window(0)));
  bool emb_has_grad = false;
  for (ad::Parameter* p : model.parameters()) {
    if (p->name() == "gwn.emb1" && p->grad().abs_max() > 0.0) {
      emb_has_grad = true;
    }
  }
  EXPECT_TRUE(emb_has_grad);
}

}  // namespace
}  // namespace rihgcn::baselines
