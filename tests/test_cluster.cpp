// Partitioned sub-graph training (DESIGN.md §13):
//
//  * ClusterPartitioner invariants: exact disjoint cover, balanced sizes,
//    halos that are EXACTLY the 1-hop boundary, determinism per seed.
//  * Trainer integration: num_clusters > 1 demands a ClusterTrainable model
//    (std::invalid_argument otherwise), clustered training of RIHGCN runs,
//    updates parameters, and is bitwise deterministic at a fixed thread
//    count; the full-graph path is untouched by num_clusters <= 1.
#include "graph/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/hetero_graphs.hpp"
#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "nn/optim.hpp"
#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

// Random symmetric structural adjacency (values 1.0) with ~density edges.
CsrMatrix random_adjacency(std::size_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  Matrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform(0.0, 1.0) < density) {
        dense(i, j) = dense(j, i) = 1.0;
      }
    }
  }
  return CsrMatrix::from_dense(dense);
}

void check_invariants(const graph::Clustering& c, const CsrMatrix& adj,
                      std::size_t requested) {
  const std::size_t n = adj.rows();
  const std::size_t expect_clusters = std::min(requested, n);
  ASSERT_EQ(c.num_clusters(), expect_clusters);
  ASSERT_EQ(c.num_nodes, n);
  ASSERT_EQ(c.cluster_of.size(), n);
  const std::size_t cap = (n + expect_clusters - 1) / expect_clusters;
  std::vector<std::size_t> seen(n, 0);
  for (std::size_t k = 0; k < c.num_clusters(); ++k) {
    const auto& owned = c.owned[k];
    EXPECT_LE(owned.size(), cap);
    EXPECT_TRUE(std::is_sorted(owned.begin(), owned.end()));
    for (const std::size_t v : owned) {
      ASSERT_LT(v, n);
      ++seen[v];
      EXPECT_EQ(c.cluster_of[v], k);
    }
    // Halo: exactly the out-of-cluster structural 1-hop neighbourhood.
    std::vector<char> in_cluster(n, 0), expect_halo(n, 0);
    for (const std::size_t v : owned) in_cluster[v] = 1;
    const Matrix dense = adj.to_dense();
    for (const std::size_t v : owned) {
      for (std::size_t j = 0; j < n; ++j) {
        if (dense(v, j) != 0.0 && !in_cluster[j]) expect_halo[j] = 1;
      }
    }
    std::vector<std::size_t> expect_list;
    for (std::size_t j = 0; j < n; ++j) {
      if (expect_halo[j]) expect_list.push_back(j);
    }
    EXPECT_EQ(c.halo[k], expect_list) << "cluster " << k;
  }
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(seen[v], 1u) << "node " << v << " not covered exactly once";
  }
}

TEST(ClusterPartitioner, InvariantsHoldOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const CsrMatrix adj = random_adjacency(40, 0.12, seed);
    const graph::Clustering c =
        graph::ClusterPartitioner(seed).partition(adj, 5);
    check_invariants(c, adj, 5);
  }
}

TEST(ClusterPartitioner, HandlesDisconnectedAndDegenerateGraphs) {
  // No edges at all: teleports must still cover everything, halos empty.
  const CsrMatrix empty = CsrMatrix::from_dense(Matrix(12, 12));
  const graph::Clustering c = graph::ClusterPartitioner(7).partition(empty, 4);
  check_invariants(c, empty, 4);
  for (const auto& h : c.halo) EXPECT_TRUE(h.empty());

  // One cluster: owns everything.
  const CsrMatrix adj = random_adjacency(15, 0.2, 9);
  const graph::Clustering one = graph::ClusterPartitioner(0).partition(adj, 1);
  check_invariants(one, adj, 1);
  EXPECT_EQ(one.owned[0].size(), 15u);

  // More clusters than nodes: clamps to N singleton clusters.
  const graph::Clustering many =
      graph::ClusterPartitioner(0).partition(adj, 99);
  check_invariants(many, adj, 99);

  EXPECT_THROW(graph::ClusterPartitioner(0).partition(adj, 0),
               std::invalid_argument);
}

TEST(ClusterPartitioner, DeterministicPerSeed) {
  const CsrMatrix adj = random_adjacency(36, 0.15, 5);
  const graph::Clustering a = graph::ClusterPartitioner(11).partition(adj, 6);
  const graph::Clustering b = graph::ClusterPartitioner(11).partition(adj, 6);
  EXPECT_EQ(a.owned, b.owned);
  EXPECT_EQ(a.halo, b.halo);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
}

// ---- Trainer integration --------------------------------------------------

struct Fixture {
  data::TrafficDataset ds;
  std::size_t train_end = 0;
  std::unique_ptr<data::WindowSampler> sampler;
  data::SplitIndices split;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;

  Fixture() {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 12;
    cfg.num_days = 4;
    cfg.steps_per_day = 48;
    cfg.seed = 31;
    ds = data::generate_pems_like(cfg);
    Rng rng(32);
    data::inject_mcar(ds, 0.3, rng);
    train_end = ds.num_timesteps() * 7 / 10;
    const data::ZScoreNormalizer nz(ds, train_end);
    nz.normalize(ds);
    sampler = std::make_unique<data::WindowSampler>(ds, 6, 3);
    split = sampler->split();
    core::HeteroGraphsConfig gcfg;
    gcfg.num_temporal_graphs = 2;
    gcfg.partition_slots = 24;
    graphs = std::make_unique<core::HeterogeneousGraphs>(ds, train_end, gcfg,
                                                         rng);
  }

  core::RihgcnConfig model_config() const {
    core::RihgcnConfig mc;
    mc.lookback = 6;
    mc.horizon = 3;
    mc.gcn_dim = 4;
    mc.lstm_dim = 6;
    mc.cheb_order = 2;
    return mc;
  }

  core::TrainConfig train_config() const {
    core::TrainConfig tc;
    tc.max_epochs = 2;
    tc.batch_size = 4;
    tc.max_train_windows = 12;
    tc.max_val_windows = 6;
    return tc;
  }
};

TEST(ClusteredTrainer, ThrowsForNonClusterTrainableModel) {
  Fixture f;
  class PlainModel final : public core::ForecastModel {
   public:
    [[nodiscard]] std::string name() const override { return "plain"; }
    [[nodiscard]] std::vector<ad::Parameter*> parameters() override {
      return {&p_};
    }
    [[nodiscard]] ad::Var training_loss(ad::Tape& tape,
                                        const data::Window&) override {
      return tape.constant(Matrix(1, 1, 1.0));
    }
    [[nodiscard]] Matrix predict(const data::Window& w) override {
      return Matrix(w.x_obs.front().rows(), 3, 0.0);
    }

   private:
    ad::Parameter p_{Matrix(1, 1), "p"};
  };
  PlainModel model;
  core::TrainConfig tc = f.train_config();
  tc.num_clusters = 4;
  EXPECT_THROW(core::train_model(model, *f.sampler, f.split, tc),
               std::invalid_argument);
}

TEST(ClusteredTrainer, TrainsAndUpdatesParameters) {
  Fixture f;
  core::RihgcnModel model(*f.graphs, 12, 4, f.model_config());
  const std::vector<Matrix> before = nn::snapshot_values(model.parameters());
  core::TrainConfig tc = f.train_config();
  tc.num_clusters = 3;
  const core::TrainReport report =
      core::train_model(model, *f.sampler, f.split, tc);
  EXPECT_EQ(model.num_clusters(), 3u);
  EXPECT_EQ(report.epochs_run, 2u);
  for (const double l : report.train_losses) {
    EXPECT_TRUE(std::isfinite(l));
    EXPECT_GT(l, 0.0);
  }
  // Something moved.
  const std::vector<Matrix> after = nn::snapshot_values(model.parameters());
  bool changed = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (!(before[i] == after[i])) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(ClusteredTrainer, BitwiseDeterministicAtFixedThreadCount) {
  Fixture f;
  const auto run = [&f]() {
    core::RihgcnModel model(*f.graphs, 12, 4, f.model_config());
    core::TrainConfig tc = f.train_config();
    tc.num_clusters = 3;
    tc.num_threads = 2;
    (void)core::train_model(model, *f.sampler, f.split, tc);
    return nn::snapshot_values(model.parameters());
  };
  const std::vector<Matrix> a = run();
  const std::vector<Matrix> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);  // bitwise
  }
}

TEST(ClusteredTrainer, NumClustersOneIsFullGraphPath) {
  Fixture f;
  const auto run = [&f](std::size_t num_clusters) {
    core::RihgcnModel model(*f.graphs, 12, 4, f.model_config());
    core::TrainConfig tc = f.train_config();
    tc.num_clusters = num_clusters;
    (void)core::train_model(model, *f.sampler, f.split, tc);
    return nn::snapshot_values(model.parameters());
  };
  const std::vector<Matrix> plain = run(0);
  const std::vector<Matrix> one = run(1);
  ASSERT_EQ(plain.size(), one.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], one[i]);  // bitwise: 0 and 1 take the same path
  }
}

TEST(ClusteredTrainer, ClusterLossMatchesFullLossGradientsInAggregate) {
  // Gradients from one full-graph window vs. the sum over all clusters of
  // the same window: not expected to be bitwise equal (per-cluster
  // masked-MAE normalization differs by design), but both must be finite
  // and nonzero for trainable parameters.
  Fixture f;
  core::RihgcnModel model(*f.graphs, 12, 4, f.model_config());
  model.prepare_clusters(3, 99);
  ASSERT_EQ(model.num_clusters(), 3u);
  const data::Window w = f.sampler->make_window(f.split.train.front());
  ad::Tape tape;
  double total = 0.0;
  for (std::size_t c = 0; c < model.num_clusters(); ++c) {
    tape.reset();
    const ad::Var loss = model.cluster_training_loss(tape, w, c);
    const double v = tape.value(loss)(0, 0);
    EXPECT_TRUE(std::isfinite(v));
    tape.backward(loss);
    total += v;
  }
  EXPECT_GT(total, 0.0);
  bool any_grad = false;
  for (ad::Parameter* p : model.parameters()) {
    for (std::size_t i = 0; i < p->grad().size(); ++i) {
      if (p->grad().data()[i] != 0.0) any_grad = true;
    }
  }
  EXPECT_TRUE(any_grad);
}

}  // namespace
}  // namespace rihgcn
