#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/hetero_graphs.hpp"
#include "core/rihgcn.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "nn/optim.hpp"
#include "tensor/parallel.hpp"

namespace rihgcn::core {
namespace {

struct Fixture {
  data::TrafficDataset ds;
  std::size_t train_end;
  std::unique_ptr<data::WindowSampler> sampler;
  std::unique_ptr<HeterogeneousGraphs> graphs;

  explicit Fixture(std::size_t m_graphs = 2, double missing = 0.4) {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 6;
    cfg.num_days = 4;
    cfg.steps_per_day = 48;  // 30-min bins keep everything tiny
    cfg.seed = 3;
    ds = data::generate_pems_like(cfg);
    Rng rng(4);
    data::inject_mcar(ds, missing, rng);
    train_end = ds.num_timesteps() * 7 / 10;
    const data::ZScoreNormalizer nz(ds, train_end);
    nz.normalize(ds);
    sampler = std::make_unique<data::WindowSampler>(ds, 6, 3);
    HeteroGraphsConfig gcfg;
    gcfg.num_temporal_graphs = m_graphs;
    gcfg.partition_slots = 24;
    graphs = std::make_unique<HeterogeneousGraphs>(ds, train_end, gcfg, rng);
  }

  RihgcnConfig model_config() const {
    RihgcnConfig mc;
    mc.lookback = 6;
    mc.horizon = 3;
    mc.gcn_dim = 5;
    mc.lstm_dim = 7;
    mc.cheb_order = 2;
    return mc;
  }
};

// ---- HeterogeneousGraphs ------------------------------------------------------

TEST(HeteroGraphs, BuildsRequestedTemporalGraphs) {
  Fixture f(3);
  EXPECT_EQ(f.graphs->num_temporal(), 3u);
  EXPECT_EQ(f.graphs->num_nodes(), 6u);
  EXPECT_EQ(f.graphs->partition().num_intervals(), 3u);
}

TEST(HeteroGraphs, ZeroTemporalGraphsIsGeoOnly) {
  Fixture f(0);
  EXPECT_EQ(f.graphs->num_temporal(), 0u);
  EXPECT_EQ(f.graphs->geographic().num_nodes(), 6u);
}

TEST(HeteroGraphs, TemporalGraphsDifferFromGeographic) {
  Fixture f(2);
  // DTW-based adjacency should generally differ from road-distance adjacency.
  bool any_diff = false;
  for (std::size_t m = 0; m < f.graphs->num_temporal(); ++m) {
    if (!allclose(f.graphs->temporal(m).adjacency(),
                  f.graphs->geographic().adjacency(), 1e-6)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(HeteroGraphs, IntervalWeightsFormDistribution) {
  Fixture f(4);
  for (const std::size_t slot : {0u, 10u, 24u, 47u}) {
    const auto w = f.graphs->interval_weights(slot);
    ASSERT_EQ(w.size(), f.graphs->num_temporal());
    double sum = 0.0;
    for (const double x : w) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(HeteroGraphs, ContainingIntervalDominates) {
  Fixture f(4);
  // A slot inside interval m gets zero time distance => the largest weight.
  const auto& part = f.graphs->partition();
  const std::size_t spd = f.ds.steps_per_day;
  const std::size_t pslots = 24;
  for (std::size_t m = 0; m < part.num_intervals(); ++m) {
    const auto [c0, c1] = part.slot_range(m);
    const std::size_t mid_coarse = (c0 + c1) / 2;
    const std::size_t fine_slot = mid_coarse * spd / pslots;
    const auto w = f.graphs->interval_weights(fine_slot);
    for (std::size_t other = 0; other < w.size(); ++other) {
      EXPECT_GE(w[m], w[other] - 1e-12);
    }
  }
}

TEST(HeteroGraphs, BadArgsThrow) {
  Fixture f(1);
  HeteroGraphsConfig cfg;
  Rng rng(1);
  EXPECT_THROW(HeterogeneousGraphs(f.ds, 0, cfg, rng), std::invalid_argument);
  cfg.partition_slots = 0;
  EXPECT_THROW(HeterogeneousGraphs(f.ds, f.train_end, cfg, rng),
               std::invalid_argument);
}

// ---- HgcnBlock ------------------------------------------------------------------

TEST(HgcnBlock, OutputShapeAndMixing) {
  Fixture f(2);
  Rng rng(5);
  HgcnBlock block(*f.graphs, 4, 8, 2, rng);
  ad::Tape tape;
  ad::Var x = tape.constant(Matrix(6, 4, 0.3));
  ad::Var y = block.forward(tape, x, /*slot=*/10);
  EXPECT_EQ(tape.value(y).rows(), 6u);
  EXPECT_EQ(tape.value(y).cols(), 8u);
  // Different slots weight the temporal GCNs differently => outputs differ.
  ad::Var y2 = block.forward(tape, x, /*slot=*/40);
  EXPECT_FALSE(allclose(tape.value(y), tape.value(y2), 1e-9));
}

TEST(HgcnBlock, ParameterCountScalesWithGraphs) {
  Fixture f2(2), f4(4);
  Rng rng(6);
  HgcnBlock b2(*f2.graphs, 4, 8, 2, rng);
  HgcnBlock b4(*f4.graphs, 4, 8, 2, rng);
  EXPECT_GT(b4.num_parameters(), b2.num_parameters());
  // geo + M temporal layers, each with K theta matrices + bias.
  EXPECT_EQ(b2.parameters().size(), (2u + 1u) * 3u);
}

TEST(HgcnBlock, GradientFlowsThroughAllLayers) {
  Fixture f(2);
  Rng rng(7);
  HgcnBlock block(*f.graphs, 4, 3, 2, rng);
  for (ad::Parameter* p : block.parameters()) p->zero_grad();
  ad::Tape tape;
  ad::Var x = tape.constant(Rng(8).normal_matrix(6, 4, 1.0));
  ad::Var loss = tape.mean_all(block.forward(tape, x, 5));
  tape.backward(loss);
  // Every layer participates for an in-interval slot (weights > 0).
  std::size_t touched = 0;
  for (ad::Parameter* p : block.parameters()) {
    if (p->grad().abs_max() > 0.0) ++touched;
  }
  EXPECT_GT(touched, block.parameters().size() / 2);
}

TEST(HgcnBlock, SparseLapsRespectDensityLimit) {
  Fixture f(2);
  Rng rng(9);
  HgcnBlock block(*f.graphs, 4, 8, 2, rng);
  // Limit 1.0 covers every graph; limit 0.0 covers none (dense fallback).
  const HgcnBlock::SparseLaps all = block.make_sparse_laps(0.0, 1.0);
  EXPECT_TRUE(all.geo.has_value());
  ASSERT_EQ(all.temporal.size(), 2u);
  for (const auto& t : all.temporal) EXPECT_TRUE(t.has_value());
  EXPECT_EQ(all.geo->to_dense(), f.graphs->geographic().scaled_laplacian());
  const HgcnBlock::SparseLaps none = block.make_sparse_laps(0.0, 0.0);
  EXPECT_FALSE(none.geo.has_value());
  for (const auto& t : none.temporal) EXPECT_FALSE(t.has_value());
}

TEST(HgcnBlock, SparseForwardBitwiseMatchesDense) {
  Fixture f(2);
  Rng rng(10);
  HgcnBlock block(*f.graphs, 4, 8, 2, rng);
  const HgcnBlock::SparseLaps sparse = block.make_sparse_laps(0.0, 1.0);
  ad::Tape tape;
  ad::Var x = tape.constant(Rng(11).normal_matrix(6, 4, 1.0));
  const HgcnBlock::LapVars dense_laps = block.make_lap_vars(tape);
  const HgcnBlock::LapVars skip_laps = block.make_lap_vars(tape, sparse);
  ad::Var yd = block.forward(tape, x, 10, dense_laps);
  ad::Var ys = block.forward(tape, x, 10, skip_laps, &sparse);
  EXPECT_EQ(tape.value(yd), tape.value(ys));
}

// ---- RihgcnModel ----------------------------------------------------------------

TEST(Rihgcn, PredictShape) {
  Fixture f;
  RihgcnModel model(*f.graphs, 6, 4, f.model_config());
  const data::Window w = f.sampler->make_window(0);
  const Matrix pred = model.predict(w);
  EXPECT_EQ(pred.rows(), 6u);
  EXPECT_EQ(pred.cols(), 3u);
  EXPECT_FALSE(pred.has_non_finite());
}

TEST(Rihgcn, TrainingLossFiniteAndPositive) {
  Fixture f;
  RihgcnModel model(*f.graphs, 6, 4, f.model_config());
  ad::Tape tape;
  ad::Var loss = model.training_loss(tape, f.sampler->make_window(3));
  EXPECT_TRUE(std::isfinite(tape.value(loss)(0, 0)));
  EXPECT_GT(tape.value(loss)(0, 0), 0.0);
}

TEST(Rihgcn, ImputePreservesObservedEntries) {
  Fixture f;
  RihgcnModel model(*f.graphs, 6, 4, f.model_config());
  const data::Window w = f.sampler->make_window(5);
  const auto imputed = model.impute(w);
  ASSERT_EQ(imputed.size(), 6u);
  for (std::size_t t = 0; t < imputed.size(); ++t) {
    for (std::size_t i = 0; i < imputed[t].size(); ++i) {
      if (w.x_mask[t].data()[i] > 0.5) {
        EXPECT_DOUBLE_EQ(imputed[t].data()[i], w.x_truth[t].data()[i]);
      }
    }
  }
}

TEST(Rihgcn, GradientCheckEndToEnd) {
  // Full RIHGCN training loss vs numeric differentiation on a few params —
  // this exercises recurrent imputation, HGCN, LSTM, the head and both loss
  // terms at once.
  Fixture f;
  RihgcnConfig mc = f.model_config();
  mc.gcn_dim = 3;
  mc.lstm_dim = 3;
  RihgcnModel model(*f.graphs, 6, 4, mc);
  const data::Window w = f.sampler->make_window(2);
  auto params = model.parameters();
  for (ad::Parameter* p : params) p->zero_grad();
  {
    ad::Tape tape;
    tape.backward(model.training_loss(tape, w));
  }
  auto loss_value = [&] {
    ad::Tape tape;
    return tape.value(model.training_loss(tape, w))(0, 0);
  };
  // Check a few representative parameters (full sweep would be slow).
  std::size_t checked = 0;
  for (ad::Parameter* p : params) {
    if (p->name() == "hgcn.geo.theta0" || p->name() == "lstm_fwd.w_ih" ||
        p->name() == "est_bwd.weight" || p->name() == "head.bias") {
      EXPECT_LT(ad::gradient_check(*p, loss_value, p->grad(), 1e-6), 2e-4)
          << p->name();
      ++checked;
    }
  }
  EXPECT_EQ(checked, 4u);
}

TEST(Rihgcn, DetachedImputationChangesGradients) {
  // With trainable_imputation=false the delayed-gradient path through the
  // complement is cut; estimator gradients must differ.
  Fixture f;
  RihgcnConfig joint_cfg = f.model_config();
  RihgcnConfig detached_cfg = f.model_config();
  detached_cfg.trainable_imputation = false;
  RihgcnModel joint(*f.graphs, 6, 4, joint_cfg);
  RihgcnModel detached(*f.graphs, 6, 4, detached_cfg);
  const data::Window w = f.sampler->make_window(1);
  auto grad_of = [&w](RihgcnModel& m) {
    for (ad::Parameter* p : m.parameters()) p->zero_grad();
    ad::Tape tape;
    tape.backward(m.training_loss(tape, w));
    for (ad::Parameter* p : m.parameters()) {
      if (p->name() == "est_fwd.weight") return p->grad();
    }
    return Matrix();
  };
  const Matrix g_joint = grad_of(joint);
  const Matrix g_detached = grad_of(detached);
  // Same init (same seed) => any difference comes from the cut path.
  EXPECT_FALSE(allclose(g_joint, g_detached, 1e-12));
}

TEST(Rihgcn, UnidirectionalHasFewerParameters) {
  Fixture f;
  RihgcnConfig bi = f.model_config();
  RihgcnConfig uni = f.model_config();
  uni.bidirectional = false;
  RihgcnModel m_bi(*f.graphs, 6, 4, bi);
  RihgcnModel m_uni(*f.graphs, 6, 4, uni);
  EXPECT_GT(m_bi.parameters().size(), m_uni.parameters().size());
  // Both still produce valid predictions.
  const data::Window w = f.sampler->make_window(0);
  EXPECT_FALSE(m_uni.predict(w).has_non_finite());
}

TEST(Rihgcn, AttentionHeadWorks) {
  Fixture f;
  RihgcnConfig mc = f.model_config();
  mc.head = RihgcnConfig::Head::kAttention;
  RihgcnModel model(*f.graphs, 6, 4, mc);
  const data::Window w = f.sampler->make_window(0);
  const Matrix pred = model.predict(w);
  EXPECT_EQ(pred.cols(), 3u);
  EXPECT_FALSE(pred.has_non_finite());
}

TEST(Rihgcn, LambdaZeroDropsImputationLoss) {
  Fixture f;
  RihgcnConfig with = f.model_config();
  RihgcnConfig without = f.model_config();
  without.lambda = 0.0;
  RihgcnModel m1(*f.graphs, 6, 4, with);
  RihgcnModel m2(*f.graphs, 6, 4, without);
  const data::Window w = f.sampler->make_window(0);
  ad::Tape t1, t2;
  const double l1 = t1.value(m1.training_loss(t1, w))(0, 0);
  const double l2 = t2.value(m2.training_loss(t2, w))(0, 0);
  EXPECT_GT(l1, l2);  // imputation term adds on top
}

TEST(Rihgcn, DisplayNameOverride) {
  Fixture f(0);
  RihgcnConfig mc = f.model_config();
  mc.display_name = "GCN-LSTM-I";
  RihgcnModel model(*f.graphs, 6, 4, mc);
  EXPECT_EQ(model.name(), "GCN-LSTM-I");
}

TEST(Rihgcn, NodeCountMismatchThrows) {
  Fixture f;
  EXPECT_THROW(RihgcnModel(*f.graphs, 7, 4, f.model_config()),
               std::invalid_argument);
}

TEST(Rihgcn, SaveLoadRoundTripKeepsPredictions) {
  Fixture f;
  RihgcnModel model(*f.graphs, 6, 4, f.model_config());
  const data::Window w = f.sampler->make_window(4);
  const Matrix before = model.predict(w);
  std::stringstream ss;
  nn::save_parameters(ss, model.parameters());
  // Perturb every parameter, then restore from the checkpoint.
  for (ad::Parameter* p : model.parameters()) p->value() *= 1.7;
  EXPECT_FALSE(allclose(model.predict(w), before, 1e-9));
  nn::load_parameters(ss, model.parameters());
  EXPECT_TRUE(allclose(model.predict(w), before, 1e-12));
}

// Forward output consistency: complement equals obs where observed.
TEST(Rihgcn, ForwardComplementStructure) {
  Fixture f;
  RihgcnModel model(*f.graphs, 6, 4, f.model_config());
  const data::Window w = f.sampler->make_window(2);
  ad::Tape tape;
  const auto out = model.forward(tape, w);
  EXPECT_TRUE(out.has_imputation_loss);
  EXPECT_EQ(out.complement.size(), 6u);
  EXPECT_EQ(tape.value(out.prediction).cols(), 3u);
  EXPECT_GE(tape.value(out.imputation_loss)(0, 0), 0.0);
}

// ---- Sparse graph backend (DESIGN.md §9) ----------------------------------

// Forces threaded paths on tiny inputs and pins the pool width (same idiom
// as test_parallel.cpp); restores defaults on destruction.
class BackendGuard {
 public:
  explicit BackendGuard(std::size_t threads) {
    ParallelTuning::min_elems = 1;
    ParallelTuning::elem_grain = 4;
    ParallelTuning::min_matmul_flops = 1;
    ParallelTuning::serial_cutover_flops = 1;
    ParallelTuning::matmul_row_grain = 2;
    ThreadPool::set_global_threads(threads);
  }
  ~BackendGuard() {
    ParallelTuning::reset();
    ThreadPool::set_global_threads(0);
  }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;
};

// End-to-end acceptance for the sparse backend: training with
// use_sparse_graphs on and off must produce bitwise-identical losses,
// updated parameters and predictions (tol = 0 CSR), at any thread count.
TEST(Rihgcn, SparseAndDenseTrainingBitwiseIdentical) {
  Fixture f;
  auto train_trace = [&](bool sparse) {
    RihgcnConfig mc = f.model_config();
    mc.use_sparse_graphs = sparse;
    mc.sparse_density_limit = 1.0;  // cover every graph when sparse
    RihgcnModel model(*f.graphs, 6, 4, mc);
    nn::AdamOptimizer opt(model.parameters());
    std::vector<double> trace;
    for (std::size_t step = 0; step < 4; ++step) {
      const data::Window w = f.sampler->make_window(step);
      opt.zero_grad();
      ad::Tape tape;
      ad::Var loss = model.training_loss(tape, w);
      tape.backward(loss);
      opt.step();
      trace.push_back(tape.value(loss)(0, 0));
    }
    const Matrix pred = model.predict(f.sampler->make_window(5));
    trace.insert(trace.end(), pred.data(), pred.data() + pred.size());
    return trace;
  };
  for (const std::size_t threads : {1u, 4u}) {
    BackendGuard guard(threads);
    EXPECT_EQ(train_trace(true), train_trace(false))
        << "sparse/dense divergence at threads=" << threads;
  }
}

}  // namespace
}  // namespace rihgcn::core
