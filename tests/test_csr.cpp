// Property tests for the sparse graph backend (tensor/csr.hpp):
//
//  * CSR structure and CSR <-> dense round-trip across sparsity patterns —
//    empty matrix, empty rows, diagonal-only, fully dense, rectangular.
//  * Bitwise parity of spmm/spmm_t against the dense matmul family at 1/2/4
//    threads — the DESIGN.md §9 contract that makes the sparse model path
//    interchangeable with the dense one.
//  * tol filtering and shape-error behavior.
#include "tensor/csr.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

// Same idiom as test_parallel.cpp: force threaded paths on tiny inputs and
// pin the pool width; restore defaults on destruction.
class BackendGuard {
 public:
  explicit BackendGuard(std::size_t threads) {
    ParallelTuning::min_elems = 1;
    ParallelTuning::elem_grain = 4;
    ParallelTuning::min_matmul_flops = 1;
    ParallelTuning::serial_cutover_flops = 1;
    ParallelTuning::matmul_row_grain = 2;
    ThreadPool::set_global_threads(threads);
  }
  ~BackendGuard() {
    ParallelTuning::reset();
    ThreadPool::set_global_threads(0);
  }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;
};

// Random matrix with roughly `density` fraction of nonzeros.
Matrix random_sparse(std::size_t r, std::size_t c, double density,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix vals = rng.normal_matrix(r, c, 1.0);
  Matrix keep = rng.uniform_matrix(r, c, 0.0, 1.0);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (keep.data()[i] >= density) vals.data()[i] = 0.0;
  }
  return vals;
}

Matrix randn(std::size_t r, std::size_t c, std::uint64_t seed) {
  Rng rng(seed);
  return rng.normal_matrix(r, c, 1.0);
}

// The sparsity patterns the round-trip and parity suites sweep.
std::vector<Matrix> pattern_zoo() {
  std::vector<Matrix> zoo;
  zoo.push_back(random_sparse(7, 7, 0.3, 1));    // generic sparse square
  zoo.push_back(random_sparse(9, 5, 0.2, 2));    // rectangular tall
  zoo.push_back(random_sparse(4, 11, 0.5, 3));   // rectangular wide
  zoo.push_back(randn(6, 6, 4));                 // fully dense
  {
    Matrix diag(8, 8);                           // diagonal-only
    for (std::size_t i = 0; i < 8; ++i) diag(i, i) = 1.5 - 0.25 * i;
    zoo.push_back(std::move(diag));
  }
  {
    Matrix holes = random_sparse(10, 6, 0.4, 5); // empty rows (and columns)
    for (std::size_t j = 0; j < 6; ++j) {
      holes(0, j) = holes(4, j) = holes(9, j) = 0.0;
    }
    zoo.push_back(std::move(holes));
  }
  zoo.push_back(Matrix(5, 5));                   // all-zero
  return zoo;
}

TEST(CsrStructure, HandBuiltExample) {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 0 3 0 ]
  Matrix m(3, 3);
  m(0, 0) = 1.0;
  m(0, 2) = 2.0;
  m(2, 1) = 3.0;
  const CsrMatrix csr = CsrMatrix::from_dense(m);
  EXPECT_EQ(csr.rows(), 3u);
  EXPECT_EQ(csr.cols(), 3u);
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_DOUBLE_EQ(csr.density(), 3.0 / 9.0);
  EXPECT_EQ(csr.row_ptr(), (std::vector<std::size_t>{0, 2, 2, 3}));
  EXPECT_EQ(csr.col_idx(), (std::vector<std::size_t>{0, 2, 1}));
  EXPECT_EQ(csr.values(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(CsrStructure, EmptyMatrix) {
  const CsrMatrix csr = CsrMatrix::from_dense(Matrix());
  EXPECT_EQ(csr.rows(), 0u);
  EXPECT_EQ(csr.cols(), 0u);
  EXPECT_EQ(csr.nnz(), 0u);
  EXPECT_EQ(csr.density(), 0.0);
  EXPECT_EQ(csr.to_dense(), Matrix());
}

TEST(CsrStructure, RoundTripAcrossPatterns) {
  for (const Matrix& m : pattern_zoo()) {
    const CsrMatrix csr = CsrMatrix::from_dense(m);
    EXPECT_EQ(csr.to_dense(), m);
    EXPECT_EQ(csr.rows(), m.rows());
    EXPECT_EQ(csr.cols(), m.cols());
  }
}

TEST(CsrStructure, ToleranceFiltersSmallEntries) {
  Matrix m(2, 2);
  m(0, 0) = 0.4;
  m(0, 1) = -0.6;
  m(1, 0) = 0.5;  // |v| == tol is dropped (strict >)
  m(1, 1) = 2.0;
  const CsrMatrix csr = CsrMatrix::from_dense(m, 0.5);
  EXPECT_EQ(csr.nnz(), 2u);
  Matrix expect(2, 2);
  expect(0, 1) = -0.6;
  expect(1, 1) = 2.0;
  EXPECT_EQ(csr.to_dense(), expect);
}

TEST(CsrStructure, NegativeToleranceThrows) {
  EXPECT_THROW(CsrMatrix::from_dense(Matrix(2, 2), -1.0), ShapeError);
}

TEST(CsrSpmm, ShapeMismatchThrows) {
  const CsrMatrix a = CsrMatrix::from_dense(randn(3, 4, 11));
  EXPECT_THROW((void)spmm(a, Matrix(3, 2)), ShapeError);    // needs 4 rows
  EXPECT_THROW((void)spmm_t(a, Matrix(4, 2)), ShapeError);  // needs 3 rows
}

// The core §9 guarantee: spmm == matmul and spmm_t == matmul_at bit-for-bit,
// for every sparsity pattern, at every thread count.
TEST(CsrSpmm, BitwiseParityWithDenseKernels) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    BackendGuard guard(threads);
    std::uint64_t seed = 100;
    for (const Matrix& m : pattern_zoo()) {
      const CsrMatrix csr = CsrMatrix::from_dense(m);
      const Matrix b = randn(m.cols(), 3, seed++);
      const Matrix bt = randn(m.rows(), 3, seed++);
      EXPECT_EQ(spmm(csr, b), matmul(m, b))
          << "spmm mismatch at threads=" << threads;
      EXPECT_EQ(spmm_t(csr, bt), matmul_at(m, bt))
          << "spmm_t mismatch at threads=" << threads;
    }
  }
}

// Results must also be identical ACROSS thread counts (fixed-chunk contract).
TEST(CsrSpmm, DeterministicAcrossThreadCounts) {
  const Matrix m = random_sparse(33, 29, 0.25, 42);
  const CsrMatrix csr = CsrMatrix::from_dense(m);
  const Matrix b = randn(29, 8, 43);
  const Matrix bt = randn(33, 8, 44);
  Matrix ref, ref_t;
  {
    BackendGuard guard(1);
    ref = spmm(csr, b);
    ref_t = spmm_t(csr, bt);
  }
  for (const std::size_t threads : {2u, 3u, 4u}) {
    BackendGuard guard(threads);
    EXPECT_EQ(spmm(csr, b), ref) << "threads=" << threads;
    EXPECT_EQ(spmm_t(csr, bt), ref_t) << "threads=" << threads;
  }
}

TEST(CsrSpmm, SpmmTMatchesExplicitTranspose) {
  for (const Matrix& m : pattern_zoo()) {
    const CsrMatrix csr = CsrMatrix::from_dense(m);
    const CsrMatrix csr_of_t = CsrMatrix::from_dense(m.transposed());
    const Matrix b = randn(m.rows(), 4, 77);
    // Values may associate differently between the two routes only if the
    // transposed structure were mis-sorted; equal results pin it down.
    EXPECT_EQ(spmm_t(csr, b), spmm(csr_of_t, b));
  }
}

}  // namespace
}  // namespace rihgcn
