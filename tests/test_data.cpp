#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "data/missing.hpp"
#include "data/windows.hpp"

namespace rihgcn::data {
namespace {

PemsLikeConfig small_pems() {
  PemsLikeConfig cfg;
  cfg.num_nodes = 10;
  cfg.num_days = 7;
  cfg.steps_per_day = 96;
  cfg.seed = 1;
  return cfg;
}

StampedeLikeConfig small_stampede() {
  StampedeLikeConfig cfg;
  cfg.num_days = 7;
  cfg.steps_per_day = 96;
  cfg.seed = 2;
  return cfg;
}

// ---- PeMS-like generator ------------------------------------------------------

TEST(PemsGenerator, ShapesAndCompleteness) {
  const TrafficDataset ds = generate_pems_like(small_pems());
  EXPECT_EQ(ds.num_nodes(), 10u);
  EXPECT_EQ(ds.num_timesteps(), 7u * 96u);
  EXPECT_EQ(ds.num_features(), 4u);
  EXPECT_DOUBLE_EQ(ds.missing_rate(), 0.0);
  EXPECT_EQ(ds.coords.rows(), 10u);
  EXPECT_EQ(ds.geo_distances.rows(), 10u);
}

TEST(PemsGenerator, SpeedsInPlausibleRange) {
  const TrafficDataset ds = generate_pems_like(small_pems());
  for (const Matrix& x : ds.truth) {
    EXPECT_GE(x.min(), 3.0);
    EXPECT_LE(x.max(), 95.0);
  }
}

TEST(PemsGenerator, RushHourDipExists) {
  // Weekday 8am speeds should be clearly below weekday 3am speeds.
  const TrafficDataset ds = generate_pems_like(small_pems());
  const std::size_t spd = ds.steps_per_day;
  double rush = 0.0, night = 0.0;
  int days = 0;
  for (std::size_t day = 0; day < 5; ++day) {  // Mon-Fri of week 1
    const std::size_t rush_t = day * spd + spd * 8 / 24;
    const std::size_t night_t = day * spd + spd * 3 / 24;
    for (std::size_t i = 0; i < ds.num_nodes(); ++i) {
      rush += ds.truth[rush_t](i, 0);
      night += ds.truth[night_t](i, 0);
    }
    ++days;
  }
  EXPECT_LT(rush, night - 5.0 * static_cast<double>(days));
}

TEST(PemsGenerator, WeekendLighterThanWeekday) {
  const TrafficDataset ds = generate_pems_like(small_pems());
  const std::size_t spd = ds.steps_per_day;
  const std::size_t slot8am = spd * 8 / 24;
  double weekday = 0.0, weekend = 0.0;
  for (std::size_t i = 0; i < ds.num_nodes(); ++i) {
    weekday += ds.truth[2 * spd + slot8am](i, 0);   // Wednesday
    weekend += ds.truth[5 * spd + slot8am](i, 0);   // Saturday
  }
  EXPECT_GT(weekend, weekday);
}

TEST(PemsGenerator, DeterministicForSeed) {
  const TrafficDataset a = generate_pems_like(small_pems());
  const TrafficDataset b = generate_pems_like(small_pems());
  EXPECT_TRUE(allclose(a.truth[100], b.truth[100], 0.0));
  PemsLikeConfig other = small_pems();
  other.seed = 99;
  const TrafficDataset c = generate_pems_like(other);
  EXPECT_FALSE(allclose(a.truth[100], c.truth[100], 1e-6));
}

TEST(PemsGenerator, LaneSpeedsCorrelateWithAverage) {
  const TrafficDataset ds = generate_pems_like(small_pems());
  double corr_num = 0.0, var0 = 0.0, var1 = 0.0;
  double mean0 = 0.0, mean1 = 0.0;
  const std::size_t samples = 500;
  for (std::size_t t = 0; t < samples; ++t) {
    mean0 += ds.truth[t](0, 0);
    mean1 += ds.truth[t](0, 1);
  }
  mean0 /= samples;
  mean1 /= samples;
  for (std::size_t t = 0; t < samples; ++t) {
    const double a = ds.truth[t](0, 0) - mean0;
    const double b = ds.truth[t](0, 1) - mean1;
    corr_num += a * b;
    var0 += a * a;
    var1 += b * b;
  }
  const double corr = corr_num / std::sqrt(var0 * var1);
  EXPECT_GT(corr, 0.8);
}

TEST(PemsGenerator, RoadDistancesSymmetricWithHubStructure) {
  const TrafficDataset ds = generate_pems_like(small_pems());
  for (std::size_t i = 0; i < ds.num_nodes(); ++i) {
    EXPECT_EQ(ds.geo_distances(i, i), 0.0);
    for (std::size_t j = 0; j < ds.num_nodes(); ++j) {
      EXPECT_EQ(ds.geo_distances(i, j), ds.geo_distances(j, i));
      EXPECT_GE(ds.geo_distances(i, j), 0.0);
    }
  }
}

// ---- Stampede-like generator ----------------------------------------------

TEST(StampedeGenerator, HighStructuralMissingness) {
  const TrafficDataset ds = generate_stampede_like(small_stampede());
  EXPECT_EQ(ds.num_nodes(), 12u);
  EXPECT_EQ(ds.num_features(), 1u);
  const double rate = ds.missing_rate();
  EXPECT_GT(rate, 0.5);  // roving sensors observe a small fraction
  EXPECT_LT(rate, 0.99);
}

TEST(StampedeGenerator, NoObservationsOvernight) {
  const StampedeLikeConfig cfg = small_stampede();
  const TrafficDataset ds = generate_stampede_like(cfg);
  // 2am-5am: no shuttle service, so no observations.
  const std::size_t spd = ds.steps_per_day;
  for (std::size_t day = 0; day < cfg.num_days; ++day) {
    for (std::size_t s = spd * 2 / 24; s < spd * 5 / 24; ++s) {
      EXPECT_EQ(ds.mask[day * spd + s].sum(), 0.0);
    }
  }
}

TEST(StampedeGenerator, DaytimeHasObservations) {
  const TrafficDataset ds = generate_stampede_like(small_stampede());
  const std::size_t spd = ds.steps_per_day;
  double daytime_obs = 0.0;
  for (std::size_t s = spd * 10 / 24; s < spd * 16 / 24; ++s) {
    daytime_obs += ds.mask[2 * spd + s].sum();
  }
  EXPECT_GT(daytime_obs, 10.0);
}

TEST(StampedeGenerator, TravelTimesPositive) {
  const TrafficDataset ds = generate_stampede_like(small_stampede());
  for (const Matrix& x : ds.truth) EXPECT_GE(x.min(), 30.0);
}

TEST(StampedeGenerator, ClassSurgeVisible) {
  const TrafficDataset ds = generate_stampede_like(small_stampede());
  const std::size_t spd = ds.steps_per_day;
  // Weekday 9am travel time above weekday 6am travel time on average.
  double surge = 0.0, early = 0.0;
  for (std::size_t day = 0; day < 4; ++day) {
    for (std::size_t i = 0; i < ds.num_nodes(); ++i) {
      surge += ds.truth[day * spd + spd * 9 / 24](i, 0);
      early += ds.truth[day * spd + spd * 6 / 24](i, 0);
    }
  }
  EXPECT_GT(surge, early);
}

// ---- Dataset validation ------------------------------------------------------

TEST(Dataset, ValidateCatchesRaggedShapes) {
  TrafficDataset ds = generate_pems_like(small_pems());
  ds.truth[5] = Matrix(3, 4);
  EXPECT_THROW(ds.validate(), std::invalid_argument);
}

TEST(Dataset, ValidateCatchesBadMaskValues) {
  TrafficDataset ds = generate_pems_like(small_pems());
  ds.mask[0](0, 0) = 0.5;
  EXPECT_THROW(ds.validate(), std::invalid_argument);
}

TEST(Dataset, ValidateCatchesNonFinite) {
  TrafficDataset ds = generate_pems_like(small_pems());
  ds.truth[0](0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(ds.validate(), std::invalid_argument);
}

TEST(Dataset, ObservedZeroesMissingEntries) {
  TrafficDataset ds = generate_pems_like(small_pems());
  ds.mask[0](0, 0) = 0.0;
  const Matrix obs = ds.observed(0);
  EXPECT_EQ(obs(0, 0), 0.0);
  EXPECT_EQ(obs(1, 0), ds.truth[0](1, 0));
}

// ---- Missingness injection ------------------------------------------------------

class McarRateTest : public ::testing::TestWithParam<double> {};

TEST_P(McarRateTest, AchievesTargetRate) {
  TrafficDataset ds = generate_pems_like(small_pems());
  Rng rng(5);
  inject_mcar(ds, GetParam(), rng);
  EXPECT_NEAR(ds.missing_rate(), GetParam(), 0.01);
  ds.validate();
}

INSTANTIATE_TEST_SUITE_P(Rates, McarRateTest,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(Mcar, RejectsBadRate) {
  TrafficDataset ds = generate_pems_like(small_pems());
  Rng rng(6);
  EXPECT_THROW(inject_mcar(ds, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(inject_mcar(ds, -0.1, rng), std::invalid_argument);
}

TEST(BlockMissing, ApproximatesRateWithBursts) {
  TrafficDataset ds = generate_pems_like(small_pems());
  Rng rng(7);
  inject_block_missing(ds, 0.3, 12, rng);
  EXPECT_NEAR(ds.missing_rate(), 0.3, 0.08);
  // Burstiness: the missing runs must be much longer than MCAR would give.
  std::size_t runs = 0, missing = 0;
  bool in_run = false;
  for (std::size_t t = 0; t < ds.num_timesteps(); ++t) {
    const bool miss = ds.mask[t](0, 0) < 0.5;
    if (miss) {
      ++missing;
      if (!in_run) ++runs;
    }
    in_run = miss;
  }
  if (runs > 0) {
    EXPECT_GT(static_cast<double>(missing) / static_cast<double>(runs), 3.0);
  }
}

TEST(BlockMissing, RejectsZeroBlockLength) {
  TrafficDataset ds = generate_pems_like(small_pems());
  Rng rng(8);
  EXPECT_THROW(inject_block_missing(ds, 0.3, 0, rng), std::invalid_argument);
}

TEST(ImputationHoldout, DisjointFromVisibleMask) {
  TrafficDataset ds = generate_pems_like(small_pems());
  Rng rng(9);
  inject_mcar(ds, 0.4, rng);
  const double rate_before = ds.missing_rate();
  const auto holdout = make_imputation_holdout(ds, 0.3, rng);
  // Held-out entries were moved out of the visible mask...
  EXPECT_GT(ds.missing_rate(), rate_before);
  double overlap = 0.0, held = 0.0;
  for (std::size_t t = 0; t < ds.num_timesteps(); ++t) {
    overlap += hadamard(holdout[t], ds.mask[t]).sum();
    held += holdout[t].sum();
  }
  EXPECT_EQ(overlap, 0.0);  // ...and never overlap what the model sees.
  // Roughly 30% of the previously observed entries were held out.
  const double observed_before =
      (1.0 - rate_before) * static_cast<double>(ds.num_timesteps()) *
      static_cast<double>(ds.num_nodes() * ds.num_features());
  EXPECT_NEAR(held / observed_before, 0.3, 0.02);
}

// ---- Normalization -----------------------------------------------------------

TEST(ZScore, NormalizedStatsAreStandard) {
  TrafficDataset ds = generate_pems_like(small_pems());
  const std::size_t fit_end = ds.num_timesteps() * 7 / 10;
  const ZScoreNormalizer nz(ds, fit_end);
  nz.normalize(ds);
  double sum = 0.0, sum2 = 0.0, count = 0.0;
  for (std::size_t t = 0; t < fit_end; ++t) {
    for (std::size_t i = 0; i < ds.num_nodes(); ++i) {
      if (ds.mask[t](i, 0) > 0.5) {
        sum += ds.truth[t](i, 0);
        sum2 += ds.truth[t](i, 0) * ds.truth[t](i, 0);
        count += 1.0;
      }
    }
  }
  EXPECT_NEAR(sum / count, 0.0, 1e-9);
  EXPECT_NEAR(sum2 / count, 1.0, 1e-9);
}

TEST(ZScore, RoundTrip) {
  TrafficDataset ds = generate_pems_like(small_pems());
  const ZScoreNormalizer nz(ds, ds.num_timesteps());
  const double original = ds.truth[10](3, 2);
  nz.normalize(ds);
  EXPECT_NEAR(nz.denormalize(ds.truth[10](3, 2), 2), original, 1e-9);
  EXPECT_NEAR(nz.normalize_value(original, 2), ds.truth[10](3, 2), 1e-9);
}

TEST(ZScore, DenormalizeMatrix) {
  TrafficDataset ds = generate_pems_like(small_pems());
  const ZScoreNormalizer nz(ds, ds.num_timesteps());
  const Matrix original = ds.truth[5];
  nz.normalize(ds);
  EXPECT_TRUE(allclose(nz.denormalize(ds.truth[5]), original, 1e-9));
}

TEST(ZScore, BadFitRangeThrows) {
  TrafficDataset ds = generate_pems_like(small_pems());
  EXPECT_THROW(ZScoreNormalizer(ds, 0), std::invalid_argument);
  EXPECT_THROW(ZScoreNormalizer(ds, ds.num_timesteps() + 1),
               std::invalid_argument);
}

// ---- Window sampling -----------------------------------------------------------

TEST(Windows, CountAndShapes) {
  TrafficDataset ds = generate_pems_like(small_pems());
  const WindowSampler sampler(ds, 12, 6);
  EXPECT_EQ(sampler.num_windows(), ds.num_timesteps() - 18 + 1);
  const Window w = sampler.make_window(0);
  EXPECT_EQ(w.x_obs.size(), 12u);
  EXPECT_EQ(w.y.size(), 6u);
  EXPECT_EQ(w.x_obs[0].rows(), ds.num_nodes());
  EXPECT_EQ(w.y[0].cols(), 1u);
  EXPECT_EQ(w.slot, 0u);
}

TEST(Windows, SlotTracksTimeOfDay) {
  TrafficDataset ds = generate_pems_like(small_pems());
  const WindowSampler sampler(ds, 4, 2);
  EXPECT_EQ(sampler.make_window(100).slot, 100u % ds.steps_per_day);
}

TEST(Windows, TargetsComeFromTruth) {
  TrafficDataset ds = generate_pems_like(small_pems());
  Rng rng(10);
  inject_mcar(ds, 0.5, rng);
  const WindowSampler sampler(ds, 4, 2);
  const Window w = sampler.make_window(7);
  EXPECT_EQ(w.y[0](2, 0), ds.truth[7 + 4](2, 0));
  EXPECT_EQ(w.y_mask[1](2, 0), ds.mask[7 + 4 + 1](2, 0));
}

TEST(Windows, ObservedInputsAreMasked) {
  TrafficDataset ds = generate_pems_like(small_pems());
  Rng rng(11);
  inject_mcar(ds, 0.5, rng);
  const WindowSampler sampler(ds, 4, 2);
  const Window w = sampler.make_window(3);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_TRUE(allclose(w.x_obs[t], hadamard(w.x_truth[t], w.x_mask[t]),
                         1e-12));
  }
}

TEST(Windows, SplitIsChronologicalAndDisjoint) {
  TrafficDataset ds = generate_pems_like(small_pems());
  const WindowSampler sampler(ds, 12, 12);
  const SplitIndices split = sampler.split(0.7, 0.2);
  ASSERT_FALSE(split.train.empty());
  ASSERT_FALSE(split.val.empty());
  ASSERT_FALSE(split.test.empty());
  const std::size_t len = 24;
  // Train windows end before every val window begins, etc.
  EXPECT_LE(split.train.back() + len, split.val.front() + len);
  EXPECT_LT(split.train.back() + len,
            split.val.front() + 1 + len);
  EXPECT_LT(split.val.back(), split.test.front() + 1);
  // No window straddles a boundary: windows are fully inside their region.
  const auto t_total = ds.num_timesteps();
  const auto train_end = static_cast<std::size_t>(0.7 * static_cast<double>(t_total));
  EXPECT_LE(split.train.back() + len, train_end);
  EXPECT_GE(split.val.front(), train_end);
}

TEST(Windows, BadArgsThrow) {
  TrafficDataset ds = generate_pems_like(small_pems());
  EXPECT_THROW(WindowSampler(ds, 0, 5), std::invalid_argument);
  EXPECT_THROW(WindowSampler(ds, 5, 0), std::invalid_argument);
  EXPECT_THROW(WindowSampler(ds, 5, 5, 9), std::invalid_argument);
  const WindowSampler sampler(ds, 12, 12);
  EXPECT_THROW((void)sampler.make_window(ds.num_timesteps()),
               std::out_of_range);
  EXPECT_THROW((void)sampler.split(0.9, 0.2), std::invalid_argument);
}

// ---- Load-time validation ---------------------------------------------------

TEST(DatasetIo, LoadRejectsMaskOutsideZeroOneWithContext) {
  TrafficDataset ds = generate_pems_like(small_pems());
  std::ostringstream os;
  save_dataset(os, ds);
  std::string text = os.str();
  const std::size_t pos = text.find("mask\n");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 5] = '7';  // first mask entry becomes 7 -> not in {0,1}
  std::istringstream is(text);
  try {
    (void)load_dataset(is);
    FAIL() << "mask entry outside {0,1} was accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("mask"), std::string::npos) << msg;
    EXPECT_NE(msg.find("row 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("col 0"), std::string::npos) << msg;
  }
}

TEST(DatasetIo, LoadRejectsUnparsableValueWithContext) {
  TrafficDataset ds = generate_pems_like(small_pems());
  std::ostringstream os;
  save_dataset(os, ds);
  std::string text = os.str();
  const std::size_t pos = text.find("truth\n");
  ASSERT_NE(pos, std::string::npos);
  // A writer that serialized a NaN would emit exactly this token; the loader
  // must refuse it and say where it was.
  text.insert(pos + 6, "nan ");
  std::istringstream is(text);
  try {
    (void)load_dataset(is);
    FAIL() << "non-finite truth entry was accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("truth[0]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("row 0"), std::string::npos) << msg;
  }
}

TEST(DatasetIo, CleanRoundTripStillWorks) {
  TrafficDataset ds = generate_pems_like(small_pems());
  Rng rng(3);
  inject_mcar(ds, 0.25, rng);
  std::ostringstream os;
  save_dataset(os, ds);
  std::istringstream is(os.str());
  const TrafficDataset back = load_dataset(is);
  EXPECT_EQ(back.num_nodes(), ds.num_nodes());
  EXPECT_EQ(back.num_timesteps(), ds.num_timesteps());
  EXPECT_DOUBLE_EQ(back.missing_rate(), ds.missing_rate());
}

}  // namespace
}  // namespace rihgcn::data
