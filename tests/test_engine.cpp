// InferenceEngine (DESIGN.md §14): the tape-free f32 serving forward.
//
//  * EngineParity.*  — whole-model f32 engine output vs the f64 tape
//    predict() within the documented ULP-style bound
//    |y32 − y64| ≤ C·eps_f32·(1 + |y64|), across every architecture branch
//    (LSTM/GRU, concat/attention head, uni/bidirectional, 1/2 HGCN layers,
//    sparse CSR and dense-fallback Laplacians).
//  * EngineBatch.*   — predict_batch over B stacked windows is BITWISE equal
//    to B sequential batch-1 calls (every op is row- or block-local), at
//    serial and forced-threaded kernel settings; workspace buffers never
//    reallocate across calls.
//  * EngineSnapshot.* — the compiled plan is frozen: mutating the source
//    model after compilation must not change engine output.
//  * EngineThreads.*  — Options::num_threads row-sharding is pure
//    scheduling: adaptive / serial / forced-K outputs are bitwise equal.
//  * EngineSharded.*  — the cluster-sharded engine (DESIGN.md §16): one
//    shard is bitwise the full engine, parallel shards are bitwise the
//    serial sharded forward, multi-shard output stays near the full
//    forward (Cluster-GCN halo truncation) and covers every node.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/engine.hpp"
#include "core/hetero_graphs.hpp"
#include "core/rihgcn.hpp"
#include "core/sharded_engine.hpp"
#include "data/generators.hpp"
#include "data/missing.hpp"
#include "data/windows.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"

namespace rihgcn {
namespace {

// Documented whole-model ULP-style bound factor (DESIGN.md §14): the
// per-kernel (k+2)·eps_f32·Σ|a||b| bounds compose through ~lookback stacked
// GEMM/SpMM/nonlinearity layers into this empirical whole-model constant.
constexpr double kUlpFactor = 1024.0;

class BackendGuard {
 public:
  explicit BackendGuard(std::size_t threads) {
    ParallelTuning::min_elems = 1;
    ParallelTuning::elem_grain = 4;
    ParallelTuning::min_matmul_flops = 1;
    ParallelTuning::serial_cutover_flops = 1;
    ParallelTuning::matmul_row_grain = 2;
    ThreadPool::set_global_threads(threads);
  }
  ~BackendGuard() {
    ParallelTuning::reset();
    ThreadPool::set_global_threads(0);
  }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;
};

struct EngineFixture {
  data::TrafficDataset ds;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  std::unique_ptr<data::WindowSampler> sampler;
  std::unique_ptr<core::RihgcnModel> model;
};

EngineFixture make_setup(core::RihgcnConfig mc, std::size_t num_temporal = 2) {
  EngineFixture s;
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 8;
  cfg.num_days = 2;
  cfg.steps_per_day = 48;
  cfg.seed = 11;
  s.ds = data::generate_pems_like(cfg);
  Rng rng(5);
  data::inject_mcar(s.ds, 0.35, rng);
  const std::size_t train_end = s.ds.num_timesteps() * 7 / 10;
  const data::ZScoreNormalizer nz(s.ds, train_end);
  nz.normalize(s.ds);
  s.sampler = std::make_unique<data::WindowSampler>(s.ds, mc.lookback,
                                                    mc.horizon);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = num_temporal;
  gcfg.partition_slots = 24;
  s.graphs = std::make_unique<core::HeterogeneousGraphs>(s.ds, train_end,
                                                         gcfg, rng);
  s.model = std::make_unique<core::RihgcnModel>(*s.graphs, s.ds.num_nodes(),
                                                s.ds.num_features(), mc);
  return s;
}

core::RihgcnConfig small_config() {
  core::RihgcnConfig mc;
  mc.lookback = 6;
  mc.horizon = 3;
  mc.gcn_dim = 4;
  mc.lstm_dim = 5;
  mc.cheb_order = 3;
  return mc;
}

/// Max observed |y32 − y64| / (eps_f32 · (1 + |y64|)) over all elements.
double max_ulp_ratio(const Matrix& got, const Matrix& ref) {
  EXPECT_EQ(got.rows(), ref.rows());
  EXPECT_EQ(got.cols(), ref.cols());
  constexpr double eps = std::numeric_limits<float>::epsilon();
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double d = std::abs(got.data()[i] - ref.data()[i]);
    const double scale = eps * (1.0 + std::abs(ref.data()[i]));
    worst = std::max(worst, d / scale);
  }
  return worst;
}

void expect_parity(core::RihgcnConfig mc, std::size_t num_temporal = 2) {
  EngineFixture s = make_setup(mc, num_temporal);
  core::InferenceEngine engine(*s.model);
  for (std::size_t start : {0u, 7u, 23u}) {
    const data::Window w = s.sampler->make_window(start);
    const Matrix ref = s.model->predict(w);
    const Matrix got = engine.predict(w);
    const double ratio = max_ulp_ratio(got, ref);
    EXPECT_LE(ratio, kUlpFactor)
        << "window " << start << ": worst error " << ratio
        << " x eps_f32 x (1+|y|)";
    EXPECT_FALSE(got.has_non_finite());
  }
}

// ---- f32-vs-f64 parity across architecture branches ------------------------

TEST(EngineParity, LstmConcatSparseBidirectional) {
  expect_parity(small_config());
}

TEST(EngineParity, GruAttentionHead) {
  core::RihgcnConfig mc = small_config();
  mc.cell = nn::CellKind::kGru;
  mc.head = core::RihgcnConfig::Head::kAttention;
  expect_parity(mc);
}

TEST(EngineParity, UnidirectionalTwoLayerHgcn) {
  core::RihgcnConfig mc = small_config();
  mc.bidirectional = false;
  mc.hgcn_layers = 2;
  expect_parity(mc);
}

TEST(EngineParity, DenseFallbackLaplacians) {
  core::RihgcnConfig mc = small_config();
  mc.use_sparse_graphs = false;
  expect_parity(mc);
}

TEST(EngineParity, NoTemporalGraphs) {
  // GCN-LSTM-I ablation shape: zero temporal graphs.
  expect_parity(small_config(), /*num_temporal=*/0);
}

// ---- batched forward -------------------------------------------------------

void expect_batched_bitwise(std::size_t threads) {
  EngineFixture s = make_setup(small_config());
  core::InferenceEngine::Options opt;
  opt.max_batch = 6;
  core::InferenceEngine engine(*s.model, opt);
  auto ws_batch = engine.make_workspace();
  auto ws_one = engine.make_workspace();

  // Distinct windows with distinct slots, so the per-window interval-weight
  // mixing and per-block skip rules are actually exercised.
  std::vector<data::Window> windows;
  for (std::size_t i = 0; i < 5; ++i) {
    windows.push_back(s.sampler->make_window(3 * i + 1));
  }
  std::vector<const data::Window*> ptrs;
  for (const auto& w : windows) ptrs.push_back(&w);

  BackendGuard guard(threads);
  const std::size_t n = engine.num_nodes();
  const FMatrix& stacked =
      engine.predict_batch(ptrs.data(), ptrs.size(), ws_batch);
  for (std::size_t b = 0; b < ptrs.size(); ++b) {
    const FMatrix& one = engine.predict_batch(&ptrs[b], 1, ws_one);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t h = 0; h < engine.horizon(); ++h) {
        EXPECT_EQ(stacked(b * n + i, h), one(i, h))
            << "window " << b << " node " << i << " step " << h;
      }
    }
  }
}

TEST(EngineBatch, BatchedMatchesSequentialBitwiseSerial) {
  expect_batched_bitwise(1);
}

TEST(EngineBatch, BatchedMatchesSequentialBitwiseThreaded) {
  expect_batched_bitwise(4);
}

TEST(EngineBatch, RepeatCallsBitwiseStableAndNoRealloc) {
  EngineFixture s = make_setup(small_config());
  core::InferenceEngine engine(*s.model);
  auto ws = engine.make_workspace();
  const data::Window w = s.sampler->make_window(2);
  const data::Window* p = &w;

  const FMatrix& first = engine.predict_batch(&p, 1, ws);
  const float* data_ptr = first.data();
  std::vector<float> snapshot(first.data(),
                              first.data() + engine.num_nodes() * engine.horizon());
  for (int rep = 0; rep < 3; ++rep) {
    const FMatrix& again = engine.predict_batch(&p, 1, ws);
    // Zero steady-state allocation: the output (and by construction every
    // workspace buffer) lives in storage allocated at make_workspace time.
    EXPECT_EQ(again.data(), data_ptr);
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      EXPECT_EQ(again.data()[i], snapshot[i]);
    }
  }
}

TEST(EngineBatch, RejectsBadBatchAndForeignWorkspace) {
  EngineFixture s = make_setup(small_config());
  core::InferenceEngine::Options opt;
  opt.max_batch = 2;
  core::InferenceEngine engine(*s.model, opt);
  auto ws = engine.make_workspace();
  const data::Window w = s.sampler->make_window(0);
  std::vector<const data::Window*> ptrs{&w, &w, &w};
  EXPECT_THROW(engine.predict_batch(ptrs.data(), 0, ws),
               std::invalid_argument);
  EXPECT_THROW(engine.predict_batch(ptrs.data(), 3, ws),
               std::invalid_argument);

  core::InferenceEngine::Options opt2;
  opt2.max_batch = 4;
  core::InferenceEngine other(*s.model, opt2);
  auto foreign = other.make_workspace();
  EXPECT_THROW(engine.predict_batch(ptrs.data(), 1, foreign),
               std::invalid_argument);
}

// ---- snapshot semantics ----------------------------------------------------

TEST(EngineSnapshot, FrozenAgainstModelMutation) {
  EngineFixture s = make_setup(small_config());
  core::InferenceEngine engine(*s.model);
  const data::Window w = s.sampler->make_window(4);
  const Matrix before = engine.predict(w);
  // "Retrain" the model: perturb every parameter.
  for (ad::Parameter* p : s.model->parameters()) {
    Matrix& v = p->value();
    for (std::size_t i = 0; i < v.size(); ++i) v.data()[i] += 0.25;
  }
  const Matrix after = engine.predict(w);
  EXPECT_EQ(before, after);
  // A fresh compile picks the new weights up.
  core::InferenceEngine recompiled(*s.model);
  const Matrix moved = recompiled.predict(w);
  EXPECT_NE(before, moved);
}

// ---- Options::num_threads row-sharding (DESIGN.md §16) ---------------------

TEST(EngineThreads, NumThreadsBitwiseEqualSerial) {
  EngineFixture s = make_setup(small_config());
  // Force the pool on and the adaptive thresholds down, so all three
  // scheduling modes genuinely take different dispatch paths.
  BackendGuard guard(4);
  std::vector<Matrix> outs;
  for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{4},
                              std::size_t{7}}) {
    core::InferenceEngine::Options opt;
    opt.max_batch = 4;
    opt.num_threads = threads;
    core::InferenceEngine engine(*s.model, opt);
    outs.push_back(engine.predict(s.sampler->make_window(5)));
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_EQ(outs[0], outs[i]) << "num_threads variant " << i;
  }
  EXPECT_FALSE(outs[0].has_non_finite());
}

// ---- cluster-sharded engine (DESIGN.md §16) --------------------------------

TEST(EngineSharded, SingleShardBitwiseMatchesFullEngine) {
  // num_shards = 1: the partition owns every node, the halo is empty, and
  // the sub-Laplacians ARE the full Laplacians — bitwise equality with the
  // plain engine is exact, not approximate.
  EngineFixture s = make_setup(small_config());
  core::InferenceEngine full(*s.model);
  core::ShardedEngine::Options so;
  so.num_shards = 1;
  core::ShardedEngine sharded(*s.model, so);
  EXPECT_EQ(sharded.num_shards(), 1u);
  for (std::size_t start : {0u, 9u, 21u}) {
    const data::Window w = s.sampler->make_window(start);
    EXPECT_EQ(sharded.predict(w), full.predict(w)) << "window " << start;
  }
}

TEST(EngineSharded, ParallelMatchesSerialBitwise) {
  // The parallel path's parity baseline is the SERIAL sharded forward (the
  // halo truncation at cheb_order > 1 is the documented Cluster-GCN
  // approximation vs the full engine). Disjoint owned-row scatter means
  // thread scheduling can never move a bit.
  EngineFixture s = make_setup(small_config());
  BackendGuard guard(4);
  core::ShardedEngine::Options so;
  so.num_shards = 3;
  so.seed = 7;
  so.parallel = false;
  core::ShardedEngine serial(*s.model, so);
  so.parallel = true;
  core::ShardedEngine parallel(*s.model, so);
  ASSERT_EQ(serial.num_shards(), parallel.num_shards());
  ASSERT_GE(serial.num_shards(), 2u);
  for (std::size_t start : {1u, 8u, 17u}) {
    const data::Window w = s.sampler->make_window(start);
    const Matrix a = serial.predict(w);
    const Matrix b = parallel.predict(w);
    EXPECT_EQ(a, b) << "window " << start;
    EXPECT_FALSE(a.has_non_finite());
  }
}

TEST(EngineSharded, StaysNearFullEngineAndCoversAllNodes) {
  // Multi-shard output is the Cluster-GCN approximation of the full
  // forward: the halo carries the 1-hop boundary exactly, deeper Chebyshev
  // reach is truncated. An 8-node graph cut into 3 shards at cheb_order = 3
  // is close to the worst case for that truncation (most of a shard's
  // 2-hop neighborhood lies outside it), so this is a blow-up guard, not a
  // tight accuracy claim: every node written, finite, bounded deviation.
  // All inputs are seeded and both forwards are deterministic, so the
  // bounds are stable (observed max |diff| ~1.75, mean ~0.4).
  EngineFixture s = make_setup(small_config());
  core::InferenceEngine full(*s.model);
  core::ShardedEngine::Options so;
  so.num_shards = 3;
  core::ShardedEngine sharded(*s.model, so);
  const data::Window w = s.sampler->make_window(11);
  const Matrix want = full.predict(w);
  const Matrix got = sharded.predict(w);
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  EXPECT_FALSE(got.has_non_finite());
  double sum_abs = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double diff = std::abs(got.data()[i] - want.data()[i]);
    EXPECT_LT(diff, 3.0) << "flat index " << i;
    sum_abs += diff;
  }
  EXPECT_LT(sum_abs / static_cast<double>(got.size()), 0.8);
}

TEST(EngineSharded, DeterministicAcrossInstancesAndRejectsZeroShards) {
  EngineFixture s = make_setup(small_config());
  core::ShardedEngine::Options so;
  so.num_shards = 3;
  so.seed = 42;
  core::ShardedEngine a(*s.model, so);
  core::ShardedEngine b(*s.model, so);
  const data::Window w = s.sampler->make_window(3);
  EXPECT_EQ(a.predict(w), b.predict(w));
  so.num_shards = 0;
  EXPECT_THROW(core::ShardedEngine(*s.model, so), std::invalid_argument);
}

}  // namespace
}  // namespace rihgcn
