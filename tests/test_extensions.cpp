// Tests for the extension features beyond the paper's core method:
// GRU cell, circular timeline partitioning (the paper's stated future work),
// stacked HGCN, data-parallel training, MAPE, dataset (de)serialization and
// the gradient-sink backward path they all rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/rihgcn.hpp"
#include "core/trainer.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "data/missing.hpp"
#include "metrics/metrics.hpp"
#include "timeseries/partition.hpp"
#include "timeseries/profile.hpp"

namespace rihgcn {
namespace {

// ---- GruCell ------------------------------------------------------------------

TEST(Gru, StepShapesAndStateMirrorsH) {
  Rng rng(1);
  nn::GruCell gru(4, 6, rng);
  ad::Tape tape;
  auto state = gru.initial_state(tape, 3);
  state = gru.step(tape, tape.constant(Matrix(3, 4, 0.5)), state);
  EXPECT_EQ(tape.value(state.h).rows(), 3u);
  EXPECT_EQ(tape.value(state.h).cols(), 6u);
  // GRU has no cell lane: c mirrors h.
  EXPECT_TRUE(allclose(tape.value(state.h), tape.value(state.c), 0.0));
}

TEST(Gru, InputDimMismatchThrows) {
  Rng rng(2);
  nn::GruCell gru(4, 6, rng);
  ad::Tape tape;
  auto state = gru.initial_state(tape, 2);
  EXPECT_THROW((void)gru.step(tape, tape.constant(Matrix(2, 5)), state),
               ShapeError);
  EXPECT_THROW(nn::GruCell(0, 3, rng), std::invalid_argument);
}

TEST(Gru, GradientCheckThroughTwoSteps) {
  Rng rng(3);
  nn::GruCell gru(3, 4, rng);
  const Matrix x1 = rng.normal_matrix(2, 3, 1.0);
  const Matrix x2 = rng.normal_matrix(2, 3, 1.0);
  auto build = [&](ad::Tape& tape) {
    auto state = gru.initial_state(tape, 2);
    state = gru.step(tape, tape.constant(x1), state);
    state = gru.step(tape, tape.constant(x2), state);
    return tape.mean_all(state.h);
  };
  for (ad::Parameter* p : gru.parameters()) p->zero_grad();
  {
    ad::Tape tape;
    tape.backward(build(tape));
  }
  auto loss_value = [&] {
    ad::Tape tape;
    return tape.value(build(tape))(0, 0);
  };
  for (ad::Parameter* p : gru.parameters()) {
    EXPECT_LT(ad::gradient_check(*p, loss_value, p->grad()), 1e-5)
        << p->name();
  }
}

TEST(Gru, FactoryDispatch) {
  Rng rng(4);
  auto lstm = nn::make_recurrent_cell(nn::CellKind::kLstm, 3, 5, rng, "a");
  auto gru = nn::make_recurrent_cell(nn::CellKind::kGru, 3, 5, rng, "b");
  EXPECT_EQ(lstm->parameters()[0]->value().cols(), 20u);  // 4H
  EXPECT_EQ(gru->parameters()[0]->value().cols(), 15u);   // 3H
  EXPECT_EQ(lstm->hidden_dim(), 5u);
  EXPECT_EQ(gru->input_dim(), 3u);
}

// ---- Circular partition ---------------------------------------------------------

Matrix shifted_rush_profile(std::size_t slots, double center_hour) {
  // Single sharp feature centred at `center_hour`; a rotation that avoids
  // splitting it should win.
  Matrix p(slots, 2);
  for (std::size_t s = 0; s < slots; ++s) {
    const double h = static_cast<double>(s) * 24.0 / static_cast<double>(slots);
    double d = std::abs(h - center_hour);
    d = std::min(d, 24.0 - d);
    const double v = 60.0 - 35.0 * std::exp(-d * d / 1.5);
    p(s, 0) = v;
    p(s, 1) = v * 0.9;
  }
  return p;
}

TEST(CircularPartition, SlotRangeWrapsCorrectly) {
  ts::Partition p;
  p.boundaries = {0, 6, 12, 24};
  p.rotation = 20;
  const auto [a0, b0] = p.slot_range(0);
  EXPECT_EQ(a0, 20u);
  EXPECT_EQ(b0, 2u);  // wraps past midnight
  EXPECT_TRUE(p.contains(0, 21));
  EXPECT_TRUE(p.contains(0, 1));
  EXPECT_FALSE(p.contains(0, 5));
  EXPECT_EQ(p.interval_of(23), 0u);
  EXPECT_EQ(p.interval_of(3), 1u);
}

TEST(CircularPartition, EveryCoveredSlotHasExactlyOneInterval) {
  ts::Partition p;
  p.boundaries = {0, 5, 11, 17, 24};
  p.rotation = 13;
  for (std::size_t s = 0; s < 24; ++s) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < p.num_intervals(); ++i) {
      if (p.contains(i, s)) ++hits;
    }
    EXPECT_EQ(hits, 1u) << "slot " << s;
  }
}

TEST(CircularPartition, NeverWorseThanLinear) {
  const Matrix profile = shifted_rush_profile(24, 1.0);  // feature at 1 AM!
  ts::PartitionConstraints c;
  c.min_len = 2;
  c.max_len = 12;
  ts::TimelinePartitioner part(profile, c);
  Rng rng(5);
  const ts::Partition linear = part.partition(4, rng);
  const ts::Partition circular = part.partition_circular(4, rng, 2);
  EXPECT_GE(part.objective(circular), part.objective(linear) - 1e-9);
  EXPECT_TRUE(part.satisfies(circular));
}

TEST(CircularPartition, WrappedIntervalSeriesMatchesManualConcat) {
  std::vector<Matrix> values, mask;
  for (std::size_t t = 0; t < 6; ++t) {
    Matrix v(1, 1);
    v(0, 0) = static_cast<double>(t);
    values.push_back(v);
    mask.emplace_back(1, 1, 1.0);
  }
  const ts::HistoricalProfile prof(values, mask, 6);
  const Matrix wrapped = prof.interval_series(4, 2);  // slots 4,5,0,1
  ASSERT_EQ(wrapped.cols(), 4u);
  EXPECT_DOUBLE_EQ(wrapped(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(wrapped(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(wrapped(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(wrapped(0, 3), 1.0);
}

TEST(CircularPartition, HeteroGraphsBuildWithCircularOption) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 6;
  cfg.num_days = 4;
  cfg.steps_per_day = 48;
  data::TrafficDataset ds = data::generate_pems_like(cfg);
  Rng rng(6);
  core::HeteroGraphsConfig gcfg;
  gcfg.num_temporal_graphs = 3;
  gcfg.partition_slots = 24;
  gcfg.circular_partition = true;
  const core::HeterogeneousGraphs graphs(ds, ds.num_timesteps() * 7 / 10,
                                         gcfg, rng);
  EXPECT_EQ(graphs.num_temporal(), 3u);
  // Weights remain a distribution even with rotated (possibly wrapping)
  // intervals, at every slot of the day.
  for (std::size_t slot = 0; slot < 48; ++slot) {
    const auto w = graphs.interval_weights(slot);
    double sum = 0.0;
    for (const double x : w) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

// ---- Stacked HGCN + GRU inside RIHGCN ---------------------------------------

struct SmallPipeline {
  data::TrafficDataset ds;
  std::unique_ptr<data::WindowSampler> sampler;
  std::unique_ptr<core::HeterogeneousGraphs> graphs;
  data::SplitIndices split;

  SmallPipeline() {
    data::PemsLikeConfig cfg;
    cfg.num_nodes = 6;
    cfg.num_days = 4;
    cfg.steps_per_day = 48;
    cfg.seed = 7;
    ds = data::generate_pems_like(cfg);
    Rng rng(8);
    data::inject_mcar(ds, 0.4, rng);
    const std::size_t train_end = ds.num_timesteps() * 7 / 10;
    const data::ZScoreNormalizer nz(ds, train_end);
    nz.normalize(ds);
    sampler = std::make_unique<data::WindowSampler>(ds, 6, 3);
    split = sampler->split();
    core::HeteroGraphsConfig gcfg;
    gcfg.num_temporal_graphs = 2;
    graphs = std::make_unique<core::HeterogeneousGraphs>(ds, train_end, gcfg,
                                                         rng);
  }

  core::RihgcnConfig config() const {
    core::RihgcnConfig mc;
    mc.lookback = 6;
    mc.horizon = 3;
    mc.gcn_dim = 5;
    mc.lstm_dim = 7;
    mc.cheb_order = 2;
    return mc;
  }
};

TEST(RihgcnVariants, GruCellWorksEndToEnd) {
  SmallPipeline p;
  core::RihgcnConfig mc = p.config();
  mc.cell = nn::CellKind::kGru;
  core::RihgcnModel model(*p.graphs, 6, 4, mc);
  const data::Window w = p.sampler->make_window(0);
  EXPECT_FALSE(model.predict(w).has_non_finite());
  // GRU variant has strictly fewer parameters than LSTM (3H vs 4H gates).
  core::RihgcnModel lstm_model(*p.graphs, 6, 4, p.config());
  auto count = [](core::RihgcnModel& m) {
    std::size_t c = 0;
    for (ad::Parameter* q : m.parameters()) c += q->size();
    return c;
  };
  EXPECT_LT(count(model), count(lstm_model));
}

TEST(RihgcnVariants, StackedHgcnWorksAndAddsParameters) {
  SmallPipeline p;
  core::RihgcnConfig mc = p.config();
  mc.hgcn_layers = 2;
  core::RihgcnModel deep(*p.graphs, 6, 4, mc);
  core::RihgcnModel shallow(*p.graphs, 6, 4, p.config());
  EXPECT_GT(deep.parameters().size(), shallow.parameters().size());
  const data::Window w = p.sampler->make_window(1);
  EXPECT_FALSE(deep.predict(w).has_non_finite());
  core::RihgcnConfig bad = p.config();
  bad.hgcn_layers = 3;
  EXPECT_THROW(core::RihgcnModel(*p.graphs, 6, 4, bad),
               std::invalid_argument);
}

TEST(RihgcnVariants, StackedHgcnGradientFlowsToSecondLayer) {
  SmallPipeline p;
  core::RihgcnConfig mc = p.config();
  mc.hgcn_layers = 2;
  core::RihgcnModel model(*p.graphs, 6, 4, mc);
  for (ad::Parameter* q : model.parameters()) q->zero_grad();
  ad::Tape tape;
  tape.backward(model.training_loss(tape, p.sampler->make_window(2)));
  // Layer-2 parameters are the second hgcn block's (names repeat "hgcn.").
  std::size_t nonzero = 0;
  for (ad::Parameter* q : model.parameters()) {
    if (q->grad().abs_max() > 0.0) ++nonzero;
  }
  EXPECT_GT(nonzero, model.parameters().size() / 2);
}

// ---- Gradient sink / parallel training ----------------------------------------

TEST(GradSink, BackwardIntoMatchesBackward) {
  Rng rng(9);
  nn::Linear lin(3, 2, rng);
  const Matrix x = rng.normal_matrix(4, 3, 1.0);
  const Matrix target = rng.normal_matrix(4, 2, 1.0);
  // Reference: normal backward.
  for (ad::Parameter* p : lin.parameters()) p->zero_grad();
  {
    ad::Tape tape;
    tape.backward(tape.masked_mse(lin.forward(tape, tape.constant(x)), target,
                                  Matrix(4, 2, 1.0)));
  }
  std::vector<Matrix> reference;
  for (ad::Parameter* p : lin.parameters()) reference.push_back(p->grad());
  // Sink backward must not touch Parameter::grad.
  for (ad::Parameter* p : lin.parameters()) p->zero_grad();
  ad::Tape::GradSink sink;
  {
    ad::Tape tape;
    tape.backward_into(
        tape.masked_mse(lin.forward(tape, tape.constant(x)), target,
                        Matrix(4, 2, 1.0)),
        sink);
  }
  std::size_t i = 0;
  for (ad::Parameter* p : lin.parameters()) {
    EXPECT_EQ(p->grad().abs_max(), 0.0);
    ASSERT_TRUE(sink.count(p));
    EXPECT_TRUE(allclose(sink.at(p), reference[i], 1e-12));
    ++i;
  }
}

TEST(ParallelTrainer, MatchesSerialLoss) {
  SmallPipeline p;
  auto make = [&] {
    return std::make_unique<core::RihgcnModel>(*p.graphs, 6, 4, p.config());
  };
  core::TrainConfig serial_cfg;
  serial_cfg.max_epochs = 2;
  serial_cfg.max_train_windows = 24;
  serial_cfg.max_val_windows = 12;
  serial_cfg.batch_size = 8;
  core::TrainConfig parallel_cfg = serial_cfg;
  parallel_cfg.num_threads = 4;
  auto m1 = make();
  auto m2 = make();
  const auto r1 = core::train_model(*m1, *p.sampler, p.split, serial_cfg);
  const auto r2 = core::train_model(*m2, *p.sampler, p.split, parallel_cfg);
  // Same windows, same init, same batch partition -> identical losses up to
  // floating-point reduction order.
  ASSERT_EQ(r1.train_losses.size(), r2.train_losses.size());
  for (std::size_t e = 0; e < r1.train_losses.size(); ++e) {
    EXPECT_NEAR(r1.train_losses[e], r2.train_losses[e],
                1e-6 * (1.0 + std::abs(r1.train_losses[e])));
  }
  EXPECT_NEAR(r1.best_val_mae, r2.best_val_mae, 1e-6);
}

// ---- MAPE ---------------------------------------------------------------------

TEST(Mape, KnownValue) {
  metrics::ErrorAccumulator acc;
  acc.add_scalar(11.0, 10.0);  // 10%
  acc.add_scalar(18.0, 20.0);  // 10%
  EXPECT_NEAR(acc.mape(), 0.10, 1e-12);
}

TEST(Mape, SkipsZeroTruth) {
  metrics::ErrorAccumulator acc;
  acc.add_scalar(5.0, 0.0);    // skipped for MAPE, counted for MAE
  acc.add_scalar(11.0, 10.0);  // 10%
  EXPECT_NEAR(acc.mape(), 0.10, 1e-12);
  EXPECT_DOUBLE_EQ(acc.count(), 2.0);
}

TEST(Mape, AllZeroTruthThrows) {
  metrics::ErrorAccumulator acc;
  acc.add_scalar(5.0, 0.0);
  EXPECT_THROW((void)acc.mape(), std::logic_error);
}

TEST(Mape, MergeCombines) {
  metrics::ErrorAccumulator a, b;
  a.add_scalar(11.0, 10.0);
  b.add_scalar(24.0, 20.0);
  a.merge(b);
  EXPECT_NEAR(a.mape(), 0.15, 1e-12);
}

// ---- Dataset IO -----------------------------------------------------------------

TEST(DatasetIo, RoundTripLossless) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 5;
  cfg.num_days = 2;
  cfg.steps_per_day = 24;
  data::TrafficDataset ds = data::generate_pems_like(cfg);
  Rng rng(10);
  data::inject_mcar(ds, 0.3, rng);
  std::stringstream ss;
  data::save_dataset(ss, ds);
  const data::TrafficDataset loaded = data::load_dataset(ss);
  EXPECT_EQ(loaded.name, ds.name);
  EXPECT_EQ(loaded.num_timesteps(), ds.num_timesteps());
  EXPECT_EQ(loaded.steps_per_day, ds.steps_per_day);
  EXPECT_TRUE(allclose(loaded.coords, ds.coords, 0.0));
  EXPECT_TRUE(allclose(loaded.geo_distances, ds.geo_distances, 0.0));
  for (std::size_t t = 0; t < ds.num_timesteps(); ++t) {
    EXPECT_TRUE(allclose(loaded.truth[t], ds.truth[t], 0.0));
    EXPECT_TRUE(allclose(loaded.mask[t], ds.mask[t], 0.0));
  }
}

TEST(DatasetIo, NameWithSpacesSanitized) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 2;
  cfg.num_days = 1;
  cfg.steps_per_day = 4;
  data::TrafficDataset ds = data::generate_pems_like(cfg);
  ds.name = "my fancy dataset";
  std::stringstream ss;
  data::save_dataset(ss, ds);
  EXPECT_EQ(data::load_dataset(ss).name, "my_fancy_dataset");
}

TEST(DatasetIo, RejectsGarbage) {
  std::stringstream ss("not-a-dataset v1\n");
  EXPECT_THROW((void)data::load_dataset(ss), std::runtime_error);
  std::stringstream truncated("rihgcn-dataset v1\nx 2 1 4 4\ncoords 2 2\n1 2");
  EXPECT_THROW((void)data::load_dataset(truncated), std::runtime_error);
}

TEST(DatasetIo, CsvExportShape) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 2;
  cfg.num_days = 1;
  cfg.steps_per_day = 4;
  const data::TrafficDataset ds = data::generate_pems_like(cfg);
  std::stringstream ss;
  data::export_csv(ss, ds, /*max_timesteps=*/2);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(ss, line)) ++lines;
  // header + 2 timesteps * 2 nodes * 4 features
  EXPECT_EQ(lines, 1u + 2u * 2u * 4u);
}

TEST(DatasetIo, FileRoundTrip) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 3;
  cfg.num_days = 1;
  cfg.steps_per_day = 8;
  const data::TrafficDataset ds = data::generate_pems_like(cfg);
  const std::string path = "/tmp/rihgcn_io_test.ds";
  data::save_dataset_file(path, ds);
  const data::TrafficDataset loaded = data::load_dataset_file(path);
  EXPECT_EQ(loaded.num_nodes(), 3u);
  EXPECT_THROW((void)data::load_dataset_file("/nonexistent/x.ds"),
               std::runtime_error);
}

// ---- Reading-level MCAR -----------------------------------------------------

TEST(ReadingMcar, DropsWholeReadings) {
  data::PemsLikeConfig cfg;
  cfg.num_nodes = 8;
  cfg.num_days = 4;
  cfg.steps_per_day = 48;
  data::TrafficDataset ds = data::generate_pems_like(cfg);
  Rng rng(11);
  data::inject_mcar_readings(ds, 0.4, rng);
  EXPECT_NEAR(ds.missing_rate(), 0.4, 0.02);
  // Within any reading, features are all present or all absent.
  for (const Matrix& m : ds.mask) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      double row_sum = 0.0;
      for (std::size_t f = 0; f < m.cols(); ++f) row_sum += m(i, f);
      EXPECT_TRUE(row_sum == 0.0 ||
                  row_sum == static_cast<double>(m.cols()));
    }
  }
}

}  // namespace
}  // namespace rihgcn
