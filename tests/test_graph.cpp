#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.hpp"

namespace rihgcn::graph {
namespace {

Matrix ring_distances(std::size_t n) {
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t fwd = i > j ? i - j : j - i;
      d(i, j) = static_cast<double>(std::min(fwd, n - fwd));
    }
  }
  return d;
}

TEST(Adjacency, SelfWeightZeroByDefault) {
  const Matrix a = gaussian_adjacency(ring_distances(5));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(a(i, i), 0.0);
}

TEST(Adjacency, SymmetricFromSymmetricDistances) {
  const Matrix a = gaussian_adjacency(ring_distances(7));
  EXPECT_TRUE(is_symmetric(a));
}

TEST(Adjacency, CloserNodesGetLargerWeights) {
  const Matrix a = gaussian_adjacency(ring_distances(8));
  EXPECT_GT(a(0, 1), a(0, 2));
}

TEST(Adjacency, EpsilonThresholdSparsifies) {
  AdjacencyOptions loose;
  loose.epsilon = 0.0;
  AdjacencyOptions tight;
  tight.epsilon = 0.9;
  const Matrix d = ring_distances(10);
  EXPECT_LE(sparsity(gaussian_adjacency(d, loose)),
            sparsity(gaussian_adjacency(d, tight)));
}

TEST(Adjacency, ExplicitSigma) {
  AdjacencyOptions opts;
  opts.sigma = 1.0;
  opts.epsilon = 0.0;
  Matrix d(2, 2);
  d(0, 1) = d(1, 0) = 1.0;
  const Matrix a = gaussian_adjacency(d, opts);
  EXPECT_NEAR(a(0, 1), std::exp(-1.0), 1e-12);
}

TEST(Adjacency, NonSquareThrows) {
  EXPECT_THROW((void)gaussian_adjacency(Matrix(2, 3)), ShapeError);
}

TEST(Adjacency, SingleNodeGraph) {
  const Matrix a = gaussian_adjacency(Matrix(1, 1));
  EXPECT_EQ(a.rows(), 1u);
  EXPECT_EQ(a(0, 0), 0.0);
}

TEST(PairwiseEuclidean, KnownValues) {
  Matrix coords{{0, 0}, {3, 4}};
  const Matrix d = pairwise_euclidean(coords);
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(Degree, RowSums) {
  Matrix a{{0, 2, 0}, {2, 0, 1}, {0, 1, 0}};
  const Matrix d = degree_matrix(a);
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Degree, VectorMatchesMatrixDiagonal) {
  Matrix a{{0, 2, 0}, {2, 0, 1}, {0, 1, 0}};
  const std::vector<double> deg = degree_vector(a);
  const Matrix d = degree_matrix(a);
  ASSERT_EQ(deg.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(deg[i], d(i, i));
  EXPECT_THROW((void)degree_vector(Matrix(2, 3)), ShapeError);
}

TEST(SparseBackend, ToCsrRoundTripsGraphMatrices) {
  const Matrix a = gaussian_adjacency(ring_distances(9));
  const CsrMatrix csr = to_csr(a);
  EXPECT_EQ(csr.to_dense(), a);
  // tol filtering drops weak edges.
  EXPECT_LT(to_csr(a, 0.5).nnz(), csr.nnz());
}

TEST(SparseBackend, ScaledLaplacianCsrMatchesDense) {
  const Matrix a = gaussian_adjacency(ring_distances(11));
  const Matrix lap = normalized_laplacian(a);
  const Matrix dense = scaled_laplacian(lap);
  EXPECT_EQ(scaled_laplacian_csr(lap).to_dense(), dense);
}

TEST(SparseBackend, SparsityStats) {
  Matrix m(4, 5);
  m(0, 0) = 1.0;
  m(3, 4) = -2.0;
  const SparsityStats st = sparsity_stats(m);
  EXPECT_EQ(st.nnz, 2u);
  EXPECT_EQ(st.size, 20u);
  EXPECT_DOUBLE_EQ(st.density, 0.1);
  EXPECT_EQ(sparsity_stats(Matrix()).density, 0.0);
}

TEST(Laplacian, RowSumZeroForRegularGraph) {
  // For symmetric normalized Laplacian with uniform degrees, L·1 = 0.
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) a(i, j) = 1.0;
    }
  }
  const Matrix lap = normalized_laplacian(a);
  for (std::size_t i = 0; i < 4; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 4; ++j) s += lap(i, j);
    EXPECT_NEAR(s, 0.0, 1e-12);
  }
}

TEST(Laplacian, IsolatedNodeGivesIdentityRow) {
  Matrix a(3, 3);
  a(0, 1) = a(1, 0) = 1.0;  // node 2 isolated
  const Matrix lap = normalized_laplacian(a);
  EXPECT_EQ(lap(2, 2), 1.0);
  EXPECT_EQ(lap(2, 0), 0.0);
  EXPECT_EQ(lap(2, 1), 0.0);
}

TEST(Laplacian, SymmetricOutput) {
  Rng rng(3);
  Matrix d = rng.uniform_matrix(6, 6, 0.5, 3.0);
  d = (d + d.transposed()) * 0.5;
  for (std::size_t i = 0; i < 6; ++i) d(i, i) = 0.0;
  AdjacencyOptions opts;
  opts.epsilon = 0.0;
  const Matrix lap = normalized_laplacian(gaussian_adjacency(d, opts));
  EXPECT_TRUE(is_symmetric(lap, 1e-10));
}

TEST(Eigen, DiagonalMatrix) {
  Matrix m{{3.0, 0.0}, {0.0, 1.0}};
  EXPECT_NEAR(largest_eigenvalue(m), 3.0, 1e-7);
}

TEST(Eigen, KnownSymmetricMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  EXPECT_NEAR(largest_eigenvalue(m), 3.0, 1e-7);
}

TEST(Eigen, CompleteGraphLaplacian) {
  // Normalized Laplacian of K_n has eigenvalues {0, n/(n-1)}.
  const std::size_t n = 5;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) a(i, j) = 1.0;
    }
  }
  const double lmax = largest_eigenvalue(normalized_laplacian(a));
  EXPECT_NEAR(lmax, static_cast<double>(n) / (n - 1.0), 1e-7);
}

TEST(Eigen, SpectrumBoundsForRandomGraphs) {
  // Normalized Laplacian eigenvalues always lie in [0, 2].
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    Matrix d = rng.uniform_matrix(8, 8, 0.2, 2.0);
    d = (d + d.transposed()) * 0.5;
    for (std::size_t i = 0; i < 8; ++i) d(i, i) = 0.0;
    AdjacencyOptions opts;
    opts.epsilon = 0.05;
    const double lmax =
        largest_eigenvalue(normalized_laplacian(gaussian_adjacency(d, opts)));
    EXPECT_GE(lmax, 0.0);
    EXPECT_LE(lmax, 2.0 + 1e-9);
  }
}

TEST(Eigen, SingleElementAndEmpty) {
  EXPECT_DOUBLE_EQ(largest_eigenvalue(Matrix{{4.2}}), 4.2);
  EXPECT_DOUBLE_EQ(largest_eigenvalue(Matrix()), 0.0);
  EXPECT_THROW((void)largest_eigenvalue(Matrix(2, 3)), ShapeError);
}

TEST(ScaledLaplacian, SpectrumMappedIntoUnitInterval) {
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) a(i, j) = 1.0;
    }
  }
  const Matrix lap = normalized_laplacian(a);
  const Matrix scaled = scaled_laplacian(lap);
  // λ(L̃) = 2λ(L)/λmax − 1 ∈ [−1, 1]; its largest eigenvalue is exactly 1.
  EXPECT_NEAR(largest_eigenvalue(scaled), 1.0, 1e-6);
}

TEST(ScaledLaplacian, ZeroGraphFallback) {
  const Matrix lap(3, 3);  // empty graph => L == 0
  const Matrix scaled = scaled_laplacian(lap);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(scaled(i, i), -1.0);
}

TEST(Components, CountsCorrectly) {
  Matrix a(5, 5);
  a(0, 1) = a(1, 0) = 1.0;
  a(2, 3) = a(3, 2) = 1.0;
  EXPECT_EQ(connected_components(a), 3u);  // {0,1}, {2,3}, {4}
  a(1, 2) = a(2, 1) = 1.0;
  EXPECT_EQ(connected_components(a), 2u);
}

TEST(RoadGraph, FromCoordinates) {
  Matrix coords{{0, 0}, {1, 0}, {0, 1}};
  AdjacencyOptions opts;
  opts.epsilon = 0.0;
  const RoadGraph g(coords, opts);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(is_symmetric(g.adjacency()));
  EXPECT_GT(g.lambda_max(), 0.0);
  EXPECT_TRUE(is_symmetric(g.scaled_laplacian(), 1e-9));
}

TEST(RoadGraph, FromDistancesRejectsNonSquare) {
  EXPECT_THROW(RoadGraph::from_distances(Matrix(2, 3)), ShapeError);
}

// Property sweep over sizes and epsilon: structural invariants of the full
// distance -> adjacency -> Laplacian -> scaling pipeline.
class GraphPipelineTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GraphPipelineTest, Invariants) {
  const auto [n_int, eps] = GetParam();
  const auto n = static_cast<std::size_t>(n_int);
  Rng rng(1000 + n);
  Matrix d = rng.uniform_matrix(n, n, 0.1, 4.0);
  d = (d + d.transposed()) * 0.5;
  for (std::size_t i = 0; i < n; ++i) d(i, i) = 0.0;
  AdjacencyOptions opts;
  opts.epsilon = eps;
  const RoadGraph g = RoadGraph::from_distances(d, opts);
  EXPECT_TRUE(is_symmetric(g.adjacency(), 1e-12));
  EXPECT_TRUE(is_symmetric(g.laplacian(), 1e-10));
  EXPECT_GE(g.adjacency().min(), 0.0);
  EXPECT_LE(g.adjacency().max(), 1.0);
  EXPECT_GE(g.lambda_max(), -1e-9);
  EXPECT_LE(g.lambda_max(), 2.0 + 1e-9);
  EXPECT_FALSE(g.scaled_laplacian().has_non_finite());
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndEps, GraphPipelineTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 20),
                       ::testing::Values(0.0, 0.1, 0.5)));

}  // namespace
}  // namespace rihgcn::graph
