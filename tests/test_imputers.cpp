#include "baselines/imputers.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "tensor/rng.hpp"

namespace rihgcn::baselines {
namespace {

/// Build a low-rank series: x[t](i, 0) = u_i * v_t + w_i * sin(t/5).
/// Perfect territory for MF/TD-style imputers.
struct SyntheticSeries {
  std::vector<Matrix> truth;
  std::vector<Matrix> values;  // truth with missing entries zeroed
  std::vector<Matrix> mask;
};

SyntheticSeries make_low_rank(std::size_t n, std::size_t t_total,
                              double missing_rate, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> u(n), w(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = rng.uniform(0.5, 2.0);
    w[i] = rng.uniform(-1.0, 1.0);
  }
  SyntheticSeries s;
  for (std::size_t t = 0; t < t_total; ++t) {
    // Offset keeps per-stream means well away from 0 so the mean filler has
    // signal to exploit; still rank-2 overall.
    const double vt = std::cos(static_cast<double>(t) * 0.05) + 2.0;
    const double st = std::sin(static_cast<double>(t) * 0.2);
    Matrix x(n, 1), m(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      x(i, 0) = u[i] * vt + w[i] * st;
      m(i, 0) = rng.bernoulli(missing_rate) ? 0.0 : 1.0;
    }
    s.truth.push_back(x);
    s.mask.push_back(m);
    s.values.push_back(hadamard(x, m));
  }
  return s;
}

double missing_entry_mae(const SyntheticSeries& s,
                         const std::vector<Matrix>& filled) {
  double err = 0.0, count = 0.0;
  for (std::size_t t = 0; t < s.truth.size(); ++t) {
    for (std::size_t i = 0; i < s.truth[t].size(); ++i) {
      if (s.mask[t].data()[i] < 0.5) {
        err += std::abs(filled[t].data()[i] - s.truth[t].data()[i]);
        count += 1.0;
      }
    }
  }
  return count > 0.0 ? err / count : 0.0;
}

void expect_observed_preserved(const SyntheticSeries& s,
                               const std::vector<Matrix>& filled) {
  for (std::size_t t = 0; t < s.truth.size(); ++t) {
    for (std::size_t i = 0; i < s.truth[t].size(); ++i) {
      if (s.mask[t].data()[i] > 0.5) {
        EXPECT_DOUBLE_EQ(filled[t].data()[i], s.truth[t].data()[i]);
      }
    }
  }
}

// ---- Shared imputer contract (parameterized over every imputer) -----------

std::unique_ptr<Imputer> make_imputer(const std::string& kind) {
  if (kind == "Mean") return std::make_unique<MeanImputer>();
  if (kind == "Last") return std::make_unique<LastObservedImputer>();
  if (kind == "KNN") return std::make_unique<KnnImputer>(4);
  if (kind == "MF") return std::make_unique<MatrixFactorizationImputer>(4, 10);
  return std::make_unique<TensorDecompositionImputer>(4, 8, /*spd=*/50);
}

class ImputerContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ImputerContractTest, PreservesObservedAndFillsEverything) {
  const SyntheticSeries s = make_low_rank(8, 200, 0.4, 1);
  const auto imputer = make_imputer(GetParam());
  const auto filled = imputer->impute(s.values, s.mask);
  ASSERT_EQ(filled.size(), s.values.size());
  expect_observed_preserved(s, filled);
  for (const Matrix& m : filled) EXPECT_FALSE(m.has_non_finite());
  EXPECT_EQ(imputer->name().empty(), false);
}

TEST_P(ImputerContractTest, BeatsZeroFillOnStructuredData) {
  const SyntheticSeries s = make_low_rank(8, 200, 0.4, 2);
  const auto imputer = make_imputer(GetParam());
  const auto filled = imputer->impute(s.values, s.mask);
  const double zero_fill_mae = missing_entry_mae(s, s.values);
  EXPECT_LT(missing_entry_mae(s, filled), zero_fill_mae);
}

TEST_P(ImputerContractTest, RejectsBadInput) {
  const auto imputer = make_imputer(GetParam());
  EXPECT_THROW((void)imputer->impute({}, {}), std::invalid_argument);
  std::vector<Matrix> v(2, Matrix(2, 1));
  std::vector<Matrix> m(1, Matrix(2, 1));
  EXPECT_THROW((void)imputer->impute(v, m), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllImputers, ImputerContractTest,
                         ::testing::Values("Mean", "Last", "KNN", "MF", "TD"));

// ---- Method-specific behaviour ------------------------------------------------

TEST(MeanImputer, FillsWithStreamMean) {
  std::vector<Matrix> v{Matrix{{2.0}}, Matrix{{0.0}}, Matrix{{4.0}}};
  std::vector<Matrix> m{Matrix{{1.0}}, Matrix{{0.0}}, Matrix{{1.0}}};
  const auto filled = MeanImputer().impute(v, m);
  EXPECT_DOUBLE_EQ(filled[1](0, 0), 3.0);
}

TEST(MeanImputer, NeverObservedStreamGetsZero) {
  std::vector<Matrix> v{Matrix{{5.0}}, Matrix{{5.0}}};
  std::vector<Matrix> m{Matrix{{0.0}}, Matrix{{0.0}}};
  const auto filled = MeanImputer().impute(v, m);
  EXPECT_DOUBLE_EQ(filled[0](0, 0), 0.0);
}

TEST(LastObserved, CarriesForward) {
  std::vector<Matrix> v{Matrix{{7.0}}, Matrix{{0.0}}, Matrix{{0.0}},
                        Matrix{{3.0}}};
  std::vector<Matrix> m{Matrix{{1.0}}, Matrix{{0.0}}, Matrix{{0.0}},
                        Matrix{{1.0}}};
  const auto filled = LastObservedImputer().impute(v, m);
  EXPECT_DOUBLE_EQ(filled[1](0, 0), 7.0);
  EXPECT_DOUBLE_EQ(filled[2](0, 0), 7.0);
}

TEST(LastObserved, BackwardFillsLeadingGap) {
  std::vector<Matrix> v{Matrix{{0.0}}, Matrix{{9.0}}};
  std::vector<Matrix> m{Matrix{{0.0}}, Matrix{{1.0}}};
  const auto filled = LastObservedImputer().impute(v, m);
  EXPECT_DOUBLE_EQ(filled[0](0, 0), 9.0);
}

TEST(Knn, UsesSimilarNeighbour) {
  // Nodes 0 and 1 are identical; node 2 is wildly different. A missing
  // value on node 0 should be taken from node 1, not node 2.
  std::vector<Matrix> v, m;
  for (std::size_t t = 0; t < 50; ++t) {
    const double x = std::sin(static_cast<double>(t) * 0.3);
    Matrix val(3, 1), mask(3, 1, 1.0);
    val(0, 0) = x;
    val(1, 0) = x;
    val(2, 0) = 40.0 - x;
    v.push_back(val);
    m.push_back(mask);
  }
  m[25](0, 0) = 0.0;
  const double truth = v[25](0, 0);
  v[25](0, 0) = 0.0;
  const auto filled = KnnImputer(1).impute(v, m);
  EXPECT_NEAR(filled[25](0, 0), truth, 1e-9);
}

TEST(MatrixFactorization, RecoversExactlyLowRankData) {
  // Rank-2 data with 30% missing: MF with rank >= 2 recovers it nearly
  // exactly (well-posed ALS).
  const SyntheticSeries s = make_low_rank(10, 300, 0.3, 3);
  const auto filled =
      MatrixFactorizationImputer(4, 40, 1e-5).impute(s.values, s.mask);
  EXPECT_LT(missing_entry_mae(s, filled), 0.08);
}

TEST(TensorDecomposition, ExploitsDailyPeriodicity) {
  // Build data that is exactly periodic across days: node amplitude x
  // time-of-day pattern. The day factor is constant, so CP rank 2 suffices.
  const std::size_t n = 6, spd = 24, days = 10;
  Rng rng(4);
  std::vector<double> amp(n);
  for (auto& a : amp) a = rng.uniform(0.5, 2.0);
  SyntheticSeries s;
  for (std::size_t t = 0; t < spd * days; ++t) {
    const double pattern =
        std::sin(2.0 * 3.14159 * static_cast<double>(t % spd) / spd) + 2.0;
    Matrix x(n, 1), m(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      x(i, 0) = amp[i] * pattern;
      m(i, 0) = rng.bernoulli(0.5) ? 0.0 : 1.0;
    }
    s.truth.push_back(x);
    s.mask.push_back(m);
    s.values.push_back(hadamard(x, m));
  }
  const auto filled =
      TensorDecompositionImputer(3, 15, spd, 1e-4).impute(s.values, s.mask);
  EXPECT_LT(missing_entry_mae(s, filled), 0.05);
}

TEST(TensorDecomposition, RankCapEnforced) {
  const SyntheticSeries s = make_low_rank(3, 20, 0.2, 5);
  EXPECT_THROW(
      (void)TensorDecompositionImputer(100, 2, 10).impute(s.values, s.mask),
      std::invalid_argument);
}

}  // namespace
}  // namespace rihgcn::baselines
